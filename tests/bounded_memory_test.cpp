// Proof that the streaming encode/write path never rematerializes whole
// checkpoint files in memory.
//
// A large full-state checkpoint is written through a real-filesystem
// PosixEnv (MemEnv IS memory, so only the Posix path can demonstrate an
// RSS bound): the trainer-side snapshot inevitably costs O(state), but
// everything the storage stack adds on top — compression waves, the
// packfile, the container — must stay bounded by O(chunk_bytes x encode
// window), measured by Checkpointer::Stats::peak_encode_buffer_bytes
// and, end to end, by the process's peak RSS.
//
// CI runs this test under a hard address-space ulimit sized well below
// what the historical whole-buffer path needed (snapshot + serialized
// packfile + encoded container each O(state)); the QNNCKPT_BOUNDED_MEM_MB
// environment variable scales the state so the local default stays fast
// while the CI job writes a checkpoint that simply cannot fit twice.
#include <gtest/gtest.h>
#include <sys/resource.h>

#include <cstdlib>
#include <filesystem>

#include "ckpt/checkpointer.hpp"
#include "ckpt/recovery.hpp"
#include "io/env.hpp"
#include "util/rng.hpp"

namespace qnn::ckpt {
namespace {

namespace fs = std::filesystem;

std::size_t state_megabytes() {
  if (const char* s = std::getenv("QNNCKPT_BOUNDED_MEM_MB")) {
    const auto v = std::strtoull(s, nullptr, 10);
    if (v > 0) {
      return static_cast<std::size_t>(v);
    }
  }
  return 24;  // fast local default; CI passes a few hundred
}

std::uint64_t peak_rss_bytes() {
  struct rusage usage {};
  ::getrusage(RUSAGE_SELF, &usage);
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;
}

qnn::TrainingState huge_state(std::size_t megabytes) {
  qnn::TrainingState s;
  s.step = 1;
  s.params.resize(megabytes * (std::size_t{1} << 20) / sizeof(double));
  util::Rng rng(2026);
  for (double& p : s.params) {
    p = rng.uniform(-1.0, 1.0);
  }
  s.optimizer_name = "adam";
  s.optimizer_state.assign(128, 7);
  s.rng_state = rng.serialize();
  s.permutation = {0, 1, 2};
  s.workload_tag = "vqe";
  return s;
}

TEST(BoundedMemory, StreamingEncodeNeverRematerializesTheCheckpoint) {
  const std::size_t mb = state_megabytes();
  const std::string root =
      (fs::temp_directory_path() /
       ("qnnckpt_bounded_" + std::to_string(::getpid())))
          .string();
  fs::remove_all(root);

  const std::uint64_t rss_before = peak_rss_bytes();
  io::PosixEnv env(/*durable=*/false);
  CheckpointPolicy policy;
  policy.strategy = Strategy::kFullState;
  policy.every_steps = 1;
  policy.retention.keep_last = 1;
  policy.codec = codec::CodecId::kRaw;  // bound the CPU, not just memory
  policy.chunk_bytes = std::size_t{1} << 20;

  std::uint64_t raw_bytes = 0;
  std::uint64_t peak_buffered = 0;
  {
    Checkpointer ck(env, root + "/cp", policy);
    const auto state = huge_state(mb);
    raw_bytes = state.params.size() * sizeof(double);
    ck.checkpoint_now(state);
    const auto stats = ck.stats();
    peak_buffered = stats.peak_encode_buffer_bytes;
  }

  // The storage stack's own buffering: a few compression waves (the
  // auto encode window clamps at 16 chunks), never a second copy of the
  // state.
  EXPECT_GT(peak_buffered, 0u);
  EXPECT_LE(peak_buffered, 20 * policy.chunk_bytes)
      << "encode buffering grew with checkpoint size";

  // End to end: peak RSS grew by roughly the snapshot (state + section
  // payload copy), NOT by the additional O(state) the whole-buffer path
  // paid for the serialized packfile + encoded container. 3x the state
  // is a deliberately loose ceiling that still catches any extra copy
  // of a multi-hundred-MB checkpoint in the CI-sized run.
  const std::uint64_t rss_growth = peak_rss_bytes() - rss_before;
  EXPECT_LT(rss_growth, 3 * raw_bytes + (std::uint64_t{64} << 20))
      << "peak RSS suggests the checkpoint was materialized again";

  // And it actually landed, intact.
  const auto outcome = recover_latest(env, root + "/cp");
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->state.params.size(), raw_bytes / sizeof(double));
  EXPECT_EQ(outcome->state, huge_state(mb));

  fs::remove_all(root);
}

}  // namespace
}  // namespace qnn::ckpt

// Tiered storage: TieredEnv composition, ShapedEnv device models,
// PrefixEnv mounts, Env::bytes_read accounting, and the MigrationEngine's
// policy-driven, crash-consistent hot->cold placement (the exhaustive
// crash enumeration lives in crash_matrix_test).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "ckpt/checkpointer.hpp"
#include "ckpt/manifest.hpp"
#include "ckpt/recovery.hpp"
#include "ckpt/store.hpp"
#include "ckpt/verify.hpp"
#include "io/mem_env.hpp"
#include "io/prefix_env.hpp"
#include "tier/migration.hpp"
#include "tier/shaped_env.hpp"
#include "tier/tiered_env.hpp"
#include "util/rng.hpp"

namespace qnn {
namespace {

using ckpt::CheckpointPolicy;
using ckpt::Checkpointer;
using ckpt::Manifest;
using tier::MigrationEngine;
using tier::ShapedEnv;
using tier::ShapeSpec;
using tier::TieredEnv;

util::Bytes bytes_of(const std::string& s) {
  return util::Bytes(s.begin(), s.end());
}

/// Deterministic training state: a mostly-frozen parameter vector (only
/// the last 4 values move with the step) so consecutive checkpoints
/// share chunks, plus enough metadata to round-trip.
qnn::TrainingState make_state(std::uint64_t step, std::size_t params = 512) {
  qnn::TrainingState s;
  s.step = step;
  s.params.resize(params);
  util::Rng frozen(7);
  for (double& p : s.params) {
    p = frozen.uniform(-1.0, 1.0);
  }
  util::Rng moving(100 + step);
  for (std::size_t i = params - 4; i < params; ++i) {
    s.params[i] = moving.uniform(-1.0, 1.0);
  }
  s.optimizer_name = "adam";
  s.optimizer_state.assign(128, static_cast<std::uint8_t>(step));
  s.rng_state = util::Rng(step).serialize();
  s.loss_history.assign(step, 0.5);
  s.epoch = step / 4;
  s.cursor = step % 4;
  s.permutation = {0, 1, 2};
  s.workload_tag = "vqe";
  return s;
}

/// One MemEnv split into hot/ and cold/ mounts with a TieredEnv on top —
/// the canonical test composition (same shape the crash matrix uses).
struct TierFixture {
  io::MemEnv base;
  io::PrefixEnv hot{base, "hot"};
  io::PrefixEnv cold{base, "cold"};
  TieredEnv env;

  explicit TierFixture(bool promote_on_read = false)
      : env(hot, cold, promote_on_read) {}
};

TEST(BytesRead, MemEnvCountsReadBytes) {
  io::MemEnv env;
  env.write_file_atomic("d/a", bytes_of("hello"));
  EXPECT_EQ(env.bytes_read(), 0u);
  ASSERT_TRUE(env.read_file("d/a"));
  EXPECT_EQ(env.bytes_read(), 5u);
  EXPECT_FALSE(env.read_file("d/missing"));
  EXPECT_EQ(env.bytes_read(), 5u);  // misses transfer nothing
}

TEST(BytesRead, TieredAndPrefixEnvsCount) {
  TierFixture f;
  f.env.write_file_atomic("d/a", bytes_of("abcd"));
  ASSERT_TRUE(f.env.read_file("d/a"));
  EXPECT_EQ(f.env.bytes_written(), 4u);
  EXPECT_EQ(f.env.bytes_read(), 4u);
  EXPECT_EQ(f.hot.bytes_read(), 4u);
  EXPECT_EQ(f.cold.bytes_read(), 0u);
}

TEST(PrefixEnv, MountsSubtreeOfBase) {
  io::MemEnv base;
  io::PrefixEnv mount(base, "root");
  mount.write_file_atomic("d/a", bytes_of("x"));
  EXPECT_TRUE(base.exists("root/d/a"));
  EXPECT_TRUE(mount.exists("d/a"));
  EXPECT_EQ(mount.list_dir("d"), std::vector<std::string>{"a"});
  mount.remove_file("d/a");
  EXPECT_FALSE(base.exists("root/d/a"));
}

TEST(ShapedEnv, ModelsLatencyAndBandwidth) {
  io::MemEnv base;
  ShapeSpec spec;
  spec.read_latency_s = 0.001;
  spec.write_latency_s = 0.002;
  spec.read_bytes_per_s = 1000.0;
  spec.write_bytes_per_s = 500.0;
  ShapedEnv env(base, spec);

  env.write_file_atomic("d/a", bytes_of("0123456789"));  // 10 bytes
  EXPECT_NEAR(env.modeled_write_seconds(), 0.002 + 10.0 / 500.0, 1e-9);
  ASSERT_TRUE(env.read_file("d/a"));
  EXPECT_NEAR(env.modeled_read_seconds(), 0.001 + 10.0 / 1000.0, 1e-9);
  // A miss costs one metadata round trip (the read latency here).
  ASSERT_FALSE(env.read_file("d/missing"));
  EXPECT_NEAR(env.modeled_read_seconds(), 2 * 0.001 + 10.0 / 1000.0, 1e-9);
}

TEST(ShapedEnv, PlainStreamChargesEveryAppendAsADeviceOp) {
  io::MemEnv base;
  ShapeSpec spec;
  spec.write_latency_s = 0.002;
  spec.write_bytes_per_s = 500.0;
  ShapedEnv env(base, spec);

  // kPlain appends land in place immediately: each one is an
  // independent device op and must pay latency + bandwidth — the WAL's
  // group-commit economics depend on per-record charging.
  auto log = env.new_writable("d/log", io::WriteMode::kPlain);
  log->append(bytes_of("aaaa"));
  log->append(bytes_of("bb"));
  log->append(bytes_of("cccc"));
  log->close();
  const double plain = 3 * 0.002 + 10.0 / 500.0;
  EXPECT_NEAR(env.modeled_write_seconds(), plain, 1e-9);

  // kAtomic stages: one latency at open, bandwidth per append — so the
  // whole-buffer write_file wrappers charge what they always charged.
  auto blob = env.new_writable("d/blob", io::WriteMode::kAtomic);
  blob->append(bytes_of("aaaa"));
  blob->append(bytes_of("bb"));
  blob->close();
  EXPECT_NEAR(env.modeled_write_seconds(), plain + 0.002 + 6.0 / 500.0, 1e-9);
}

TEST(TieredEnv, WritesLandHotReadsFallThroughCold) {
  TierFixture f;
  f.env.write_file_atomic("d/a", bytes_of("hot-data"));
  EXPECT_TRUE(f.hot.exists("d/a"));
  EXPECT_FALSE(f.cold.exists("d/a"));

  f.cold.write_file_atomic("d/b", bytes_of("cold-data"));
  const auto data = f.env.read_file("d/b");
  ASSERT_TRUE(data);
  EXPECT_EQ(*data, bytes_of("cold-data"));
  EXPECT_EQ(f.env.cold_reads(), 1u);
  EXPECT_EQ(f.env.cold_read_bytes(), 9u);
  // Without promote_on_read the object stays cold.
  EXPECT_FALSE(f.hot.exists("d/b"));

  // Union semantics.
  EXPECT_TRUE(f.env.exists("d/a"));
  EXPECT_TRUE(f.env.exists("d/b"));
  EXPECT_EQ(f.env.list_dir("d"), (std::vector<std::string>{"a", "b"}));
  f.env.remove_file("d/b");
  EXPECT_FALSE(f.cold.exists("d/b"));
}

TEST(TieredEnv, OverwriteScrubsStaleColdCopy) {
  TierFixture f;
  f.cold.write_file_atomic("d/a", bytes_of("stale"));
  f.env.write_file_atomic("d/a", bytes_of("fresh"));
  EXPECT_TRUE(f.hot.exists("d/a"));
  // The stale cold copy must die, or a later hot delete (or duplicate
  // collapse) could resurrect old bytes.
  EXPECT_FALSE(f.cold.exists("d/a"));
  EXPECT_EQ(*f.env.read_file("d/a"), bytes_of("fresh"));
}

TEST(TieredEnv, ScrubFilterSkipsColdOpsForPinnedHotPaths) {
  io::MemEnv base;
  io::PrefixEnv hot(base, "hot");
  io::PrefixEnv cold(base, "cold");
  TieredEnv env(hot, cold, /*promote_on_read=*/false,
                tier::migratable_path);
  // A migratable name still gets its stale cold copy scrubbed...
  const std::string ckpt = "cp/" + ckpt::checkpoint_file_name(1);
  cold.write_file_atomic(ckpt, bytes_of("stale"));
  env.write_file_atomic(ckpt, bytes_of("fresh"));
  EXPECT_FALSE(cold.exists(ckpt));
  // ...while non-migratable paths skip the scrub entirely (observable:
  // a planted cold copy survives the overwrite — in real directories
  // one never exists, which is exactly why the filter is safe).
  cold.write_file_atomic("cp/MANIFEST", bytes_of("planted"));
  env.write_file_atomic("cp/MANIFEST", bytes_of("fresh"));
  EXPECT_TRUE(cold.exists("cp/MANIFEST"));
  EXPECT_EQ(*env.read_file("cp/MANIFEST"), bytes_of("fresh"));
}

TEST(TieredEnv, PromoteOnReadMovesObjectHot) {
  TierFixture f(/*promote_on_read=*/true);
  f.cold.write_file_atomic("d/a", bytes_of("payload"));
  ASSERT_TRUE(f.env.read_file("d/a"));
  EXPECT_TRUE(f.hot.exists("d/a"));
  EXPECT_FALSE(f.cold.exists("d/a"));
  EXPECT_EQ(f.env.promoted_files(), 1u);
  EXPECT_EQ(f.env.promoted_bytes(), 7u);
  // Second read is a pure hot hit.
  ASSERT_TRUE(f.env.read_file("d/a"));
  EXPECT_EQ(f.env.cold_reads(), 1u);
}

/// Policy with v3 content-addressing at a tiny chunk size, so packfiles
/// exist and most chunks dedup across the mostly-frozen states.
CheckpointPolicy tiered_policy(std::uint64_t hot_budget,
                               std::size_t pin_hot_last = 1) {
  CheckpointPolicy policy;
  policy.strategy = ckpt::Strategy::kFullState;
  policy.every_steps = 1;
  policy.retention.keep_last = 0;  // retention off: placement is on trial
  policy.codec = codec::CodecId::kRaw;
  policy.chunk_bytes = 64;
  policy.tier.hot_byte_budget = hot_budget;
  policy.tier.pin_hot_last = pin_hot_last;
  policy.tier.demote_batch = 4;
  return policy;
}

TEST(Migration, DemotesOldCheckpointsUnderBudget) {
  TierFixture f;
  const std::uint64_t budget = 12 << 10;
  {
    Checkpointer ck(f.env, "cp", tiered_policy(budget));
    for (std::uint64_t step = 1; step <= 10; ++step) {
      ck.checkpoint_now(make_state(step));
    }
    const auto ts = ck.tier_stats();
    EXPECT_GT(ts.files_demoted, 0u);
    EXPECT_GT(ts.fences, 0u);
    EXPECT_LE(ts.hot_bytes, budget) << "hot tier exceeds its byte budget";
    EXPECT_EQ(ts.budget_misses, 0u);
  }
  // Cold tier actually holds data, the TIERMAP advertises it, and the
  // newest checkpoint stayed a pure hot hit.
  EXPECT_FALSE(f.cold.list_dir("cp").empty());
  EXPECT_TRUE(f.hot.exists("cp/TIERMAP"));
  const Manifest manifest = Manifest::load(f.env, "cp");
  ASSERT_EQ(manifest.entries().size(), 10u);
  EXPECT_TRUE(f.hot.exists("cp/" + manifest.latest()->file));

  // Every retained checkpoint still recovers byte-exactly through the
  // tier composition (cold reads fall through).
  for (const ckpt::ManifestEntry& e : manifest.entries()) {
    const auto st = ckpt::load_checkpoint(f.env, "cp", e.id);
    EXPECT_EQ(st, make_state(e.step)) << "id " << e.id;
  }
}

TEST(Migration, PackfilesDemoteOnlyWhenFullyCold) {
  TierFixture f;
  Checkpointer ck(f.env, "cp", tiered_policy(8 << 10));
  for (std::uint64_t step = 1; step <= 10; ++step) {
    ck.checkpoint_now(make_state(step));
  }
  // The shared first-epoch packfile holds the frozen chunks every
  // checkpoint (including the pinned-hot newest) references: it must
  // still be hot. Some per-epoch packfile of a demoted checkpoint
  // should have demoted with its referents.
  ASSERT_TRUE(f.env.exists("cp/chunks/pack-0000000001.qpak"));
  EXPECT_TRUE(f.hot.exists("cp/chunks/pack-0000000001.qpak"));
  bool some_cold_pack = false;
  for (const std::string& name : f.cold.list_dir("cp/chunks")) {
    some_cold_pack |= name.rfind("pack-", 0) == 0;
  }
  EXPECT_TRUE(some_cold_pack) << "no packfile demoted";
}

TEST(Migration, ChainsDemoteAsOneUnit) {
  TierFixture f;
  CheckpointPolicy policy;
  policy.strategy = ckpt::Strategy::kIncremental;
  policy.every_steps = 1;
  policy.full_every = 3;
  policy.retention.keep_last = 0;
  // Demotion disabled during the run (budget 0): we only want the plan.
  {
    Checkpointer ck(f.env, "cp", policy);
    for (std::uint64_t step = 1; step <= 9; ++step) {
      ck.checkpoint_now(make_state(step, 64));
    }
  }
  const Manifest manifest = Manifest::load(f.env, "cp");
  tier::TierPolicy tp;
  tp.hot_byte_budget = 1;  // everything unpinned must plan
  tp.pin_hot_last = 1;     // pins the newest chain (ids 7..9)
  ckpt::CheckpointStore store(f.env, "cp", ckpt::RetentionPolicy{}, tp);
  ASSERT_NE(store.tiering(), nullptr);
  const auto plan = store.tiering()->plan_demotions(manifest);

  // Chains {1,2,3} and {4,5,6} each form one unit; 7..9 are pinned.
  std::vector<std::set<std::string>> units;
  for (const auto& unit : plan) {
    units.emplace_back(unit.files.begin(), unit.files.end());
  }
  const auto file_of = [&](std::uint64_t id) {
    return ckpt::checkpoint_file_name(id);
  };
  bool found_123 = false, found_456 = false;
  for (const auto& unit : units) {
    found_123 |= unit == std::set<std::string>{file_of(1), file_of(2),
                                               file_of(3)};
    found_456 |= unit == std::set<std::string>{file_of(4), file_of(5),
                                               file_of(6)};
  }
  EXPECT_TRUE(found_123) << "chain 1-3 not planned as one unit";
  EXPECT_TRUE(found_456) << "chain 4-6 not planned as one unit";
  for (const auto& unit : units) {
    EXPECT_FALSE(unit.contains(file_of(9))) << "pinned tip planned";
  }
}

TEST(Migration, ReconcileCollapsesDuplicatesHotWins) {
  TierFixture f;
  f.hot.write_file_atomic("cp/" + ckpt::checkpoint_file_name(1),
                          bytes_of("fresh-hot"));
  f.cold.write_file_atomic("cp/" + ckpt::checkpoint_file_name(1),
                           bytes_of("stale-cold"));
  f.cold.write_file_atomic("cp/" + ckpt::checkpoint_file_name(2),
                           bytes_of("cold-only"));
  MigrationEngine engine(f.env, "cp", tier::TierPolicy{});
  EXPECT_EQ(engine.reconcile(), 1u);
  EXPECT_EQ(*f.env.read_file("cp/" + ckpt::checkpoint_file_name(1)),
            bytes_of("fresh-hot"));
  EXPECT_FALSE(f.cold.exists("cp/" + ckpt::checkpoint_file_name(1)));
  // The cold-only object survives and the rebuilt TIERMAP advertises it.
  EXPECT_TRUE(engine.is_cold(ckpt::checkpoint_file_name(2)));
  EXPECT_TRUE(f.hot.exists("cp/TIERMAP"));
}

TEST(Migration, ColdCheckpointsPromoteReadThroughOnAccess) {
  TierFixture f(/*promote_on_read=*/true);
  const std::uint64_t budget = 10 << 10;
  {
    Checkpointer ck(f.env, "cp", tiered_policy(budget));
    for (std::uint64_t step = 1; step <= 10; ++step) {
      ck.checkpoint_now(make_state(step));
    }
  }
  const Manifest manifest = Manifest::load(f.env, "cp");
  const std::string oldest = manifest.entries().front().file;
  ASSERT_TRUE(f.cold.exists("cp/" + oldest)) << "oldest never demoted";

  const std::uint64_t cold_before = f.env.cold_reads();
  const auto st =
      ckpt::load_checkpoint(f.env, "cp", manifest.entries().front().id);
  EXPECT_EQ(st, make_state(manifest.entries().front().step));
  EXPECT_GT(f.env.cold_reads(), cold_before);
  EXPECT_GT(f.env.promoted_files(), 0u);
  // Promoted: the container now lives hot, the cold copy died.
  EXPECT_TRUE(f.hot.exists("cp/" + oldest));
  EXPECT_FALSE(f.cold.exists("cp/" + oldest));
}

TEST(Migration, ExplicitPromoteRoundTripsWithFence) {
  TierFixture f;
  {
    Checkpointer ck(f.env, "cp", tiered_policy(8 << 10));
    for (std::uint64_t step = 1; step <= 8; ++step) {
      ck.checkpoint_now(make_state(step));
    }
  }
  ckpt::CheckpointStore store(f.env, "cp", ckpt::RetentionPolicy{},
                              tier::TierPolicy{});
  MigrationEngine* engine = store.tiering();
  ASSERT_NE(engine, nullptr);
  const auto cold_files = engine->cold_files();
  ASSERT_FALSE(cold_files.empty());
  const std::string name = cold_files.front();
  EXPECT_EQ(engine->promote({name}), 1u);
  EXPECT_TRUE(f.hot.exists("cp/" + name));
  EXPECT_FALSE(f.cold.exists("cp/" + name));
  EXPECT_FALSE(engine->is_cold(name));
}

TEST(Migration, GcDeletesVictimsFromBothTiers) {
  TierFixture f;
  auto policy = tiered_policy(6 << 10);
  {
    Checkpointer ck(f.env, "cp", policy);
    for (std::uint64_t step = 1; step <= 8; ++step) {
      ck.checkpoint_now(make_state(step));
    }
    ASSERT_FALSE(f.cold.list_dir("cp").empty());
  }
  // Restart with a tight retention window: demoted victims must vanish
  // from the cold tier too, and recovery still lands on the newest.
  policy.retention.keep_last = 2;
  {
    Checkpointer ck(f.env, "cp", policy);
    ck.checkpoint_now(make_state(9));
  }
  const Manifest manifest = Manifest::load(f.env, "cp");
  EXPECT_LE(manifest.entries().size(), 3u);
  for (const std::string& name : f.cold.list_dir("cp")) {
    if (const auto id = ckpt::parse_checkpoint_file_name(name)) {
      EXPECT_NE(manifest.find(*id), nullptr)
          << "cold tier leaked GC victim " << name;
    }
  }
  const auto outcome = ckpt::recover_latest(f.env, "cp");
  ASSERT_TRUE(outcome);
  EXPECT_EQ(outcome->step, 9u);
}

TEST(Migration, VerifyDirectoryReportsTierResidency) {
  TierFixture f;
  {
    Checkpointer ck(f.env, "cp", tiered_policy(10 << 10));
    for (std::uint64_t step = 1; step <= 10; ++step) {
      ck.checkpoint_now(make_state(step));
    }
  }
  const auto report = ckpt::verify_directory(f.env, "cp");
  EXPECT_TRUE(report.healthy()) << report.summary();
  bool some_cold = false, some_hot = false;
  for (const auto& r : report.checkpoints) {
    some_cold |= r.tier == "cold";
    some_hot |= r.tier == "hot";
    EXPECT_FALSE(r.tier.empty());
  }
  EXPECT_TRUE(some_cold);
  EXPECT_TRUE(some_hot);
}

/// Cold tier that refuses every write (full / unreachable object store).
class BrokenColdEnv final : public io::ForwardingEnv {
 public:
  explicit BrokenColdEnv(io::Env& base) : ForwardingEnv(base) {}
  std::unique_ptr<io::WritableFile> new_writable(const std::string&,
                                                 io::WriteMode) override {
    throw std::runtime_error("cold tier unavailable");
  }
  void write_file_atomic(const std::string&, util::ByteSpan) override {
    throw std::runtime_error("cold tier unavailable");
  }
  void write_file(const std::string&, util::ByteSpan) override {
    throw std::runtime_error("cold tier unavailable");
  }
  [[nodiscard]] std::uint64_t bytes_written() const override { return 0; }
};

TEST(Migration, ColdTierFailureNeverPoisonsDurableInstalls) {
  // Demotion is best-effort: if the capacity tier rejects every write,
  // checkpoints must keep installing hot, nothing may be counted as
  // dropped, and incremental chains must stay intact (a thrown migrate
  // on the async install path used to run on_failed and quarantine the
  // just-installed checkpoint's children).
  io::MemEnv base;
  io::PrefixEnv hot(base, "hot");
  io::PrefixEnv cold_base(base, "cold");
  BrokenColdEnv cold(cold_base);
  TieredEnv env(hot, cold, /*promote_on_read=*/false);

  CheckpointPolicy policy;
  policy.strategy = ckpt::Strategy::kIncremental;
  policy.every_steps = 1;
  // Short chains and a one-entry hot pin, so the older chain segments
  // are genuinely demotable (one endless chain would be pinned whole by
  // chain closure and never trigger a cold write at all).
  policy.full_every = 2;
  policy.retention.keep_last = 0;
  policy.async = true;
  policy.tier.hot_byte_budget = 1;  // always over budget: migrate tries
  policy.tier.pin_hot_last = 1;
  {
    Checkpointer ck(env, "cp", policy);
    for (std::uint64_t step = 1; step <= 6; ++step) {
      ck.checkpoint_now(make_state(step, 64));
      ck.flush();
    }
    EXPECT_EQ(ck.stats().dropped_writes, 0u);
  }
  const Manifest manifest = Manifest::load(env, "cp");
  EXPECT_EQ(manifest.entries().size(), 6u);
  for (const ckpt::ManifestEntry& e : manifest.entries()) {
    EXPECT_NO_THROW((void)ckpt::load_checkpoint(env, "cp", e.id))
        << "id " << e.id;
  }
  EXPECT_TRUE(cold_base.list_dir("cp").empty());
}

TEST(ManifestStats, StatLinesRoundTripWithoutWarnings) {
  io::MemEnv env;
  Manifest m;
  ckpt::ManifestEntry e;
  e.id = 1;
  e.file = ckpt::checkpoint_file_name(1);
  m.upsert(e);
  m.set_stat("dropped_writes", 3);
  m.save(env, "cp");
  const Manifest loaded = Manifest::load(env, "cp");
  EXPECT_EQ(loaded.parse_warnings(), 0u);
  EXPECT_EQ(loaded.stat("dropped_writes"), 3u);
  EXPECT_EQ(loaded.stat("absent"), 0u);
  ASSERT_EQ(loaded.entries().size(), 1u);
}

/// Env decorator failing one specific checkpoint-file write, to force a
/// pipeline drop whose lifetime count must survive a restart.
class FailOnceEnv final : public io::ForwardingEnv {
 public:
  explicit FailOnceEnv(io::Env& base, int fail_on)
      : ForwardingEnv(base), fail_on_(fail_on) {}
  void write_file_atomic(const std::string& path,
                         util::ByteSpan data) override {
    if (path.find("ckpt-") != std::string::npos &&
        ++ckpt_writes_ == fail_on_) {
      throw std::runtime_error("injected write failure");
    }
    base_.write_file_atomic(path, data);
  }

 private:
  const int fail_on_;
  int ckpt_writes_ = 0;
};

TEST(CheckpointerStats, DroppedWritesSurviveRestartViaManifest) {
  io::MemEnv mem;
  FailOnceEnv env(mem, 2);
  CheckpointPolicy policy;
  policy.every_steps = 1;
  policy.async = true;
  policy.retention.keep_last = 0;
  {
    Checkpointer ck(env, "cp", policy);
    for (std::uint64_t step = 1; step <= 4; ++step) {
      ck.checkpoint_now(make_state(step, 64));
      ck.flush();
    }
    const auto stats = ck.stats();
    EXPECT_EQ(stats.dropped_writes, 1u);
    EXPECT_EQ(stats.lifetime_dropped_writes, 1u);
  }
  // A fresh Checkpointer (fresh process) still knows about the loss.
  {
    Checkpointer ck(env, "cp", policy);
    EXPECT_EQ(ck.stats().lifetime_dropped_writes, 1u);
    EXPECT_EQ(ck.stats().dropped_writes, 0u);
  }
  EXPECT_EQ(Manifest::load(mem, "cp").stat("dropped_writes"), 1u);
}

}  // namespace
}  // namespace qnn

// Tests for manifest, checkpointer (policies, retention, incremental
// chains), async writer, and recovery fallback.
#include <gtest/gtest.h>

#include "ckpt/checkpointer.hpp"
#include "ckpt/recovery.hpp"
#include "ckpt/state_codec.hpp"
#include "io/fault_env.hpp"
#include "io/mem_env.hpp"
#include "qnn/ansatz.hpp"
#include "util/strings.hpp"
#include "qnn/loss.hpp"
#include "qnn/trainer.hpp"

namespace qnn::ckpt {
namespace {

// ---------- manifest ----------

TEST(Manifest, FileNameRoundTrip) {
  EXPECT_EQ(checkpoint_file_name(42), "ckpt-0000000042.qckp");
  EXPECT_EQ(parse_checkpoint_file_name("ckpt-0000000042.qckp").value(), 42u);
  EXPECT_FALSE(parse_checkpoint_file_name("ckpt-42.qckp").has_value());
  EXPECT_FALSE(parse_checkpoint_file_name("ckpt-00000000xx.qckp").has_value());
  EXPECT_FALSE(parse_checkpoint_file_name("other.bin").has_value());
}

TEST(Manifest, SaveLoadRoundTrip) {
  io::MemEnv env;
  Manifest m;
  m.upsert(ManifestEntry{.id = 1, .parent_id = 0, .step = 10,
                         .file = checkpoint_file_name(1), .bytes = 100});
  m.upsert(ManifestEntry{.id = 2, .parent_id = 1, .step = 20,
                         .file = checkpoint_file_name(2), .bytes = 50});
  m.save(env, "d");
  const Manifest back = Manifest::load(env, "d");
  ASSERT_EQ(back.entries().size(), 2u);
  EXPECT_EQ(back.entries()[0].id, 1u);
  EXPECT_EQ(back.entries()[1].parent_id, 1u);
  EXPECT_EQ(back.entries()[1].step, 20u);
  EXPECT_EQ(back.max_id(), 2u);
  EXPECT_EQ(back.latest()->id, 2u);
}

TEST(Manifest, LoadMissingIsEmpty) {
  io::MemEnv env;
  EXPECT_TRUE(Manifest::load(env, "nope").entries().empty());
  EXPECT_EQ(Manifest::load(env, "nope").max_id(), 0u);
}

TEST(Manifest, MalformedLinesSkipped) {
  io::MemEnv env;
  const std::string text =
      "qnnckpt-manifest v1\n"
      "ckpt id=3 parent=0 step=30 bytes=9 file=ckpt-0000000003.qckp\n"
      "ckpt id=borked\n"
      "something else entirely\n"
      "ckpt id=4 file=f4\n";
  env.write_file_atomic(
      "d/MANIFEST",
      util::ByteSpan{reinterpret_cast<const std::uint8_t*>(text.data()),
                     text.size()});
  const Manifest m = Manifest::load(env, "d");
  ASSERT_EQ(m.entries().size(), 2u);
  EXPECT_EQ(m.entries()[0].id, 3u);
  EXPECT_EQ(m.entries()[1].id, 4u);
}

TEST(Manifest, UpsertReplacesAndSorts) {
  Manifest m;
  m.upsert(ManifestEntry{.id = 5, .file = "f5"});
  m.upsert(ManifestEntry{.id = 2, .file = "f2"});
  m.upsert(ManifestEntry{.id = 5, .file = "f5b", .bytes = 1});
  ASSERT_EQ(m.entries().size(), 2u);
  EXPECT_EQ(m.entries()[0].id, 2u);
  EXPECT_EQ(m.entries()[1].file, "f5b");
  m.remove(2);
  EXPECT_EQ(m.entries().size(), 1u);
  EXPECT_EQ(m.find(2), nullptr);
}

TEST(CheckpointStore, PlanRetainedFollowsParentChains) {
  io::MemEnv env;
  Manifest m;
  // full 1 <- incr 2 <- incr 3; full 4; incr 5 (parent 4)
  m.upsert(ManifestEntry{.id = 1, .parent_id = 0, .file = "1"});
  m.upsert(ManifestEntry{.id = 2, .parent_id = 1, .file = "2"});
  m.upsert(ManifestEntry{.id = 3, .parent_id = 2, .file = "3"});
  m.upsert(ManifestEntry{.id = 4, .parent_id = 0, .file = "4"});
  m.upsert(ManifestEntry{.id = 5, .parent_id = 4, .file = "5"});
  // Keep last 2 entries (4, 5) -> ancestors of 5 = {4}; total {4,5}.
  CheckpointStore keep2(env, "d", RetentionPolicy{.keep_last = 2});
  EXPECT_EQ(keep2.plan_retained(m), (std::vector<std::uint64_t>{4, 5}));
  // Keep last 3 -> {3,4,5} + chain of 3 = {1,2}.
  CheckpointStore keep3(env, "d", RetentionPolicy{.keep_last = 3});
  EXPECT_EQ(keep3.plan_retained(m),
            (std::vector<std::uint64_t>{1, 2, 3, 4, 5}));
}

// ---------- helpers: a real training state ----------

qnn::TrainingState make_state(std::uint64_t step, std::uint64_t seed = 7,
                              std::size_t sim_qubits = 0) {
  qnn::TrainingState s;
  s.step = step;
  util::Rng rng(seed + step);
  s.params.resize(24);
  for (double& p : s.params) {
    p = rng.uniform(-3.0, 3.0);
  }
  s.optimizer_name = "adam";
  s.optimizer_state.resize(400);
  for (auto& b : s.optimizer_state) {
    b = static_cast<std::uint8_t>(rng());
  }
  s.rng_state = rng.serialize();
  s.loss_history.resize(step, 0.5);
  s.epoch = step / 10;
  s.cursor = step % 10;
  s.permutation = {0, 1, 2, 3};
  s.workload_tag = "vqe";
  if (sim_qubits > 0) {
    // A dense (incompressible) state, as a mid-circuit snapshot would be.
    s.simulator_state = qnn::random_state(sim_qubits, seed).serialize();
  }
  return s;
}

// ---------- checkpointer basics ----------

TEST(Checkpointer, EveryStepsPolicy) {
  io::MemEnv env;
  CheckpointPolicy policy;
  policy.every_steps = 5;
  Checkpointer ck(env, "cp", policy);
  int written = 0;
  for (std::uint64_t step = 1; step <= 20; ++step) {
    written += ck.maybe_checkpoint(make_state(step)) ? 1 : 0;
  }
  EXPECT_EQ(written, 4);
  EXPECT_EQ(ck.stats().checkpoints, 4u);
  // Same step twice -> only one checkpoint.
  EXPECT_FALSE(ck.maybe_checkpoint(make_state(20)));
}

TEST(Checkpointer, WritesRecoverableCheckpoint) {
  io::MemEnv env;
  CheckpointPolicy policy;
  policy.strategy = Strategy::kFullState;
  Checkpointer ck(env, "cp", policy);
  const auto state = make_state(10, 7, /*sim_qubits=*/4);
  ck.checkpoint_now(state);

  const auto outcome = recover_latest(env, "cp");
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->step, 10u);
  EXPECT_EQ(outcome->state, state);
  EXPECT_TRUE(outcome->notes.empty());
}

TEST(Checkpointer, ParamsOnlyExcludesSimulator) {
  io::MemEnv env;
  CheckpointPolicy pol_small;
  pol_small.strategy = Strategy::kParamsOnly;
  CheckpointPolicy pol_full;
  pol_full.strategy = Strategy::kFullState;

  const auto state = make_state(10, 7, /*sim_qubits=*/10);  // 16 KiB sv

  Checkpointer small(env, "a", pol_small);
  small.checkpoint_now(state);
  Checkpointer full(env, "b", pol_full);
  full.checkpoint_now(state);

  const auto size_a = *env.file_size("a/" + checkpoint_file_name(1));
  const auto size_b = *env.file_size("b/" + checkpoint_file_name(1));
  EXPECT_LT(size_a + (1u << 14), size_b);

  // Recovery from params-only yields a state without simulator bytes.
  const auto rec = recover_latest(env, "a");
  ASSERT_TRUE(rec.has_value());
  EXPECT_TRUE(rec->state.simulator_state.empty());
  EXPECT_EQ(rec->state.params, state.params);
}

TEST(Checkpointer, RetentionKeepsOnlyLastK) {
  io::MemEnv env;
  CheckpointPolicy policy;
  policy.every_steps = 1;
  policy.retention.keep_last = 3;
  Checkpointer ck(env, "cp", policy);
  for (std::uint64_t step = 1; step <= 10; ++step) {
    ck.maybe_checkpoint(make_state(step));
  }
  const auto files = env.list_dir("cp");
  // MANIFEST + 3 checkpoint files.
  EXPECT_EQ(files.size(), 4u);
  const Manifest m = Manifest::load(env, "cp");
  ASSERT_EQ(m.entries().size(), 3u);
  EXPECT_EQ(m.entries()[0].step, 8u);
  EXPECT_EQ(m.latest()->step, 10u);
}

TEST(Checkpointer, KeepLastZeroKeepsEverything) {
  io::MemEnv env;
  CheckpointPolicy policy;
  policy.every_steps = 1;
  policy.retention.keep_last = 0;
  Checkpointer ck(env, "cp", policy);
  for (std::uint64_t step = 1; step <= 6; ++step) {
    ck.maybe_checkpoint(make_state(step));
  }
  EXPECT_EQ(Manifest::load(env, "cp").entries().size(), 6u);
}

TEST(Checkpointer, ResumesIdAllocationAcrossInstances) {
  io::MemEnv env;
  CheckpointPolicy policy;
  {
    Checkpointer ck(env, "cp", policy);
    ck.checkpoint_now(make_state(10));
    ck.checkpoint_now(make_state(20));
  }
  {
    Checkpointer ck(env, "cp", policy);  // fresh instance, same dir
    ck.checkpoint_now(make_state(30));
  }
  const Manifest m = Manifest::load(env, "cp");
  ASSERT_EQ(m.entries().size(), 3u);
  EXPECT_EQ(m.entries()[2].id, 3u);  // no id collision
}

// ---------- incremental chains ----------

TEST(Checkpointer, IncrementalChainRecoversExactState) {
  io::MemEnv env;
  CheckpointPolicy policy;
  policy.strategy = Strategy::kIncremental;
  policy.every_steps = 1;
  policy.retention.keep_last = 0;
  policy.full_every = 4;
  Checkpointer ck(env, "cp", policy);

  std::vector<qnn::TrainingState> states;
  for (std::uint64_t step = 1; step <= 10; ++step) {
    states.push_back(make_state(step, 7, 3));
    ck.maybe_checkpoint(states.back());
  }
  EXPECT_GT(ck.stats().incremental_checkpoints, 0u);
  EXPECT_GE(ck.stats().full_checkpoints, 2u);

  // Every checkpoint id must resolve to its exact source state.
  for (std::uint64_t id = 1; id <= 10; ++id) {
    const auto state = load_checkpoint(env, "cp", id);
    EXPECT_EQ(state, states[id - 1]) << "id " << id;
  }
}

TEST(Checkpointer, IncrementalDeltasSmallerWhenStateBarelyChanges) {
  io::MemEnv env;
  CheckpointPolicy policy;
  policy.strategy = Strategy::kIncremental;
  policy.every_steps = 1;
  policy.retention.keep_last = 0;
  policy.full_every = 100;
  policy.codec = codec::CodecId::kRle;
  Checkpointer ck(env, "cp", policy);

  // Identical state at successive steps -> deltas are almost all zeros.
  auto state = make_state(1, 7, 6);
  ck.maybe_checkpoint(state);
  state.step = 2;
  ck.maybe_checkpoint(state);

  const auto full_size = *env.file_size("cp/" + checkpoint_file_name(1));
  const auto delta_size = *env.file_size("cp/" + checkpoint_file_name(2));
  EXPECT_LT(delta_size * 5, full_size);
}

TEST(Checkpointer, FullEveryBoundsChainLength) {
  io::MemEnv env;
  CheckpointPolicy policy;
  policy.strategy = Strategy::kIncremental;
  policy.every_steps = 1;
  policy.retention.keep_last = 0;
  policy.full_every = 3;
  Checkpointer ck(env, "cp", policy);
  for (std::uint64_t step = 1; step <= 9; ++step) {
    ck.maybe_checkpoint(make_state(step));
  }
  const Manifest m = Manifest::load(env, "cp");
  int fulls = 0;
  for (const auto& e : m.entries()) {
    fulls += e.is_incremental() ? 0 : 1;
  }
  EXPECT_EQ(fulls, 3);
}

TEST(Checkpointer, RetentionNeverBreaksChains) {
  io::MemEnv env;
  CheckpointPolicy policy;
  policy.strategy = Strategy::kIncremental;
  policy.every_steps = 1;
  policy.retention.keep_last = 2;
  policy.full_every = 5;
  Checkpointer ck(env, "cp", policy);
  for (std::uint64_t step = 1; step <= 20; ++step) {
    ck.maybe_checkpoint(make_state(step, 7, 2));
  }
  // Whatever retention kept, the newest checkpoint must resolve.
  const auto outcome = recover_latest(env, "cp");
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->step, 20u);
  EXPECT_TRUE(outcome->notes.empty());
}

// ---------- checkpoint store: retention + GC ----------

TEST(CheckpointStore, StepSpacingKeepsSparseLongHorizonHistory) {
  io::MemEnv env;
  CheckpointPolicy policy;
  policy.every_steps = 1;
  policy.retention.keep_last = 2;
  policy.retention.step_spacing = 5;
  Checkpointer ck(env, "cp", policy);
  for (std::uint64_t step = 1; step <= 20; ++step) {
    ck.maybe_checkpoint(make_state(step));
  }
  const Manifest m = Manifest::load(env, "cp");
  std::vector<std::uint64_t> steps;
  for (const ManifestEntry& e : m.entries()) {
    steps.push_back(e.step);
  }
  // Window {19, 20} plus spaced anchors 1, 6, 11, 16 (every >= 5 steps).
  EXPECT_EQ(steps, (std::vector<std::uint64_t>{1, 6, 11, 16, 19, 20}));
  // Every survivor resolves, and files on disk match the manifest.
  for (const ManifestEntry& e : m.entries()) {
    EXPECT_NO_THROW(load_checkpoint(env, "cp", e.id)) << e.id;
  }
  EXPECT_EQ(env.list_dir("cp").size(), m.entries().size() + 1);  // + MANIFEST
  EXPECT_GT(ck.gc_stats().files_deleted, 0u);
}

TEST(CheckpointStore, YoungDalySpacingDerivedWhenUnset) {
  RetentionPolicy p;
  p.ckpt_cost_seconds = 2.0;
  p.mtbf_seconds = 100.0;
  p.step_seconds = 0.5;
  EXPECT_EQ(p.effective_step_spacing(), 40u);  // sqrt(2*2*100)/0.5
  p.step_spacing = 7;  // explicit spacing wins
  EXPECT_EQ(p.effective_step_spacing(), 7u);
}

TEST(CheckpointStore, ByteBudgetEvictsOldestAndNeverTheNewest) {
  // Measure one checkpoint's encoded size first.
  std::uint64_t one_size = 0;
  {
    io::MemEnv probe;
    CheckpointPolicy p;
    p.retention.keep_last = 0;
    Checkpointer ck(probe, "cp", p);
    ck.checkpoint_now(make_state(1));
    one_size = *probe.file_size("cp/" + checkpoint_file_name(1));
  }

  io::MemEnv env;
  CheckpointPolicy policy;
  policy.every_steps = 1;
  policy.retention.keep_last = 0;  // budget alone bounds the directory
  policy.retention.byte_budget = one_size * 3 + one_size / 2;
  Checkpointer ck(env, "cp", policy);
  for (std::uint64_t step = 1; step <= 10; ++step) {
    ck.maybe_checkpoint(make_state(step));
  }
  const Manifest m = Manifest::load(env, "cp");
  ASSERT_FALSE(m.entries().empty());
  EXPECT_LT(m.entries().size(), 10u);
  EXPECT_EQ(m.latest()->step, 10u) << "newest is sacrosanct";
  std::uint64_t total = 0;
  for (const ManifestEntry& e : m.entries()) {
    total += e.bytes;
    EXPECT_NO_THROW(load_checkpoint(env, "cp", e.id)) << e.id;
  }
  EXPECT_LE(total, policy.retention.byte_budget);
  const auto gc = ck.gc_stats();
  EXPECT_GT(gc.files_deleted, 0u);
  EXPECT_GT(gc.bytes_reclaimed, 0u);
  EXPECT_GT(gc.runs, 0u);
  EXPECT_GT(gc.manifest_rewrites, 0u);
}

TEST(CheckpointStore, ByteBudgetEvictionNeverStrandsDeltaChildren) {
  std::uint64_t one_size = 0;
  {
    io::MemEnv probe;
    CheckpointPolicy p;
    p.retention.keep_last = 0;
    Checkpointer ck(probe, "cp", p);
    ck.checkpoint_now(make_state(1, 7, 2));
    one_size = *probe.file_size("cp/" + checkpoint_file_name(1));
  }
  io::MemEnv env;
  CheckpointPolicy policy;
  policy.strategy = Strategy::kIncremental;
  policy.every_steps = 1;
  policy.full_every = 4;
  policy.retention.keep_last = 0;
  policy.retention.byte_budget = one_size * 4;
  Checkpointer ck(env, "cp", policy);
  for (std::uint64_t step = 1; step <= 16; ++step) {
    ck.maybe_checkpoint(make_state(step, 7, 2));
  }
  // Whatever the budget evicted, every advertised entry must resolve
  // (eviction is chain-closed: dropping a parent drops its deltas too).
  const Manifest m = Manifest::load(env, "cp");
  ASSERT_FALSE(m.entries().empty());
  for (const ManifestEntry& e : m.entries()) {
    EXPECT_NO_THROW(load_checkpoint(env, "cp", e.id)) << e.id;
  }
  EXPECT_EQ(m.latest()->step, 16u);
}

TEST(CheckpointStore, StartupSweepReapsOrphansBelowTipOnly) {
  io::MemEnv env;
  CheckpointPolicy policy;
  policy.every_steps = 1;
  policy.retention.keep_last = 2;
  {
    Checkpointer ck(env, "cp", policy);
    for (std::uint64_t step = 1; step <= 4; ++step) {
      ck.maybe_checkpoint(make_state(step));
    }
  }
  // Manifest now holds ids {3, 4}. Plant an unreferenced file below the
  // tip (a GC fence/delete crash leftover) and one above it (an install
  // whose manifest update a crash swallowed).
  const Bytes junk(64, 0xAB);
  env.write_file_atomic("cp/" + checkpoint_file_name(1), junk);
  env.write_file_atomic("cp/" + checkpoint_file_name(9), junk);
  {
    Checkpointer ck(env, "cp", policy);
    EXPECT_EQ(ck.gc_stats().orphans_deleted, 1u);
  }
  EXPECT_FALSE(env.exists("cp/" + checkpoint_file_name(1)));
  EXPECT_TRUE(env.exists("cp/" + checkpoint_file_name(9)))
      << "files newer than the manifest tip must survive the sweep";
}

TEST(CheckpointStore, DamagedManifestSuppressesOrphanSweep) {
  // A manifest that lost a line (bit rot, torn rewrite) may no longer
  // name a parent file that an advertised delta still resolves through.
  // The sweep must not treat that file as garbage — deleting it would
  // turn recoverable manifest damage into permanent data loss.
  io::MemEnv env;
  CheckpointPolicy policy;
  policy.strategy = Strategy::kIncremental;
  policy.every_steps = 1;
  policy.full_every = 10;
  policy.retention.keep_last = 0;
  {
    Checkpointer ck(env, "cp", policy);
    ck.maybe_checkpoint(make_state(1, 7, 2));  // full (id 1)
    ck.maybe_checkpoint(make_state(2, 7, 2));  // delta on 1
    ck.maybe_checkpoint(make_state(3, 7, 2));  // delta on 2
  }
  // Damage the MIDDLE entry's line: manifest advertises {1, 3}, file 2
  // still exists on disk and id 3 still needs it.
  const auto data = env.read_file("cp/MANIFEST");
  ASSERT_TRUE(data.has_value());
  std::string text(data->begin(), data->end());
  const auto pos = text.find("id=2");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 4, "id=X");
  env.write_file_atomic(
      "cp/MANIFEST",
      util::ByteSpan{reinterpret_cast<const std::uint8_t*>(text.data()),
                     text.size()});

  {
    Checkpointer ck(env, "cp", policy);  // startup sweep runs here
    EXPECT_EQ(ck.gc_stats().orphans_deleted, 0u);
  }
  EXPECT_TRUE(env.exists("cp/" + checkpoint_file_name(2)))
      << "sweep deleted a file an advertised delta still chains through";
  // The newest advertised checkpoint must still resolve through it.
  EXPECT_EQ(load_checkpoint(env, "cp", 3), make_state(3, 7, 2));
}

TEST(CheckpointStore, CleanlyLostManifestLineAlsoSuppressesSweep) {
  // A whole line can vanish without a parse warning (external edit, copy
  // truncated exactly at a line boundary). The dangling parent link must
  // still suppress the sweep — the lost parent's own ancestors are only
  // named in file headers, so no partial shield is safe.
  io::MemEnv env;
  CheckpointPolicy policy;
  policy.strategy = Strategy::kIncremental;
  policy.every_steps = 1;
  policy.full_every = 10;
  policy.retention.keep_last = 0;
  {
    Checkpointer ck(env, "cp", policy);
    for (std::uint64_t step = 1; step <= 4; ++step) {
      ck.maybe_checkpoint(make_state(step, 7, 2));  // 1 full, 2..4 deltas
    }
  }
  // Remove entries 2 and 3 cleanly: the manifest advertises {1, 4}, no
  // warnings, and 4's chain dangles at parent 3 — files 2 and 3 must
  // survive or id 4 can never resolve again.
  const auto data = env.read_file("cp/MANIFEST");
  ASSERT_TRUE(data.has_value());
  std::string text(data->begin(), data->end());
  std::string kept;
  for (const std::string& line : util::split(text, '\n')) {
    if (line.find("id=2") == std::string::npos &&
        line.find("id=3") == std::string::npos && !line.empty()) {
      kept += line + "\n";
    }
  }
  env.write_file_atomic(
      "cp/MANIFEST",
      util::ByteSpan{reinterpret_cast<const std::uint8_t*>(kept.data()),
                     kept.size()});
  ASSERT_EQ(Manifest::load(env, "cp").parse_warnings(), 0u);

  {
    Checkpointer ck(env, "cp", policy);  // startup sweep runs here
    EXPECT_EQ(ck.gc_stats().orphans_deleted, 0u);
  }
  EXPECT_TRUE(env.exists("cp/" + checkpoint_file_name(2)));
  EXPECT_TRUE(env.exists("cp/" + checkpoint_file_name(3)));
  EXPECT_EQ(load_checkpoint(env, "cp", 4), make_state(4, 7, 2));
}

TEST(CheckpointStore, PlanRetainedMatchesCollect) {
  io::MemEnv env;
  Manifest m;
  for (std::uint64_t id = 1; id <= 6; ++id) {
    m.upsert(ManifestEntry{.id = id,
                           .parent_id = id % 3 == 1 ? 0 : id - 1,
                           .step = id * 10,
                           .file = checkpoint_file_name(id),
                           .bytes = 100});
    env.write_file_atomic("d/" + checkpoint_file_name(id), Bytes(100, 1));
  }
  m.save(env, "d");
  CheckpointStore store(env, "d", RetentionPolicy{.keep_last = 2});
  const auto plan = store.plan_retained(m);
  // Newest 2 are {5, 6}; 6's chain is 6->5->4, so 4 rides along.
  EXPECT_EQ(plan, (std::vector<std::uint64_t>{4, 5, 6}));
  const std::size_t deleted = store.collect(m);
  EXPECT_EQ(deleted, 3u);
  ASSERT_EQ(m.entries().size(), 3u);
  for (std::uint64_t id : {4u, 5u, 6u}) {
    EXPECT_TRUE(env.exists("d/" + checkpoint_file_name(id)));
  }
  for (std::uint64_t id : {1u, 2u, 3u}) {
    EXPECT_FALSE(env.exists("d/" + checkpoint_file_name(id)));
  }
  // The on-disk manifest matches the in-memory one after the fences.
  const Manifest back = Manifest::load(env, "d");
  EXPECT_EQ(back.entries().size(), 3u);
}

// ---------- manifest damage surfacing ----------

TEST(Manifest, TornTrailingLineCountedAndSurfacedInRecovery) {
  io::MemEnv env;
  CheckpointPolicy policy;
  policy.every_steps = 1;
  policy.retention.keep_last = 0;
  Checkpointer ck(env, "cp", policy);
  ck.maybe_checkpoint(make_state(1));
  ck.maybe_checkpoint(make_state(2));

  // Tear the manifest mid-way through its last line, as a crash during a
  // non-atomic rewrite would: cut at the final '=' so the trailing token
  // cannot parse as a key=value pair.
  const auto data = env.read_file("cp/MANIFEST");
  ASSERT_TRUE(data.has_value());
  std::string text(data->begin(), data->end());
  text.resize(text.rfind('='));
  env.write_file_atomic(
      "cp/MANIFEST",
      util::ByteSpan{reinterpret_cast<const std::uint8_t*>(text.data()),
                     text.size()});

  const Manifest m = Manifest::load(env, "cp");
  EXPECT_EQ(m.parse_warnings(), 1u);
  EXPECT_EQ(m.entries().size(), 1u);

  const auto outcome = recover_latest(env, "cp");
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->step, 1u);  // the torn entry is no longer advertised
  bool surfaced = false;
  for (const std::string& note : outcome->notes) {
    surfaced = surfaced || note.find("unparseable") != std::string::npos;
  }
  EXPECT_TRUE(surfaced) << "manifest damage must reach RecoveryOutcome notes";
}

TEST(Manifest, CleanManifestHasNoWarnings) {
  io::MemEnv env;
  Manifest m;
  m.upsert(ManifestEntry{.id = 1, .file = checkpoint_file_name(1)});
  m.save(env, "d");
  EXPECT_EQ(Manifest::load(env, "d").parse_warnings(), 0u);
}

TEST(Manifest, TornTailStatLineNeverShadowsTheRealValue) {
  io::MemEnv env;
  // "stat dropped_writes=123" torn out of "...=1234\n" parses cleanly —
  // it is a well-formed line with the wrong value. save() terminates
  // every line, so any file not ending in '\n' has a torn tail that
  // must be counted as damage, never parsed.
  const std::string text =
      "qnnckpt-manifest v1\n"
      "stat dropped_writes=123";
  env.write_file_atomic(
      "d/MANIFEST",
      util::ByteSpan{reinterpret_cast<const std::uint8_t*>(text.data()),
                     text.size()});
  const Manifest m = Manifest::load(env, "d");
  EXPECT_EQ(m.stat("dropped_writes"), 0u);
  EXPECT_EQ(m.parse_warnings(), 1u);
}

TEST(Manifest, TornTailEntryLineNeverAdvertisesATruncatedEntry) {
  io::MemEnv env;
  // The final ckpt line is torn inside its file name yet still parses
  // as a complete entry — one pointing at a file that does not exist.
  // Advertising it would send recovery (and GC fences) after a phantom.
  const std::string text =
      "qnnckpt-manifest v1\n"
      "ckpt id=1 parent=0 step=10 bytes=9 file=ckpt-0000000001.qckp\n"
      "ckpt id=2 parent=1 step=20 bytes=9 file=ckpt-00000000";
  env.write_file_atomic(
      "d/MANIFEST",
      util::ByteSpan{reinterpret_cast<const std::uint8_t*>(text.data()),
                     text.size()});
  const Manifest m = Manifest::load(env, "d");
  ASSERT_EQ(m.entries().size(), 1u);
  EXPECT_EQ(m.entries()[0].id, 1u);
  EXPECT_EQ(m.parse_warnings(), 1u);
}

TEST(Manifest, TornTailOfPureWhitespaceIsNotDamage) {
  io::MemEnv env;
  const std::string text = "qnnckpt-manifest v1\n  ";
  env.write_file_atomic(
      "d/MANIFEST",
      util::ByteSpan{reinterpret_cast<const std::uint8_t*>(text.data()),
                     text.size()});
  EXPECT_EQ(Manifest::load(env, "d").parse_warnings(), 0u);
}

TEST(CheckpointerStats, LifetimeDroppedWritesStableAcrossReopenCycles) {
  io::MemEnv env;
  {
    // A prior session's loss record.
    Manifest m;
    m.set_stat("dropped_writes", 3);
    m.save(env, "cp");
  }
  CheckpointPolicy policy;
  policy.every_steps = 1;
  policy.retention.keep_last = 0;
  // Two full reopen cycles, each persisting the manifest via installs:
  // the lifetime count must stay 3, not compound to 6 and then 9 by
  // re-adding the base on every save.
  for (std::uint64_t cycle = 1; cycle <= 2; ++cycle) {
    Checkpointer ck(env, "cp", policy);
    EXPECT_EQ(ck.stats().lifetime_dropped_writes, 3u) << "cycle " << cycle;
    ck.maybe_checkpoint(make_state(cycle * 2 - 1));
    ck.maybe_checkpoint(make_state(cycle * 2));
    EXPECT_EQ(ck.stats().lifetime_dropped_writes, 3u) << "cycle " << cycle;
    EXPECT_EQ(ck.stats().dropped_writes, 0u);
  }
  EXPECT_EQ(Manifest::load(env, "cp").stat("dropped_writes"), 3u);
}

// ---------- recovery fallback ----------

TEST(Recovery, EmptyDirectoryIsNullopt) {
  io::MemEnv env;
  EXPECT_FALSE(recover_latest(env, "empty").has_value());
}

TEST(Recovery, FallsBackWhenNewestCorrupt) {
  io::MemEnv env;
  CheckpointPolicy policy;
  policy.every_steps = 1;
  policy.retention.keep_last = 0;
  Checkpointer ck(env, "cp", policy);
  ck.maybe_checkpoint(make_state(1));
  ck.maybe_checkpoint(make_state(2));
  ck.maybe_checkpoint(make_state(3));

  ASSERT_TRUE(env.flip_bit("cp/" + checkpoint_file_name(3), 12345));
  const auto outcome = recover_latest(env, "cp");
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->step, 2u);
  ASSERT_EQ(outcome->notes.size(), 1u);
  EXPECT_NE(outcome->notes[0].find("ckpt 3"), std::string::npos);
}

TEST(Recovery, FallsBackPastMultipleCorruptCheckpoints) {
  io::MemEnv env;
  CheckpointPolicy policy;
  policy.every_steps = 1;
  policy.retention.keep_last = 0;
  Checkpointer ck(env, "cp", policy);
  for (std::uint64_t step = 1; step <= 5; ++step) {
    ck.maybe_checkpoint(make_state(step));
  }
  env.flip_bit("cp/" + checkpoint_file_name(5), 100);
  env.truncate("cp/" + checkpoint_file_name(4), 50);
  env.remove_file("cp/" + checkpoint_file_name(3));
  const auto outcome = recover_latest(env, "cp");
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->step, 2u);
  EXPECT_EQ(outcome->notes.size(), 3u);
}

TEST(Recovery, CorruptParentFailsChildFallsBackToRoot) {
  io::MemEnv env;
  CheckpointPolicy policy;
  policy.strategy = Strategy::kIncremental;
  policy.every_steps = 1;
  policy.retention.keep_last = 0;
  policy.full_every = 10;
  Checkpointer ck(env, "cp", policy);
  ck.maybe_checkpoint(make_state(1));  // full (id 1)
  ck.maybe_checkpoint(make_state(2));  // delta on 1 (id 2)
  ck.maybe_checkpoint(make_state(3));  // delta on 2 (id 3)

  // Corrupting checkpoint 2 poisons both 3 (child) and 2 itself.
  env.flip_bit("cp/" + checkpoint_file_name(2), 999);
  const auto outcome = recover_latest(env, "cp");
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->checkpoint_id, 1u);
  EXPECT_EQ(outcome->notes.size(), 2u);
}

TEST(Recovery, WorksWithoutManifest) {
  io::MemEnv env;
  CheckpointPolicy policy;
  policy.every_steps = 1;
  policy.retention.keep_last = 0;
  Checkpointer ck(env, "cp", policy);
  ck.maybe_checkpoint(make_state(1));
  ck.maybe_checkpoint(make_state(2));
  env.remove_file("cp/MANIFEST");
  const auto outcome = recover_latest(env, "cp");
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->step, 2u);
}

TEST(Recovery, LoadCheckpointThrowsOnMissingId) {
  io::MemEnv env;
  EXPECT_THROW(load_checkpoint(env, "cp", 1), std::exception);
}

// ---------- async writer ----------

TEST(AsyncWriter, WritesAllJobsAndRunsCallbacks) {
  io::MemEnv env;
  std::atomic<int> installed{0};
  {
    AsyncWriter w(env, 2);
    for (int i = 0; i < 10; ++i) {
      EXPECT_TRUE(w.submit(AsyncWriter::Job{
          .path = "d/f" + std::to_string(i),
          .data = Bytes(1000, static_cast<std::uint8_t>(i)),
          .on_installed = [&installed] { ++installed; }}));
    }
    w.flush();
    EXPECT_EQ(installed.load(), 10);
    const auto stats = w.stats();
    EXPECT_EQ(stats.jobs, 10u);
    EXPECT_EQ(stats.bytes, 10000u);
    EXPECT_EQ(stats.failures, 0u);
  }
  EXPECT_EQ(env.list_dir("d").size(), 10u);
}

TEST(AsyncWriter, DestructorDrainsQueue) {
  io::MemEnv env;
  {
    AsyncWriter w(env, 4);
    for (int i = 0; i < 4; ++i) {
      EXPECT_TRUE(w.submit(AsyncWriter::Job{.path = "d/g" + std::to_string(i),
                                            .data = Bytes(10, 1),
                                            .on_installed = {}}));
    }
  }  // destructor must not lose queued jobs
  EXPECT_EQ(env.list_dir("d").size(), 4u);
}

TEST(AsyncWriter, FailuresCountedNotFatal) {
  io::MemEnv base;
  io::FaultSpec spec;
  spec.torn_write_prob = 1.0;
  spec.crash_prob = 1.0;
  spec.fault_atomic_writes = true;
  io::FaultEnv env(base, spec, 11);
  AsyncWriter w(env, 2);
  EXPECT_TRUE(w.submit(AsyncWriter::Job{.path = "d/x", .data = Bytes(100, 7),
                                        .on_installed = {}}));
  w.flush();
  EXPECT_EQ(w.stats().failures, 1u);
}

TEST(Checkpointer, AsyncModeProducesRecoverableCheckpoints) {
  io::MemEnv env;
  CheckpointPolicy policy;
  policy.every_steps = 1;
  policy.async = true;
  policy.retention.keep_last = 0;
  std::vector<qnn::TrainingState> states;
  {
    Checkpointer ck(env, "cp", policy);
    for (std::uint64_t step = 1; step <= 8; ++step) {
      states.push_back(make_state(step));
      ck.maybe_checkpoint(states.back());
    }
    ck.flush();
  }
  const auto outcome = recover_latest(env, "cp");
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->step, 8u);
  EXPECT_EQ(outcome->state, states.back());
}

TEST(Checkpointer, AsyncPipelineChunkedLargeStateRoundTrips) {
  // Full pipeline: trainer thread snapshots only; encode (with chunked
  // sections small enough to fan out) and the write run on background
  // threads, with several encode slots and writer workers in flight.
  io::MemEnv env;
  CheckpointPolicy policy;
  policy.strategy = Strategy::kFullState;
  policy.every_steps = 1;
  policy.async = true;
  policy.retention.keep_last = 0;
  policy.encode_threads = 3;
  policy.writer_threads = 2;
  policy.encode_queue = 3;
  policy.chunk_bytes = 1024;  // the 10-qubit snapshot spans many chunks
  std::vector<qnn::TrainingState> states;
  {
    Checkpointer ck(env, "cp", policy);
    for (std::uint64_t step = 1; step <= 6; ++step) {
      states.push_back(make_state(step, 5, 10));
      ck.maybe_checkpoint(states.back());
    }
    ck.flush();
    const auto stats = ck.stats();
    EXPECT_EQ(stats.checkpoints, 6u);
    EXPECT_EQ(stats.dropped_writes, 0u);
    EXPECT_GT(stats.pipeline_encode_seconds, 0.0);
    EXPECT_EQ(stats.encode_seconds, 0.0);  // nothing on the trainer thread
    EXPECT_GT(stats.bytes_encoded, 0u);
  }
  for (std::uint64_t id = 1; id <= 6; ++id) {
    EXPECT_EQ(load_checkpoint(env, "cp", id), states[id - 1]) << id;
  }
}

TEST(Checkpointer, EncodeBufferingStaysBoundedUnderV3) {
  // The streaming-encode memory bound, measured rather than claimed:
  // under format v3 the chunk bytes stream into the packfile in waves,
  // so the peak encoded bytes buffered in flight must be a small
  // multiple of chunk_bytes — independent of the checkpoint size. The
  // state below is ~270 KB raw per checkpoint; the bound is ~64 KB.
  constexpr std::size_t kChunk = 4096;
  auto big_state = [](std::uint64_t step) {
    qnn::TrainingState s = make_state(step);
    s.params.assign(32768, 0.0);
    util::Rng rng(90 + step);
    for (double& p : s.params) {
      p = rng.uniform(-1.0, 1.0);
    }
    return s;
  };
  const auto run = [&](bool async) {
    io::MemEnv env;
    CheckpointPolicy policy;
    policy.strategy = Strategy::kFullState;
    policy.every_steps = 1;
    policy.retention.keep_last = 0;
    policy.codec = codec::CodecId::kRaw;
    policy.chunk_bytes = kChunk;
    policy.async = async;
    policy.encode_threads = async ? 2 : 0;
    policy.encode_queue = 2;
    Checkpointer ck(env, "cp", policy);
    std::uint64_t raw = 0;
    for (std::uint64_t step = 1; step <= 4; ++step) {
      const auto s = big_state(step);
      raw += s.params.size() * sizeof(double);
      ck.checkpoint_now(s);
    }
    ck.flush();
    const auto stats = ck.stats();
    EXPECT_GT(stats.peak_encode_buffer_bytes, 0u);
    // Wave buffers: encode_window (2x pool threads, min 4) chunks per
    // wave; async additionally queues the (small, key-table-only v3)
    // containers. 16x chunk_bytes is a generous ceiling — the raw
    // payload is ~65x chunk_bytes, so a whole-section buffer would
    // blow straight through it.
    EXPECT_LE(stats.peak_encode_buffer_bytes, 16 * kChunk)
        << (async ? "async" : "sync") << " encode buffered too much";
    // Setup sanity against the static ceiling, not the measured peak:
    // the measured value breathes with scheduler timing (encode workers
    // starved on a loaded single-core box buffer a wave or two more),
    // which must not fail the run as long as the ceiling holds.
    EXPECT_GT(raw, 10 * (16 * kChunk))
        << "the bound is only meaningful when the state dwarfs it";
    // And the data actually round-trips.
    const auto outcome = recover_latest(env, "cp");
    ASSERT_TRUE(outcome.has_value());
    EXPECT_EQ(outcome->state, big_state(outcome->step));
  };
  run(/*async=*/false);
  run(/*async=*/true);
}

TEST(Checkpointer, DestructorDrainsPendingPipelineWork) {
  io::MemEnv env;
  CheckpointPolicy policy;
  policy.strategy = Strategy::kFullState;
  policy.every_steps = 1;
  policy.async = true;
  policy.retention.keep_last = 0;
  policy.encode_threads = 2;
  policy.chunk_bytes = 512;
  qnn::TrainingState last;
  {
    Checkpointer ck(env, "cp", policy);
    for (std::uint64_t step = 1; step <= 5; ++step) {
      last = make_state(step, 11, 8);
      ck.maybe_checkpoint(last);
    }
    // No flush: the destructor must finish encodes and writes itself.
  }
  const auto outcome = recover_latest(env, "cp");
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->step, 5u);
  EXPECT_EQ(outcome->state, last);
}

TEST(AsyncWriter, MultipleWorkersInstallEverything) {
  io::MemEnv env;
  std::atomic<int> installed{0};
  {
    AsyncWriter w(env, 4, /*num_workers=*/3);
    EXPECT_EQ(w.num_workers(), 3u);
    for (int i = 0; i < 24; ++i) {
      EXPECT_TRUE(w.submit(AsyncWriter::Job{
          .path = "d/m" + std::to_string(i),
          .data = Bytes(256, static_cast<std::uint8_t>(i)),
          .on_installed = [&installed] { ++installed; }}));
    }
    w.flush();
    EXPECT_EQ(installed.load(), 24);
    EXPECT_EQ(w.stats().jobs, 24u);
    EXPECT_EQ(w.stats().dropped, 0u);
  }
  EXPECT_EQ(env.list_dir("d").size(), 24u);
}

/// Env decorator that throws on exactly one (1-based) checkpoint-file
/// atomic write; everything else (manifest included) passes through.
class FailNthCheckpointWriteEnv final : public io::ForwardingEnv {
 public:
  FailNthCheckpointWriteEnv(io::Env& base, int fail_on)
      : ForwardingEnv(base), fail_on_(fail_on) {}

  void write_file_atomic(const std::string& path,
                         util::ByteSpan data) override {
    if (path.find("ckpt-") != std::string::npos && ++ckpt_writes_ == fail_on_) {
      throw std::runtime_error("injected checkpoint write failure");
    }
    base_.write_file_atomic(path, data);
  }

 private:
  const int fail_on_;
  int ckpt_writes_ = 0;
};

TEST(Checkpointer, DroppedWriteForcesFullAndKeepsChainRecoverable) {
  // The invariant the pipeline promises: a checkpoint that never became
  // durable must not orphan later incremental children. Fail write #3
  // (checkpoint id 3, a delta) and verify the next checkpoint breaks the
  // chain with a full, and that every installed checkpoint resolves.
  io::MemEnv mem;
  FailNthCheckpointWriteEnv env(mem, 3);
  CheckpointPolicy policy;
  policy.strategy = Strategy::kIncremental;
  policy.every_steps = 1;
  policy.async = true;
  policy.retention.keep_last = 0;
  policy.full_every = 100;  // no scheduled full would break the chain
  std::vector<qnn::TrainingState> states;
  {
    Checkpointer ck(env, "cp", policy);
    for (std::uint64_t step = 1; step <= 6; ++step) {
      states.push_back(make_state(step, 3, 2));
      ck.maybe_checkpoint(states.back());
      // Drain per step so the drop is observed before the next build.
      ck.flush();
    }
    const auto stats = ck.stats();
    EXPECT_EQ(stats.checkpoints, 6u);
    EXPECT_EQ(stats.dropped_writes, 1u);
  }
  // id 3 was never written; id 4 must be a self-contained full.
  EXPECT_FALSE(env.exists("cp/" + checkpoint_file_name(3)));
  const auto manifest = Manifest::load(env, "cp");
  const ManifestEntry* after_drop = manifest.find(4);
  ASSERT_NE(after_drop, nullptr);
  EXPECT_EQ(after_drop->parent_id, 0u) << "post-drop checkpoint must be full";
  // Every installed checkpoint must still resolve (no holes in chains).
  for (const ManifestEntry& e : manifest.entries()) {
    EXPECT_EQ(load_checkpoint(env, "cp", e.id), states[e.id - 1]) << e.id;
  }
  const auto outcome = recover_latest(env, "cp");
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->step, 6u);
  EXPECT_EQ(outcome->state, states.back());
}

TEST(Checkpointer, DroppedWriteWithInFlightChildrenNeverAdvertisesHoles) {
  // Same injected failure, but WITHOUT per-step flushes: delta children
  // of the failed checkpoint may already be encoded and queued when the
  // failure is detected. Whatever the thread timing, the invariant must
  // hold: every id the manifest advertises resolves, and recovery
  // succeeds from the newest advertised checkpoint.
  io::MemEnv mem;
  FailNthCheckpointWriteEnv env(mem, 3);
  CheckpointPolicy policy;
  policy.strategy = Strategy::kIncremental;
  policy.every_steps = 1;
  policy.async = true;
  policy.retention.keep_last = 0;
  policy.full_every = 100;
  policy.encode_queue = 4;
  std::vector<qnn::TrainingState> states;
  {
    Checkpointer ck(env, "cp", policy);
    for (std::uint64_t step = 1; step <= 8; ++step) {
      states.push_back(make_state(step, 3, 2));
      ck.maybe_checkpoint(states.back());
    }
    ck.flush();
    EXPECT_GE(ck.stats().dropped_writes, 1u);
  }
  const auto manifest = Manifest::load(env, "cp");
  ASSERT_FALSE(manifest.entries().empty());
  for (const ManifestEntry& e : manifest.entries()) {
    EXPECT_EQ(load_checkpoint(env, "cp", e.id), states[e.id - 1]) << e.id;
  }
  const auto outcome = recover_latest(env, "cp");
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->checkpoint_id, manifest.latest()->id);
  EXPECT_EQ(outcome->state, states[outcome->checkpoint_id - 1]);
}

TEST(Checkpointer, AsyncIncrementalChainConsistent) {
  io::MemEnv env;
  CheckpointPolicy policy;
  policy.strategy = Strategy::kIncremental;
  policy.every_steps = 1;
  policy.async = true;
  policy.retention.keep_last = 0;
  policy.full_every = 3;
  std::vector<qnn::TrainingState> states;
  {
    Checkpointer ck(env, "cp", policy);
    for (std::uint64_t step = 1; step <= 9; ++step) {
      states.push_back(make_state(step, 3, 2));
      ck.maybe_checkpoint(states.back());
    }
    ck.flush();
  }
  for (std::uint64_t id = 1; id <= 9; ++id) {
    EXPECT_EQ(load_checkpoint(env, "cp", id), states[id - 1]) << id;
  }
}

// ---------- state codec ----------

TEST(StateCodec, RoundTripAllSections) {
  const auto state = make_state(13, 3, 3);
  const auto sections =
      state_to_sections(state, /*include_simulator=*/true,
                        codec::CodecId::kRaw);
  EXPECT_EQ(sections.size(), 7u);
  EXPECT_EQ(sections_to_state(sections), state);
}

TEST(StateCodec, MissingRequiredSectionThrows) {
  const auto state = make_state(13);
  auto sections = state_to_sections(state, false, codec::CodecId::kRaw);
  sections.erase(sections.begin());  // drop meta
  EXPECT_THROW(sections_to_state(sections), CorruptCheckpoint);
}

TEST(StateCodec, UnresolvedDeltaRejected) {
  const auto state = make_state(13);
  auto sections = state_to_sections(state, false, codec::CodecId::kRaw);
  sections[1].flags |= kSectionFlagDelta;
  EXPECT_THROW(sections_to_state(sections), CorruptCheckpoint);
}

TEST(StateCodec, StrategyNames) {
  EXPECT_EQ(strategy_name(Strategy::kParamsOnly), "params-only");
  EXPECT_EQ(strategy_name(Strategy::kFullState), "full-state");
  EXPECT_EQ(strategy_name(Strategy::kIncremental), "incremental");
}

}  // namespace
}  // namespace qnn::ckpt

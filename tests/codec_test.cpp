// Unit + property tests for qnn::codec — RLE, LZ, XOR deltas, registry.
#include <gtest/gtest.h>

#include <cstring>

#include "codec/codec.hpp"
#include "codec/xor_delta.hpp"
#include "util/varint.hpp"
#include "util/rng.hpp"

namespace qnn::codec {
namespace {

using util::Bytes;
using util::ByteSpan;

// ---------- payload generators modelling real checkpoint sections ----------

Bytes zeros(std::size_t n) { return Bytes(n, 0); }

Bytes incompressible(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  Bytes out(n);
  for (auto& b : out) {
    b = static_cast<std::uint8_t>(rng());
  }
  return out;
}

Bytes runs(std::size_t n) {
  Bytes out;
  std::uint8_t v = 0;
  while (out.size() < n) {
    const std::size_t len =
        std::min<std::size_t>(1 + (v % 200), n - out.size());
    out.insert(out.end(), len, v);
    v = static_cast<std::uint8_t>(v * 31 + 7);
  }
  return out;
}

Bytes repeated_text(std::size_t n) {
  const std::string phrase = "hybrid quantum-classical training state ";
  Bytes out;
  while (out.size() < n) {
    const std::size_t take = std::min(phrase.size(), n - out.size());
    out.insert(out.end(), phrase.begin(), phrase.begin() + take);
  }
  return out;
}

/// Slowly varying doubles (what Adam moments look like).
Bytes similar_doubles(std::size_t n_doubles, std::uint64_t seed) {
  util::Rng rng(seed);
  Bytes out;
  double v = 1.0;
  for (std::size_t i = 0; i < n_doubles; ++i) {
    v += rng.normal() * 1e-9;
    util::put_le<double>(out, v);
  }
  return out;
}

struct PayloadCase {
  std::string name;
  Bytes data;
};

std::vector<PayloadCase> payload_cases() {
  return {
      {"empty", {}},
      {"one_byte", {0x42}},
      {"three_bytes", {1, 2, 3}},
      {"zeros_small", zeros(17)},
      {"zeros_large", zeros(100000)},
      {"runs", runs(5000)},
      {"text", repeated_text(4096)},
      {"random_small", incompressible(255, 1)},
      {"random_large", incompressible(1 << 17, 2)},
      {"similar_doubles", similar_doubles(4096, 3)},
      {"alternating", [] {
         Bytes b;
         for (int i = 0; i < 1000; ++i) {
           b.push_back(i % 2 ? 0xFF : 0x00);
         }
         return b;
       }()},
  };
}

// ---------- parameterised round-trip property over codecs x payloads -------

using CodecPayload = std::tuple<CodecId, int>;

class CodecRoundTrip : public ::testing::TestWithParam<CodecPayload> {};

TEST_P(CodecRoundTrip, EncodeDecodeIsIdentity) {
  const auto [id, payload_idx] = GetParam();
  const PayloadCase pc = payload_cases()[static_cast<std::size_t>(payload_idx)];
  const Bytes encoded = encode(id, pc.data);
  const Bytes decoded = decode(id, encoded, pc.data.size());
  EXPECT_EQ(decoded, pc.data) << codec_name(id) << " on " << pc.name;
}

TEST_P(CodecRoundTrip, WorstCaseExpansionBounded) {
  const auto [id, payload_idx] = GetParam();
  const PayloadCase pc = payload_cases()[static_cast<std::size_t>(payload_idx)];
  const Bytes encoded = encode(id, pc.data);
  EXPECT_LE(encoded.size(), pc.data.size() + pc.data.size() / 128 + 16)
      << codec_name(id) << " on " << pc.name;
}

std::string codec_payload_name(
    const ::testing::TestParamInfo<CodecPayload>& info) {
  const CodecId id = std::get<0>(info.param);
  const int payload_idx = std::get<1>(info.param);
  std::string name =
      codec_name(id) + "_" +
      payload_cases()[static_cast<std::size_t>(payload_idx)].name;
  for (char& c : name) {
    if (c == '+') {
      c = '_';
    }
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecsAllPayloads, CodecRoundTrip,
    ::testing::Combine(::testing::ValuesIn(std::vector<CodecId>(
                           std::begin(kAllCodecs), std::end(kAllCodecs))),
                       ::testing::Range(0, 11)),
    codec_payload_name);

// ---------- compression effectiveness (the T2 claim shapes) ----------

TEST(CodecEffectiveness, RleCollapsesZeroRuns) {
  const Bytes data = zeros(100000);
  // Max run length is 131, so the floor is ~2 bytes per 131 zeros.
  EXPECT_LT(encode(CodecId::kRle, data).size(), data.size() / 50);
}

TEST(CodecEffectiveness, LzCollapsesRepeatedText) {
  const Bytes data = repeated_text(8192);
  EXPECT_LT(encode(CodecId::kLz, data).size(), data.size() / 10);
}

TEST(CodecEffectiveness, DeltaHelpsSimilarDoubles) {
  const Bytes data = similar_doubles(8192, 9);
  const std::size_t plain = encode(CodecId::kLz, data).size();
  const std::size_t delta = encode(CodecId::kDeltaLz, data).size();
  EXPECT_LT(delta, plain);
}

TEST(CodecEffectiveness, RandomDataDoesNotBlowUp) {
  const Bytes data = incompressible(1 << 16, 11);
  for (CodecId id : kAllCodecs) {
    EXPECT_LE(encode(id, data).size(), data.size() + data.size() / 128 + 16)
        << codec_name(id);
  }
}

// ---------- RLE specifics ----------

TEST(Rle, EncodesLongRunCompactly) {
  const Bytes data(131, 0x7);  // exactly max run length
  const Bytes enc = rle_encode(data);
  EXPECT_EQ(enc.size(), 2u);
  EXPECT_EQ(rle_decode(enc, data.size()), data);
}

TEST(Rle, ShortRunsStayLiteral) {
  const Bytes data{1, 1, 1, 2, 2, 2};  // runs of 3 < kMinRun
  const Bytes enc = rle_encode(data);
  EXPECT_EQ(rle_decode(enc, data.size()), data);
}

TEST(Rle, DecodeRejectsTruncatedLiteral) {
  Bytes enc{0x05, 1, 2};  // literal run of 6, only 2 present
  EXPECT_THROW(rle_decode(enc, 6), std::runtime_error);
}

TEST(Rle, DecodeRejectsTruncatedRepeat) {
  Bytes enc{0x80};  // repeat token without the byte
  EXPECT_THROW(rle_decode(enc, 4), std::runtime_error);
}

TEST(Rle, DecodeRejectsLengthMismatch) {
  const Bytes data(50, 9);
  const Bytes enc = rle_encode(data);
  EXPECT_THROW(rle_decode(enc, 49), std::runtime_error);
  EXPECT_THROW(rle_decode(enc, 51), std::runtime_error);
}

// ---------- LZ specifics ----------

TEST(Lz, OverlappingMatchExtendsRuns) {
  // "abcabcabc..." triggers dist < len copies.
  Bytes data;
  for (int i = 0; i < 1000; ++i) {
    data.push_back(static_cast<std::uint8_t>("abc"[i % 3]));
  }
  const Bytes enc = lz_encode(data);
  EXPECT_LT(enc.size(), 64u);
  EXPECT_EQ(lz_decode(enc, data.size()), data);
}

TEST(Lz, DecodeRejectsBadDistance) {
  Bytes enc;
  util::put_varint(enc, 1);  // 1 literal
  enc.push_back('x');
  util::put_varint(enc, 1);   // match len 4
  util::put_varint(enc, 99);  // distance beyond output
  EXPECT_THROW(lz_decode(enc, 5), std::runtime_error);
}

TEST(Lz, DecodeRejectsZeroDistance) {
  Bytes enc;
  util::put_varint(enc, 1);
  enc.push_back('x');
  util::put_varint(enc, 1);
  util::put_varint(enc, 0);
  EXPECT_THROW(lz_decode(enc, 5), std::runtime_error);
}

TEST(Lz, DecodeRejectsTruncatedLiterals) {
  Bytes enc;
  util::put_varint(enc, 10);
  enc.push_back('x');  // 9 missing
  EXPECT_THROW(lz_decode(enc, 10), std::runtime_error);
}

TEST(Lz, DecodeRejectsOverlongOutput) {
  const Bytes data = repeated_text(256);
  const Bytes enc = lz_encode(data);
  EXPECT_THROW(lz_decode(enc, 100), std::runtime_error);
}

TEST(Lz, WindowBoundaryRoundTrip) {
  // Repetition spaced near the 64 KiB window edge.
  Bytes data = incompressible(1 << 16, 20);
  const Bytes prefix(data.begin(), data.begin() + 512);
  data.insert(data.end(), prefix.begin(), prefix.end());
  const Bytes enc = lz_encode(data);
  EXPECT_EQ(lz_decode(enc, data.size()), data);
}

// ---------- XOR delta ----------

TEST(XorDelta, WithParentIsInvolution) {
  const Bytes a = incompressible(1000, 30);
  const Bytes b = incompressible(1000, 31);
  const Bytes delta = xor_with_parent(a, b);
  EXPECT_EQ(xor_with_parent(delta, b), a);
}

TEST(XorDelta, IdenticalPayloadsDeltaToZeros) {
  const Bytes a = incompressible(512, 32);
  const Bytes delta = xor_with_parent(a, a);
  EXPECT_EQ(delta, zeros(512));
}

TEST(XorDelta, ChildLongerThanParentTailPassesThrough) {
  const Bytes child = incompressible(100, 33);
  const Bytes parent = incompressible(60, 34);
  const Bytes delta = xor_with_parent(child, parent);
  for (std::size_t i = 60; i < 100; ++i) {
    ASSERT_EQ(delta[i], child[i]);
  }
  EXPECT_EQ(xor_with_parent(delta, parent), child);
}

TEST(XorDelta, Intra64RoundTrip) {
  for (std::size_t n : {0ul, 1ul, 7ul, 8ul, 9ul, 16ul, 123ul, 4096ul}) {
    const Bytes data = incompressible(n, 35 + n);
    EXPECT_EQ(xor_undelta64(xor_delta64(data)), data) << "n=" << n;
  }
}

TEST(XorDelta, Intra64LeavesTailUntouched) {
  const Bytes data = incompressible(19, 36);  // 2 words + 3 tail bytes
  const Bytes delta = xor_delta64(data);
  for (std::size_t i = 16; i < 19; ++i) {
    ASSERT_EQ(delta[i], data[i]);
  }
}

// ---------- randomized roundtrips ----------

/// Every codec must round-trip arbitrary random-sized inputs at both ends
/// of the entropy spectrum: incompressible noise (statevector-like) and
/// highly repetitive bytes (delta'd-optimizer-like).
TEST(RandomizedRoundTrip, IncompressibleInputsAllCodecs) {
  util::Rng rng(20250726);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng() % 5000);
    const Bytes data = incompressible(n, rng());
    for (CodecId id : kAllCodecs) {
      const Bytes enc = encode(id, data);
      EXPECT_EQ(decode(id, enc, data.size()), data)
          << codec_name(id) << " n=" << n << " trial=" << trial;
      // Bounded worst-case expansion (codec.hpp contract).
      EXPECT_LE(enc.size(), data.size() + data.size() / 128 + 16)
          << codec_name(id) << " n=" << n;
    }
  }
}

TEST(RandomizedRoundTrip, RepetitiveInputsAllCodecs) {
  util::Rng rng(424242);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng() % 5000);
    // Random run structure: a few distinct byte values in random-length
    // runs, the shape RLE/LZ are meant to collapse.
    Bytes data;
    while (data.size() < n) {
      const auto value = static_cast<std::uint8_t>(rng() % 4);
      const std::size_t len =
          std::min<std::size_t>(1 + rng() % 300, n - data.size());
      data.insert(data.end(), len, value);
    }
    for (CodecId id : kAllCodecs) {
      const Bytes enc = encode(id, data);
      EXPECT_EQ(decode(id, enc, data.size()), data)
          << codec_name(id) << " n=" << n << " trial=" << trial;
    }
  }
}

// ---------- vectorized kernels vs scalar oracles ----------
//
// The default entry points (SSE2-assisted on x86-64) must emit EXACTLY
// the bytes the scalar reference loops emit — for RLE that means the
// identical token stream, not just a stream that decodes back.

TEST(SimdParity, XorKernelsMatchScalarOnAllPayloads) {
  for (const PayloadCase& pc : payload_cases()) {
    EXPECT_EQ(xor_delta64(pc.data), xor_delta64_scalar(pc.data)) << pc.name;
    EXPECT_EQ(xor_undelta64(pc.data), xor_undelta64_scalar(pc.data))
        << pc.name;
  }
}

TEST(SimdParity, RleTokenStreamMatchesScalarOnAllPayloads) {
  for (const PayloadCase& pc : payload_cases()) {
    EXPECT_EQ(rle_encode(pc.data), rle_encode_scalar(pc.data)) << pc.name;
  }
}

TEST(SimdParity, FuzzAcrossLengthsAndContent) {
  util::Rng rng(31337);
  for (int trial = 0; trial < 400; ++trial) {
    const std::size_t n = rng.uniform_u64(4200);
    Bytes data(n);
    // Mixed regime: runs of a repeated byte interleaved with noise, the
    // content most likely to hit the RLE scan's block/tail boundaries.
    std::size_t i = 0;
    while (i < n) {
      const auto b = static_cast<std::uint8_t>(rng());
      std::size_t len = 1 + rng.uniform_u64(20);
      const bool noisy = (rng() & 1) != 0;
      while (len-- > 0 && i < n) {
        data[i++] = noisy ? static_cast<std::uint8_t>(rng()) : b;
      }
    }
    ASSERT_EQ(rle_encode(data), rle_encode_scalar(data)) << "trial " << trial;
    ASSERT_EQ(xor_delta64(data), xor_delta64_scalar(data)) << "trial "
                                                           << trial;
    ASSERT_EQ(xor_undelta64(data), xor_undelta64_scalar(data))
        << "trial " << trial;
    ASSERT_EQ(xor_undelta64(xor_delta64(data)), data) << "trial " << trial;
  }
}

TEST(SimdParity, XorWithParentMatchesScalarOnMismatchedLengths) {
  util::Rng rng(555);
  for (int trial = 0; trial < 100; ++trial) {
    const Bytes data = incompressible(rng.uniform_u64(600), 10 + trial);
    const Bytes parent = incompressible(rng.uniform_u64(600), 900 + trial);
    ASSERT_EQ(xor_with_parent(data, parent),
              xor_with_parent_scalar(data, parent))
        << "trial " << trial;
  }
}

// ---------- registry ----------

TEST(Registry, NamesRoundTrip) {
  for (CodecId id : kAllCodecs) {
    EXPECT_EQ(codec_from_name(codec_name(id)), id);
  }
  EXPECT_THROW(codec_from_name("bogus"), std::invalid_argument);
}

TEST(Registry, RawLengthMismatchThrows) {
  const Bytes data{1, 2, 3};
  EXPECT_THROW(decode(CodecId::kRaw, data, 4), std::runtime_error);
}

TEST(Registry, DecodeIsDeterministic) {
  const Bytes data = similar_doubles(1024, 40);
  for (CodecId id : kAllCodecs) {
    EXPECT_EQ(encode(id, data), encode(id, data)) << codec_name(id);
  }
}

}  // namespace
}  // namespace qnn::codec

// Tests for the content-addressed chunk store (format v3): cross-
// checkpoint dedup, refcounted GC over chunk keys, packfile sweeps and
// compaction, the REFS journal, and recovery behaviour when packfiles
// are damaged.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>

#include "ckpt/cas.hpp"
#include "ckpt/checkpointer.hpp"
#include "ckpt/recovery.hpp"
#include "ckpt/store.hpp"
#include "ckpt/verify.hpp"
#include "io/mem_env.hpp"
#include "util/crc.hpp"
#include "util/rng.hpp"

namespace qnn::ckpt {
namespace {

/// A state whose params section is large (so it externalises at small
/// chunk sizes) and mostly frozen across steps: only the last
/// `moving_doubles` values depend on the step.
qnn::TrainingState big_state(std::uint64_t step, std::size_t n_params = 2048,
                             std::size_t moving_doubles = 8) {
  qnn::TrainingState s;
  s.step = step;
  s.params.resize(n_params);
  util::Rng frozen(7);
  for (double& p : s.params) {
    p = frozen.uniform(-1.0, 1.0);
  }
  util::Rng moving(1000 + step);
  for (std::size_t i = n_params - moving_doubles; i < n_params; ++i) {
    s.params[i] = moving.uniform(-1.0, 1.0);
  }
  s.optimizer_name = "adam";
  s.optimizer_state.assign(64, static_cast<std::uint8_t>(step & 0xFF));
  s.rng_state = util::Rng(step).serialize();
  s.epoch = step / 4;
  s.cursor = step % 4;
  s.permutation = {0, 1, 2};
  s.workload_tag = "vqe";
  return s;
}

CheckpointPolicy cas_policy() {
  CheckpointPolicy policy;
  policy.strategy = Strategy::kFullState;
  policy.every_steps = 1;
  policy.retention.keep_last = 0;  // keep everything unless a test says so
  policy.codec = codec::CodecId::kRaw;
  policy.chunk_bytes = 1024;  // params (2048 doubles + u64) externalises
  return policy;
}

std::uint64_t dir_stored_bytes(io::MemEnv& env, const std::string& dir) {
  std::uint64_t total = 0;
  for (const std::string& name : env.list_dir(dir)) {
    total += env.file_size(dir + "/" + name).value_or(0);
  }
  for (const std::string& name : env.list_dir(dir + "/chunks")) {
    total += env.file_size(dir + "/chunks/" + name).value_or(0);
  }
  return total;
}

std::uint64_t run_checkpoints(io::MemEnv& env, CheckpointPolicy policy,
                              std::uint64_t n) {
  Checkpointer ck(env, "cp", policy);
  for (std::uint64_t step = 1; step <= n; ++step) {
    ck.checkpoint_now(big_state(step));
  }
  ck.flush();
  return ck.stats().checkpoints;
}

// ---------- cross-checkpoint dedup ----------

TEST(Cas, FrozenStateDedupsAcrossCheckpoints) {
  io::MemEnv v3_env;
  run_checkpoints(v3_env, cas_policy(), 10);

  CheckpointPolicy v2 = cas_policy();
  v2.format_version = kInlineFormatVersion;
  io::MemEnv v2_env;
  run_checkpoints(v2_env, v2, 10);

  const std::uint64_t v3_stored = dir_stored_bytes(v3_env, "cp");
  const std::uint64_t v2_stored = dir_stored_bytes(v2_env, "cp");
  // 10 near-identical checkpoints must share storage: ≥4.5x reduction
  // (the pack's self-indexing key table — what makes single-chunk
  // resolution a ranged read — costs ~34 bytes per record of the ratio).
  EXPECT_GE(v2_stored * 2, 9 * v3_stored)
      << "v2=" << v2_stored << " v3=" << v3_stored;

  // And every checkpoint still resolves to its exact state.
  for (std::uint64_t step = 1; step <= 10; ++step) {
    EXPECT_EQ(load_checkpoint(v3_env, "cp", step), big_state(step));
  }
}

TEST(Cas, DedupStatsExposeHitRatio) {
  io::MemEnv env;
  Checkpointer ck(env, "cp", cas_policy());
  for (std::uint64_t step = 1; step <= 5; ++step) {
    ck.checkpoint_now(big_state(step));
  }
  const auto stats = ck.stats();
  EXPECT_GT(stats.chunk_refs, 0u);
  EXPECT_GT(stats.chunks_deduped, 0u);
  EXPECT_GT(stats.dedup_bytes, 0u);
  // The frozen prefix dominates: most refs after the first checkpoint
  // are dedup hits.
  EXPECT_GT(stats.chunks_deduped * 2, stats.chunk_refs);
  const auto cas = ck.cas_stats();
  EXPECT_GT(cas.packfiles, 0u);
  EXPECT_GT(cas.chunks, 0u);
  EXPECT_EQ(cas.dedup_hits, stats.chunks_deduped);
}

TEST(Cas, AsyncPipelineDedupsAndRecovers) {
  io::MemEnv env;
  CheckpointPolicy policy = cas_policy();
  policy.async = true;
  policy.encode_threads = 2;
  {
    Checkpointer ck(env, "cp", policy);
    for (std::uint64_t step = 1; step <= 8; ++step) {
      ck.checkpoint_now(big_state(step));
    }
    ck.flush();
    EXPECT_GT(ck.stats().chunks_deduped, 0u);
  }
  const auto outcome = recover_latest(env, "cp");
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->step, 8u);
  EXPECT_EQ(outcome->state, big_state(8));
}

TEST(Cas, V2FallbackWritesSelfContainedFiles) {
  io::MemEnv env;
  CheckpointPolicy policy = cas_policy();
  policy.format_version = kInlineFormatVersion;
  run_checkpoints(env, policy, 3);
  EXPECT_TRUE(env.list_dir("cp/chunks").empty());
  const auto data = env.read_file("cp/" + checkpoint_file_name(2));
  ASSERT_TRUE(data.has_value());
  // Decodes with no chunk source at all.
  EXPECT_EQ(decode_checkpoint(*data).step, 2u);
}

// ---------- refcounted GC ----------

TEST(Cas, GcReleasesChunksButKeepsShared) {
  io::MemEnv env;
  CheckpointPolicy policy = cas_policy();
  policy.retention.keep_last = 2;
  Checkpointer ck(env, "cp", policy);
  for (std::uint64_t step = 1; step <= 10; ++step) {
    ck.checkpoint_now(big_state(step));
  }
  // Only the last two files remain, and they still resolve: the shared
  // frozen chunks survived every GC pass.
  EXPECT_EQ(load_checkpoint(env, "cp", 9), big_state(9));
  EXPECT_EQ(load_checkpoint(env, "cp", 10), big_state(10));
  EXPECT_THROW(load_checkpoint(env, "cp", 3), std::exception);

  // Packfiles of evicted checkpoints whose chunks were all unique to
  // them (the moving tail) die with them; the store never grows one
  // packfile per evicted checkpoint forever.
  const auto packs = env.list_dir("cp/chunks");
  std::size_t pack_count = 0;
  for (const auto& name : packs) {
    pack_count += parse_pack_file_name(name).has_value() ? 1 : 0;
  }
  EXPECT_LT(pack_count, 10u);
}

TEST(Cas, ChangedContentEventuallyReclaimsDeadPackfiles) {
  io::MemEnv env;
  CheckpointPolicy policy = cas_policy();
  policy.retention.keep_last = 1;
  {
    Checkpointer ck(env, "cp", policy);
    // Completely different payloads per step: once evicted, a
    // checkpoint's chunks are dead.
    for (std::uint64_t step = 1; step <= 6; ++step) {
      ck.checkpoint_now(big_state(step, 512, 512));
    }
  }
  // A fresh startup (orphan sweep + compaction) leaves only live bytes.
  {
    Checkpointer ck(env, "cp", policy);  // ctor runs the startup sweep
  }
  std::size_t pack_count = 0;
  std::uint64_t pack_bytes = 0;
  for (const auto& name : env.list_dir("cp/chunks")) {
    if (parse_pack_file_name(name)) {
      ++pack_count;
      pack_bytes += env.file_size("cp/chunks/" + name).value_or(0);
    }
  }
  // Live state is one checkpoint (~4.2 KiB params): everything else is
  // gone, not accumulated.
  EXPECT_LE(pack_count, 2u);
  EXPECT_LT(pack_bytes, 3 * 512 * 8 * 2);
  EXPECT_EQ(load_checkpoint(env, "cp", 6), big_state(6, 512, 512));
}

TEST(Cas, StartupSweepCompactsMixedPackfiles) {
  io::MemEnv env;
  CheckpointPolicy policy = cas_policy();
  {
    Checkpointer ck(env, "cp", policy);
    ck.checkpoint_now(big_state(1));  // pack-1: frozen chunks + step-1 tail
    ck.checkpoint_now(big_state(2));  // pack-2: step-2 tail only
  }
  // Delete checkpoint 2's file outside the store (as a damaged-manifest
  // repair might): its tail chunks in pack-2 become dead, and pack-1's
  // chunks stay live through checkpoint 1.
  const std::uint64_t before =
      env.file_size("cp/chunks/" + pack_file_name(1)).value_or(0);
  {
    Manifest manifest = Manifest::load(env, "cp");
    manifest.remove(2);
    manifest.save(env, "cp");
    env.remove_file("cp/" + checkpoint_file_name(2));
  }
  {
    CheckpointStore store(env, "cp", RetentionPolicy{});
    const Manifest manifest = Manifest::load(env, "cp");
    store.sweep_orphans(manifest);
  }
  // pack-2 held only step-2 chunks: fully dead, deleted. pack-1 keeps
  // every chunk (all referenced by checkpoint 1) at unchanged size.
  EXPECT_FALSE(env.exists("cp/chunks/" + pack_file_name(2)));
  EXPECT_EQ(env.file_size("cp/chunks/" + pack_file_name(1)).value_or(0),
            before);
  EXPECT_EQ(load_checkpoint(env, "cp", 1), big_state(1));
}

TEST(Cas, OrphanReleaseUsesPreDeletionRefBaseline) {
  // Regression: sweep_orphans must load the refcount baseline BEFORE
  // deleting any orphan. If the (stale-journal) rebuild ran after the
  // orphan's file was already gone, releasing the orphan's references
  // would decrement counts that never included it — freeing chunks it
  // shares with live checkpoints.
  io::MemEnv env;
  run_checkpoints(env, cas_policy(), 2);  // 1 and 2 share the frozen chunks
  // Strand checkpoint 1 as an orphan (advertised no longer, file still
  // on disk) and lose the journal so the next store must rebuild. The
  // shared chunks now have exactly ONE surviving reference (ckpt 2), so
  // a release against a post-deletion rebuild would zero them out.
  {
    Manifest manifest = Manifest::load(env, "cp");
    manifest.remove(1);
    manifest.save(env, "cp");
  }
  env.remove_file("cp/chunks/REFS");

  CheckpointStore store(env, "cp", RetentionPolicy{});
  const Manifest manifest = Manifest::load(env, "cp");
  EXPECT_EQ(store.sweep_orphans(manifest), 1u);

  // The orphan is gone; the survivor still resolves through the shared
  // chunks (a double-free would have swept them).
  EXPECT_FALSE(env.exists("cp/" + checkpoint_file_name(1)));
  EXPECT_EQ(load_checkpoint(env, "cp", 2), big_state(2));
}

TEST(Cas, FirstInstallDoesNotDoubleCountOwnRefs) {
  // Regression: the refcount baseline is loaded at Checkpointer
  // construction (quiescent), so an install's retain() is a pure delta.
  // A rebuild racing the install could count the just-written file AND
  // apply retain() on top — leaking its chunks forever after GC.
  io::MemEnv env;
  {
    Checkpointer ck(env, "cp", cas_policy());
    ck.checkpoint_now(big_state(1));
  }
  const Bytes data = *env.read_file("cp/" + checkpoint_file_name(1));
  ChunkStore store(env, "cp");
  for (const ChunkKey& key : list_chunk_refs(data)) {
    EXPECT_EQ(store.ref_count(key), 1u) << chunk_key_name(key);
  }
}

TEST(Cas, OrphanPackfileFromCrashedInstallIsSwept) {
  io::MemEnv env;
  {
    Checkpointer ck(env, "cp", cas_policy());
    ck.checkpoint_now(big_state(1));
  }
  // Simulate a crash between packfile install and checkpoint write: a
  // packfile exists whose chunks nothing references.
  ChunkStore store(env, "cp");
  auto batch = store.begin_batch(99);
  const Bytes junk(300, 0x5A);
  const ChunkKey key = chunk_key(junk);
  ASSERT_FALSE(batch->contains(key));
  batch->put(key, codec::CodecId::kRaw, junk);
  batch->commit();  // the packfile installs; the checkpoint never does
  batch.reset();

  ASSERT_TRUE(env.exists("cp/chunks/" + pack_file_name(99)));
  {
    Checkpointer ck(env, "cp", cas_policy());  // startup sweep
  }
  EXPECT_FALSE(env.exists("cp/chunks/" + pack_file_name(99)));
  EXPECT_EQ(load_checkpoint(env, "cp", 1), big_state(1));
}

// ---------- ranged resolution / read amplification ----------

TEST(Cas, SingleChunkResolutionReadsOnlyFooterTableAndChunk) {
  // The core ranged-read claim, asserted in BYTES: opening a store and
  // resolving one chunk preads the pack header probe + footer + key
  // table + that record's encoded bytes — never the packfile.
  io::MemEnv env;
  run_checkpoints(env, cas_policy(), 1);
  const Bytes file_data = *env.read_file("cp/" + checkpoint_file_name(1));
  const auto refs = list_chunk_refs(file_data);
  ASSERT_GT(refs.size(), 2u);
  const ChunkKey key = refs[1];  // an interior chunk
  const std::string pack = "cp/chunks/" + pack_file_name(1);
  const std::uint64_t pack_bytes = env.file_size(pack).value();

  ChunkStore store(env, "cp");
  const std::uint64_t before = env.bytes_read();
  EXPECT_EQ(store.get(key).size(), key.len);
  const std::uint64_t read = env.bytes_read() - before;
  // Pack v2 framing: 16-byte header probe, 28-byte footer, one 34-byte
  // key-table row per record, then the chunk's encoded bytes (== raw
  // length under the kRaw codec this directory uses).
  const std::uint64_t expected = 16 + 28 + refs.size() * 34 + key.len;
  EXPECT_EQ(read, expected)
      << "single-chunk resolution read amplification regressed";
  EXPECT_LT(read, pack_bytes / 4)
      << "resolution should not approach a whole-pack read";
}

TEST(Cas, ColdPackOpenAndResolveReadOnlyFooterTableAndChunk) {
  // Same claim across the tier boundary: a COLD pack is indexed by a
  // ranged peek (footer + key table through the cold tier) and the
  // requested chunk preads exactly its record — the capacity tier never
  // serves the pack's bulk for a single-chunk need.
  io::MemEnv hot_base;
  io::MemEnv cold_base;
  {
    tier::TieredEnv setup(hot_base, cold_base);
    Checkpointer ck(setup, "cp", cas_policy());
    ck.checkpoint_now(big_state(1));
  }
  const Bytes file_data =
      *hot_base.read_file("cp/" + checkpoint_file_name(1));
  const auto refs = list_chunk_refs(file_data);
  ASSERT_GT(refs.size(), 2u);
  const ChunkKey key = refs[1];
  // Demote the pack by hand: cold copy durable, hot copy gone.
  const std::string pack = "cp/chunks/" + pack_file_name(1);
  cold_base.write_file_atomic(pack, *hot_base.read_file(pack));
  hot_base.remove_file(pack);
  const std::uint64_t pack_bytes = cold_base.file_size(pack).value();

  tier::TieredEnv env(hot_base, cold_base, /*promote_on_read=*/false);
  ChunkStore store(env, "cp");
  const std::uint64_t before = cold_base.bytes_read();
  EXPECT_EQ(store.get(key).size(), key.len);
  const std::uint64_t cold_read = cold_base.bytes_read() - before;
  const std::uint64_t expected = 16 + 28 + refs.size() * 34 + key.len;
  EXPECT_EQ(cold_read, expected)
      << "cold-pack open + resolve must pread footer + table + chunk only";
  EXPECT_LT(cold_read, pack_bytes / 4);
  // And nothing was promoted: the hot tier still has no pack.
  EXPECT_FALSE(hot_base.exists(pack));
}

// ---------- the REFS journal ----------

TEST(Cas, RefsJournalWrittenAndTrusted) {
  io::MemEnv env;
  run_checkpoints(env, cas_policy(), 3);
  const auto refs = env.read_file("cp/chunks/REFS");
  ASSERT_TRUE(refs.has_value());
  const std::string text(refs->begin(), refs->end());
  EXPECT_NE(text.find("qnnckpt-refs v1"), std::string::npos);
  EXPECT_NE(text.find("covers 1,2,3"), std::string::npos);
  EXPECT_NE(text.find("ref "), std::string::npos);

  // A fresh store trusts a journal that covers the directory exactly.
  ChunkStore store(env, "cp");
  store.open();
  EXPECT_EQ(store.stats().refs_rebuilds, 0u);
}

TEST(Cas, StaleRefsJournalTriggersRebuild) {
  io::MemEnv env;
  run_checkpoints(env, cas_policy(), 3);
  // Manipulate the directory behind the journal's back.
  env.remove_file("cp/" + checkpoint_file_name(3));
  ChunkStore store(env, "cp");
  store.open();
  EXPECT_EQ(store.stats().refs_rebuilds, 1u);
  // Rebuilt counts reflect files, not the stale journal: checkpoint 3's
  // unique chunks are unreferenced now.
  const Bytes data = *env.read_file("cp/" + checkpoint_file_name(2));
  for (const ChunkKey& key : list_chunk_refs(data)) {
    EXPECT_GE(store.ref_count(key), 1u);
  }
}

TEST(Cas, DamagedRefsJournalTriggersRebuild) {
  io::MemEnv env;
  run_checkpoints(env, cas_policy(), 2);
  const std::string garbage = "qnnckpt-refs v1\ncovers 1,2\nref ?!? what\n";
  env.write_file_atomic(
      "cp/chunks/REFS",
      util::ByteSpan{reinterpret_cast<const std::uint8_t*>(garbage.data()),
                     garbage.size()});
  ChunkStore store(env, "cp");
  store.open();
  EXPECT_EQ(store.stats().refs_rebuilds, 1u);
  EXPECT_EQ(load_checkpoint(env, "cp", 2), big_state(2));
}

TEST(Cas, UnreadableCheckpointFileDisablesSweep) {
  io::MemEnv env;
  run_checkpoints(env, cas_policy(), 2);
  env.remove_file("cp/chunks/REFS");
  // Corrupt checkpoint 1: its references become unknowable.
  ASSERT_TRUE(env.flip_bit("cp/" + checkpoint_file_name(1), 1234));
  ChunkStore store(env, "cp");
  store.open();
  // Nothing may die — even chunks no readable file references.
  EXPECT_EQ(store.sweep(/*compact=*/true), 0u);
  EXPECT_EQ(load_checkpoint(env, "cp", 2), big_state(2));
}

// ---------- damage behaviour ----------

TEST(Cas, DamagedPackfileFallsBackToOlderCheckpoint) {
  io::MemEnv env;
  CheckpointPolicy policy = cas_policy();
  {
    Checkpointer ck(env, "cp", policy);
    ck.checkpoint_now(big_state(1, 512, 512));  // disjoint content
    ck.checkpoint_now(big_state(2, 512, 512));
  }
  // Destroy checkpoint 2's packfile contents.
  ASSERT_TRUE(env.flip_bit("cp/chunks/" + pack_file_name(2), 2000));
  const auto outcome = recover_latest(env, "cp");
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->step, 1u);
  EXPECT_EQ(outcome->state, big_state(1, 512, 512));
  EXPECT_FALSE(outcome->notes.empty());
}

TEST(Cas, VerifyDirectoryFlagsChunkDamage) {
  io::MemEnv env;
  {
    Checkpointer ck(env, "cp", cas_policy());
    ck.checkpoint_now(big_state(1, 512, 512));
    ck.checkpoint_now(big_state(2, 512, 512));
  }
  ASSERT_TRUE(env.flip_bit("cp/chunks/" + pack_file_name(2), 2000));
  const auto report = verify_directory(env, "cp");
  EXPECT_FALSE(report.healthy());
  ASSERT_TRUE(report.newest_recoverable.has_value());
  EXPECT_EQ(*report.newest_recoverable, 1u);
}

// ---------- pack-handle LRU cache ----------

/// Env decorator counting ranged opens — the observable the LRU test
/// gates on: a cached pack handle means get() does NOT reopen the file.
class CountingEnv : public io::ForwardingEnv {
 public:
  using io::ForwardingEnv::ForwardingEnv;
  std::unique_ptr<io::RandomAccessFile> open_ranged(
      const std::string& path) override {
    ++ranged_opens;
    return base_.open_ranged(path);
  }
  std::uint64_t ranged_opens = 0;
};

/// Stores one unique chunk through its own batch, creating one pack.
/// Returns the chunk's key.
ChunkKey store_one_pack(ChunkStore& store, std::uint64_t epoch) {
  util::Rng rng(5000 + epoch);
  Bytes chunk(256);
  for (auto& b : chunk) {
    b = static_cast<std::uint8_t>(rng());
  }
  const ChunkKey key{util::crc32c(chunk), chunk.size()};
  auto batch = store.begin_batch(epoch);
  if (!batch->contains(key)) {
    batch->put(key, codec::CodecId::kRaw, chunk);
  }
  batch->commit();
  store.publish(*batch);
  return key;
}

TEST(Cas, PackHandleCacheHoldsFourPacksWithoutReopens) {
  // Interleaved reads across up to four packs must reuse cached
  // handles: the old single-slot cache thrashed (reopen per get) the
  // moment two packs alternated.
  io::MemEnv base;
  CountingEnv env(base);
  ChunkStore store(env, "cp");
  std::vector<ChunkKey> keys;
  for (std::uint64_t epoch = 1; epoch <= 4; ++epoch) {
    keys.push_back(store_one_pack(store, epoch));
  }
  // First round may open packs; afterwards all four handles are hot.
  for (const ChunkKey& key : keys) {
    store.get(key);
  }
  const std::uint64_t warm = env.ranged_opens;
  for (int round = 0; round < 8; ++round) {
    for (const ChunkKey& key : keys) {
      EXPECT_EQ(store.get(key).size(), key.len);
    }
  }
  EXPECT_EQ(env.ranged_opens, warm)
      << "interleaved gets across <= 4 packs must not reopen files";
  EXPECT_EQ(store.stats().pack_handle_evictions, 0u);
}

TEST(Cas, PackHandleCacheEvictsLeastRecentlyUsed) {
  io::MemEnv base;
  CountingEnv env(base);
  ChunkStore store(env, "cp");
  std::vector<ChunkKey> keys;
  for (std::uint64_t epoch = 1; epoch <= 6; ++epoch) {
    keys.push_back(store_one_pack(store, epoch));
  }
  const std::uint64_t warm = env.ranged_opens;
  // Cycling six packs through four slots evicts on every get (LRU's
  // worst case) — the point is that eviction HAPPENS and is counted,
  // not that cycling is fast.
  for (int round = 0; round < 3; ++round) {
    for (const ChunkKey& key : keys) {
      EXPECT_EQ(store.get(key).size(), key.len);
    }
  }
  EXPECT_GT(env.ranged_opens, warm);
  EXPECT_GT(store.stats().pack_handle_evictions, 0u);
}

// ---------- sharded index: concurrency ----------

TEST(Cas, ShardedIndexConcurrentProbesAndRefsStayExact) {
  // N threads hammer the sharded index through every hot path at once —
  // dedup probes (pin_and_probe via Batch::contains), retain/release,
  // and concurrent publishes of new packs — and the final refcounts
  // must come out EXACT: the per-shard locking loses no update.
  io::MemEnv env;
  ChunkStore store(env, "cp");
  constexpr std::size_t kKeys = 32;
  constexpr int kThreads = 8;
  constexpr int kRounds = 20;

  std::vector<ChunkKey> keys;
  std::vector<Bytes> payloads;
  {
    auto batch = store.begin_batch(1);
    util::Rng rng(99);
    for (std::size_t i = 0; i < kKeys; ++i) {
      Bytes chunk(128);
      for (auto& b : chunk) {
        b = static_cast<std::uint8_t>(rng());
      }
      const ChunkKey key{util::crc32c(chunk), chunk.size()};
      keys.push_back(key);
      payloads.push_back(chunk);
      ASSERT_FALSE(batch->contains(key));
      batch->put(key, codec::CodecId::kRaw, chunk);
    }
    batch->commit();
    store.publish(*batch);
  }

  std::atomic<std::uint64_t> probe_misses{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&store, &keys, &probe_misses, t] {
      for (int round = 0; round < kRounds; ++round) {
        store.retain(keys);
        if (round % 2 == 1) {
          store.release(keys);
        }
        // Dedup-probe every key through a fresh batch (each probe pins;
        // batch destruction unpins). All keys are resident and nothing
        // sweeps, so every probe must hit.
        auto batch = store.begin_batch(
            1000 + static_cast<std::uint64_t>(t) * kRounds + round);
        for (std::size_t i = 0; i < keys.size(); ++i) {
          const std::size_t idx =
              (i * (2 * static_cast<std::size_t>(t) + 3) + round) %
              keys.size();
          if (!batch->contains(keys[idx])) {
            probe_misses.fetch_add(1, std::memory_order_relaxed);
          }
        }
        // And one brand-new chunk published concurrently per round.
        const ChunkKey fresh = store_one_pack(
            store, 100000 + static_cast<std::uint64_t>(t) * kRounds + round);
        if (!store.contains(fresh)) {
          probe_misses.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& w : workers) {
    w.join();
  }

  EXPECT_EQ(probe_misses.load(), 0u);
  // Per thread: kRounds retains, kRounds/2 releases of every key.
  const std::uint64_t expected =
      static_cast<std::uint64_t>(kThreads) * (kRounds - kRounds / 2);
  for (const ChunkKey& key : keys) {
    ASSERT_EQ(store.ref_count(key), expected);
  }
  EXPECT_EQ(store.get(keys[0]), payloads[0]);
}

TEST(Cas, PackFileNameRoundTrips) {
  EXPECT_EQ(pack_file_name(42), "pack-0000000042.qpak");
  EXPECT_EQ(parse_pack_file_name("pack-0000000042.qpak"), 42u);
  EXPECT_FALSE(parse_pack_file_name("pack-42.qpak").has_value());
  EXPECT_FALSE(parse_pack_file_name("ckpt-0000000042.qckp").has_value());
  EXPECT_FALSE(parse_pack_file_name("pack-00000000xx.qpak").has_value());
}

}  // namespace
}  // namespace qnn::ckpt

// Unit tests for the observability layer: MetricsRegistry instruments
// (correctness + concurrency), Tracer/Span output (including the golden
// byte-stable trace under a deterministic clock), ObservedEnv per-op
// accounting, the recovery flight recorder, and the satellite fixes
// (JsonLine nan/inf, RunningStats::merge, Percentiles lazy sort,
// atomic-sink ScopedTimer).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "bench/bench_util.hpp"
#include "ckpt/checkpointer.hpp"
#include "ckpt/manifest.hpp"
#include "ckpt/recovery.hpp"
#include "io/mem_env.hpp"
#include "obs/metrics.hpp"
#include "obs/observed_env.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace qnn::obs {
namespace {

using io::Bytes;

Bytes bytes_of(const std::string& s) { return Bytes(s.begin(), s.end()); }

// ---------- MetricsRegistry ----------

TEST(MetricsRegistry, InstrumentsAreNamedAndStable) {
  MetricsRegistry r;
  Counter& c = r.counter("x.ops");
  c.add(3);
  EXPECT_EQ(&c, &r.counter("x.ops"));  // same instrument on re-lookup
  EXPECT_EQ(r.counter("x.ops").value(), 3u);

  r.gauge("depth").set(-4);
  EXPECT_EQ(r.gauge("depth").value(), -4);
  r.gauge("depth").add(10);
  EXPECT_EQ(r.gauge("depth").value(), 6);
}

TEST(MetricsRegistry, CounterSetIsIdempotentReexport) {
  MetricsRegistry r;
  r.counter("ckpt.checkpoints").set(7);
  r.counter("ckpt.checkpoints").set(7);
  EXPECT_EQ(r.counter("ckpt.checkpoints").value(), 7u);
}

TEST(MetricsRegistry, ConcurrentRecordingIsExact) {
  MetricsRegistry r;
  Counter& ops = r.counter("ops");
  LatencyHistogram& lat = r.histogram("lat");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ops, &lat] {
      for (int i = 0; i < kPerThread; ++i) {
        ops.add(1);
        lat.record_us(static_cast<double>(i % 100));
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(ops.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(lat.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(LatencyHistogram, PowerOfTwoBucketsAndQuantiles) {
  LatencyHistogram h;
  // Bucket 0: sub-microsecond. Bucket i >= 1: [2^(i-1), 2^i) us.
  h.record_us(0.5);
  EXPECT_EQ(h.bucket(0), 1u);
  h.record_us(1.0);  // [1,2) -> bucket 1
  EXPECT_EQ(h.bucket(1), 1u);
  h.record_us(3.0);  // [2,4) -> bucket 2
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.count(), 3u);
  // Quantiles answer the holding bucket's upper edge (never under).
  EXPECT_EQ(h.percentile_us(0.0), 1u);
  EXPECT_EQ(h.percentile_us(100.0), 4u);
  EXPECT_EQ(LatencyHistogram::bucket_edge_us(0), 1u);
  EXPECT_EQ(LatencyHistogram::bucket_edge_us(3), 8u);
}

TEST(LatencyHistogram, OverflowBucketAbsorbsSlowSamples) {
  LatencyHistogram h;
  h.record_seconds(1e6);  // absurdly slow: must land in the last bucket
  EXPECT_EQ(h.bucket(LatencyHistogram::kBuckets - 1), 1u);
  EXPECT_EQ(h.count(), 1u);
}

TEST(MetricsRegistry, TextAndJsonSnapshots) {
  MetricsRegistry r;
  r.counter("b.ops").add(2);
  r.counter("a.ops").add(1);
  r.gauge("depth").set(5);
  r.histogram("lat").record_us(10.0);
  const std::string text = r.text();
  // Sorted: a.ops line precedes b.ops.
  EXPECT_LT(text.find("a.ops"), text.find("b.ops"));
  const std::string json = r.json("unit");
  EXPECT_NE(json.find("\"schema\":\"metrics-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"bench\":\"unit\""), std::string::npos);
  EXPECT_NE(json.find("\"a.ops\":1"), std::string::npos);
  EXPECT_NE(json.find("\"depth\":5"), std::string::npos);
  EXPECT_NE(json.find("\"lat\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
}

// ---------- Tracer / Span ----------

/// Deterministic clock: advances 100us per call, starting at 0.
Tracer::Clock fake_clock() {
  auto t = std::make_shared<double>(0.0);
  return [t] {
    const double now = *t;
    *t += 100e-6;
    return now;
  };
}

TEST(Tracer, SpansNestAndBalance) {
  Tracer tracer(fake_clock());
  {
    Span outer(&tracer, "outer", "test");
    Span inner(&tracer, "inner", "test", outer.id());
    inner.note("k", std::uint64_t{7});
  }
  tracer.instant("tick", "test");
  EXPECT_EQ(tracer.event_count(), 5u);  // 2 B + 2 E + 1 i
  const std::string json = tracer.chrome_json();
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"k\":7"), std::string::npos);
}

TEST(Tracer, NullTracerSpansAreInert) {
  Span s(nullptr, "nothing", "test");
  s.note("k", "v");
  EXPECT_EQ(s.id(), 0u);
  s.finish();  // must not crash
}

TEST(Tracer, DeterministicClockYieldsByteStableTraces) {
  const auto record = [](Tracer& tracer) {
    Span root(&tracer, "checkpoint", "ckpt");
    root.note("id", std::uint64_t{1});
    {
      Span child(&tracer, "encode", "ckpt", root.id());
      child.note("bytes", std::uint64_t{4096});
    }
    tracer.instant("wal.append", "wal",
                   {{"step", "3"}, {"bytes", "128"}});
  };
  Tracer a(fake_clock());
  Tracer b(fake_clock());
  record(a);
  record(b);
  EXPECT_EQ(a.chrome_json(), b.chrome_json());
}

TEST(Tracer, GoldenTraceFixture) {
  // The exact bytes of a minimal recording. This is the compatibility
  // contract for downstream trace tooling (check_trace.py, Perfetto):
  // renaming fields or reordering events breaks consumers, so it must
  // be a deliberate decision that updates this fixture.
  Tracer tracer(fake_clock());
  {
    Span s(&tracer, "op", "cat");
    s.note("n", std::uint64_t{1});
  }
  const std::string expected =
      "{\"traceEvents\":[\n"
      "{\"name\":\"op\",\"cat\":\"cat\",\"ph\":\"B\",\"ts\":100,\"pid\":1,"
      "\"tid\":1,\"args\":{\"span\":1}},\n"
      "{\"name\":\"op\",\"cat\":\"cat\",\"ph\":\"E\",\"ts\":200,\"pid\":1,"
      "\"tid\":1,\"args\":{\"n\":1}}\n"
      "],\"displayTimeUnit\":\"ms\"}\n";
  EXPECT_EQ(tracer.chrome_json(), expected);
}

TEST(Tracer, ClockGlitchesAreClampedMonotone) {
  auto t = std::make_shared<double>(1.0);
  Tracer tracer([t] {
    const double now = *t;
    *t -= 0.5;  // clock runs BACKWARDS
    return now;
  });
  tracer.instant("a", "test");
  tracer.instant("b", "test");
  const std::string json = tracer.chrome_json();
  // Second event must not go backwards: both at ts 0 (clamped).
  EXPECT_EQ(json.find("\"ts\":-"), std::string::npos);
}

// ---------- ObservedEnv ----------

TEST(ObservedEnv, ChargesHandleOps) {
  io::MemEnv mem;
  MetricsRegistry r;
  ObservedEnv env(mem, r);

  auto out = env.new_writable("f", io::WriteMode::kAtomic);
  out->append(bytes_of("hello"));
  out->append(bytes_of("world"));
  out->sync();
  out->close();

  EXPECT_EQ(r.counter("io.append.ops").value(), 2u);
  EXPECT_EQ(r.counter("io.append.bytes").value(), 10u);
  EXPECT_EQ(r.counter("io.sync.ops").value(), 1u);
  // One atomic close = one install carrying the whole stream.
  EXPECT_EQ(r.counter("io.install.ops").value(), 1u);
  EXPECT_EQ(r.counter("io.install.bytes").value(), 10u);

  auto in = env.open_ranged("f");
  ASSERT_NE(in, nullptr);
  const Bytes got = in->pread(2, 100);  // clamped to 8 bytes
  EXPECT_EQ(got.size(), 8u);
  EXPECT_EQ(r.counter("io.pread.ops").value(), 1u);
  EXPECT_EQ(r.counter("io.pread.bytes").value(), 8u);
}

TEST(ObservedEnv, AbortedAtomicStreamChargesNoInstall) {
  io::MemEnv mem;
  MetricsRegistry r;
  ObservedEnv env(mem, r);
  {
    auto out = env.new_writable("f", io::WriteMode::kAtomic);
    out->append(bytes_of("doomed"));
    // Destroyed without close(): the base aborts the install.
  }
  EXPECT_FALSE(env.exists("f"));
  EXPECT_EQ(r.counter("io.install.ops").value(), 0u);
  EXPECT_EQ(r.counter("io.append.ops").value(), 1u);  // the append happened
}

TEST(ObservedEnv, WholeBufferCallsChargeClasses) {
  io::MemEnv mem;
  MetricsRegistry r;
  ObservedEnv env(mem, r);
  env.write_file_atomic("a", bytes_of("xyz"));
  EXPECT_EQ(r.counter("io.install.ops").value(), 1u);
  EXPECT_EQ(r.counter("io.install.bytes").value(), 3u);
  env.read_file("a");
  EXPECT_EQ(r.counter("io.pread.ops").value(), 1u);
  EXPECT_EQ(r.counter("io.pread.bytes").value(), 3u);
  env.exists("a");
  env.file_size("a");
  env.list_dir("");
  EXPECT_EQ(r.counter("io.meta.ops").value(), 3u);
  env.remove_file("a");
  EXPECT_EQ(r.counter("io.remove.ops").value(), 1u);
}

// ---------- Recovery flight recorder ----------

qnn::TrainingState make_state(std::uint64_t step) {
  qnn::TrainingState s;
  s.step = step;
  s.params.assign(16, 0.25 * static_cast<double>(step));
  s.optimizer_name = "adam";
  s.optimizer_state.assign(64, static_cast<std::uint8_t>(step));
  s.loss_history.assign(step, 0.5);
  s.workload_tag = "obs-test";
  return s;
}

TEST(FlightRecorder, OrderedEventsForWalReplayAfterCrash) {
  io::MemEnv env;
  const std::string dir = "ckpt";
  {
    ckpt::CheckpointPolicy policy;
    policy.strategy = ckpt::Strategy::kFullState;
    policy.every_steps = 10;
    policy.wal.enable = true;
    policy.wal.group_commit_steps = 1;  // every record durable
    ckpt::Checkpointer ck(env, dir, policy);
    for (std::uint64_t step = 1; step <= 13; ++step) {
      ck.maybe_checkpoint(make_state(step));
    }
    // "Crash": drop the checkpointer with journal records 11..13
    // newer than the installed checkpoint at step 10.
  }

  const auto outcome = ckpt::recover_latest(env, dir);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->step, 13u);

  // The recorder must tell the story in order: scan, try the newest
  // candidate, resolve its chain, replay the journal, recover.
  const auto& events = outcome->events;
  ASSERT_GE(events.size(), 5u);
  std::vector<std::string> names;
  names.reserve(events.size());
  for (const auto& e : events) {
    names.push_back(e.name);
  }
  EXPECT_EQ(names[0], "manifest.scan");
  const auto pos = [&names](const std::string& n) {
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (names[i] == n) {
        return static_cast<std::ptrdiff_t>(i);
      }
    }
    return std::ptrdiff_t{-1};
  };
  ASSERT_GE(pos("candidate.try"), 0);
  ASSERT_GE(pos("chain.resolved"), 0);
  ASSERT_GE(pos("wal.replay"), 0);
  ASSERT_GE(pos("recovered"), 0);
  EXPECT_LT(pos("candidate.try"), pos("chain.resolved"));
  EXPECT_LT(pos("chain.resolved"), pos("wal.replay"));
  EXPECT_LT(pos("wal.replay"), pos("recovered"));

  const auto& replay = events[static_cast<std::size_t>(pos("wal.replay"))];
  EXPECT_EQ(replay.value("records"), "3");
  EXPECT_EQ(replay.value("step"), "13");
  EXPECT_EQ(replay.value("torn_bytes"), "0");
  const auto& done = events[static_cast<std::size_t>(pos("recovered"))];
  EXPECT_EQ(done.value("step"), "13");
  EXPECT_EQ(done.value("missing"), "");  // absent key reads as empty
}

TEST(FlightRecorder, RejectedCandidateIsRecordedBeforeFallback) {
  io::MemEnv env;
  const std::string dir = "ckpt";
  {
    ckpt::CheckpointPolicy policy;
    policy.strategy = ckpt::Strategy::kFullState;
    policy.every_steps = 5;
    ckpt::Checkpointer ck(env, dir, policy);
    for (std::uint64_t step = 1; step <= 10; ++step) {
      ck.maybe_checkpoint(make_state(step));
    }
  }
  // Corrupt the newest file so recovery must fall back.
  env.write_file_atomic(dir + "/" + ckpt::checkpoint_file_name(2),
                        bytes_of("garbage"));

  const auto outcome = ckpt::recover_latest(env, dir);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->checkpoint_id, 1u);

  bool saw_reject = false;
  bool saw_recover_after_reject = false;
  for (const auto& e : outcome->events) {
    if (e.name == "candidate.reject" && e.value("id") == "2") {
      saw_reject = true;
    }
    if (e.name == "recovered" && saw_reject) {
      saw_recover_after_reject = true;
      EXPECT_EQ(e.value("id"), "1");
    }
  }
  EXPECT_TRUE(saw_reject);
  EXPECT_TRUE(saw_recover_after_reject);
}

// ---------- Checkpointer metrics export ----------

TEST(ExportMetrics, StatsLandInRegistry) {
  io::MemEnv env;
  MetricsRegistry r;
  Tracer tracer(fake_clock());
  ckpt::CheckpointPolicy policy;
  policy.strategy = ckpt::Strategy::kFullState;
  policy.every_steps = 2;
  policy.metrics = &r;
  policy.tracer = &tracer;
  ckpt::Checkpointer ck(env, "ckpt", policy);
  for (std::uint64_t step = 1; step <= 6; ++step) {
    ck.maybe_checkpoint(make_state(step));
  }
  ck.export_metrics(r);
  EXPECT_EQ(r.counter("ckpt.checkpoints").value(), 3u);
  EXPECT_GT(r.counter("ckpt.bytes_encoded").value(), 0u);
  // Live per-stage histograms recorded one sample per checkpoint.
  EXPECT_EQ(r.histogram("ckpt.snapshot").count(), 3u);
  EXPECT_EQ(r.histogram("ckpt.encode").count(), 3u);
  EXPECT_EQ(r.histogram("ckpt.install").count(), 3u);
  // The tracer saw the span tree: 3 checkpoints x (checkpoint +
  // snapshot + encode + install) B/E pairs at minimum.
  EXPECT_GE(tracer.event_count(), 24u);
}

// ---------- Satellite fixes ----------

TEST(JsonLine, NanAndInfDegradeToNull) {
  const std::string json = bench::JsonLine("unit")
                               .field("ok", 1.5)
                               .field("nan", std::nan(""))
                               .field("inf", HUGE_VAL)
                               .json();
  EXPECT_NE(json.find("\"ok\":1.5"), std::string::npos);
  EXPECT_NE(json.find("\"nan\":null"), std::string::npos);
  EXPECT_NE(json.find("\"inf\":null"), std::string::npos);
  EXPECT_EQ(json.find("nan,"), std::string::npos);
}

TEST(RunningStats, MergeMatchesSingleStream) {
  util::RunningStats a, b, whole;
  util::Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(-10.0, 10.0);
    (i % 2 == 0 ? a : b).add(x);
    whole.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_EQ(a.min(), whole.min());
  EXPECT_EQ(a.max(), whole.max());
  EXPECT_NEAR(a.sum(), whole.sum(), 1e-9);
}

TEST(RunningStats, MergeWithEmptySides) {
  util::RunningStats empty, some;
  some.add(1.0);
  some.add(3.0);
  util::RunningStats lhs = some;
  lhs.merge(empty);  // no-op
  EXPECT_EQ(lhs.count(), 2u);
  EXPECT_NEAR(lhs.mean(), 2.0, 1e-12);
  util::RunningStats rhs;
  rhs.merge(some);  // adopt
  EXPECT_EQ(rhs.count(), 2u);
  EXPECT_NEAR(rhs.mean(), 2.0, 1e-12);
}

TEST(Percentiles, CorrectAcrossInterleavedAddsAndQueries) {
  util::Percentiles p;
  for (double x : {5.0, 1.0, 3.0}) {
    p.add(x);
  }
  EXPECT_NEAR(p.percentile(50.0), 3.0, 1e-12);
  // Adding after a query must invalidate the sorted cache.
  p.add(0.0);
  p.add(2.0);
  EXPECT_NEAR(p.percentile(0.0), 0.0, 1e-12);
  EXPECT_NEAR(p.percentile(50.0), 2.0, 1e-12);
  EXPECT_NEAR(p.percentile(100.0), 5.0, 1e-12);
}

TEST(ScopedTimer, AtomicSinkAccumulatesAcrossThreads) {
  std::atomic<std::uint64_t> ns{0};
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&ns] {
      util::ScopedTimer timer(ns);
      volatile double sink = 0.0;
      for (int i = 0; i < 10000; ++i) {
        sink = sink + 1.0;
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_GT(ns.load(), 0u);
  EXPECT_GT(util::ScopedTimer::seconds_from_ns(ns), 0.0);
}

}  // namespace
}  // namespace qnn::obs

// Unit + property tests for the state-vector simulator substrate.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "qnn/ansatz.hpp"
#include "qnn/loss.hpp"
#include "sim/circuit.hpp"
#include "sim/gates.hpp"
#include "sim/noise.hpp"
#include "sim/parallel.hpp"
#include "sim/pauli.hpp"
#include "sim/state_vector.hpp"

namespace qnn::sim {
namespace {

constexpr double kTol = 1e-12;

// ---------- StateVector basics ----------

TEST(StateVector, InitialStateIsZeroKet) {
  StateVector sv(3);
  EXPECT_EQ(sv.dim(), 8u);
  EXPECT_NEAR(std::abs(sv.amplitude(0) - cplx{1.0, 0.0}), 0.0, kTol);
  for (std::size_t i = 1; i < 8; ++i) {
    EXPECT_NEAR(std::abs(sv.amplitude(i)), 0.0, kTol);
  }
  EXPECT_NEAR(sv.norm(), 1.0, kTol);
}

TEST(StateVector, ZeroQubitsIsScalar) {
  StateVector sv(0);
  EXPECT_EQ(sv.dim(), 1u);
  EXPECT_NEAR(sv.norm(), 1.0, kTol);
}

TEST(StateVector, TooManyQubitsRejected) {
  EXPECT_THROW(StateVector(31), std::invalid_argument);
}

TEST(StateVector, SetBasisState) {
  StateVector sv(2);
  sv.set_basis_state(3);
  EXPECT_NEAR(std::abs(sv.amplitude(3) - cplx{1.0, 0.0}), 0.0, kTol);
  EXPECT_THROW(sv.set_basis_state(4), std::out_of_range);
}

TEST(StateVector, QubitBoundsChecked) {
  StateVector sv(2);
  EXPECT_THROW(sv.apply_1q(gates::X(), 2), std::out_of_range);
  EXPECT_THROW(sv.apply_2q(gates::CX(), 0, 0), std::invalid_argument);
  EXPECT_THROW(sv.probability_one(5), std::out_of_range);
}

TEST(StateVector, XFlipsQubitZero) {
  StateVector sv(2);
  sv.apply_1q(gates::X(), 0);
  EXPECT_NEAR(std::abs(sv.amplitude(1) - cplx{1.0, 0.0}), 0.0, kTol);
}

TEST(StateVector, XFlipsQubitOne) {
  StateVector sv(2);
  sv.apply_1q(gates::X(), 1);
  EXPECT_NEAR(std::abs(sv.amplitude(2) - cplx{1.0, 0.0}), 0.0, kTol);
}

TEST(StateVector, HadamardMakesUniformSuperposition) {
  StateVector sv(1);
  sv.apply_1q(gates::H(), 0);
  EXPECT_NEAR(sv.probability_one(0), 0.5, kTol);
  EXPECT_NEAR(sv.norm(), 1.0, kTol);
}

TEST(StateVector, BellStateViaHAndCnot) {
  StateVector sv(2);
  sv.apply_1q(gates::H(), 0);
  sv.apply_controlled_1q(gates::X(), 0, 1);
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(std::abs(sv.amplitude(0) - cplx{inv_sqrt2, 0}), 0.0, kTol);
  EXPECT_NEAR(std::abs(sv.amplitude(3) - cplx{inv_sqrt2, 0}), 0.0, kTol);
  EXPECT_NEAR(std::abs(sv.amplitude(1)), 0.0, kTol);
  EXPECT_NEAR(std::abs(sv.amplitude(2)), 0.0, kTol);
}

TEST(StateVector, SwapGateSwapsBits) {
  StateVector sv(2);
  sv.set_basis_state(1);  // |01> (q0=1)
  sv.apply_2q(gates::SWAP(), 0, 1);
  EXPECT_NEAR(std::abs(sv.amplitude(2) - cplx{1.0, 0.0}), 0.0, kTol);
}

TEST(StateVector, PhaseOnParityMatchesRzz) {
  // RZZ(theta) == diag phases by ZZ parity, up to matching convention.
  StateVector a(2), b(2);
  a.apply_1q(gates::H(), 0);
  a.apply_1q(gates::H(), 1);
  b = a;
  const double theta = 0.7;
  a.apply_2q(gates::RZZ(theta), 0, 1);
  // Manual: even parity -> e^{-i theta/2}, odd -> e^{+i theta/2}.
  for (auto& amp : b.mutable_amplitudes()) {
    amp *= std::polar(1.0, -theta / 2);
  }
  b.apply_phase_on_parity(0b11, std::polar(1.0, theta));
  EXPECT_GT(a.fidelity(b), 1.0 - kTol);
}

TEST(StateVector, MeasureCollapsesAndNormalises) {
  util::Rng rng(1);
  StateVector sv(1);
  sv.apply_1q(gates::H(), 0);
  const int outcome = sv.measure(0, rng);
  EXPECT_TRUE(outcome == 0 || outcome == 1);
  EXPECT_NEAR(sv.probability_one(0), static_cast<double>(outcome), kTol);
  EXPECT_NEAR(sv.norm(), 1.0, kTol);
}

TEST(StateVector, MeasurementStatisticsMatchBornRule) {
  util::Rng rng(2);
  int ones = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    StateVector sv(1);
    sv.apply_1q(gates::RY(2.0 * std::asin(std::sqrt(0.3))), 0);
    ones += sv.measure(0, rng);
  }
  EXPECT_NEAR(static_cast<double>(ones) / trials, 0.3, 0.02);
}

TEST(StateVector, SampleDistributionMatchesAmplitudes) {
  util::Rng rng(3);
  StateVector sv(2);
  sv.apply_1q(gates::H(), 0);  // 50/50 between |00> and |01>
  const auto outcomes = sv.sample(20000, rng);
  std::size_t count1 = 0;
  for (auto o : outcomes) {
    ASSERT_TRUE(o == 0 || o == 1);
    count1 += o == 1;
  }
  EXPECT_NEAR(static_cast<double>(count1) / 20000.0, 0.5, 0.02);
}

TEST(StateVector, SampleDoesNotMutateState) {
  util::Rng rng(4);
  StateVector sv(3);
  sv.apply_1q(gates::H(), 1);
  const StateVector before = sv;
  (void)sv.sample(100, rng);
  EXPECT_EQ(sv, before);
}

TEST(StateVector, InnerProductAndFidelity) {
  StateVector a(1), b(1);
  b.apply_1q(gates::X(), 0);
  EXPECT_NEAR(std::abs(a.inner_product(b)), 0.0, kTol);
  EXPECT_NEAR(a.fidelity(a), 1.0, kTol);
  EXPECT_NEAR(a.fidelity(b), 0.0, kTol);
  StateVector c(2);
  EXPECT_THROW(a.inner_product(c), std::invalid_argument);
}

TEST(StateVector, SerializeRoundTripBitExact) {
  StateVector sv(4);
  sv.apply_1q(gates::H(), 0);
  sv.apply_controlled_1q(gates::X(), 0, 2);
  sv.apply_1q(gates::T(), 3);
  const StateVector back = StateVector::deserialize(sv.serialize());
  EXPECT_EQ(sv, back);
}

TEST(StateVector, DeserializeRejectsGarbage) {
  StateVector sv(2);
  auto data = sv.serialize();
  data.resize(data.size() - 1);
  EXPECT_THROW(StateVector::deserialize(data), std::runtime_error);
  data.clear();
  EXPECT_THROW(StateVector::deserialize(data), std::out_of_range);
}

TEST(StateVector, NormalizeZeroVectorThrows) {
  StateVector sv(1);
  sv.mutable_amplitudes()[0] = {0.0, 0.0};
  EXPECT_THROW(sv.normalize(), std::runtime_error);
}

TEST(PureStateDistance, MetricBasics) {
  StateVector a(1), b(1);
  b.apply_1q(gates::X(), 0);
  EXPECT_NEAR(pure_state_distance(a, a), 0.0, kTol);
  EXPECT_NEAR(pure_state_distance(a, b), 1.0, kTol);
}

// ---------- gate algebra properties ----------

TEST(Gates, AllFixedGatesUnitary) {
  for (const Mat2& m : {gates::I(), gates::X(), gates::Y(), gates::Z(),
                        gates::H(), gates::S(), gates::Sdg(), gates::T(),
                        gates::Tdg(), gates::SX()}) {
    EXPECT_TRUE(gates::is_unitary(m));
  }
  for (const Mat4& m : {gates::CX(), gates::CZ(), gates::SWAP(),
                        gates::ISWAP()}) {
    EXPECT_TRUE(gates::is_unitary4(m));
  }
}

class RotationGateTest : public ::testing::TestWithParam<double> {};

TEST_P(RotationGateTest, ParameterisedGatesUnitaryAtAllAngles) {
  const double theta = GetParam();
  EXPECT_TRUE(gates::is_unitary(gates::RX(theta)));
  EXPECT_TRUE(gates::is_unitary(gates::RY(theta)));
  EXPECT_TRUE(gates::is_unitary(gates::RZ(theta)));
  EXPECT_TRUE(gates::is_unitary(gates::P(theta)));
  EXPECT_TRUE(gates::is_unitary(gates::U3(theta, theta / 2, theta / 3)));
  EXPECT_TRUE(gates::is_unitary4(gates::CRZ(theta)));
  EXPECT_TRUE(gates::is_unitary4(gates::RXX(theta)));
  EXPECT_TRUE(gates::is_unitary4(gates::RYY(theta)));
  EXPECT_TRUE(gates::is_unitary4(gates::RZZ(theta)));
}

TEST_P(RotationGateTest, RotationComposition) {
  const double theta = GetParam();
  // R(theta) R(-theta) == I
  EXPECT_LT(gates::max_abs_diff(
                gates::matmul(gates::RX(theta), gates::RX(-theta)),
                gates::I()),
            kTol);
  // R(a)R(b) == R(a+b)
  EXPECT_LT(gates::max_abs_diff(
                gates::matmul(gates::RY(theta), gates::RY(0.3)),
                gates::RY(theta + 0.3)),
            kTol);
}

INSTANTIATE_TEST_SUITE_P(AngleSweep, RotationGateTest,
                         ::testing::Values(-2.0 * std::numbers::pi, -1.5, -0.1,
                                           0.0, 1e-8, 0.5, std::numbers::pi,
                                           2.7, 4.0 * std::numbers::pi));

TEST(Gates, StandardIdentities) {
  EXPECT_LT(gates::max_abs_diff(gates::matmul(gates::H(), gates::H()),
                                gates::I()),
            kTol);
  EXPECT_LT(gates::max_abs_diff(gates::matmul(gates::X(), gates::X()),
                                gates::I()),
            kTol);
  EXPECT_LT(gates::max_abs_diff(gates::matmul(gates::S(), gates::S()),
                                gates::Z()),
            kTol);
  EXPECT_LT(gates::max_abs_diff(gates::matmul(gates::T(), gates::T()),
                                gates::S()),
            kTol);
  EXPECT_LT(gates::max_abs_diff(gates::matmul(gates::SX(), gates::SX()),
                                gates::X()),
            kTol);
  // HXH = Z
  EXPECT_LT(gates::max_abs_diff(gates::matmul(gates::H(),
                                              gates::matmul(gates::X(),
                                                            gates::H())),
                                gates::Z()),
            kTol);
  EXPECT_LT(gates::max_abs_diff(gates::dagger(gates::S()), gates::Sdg()), kTol);
  EXPECT_LT(gates::max_abs_diff(gates::dagger(gates::T()), gates::Tdg()), kTol);
}

// ---------- circuit IR ----------

TEST(Circuit, BuildersAndCounts) {
  Circuit c(3);
  c.h(0);
  c.cx(0, 1);
  auto p = c.new_param();
  c.ry(2, p);
  c.rzz(1, 2, 0.5);
  EXPECT_EQ(c.gate_count(), 4u);
  EXPECT_EQ(c.two_qubit_gate_count(), 2u);
  EXPECT_EQ(c.num_params(), 1u);
  EXPECT_GT(c.depth(), 0u);
  EXPECT_FALSE(c.dump().empty());
}

TEST(Circuit, DepthComputation) {
  Circuit c(2);
  c.h(0);
  c.h(1);  // parallel -> depth 1
  EXPECT_EQ(c.depth(), 1u);
  c.cx(0, 1);  // depth 2
  EXPECT_EQ(c.depth(), 2u);
  c.h(0);  // depth 3
  EXPECT_EQ(c.depth(), 3u);
}

TEST(Circuit, RejectsBadIndices) {
  Circuit c(2);
  EXPECT_THROW(c.h(2), std::out_of_range);
  EXPECT_THROW(c.cx(0, 0), std::invalid_argument);
  EXPECT_THROW(c.ry(0, sim::ParamRef{5, 1.0}), std::out_of_range);
}

TEST(Circuit, ApplyChecksBindings) {
  Circuit c(1);
  c.rx(0, c.new_param());
  StateVector sv(1);
  std::vector<double> wrong{};
  EXPECT_THROW(c.apply(sv, wrong), std::invalid_argument);
  StateVector sv2(2);
  std::vector<double> ok{0.5};
  EXPECT_THROW(c.apply(sv2, ok), std::invalid_argument);
}

TEST(Circuit, SharedParameterWithCoefficient) {
  // rz(2*p) == rz applied with angle 2p.
  Circuit c(1);
  auto p = c.new_param();
  c.rz(0, sim::ParamRef{p.slot, 2.0});
  const std::vector<double> params{0.4};
  StateVector a = c.run(params);
  StateVector b(1);
  b.apply_1q(gates::RZ(0.8), 0);
  EXPECT_GT(a.fidelity(b), 1.0 - kTol);
}

TEST(Circuit, CnotControlTargetOrientation) {
  // cx(control=1, target=0) on |10> flips to |11>.
  Circuit c(2);
  c.x(1);
  c.cx(1, 0);
  StateVector sv = c.run({});
  EXPECT_NEAR(std::abs(sv.amplitude(3) - cplx{1.0, 0.0}), 0.0, kTol);
}

class RandomCircuitNorm : public ::testing::TestWithParam<int> {};

TEST_P(RandomCircuitNorm, NormPreservedThroughDeepRandomCircuits) {
  const int seed = GetParam();
  const Circuit c =
      qnn::random_circuit(/*num_qubits=*/5, /*depth=*/40,
                          static_cast<std::uint64_t>(seed));
  const StateVector sv = c.run({});
  EXPECT_NEAR(sv.norm(), 1.0, 1e-10) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCircuitNorm, ::testing::Range(0, 12));

class FusedExecution : public ::testing::TestWithParam<int> {};

TEST_P(FusedExecution, FusedRunMatchesGateByGateRun) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const Circuit c = qnn::random_circuit(5, /*depth=*/20, seed);
  std::vector<double> params(c.num_params());
  util::Rng rng(seed * 31 + 1);
  for (double& p : params) {
    p = rng.uniform(-3.0, 3.0);
  }
  const StateVector plain = c.run(params);
  const StateVector fused =
      c.run(params, ExecOptions{.fuse_single_qubit_gates = true});
  ASSERT_EQ(plain.dim(), fused.dim());
  for (std::size_t i = 0; i < plain.dim(); ++i) {
    EXPECT_NEAR(std::abs(plain.amplitude(i) - fused.amplitude(i)), 0.0,
                kTol)
        << "amplitude " << i;
  }
  EXPECT_NEAR(fused.norm(), 1.0, kTol);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FusedExecution, ::testing::Range(0, 8));

TEST(FusedExecution, AdjacentRotationsCollapseToOneSweep) {
  // rz(a) rz(b) fused must equal rz(a+b) exactly up to rounding.
  Circuit fused_circ(2);
  fused_circ.h(0);
  fused_circ.rz(0, 0.3);
  fused_circ.rz(0, 0.4);
  fused_circ.ry(1, 0.2);
  fused_circ.cx(0, 1);
  Circuit direct(2);
  direct.h(0);
  direct.rz(0, 0.7);
  direct.ry(1, 0.2);
  direct.cx(0, 1);
  const StateVector a =
      fused_circ.run({}, ExecOptions{.fuse_single_qubit_gates = true});
  const StateVector b = direct.run({});
  EXPECT_GT(a.fidelity(b), 1.0 - kTol);
}

TEST(ParallelKernels, PooledPathMatchesAnalyticResultsAndIsDeterministic) {
  // Gate kernels parallelize over pairs (dim/2) and quads (dim/4), so 16
  // qubits puts even the smallest work-item count (2^16/4 = 16384) at
  // sim::kParallelThreshold — every kernel below runs its pooled branch
  // (the rest of the suite stays below and only exercises the serial
  // fast path).
  constexpr std::size_t kN = 16;
  static_assert((std::size_t{1} << kN) / 4 >= kParallelThreshold);

  // Uniform superposition via pooled apply_1q sweeps.
  StateVector psi(kN);
  for (std::size_t q = 0; q < kN; ++q) {
    psi.apply_1q(gates::H(), q);
  }
  const double amp = 1.0 / std::sqrt(static_cast<double>(psi.dim()));
  EXPECT_NEAR(psi.amplitude(0).real(), amp, kTol);
  EXPECT_NEAR(psi.amplitude(psi.dim() - 1).real(), amp, kTol);
  EXPECT_NEAR(psi.norm(), 1.0, kTol);                    // pooled reduce
  EXPECT_NEAR(psi.probability_one(kN - 1), 0.5, kTol);   // pooled reduce

  // Pooled apply_2q / controlled / parity kernels against a full random
  // circuit; determinism across two identical runs must be bitwise.
  const Circuit c = qnn::random_circuit(kN, /*depth=*/30, 7);
  const StateVector a = c.run({});
  const StateVector b = c.run({});
  EXPECT_EQ(a, b);  // bit-identical, thread-count independent
  EXPECT_NEAR(a.norm(), 1.0, 1e-9);

  // Cross-check the pooled kernels through an independent execution
  // path: the fused single-qubit route must agree to tolerance.
  const StateVector fused =
      c.run({}, ExecOptions{.fuse_single_qubit_gates = true});
  EXPECT_GT(a.fidelity(fused), 1.0 - 1e-9);

  // Pooled inner_product: <uniform|uniform> = 1.
  EXPECT_NEAR(std::abs(psi.inner_product(psi)), 1.0, kTol);
}

TEST(Circuit, InverseCircuitRestoresInput) {
  Circuit fwd(3);
  fwd.h(0);
  fwd.cx(0, 1);
  fwd.rx(2, 0.7);
  fwd.rzz(0, 2, 0.3);
  Circuit inv(3);
  inv.rzz(0, 2, -0.3);
  inv.rx(2, -0.7);
  inv.cx(0, 1);
  inv.h(0);
  StateVector sv(3);
  fwd.apply(sv, {});
  inv.apply(sv, {});
  StateVector zero(3);
  EXPECT_GT(sv.fidelity(zero), 1.0 - 1e-10);
}

// ---------- Pauli observables ----------

TEST(Pauli, ParseAndRender) {
  const auto term = PauliTerm::from_string(0.5, "IXYZ");
  EXPECT_EQ(term.paulis.size(), 4u);
  EXPECT_FALSE(term.is_diagonal());
  EXPECT_TRUE(PauliTerm::from_string(1.0, "IZZI").is_diagonal());
  EXPECT_THROW(PauliTerm::from_string(1.0, "ABC"), std::invalid_argument);
  EXPECT_EQ(term.to_string(), "0.5 * IXYZ");
}

TEST(Pauli, ZExpectationOnBasisStates) {
  Observable obs(1);
  obs.add_term(1.0, "Z");
  StateVector zero(1);
  EXPECT_NEAR(obs.expectation(zero), 1.0, kTol);
  StateVector one(1);
  one.apply_1q(gates::X(), 0);
  EXPECT_NEAR(obs.expectation(one), -1.0, kTol);
}

TEST(Pauli, XExpectationOnPlusState) {
  Observable obs(1);
  obs.add_term(1.0, "X");
  StateVector plus(1);
  plus.apply_1q(gates::H(), 0);
  EXPECT_NEAR(obs.expectation(plus), 1.0, kTol);
  StateVector zero(1);
  EXPECT_NEAR(obs.expectation(zero), 0.0, kTol);
}

TEST(Pauli, DiagonalAndGeneralPathsAgree) {
  // ZZ computed via the parity fast path must equal the generic path
  // (force the generic path with an equivalent Y-free/X-free string? use
  // a state where both are evaluated): compare ZZ against H-basis XX.
  const Circuit c = qnn::random_circuit(3, 20, 99);
  const StateVector psi = c.run({});
  Observable zz(3);
  zz.add_term(0.7, "ZZI");
  // Generic path: build the same operator via from_string but evaluated
  // through general_expectation by adding a dummy X term with coeff 0.
  Observable generic(3);
  generic.add_term(0.7, "ZZI");
  generic.add_term(0.0, "XII");
  EXPECT_NEAR(zz.expectation(psi), generic.expectation(psi), 1e-10);
}

TEST(Pauli, ObservableValidation) {
  Observable obs(2);
  EXPECT_THROW(obs.add_term(1.0, "Z"), std::invalid_argument);  // wrong len
  obs.add_term(1.0, "ZZ");
  StateVector wrong(3);
  EXPECT_THROW(obs.expectation(wrong), std::invalid_argument);
}

TEST(Pauli, TfimGroundStateLimits) {
  // J=1, h=0: classical Ising; |00...0> is a ground state with E = -(n-1).
  const std::size_t n = 4;
  const Observable h0 = transverse_field_ising(n, 1.0, 0.0);
  StateVector zeros(n);
  EXPECT_NEAR(h0.expectation(zeros), -3.0, kTol);
  // J=0, h=1: product of |+>; E = -n.
  const Observable hx = transverse_field_ising(n, 0.0, 1.0);
  StateVector plus(n);
  for (std::size_t q = 0; q < n; ++q) {
    plus.apply_1q(gates::H(), q);
  }
  EXPECT_NEAR(hx.expectation(plus), -4.0, kTol);
}

TEST(Pauli, ApplyIsConsistentWithExpectation) {
  // <psi|O|psi> must equal <psi | (O psi)> for every workload observable.
  const Circuit c = qnn::random_circuit(4, 25, 31);
  const StateVector psi = c.run({});
  for (const Observable& obs :
       {transverse_field_ising(4, 1.0, 0.7), parity_observable(4)}) {
    const StateVector opsi = obs.apply(psi);
    EXPECT_NEAR(psi.inner_product(opsi).real(), obs.expectation(psi), 1e-10);
  }
}

TEST(Pauli, ApplyIsLinear) {
  Observable obs(2);
  obs.add_term(0.5, "ZX");
  obs.add_term(-1.5, "XI");
  const StateVector a = qnn::random_state(2, 1);
  const StateVector b = qnn::random_state(2, 2);
  // O(a + b) == O a + O b, checked amplitude-wise.
  StateVector sum = a;
  for (std::size_t i = 0; i < sum.dim(); ++i) {
    sum.mutable_amplitudes()[i] += b.amplitudes()[i];
  }
  const StateVector lhs = obs.apply(sum);
  const StateVector oa = obs.apply(a);
  const StateVector ob = obs.apply(b);
  for (std::size_t i = 0; i < lhs.dim(); ++i) {
    EXPECT_NEAR(std::abs(lhs.amplitudes()[i] -
                         (oa.amplitudes()[i] + ob.amplitudes()[i])),
                0.0, 1e-12);
  }
  EXPECT_THROW(obs.apply(StateVector(3)), std::invalid_argument);
}

TEST(Pauli, SampledExpectationConvergesToExact) {
  util::Rng rng(5);
  const Circuit c = qnn::random_circuit(3, 15, 7);
  const StateVector psi = c.run({});
  const Observable obs = parity_observable(3);
  const double exact = obs.expectation(psi);
  const double sampled = obs.sampled_expectation(psi, 40000, rng);
  EXPECT_NEAR(sampled, exact, 0.03);
}

TEST(Pauli, SampledExpectationRejectsNonDiagonal) {
  util::Rng rng(6);
  Observable obs(1);
  obs.add_term(1.0, "X");
  StateVector psi(1);
  EXPECT_THROW(obs.sampled_expectation(psi, 10, rng), std::invalid_argument);
  Observable diag(1);
  diag.add_term(1.0, "Z");
  EXPECT_THROW(diag.sampled_expectation(psi, 0, rng), std::invalid_argument);
}

// ---------- noise ----------

TEST(Noise, DisabledModelChangesNothing) {
  util::Rng rng(7);
  const Circuit c = qnn::random_circuit(3, 10, 8);
  const StateVector clean = c.run({});
  const StateVector noisy = run_with_noise(c, {}, NoiseModel{}, rng);
  EXPECT_GT(clean.fidelity(noisy), 1.0 - kTol);
}

TEST(Noise, DepolarizingReducesFidelityOnAverage) {
  util::Rng rng(8);
  const Circuit c = qnn::random_circuit(3, 20, 9);
  const StateVector clean = c.run({});
  NoiseModel model;
  model.depolarizing_1q = 0.05;
  model.depolarizing_2q = 0.10;
  double mean_fid = 0.0;
  const int trials = 50;
  for (int i = 0; i < trials; ++i) {
    mean_fid += clean.fidelity(run_with_noise(c, {}, model, rng));
  }
  mean_fid /= trials;
  EXPECT_LT(mean_fid, 0.999);
  EXPECT_GT(mean_fid, 0.1);
}

TEST(Noise, TrajectoriesPreserveNorm) {
  util::Rng rng(9);
  const Circuit c = qnn::random_circuit(4, 15, 10);
  NoiseModel model;
  model.depolarizing_1q = 0.1;
  model.amplitude_damping = 0.05;
  model.bit_flip = 0.02;
  model.phase_flip = 0.02;
  for (int i = 0; i < 10; ++i) {
    const StateVector sv = run_with_noise(c, {}, model, rng);
    ASSERT_NEAR(sv.norm(), 1.0, 1e-9);
  }
}

TEST(Noise, AmplitudeDampingDrivesTowardsZeroKet) {
  util::Rng rng(10);
  // Start in |1>, hammer with amplitude damping via identity-ish gates.
  Circuit c(1);
  c.x(0);
  for (int i = 0; i < 60; ++i) {
    c.rz(0, 0.0);  // angle-0 rotations: pure noise carriers
  }
  NoiseModel model;
  model.amplitude_damping = 0.15;
  int decayed = 0;
  const int trials = 40;
  for (int i = 0; i < trials; ++i) {
    const StateVector sv = run_with_noise(c, {}, model, rng);
    decayed += sv.probability_one(0) < 0.5 ? 1 : 0;
  }
  EXPECT_GT(decayed, trials * 3 / 4);
}

TEST(Noise, SameRngSeedSameTrajectory) {
  const Circuit c = qnn::random_circuit(3, 12, 11);
  NoiseModel model;
  model.depolarizing_1q = 0.2;
  util::Rng r1(123), r2(123);
  const StateVector a = run_with_noise(c, {}, model, r1);
  const StateVector b = run_with_noise(c, {}, model, r2);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace qnn::sim

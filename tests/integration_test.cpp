// End-to-end integration tests: train -> checkpoint -> crash -> recover ->
// continue, across strategies, codecs and environments, plus the fault
// matrix guarantees.
#include <gtest/gtest.h>

#include <filesystem>

#include "ckpt/checkpointer.hpp"
#include "ckpt/recovery.hpp"
#include "ckpt/trainer_hook.hpp"
#include "fault/crash_point.hpp"
#include "io/fault_env.hpp"
#include "io/mem_env.hpp"
#include "qnn/ansatz.hpp"
#include "qnn/executor.hpp"
#include "qnn/loss.hpp"
#include "qnn/trainer.hpp"
#include "sim/pauli.hpp"

namespace qnn {
namespace {

using ckpt::CheckpointPolicy;
using ckpt::Checkpointer;
using ckpt::Strategy;

qnn::TrainerConfig base_config() {
  qnn::TrainerConfig cfg;
  cfg.optimizer = "adam";
  cfg.learning_rate = 0.1;
  cfg.seed = 1234;
  return cfg;
}

qnn::FidelityLoss make_unitary_loss() {
  return qnn::FidelityLoss(qnn::hardware_efficient(2, 1),
                           qnn::make_unitary_learning_data(2, 6, 4, 77));
}

std::vector<double> param_vec(const qnn::Trainer& t) {
  return {t.params().begin(), t.params().end()};
}

/// The flagship property: train with periodic checkpoints, crash, recover
/// from disk into a brand-new process-equivalent trainer, continue — and
/// end bit-identical to an uninterrupted run. Parameterised over strategy
/// and codec.
struct E2ECase {
  Strategy strategy;
  codec::CodecId codec;
  bool async;
};

class EndToEndResume : public ::testing::TestWithParam<E2ECase> {};

TEST_P(EndToEndResume, CrashRecoverContinueIsBitExact) {
  const E2ECase tc = GetParam();
  constexpr std::uint64_t kTotalSteps = 24;
  constexpr std::uint64_t kCrashStep = 17;

  // Reference: uninterrupted run.
  qnn::FidelityLoss ref_loss = make_unitary_loss();
  qnn::Trainer reference(ref_loss, base_config());
  reference.run(kTotalSteps);

  io::MemEnv env;
  CheckpointPolicy policy;
  policy.strategy = tc.strategy;
  policy.codec = tc.codec;
  policy.every_steps = 5;
  policy.retention.keep_last = 3;
  policy.full_every = 2;
  policy.async = tc.async;

  // Phase 1: train until the injected crash.
  {
    qnn::FidelityLoss loss = make_unitary_loss();
    qnn::Trainer trainer(loss, base_config());
    Checkpointer ck(env, "cp", policy);
    EXPECT_THROW(
        trainer.run(kTotalSteps,
                    fault::crash_at(kCrashStep,
                                    ckpt::checkpointing_callback(trainer, ck))),
        fault::SimulatedCrash);
    ck.flush();
  }

  // Phase 2: "new process" — fresh trainer, recover, finish the budget.
  {
    qnn::FidelityLoss loss = make_unitary_loss();
    qnn::Trainer trainer(loss, base_config());
    const auto outcome = ckpt::resume_or_start(env, "cp", trainer);
    ASSERT_TRUE(outcome.has_value());
    EXPECT_EQ(outcome->step, 15u);  // last multiple of 5 before 17
    EXPECT_EQ(trainer.step(), 15u);

    Checkpointer ck(env, "cp", policy);
    trainer.run(kTotalSteps - trainer.step(),
                ckpt::checkpointing_callback(trainer, ck));
    ck.flush();

    EXPECT_EQ(trainer.step(), kTotalSteps);
    EXPECT_EQ(param_vec(trainer), param_vec(reference));
    EXPECT_EQ(trainer.loss_history(), reference.loss_history());
  }
}

INSTANTIATE_TEST_SUITE_P(
    StrategyCodecGrid, EndToEndResume,
    ::testing::Values(
        E2ECase{Strategy::kParamsOnly, codec::CodecId::kRaw, false},
        E2ECase{Strategy::kParamsOnly, codec::CodecId::kLz, false},
        E2ECase{Strategy::kFullState, codec::CodecId::kLz, false},
        E2ECase{Strategy::kFullState, codec::CodecId::kDeltaRle, false},
        E2ECase{Strategy::kIncremental, codec::CodecId::kRle, false},
        E2ECase{Strategy::kIncremental, codec::CodecId::kLz, false},
        E2ECase{Strategy::kParamsOnly, codec::CodecId::kLz, true},
        E2ECase{Strategy::kIncremental, codec::CodecId::kLz, true}),
    [](const auto& info) {
      std::string n = ckpt::strategy_name(info.param.strategy) + "_" +
                      codec::codec_name(info.param.codec) +
                      (info.param.async ? "_async" : "_sync");
      for (char& c : n) {
        if (c == '-' || c == '+') {
          c = '_';
        }
      }
      return n;
    });

TEST(EndToEnd, RepeatedCrashesStillConverge) {
  // Crash after every few steps; resume each time; the job must still
  // finish with the exact same result as the uninterrupted run.
  constexpr std::uint64_t kTotalSteps = 20;
  qnn::FidelityLoss ref_loss = make_unitary_loss();
  qnn::Trainer reference(ref_loss, base_config());
  reference.run(kTotalSteps);

  io::MemEnv env;
  CheckpointPolicy policy;
  policy.every_steps = 2;
  policy.strategy = Strategy::kIncremental;
  policy.full_every = 3;

  int crashes = 0;
  while (true) {
    qnn::FidelityLoss loss = make_unitary_loss();
    qnn::Trainer trainer(loss, base_config());
    ckpt::resume_or_start(env, "cp", trainer);
    if (trainer.step() >= kTotalSteps) {
      EXPECT_EQ(param_vec(trainer), param_vec(reference));
      break;
    }
    Checkpointer ck(env, "cp", policy);
    const std::uint64_t crash_step =
        std::min<std::uint64_t>(trainer.step() + 3, kTotalSteps);
    try {
      trainer.run(kTotalSteps - trainer.step(),
                  fault::crash_at(crash_step,
                                  ckpt::checkpointing_callback(trainer, ck)));
      // Reached the end without crashing (crash_step == kTotalSteps).
      ck.checkpoint_now(trainer.capture());
    } catch (const fault::SimulatedCrash&) {
      ++crashes;
    }
    ASSERT_LT(crashes, 100) << "not making progress";
  }
  EXPECT_GT(crashes, 3);
}

TEST(EndToEnd, ColdStartWhenNoCheckpointExists) {
  io::MemEnv env;
  qnn::FidelityLoss loss = make_unitary_loss();
  qnn::Trainer trainer(loss, base_config());
  const auto outcome = ckpt::resume_or_start(env, "cp", trainer);
  EXPECT_FALSE(outcome.has_value());
  EXPECT_EQ(trainer.step(), 0u);
}

TEST(EndToEnd, VqeWorkloadWithNoiseAndShotsResumesBitExact) {
  // The hardest determinism case: RNG-consuming loss (trajectory noise)
  // with SPSA gradients (RNG-consuming estimator).
  auto make_loss = [] {
    qnn::ExpectationLoss::Options opt;
    opt.trajectories = 2;
    opt.noise.depolarizing_1q = 0.01;
    return qnn::ExpectationLoss(qnn::hardware_efficient(2, 1),
                                sim::transverse_field_ising(2, 1.0, 0.8),
                                opt);
  };
  qnn::TrainerConfig cfg = base_config();
  cfg.gradient.method = qnn::GradientMethod::kSpsa;

  qnn::ExpectationLoss ref_loss = make_loss();
  qnn::Trainer reference(ref_loss, cfg);
  reference.run(14);

  io::MemEnv env;
  CheckpointPolicy policy;
  policy.every_steps = 4;
  {
    qnn::ExpectationLoss loss = make_loss();
    qnn::Trainer trainer(loss, cfg);
    Checkpointer ck(env, "cp", policy);
    EXPECT_THROW(
        trainer.run(14, fault::crash_at(
                            9, ckpt::checkpointing_callback(trainer, ck))),
        fault::SimulatedCrash);
  }
  {
    qnn::ExpectationLoss loss = make_loss();
    qnn::Trainer trainer(loss, cfg);
    ASSERT_TRUE(ckpt::resume_or_start(env, "cp", trainer).has_value());
    EXPECT_EQ(trainer.step(), 8u);
    trainer.run(14 - trainer.step());
    EXPECT_EQ(param_vec(trainer), param_vec(reference));
    EXPECT_EQ(trainer.loss_history(), reference.loss_history());
  }
}

TEST(EndToEnd, PosixEnvRoundTrip) {
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() / "qnnckpt_e2e_posix").string();
  fs::remove_all(dir);
  io::PosixEnv env(/*durable=*/false);

  qnn::FidelityLoss loss = make_unitary_loss();
  qnn::Trainer trainer(loss, base_config());
  trainer.run(6);
  CheckpointPolicy policy;
  Checkpointer ck(env, dir, policy);
  ck.checkpoint_now(trainer.capture());

  qnn::FidelityLoss loss2 = make_unitary_loss();
  qnn::Trainer trainer2(loss2, base_config());
  const auto outcome = ckpt::resume_or_start(env, dir, trainer2);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(trainer2.capture(), trainer.capture());
  fs::remove_all(dir);
}

// ---------- fault matrix (T4 guarantees) ----------

TEST(FaultMatrix, NoCorruptCheckpointEverAccepted) {
  // Hammer a training+checkpointing pipeline with torn writes and bit
  // flips on a *non-atomic* writer; recovery must only ever hand back a
  // state that a checkpoint actually contained.
  io::MemEnv base;
  io::FaultSpec spec;
  spec.torn_write_prob = 0.35;
  spec.bit_flip_prob = 0.35;
  spec.fault_atomic_writes = true;  // naive-writer scenario
  io::FaultEnv env(base, spec, 99);

  CheckpointPolicy policy;
  policy.every_steps = 1;
  policy.retention.keep_last = 0;

  qnn::FidelityLoss loss = make_unitary_loss();
  qnn::Trainer trainer(loss, base_config());
  Checkpointer ck(env, "cp", policy);

  std::map<std::uint64_t, qnn::TrainingState> truth;
  for (int i = 0; i < 30; ++i) {
    trainer.step_once();
    const auto state = trainer.capture();
    truth[state.step] = state;
    try {
      ck.maybe_checkpoint(state);
    } catch (const io::WriteCrash&) {
      // writer died mid-checkpoint; training continues next loop
    }
  }

  const auto outcome = ckpt::recover_latest(env, "cp");
  if (outcome.has_value()) {
    ASSERT_TRUE(truth.contains(outcome->step));
    EXPECT_EQ(outcome->state, truth[outcome->step])
        << "recovery returned a state no checkpoint ever contained";
  }
  // With 30 attempts and per-write fault probability ~0.6, at least the
  // statistics should show injected faults.
  EXPECT_GT(env.faults_injected(), 0u);
}

TEST(FaultMatrix, AtomicWriterSurvivesTornWriteInjection) {
  // With the atomic write path (default), injected non-atomic faults do
  // not apply: every recovery must return the newest checkpoint.
  io::MemEnv base;
  io::FaultSpec spec;
  spec.torn_write_prob = 1.0;  // only hits write_file, not atomic installs
  io::FaultEnv env(base, spec, 100);

  CheckpointPolicy policy;
  policy.every_steps = 2;
  qnn::FidelityLoss loss = make_unitary_loss();
  qnn::Trainer trainer(loss, base_config());
  Checkpointer ck(env, "cp", policy);
  trainer.run(10, ckpt::checkpointing_callback(trainer, ck));
  const auto outcome = ckpt::recover_latest(env, "cp");
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->step, 10u);
}

// ---------- mid-circuit executor recovery (F4 code path) ----------

TEST(ExecutorRecovery, SnapshotBeatsRecomputeAndMatchesBitExact) {
  // Deep circuit; snapshot at 70%; restoring + finishing must equal a
  // from-scratch run while applying only 30% of the gates.
  const sim::Circuit circuit = qnn::random_circuit(8, 400, 2024);
  qnn::ResumableExecutor exec(circuit, {});
  const std::size_t snapshot_at = exec.total_ops() * 7 / 10;
  exec.advance(snapshot_at);
  const util::Bytes snap = exec.serialize();

  qnn::ResumableExecutor restored =
      qnn::ResumableExecutor::restore(circuit, snap);
  const std::size_t remaining = restored.total_ops() - restored.next_op();
  EXPECT_EQ(restored.advance(exec.total_ops()), remaining);
  EXPECT_LT(remaining, exec.total_ops() / 2);
  EXPECT_EQ(restored.state(), circuit.run({}));
}

}  // namespace
}  // namespace qnn

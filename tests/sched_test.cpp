// Tests for the scheduling layer: preemption processes, Young–Daly model,
// discrete-event queue simulator.
#include <gtest/gtest.h>

#include <cmath>

#include "fault/preemption.hpp"
#include "sched/queue_sim.hpp"
#include "sched/young_daly.hpp"
#include "util/stats.hpp"

namespace qnn::sched {
namespace {

// ---------- preemption processes ----------

TEST(Preemption, PoissonMeanMatchesMtbf) {
  util::Rng rng(1);
  fault::PoissonPreemption p(120.0);
  util::RunningStats stats;
  for (int i = 0; i < 50000; ++i) {
    stats.add(p.next_interval(rng));
  }
  EXPECT_NEAR(stats.mean(), 120.0, 2.5);
  EXPECT_EQ(p.mtbf(), 120.0);
}

TEST(Preemption, PoissonRejectsBadMtbf) {
  EXPECT_THROW(fault::PoissonPreemption(0.0), std::invalid_argument);
  EXPECT_THROW(fault::PoissonPreemption(-1.0), std::invalid_argument);
}

TEST(Preemption, DeterministicIsConstant) {
  util::Rng rng(2);
  fault::DeterministicPreemption p(60.0);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(p.next_interval(rng), 60.0);
  }
}

TEST(Preemption, TraceReplaysThenNeverFails) {
  util::Rng rng(3);
  fault::TracePreemption p({10.0, 20.0, 30.0});
  EXPECT_EQ(p.next_interval(rng), 10.0);
  EXPECT_EQ(p.next_interval(rng), 20.0);
  EXPECT_EQ(p.next_interval(rng), 30.0);
  EXPECT_TRUE(std::isinf(p.next_interval(rng)));
  EXPECT_NEAR(p.mtbf(), 20.0, 1e-12);
  p.rewind();
  EXPECT_EQ(p.next_interval(rng), 10.0);
}

TEST(Preemption, TraceRejectsNegative) {
  EXPECT_THROW(fault::TracePreemption({1.0, -2.0}), std::invalid_argument);
}

TEST(Preemption, NoPreemptionIsInfinite) {
  util::Rng rng(4);
  fault::NoPreemption p;
  EXPECT_TRUE(std::isinf(p.next_interval(rng)));
}

// ---------- Young–Daly ----------

TEST(YoungDaly, KnownValue) {
  // C=60s, M=24h: tau = sqrt(2*60*86400) = sqrt(10368000) ~ 3219.94s
  EXPECT_NEAR(young_interval(60.0, 86400.0), std::sqrt(10368000.0), 1e-9);
}

TEST(YoungDaly, DalyCloseToYoungForSmallCost) {
  const double y = young_interval(1.0, 10000.0);
  const double d = daly_interval(1.0, 10000.0);
  EXPECT_NEAR(d / y, 1.0, 0.02);
}

TEST(YoungDaly, DalyClampsWhenCostHuge) {
  EXPECT_EQ(daly_interval(100.0, 10.0), 10.0);
}

TEST(YoungDaly, SpacingStepsConvertsIntervalToSteps) {
  // C=2, M=100 -> tau = sqrt(400) = 20s; at 0.5s/step that is 40 steps.
  EXPECT_EQ(young_spacing_steps(2.0, 100.0, 0.5), 40u);
  // Never below one step.
  EXPECT_EQ(young_spacing_steps(2.0, 100.0, 1e9), 1u);
  // Unconfigured inputs disable spacing instead of throwing.
  EXPECT_EQ(young_spacing_steps(0.0, 100.0, 0.5), 0u);
  EXPECT_EQ(young_spacing_steps(2.0, 0.0, 0.5), 0u);
  EXPECT_EQ(young_spacing_steps(2.0, 100.0, 0.0), 0u);
}

TEST(YoungDaly, RejectsBadArguments) {
  EXPECT_THROW(young_interval(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(young_interval(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(expected_makespan(0.0, 1.0, 1.0, 0.0, 1.0),
               std::invalid_argument);
  EXPECT_THROW(expected_makespan(1.0, 1.0, -1.0, 0.0, 1.0),
               std::invalid_argument);
}

TEST(YoungDaly, MakespanApproachesWorkWhenFailuresRare) {
  // MTBF >> work: overhead only from checkpoints.
  const double t = expected_makespan(3600.0, 600.0, 1.0, 5.0, 1e9);
  EXPECT_NEAR(t, 3600.0 + 6.0, 0.1);  // 6 segments x 1s checkpoint
}

TEST(YoungDaly, OptimalIntervalBeatsNeighbours) {
  const double c = 5.0, m = 600.0, w = 7200.0, r = 10.0;
  const double tau = young_interval(c, m);
  const double at_opt = expected_makespan(w, tau, c, r, m);
  EXPECT_LT(at_opt, expected_makespan(w, tau / 4, c, r, m));
  EXPECT_LT(at_opt, expected_makespan(w, tau * 4, c, r, m));
}

TEST(YoungDaly, NoCheckpointDivergesAsMtbfShrinks) {
  const double w = 3600.0;
  const double slow = expected_makespan_no_checkpoint(w, 5.0, 10000.0);
  const double fast = expected_makespan_no_checkpoint(w, 5.0, 600.0);
  EXPECT_GT(fast, slow * 10.0);
}

TEST(YoungDaly, OverheadFractionPositive) {
  EXPECT_GT(overhead_fraction(3600.0, 300.0, 5.0, 5.0, 1800.0), 0.0);
}

// ---------- queue simulator ----------

TEST(QueueSim, NoFailuresNoCheckpointIsJustWork) {
  util::Rng rng(5);
  fault::NoPreemption never;
  JobSpec spec;
  spec.work_seconds = 100.0;
  const SimResult r = simulate_preemptible_job(spec, never, rng);
  EXPECT_TRUE(r.completed);
  EXPECT_DOUBLE_EQ(r.makespan, 100.0);
  EXPECT_EQ(r.preemptions, 0u);
  EXPECT_DOUBLE_EQ(r.wasted_seconds, 0.0);
}

TEST(QueueSim, CheckpointOverheadAccounted) {
  util::Rng rng(6);
  fault::NoPreemption never;
  JobSpec spec;
  spec.work_seconds = 100.0;
  spec.ckpt_interval = 10.0;
  spec.ckpt_cost = 1.0;
  const SimResult r = simulate_preemptible_job(spec, never, rng);
  EXPECT_TRUE(r.completed);
  // 9 checkpoints (completion needs no final one).
  EXPECT_EQ(r.checkpoints, 9u);
  EXPECT_DOUBLE_EQ(r.makespan, 109.0);
}

TEST(QueueSim, DeterministicPreemptionWithoutCheckpointNeverFinishes) {
  util::Rng rng(7);
  fault::DeterministicPreemption period(50.0);
  JobSpec spec;
  spec.work_seconds = 100.0;  // needs 100s but dies every 50s
  const SimResult r = simulate_preemptible_job(spec, period, rng, 10000.0);
  EXPECT_FALSE(r.completed);
  EXPECT_GT(r.preemptions, 100u);
  EXPECT_GT(r.wasted_seconds, 9000.0);
}

TEST(QueueSim, CheckpointingRescuesSameJob) {
  util::Rng rng(8);
  fault::DeterministicPreemption period(50.0);
  JobSpec spec;
  spec.work_seconds = 100.0;
  spec.ckpt_interval = 10.0;
  spec.ckpt_cost = 1.0;
  spec.recovery_cost = 2.0;
  const SimResult r = simulate_preemptible_job(spec, period, rng, 10000.0);
  EXPECT_TRUE(r.completed);
  EXPECT_GT(r.preemptions, 0u);
  EXPECT_LT(r.makespan, 400.0);
}

TEST(QueueSim, QueueWaitCounted) {
  util::Rng rng(9);
  fault::DeterministicPreemption period(30.0);
  JobSpec spec;
  spec.work_seconds = 50.0;
  spec.ckpt_interval = 5.0;
  spec.ckpt_cost = 0.5;
  spec.queue_wait_mean = 20.0;
  const SimResult r = simulate_preemptible_job(spec, period, rng, 1e6);
  EXPECT_TRUE(r.completed);
  EXPECT_GT(r.queue_seconds, 0.0);
  EXPECT_GT(r.makespan, r.useful_seconds + r.queue_seconds);
}

TEST(QueueSim, AccountingIdentityHolds) {
  util::Rng rng(10);
  fault::PoissonPreemption failures(80.0);
  JobSpec spec;
  spec.work_seconds = 200.0;
  spec.ckpt_interval = 15.0;
  spec.ckpt_cost = 1.5;
  spec.recovery_cost = 3.0;
  spec.queue_wait_mean = 10.0;
  for (int trial = 0; trial < 200; ++trial) {
    const SimResult r = simulate_preemptible_job(spec, failures, rng, 1e7);
    ASSERT_TRUE(r.completed);
    // makespan >= useful + surviving checkpoint cost + queueing.
    ASSERT_GE(r.makespan + 1e-9,
              r.useful_seconds + r.ckpt_seconds + r.queue_seconds);
  }
}

TEST(QueueSim, MeanMakespanMatchesDalyPrediction) {
  // The discrete-event simulator should land near Daly's closed form.
  const double w = 2000.0, c = 2.0, m = 300.0, r_cost = 4.0;
  const double tau = young_interval(c, m);
  util::Rng rng(11);
  fault::PoissonPreemption failures(m);
  JobSpec spec;
  spec.work_seconds = w;
  spec.ckpt_interval = tau;
  spec.ckpt_cost = c;
  spec.recovery_cost = r_cost;
  const double simulated = mean_makespan(spec, failures, rng, 400, 1e8);
  const double predicted = expected_makespan(w, tau, c, r_cost, m);
  EXPECT_NEAR(simulated / predicted, 1.0, 0.15);
}

TEST(QueueSim, ShorterMtbfIncreasesMakespan) {
  JobSpec spec;
  spec.work_seconds = 500.0;
  spec.ckpt_interval = 25.0;
  spec.ckpt_cost = 1.0;
  spec.recovery_cost = 2.0;
  util::Rng rng(12);
  fault::PoissonPreemption fast(100.0);
  fault::PoissonPreemption slow(10000.0);
  const double mk_fast = mean_makespan(spec, fast, rng, 200, 1e8);
  const double mk_slow = mean_makespan(spec, slow, rng, 200, 1e8);
  EXPECT_GT(mk_fast, mk_slow);
}

TEST(QueueSim, RejectsZeroWork) {
  util::Rng rng(13);
  fault::NoPreemption never;
  JobSpec spec;
  spec.work_seconds = 0.0;
  EXPECT_THROW(simulate_preemptible_job(spec, never, rng),
               std::invalid_argument);
  EXPECT_THROW(mean_makespan(spec, never, rng, 0), std::invalid_argument);
}

/// Property sweep: with checkpointing, expected makespan is bounded and
/// completion always reached for sane parameters.
class QueueSimMtbfSweep : public ::testing::TestWithParam<double> {};

TEST_P(QueueSimMtbfSweep, CompletesUnderCheckpointing) {
  const double mtbf = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(mtbf));
  fault::PoissonPreemption failures(mtbf);
  JobSpec spec;
  spec.work_seconds = 300.0;
  spec.ckpt_interval = std::max(1.0, young_interval(1.0, mtbf));
  spec.ckpt_cost = 1.0;
  spec.recovery_cost = 2.0;
  for (int i = 0; i < 20; ++i) {
    const SimResult r = simulate_preemptible_job(spec, failures, rng, 1e9);
    ASSERT_TRUE(r.completed) << "mtbf " << mtbf;
  }
}

INSTANTIATE_TEST_SUITE_P(MtbfGrid, QueueSimMtbfSweep,
                         ::testing::Values(20.0, 60.0, 180.0, 600.0, 3600.0));

}  // namespace
}  // namespace qnn::sched

// Tests for replicated storage (MirrorEnv) and cross-replica recovery.
#include <gtest/gtest.h>

#include "ckpt/checkpointer.hpp"
#include "ckpt/recovery.hpp"
#include "io/fault_env.hpp"
#include "io/mem_env.hpp"
#include "io/mirror_env.hpp"
#include "util/rng.hpp"

namespace qnn::io {
namespace {

Bytes bytes_of(const std::string& s) { return Bytes(s.begin(), s.end()); }

TEST(MirrorEnv, RejectsBadConstruction) {
  EXPECT_THROW(MirrorEnv({}), std::invalid_argument);
  MemEnv a;
  EXPECT_THROW(MirrorEnv({&a, nullptr}), std::invalid_argument);
}

TEST(MirrorEnv, WritesLandOnEveryReplica) {
  MemEnv a, b, c;
  MirrorEnv mirror({&a, &b, &c});
  mirror.write_file_atomic("d/f", bytes_of("payload"));
  for (MemEnv* replica : {&a, &b, &c}) {
    EXPECT_EQ(*replica->read_file("d/f"), bytes_of("payload"));
  }
  EXPECT_EQ(mirror.replica_count(), 3u);
  EXPECT_EQ(mirror.degraded_writes(), 0u);
}

TEST(MirrorEnv, ReadFallsThroughMissingReplicas) {
  MemEnv a, b;
  MirrorEnv mirror({&a, &b});
  mirror.write_file_atomic("f", bytes_of("x"));
  a.remove_file("f");  // replica 0 lost the file
  EXPECT_EQ(*mirror.read_file("f"), bytes_of("x"));
  EXPECT_TRUE(mirror.exists("f"));
  EXPECT_EQ(mirror.file_size("f").value(), 1u);
}

TEST(MirrorEnv, ReadReplicaTargetsOneCopy) {
  MemEnv a, b;
  MirrorEnv mirror({&a, &b});
  mirror.write_file_atomic("f", bytes_of("same"));
  b.flip_bit("f", 3);
  EXPECT_EQ(*mirror.read_replica(0, "f"), bytes_of("same"));
  EXPECT_NE(*mirror.read_replica(1, "f"), bytes_of("same"));
  EXPECT_THROW(mirror.read_replica(5, "f"), std::out_of_range);
}

TEST(MirrorEnv, ListDirIsUnionOfReplicas) {
  MemEnv a, b;
  MirrorEnv mirror({&a, &b});
  a.write_file_atomic("d/only_a", bytes_of("1"));
  b.write_file_atomic("d/only_b", bytes_of("2"));
  mirror.write_file_atomic("d/both", bytes_of("3"));
  EXPECT_EQ(mirror.list_dir("d"),
            (std::vector<std::string>{"both", "only_a", "only_b"}));
}

TEST(MirrorEnv, MinorityWriteFailureToleratedAndCounted) {
  MemEnv a, base_b;
  FaultSpec always_crash;
  always_crash.torn_write_prob = 1.0;
  always_crash.crash_prob = 1.0;
  always_crash.fault_atomic_writes = true;
  FaultEnv b(base_b, always_crash, 1);
  MirrorEnv mirror({&a, &b});
  mirror.write_file_atomic("f", bytes_of("ok"));
  EXPECT_EQ(*a.read_file("f"), bytes_of("ok"));
  EXPECT_EQ(mirror.degraded_writes(), 1u);
}

TEST(MirrorEnv, AllReplicasFailingThrows) {
  MemEnv base_a, base_b;
  FaultSpec always_crash;
  always_crash.torn_write_prob = 1.0;
  always_crash.crash_prob = 1.0;
  always_crash.fault_atomic_writes = true;
  FaultEnv a(base_a, always_crash, 1);
  FaultEnv b(base_b, always_crash, 2);
  MirrorEnv mirror({&a, &b});
  EXPECT_THROW(mirror.write_file_atomic("f", bytes_of("x")),
               std::runtime_error);
}

// ---------- cross-replica checkpoint recovery ----------

qnn::TrainingState state_at(std::uint64_t step) {
  qnn::TrainingState s;
  s.step = step;
  s.params = {0.5, -0.5};
  s.optimizer_name = "adam";
  s.optimizer_state = {9, 9, 9};
  s.rng_state = util::Rng(step).serialize();
  s.loss_history = {1.0};
  s.permutation = {0};
  s.workload_tag = "vqe";
  return s;
}

TEST(MirrorRecovery, SurvivesCorruptionOfOneReplica) {
  MemEnv a, b;
  MirrorEnv mirror({&a, &b});
  ckpt::CheckpointPolicy policy;
  policy.every_steps = 1;
  policy.retention.keep_last = 0;
  ckpt::Checkpointer ck(mirror, "cp", policy);
  for (std::uint64_t step = 1; step <= 3; ++step) {
    ck.maybe_checkpoint(state_at(step));
  }
  // Corrupt EVERY checkpoint on replica 0; replica 1 stays intact.
  for (std::uint64_t id = 1; id <= 3; ++id) {
    a.flip_bit("cp/" + ckpt::checkpoint_file_name(id), id * 37);
  }
  const auto outcome = ckpt::recover_latest_any({&a, &b}, "cp");
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->step, 3u);
  EXPECT_EQ(outcome->state, state_at(3));
}

TEST(MirrorRecovery, PicksTheFreshestReplica) {
  // Replica 1 missed the last checkpoint (degraded write window).
  MemEnv a, b;
  {
    MirrorEnv mirror({&a, &b});
    ckpt::CheckpointPolicy policy;
    policy.every_steps = 1;
    policy.retention.keep_last = 0;
    ckpt::Checkpointer ck(mirror, "cp", policy);
    ck.maybe_checkpoint(state_at(1));
    ck.maybe_checkpoint(state_at(2));
  }
  b.remove_file("cp/" + ckpt::checkpoint_file_name(2));
  const auto outcome = ckpt::recover_latest_any({&b, &a}, "cp");
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->step, 2u);  // replica a is ahead, wins despite order
}

TEST(MirrorRecovery, NulloptWhenEveryReplicaUnusable) {
  MemEnv a, b;
  EXPECT_FALSE(ckpt::recover_latest_any({&a, &b}, "cp").has_value());
}

}  // namespace
}  // namespace qnn::io

// Unit tests for qnn::io — the handle-based Env contract across EVERY
// implementation (Posix, Mem, Fault, CrashSchedule, Mirror, Prefix,
// Tiered, Shaped), plus the fault/crash decorators' own semantics.
#include <gtest/gtest.h>

#include <filesystem>

#include "io/env.hpp"
#include "io/fault_env.hpp"
#include "io/mem_env.hpp"
#include "io/mirror_env.hpp"
#include "io/prefix_env.hpp"
#include "obs/metrics.hpp"
#include "obs/observed_env.hpp"
#include "tier/shaped_env.hpp"
#include "tier/tiered_env.hpp"

namespace qnn::io {
namespace {

namespace fs = std::filesystem;

Bytes bytes_of(const std::string& s) {
  return Bytes(s.begin(), s.end());
}

/// Shared conformance suite run against every Env implementation: the
/// decorators are instantiated in pass-through configurations (no
/// faults armed, no crash scheduled, a free device model) so the
/// CONTRACT — streamed write -> pread roundtrip, atomic visibility,
/// byte accounting on ranged ops — is what varies, not the behavior.
class EnvConformanceTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    const std::string& kind = GetParam();
    if (kind == "posix") {
      root_ = (fs::temp_directory_path() /
               ("qnnckpt_io_test_" + std::to_string(::getpid())))
                  .string();
      fs::remove_all(root_);
      posix_ = std::make_unique<PosixEnv>(/*durable=*/false);
      env_ = posix_.get();
      return;
    }
    root_ = "mem";
    mem_ = std::make_unique<MemEnv>();
    if (kind == "mem") {
      env_ = mem_.get();
    } else if (kind == "fault") {
      fault_ = std::make_unique<FaultEnv>(*mem_, FaultSpec{});
      env_ = fault_.get();
    } else if (kind == "crash") {
      crash_ = std::make_unique<CrashScheduleEnv>(*mem_, CrashPlan{});
      env_ = crash_.get();
    } else if (kind == "mirror") {
      mem2_ = std::make_unique<MemEnv>();
      mirror_ = std::make_unique<MirrorEnv>(
          std::vector<Env*>{mem_.get(), mem2_.get()});
      env_ = mirror_.get();
    } else if (kind == "prefix") {
      prefix_ = std::make_unique<PrefixEnv>(*mem_, "mnt");
      env_ = prefix_.get();
    } else if (kind == "tiered") {
      hot_mount_ = std::make_unique<PrefixEnv>(*mem_, "hot");
      cold_mount_ = std::make_unique<PrefixEnv>(*mem_, "cold");
      tiered_ = std::make_unique<tier::TieredEnv>(*hot_mount_, *cold_mount_);
      env_ = tiered_.get();
    } else if (kind == "shaped") {
      shaped_ = std::make_unique<tier::ShapedEnv>(*mem_, tier::ShapeSpec{});
      env_ = shaped_.get();
    } else if (kind == "observed") {
      registry_ = std::make_unique<obs::MetricsRegistry>();
      observed_ = std::make_unique<obs::ObservedEnv>(*mem_, *registry_);
      env_ = observed_.get();
    } else {
      FAIL() << "unknown env kind " << kind;
    }
  }

  void TearDown() override {
    if (GetParam() == "posix") {
      fs::remove_all(root_);
    }
  }

  std::string path(const std::string& name) const { return root_ + "/" + name; }

  std::string root_;
  Env* env_ = nullptr;
  std::unique_ptr<PosixEnv> posix_;
  std::unique_ptr<MemEnv> mem_;
  std::unique_ptr<MemEnv> mem2_;
  std::unique_ptr<FaultEnv> fault_;
  std::unique_ptr<CrashScheduleEnv> crash_;
  std::unique_ptr<MirrorEnv> mirror_;
  std::unique_ptr<PrefixEnv> prefix_;
  std::unique_ptr<PrefixEnv> hot_mount_;
  std::unique_ptr<PrefixEnv> cold_mount_;
  std::unique_ptr<tier::TieredEnv> tiered_;
  std::unique_ptr<tier::ShapedEnv> shaped_;
  std::unique_ptr<obs::MetricsRegistry> registry_;
  std::unique_ptr<obs::ObservedEnv> observed_;
};

TEST_P(EnvConformanceTest, ReadMissingReturnsNullopt) {
  EXPECT_FALSE(env_->read_file(path("nope")).has_value());
  EXPECT_FALSE(env_->exists(path("nope")));
  EXPECT_FALSE(env_->file_size(path("nope")).has_value());
}

TEST_P(EnvConformanceTest, AtomicWriteThenRead) {
  env_->write_file_atomic(path("a.bin"), bytes_of("hello"));
  const auto back = env_->read_file(path("a.bin"));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, bytes_of("hello"));
  EXPECT_TRUE(env_->exists(path("a.bin")));
  EXPECT_EQ(env_->file_size(path("a.bin")).value(), 5u);
}

TEST_P(EnvConformanceTest, AtomicWriteOverwrites) {
  env_->write_file_atomic(path("a"), bytes_of("first"));
  env_->write_file_atomic(path("a"), bytes_of("second!"));
  EXPECT_EQ(*env_->read_file(path("a")), bytes_of("second!"));
}

TEST_P(EnvConformanceTest, PlainWriteWorks) {
  env_->write_file(path("b"), bytes_of("plain"));
  EXPECT_EQ(*env_->read_file(path("b")), bytes_of("plain"));
}

TEST_P(EnvConformanceTest, EmptyFile) {
  env_->write_file_atomic(path("empty"), {});
  const auto back = env_->read_file(path("empty"));
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->empty());
}

TEST_P(EnvConformanceTest, RemoveFile) {
  env_->write_file_atomic(path("gone"), bytes_of("x"));
  env_->remove_file(path("gone"));
  EXPECT_FALSE(env_->exists(path("gone")));
  env_->remove_file(path("gone"));  // idempotent
}

TEST_P(EnvConformanceTest, ListDirSortedFileNames) {
  env_->write_file_atomic(path("c.txt"), bytes_of("3"));
  env_->write_file_atomic(path("a.txt"), bytes_of("1"));
  env_->write_file_atomic(path("b.txt"), bytes_of("2"));
  EXPECT_EQ(env_->list_dir(root_),
            (std::vector<std::string>{"a.txt", "b.txt", "c.txt"}));
}

TEST_P(EnvConformanceTest, ListMissingDirIsEmpty) {
  EXPECT_TRUE(env_->list_dir(root_ + "/does-not-exist").empty());
}

TEST_P(EnvConformanceTest, BytesWrittenAccounting) {
  const auto before = env_->bytes_written();
  env_->write_file_atomic(path("x"), bytes_of("12345"));
  env_->write_file(path("y"), bytes_of("123"));
  EXPECT_EQ(env_->bytes_written() - before, 8u);
}

TEST_P(EnvConformanceTest, LargePayloadRoundTrip) {
  Bytes big(1 << 20);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i * 2654435761u >> 13);
  }
  env_->write_file_atomic(path("big"), big);
  EXPECT_EQ(*env_->read_file(path("big")), big);
}

// ---------- streaming handles ----------

TEST_P(EnvConformanceTest, StreamedWriteThenPreadRoundTrip) {
  auto out = env_->new_writable(path("s"), WriteMode::kAtomic);
  out->append(bytes_of("hello "));
  out->append(bytes_of("streamed "));
  out->append(bytes_of("world"));
  out->close();

  auto in = env_->open_ranged(path("s"));
  ASSERT_NE(in, nullptr);
  EXPECT_EQ(in->size(), 20u);
  EXPECT_EQ(in->pread(0, 20), bytes_of("hello streamed world"));
  EXPECT_EQ(in->pread(6, 8), bytes_of("streamed"));
  EXPECT_EQ(in->pread(15, 100), bytes_of("world"));  // short at EOF
  EXPECT_TRUE(in->pread(20, 4).empty());             // past EOF
}

TEST_P(EnvConformanceTest, AtomicStreamInvisibleUntilClose) {
  auto out = env_->new_writable(path("staged"), WriteMode::kAtomic);
  out->append(bytes_of("partial"));
  EXPECT_FALSE(env_->exists(path("staged")))
      << "atomic stream became visible before close";
  EXPECT_EQ(env_->open_ranged(path("staged")), nullptr);
  out->close();
  EXPECT_EQ(*env_->read_file(path("staged")), bytes_of("partial"));
}

TEST_P(EnvConformanceTest, AbortedAtomicStreamLeavesNothing) {
  {
    auto out = env_->new_writable(path("aborted"), WriteMode::kAtomic);
    out->append(bytes_of("doomed bytes"));
    // Destroyed without close(): the install must not happen.
  }
  EXPECT_FALSE(env_->exists(path("aborted")));
}

TEST_P(EnvConformanceTest, PlainStreamAppendsAndSyncs) {
  auto out = env_->new_writable(path("plain"), WriteMode::kPlain);
  out->append(bytes_of("a"));
  out->sync();
  out->append(bytes_of("bc"));
  out->close();
  EXPECT_EQ(*env_->read_file(path("plain")), bytes_of("abc"));
}

TEST_P(EnvConformanceTest, PlainStreamTruncatesPreviousContent) {
  env_->write_file_atomic(path("t"), bytes_of("old old old"));
  auto out = env_->new_writable(path("t"), WriteMode::kPlain);
  out->append(bytes_of("new"));
  out->close();
  EXPECT_EQ(*env_->read_file(path("t")), bytes_of("new"));
}

TEST_P(EnvConformanceTest, RangedReadSnapshotSurvivesAtomicOverwrite) {
  env_->write_file_atomic(path("snap"), bytes_of("first version"));
  auto in = env_->open_ranged(path("snap"));
  ASSERT_NE(in, nullptr);
  env_->write_file_atomic(path("snap"), bytes_of("second"));
  // POSIX open-file / snapshot semantics: the open handle still serves
  // the bytes it was opened on — an overwrite never tears a reader.
  EXPECT_EQ(in->pread(0, 5), bytes_of("first"));
  EXPECT_EQ(*env_->read_file(path("snap")), bytes_of("second"));
}

TEST_P(EnvConformanceTest, BytesReadCountsOnlyRangesReturned) {
  Bytes big(4096);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i);
  }
  env_->write_file_atomic(path("ranged"), big);
  const std::uint64_t before = env_->bytes_read();
  auto in = env_->open_ranged(path("ranged"));
  ASSERT_NE(in, nullptr);
  (void)in->pread(0, 100);
  (void)in->pread(1000, 28);
  (void)in->pread(4090, 100);  // returns 6
  EXPECT_EQ(env_->bytes_read() - before, 100u + 28u + 6u)
      << "ranged reads must charge exactly the ranges they return";
}

TEST_P(EnvConformanceTest, BytesWrittenCountsStreamedAppends) {
  const std::uint64_t before = env_->bytes_written();
  auto out = env_->new_writable(path("w"), WriteMode::kAtomic);
  out->append(bytes_of("12345"));
  out->append(bytes_of("678"));
  out->close();
  EXPECT_EQ(env_->bytes_written() - before, 8u);
}

INSTANTIATE_TEST_SUITE_P(AllEnvs, EnvConformanceTest,
                         ::testing::Values("posix", "mem", "fault", "crash",
                                           "mirror", "prefix", "tiered",
                                           "shaped", "observed"),
                         [](const auto& info) { return info.param; });

// ---------- PosixEnv specifics ----------

TEST(PosixEnv, NoTmpFileLeftBehindAfterAtomicWrite) {
  const std::string root =
      (fs::temp_directory_path() / "qnnckpt_posix_tmp").string();
  fs::remove_all(root);
  PosixEnv env(false);
  env.write_file_atomic(root + "/f.bin", bytes_of("payload"));
  EXPECT_EQ(env.list_dir(root), std::vector<std::string>{"f.bin"});
  fs::remove_all(root);
}

TEST(PosixEnv, CreatesNestedParentDirectories) {
  const std::string root =
      (fs::temp_directory_path() / "qnnckpt_posix_nested").string();
  fs::remove_all(root);
  PosixEnv env(false);
  env.write_file_atomic(root + "/a/b/c/deep.bin", bytes_of("d"));
  EXPECT_TRUE(env.exists(root + "/a/b/c/deep.bin"));
  fs::remove_all(root);
}

// ---------- MemEnv specifics ----------

TEST(MemEnv, FlipBitCorruptsExactlyOneBit) {
  MemEnv env;
  env.write_file_atomic("f", Bytes{0x00, 0x00});
  ASSERT_TRUE(env.flip_bit("f", 9));
  EXPECT_EQ(*env.read_file("f"), (Bytes{0x00, 0x02}));
  ASSERT_TRUE(env.flip_bit("f", 9));  // flips back
  EXPECT_EQ(*env.read_file("f"), (Bytes{0x00, 0x00}));
}

TEST(MemEnv, FlipBitOnMissingOrEmptyFails) {
  MemEnv env;
  EXPECT_FALSE(env.flip_bit("missing", 0));
  env.write_file_atomic("empty", {});
  EXPECT_FALSE(env.flip_bit("empty", 0));
}

TEST(MemEnv, TruncateShortens) {
  MemEnv env;
  env.write_file_atomic("f", bytes_of("0123456789"));
  ASSERT_TRUE(env.truncate("f", 4));
  EXPECT_EQ(*env.read_file("f"), bytes_of("0123"));
  ASSERT_TRUE(env.truncate("f", 100));  // no-op growth
  EXPECT_EQ(env.file_size("f").value(), 4u);
  EXPECT_FALSE(env.truncate("missing", 0));
}

TEST(MemEnv, ListDirDoesNotRecurse) {
  MemEnv env;
  env.write_file_atomic("dir/a", bytes_of("1"));
  env.write_file_atomic("dir/sub/b", bytes_of("2"));
  EXPECT_EQ(env.list_dir("dir"), std::vector<std::string>{"a"});
}

// ---------- FaultEnv ----------

TEST(FaultEnv, NoFaultsPassThrough) {
  MemEnv base;
  FaultEnv env(base, FaultSpec{});
  env.write_file("f", bytes_of("abc"));
  EXPECT_EQ(*env.read_file("f"), bytes_of("abc"));
  EXPECT_EQ(env.faults_injected(), 0u);
}

TEST(FaultEnv, TornWriteTruncates) {
  MemEnv base;
  FaultSpec spec;
  spec.torn_write_prob = 1.0;
  FaultEnv env(base, spec, /*seed=*/1);
  env.write_file("f", bytes_of("0123456789"));
  EXPECT_LT(env.file_size("f").value(), 10u);
  EXPECT_GE(env.faults_injected(), 1u);
}

TEST(FaultEnv, BitFlipKeepsLength) {
  MemEnv base;
  FaultSpec spec;
  spec.bit_flip_prob = 1.0;
  FaultEnv env(base, spec, 2);
  const Bytes payload(64, 0xAA);
  env.write_file("f", payload);
  const auto got = *env.read_file("f");
  ASSERT_EQ(got.size(), payload.size());
  int diff_bits = 0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    diff_bits += std::popcount(static_cast<unsigned>(got[i] ^ payload[i]));
  }
  EXPECT_EQ(diff_bits, 1);
}

TEST(FaultEnv, CrashThrowsAfterTornWrite) {
  MemEnv base;
  FaultSpec spec;
  spec.torn_write_prob = 1.0;
  spec.crash_prob = 1.0;
  FaultEnv env(base, spec, 3);
  EXPECT_THROW(env.write_file("f", bytes_of("payload")), WriteCrash);
  EXPECT_TRUE(env.exists("f"));  // partial file was left behind
}

TEST(FaultEnv, AtomicWritesProtectedByDefault) {
  MemEnv base;
  FaultSpec spec;
  spec.torn_write_prob = 1.0;
  FaultEnv env(base, spec, 4);
  env.write_file_atomic("f", bytes_of("0123456789"));
  EXPECT_EQ(env.file_size("f").value(), 10u);  // untouched
}

TEST(FaultEnv, FaultAtomicWritesFlagEnablesInjection) {
  MemEnv base;
  FaultSpec spec;
  spec.torn_write_prob = 1.0;
  spec.fault_atomic_writes = true;
  FaultEnv env(base, spec, 5);
  env.write_file_atomic("f", bytes_of("0123456789"));
  EXPECT_LT(env.file_size("f").value(), 10u);
}

TEST(FaultEnv, DeterministicGivenSeed) {
  MemEnv base1, base2;
  FaultSpec spec;
  spec.torn_write_prob = 0.5;
  spec.bit_flip_prob = 0.5;
  FaultEnv env1(base1, spec, 77), env2(base2, spec, 77);
  for (int i = 0; i < 20; ++i) {
    const std::string name = "f" + std::to_string(i);
    env1.write_file(name, Bytes(32, 0x11));
    env2.write_file(name, Bytes(32, 0x11));
    ASSERT_EQ(*base1.read_file(name), *base2.read_file(name)) << name;
  }
}

// ---------- deterministic crash schedules ----------

TEST(CrashScheduleEnv, NoPlanCountsOpsAndPassesThrough) {
  MemEnv base;
  CrashScheduleEnv env(base, CrashPlan{});
  env.write_file_atomic("a", bytes_of("one"));
  env.write_file("b", bytes_of("two"));
  env.remove_file("a");
  EXPECT_EQ(env.mutating_ops(), 3u);
  EXPECT_FALSE(env.crashed());
  EXPECT_FALSE(base.exists("a"));
  EXPECT_EQ(*base.read_file("b"), bytes_of("two"));
  // Reads are not mutating ops.
  env.read_file("b");
  env.list_dir("");
  EXPECT_EQ(env.mutating_ops(), 3u);
}

TEST(CrashScheduleEnv, AtomicWriteIsAllOrNothingAtCrash) {
  {
    MemEnv base;
    CrashScheduleEnv env(base, {.crash_at_op = 1, .durable_bytes = 2});
    EXPECT_THROW(env.write_file_atomic("f", bytes_of("payload")),
                 ScheduledCrash);
    EXPECT_FALSE(base.exists("f")) << "partial atomic write must not install";
  }
  {
    MemEnv base;
    CrashScheduleEnv env(base, {.crash_at_op = 1, .durable_bytes = kOpDurable});
    EXPECT_THROW(env.write_file_atomic("f", bytes_of("payload")),
                 ScheduledCrash);
    EXPECT_EQ(*base.read_file("f"), bytes_of("payload"));
  }
}

TEST(CrashScheduleEnv, PlainWriteTearsAtByteOffset) {
  MemEnv base;
  CrashScheduleEnv env(base, {.crash_at_op = 1, .durable_bytes = 3});
  EXPECT_THROW(env.write_file("f", bytes_of("payload")), ScheduledCrash);
  EXPECT_EQ(*base.read_file("f"), bytes_of("pay"));
}

TEST(CrashScheduleEnv, RemoveBeforeOrAfterEffect) {
  {
    MemEnv base;
    base.write_file("f", bytes_of("x"));
    CrashScheduleEnv env(base, {.crash_at_op = 1, .durable_bytes = 0});
    EXPECT_THROW(env.remove_file("f"), ScheduledCrash);
    EXPECT_TRUE(base.exists("f"));
  }
  {
    MemEnv base;
    base.write_file("f", bytes_of("x"));
    CrashScheduleEnv env(base, {.crash_at_op = 1, .durable_bytes = 1});
    EXPECT_THROW(env.remove_file("f"), ScheduledCrash);
    EXPECT_FALSE(base.exists("f"));
  }
}

TEST(CrashScheduleEnv, DeadAfterCrashEvenForReads) {
  MemEnv base;
  CrashScheduleEnv env(base, {.crash_at_op = 2, .durable_bytes = 0});
  env.write_file("a", bytes_of("1"));
  EXPECT_THROW(env.write_file("b", bytes_of("2")), ScheduledCrash);
  EXPECT_TRUE(env.crashed());
  EXPECT_THROW(env.read_file("a"), ScheduledCrash);
  EXPECT_THROW(env.write_file("c", bytes_of("3")), ScheduledCrash);
  EXPECT_THROW(env.list_dir(""), ScheduledCrash);
}

TEST(CrashScheduleEnv, PlainStreamAppendsAreMutatingOps) {
  MemEnv base;
  CrashScheduleEnv env(base, CrashPlan{});
  auto plain = env.new_writable("log", WriteMode::kPlain);
  plain->append(bytes_of("a"));
  plain->append(bytes_of("b"));
  plain->append(bytes_of("c"));
  plain->close();
  EXPECT_EQ(env.mutating_ops(), 3u) << "each plain append is one op";
  // An atomic stream mutates once — at the install (close).
  auto atomic = env.new_writable("blob", WriteMode::kAtomic);
  atomic->append(bytes_of("xx"));
  atomic->append(bytes_of("yy"));
  atomic->close();
  EXPECT_EQ(env.mutating_ops(), 4u) << "atomic staging appends never mutate";
}

TEST(CrashScheduleEnv, TornAppendKeepsPriorAppendsPlusPrefix) {
  MemEnv base;
  CrashScheduleEnv env(base, {.crash_at_op = 2, .durable_bytes = 2});
  auto out = env.new_writable("log", WriteMode::kPlain);
  out->append(bytes_of("aaaa"));  // op 1: durable in full
  EXPECT_THROW(out->append(bytes_of("bbbb")), ScheduledCrash);  // op 2: torn
  EXPECT_EQ(*base.read_file("log"), bytes_of("aaaabb"))
      << "the tear lands at an arbitrary byte offset WITHIN the append";
  // The process is dead: the open handle refuses everything after.
  EXPECT_THROW(out->append(bytes_of("cccc")), ScheduledCrash);
  EXPECT_THROW(out->close(), ScheduledCrash);
}

TEST(CrashScheduleEnv, TornAppendAtBoundaryLeavesWholeAppendsOnly) {
  MemEnv base;
  CrashScheduleEnv env(base, {.crash_at_op = 3, .durable_bytes = 0});
  auto out = env.new_writable("log", WriteMode::kPlain);
  out->append(bytes_of("1111"));
  out->append(bytes_of("2222"));
  EXPECT_THROW(out->append(bytes_of("3333")), ScheduledCrash);
  EXPECT_EQ(*base.read_file("log"), bytes_of("11112222"))
      << "durable_bytes = 0 tears exactly at the previous append boundary";
}

TEST(CrashScheduleEnv, ZeroByteAppendTicksAsMutatingOp) {
  MemEnv base;
  CrashScheduleEnv env(base, CrashPlan{});
  auto out = env.new_writable("log", WriteMode::kPlain);
  out->append(Bytes{});
  EXPECT_EQ(env.mutating_ops(), 1u)
      << "an empty append is still a device op the schedule must count";
  out->append(bytes_of("aa"));
  out->append(Bytes{});
  out->close();
  EXPECT_EQ(env.mutating_ops(), 3u);
  EXPECT_EQ(*base.read_file("log"), bytes_of("aa"));
}

TEST(CrashScheduleEnv, CrashOnZeroByteAppendLeavesPriorBytesExactly) {
  MemEnv base;
  CrashScheduleEnv env(base, {.crash_at_op = 2, .durable_bytes = 3});
  auto out = env.new_writable("log", WriteMode::kPlain);
  out->append(bytes_of("aaaa"));
  // durable_bytes exceeds the append's size; the on-disk result is
  // still well-defined — nothing of a zero-byte append can land.
  EXPECT_THROW(out->append(Bytes{}), ScheduledCrash);
  EXPECT_EQ(*base.read_file("log"), bytes_of("aaaa"));
}

TEST(CrashScheduleEnv, FirstAppendTornAtOffsetZeroLeavesEmptyFile) {
  MemEnv base;
  CrashScheduleEnv env(base, {.crash_at_op = 1, .durable_bytes = 0});
  auto out = env.new_writable("log", WriteMode::kPlain);
  EXPECT_THROW(out->append(bytes_of("aaaa")), ScheduledCrash);
  ASSERT_TRUE(base.exists("log"))
      << "kPlain publishes the (empty) file at open, before any append";
  EXPECT_EQ(base.read_file("log")->size(), 0u);
}

TEST(CrashScheduleEnv, AtomicStreamAllOrNothingAtClose) {
  {
    MemEnv base;
    CrashScheduleEnv env(base, {.crash_at_op = 1, .durable_bytes = 3});
    auto out = env.new_writable("f", WriteMode::kAtomic);
    out->append(bytes_of("pay"));
    out->append(bytes_of("load"));
    EXPECT_THROW(out->close(), ScheduledCrash);
    EXPECT_FALSE(base.exists("f"))
        << "a partially-durable atomic stream must not install";
  }
  {
    MemEnv base;
    CrashScheduleEnv env(base, {.crash_at_op = 1, .durable_bytes = kOpDurable});
    auto out = env.new_writable("f", WriteMode::kAtomic);
    out->append(bytes_of("pay"));
    out->append(bytes_of("load"));
    EXPECT_THROW(out->close(), ScheduledCrash);
    EXPECT_EQ(*base.read_file("f"), bytes_of("payload"));
  }
}

TEST(CrashScheduleEnv, OpenHandleReadsDieWithTheProcess) {
  MemEnv base;
  base.write_file("f", bytes_of("content"));
  CrashScheduleEnv env(base, {.crash_at_op = 1, .durable_bytes = 0});
  auto in = env.open_ranged("f");
  ASSERT_NE(in, nullptr);
  EXPECT_EQ(in->pread(0, 3), bytes_of("con"));
  EXPECT_THROW(env.write_file("g", bytes_of("x")), ScheduledCrash);
  EXPECT_THROW(in->pread(0, 3), ScheduledCrash)
      << "a dead process performs no further I/O, open handles included";
}

TEST(CrashScheduleEnv, EnumeratedTornAppendSchedulesCoverEveryBoundary) {
  // A mini streamed-log scenario: every (append K, byte offset B) crash
  // point must leave a file that is a prefix of the full stream and at
  // least as long as the appends completed before the crash.
  const Bytes full = bytes_of("aaaabbbbcccc");
  std::uint64_t torn_midpoints = 0;
  const auto result = enumerate_crash_schedules(
      [] { return std::make_unique<MemEnv>(); },
      [](CrashScheduleEnv& env) {
        auto out = env.new_writable("log", WriteMode::kPlain);
        out->append(bytes_of("aaaa"));
        out->append(bytes_of("bbbb"));
        out->append(bytes_of("cccc"));
        out->close();
      },
      [&](Env& base, const CrashPlan& plan) {
        const auto data = base.read_file("log");
        const Bytes got = data.value_or(Bytes{});
        ASSERT_LE(got.size(), full.size());
        EXPECT_TRUE(std::equal(got.begin(), got.end(), full.begin()))
            << "torn stream must be a prefix, op " << plan.crash_at_op;
        if (plan.crash_at_op > 0) {
          EXPECT_GE(got.size(), (plan.crash_at_op - 1) * 4)
              << "appends before the crash op are durable";
        }
        if (got.size() % 4 == 2) {
          ++torn_midpoints;  // a tear INSIDE an append actually happened
        }
      },
      /*stride=*/1, /*durable_offsets=*/{0, 2, kOpDurable});
  EXPECT_EQ(result.total_ops, 3u);
  EXPECT_EQ(result.points_run, 9u);  // 3 appends x 3 offsets
  EXPECT_EQ(torn_midpoints, 3u);
}

TEST(CrashScheduleEnv, EnumeratorVisitsEveryOpTimesEveryOffset) {
  std::uint64_t verified = 0;
  const auto result = enumerate_crash_schedules(
      [] { return std::make_unique<MemEnv>(); },
      [](CrashScheduleEnv& env) {
        env.write_file_atomic("a", bytes_of("aa"));
        env.write_file_atomic("b", bytes_of("bb"));
        env.remove_file("a");
      },
      [&verified](Env& base, const CrashPlan& plan) {
        ++verified;
        // Regardless of the crash point, "b exists implies it is intact".
        if (base.exists("b")) {
          EXPECT_EQ(*base.read_file("b"), bytes_of("bb")) << plan.crash_at_op;
        }
      },
      /*stride=*/1, /*durable_offsets=*/{0, kOpDurable});
  EXPECT_EQ(result.total_ops, 3u);
  EXPECT_EQ(result.points_run, 6u);  // 3 ops x 2 offsets
  EXPECT_EQ(verified, 7u);           // + the probe run
}

}  // namespace
}  // namespace qnn::io

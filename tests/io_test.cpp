// Unit tests for qnn::io — PosixEnv, MemEnv, FaultEnv.
#include <gtest/gtest.h>

#include <filesystem>

#include "io/env.hpp"
#include "io/fault_env.hpp"
#include "io/mem_env.hpp"

namespace qnn::io {
namespace {

namespace fs = std::filesystem;

Bytes bytes_of(const std::string& s) {
  return Bytes(s.begin(), s.end());
}

/// Shared conformance suite run against every Env implementation.
class EnvConformanceTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    if (GetParam() == "posix") {
      root_ = (fs::temp_directory_path() /
               ("qnnckpt_io_test_" + std::to_string(::getpid())))
                  .string();
      fs::remove_all(root_);
      env_ = std::make_unique<PosixEnv>(/*durable=*/false);
    } else {
      root_ = "mem";
      env_ = std::make_unique<MemEnv>();
    }
  }

  void TearDown() override {
    if (GetParam() == "posix") {
      fs::remove_all(root_);
    }
  }

  std::string path(const std::string& name) const { return root_ + "/" + name; }

  std::string root_;
  std::unique_ptr<Env> env_;
};

TEST_P(EnvConformanceTest, ReadMissingReturnsNullopt) {
  EXPECT_FALSE(env_->read_file(path("nope")).has_value());
  EXPECT_FALSE(env_->exists(path("nope")));
  EXPECT_FALSE(env_->file_size(path("nope")).has_value());
}

TEST_P(EnvConformanceTest, AtomicWriteThenRead) {
  env_->write_file_atomic(path("a.bin"), bytes_of("hello"));
  const auto back = env_->read_file(path("a.bin"));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, bytes_of("hello"));
  EXPECT_TRUE(env_->exists(path("a.bin")));
  EXPECT_EQ(env_->file_size(path("a.bin")).value(), 5u);
}

TEST_P(EnvConformanceTest, AtomicWriteOverwrites) {
  env_->write_file_atomic(path("a"), bytes_of("first"));
  env_->write_file_atomic(path("a"), bytes_of("second!"));
  EXPECT_EQ(*env_->read_file(path("a")), bytes_of("second!"));
}

TEST_P(EnvConformanceTest, PlainWriteWorks) {
  env_->write_file(path("b"), bytes_of("plain"));
  EXPECT_EQ(*env_->read_file(path("b")), bytes_of("plain"));
}

TEST_P(EnvConformanceTest, EmptyFile) {
  env_->write_file_atomic(path("empty"), {});
  const auto back = env_->read_file(path("empty"));
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->empty());
}

TEST_P(EnvConformanceTest, RemoveFile) {
  env_->write_file_atomic(path("gone"), bytes_of("x"));
  env_->remove_file(path("gone"));
  EXPECT_FALSE(env_->exists(path("gone")));
  env_->remove_file(path("gone"));  // idempotent
}

TEST_P(EnvConformanceTest, ListDirSortedFileNames) {
  env_->write_file_atomic(path("c.txt"), bytes_of("3"));
  env_->write_file_atomic(path("a.txt"), bytes_of("1"));
  env_->write_file_atomic(path("b.txt"), bytes_of("2"));
  EXPECT_EQ(env_->list_dir(root_),
            (std::vector<std::string>{"a.txt", "b.txt", "c.txt"}));
}

TEST_P(EnvConformanceTest, ListMissingDirIsEmpty) {
  EXPECT_TRUE(env_->list_dir(root_ + "/does-not-exist").empty());
}

TEST_P(EnvConformanceTest, BytesWrittenAccounting) {
  const auto before = env_->bytes_written();
  env_->write_file_atomic(path("x"), bytes_of("12345"));
  env_->write_file(path("y"), bytes_of("123"));
  EXPECT_EQ(env_->bytes_written() - before, 8u);
}

TEST_P(EnvConformanceTest, LargePayloadRoundTrip) {
  Bytes big(1 << 20);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i * 2654435761u >> 13);
  }
  env_->write_file_atomic(path("big"), big);
  EXPECT_EQ(*env_->read_file(path("big")), big);
}

INSTANTIATE_TEST_SUITE_P(AllEnvs, EnvConformanceTest,
                         ::testing::Values("posix", "mem"),
                         [](const auto& info) { return info.param; });

// ---------- PosixEnv specifics ----------

TEST(PosixEnv, NoTmpFileLeftBehindAfterAtomicWrite) {
  const std::string root =
      (fs::temp_directory_path() / "qnnckpt_posix_tmp").string();
  fs::remove_all(root);
  PosixEnv env(false);
  env.write_file_atomic(root + "/f.bin", bytes_of("payload"));
  EXPECT_EQ(env.list_dir(root), std::vector<std::string>{"f.bin"});
  fs::remove_all(root);
}

TEST(PosixEnv, CreatesNestedParentDirectories) {
  const std::string root =
      (fs::temp_directory_path() / "qnnckpt_posix_nested").string();
  fs::remove_all(root);
  PosixEnv env(false);
  env.write_file_atomic(root + "/a/b/c/deep.bin", bytes_of("d"));
  EXPECT_TRUE(env.exists(root + "/a/b/c/deep.bin"));
  fs::remove_all(root);
}

// ---------- MemEnv specifics ----------

TEST(MemEnv, FlipBitCorruptsExactlyOneBit) {
  MemEnv env;
  env.write_file_atomic("f", Bytes{0x00, 0x00});
  ASSERT_TRUE(env.flip_bit("f", 9));
  EXPECT_EQ(*env.read_file("f"), (Bytes{0x00, 0x02}));
  ASSERT_TRUE(env.flip_bit("f", 9));  // flips back
  EXPECT_EQ(*env.read_file("f"), (Bytes{0x00, 0x00}));
}

TEST(MemEnv, FlipBitOnMissingOrEmptyFails) {
  MemEnv env;
  EXPECT_FALSE(env.flip_bit("missing", 0));
  env.write_file_atomic("empty", {});
  EXPECT_FALSE(env.flip_bit("empty", 0));
}

TEST(MemEnv, TruncateShortens) {
  MemEnv env;
  env.write_file_atomic("f", bytes_of("0123456789"));
  ASSERT_TRUE(env.truncate("f", 4));
  EXPECT_EQ(*env.read_file("f"), bytes_of("0123"));
  ASSERT_TRUE(env.truncate("f", 100));  // no-op growth
  EXPECT_EQ(env.file_size("f").value(), 4u);
  EXPECT_FALSE(env.truncate("missing", 0));
}

TEST(MemEnv, ListDirDoesNotRecurse) {
  MemEnv env;
  env.write_file_atomic("dir/a", bytes_of("1"));
  env.write_file_atomic("dir/sub/b", bytes_of("2"));
  EXPECT_EQ(env.list_dir("dir"), std::vector<std::string>{"a"});
}

// ---------- FaultEnv ----------

TEST(FaultEnv, NoFaultsPassThrough) {
  MemEnv base;
  FaultEnv env(base, FaultSpec{});
  env.write_file("f", bytes_of("abc"));
  EXPECT_EQ(*env.read_file("f"), bytes_of("abc"));
  EXPECT_EQ(env.faults_injected(), 0u);
}

TEST(FaultEnv, TornWriteTruncates) {
  MemEnv base;
  FaultSpec spec;
  spec.torn_write_prob = 1.0;
  FaultEnv env(base, spec, /*seed=*/1);
  env.write_file("f", bytes_of("0123456789"));
  EXPECT_LT(env.file_size("f").value(), 10u);
  EXPECT_GE(env.faults_injected(), 1u);
}

TEST(FaultEnv, BitFlipKeepsLength) {
  MemEnv base;
  FaultSpec spec;
  spec.bit_flip_prob = 1.0;
  FaultEnv env(base, spec, 2);
  const Bytes payload(64, 0xAA);
  env.write_file("f", payload);
  const auto got = *env.read_file("f");
  ASSERT_EQ(got.size(), payload.size());
  int diff_bits = 0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    diff_bits += std::popcount(static_cast<unsigned>(got[i] ^ payload[i]));
  }
  EXPECT_EQ(diff_bits, 1);
}

TEST(FaultEnv, CrashThrowsAfterTornWrite) {
  MemEnv base;
  FaultSpec spec;
  spec.torn_write_prob = 1.0;
  spec.crash_prob = 1.0;
  FaultEnv env(base, spec, 3);
  EXPECT_THROW(env.write_file("f", bytes_of("payload")), WriteCrash);
  EXPECT_TRUE(env.exists("f"));  // partial file was left behind
}

TEST(FaultEnv, AtomicWritesProtectedByDefault) {
  MemEnv base;
  FaultSpec spec;
  spec.torn_write_prob = 1.0;
  FaultEnv env(base, spec, 4);
  env.write_file_atomic("f", bytes_of("0123456789"));
  EXPECT_EQ(env.file_size("f").value(), 10u);  // untouched
}

TEST(FaultEnv, FaultAtomicWritesFlagEnablesInjection) {
  MemEnv base;
  FaultSpec spec;
  spec.torn_write_prob = 1.0;
  spec.fault_atomic_writes = true;
  FaultEnv env(base, spec, 5);
  env.write_file_atomic("f", bytes_of("0123456789"));
  EXPECT_LT(env.file_size("f").value(), 10u);
}

TEST(FaultEnv, DeterministicGivenSeed) {
  MemEnv base1, base2;
  FaultSpec spec;
  spec.torn_write_prob = 0.5;
  spec.bit_flip_prob = 0.5;
  FaultEnv env1(base1, spec, 77), env2(base2, spec, 77);
  for (int i = 0; i < 20; ++i) {
    const std::string name = "f" + std::to_string(i);
    env1.write_file(name, Bytes(32, 0x11));
    env2.write_file(name, Bytes(32, 0x11));
    ASSERT_EQ(*base1.read_file(name), *base2.read_file(name)) << name;
  }
}

// ---------- deterministic crash schedules ----------

TEST(CrashScheduleEnv, NoPlanCountsOpsAndPassesThrough) {
  MemEnv base;
  CrashScheduleEnv env(base, CrashPlan{});
  env.write_file_atomic("a", bytes_of("one"));
  env.write_file("b", bytes_of("two"));
  env.remove_file("a");
  EXPECT_EQ(env.mutating_ops(), 3u);
  EXPECT_FALSE(env.crashed());
  EXPECT_FALSE(base.exists("a"));
  EXPECT_EQ(*base.read_file("b"), bytes_of("two"));
  // Reads are not mutating ops.
  env.read_file("b");
  env.list_dir("");
  EXPECT_EQ(env.mutating_ops(), 3u);
}

TEST(CrashScheduleEnv, AtomicWriteIsAllOrNothingAtCrash) {
  {
    MemEnv base;
    CrashScheduleEnv env(base, {.crash_at_op = 1, .durable_bytes = 2});
    EXPECT_THROW(env.write_file_atomic("f", bytes_of("payload")),
                 ScheduledCrash);
    EXPECT_FALSE(base.exists("f")) << "partial atomic write must not install";
  }
  {
    MemEnv base;
    CrashScheduleEnv env(base, {.crash_at_op = 1, .durable_bytes = kOpDurable});
    EXPECT_THROW(env.write_file_atomic("f", bytes_of("payload")),
                 ScheduledCrash);
    EXPECT_EQ(*base.read_file("f"), bytes_of("payload"));
  }
}

TEST(CrashScheduleEnv, PlainWriteTearsAtByteOffset) {
  MemEnv base;
  CrashScheduleEnv env(base, {.crash_at_op = 1, .durable_bytes = 3});
  EXPECT_THROW(env.write_file("f", bytes_of("payload")), ScheduledCrash);
  EXPECT_EQ(*base.read_file("f"), bytes_of("pay"));
}

TEST(CrashScheduleEnv, RemoveBeforeOrAfterEffect) {
  {
    MemEnv base;
    base.write_file("f", bytes_of("x"));
    CrashScheduleEnv env(base, {.crash_at_op = 1, .durable_bytes = 0});
    EXPECT_THROW(env.remove_file("f"), ScheduledCrash);
    EXPECT_TRUE(base.exists("f"));
  }
  {
    MemEnv base;
    base.write_file("f", bytes_of("x"));
    CrashScheduleEnv env(base, {.crash_at_op = 1, .durable_bytes = 1});
    EXPECT_THROW(env.remove_file("f"), ScheduledCrash);
    EXPECT_FALSE(base.exists("f"));
  }
}

TEST(CrashScheduleEnv, DeadAfterCrashEvenForReads) {
  MemEnv base;
  CrashScheduleEnv env(base, {.crash_at_op = 2, .durable_bytes = 0});
  env.write_file("a", bytes_of("1"));
  EXPECT_THROW(env.write_file("b", bytes_of("2")), ScheduledCrash);
  EXPECT_TRUE(env.crashed());
  EXPECT_THROW(env.read_file("a"), ScheduledCrash);
  EXPECT_THROW(env.write_file("c", bytes_of("3")), ScheduledCrash);
  EXPECT_THROW(env.list_dir(""), ScheduledCrash);
}

TEST(CrashScheduleEnv, EnumeratorVisitsEveryOpTimesEveryOffset) {
  std::uint64_t verified = 0;
  const auto result = enumerate_crash_schedules(
      [] { return std::make_unique<MemEnv>(); },
      [](CrashScheduleEnv& env) {
        env.write_file_atomic("a", bytes_of("aa"));
        env.write_file_atomic("b", bytes_of("bb"));
        env.remove_file("a");
      },
      [&verified](Env& base, const CrashPlan& plan) {
        ++verified;
        // Regardless of the crash point, "b exists implies it is intact".
        if (base.exists("b")) {
          EXPECT_EQ(*base.read_file("b"), bytes_of("bb")) << plan.crash_at_op;
        }
      },
      /*stride=*/1, /*durable_offsets=*/{0, kOpDurable});
  EXPECT_EQ(result.total_ops, 3u);
  EXPECT_EQ(result.points_run, 6u);  // 3 ops x 2 offsets
  EXPECT_EQ(verified, 7u);           // + the probe run
}

}  // namespace
}  // namespace qnn::io

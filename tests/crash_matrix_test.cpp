// Exhaustive crash-schedule matrix: a full train -> checkpoint -> GC ->
// resume scenario is replayed once per (env operation K, durable byte
// offset B) crash point, for full and incremental chains and a GC-heavy
// retention mix. After EVERY crash the durable directory must satisfy:
//
//   * every manifest entry resolves to the exact state it was built from
//     (the GC fence never leaves a dead or stranded entry);
//   * recovery returns a state at least as new as the last install that
//     completed before the crash — never more than one interval of work
//     is lost;
//   * whatever recovery returns matches a state the trainer actually
//     produced (no silent corruption).
//
// The enumeration is exhaustive (stride 1) by default; set
// QNNCKPT_CRASH_MATRIX_STRIDE=n to sample every n-th op when iterating
// locally.
#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <set>
#include <vector>

#include "ckpt/checkpointer.hpp"
#include "ckpt/recovery.hpp"
#include "ckpt/state_codec.hpp"
#include "ckpt/store.hpp"
#include "ckpt/wal.hpp"
#include "io/fault_env.hpp"
#include "io/mem_env.hpp"
#include "io/prefix_env.hpp"
#include "qnn/loss.hpp"
#include "tier/tiered_env.hpp"

namespace qnn::ckpt {
namespace {

std::uint64_t stride_from_env() {
  if (const char* s = std::getenv("QNNCKPT_CRASH_MATRIX_STRIDE")) {
    const auto v = std::strtoull(s, nullptr, 10);
    if (v > 0) {
      return v;
    }
  }
  return 1;
}

/// Deterministic ground truth: the state the trainer produced at `step`.
/// Regenerated in the verifier, so any silently-corrupt recovery shows up
/// as a mismatch against this. With `frozen_params > 0` the parameter
/// vector is that long and mostly step-independent (only the last 8
/// values move), so consecutive checkpoints share most content-addressed
/// chunks — the dedup-heavy regime.
qnn::TrainingState make_state(std::uint64_t step, std::size_t sim_qubits,
                              std::size_t frozen_params = 0) {
  qnn::TrainingState s;
  s.step = step;
  util::Rng rng(31 + step);
  if (frozen_params > 0) {
    s.params.resize(frozen_params);
    util::Rng frozen(7);
    for (double& p : s.params) {
      p = frozen.uniform(-3.0, 3.0);
    }
    for (std::size_t i = frozen_params - 8; i < frozen_params; ++i) {
      s.params[i] = rng.uniform(-3.0, 3.0);
    }
  } else {
    s.params.resize(16);
    for (double& p : s.params) {
      p = rng.uniform(-3.0, 3.0);
    }
  }
  s.optimizer_name = "adam";
  s.optimizer_state.resize(96);
  if (frozen_params > 0) {
    util::Rng opt_rng(8);  // step-independent: dedups fully
    for (auto& b : s.optimizer_state) {
      b = static_cast<std::uint8_t>(opt_rng());
    }
  } else {
    for (auto& b : s.optimizer_state) {
      b = static_cast<std::uint8_t>(rng());
    }
  }
  s.rng_state = rng.serialize();
  s.loss_history.assign(step, 0.125);
  s.epoch = step / 4;
  s.cursor = step % 4;
  s.permutation = {0, 1, 2};
  s.workload_tag = "vqe";
  if (sim_qubits > 0) {
    s.simulator_state = qnn::random_state(sim_qubits, 9).serialize();
  }
  return s;
}

struct ScenarioConfig {
  const char* name;
  CheckpointPolicy policy;
  std::size_t sim_qubits = 0;
  std::uint64_t phase1_steps = 8;
  std::uint64_t phase2_steps = 12;
  /// > 0: dedup-heavy states (see make_state) so checkpoints share
  /// content-addressed chunks and GC exercises the refcounted store.
  std::size_t frozen_params = 0;
  /// Run through a hot/cold TieredEnv (both tiers mounted on the one
  /// crash-scheduled env, so demotion copies, TIERMAP fences, source
  /// deletes and read-through promotions are all crash points too).
  bool tiered = false;
};

/// The scenario's storage stack over one physical env: flat, or two
/// PrefixEnv mounts ("hot/", "cold/") composed by a TieredEnv with
/// read-through promotion — the same composition for the crashing run
/// and for post-crash verification.
struct EnvView {
  io::Env* flat = nullptr;
  std::optional<io::PrefixEnv> hot;
  std::optional<io::PrefixEnv> cold;
  std::optional<tier::TieredEnv> tiered;

  EnvView(io::Env& base, bool use_tiers) {
    if (use_tiers) {
      hot.emplace(base, "hot");
      cold.emplace(base, "cold");
      tiered.emplace(*hot, *cold, /*promote_on_read=*/true,
                     tier::migratable_path);
    } else {
      flat = &base;
    }
  }
  io::Env& env() { return tiered ? static_cast<io::Env&>(*tiered) : *flat; }
};

/// train -> checkpoint (GC runs inside each install) -> resume -> train.
/// Appends the step of every install that COMPLETED to `installed`; in a
/// crash replay the scenario aborts at the crash op, so the vector holds
/// exactly the installs that were durable strictly before the crash.
void run_scenario(io::CrashScheduleEnv& env, const ScenarioConfig& cfg,
                  std::vector<std::uint64_t>& installed) {
  installed.clear();
  EnvView view(env, cfg.tiered);
  {
    Checkpointer ck(view.env(), "cp", cfg.policy);
    for (std::uint64_t step = 1; step <= cfg.phase1_steps; ++step) {
      if (ck.maybe_checkpoint(
              make_state(step, cfg.sim_qubits, cfg.frozen_params))) {
        installed.push_back(step);
      }
    }
  }
  // Resume after the (possibly crashed) first run: recover, then keep
  // training and checkpointing. The fresh Checkpointer also runs the
  // startup orphan sweep (and, tiered, the duplicate reconcile) — its
  // deletes are crash points too, as are the read-through promotions
  // the recovery itself performs.
  const auto outcome = recover_latest(view.env(), "cp");
  const std::uint64_t resume_step = outcome ? outcome->step : 0;
  {
    Checkpointer ck(view.env(), "cp", cfg.policy);
    for (std::uint64_t step = resume_step + 1; step <= cfg.phase2_steps;
         ++step) {
      if (ck.maybe_checkpoint(
              make_state(step, cfg.sim_qubits, cfg.frozen_params))) {
        installed.push_back(step);
      }
    }
  }
}

/// The post-crash contract, checked against the durable base env.
void verify_durable(io::Env& base, const io::CrashPlan& plan,
                    const ScenarioConfig& cfg,
                    const std::vector<std::uint64_t>& installed) {
  const std::string at = std::string(cfg.name) + " op " +
                         std::to_string(plan.crash_at_op) + " durable " +
                         std::to_string(plan.durable_bytes);
  EnvView view(base, cfg.tiered);
  io::Env& env = view.env();

  // Every advertised checkpoint resolves, exactly (tiered: from
  // whichever tier holds it — the migration discipline's core claim).
  const Manifest manifest = Manifest::load(env, "cp");
  for (const ManifestEntry& e : manifest.entries()) {
    qnn::TrainingState st;
    try {
      st = load_checkpoint(env, "cp", e.id);
    } catch (const std::exception& ex) {
      ADD_FAILURE() << at << ": manifest entry id " << e.id
                    << " does not resolve: " << ex.what();
      continue;
    }
    EXPECT_EQ(st, make_state(e.step, cfg.sim_qubits, cfg.frozen_params))
        << at << ": entry id " << e.id << " resolved to the wrong state";
  }

  // No more than the in-flight interval is lost, and nothing recovered
  // is silently corrupt.
  const std::uint64_t stable = installed.empty() ? 0 : installed.back();
  const auto outcome = recover_latest(env, "cp");
  if (stable > 0) {
    ASSERT_TRUE(outcome.has_value())
        << at << ": installs completed but nothing recovers";
    EXPECT_GE(outcome->step, stable)
        << at << ": recovery lost a completed install";
  }
  if (outcome) {
    EXPECT_EQ(outcome->state,
              make_state(outcome->step, cfg.sim_qubits, cfg.frozen_params))
        << at << ": recovered state never existed (silent corruption)";
  }

  // WAL epilogue: the journal must extend recovery, never regress it,
  // and must not leak across crashes.
  if (cfg.policy.wal.enable) {
    // When recovery resolved the manifest tip and the tip's journal
    // scans, recovery must have reached its last fully-framed record —
    // a torn tail may shorten the journal, never the replayed prefix.
    if (outcome && manifest.latest() != nullptr &&
        outcome->checkpoint_id == manifest.latest()->id) {
      if (const auto scan = scan_wal(env, "cp", manifest.latest()->id)) {
        if (scan->records > 0) {
          EXPECT_GE(outcome->step, scan->last_step)
              << at << ": recovery stopped short of the journal's last "
              << "fully-framed record";
        }
      }
    }
    // After the startup sweep, every surviving journal's epoch is an
    // advertised entry (no leaks) — a check the sweep only stands
    // behind when the manifest is trustworthy.
    if (manifest.parse_warnings() == 0) {
      CheckpointStore store(env, "cp", cfg.policy.retention);
      store.sweep_orphans(manifest);
      for (const std::string& name : env.list_dir("cp")) {
        if (const auto epoch = parse_wal_file_name(name)) {
          EXPECT_NE(manifest.find(*epoch), nullptr)
              << at << ": journal " << name << " leaked past the sweep";
        }
      }
    }
  }

  if (!cfg.tiered) {
    return;
  }
  // Tiered epilogue: a startup reconcile must collapse every duplicate
  // a crash mid-migration stranded — after it no object may exist in
  // both tiers (duplicated-and-leaked) and everything still resolves.
  CheckpointStore store(env, "cp", RetentionPolicy{}, cfg.policy.tier);
  ASSERT_NE(store.tiering(), nullptr);
  store.tiering()->reconcile();
  for (const std::string& dir : {std::string("cp"), std::string("cp/chunks")}) {
    const auto hot_names = view.hot->list_dir(dir);
    const std::set<std::string> cold_names = [&] {
      auto names = view.cold->list_dir(dir);
      return std::set<std::string>(names.begin(), names.end());
    }();
    for (const std::string& name : hot_names) {
      EXPECT_FALSE(cold_names.contains(name))
          << at << ": " << dir << "/" << name
          << " duplicated across tiers after reconcile";
    }
  }
  for (const ManifestEntry& e : manifest.entries()) {
    try {
      (void)load_checkpoint(env, "cp", e.id);
    } catch (const std::exception& ex) {
      ADD_FAILURE() << at << ": entry id " << e.id
                    << " lost by reconcile: " << ex.what();
    }
  }
}

io::CrashEnumeration run_matrix(const ScenarioConfig& cfg,
                                std::uint64_t stride) {
  std::vector<std::uint64_t> installed;
  return io::enumerate_crash_schedules(
      [] { return std::make_unique<io::MemEnv>(); },
      [&](io::CrashScheduleEnv& env) { run_scenario(env, cfg, installed); },
      [&](io::Env& base, const io::CrashPlan& plan) {
        verify_durable(base, plan, cfg, installed);
      },
      stride,
      // Byte offsets within the crashing op: nothing durable, a torn
      // 13-byte prefix, the whole op (crash just after the effect).
      {0, 13, io::kOpDurable});
}

ScenarioConfig full_config() {
  ScenarioConfig cfg{.name = "full"};
  cfg.policy.strategy = Strategy::kParamsOnly;
  cfg.policy.every_steps = 1;
  cfg.policy.retention.keep_last = 3;
  return cfg;
}

ScenarioConfig incremental_config() {
  ScenarioConfig cfg{.name = "incremental"};
  cfg.policy.strategy = Strategy::kIncremental;
  cfg.policy.every_steps = 1;
  cfg.policy.full_every = 3;
  cfg.policy.retention.keep_last = 2;
  cfg.sim_qubits = 2;
  return cfg;
}

ScenarioConfig gc_heavy_config() {
  // Spacing + byte budget makes nearly every install delete something, so
  // most crash points land inside the GC itself.
  ScenarioConfig cfg{.name = "gc-heavy"};
  cfg.policy.strategy = Strategy::kIncremental;
  cfg.policy.every_steps = 1;
  cfg.policy.full_every = 2;
  cfg.policy.retention.keep_last = 2;
  cfg.policy.retention.step_spacing = 4;
  cfg.policy.retention.byte_budget = 2048;  // ~2-3 small files: real evictions
  cfg.policy.retention.gc_batch = 2;  // more fences = more crash points
  return cfg;
}

TEST(CrashMatrix, EveryCrashPointRecoversFullChains) {
  const auto r = run_matrix(full_config(), stride_from_env());
  EXPECT_GT(r.total_ops, 0u);
  std::printf("crash matrix [full]: %llu ops, %llu crash points\n",
              static_cast<unsigned long long>(r.total_ops),
              static_cast<unsigned long long>(r.points_run));
}

TEST(CrashMatrix, EveryCrashPointRecoversIncrementalChains) {
  const auto r = run_matrix(incremental_config(), stride_from_env());
  EXPECT_GT(r.total_ops, 0u);
  std::printf("crash matrix [incremental]: %llu ops, %llu crash points\n",
              static_cast<unsigned long long>(r.total_ops),
              static_cast<unsigned long long>(r.points_run));
}

TEST(CrashMatrix, EveryCrashPointRecoversUnderGcPressure) {
  const auto r = run_matrix(gc_heavy_config(), stride_from_env());
  EXPECT_GT(r.total_ops, 0u);
  std::printf("crash matrix [gc-heavy]: %llu ops, %llu crash points\n",
              static_cast<unsigned long long>(r.total_ops),
              static_cast<unsigned long long>(r.points_run));
}

ScenarioConfig dedup_config() {
  // Content-addressed regime: big mostly-frozen params at a tiny chunk
  // size, so consecutive checkpoints share well over half their chunks,
  // packfiles are written every install, and the keep_last GC releases
  // chunk references (and deletes dead packfiles) constantly. The
  // invariant under every crash point is the usual one — every
  // advertised entry resolves exactly — which a lost shared chunk or a
  // double-freed packfile would break immediately.
  ScenarioConfig cfg{.name = "dedup"};
  cfg.policy.strategy = Strategy::kFullState;
  cfg.policy.every_steps = 1;
  cfg.policy.retention.keep_last = 2;
  cfg.policy.chunk_bytes = 64;
  cfg.policy.codec = codec::CodecId::kRaw;
  cfg.frozen_params = 96;
  return cfg;
}

TEST(CrashMatrix, EveryCrashPointRecoversWithSharedChunks) {
  const auto r = run_matrix(dedup_config(), stride_from_env());
  EXPECT_GT(r.total_ops, 0u);
  std::printf("crash matrix [dedup]: %llu ops, %llu crash points\n",
              static_cast<unsigned long long>(r.total_ops),
              static_cast<unsigned long long>(r.points_run));
}

ScenarioConfig tiered_config() {
  // Hot/cold placement under churn: a small hot byte budget forces a
  // demotion (cold copy + TIERMAP fence + hot delete) out of nearly
  // every install, retention GC deletes cold-resident victims, the
  // resume leg's recovery promotes read-through, and the startup
  // reconcile collapses whatever a crash stranded. Every one of those
  // physical ops — on either tier — is a crash point.
  ScenarioConfig cfg{.name = "tiered"};
  cfg.tiered = true;
  cfg.policy.strategy = Strategy::kFullState;
  cfg.policy.every_steps = 1;
  cfg.policy.retention.keep_last = 3;
  cfg.policy.chunk_bytes = 64;
  cfg.policy.codec = codec::CodecId::kRaw;
  cfg.frozen_params = 96;
  // Sized so the pinned newest chain (containers + self-indexing
  // packfiles, which carry a ~34 B/record key table) still fits while
  // everything older must demote.
  cfg.policy.tier.hot_byte_budget = 3072;
  cfg.policy.tier.pin_hot_last = 1;
  cfg.policy.tier.demote_batch = 2;  // more fences = more crash points
  cfg.phase1_steps = 5;
  cfg.phase2_steps = 8;
  return cfg;
}

TEST(CrashMatrix, EveryCrashPointRecoversAcrossTiers) {
  const auto r = run_matrix(tiered_config(), stride_from_env());
  EXPECT_GT(r.total_ops, 0u);
  std::printf("crash matrix [tiered]: %llu ops, %llu crash points\n",
              static_cast<unsigned long long>(r.total_ops),
              static_cast<unsigned long long>(r.points_run));
}

TEST(CrashMatrix, TieredScenarioActuallyMigrates) {
  // Sanity-check the scenario exercises what it claims: an uncrashed
  // run demotes objects (the cold tier is populated and fenced) and
  // the resume leg promotes read-through.
  const ScenarioConfig cfg = tiered_config();
  io::MemEnv env;
  std::vector<std::uint64_t> installed;
  io::CrashScheduleEnv no_crash(env, io::CrashPlan{});
  run_scenario(no_crash, cfg, installed);
  EXPECT_FALSE(env.list_dir("cold/cp").empty()) << "nothing demoted";
  EXPECT_TRUE(env.exists("hot/cp/TIERMAP"));
  EnvView view(env, /*use_tiers=*/true);
  CheckpointStore store(view.env(), "cp", cfg.policy.retention,
                        cfg.policy.tier);
  const auto ts = store.tier_stats();
  EXPECT_LE(store.tiering()->hot_resident_bytes(),
            cfg.policy.tier.hot_byte_budget)
      << "hot tier over budget after the run";
  (void)ts;
}

TEST(CrashMatrix, DedupScenarioActuallySharesChunks) {
  // Sanity-check the scenario exercises what it claims: two consecutive
  // checkpoints share well over half their chunks, and packfiles exist.
  const ScenarioConfig cfg = dedup_config();
  io::MemEnv env;
  Checkpointer ck(env, "cp", cfg.policy);
  ck.checkpoint_now(make_state(1, cfg.sim_qubits, cfg.frozen_params));
  const auto first = ck.stats();
  ck.checkpoint_now(make_state(2, cfg.sim_qubits, cfg.frozen_params));
  const auto second = ck.stats();
  const std::uint64_t refs = second.chunk_refs - first.chunk_refs;
  const std::uint64_t shared = second.chunks_deduped - first.chunks_deduped;
  ASSERT_GT(refs, 0u);
  EXPECT_GT(shared * 2, refs)
      << "the second checkpoint shared fewer than half its chunks";
  EXPECT_FALSE(env.list_dir("cp/chunks").empty());
}

ScenarioConfig wal_config() {
  // Delta-journal regime: sparse installs with a journal record on every
  // off-boundary step, a group-commit cadence above 1, and a log budget
  // small enough that compaction installs fire mid-epoch. Crash points
  // land inside journal appends (torn frames), between install and
  // rotation, inside the rotation's remove, and inside the startup
  // sweep's stale-journal reap. kParamsOnly keeps every entry
  // parent-free, so the sweep's conservatism never masks a leak.
  ScenarioConfig cfg{.name = "wal"};
  cfg.policy.strategy = Strategy::kParamsOnly;
  cfg.policy.every_steps = 4;
  cfg.policy.retention.keep_last = 2;
  cfg.policy.wal.enable = true;
  cfg.policy.wal.group_commit_steps = 2;
  cfg.policy.wal.max_log_bytes = 700;  // ~2 records: compactions fire
  return cfg;
}

TEST(CrashMatrix, EveryCrashPointRecoversWithDeltaJournal) {
  const auto r = run_matrix(wal_config(), stride_from_env());
  EXPECT_GT(r.total_ops, 0u);
  std::printf("crash matrix [wal]: %llu ops, %llu crash points\n",
              static_cast<unsigned long long>(r.total_ops),
              static_cast<unsigned long long>(r.points_run));
}

TEST(CrashMatrix, WalScenarioActuallyLogsReplaysAndCompacts) {
  // Sanity-check the scenario exercises what it claims. The scenario
  // policy both logs journal records and trips the compaction budget:
  const ScenarioConfig cfg = wal_config();
  {
    io::MemEnv env;
    Checkpointer ck(env, "cp", cfg.policy);
    for (std::uint64_t step = 1; step <= 12; ++step) {
      ck.maybe_checkpoint(make_state(step, cfg.sim_qubits, cfg.frozen_params));
    }
    EXPECT_GT(ck.stats().wal_records, 0u);
    EXPECT_GT(ck.stats().wal_compactions, 0u)
        << "the budget never tripped: max_log_bytes is too generous for "
           "the scenario's record size";
  }
  // ... an uncrashed run leaves exactly one journal, owned by the tip:
  {
    io::MemEnv env;
    std::vector<std::uint64_t> installed;
    io::CrashScheduleEnv no_crash(env, io::CrashPlan{});
    run_scenario(no_crash, cfg, installed);
    const Manifest manifest = Manifest::load(env, "cp");
    ASSERT_NE(manifest.latest(), nullptr);
    std::vector<std::string> journals;
    for (const std::string& name : env.list_dir("cp")) {
      if (parse_wal_file_name(name)) {
        journals.push_back(name);
      }
    }
    EXPECT_EQ(journals,
              std::vector<std::string>{wal_file_name(manifest.latest()->id)});
  }
  // ... and replay recovers the off-boundary steps an interval-only
  // recovery would lose (an unbounded log so the tail stays journaled):
  {
    io::MemEnv env;
    CheckpointPolicy policy = cfg.policy;
    policy.wal.max_log_bytes = 0;
    Checkpointer ck(env, "cp", policy);
    for (std::uint64_t step = 1; step <= 6; ++step) {
      ck.maybe_checkpoint(make_state(step, cfg.sim_qubits, cfg.frozen_params));
    }
    const auto outcome = recover_latest(env, "cp");
    ASSERT_TRUE(outcome.has_value());
    EXPECT_EQ(Manifest::load(env, "cp").latest()->step, 4u);
    EXPECT_EQ(outcome->step, 6u)
        << "replay should recover steps past the last install";
    EXPECT_EQ(outcome->state,
              make_state(6, cfg.sim_qubits, cfg.frozen_params));
  }
}

// ---------------------------------------------------------------------------
// Torn streamed appends: the naive (plain-stream) writer
// ---------------------------------------------------------------------------

/// Encodes `make_state(step)` as a self-contained v2 container.
util::Bytes encode_state_file(std::uint64_t id, std::uint64_t step) {
  CheckpointFile f;
  f.checkpoint_id = id;
  f.step = step;
  f.sections = state_to_sections(make_state(step, 0), /*include_simulator=*/
                                 false, codec::CodecId::kRaw);
  EncodeOptions options;
  options.version = kInlineFormatVersion;
  return encode_checkpoint(f, options);
}

/// Two atomic installs, then a NAIVE writer streams checkpoint 3 through
/// a plain handle in small appends — every append is a crash point, and
/// the tear offset lands at arbitrary byte positions inside the stream.
void run_streamed_scenario(io::CrashScheduleEnv& env) {
  env.write_file_atomic("cp/" + checkpoint_file_name(1),
                        encode_state_file(1, 1));
  env.write_file_atomic("cp/" + checkpoint_file_name(2),
                        encode_state_file(2, 2));
  const util::Bytes blob = encode_state_file(3, 3);
  auto out = env.new_writable("cp/" + checkpoint_file_name(3),
                              io::WriteMode::kPlain);
  constexpr std::size_t kAppend = 48;
  for (std::size_t off = 0; off < blob.size(); off += kAppend) {
    const std::size_t len = std::min(kAppend, blob.size() - off);
    out->append(util::ByteSpan(blob).subspan(off, len));
  }
  out->close();
}

TEST(CrashMatrix, TornStreamedWriterNeverCorruptsRecovery) {
  // The contract: a checkpoint file torn at ANY append/byte boundary is
  // either fully intact (recovered) or rejected by verification — the
  // recovery falls back to the newest atomic install, and whatever it
  // returns matches a state the writer actually produced.
  const auto r = io::enumerate_crash_schedules(
      [] { return std::make_unique<io::MemEnv>(); },
      [](io::CrashScheduleEnv& env) { run_streamed_scenario(env); },
      [](io::Env& base, const io::CrashPlan& plan) {
        const std::string at = "streamed op " +
                               std::to_string(plan.crash_at_op) + " durable " +
                               std::to_string(plan.durable_bytes);
        const auto outcome = recover_latest(base, "cp");
        if (plan.crash_at_op == 0 || plan.crash_at_op > 2) {
          // Both atomic installs completed before the crash (ops 1-2):
          // at least checkpoint 2 must recover, torn stream or not.
          ASSERT_TRUE(outcome.has_value()) << at;
          EXPECT_GE(outcome->step, 2u) << at;
        }
        if (outcome) {
          EXPECT_EQ(outcome->state, make_state(outcome->step, 0))
              << at << ": recovered state never existed (corruption)";
        }
      },
      stride_from_env(),
      // Byte offsets within the crashing append: boundary tear, two
      // mid-append tears, the whole append durable.
      {0, 13, 29, io::kOpDurable});
  std::printf("crash matrix [streamed]: %llu ops, %llu crash points\n",
              static_cast<unsigned long long>(r.total_ops),
              static_cast<unsigned long long>(r.points_run));
  EXPECT_GT(r.total_ops, 4u) << "the stream should span several appends";
}

TEST(CrashMatrix, EnumerationCoversAtLeast800PointsUnstrided) {
  const std::uint64_t stride = stride_from_env();
  if (stride != 1) {
    GTEST_SKIP() << "strided run (QNNCKPT_CRASH_MATRIX_STRIDE=" << stride
                 << "); the 800-point floor applies to exhaustive runs";
  }
  const auto a = run_matrix(full_config(), 1);
  const auto b = run_matrix(incremental_config(), 1);
  const auto c = run_matrix(gc_heavy_config(), 1);
  const auto d = run_matrix(dedup_config(), 1);
  const auto e = run_matrix(tiered_config(), 1);
  const auto f = io::enumerate_crash_schedules(
      [] { return std::make_unique<io::MemEnv>(); },
      [](io::CrashScheduleEnv& env) { run_streamed_scenario(env); },
      [](io::Env&, const io::CrashPlan&) {}, 1,
      {0, 13, 29, io::kOpDurable});
  const auto g = run_matrix(wal_config(), 1);
  const std::uint64_t total = a.points_run + b.points_run + c.points_run +
                              d.points_run + e.points_run + f.points_run +
                              g.points_run;
  std::printf("crash matrix total: %llu distinct crash points\n",
              static_cast<unsigned long long>(total));
  EXPECT_GE(total, 800u);
}

}  // namespace
}  // namespace qnn::ckpt

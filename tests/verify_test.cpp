// Tests for the scrubbing/verification API and circuit fingerprinting.
#include <gtest/gtest.h>

#include "ckpt/checkpointer.hpp"
#include "ckpt/recovery.hpp"
#include "ckpt/verify.hpp"
#include "io/mem_env.hpp"
#include "qnn/ansatz.hpp"
#include "qnn/loss.hpp"
#include "qnn/trainer.hpp"
#include "sim/pauli.hpp"

namespace qnn::ckpt {
namespace {

qnn::TrainingState tiny_state(std::uint64_t step) {
  qnn::TrainingState s;
  s.step = step;
  s.params = {0.1, 0.2, 0.3};
  s.optimizer_name = "sgd";
  s.optimizer_state = {1, 2, 3};
  s.rng_state = util::Rng(step).serialize();
  s.loss_history = {0.5};
  s.permutation = {0};
  s.workload_tag = "vqe";
  s.circuit_fingerprint = 0xABCDEF;
  return s;
}

void write_chain(io::Env& env, const std::string& dir, int count,
                 Strategy strategy = Strategy::kFullState) {
  CheckpointPolicy policy;
  policy.strategy = strategy;
  policy.every_steps = 1;
  policy.retention.keep_last = 0;
  policy.full_every = strategy == Strategy::kIncremental ? 10 : 1;
  Checkpointer ck(env, dir, policy);
  for (int step = 1; step <= count; ++step) {
    ck.maybe_checkpoint(tiny_state(static_cast<std::uint64_t>(step)));
  }
}

// ---------- verify_directory ----------

TEST(Verify, HealthyDirectory) {
  io::MemEnv env;
  write_chain(env, "cp", 3);
  const auto report = verify_directory(env, "cp");
  EXPECT_TRUE(report.manifest_present);
  ASSERT_EQ(report.checkpoints.size(), 3u);
  for (const auto& r : report.checkpoints) {
    EXPECT_EQ(r.health, CheckpointHealth::kIntact) << r.id;
  }
  EXPECT_EQ(report.newest_recoverable.value(), 3u);
  EXPECT_TRUE(report.healthy());
  EXPECT_NE(report.summary().find("HEALTHY"), std::string::npos);
}

TEST(Verify, EmptyDirectoryUnhealthy) {
  io::MemEnv env;
  const auto report = verify_directory(env, "nothing");
  EXPECT_FALSE(report.manifest_present);
  EXPECT_TRUE(report.checkpoints.empty());
  EXPECT_FALSE(report.newest_recoverable.has_value());
  EXPECT_FALSE(report.healthy());
}

TEST(Verify, DamagedNewestDetected) {
  io::MemEnv env;
  write_chain(env, "cp", 3);
  env.flip_bit("cp/" + checkpoint_file_name(3), 777);
  const auto report = verify_directory(env, "cp");
  EXPECT_EQ(report.checkpoints[2].health, CheckpointHealth::kDamaged);
  EXPECT_EQ(report.newest_recoverable.value(), 2u);
  EXPECT_FALSE(report.healthy());
}

TEST(Verify, MissingFileDetected) {
  io::MemEnv env;
  write_chain(env, "cp", 3);
  env.remove_file("cp/" + checkpoint_file_name(2));
  const auto report = verify_directory(env, "cp");
  ASSERT_EQ(report.checkpoints.size(), 3u);
  EXPECT_EQ(report.checkpoints[1].health, CheckpointHealth::kMissing);
  EXPECT_FALSE(report.healthy());
  EXPECT_EQ(report.newest_recoverable.value(), 3u);  // 3 is standalone-full
}

TEST(Verify, ChainBrokenDistinctFromDamaged) {
  io::MemEnv env;
  write_chain(env, "cp", 3, Strategy::kIncremental);
  // Damage the chain's root: children are file-intact but chain-broken.
  env.flip_bit("cp/" + checkpoint_file_name(1), 500);
  const auto report = verify_directory(env, "cp");
  EXPECT_EQ(report.checkpoints[0].health, CheckpointHealth::kDamaged);
  EXPECT_EQ(report.checkpoints[1].health, CheckpointHealth::kChainBroken);
  EXPECT_EQ(report.checkpoints[2].health, CheckpointHealth::kChainBroken);
  EXPECT_FALSE(report.newest_recoverable.has_value());
}

TEST(Verify, OrphanFilesReported) {
  io::MemEnv env;
  write_chain(env, "cp", 2);
  // A checkpoint installed without a manifest record (crash window).
  const auto data = env.read_file("cp/" + checkpoint_file_name(2));
  env.write_file_atomic("cp/" + checkpoint_file_name(9), *data);
  const auto report = verify_directory(env, "cp");
  ASSERT_EQ(report.orphan_files.size(), 1u);
  EXPECT_EQ(report.orphan_files[0], checkpoint_file_name(9));
  // Orphans are still verified and recoverable.
  EXPECT_EQ(report.checkpoints.back().id, 9u);
}

TEST(Verify, HealthNames) {
  EXPECT_EQ(health_name(CheckpointHealth::kIntact), "intact");
  EXPECT_EQ(health_name(CheckpointHealth::kDamaged), "damaged");
  EXPECT_EQ(health_name(CheckpointHealth::kChainBroken), "chain-broken");
  EXPECT_EQ(health_name(CheckpointHealth::kMissing), "missing");
}

// ---------- circuit fingerprinting ----------

TEST(Fingerprint, StableAndStructureSensitive) {
  const sim::Circuit a1 = qnn::hardware_efficient(3, 2);
  const sim::Circuit a2 = qnn::hardware_efficient(3, 2);
  EXPECT_EQ(a1.fingerprint(), a2.fingerprint());
  EXPECT_NE(a1.fingerprint(), qnn::hardware_efficient(3, 3).fingerprint());
  EXPECT_NE(a1.fingerprint(), qnn::hardware_efficient(4, 2).fingerprint());
  EXPECT_NE(a1.fingerprint(), qnn::strongly_entangling(3, 2).fingerprint());
}

TEST(Fingerprint, SensitiveToFixedAngles) {
  sim::Circuit c1(1), c2(1);
  c1.rx(0, 0.5);
  c2.rx(0, 0.6);
  EXPECT_NE(c1.fingerprint(), c2.fingerprint());
}

TEST(Fingerprint, RoundTripsThroughCheckpoint) {
  io::MemEnv env;
  auto make_loss = [] {
    return qnn::ExpectationLoss(qnn::hardware_efficient(2, 1),
                                sim::transverse_field_ising(2, 1.0, 1.0));
  };
  qnn::TrainerConfig cfg;
  cfg.seed = 5;
  auto loss = make_loss();
  qnn::Trainer trainer(loss, cfg);
  trainer.run(2);
  CheckpointPolicy policy;
  Checkpointer ck(env, "cp", policy);
  ck.checkpoint_now(trainer.capture());

  const auto recovered = recover_latest(env, "cp");
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(recovered->state.circuit_fingerprint,
            loss.circuit().fingerprint());
}

TEST(Fingerprint, RestoreRejectsDifferentAnsatz) {
  qnn::TrainerConfig cfg;
  cfg.seed = 6;
  // Two ansaetze with the SAME parameter count but different structure.
  auto l1 = qnn::ExpectationLoss(qnn::hardware_efficient(3, 2),
                                 sim::transverse_field_ising(3, 1.0, 1.0));
  sim::Circuit other(3);
  for (std::size_t i = 0; i < l1.num_params(); ++i) {
    other.rx(i % 3, other.new_param());
  }
  auto l2 = qnn::ExpectationLoss(std::move(other),
                                 sim::transverse_field_ising(3, 1.0, 1.0));
  ASSERT_EQ(l1.num_params(), l2.num_params());

  qnn::Trainer t1(l1, cfg);
  t1.run(1);
  const auto snapshot = t1.capture();
  qnn::Trainer t2(l2, cfg);
  EXPECT_THROW(t2.restore(snapshot), std::runtime_error);
}

TEST(Fingerprint, LegacyZeroFingerprintAccepted) {
  qnn::TrainerConfig cfg;
  cfg.seed = 7;
  auto loss = qnn::ExpectationLoss(qnn::hardware_efficient(2, 1),
                                   sim::transverse_field_ising(2, 1.0, 1.0));
  qnn::Trainer t(loss, cfg);
  t.run(1);
  auto snapshot = t.capture();
  snapshot.circuit_fingerprint = 0;  // legacy (v1 meta) snapshot
  qnn::Trainer t2(loss, cfg);
  EXPECT_NO_THROW(t2.restore(snapshot));
}

}  // namespace
}  // namespace qnn::ckpt

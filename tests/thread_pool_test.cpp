// Unit tests for util::ThreadPool — submit/futures, exception
// propagation, parallel_for/parallel_reduce correctness, nested
// parallelism (the checkpoint pipeline's encode-task-calls-parallel_for
// shape), and thread-count-independent reduction determinism.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.hpp"

namespace qnn::util {
namespace {

TEST(ThreadPool, SubmitReturnsResults) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPool, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(2);
  auto fut = pool.submit(
      []() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
  // The pool must stay usable after a task threw.
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPool, DestructorCompletesQueuedWork) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.submit([&done] { ++done; });
    }
  }  // destructor must drain the queue, not drop it
  EXPECT_EQ(done.load(), 64);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(&pool, 0, kN, 64, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      ++hits[i];
    }
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, SerialFallbacks) {
  int calls = 0;
  // Null pool and sub-grain ranges run inline as one chunk.
  parallel_for(nullptr, 0, 100, 10, [&](std::size_t lo, std::size_t hi) {
    ++calls;
    EXPECT_EQ(lo, 0u);
    EXPECT_EQ(hi, 100u);
  });
  EXPECT_EQ(calls, 1);
  parallel_for(nullptr, 5, 5, 10,
               [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1);  // empty range: body never runs
}

TEST(ParallelFor, RethrowsFirstChunkException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      parallel_for(&pool, 0, 1000, 10,
                   [](std::size_t lo, std::size_t) {
                     if (lo >= 500) {
                       throw std::invalid_argument("bad chunk");
                     }
                   }),
      std::invalid_argument);
}

TEST(ParallelFor, NestedOnSameSingleThreadPoolDoesNotDeadlock) {
  // The checkpoint pipeline shape: a pool task runs parallel_for on the
  // same pool. With one worker this deadlocks unless waiters help drain
  // the queue.
  ThreadPool pool(1);
  auto outer = pool.submit([&pool] {
    std::atomic<std::size_t> sum{0};
    parallel_for(&pool, 0, 256, 16, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        sum += i;
      }
    });
    return sum.load();
  });
  EXPECT_EQ(outer.get(), 256u * 255u / 2u);
}

TEST(ParallelReduce, MatchesSerialSum) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 4097;  // deliberately not a grain multiple
  std::vector<double> values(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    values[i] = 0.25 * static_cast<double>(i);
  }
  const double expected =
      std::accumulate(values.begin(), values.end(), 0.0);
  const double got = parallel_reduce(
      &pool, 0, kN, 64, 0.0, [&](std::size_t lo, std::size_t hi) {
        double acc = 0.0;
        for (std::size_t i = lo; i < hi; ++i) {
          acc += values[i];
        }
        return acc;
      });
  EXPECT_DOUBLE_EQ(got, expected);
}

TEST(ParallelReduce, DeterministicAcrossThreadCounts) {
  // Chunk combination happens in index order, so the bits of the result
  // must not depend on how many threads ran the chunks.
  constexpr std::size_t kN = 30000;
  std::vector<double> values(kN);
  double seed = 0.123456;
  for (std::size_t i = 0; i < kN; ++i) {
    seed = seed * 1103515245.0 + 12345.0;
    seed -= std::floor(seed / 65536.0) * 65536.0;
    values[i] = seed / 65536.0;
  }
  auto body = [&](std::size_t lo, std::size_t hi) {
    double acc = 0.0;
    for (std::size_t i = lo; i < hi; ++i) {
      acc += values[i];
    }
    return acc;
  };
  ThreadPool pool1(1);
  ThreadPool pool4(4);
  const double r1 = parallel_reduce(&pool1, 0, kN, 128, 0.0, body);
  const double r4 = parallel_reduce(&pool4, 0, kN, 128, 0.0, body);
  EXPECT_EQ(r1, r4);  // bitwise, not approximately
}

TEST(ThreadPool, RunPendingTaskDrainsQueue) {
  ThreadPool pool(1);
  // Park the single worker so tasks pile up. Wait until the worker has
  // actually dequeued the parking task — otherwise run_pending_task below
  // could steal it and spin on `release` forever.
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  auto parked = pool.submit([&started, &release] {
    started = true;
    while (!release.load()) {
      std::this_thread::yield();
    }
  });
  while (!started.load()) {
    std::this_thread::yield();
  }
  std::atomic<int> ran{0};
  for (int i = 0; i < 4; ++i) {
    pool.submit([&ran] { ++ran; });
  }
  while (pool.run_pending_task()) {
  }
  EXPECT_EQ(ran.load(), 4);
  release = true;
  parked.get();
  EXPECT_FALSE(pool.run_pending_task());
}

}  // namespace
}  // namespace qnn::util

// CRC parity suite: the runtime-dispatched CRC32C / CRC64 kernels must
// be byte-for-byte interchangeable with the scalar slicing-by-8
// oracles, across every alignment, tail length and seed-chaining cut
// the SIMD paths special-case (3-way 1 KiB / 128 B lanes for CRC32C,
// 512-bit folds + 128-bit merges for CRC64). Also pins the published
// check values so "parity" can never mean "both wrong the same way".
#include <gtest/gtest.h>

#include <cstring>
#include <string_view>
#include <vector>

#include "util/crc.hpp"
#include "util/rng.hpp"

namespace qnn::util {
namespace {

ByteSpan as_bytes(std::string_view s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

// ---------- published check values ----------

TEST(CrcVectors, Crc32cCheckString) {
  // CRC-32C check value (e.g. the CRC catalogue's check="123456789").
  EXPECT_EQ(crc32c(as_bytes("123456789")), 0xE3069283u);
  EXPECT_EQ(crc32c_scalar(as_bytes("123456789")), 0xE3069283u);
}

TEST(CrcVectors, Crc32cRfc3720Vectors) {
  // RFC 3720 appendix B.4 (iSCSI CRC32C examples).
  const Bytes zeros(32, 0x00);
  EXPECT_EQ(crc32c(zeros), 0x8A9136AAu);
  EXPECT_EQ(crc32c_scalar(zeros), 0x8A9136AAu);

  const Bytes ones(32, 0xFF);
  EXPECT_EQ(crc32c(ones), 0x62A8AB43u);
  EXPECT_EQ(crc32c_scalar(ones), 0x62A8AB43u);

  Bytes ascending(32);
  for (std::size_t i = 0; i < ascending.size(); ++i) {
    ascending[i] = static_cast<std::uint8_t>(i);
  }
  EXPECT_EQ(crc32c(ascending), 0x46DD794Eu);
  EXPECT_EQ(crc32c_scalar(ascending), 0x46DD794Eu);
}

TEST(CrcVectors, Crc64CheckString) {
  // CRC-64/XZ (reflected ECMA-182) check value.
  EXPECT_EQ(crc64(as_bytes("123456789")), 0x995DC9BBDF1939FAull);
  EXPECT_EQ(crc64_scalar(as_bytes("123456789")), 0x995DC9BBDF1939FAull);
}

TEST(CrcVectors, BackendIsReported) {
  const char* backend = crc_backend();
  ASSERT_NE(backend, nullptr);
  EXPECT_TRUE(std::string_view(backend) == "sse42+pclmul" ||
              std::string_view(backend) == "scalar")
      << backend;
}

// ---------- SIMD/scalar parity ----------

// Lengths bracketing every kernel transition: empty, sub-word tails,
// word boundaries, the 128 B small-lane and 1 KiB big-lane thresholds
// for CRC32C, and the 64 B block / fold widths for CRC64.
const std::size_t kEdgeLengths[] = {
    0,  1,  7,   8,   9,   15,  16,  17,   63,   64,   65,   127,  128,
    129, 255, 256, 383, 384, 385, 511, 512, 1000, 1023, 1024, 1025,
    3071, 3072, 3073, 4095, 4096};

TEST(CrcParity, EdgeLengthsAcrossAlignments) {
  Rng rng(2024);
  // One oversized pool; every (length, offset) view aliases into it so
  // misaligned starts are real, not copies.
  Bytes pool(4096 + 64);
  for (auto& b : pool) {
    b = static_cast<std::uint8_t>(rng());
  }
  for (const std::size_t len : kEdgeLengths) {
    for (const std::size_t offset : {0u, 1u, 3u, 7u, 8u, 15u}) {
      const ByteSpan view(pool.data() + offset, len);
      ASSERT_EQ(crc32c(view), crc32c_scalar(view))
          << "crc32c len=" << len << " offset=" << offset;
      ASSERT_EQ(crc64(view), crc64_scalar(view))
          << "crc64 len=" << len << " offset=" << offset;
    }
  }
}

TEST(CrcParity, RandomizedLengthsWithSeeds) {
  Rng rng(77);
  Bytes pool(4096 + 16);
  for (auto& b : pool) {
    b = static_cast<std::uint8_t>(rng());
  }
  for (int trial = 0; trial < 500; ++trial) {
    const std::size_t len = rng.uniform_u64(4097);
    const std::size_t offset = rng.uniform_u64(16);
    const auto seed32 = static_cast<std::uint32_t>(rng());
    const auto seed64 = rng();
    const ByteSpan view(pool.data() + offset, len);
    ASSERT_EQ(crc32c(view, seed32), crc32c_scalar(view, seed32))
        << "trial " << trial << " len=" << len << " offset=" << offset;
    ASSERT_EQ(crc64(view, seed64), crc64_scalar(view, seed64))
        << "trial " << trial << " len=" << len << " offset=" << offset;
  }
}

TEST(CrcParity, SeedChainingCrossesKernelTiers) {
  // Splitting a buffer at any point and chaining through the seed must
  // equal the one-shot CRC — including cuts that push one side through
  // the wide SIMD path and leave the other in the tail-only path.
  Rng rng(4242);
  Bytes data(3000);
  for (auto& b : data) {
    b = static_cast<std::uint8_t>(rng());
  }
  const auto whole32 = crc32c(data);
  const auto whole64 = crc64(data);
  for (const std::size_t cut : {0u, 1u, 8u, 63u, 64u, 127u, 128u, 129u,
                                1024u, 1500u, 2999u, 3000u}) {
    const ByteSpan head = ByteSpan(data).first(cut);
    const ByteSpan tail = ByteSpan(data).subspan(cut);
    ASSERT_EQ(crc32c(tail, crc32c(head)), whole32) << "cut=" << cut;
    ASSERT_EQ(crc64(tail, crc64(head)), whole64) << "cut=" << cut;
    ASSERT_EQ(crc32c_scalar(tail, crc32c_scalar(head)), whole32)
        << "cut=" << cut;
    ASSERT_EQ(crc64_scalar(tail, crc64_scalar(head)), whole64)
        << "cut=" << cut;
  }
}

TEST(CrcParity, AccumulatorsMatchOneShot) {
  Rng rng(9);
  Bytes data(2048);
  for (auto& b : data) {
    b = static_cast<std::uint8_t>(rng());
  }
  Crc32c acc32;
  Crc64 acc64;
  std::size_t i = 0;
  // Uneven increments so updates straddle every internal block size.
  for (const std::size_t step : {1u, 7u, 64u, 100u, 129u, 1024u, 723u}) {
    const std::size_t take = std::min(step, data.size() - i);
    acc32.update(ByteSpan(data).subspan(i, take));
    acc64.update(ByteSpan(data).subspan(i, take));
    i += take;
  }
  acc32.update(ByteSpan(data).subspan(i));
  acc64.update(ByteSpan(data).subspan(i));
  EXPECT_EQ(acc32.value(), crc32c_scalar(data));
  EXPECT_EQ(acc64.value(), crc64_scalar(data));
}

}  // namespace
}  // namespace qnn::util

// Tests for the checkpoint container format: round-trips, corruption
// detection sweeps, truncation, salvage.
#include <gtest/gtest.h>

#include <map>

#include "ckpt/format.hpp"
#include "ckpt/state_codec.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace qnn::ckpt {
namespace {

Bytes random_bytes(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  Bytes out(n);
  for (auto& b : out) {
    b = static_cast<std::uint8_t>(rng());
  }
  return out;
}

CheckpointFile sample_file(codec::CodecId codec, std::size_t sim_bytes = 0) {
  CheckpointFile f;
  f.checkpoint_id = 7;
  f.parent_id = 0;
  f.step = 120;
  f.time_us = 1234567;
  f.sections.push_back(Section{.kind = SectionKind::kParams,
                               .codec = codec,
                               .flags = 0,
                               .payload = random_bytes(800, 1)});
  f.sections.push_back(Section{.kind = SectionKind::kOptimizer,
                               .codec = codec,
                               .flags = 0,
                               .payload = random_bytes(1600, 2)});
  f.sections.push_back(Section{.kind = SectionKind::kRng,
                               .codec = codec,
                               .flags = 0,
                               .payload = random_bytes(42, 3)});
  if (sim_bytes > 0) {
    f.sections.push_back(Section{.kind = SectionKind::kSimulator,
                                 .codec = codec,
                                 .flags = 0,
                                 .payload = random_bytes(sim_bytes, 4)});
  }
  return f;
}

void expect_equal_files(const CheckpointFile& a, const CheckpointFile& b) {
  EXPECT_EQ(a.checkpoint_id, b.checkpoint_id);
  EXPECT_EQ(a.parent_id, b.parent_id);
  EXPECT_EQ(a.step, b.step);
  EXPECT_EQ(a.time_us, b.time_us);
  ASSERT_EQ(a.sections.size(), b.sections.size());
  for (std::size_t i = 0; i < a.sections.size(); ++i) {
    EXPECT_EQ(a.sections[i].kind, b.sections[i].kind);
    EXPECT_EQ(a.sections[i].flags, b.sections[i].flags);
    EXPECT_EQ(a.sections[i].payload, b.sections[i].payload);
  }
}

// ---------- round trips across codecs ----------

class FormatRoundTrip : public ::testing::TestWithParam<codec::CodecId> {};

TEST_P(FormatRoundTrip, EncodeDecodePreservesEverything) {
  const CheckpointFile f = sample_file(GetParam(), 4096);
  const Bytes blob = encode_checkpoint(f);
  const CheckpointFile back = decode_checkpoint(blob);
  expect_equal_files(f, back);
}

TEST_P(FormatRoundTrip, EncodingIsDeterministic) {
  const CheckpointFile f = sample_file(GetParam());
  EXPECT_EQ(encode_checkpoint(f), encode_checkpoint(f));
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecs, FormatRoundTrip,
    ::testing::ValuesIn(std::vector<codec::CodecId>(
        std::begin(codec::kAllCodecs), std::end(codec::kAllCodecs))),
    [](const auto& info) {
      std::string n = codec::codec_name(info.param);
      for (char& c : n) {
        if (c == '+') {
          c = '_';
        }
      }
      return n;
    });

TEST(Format, EmptySectionsAndZeroLengthPayloads) {
  CheckpointFile f;
  f.checkpoint_id = 1;
  const Bytes blob = encode_checkpoint(f);
  expect_equal_files(f, decode_checkpoint(blob));

  CheckpointFile g;
  g.checkpoint_id = 2;
  g.sections.push_back(Section{.kind = SectionKind::kParams,
                               .codec = codec::CodecId::kLz,
                               .flags = 0,
                               .payload = {}});
  expect_equal_files(g, decode_checkpoint(encode_checkpoint(g)));
}

TEST(Format, FindLocatesSections) {
  const CheckpointFile f = sample_file(codec::CodecId::kRaw);
  ASSERT_NE(f.find(SectionKind::kParams), nullptr);
  EXPECT_EQ(f.find(SectionKind::kParams)->payload.size(), 800u);
  EXPECT_EQ(f.find(SectionKind::kSimulator), nullptr);
}

TEST(Format, DeltaFlagSurvivesRoundTrip) {
  CheckpointFile f = sample_file(codec::CodecId::kRle);
  f.parent_id = 6;
  f.sections[0].flags |= kSectionFlagDelta;
  const CheckpointFile back = decode_checkpoint(encode_checkpoint(f));
  EXPECT_TRUE(back.is_incremental());
  EXPECT_TRUE(back.sections[0].is_delta());
  EXPECT_FALSE(back.sections[1].is_delta());
}

// ---------- chunked sections (format v2) ----------

class ChunkedRoundTrip : public ::testing::TestWithParam<codec::CodecId> {};

TEST_P(ChunkedRoundTrip, LargeSectionsChunkAndRoundTrip) {
  const CheckpointFile f = sample_file(GetParam(), 8192);
  EncodeOptions options;
  options.chunk_bytes = 512;  // force several chunks per large section
  const Bytes blob = encode_checkpoint(f, options);
  const CheckpointFile back = decode_checkpoint(blob);
  // Payloads round-trip and the chunked flag never leaks into memory.
  expect_equal_files(f, back);
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecs, ChunkedRoundTrip,
    ::testing::ValuesIn(std::vector<codec::CodecId>(
        std::begin(codec::kAllCodecs), std::end(codec::kAllCodecs))),
    [](const auto& info) {
      std::string n = codec::codec_name(info.param);
      for (char& c : n) {
        if (c == '+') {
          c = '_';
        }
      }
      return n;
    });

TEST(Chunked, ParallelEncodeIsByteIdenticalToSerial) {
  const CheckpointFile f = sample_file(codec::CodecId::kLz, 16384);
  EncodeOptions serial;
  serial.chunk_bytes = 256;
  EncodeOptions parallel = serial;
  util::ThreadPool pool(4);
  parallel.pool = &pool;
  EXPECT_EQ(encode_checkpoint(f, serial), encode_checkpoint(f, parallel));
}

TEST(Chunked, SmallSectionsStayUnchunked) {
  // Below the chunk threshold sections must be stored as plain codec
  // streams. Decoded Sections always have the chunked flag stripped, so
  // walk the raw blob's section headers instead.
  const CheckpointFile f = sample_file(codec::CodecId::kRaw);
  const Bytes blob = encode_checkpoint(f);
  std::size_t off = 4 + 2 + 2 + 8 * 4;  // magic, version, flags, ids/times
  const auto n_sections = util::get_le<std::uint32_t>(blob, off);
  ASSERT_EQ(n_sections, f.sections.size());
  for (std::uint32_t i = 0; i < n_sections; ++i) {
    (void)util::get_le<std::uint16_t>(blob, off);  // kind
    (void)util::get_le<std::uint8_t>(blob, off);   // codec
    const auto flags = util::get_le<std::uint8_t>(blob, off);
    EXPECT_EQ(flags & kSectionFlagChunked, 0) << "section " << i;
    (void)util::get_le<std::uint64_t>(blob, off);  // raw_len
    const auto enc_len = util::get_le<std::uint64_t>(blob, off);
    (void)util::get_le<std::uint32_t>(blob, off);  // crc
    off += enc_len;
  }
}

TEST(Chunked, LargeSectionHeaderCarriesChunkedFlag) {
  // The inverse of the test above: an oversized section's on-disk header
  // must set the chunked flag (one section only, so it is the first).
  CheckpointFile f;
  f.checkpoint_id = 1;
  f.sections.push_back(Section{.kind = SectionKind::kSimulator,
                               .codec = codec::CodecId::kRaw,
                               .flags = 0,
                               .payload = random_bytes(4096, 9)});
  EncodeOptions options;
  options.chunk_bytes = 512;
  const Bytes blob = encode_checkpoint(f, options);
  std::size_t off = 4 + 2 + 2 + 8 * 4 + 4 + 2 + 1;  // ...kind, codec
  const auto flags = util::get_le<std::uint8_t>(blob, off);
  EXPECT_NE(flags & kSectionFlagChunked, 0);
  expect_equal_files(f, decode_checkpoint(blob));
}

TEST(Chunked, ChunkCorruptionDetectedStrictAndSalvaged) {
  const CheckpointFile f = sample_file(codec::CodecId::kRaw, 8192);
  EncodeOptions options;
  options.chunk_bytes = 1024;
  Bytes blob = encode_checkpoint(f, options);
  // Flip a byte deep inside the simulator section's chunk frame.
  blob[blob.size() - 1500] ^= 0xFF;
  EXPECT_THROW(decode_checkpoint(blob), CorruptCheckpoint);
  const auto salvaged = salvage_checkpoint(blob);
  ASSERT_TRUE(salvaged.file.has_value());
  EXPECT_FALSE(salvaged.fully_intact);
  // The untouched leading sections survive; the corrupted one is dropped.
  EXPECT_NE(salvaged.file->find(SectionKind::kParams), nullptr);
  EXPECT_EQ(salvaged.file->find(SectionKind::kSimulator), nullptr);
}

TEST(Chunked, TinyChunkSizeIsClampedNotFatal) {
  const CheckpointFile f = sample_file(codec::CodecId::kRle, 4096);
  EncodeOptions options;
  options.chunk_bytes = 1;  // clamped to the format's minimum
  expect_equal_files(f, decode_checkpoint(encode_checkpoint(f, options)));
}

// ---------- old-format (v1) compatibility ----------

TEST(FormatCompat, Version1FilesStillDecode) {
  const CheckpointFile f = sample_file(codec::CodecId::kLz, 4096);
  EncodeOptions options;
  options.version = kMinFormatVersion;  // downgrade-compatible encode
  const Bytes blob = encode_checkpoint(f, options);
  std::size_t off = 4;
  EXPECT_EQ(util::get_le<std::uint16_t>(blob, off), kMinFormatVersion);
  expect_equal_files(f, decode_checkpoint(blob));
}

TEST(FormatCompat, Version1NeverChunksEvenHugeSections) {
  const CheckpointFile f = sample_file(codec::CodecId::kRaw, 65536);
  EncodeOptions options;
  options.version = kMinFormatVersion;
  options.chunk_bytes = 256;
  const Bytes blob = encode_checkpoint(f, options);
  expect_equal_files(f, decode_checkpoint(blob));
}

TEST(FormatCompat, FutureVersionRejected) {
  EncodeOptions options;
  options.version = kFormatVersion + 1;
  EXPECT_THROW(encode_checkpoint(sample_file(codec::CodecId::kRaw), options),
               std::invalid_argument);
}

// ---------- extern sections (format v3, content-addressed) ----------

/// Minimal in-memory chunk store for format-level tests (the real one
/// lives in ckpt/cas.hpp and has its own suite).
class MapChunkStore : public ChunkSink, public ChunkSource {
 public:
  bool contains(const ChunkKey& key) override {
    ++queries;
    const bool hit = chunks.contains(key);
    hits += hit ? 1 : 0;
    return hit;
  }
  void put(const ChunkKey& key, codec::CodecId codec,
           ByteSpan encoded) override {
    stored_bytes += encoded.size();
    chunks.emplace(
        key, std::make_pair(codec, Bytes(encoded.begin(), encoded.end())));
  }
  Bytes get(const ChunkKey& key) override {
    const auto it = chunks.find(key);
    if (it == chunks.end()) {
      throw std::runtime_error("chunk missing: " + chunk_key_name(key));
    }
    return codec::decode(it->second.first, it->second.second, key.len);
  }

  std::map<ChunkKey, std::pair<codec::CodecId, Bytes>> chunks;
  std::uint64_t queries = 0;
  std::uint64_t hits = 0;
  std::uint64_t stored_bytes = 0;
};

class ExternRoundTrip : public ::testing::TestWithParam<codec::CodecId> {};

TEST_P(ExternRoundTrip, ChunksExternaliseAndRoundTrip) {
  const CheckpointFile f = sample_file(GetParam(), 8192);
  MapChunkStore store;
  EncodeOptions options;
  options.chunk_bytes = 512;
  options.sink = &store;
  const Bytes blob = encode_checkpoint(f, options);
  // The file carries key tables, not payloads: it must be far smaller
  // than the payload it represents.
  EXPECT_LT(blob.size(), 2048u);
  EXPECT_GT(store.chunks.size(), 0u);
  const CheckpointFile back =
      decode_checkpoint(blob, DecodeOptions{.source = &store});
  expect_equal_files(f, back);
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecs, ExternRoundTrip,
    ::testing::ValuesIn(std::vector<codec::CodecId>(
        std::begin(codec::kAllCodecs), std::end(codec::kAllCodecs))),
    [](const auto& info) {
      std::string n = codec::codec_name(info.param);
      for (char& c : n) {
        if (c == '+') {
          c = '_';
        }
      }
      return n;
    });

TEST(Extern, AutoVersionPicksV3WithSinkV2Without) {
  const CheckpointFile f = sample_file(codec::CodecId::kRaw, 4096);
  MapChunkStore store;
  EncodeOptions with_sink;
  with_sink.chunk_bytes = 512;
  with_sink.sink = &store;
  Bytes blob = encode_checkpoint(f, with_sink);
  std::size_t off = 4;
  EXPECT_EQ(util::get_le<std::uint16_t>(blob, off), 3);

  blob = encode_checkpoint(f, EncodeOptions{});
  off = 4;
  EXPECT_EQ(util::get_le<std::uint16_t>(blob, off), kInlineFormatVersion);
}

TEST(Extern, ExplicitV3WithoutSinkRejected) {
  EncodeOptions options;
  options.version = 3;
  EXPECT_THROW(encode_checkpoint(sample_file(codec::CodecId::kRaw), options),
               std::invalid_argument);
}

TEST(Extern, SecondEncodeStoresNothingNew) {
  const CheckpointFile f = sample_file(codec::CodecId::kLz, 8192);
  MapChunkStore store;
  EncodeOptions options;
  options.chunk_bytes = 512;
  options.sink = &store;
  const Bytes first = encode_checkpoint(f, options);
  const std::uint64_t stored_after_first = store.stored_bytes;
  const std::size_t chunks_after_first = store.chunks.size();
  const Bytes second = encode_checkpoint(f, options);
  // Identical content: every chunk is a dedup hit, nothing new stored,
  // and the file bytes are identical (same keys, same tables).
  EXPECT_EQ(store.stored_bytes, stored_after_first);
  EXPECT_EQ(store.chunks.size(), chunks_after_first);
  EXPECT_EQ(first, second);
  EXPECT_EQ(store.hits, chunks_after_first);
}

TEST(Extern, StrictDecodeWithoutSourceFails) {
  const CheckpointFile f = sample_file(codec::CodecId::kRaw, 4096);
  MapChunkStore store;
  EncodeOptions options;
  options.chunk_bytes = 512;
  options.sink = &store;
  const Bytes blob = encode_checkpoint(f, options);
  EXPECT_THROW(decode_checkpoint(blob), CorruptCheckpoint);
  // Salvage keeps the inline sections and reports the extern ones.
  const auto salvaged = salvage_checkpoint(blob);
  ASSERT_TRUE(salvaged.file.has_value());
  EXPECT_FALSE(salvaged.fully_intact);
  EXPECT_NE(salvaged.file->find(SectionKind::kRng), nullptr);
  EXPECT_EQ(salvaged.file->find(SectionKind::kSimulator), nullptr);
}

TEST(Extern, MissingChunkDetected) {
  const CheckpointFile f = sample_file(codec::CodecId::kRaw, 4096);
  MapChunkStore store;
  EncodeOptions options;
  options.chunk_bytes = 512;
  options.sink = &store;
  const Bytes blob = encode_checkpoint(f, options);
  ASSERT_FALSE(store.chunks.empty());
  store.chunks.erase(std::prev(store.chunks.end()));
  EXPECT_THROW(decode_checkpoint(blob, DecodeOptions{.source = &store}),
               CorruptCheckpoint);
}

TEST(Extern, CorruptChunkBytesDetected) {
  const CheckpointFile f = sample_file(codec::CodecId::kRaw, 4096);
  MapChunkStore store;
  EncodeOptions options;
  options.chunk_bytes = 512;
  options.sink = &store;
  const Bytes blob = encode_checkpoint(f, options);
  // Corrupt one stored chunk: the decoder must re-verify the digest even
  // when the source itself performs no checks.
  for (auto& [key, stored] : store.chunks) {
    if (!stored.second.empty()) {
      stored.second[stored.second.size() / 2] ^= 0x01;
      break;
    }
  }
  EXPECT_THROW(decode_checkpoint(blob, DecodeOptions{.source = &store}),
               CorruptCheckpoint);
}

TEST(Extern, ListChunkRefsReturnsKeysInOrder) {
  const CheckpointFile f = sample_file(codec::CodecId::kRaw, 4096);
  MapChunkStore store;
  EncodeOptions options;
  options.chunk_bytes = 512;
  options.sink = &store;
  const Bytes blob = encode_checkpoint(f, options);
  const auto refs = list_chunk_refs(blob);
  // Three sections exceed 512 bytes (params 800, optimizer 1600,
  // simulator 4096): ceil(800/512) + ceil(1600/512) + ceil(4096/512).
  EXPECT_EQ(refs.size(), 2u + 4u + 8u);
  // Every listed key resolves and reassembles the payload it names.
  for (const ChunkKey& key : refs) {
    EXPECT_EQ(store.get(key).size(), key.len);
  }
  // Inline formats reference nothing.
  EXPECT_TRUE(list_chunk_refs(encode_checkpoint(f)).empty());
  // A damaged v3 file must refuse to yield refs (refcount rebuilds must
  // not trust unverifiable bytes).
  Bytes damaged = blob;
  damaged[damaged.size() / 2] ^= 0x01;
  EXPECT_THROW(list_chunk_refs(damaged), CorruptCheckpoint);
}

TEST(Extern, ChunkKeyNameRoundTrips) {
  const ChunkKey key{.crc = 0xDEADBEEF, .len = 123456};
  const auto parsed = parse_chunk_key_name(chunk_key_name(key));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, key);
  EXPECT_FALSE(parse_chunk_key_name("nonsense").has_value());
  EXPECT_FALSE(parse_chunk_key_name("zzzzzzzz-12").has_value());
  EXPECT_FALSE(parse_chunk_key_name("00000000-").has_value());
}

// ---------- corruption detection ----------

TEST(FormatCorruption, BadMagicRejected) {
  Bytes blob = encode_checkpoint(sample_file(codec::CodecId::kRaw));
  blob[0] = 'X';
  EXPECT_THROW(decode_checkpoint(blob), CorruptCheckpoint);
}

TEST(FormatCorruption, UnsupportedVersionRejected) {
  Bytes blob = encode_checkpoint(sample_file(codec::CodecId::kRaw));
  blob[4] = 0x7F;  // version low byte
  EXPECT_THROW(decode_checkpoint(blob), CorruptCheckpoint);
}

/// Flip a single bit at a parameterised relative position: every flip
/// anywhere in the file must be detected by strict decoding.
class BitFlipSweep : public ::testing::TestWithParam<int> {};

TEST_P(BitFlipSweep, AnySingleBitFlipDetected) {
  Bytes blob = encode_checkpoint(sample_file(codec::CodecId::kLz, 2048));
  const std::size_t total_bits = blob.size() * 8;
  // 0..99 relative positions spread across the file.
  const std::size_t bit =
      static_cast<std::size_t>(GetParam()) * (total_bits - 1) / 99;
  blob[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  EXPECT_THROW(decode_checkpoint(blob), CorruptCheckpoint) << "bit " << bit;
}

INSTANTIATE_TEST_SUITE_P(HundredPositions, BitFlipSweep,
                         ::testing::Range(0, 100));

/// Truncate the file at a parameterised fraction: all truncations must be
/// detected.
class TruncationSweep : public ::testing::TestWithParam<int> {};

TEST_P(TruncationSweep, AnyTruncationDetected) {
  Bytes blob = encode_checkpoint(sample_file(codec::CodecId::kRle, 1024));
  const std::size_t keep =
      blob.size() * static_cast<std::size_t>(GetParam()) / 40;
  if (keep >= blob.size() || keep < 4) {
    GTEST_SKIP() << "degenerate cut";
  }
  blob.resize(keep);
  EXPECT_THROW(decode_checkpoint(blob), CorruptCheckpoint);
}

INSTANTIATE_TEST_SUITE_P(FortyCuts, TruncationSweep, ::testing::Range(1, 40));

TEST(FormatCorruption, AppendedGarbageDetected) {
  Bytes blob = encode_checkpoint(sample_file(codec::CodecId::kRaw));
  blob.push_back(0x00);
  EXPECT_THROW(decode_checkpoint(blob), CorruptCheckpoint);
}

// ---------- salvage ----------

TEST(Salvage, IntactFileFullyRecovered) {
  const CheckpointFile f = sample_file(codec::CodecId::kLz);
  const auto result = salvage_checkpoint(encode_checkpoint(f));
  ASSERT_TRUE(result.file.has_value());
  EXPECT_TRUE(result.fully_intact);
  EXPECT_TRUE(result.notes.empty());
  EXPECT_EQ(result.file->sections.size(), f.sections.size());
}

TEST(Salvage, CorruptSectionSkippedOthersSurvive) {
  const CheckpointFile f = sample_file(codec::CodecId::kRaw);
  Bytes blob = encode_checkpoint(f);
  // Corrupt the optimizer section payload: find its bytes. The params
  // section payload (800 raw bytes) starts after the header; flip a byte
  // deep in the second section region.
  blob[100 + 800 + 200] ^= 0xFF;
  const auto result = salvage_checkpoint(blob);
  ASSERT_TRUE(result.file.has_value());
  EXPECT_FALSE(result.fully_intact);
  EXPECT_FALSE(result.notes.empty());
  // params section should have survived; optimizer dropped.
  EXPECT_NE(result.file->find(SectionKind::kParams), nullptr);
  EXPECT_EQ(result.file->find(SectionKind::kOptimizer), nullptr);
}

TEST(Salvage, TailTruncationKeepsLeadingSections) {
  const CheckpointFile f = sample_file(codec::CodecId::kRaw, 4096);
  Bytes blob = encode_checkpoint(f);
  blob.resize(blob.size() - 2048);  // lose the simulator tail + footer
  const auto result = salvage_checkpoint(blob);
  ASSERT_TRUE(result.file.has_value());
  EXPECT_FALSE(result.fully_intact);
  EXPECT_NE(result.file->find(SectionKind::kParams), nullptr);
  EXPECT_EQ(result.file->find(SectionKind::kSimulator), nullptr);
}

TEST(Salvage, HopelessGarbageReturnsNullopt) {
  const Bytes junk = random_bytes(256, 99);
  const auto result = salvage_checkpoint(junk);
  EXPECT_FALSE(result.file.has_value());
  EXPECT_FALSE(result.fully_intact);
}

// ---------- section kind names ----------

TEST(Format, SectionKindNamesStable) {
  EXPECT_EQ(section_kind_name(SectionKind::kParams), "params");
  EXPECT_EQ(section_kind_name(SectionKind::kSimulator), "simulator");
  EXPECT_EQ(section_kind_name(static_cast<SectionKind>(999)),
            "unknown(999)");
}

// ---------- golden fixtures ----------
//
// Byte-exact v1 and v2 checkpoint files, committed as hex. These lock
// the on-disk format: a codec or container change that breaks decoding
// of existing checkpoint files — or silently shifts the encoder's output
// — fails here instead of in a user's recovery path. If an INTENTIONAL
// format change trips these, regenerate the blobs and say so in the
// commit message; decoding the OLD hex must keep working forever.

Bytes from_hex(const std::string& hex) {
  Bytes out(hex.size() / 2);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<std::uint8_t>(
        std::stoi(hex.substr(2 * i, 2), nullptr, 16));
  }
  return out;
}

Bytes byte_pattern(std::size_t n, std::uint8_t mul, std::uint8_t add) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = static_cast<std::uint8_t>(i * mul + add);
  }
  return b;
}

/// The logical file both fixtures were generated from (v2 additionally
/// carries a 200-byte simulator section spanning four 64-byte chunks).
CheckpointFile golden_file(bool with_big_section) {
  CheckpointFile f;
  f.checkpoint_id = 3;
  f.parent_id = 2;
  f.step = 40;
  f.time_us = 777;
  f.sections.push_back(Section{.kind = SectionKind::kParams,
                               .codec = codec::CodecId::kRaw,
                               .flags = 0,
                               .payload = byte_pattern(32, 7, 1)});
  Bytes runs;
  for (const int v : {0xAA, 0x55, 0x00}) {
    runs.insert(runs.end(), 16, static_cast<std::uint8_t>(v));
  }
  f.sections.push_back(Section{.kind = SectionKind::kOptimizer,
                               .codec = codec::CodecId::kRle,
                               .flags = 0,
                               .payload = runs});
  f.sections.push_back(Section{.kind = SectionKind::kRng,
                               .codec = codec::CodecId::kLz,
                               .flags = kSectionFlagDelta,
                               .payload = byte_pattern(24, 3, 5)});
  if (with_big_section) {
    f.sections.push_back(Section{.kind = SectionKind::kSimulator,
                                 .codec = codec::CodecId::kLz,
                                 .flags = 0,
                                 .payload = byte_pattern(200, 11, 2)});
  }
  return f;
}

const char* const kFixtureV1 =
    "51434b5001000000030000000000000002000000000000002800000000000000"
    "0903000000000000030000000100000020000000000000002000000000000000"
    "ae98b83401080f161d242b323940474e555c636a71787f868d949ba2a9b0b7be"
    "c5ccd3da020001003000000000000000060000000000000076585d228caa8c55"
    "8c000300020118000000000000001a0000000000000083f17c091805080b0e11"
    "14171a1d202326292c2f3235383b3e4144474a0098143aaab37d3e8f504b4351";

const char* const kFixtureV2 =
    "51434b5002000000030000000000000002000000000000002800000000000000"
    "0903000000000000040000000100000020000000000000002000000000000000"
    "ae98b83401080f161d242b323940474e555c636a71787f868d949ba2a9b0b7be"
    "c5ccd3da020001003000000000000000060000000000000076585d228caa8c55"
    "8c000300020118000000000000001a0000000000000083f17c091805080b0e11"
    "14171a1d202326292c2f3235383b3e4144474a0006000202c800000000000000"
    "2c010000000000008184ea0b0400000040000000000000004000000000000000"
    "4200000000000000c426ee2e40020d18232e39444f5a65707b86919ca7b2bdc8"
    "d3dee9f4ff0a15202b36414c57626d78838e99a4afbac5d0dbe6f1fc07121d28"
    "333e49545f6a75808b96a1acb700400000000000000042000000000000001565"
    "bc2340c2cdd8e3eef9040f1a25303b46515c67727d88939ea9b4bfcad5e0ebf6"
    "010c17222d38434e59646f7a85909ba6b1bcc7d2dde8f3fe09141f2a35404b56"
    "616c770040000000000000004200000000000000690b7fb840828d98a3aeb9c4"
    "cfdae5f0fb06111c27323d48535e69747f8a95a0abb6c1ccd7e2edf8030e1924"
    "2f3a45505b66717c87929da8b3bec9d4dfeaf5000b16212c3700080000000000"
    "00000a00000000000000caeb9f7008424d58636e79848f002ca333156826d871"
    "504b4351";

TEST(GoldenFixture, V1FileStillDecodesByteExact) {
  const Bytes blob = from_hex(kFixtureV1);
  const CheckpointFile back = decode_checkpoint(blob);
  expect_equal_files(golden_file(false), back);
  EXPECT_EQ(back.time_us, 777u);
  // The delta flag must survive the round trip — recovery depends on it.
  ASSERT_NE(back.find(SectionKind::kRng), nullptr);
  EXPECT_TRUE(back.find(SectionKind::kRng)->is_delta());
}

TEST(GoldenFixture, V2ChunkedFileStillDecodesByteExact) {
  const Bytes blob = from_hex(kFixtureV2);
  const CheckpointFile back = decode_checkpoint(blob);
  expect_equal_files(golden_file(true), back);
  // The 200-byte simulator section spanned four 64-byte chunks on disk;
  // decoded Sections always hold the reassembled raw payload.
  ASSERT_NE(back.find(SectionKind::kSimulator), nullptr);
  EXPECT_EQ(back.find(SectionKind::kSimulator)->payload.size(), 200u);
}

TEST(GoldenFixture, EncoderStillProducesTheExactV1Bytes) {
  EncodeOptions options;
  options.version = kMinFormatVersion;
  EXPECT_EQ(encode_checkpoint(golden_file(false), options),
            from_hex(kFixtureV1))
      << "v1 encoder output drifted — old readers may reject new files";
}

TEST(GoldenFixture, EncoderStillProducesTheExactV2Bytes) {
  // The v2-emit fallback must keep producing byte-exact v2 files forever:
  // readers that predate the content-addressed format depend on it.
  EncodeOptions options;
  options.version = kInlineFormatVersion;
  options.chunk_bytes = 64;
  EXPECT_EQ(encode_checkpoint(golden_file(true), options),
            from_hex(kFixtureV2))
      << "v2 encoder output drifted — update the fixture only for an "
         "intentional, documented format change";
}

// The v3 fixture: same logical file, but the 200-byte simulator section
// is externalised into four 64-byte-keyed chunks (the other sections are
// below the chunk threshold and stay inline). The chunk store side of
// the fixture is regenerated by re-encoding — cas_test locks the
// packfile bytes separately.

const char* const kFixtureV3 =
    "51434b5003000000030000000000000002000000000000002800000000000000"
    "0903000000000000040000000100000020000000000000002000000000000000"
    "ae98b83401080f161d242b323940474e555c636a71787f868d949ba2a9b0b7be"
    "c5ccd3da020001003000000000000000060000000000000076585d228caa8c55"
    "8c000300020118000000000000001a0000000000000083f17c091805080b0e11"
    "14171a1d202326292c2f3235383b3e4144474a0006000204c800000000000000"
    "3d0000000000000001605e5f0004000000400000000000000040000000000000"
    "002185504d40000000000000009c4e2d22400000000000000075e43063080000"
    "00000000007c8050db49577d5c98220281504b4351";

TEST(GoldenFixture, V3ExternFileStillDecodesByteExact) {
  // Rebuild the chunk store by encoding, then decode the committed hex
  // against it: both the file bytes and the key derivation are locked.
  MapChunkStore store;
  EncodeOptions options;
  options.version = kFormatVersion;
  options.chunk_bytes = 64;
  options.sink = &store;
  EXPECT_EQ(encode_checkpoint(golden_file(true), options),
            from_hex(kFixtureV3))
      << "v3 encoder output drifted — update the fixture only for an "
         "intentional, documented format change";
  const CheckpointFile back = decode_checkpoint(
      from_hex(kFixtureV3), DecodeOptions{.source = &store});
  expect_equal_files(golden_file(true), back);
}

TEST(GoldenFixture, CorruptingAnyV3FixtureByteIsDetected) {
  MapChunkStore store;
  EncodeOptions options;
  options.version = kFormatVersion;
  options.chunk_bytes = 64;
  options.sink = &store;
  (void)encode_checkpoint(golden_file(true), options);
  const Bytes blob = from_hex(kFixtureV3);
  const DecodeOptions decode{.source = &store};
  for (std::size_t i = 0; i < blob.size(); ++i) {
    Bytes damaged = blob;
    damaged[i] ^= 0x01;
    EXPECT_THROW(decode_checkpoint(damaged, decode), CorruptCheckpoint)
        << "byte " << i << " flip went undetected";
  }
}

TEST(GoldenFixture, CorruptingAnyFixtureByteIsDetected) {
  // The container must detect a flip of any single byte of the golden
  // files (header, payload, CRC or footer) — full-file sweep.
  for (const char* hex : {kFixtureV1, kFixtureV2}) {
    const Bytes blob = from_hex(hex);
    for (std::size_t i = 0; i < blob.size(); ++i) {
      Bytes damaged = blob;
      damaged[i] ^= 0x01;
      EXPECT_THROW(decode_checkpoint(damaged), CorruptCheckpoint)
          << "byte " << i << " flip went undetected";
    }
  }
}

}  // namespace
}  // namespace qnn::ckpt

// Tests for the checkpoint container format: round-trips, corruption
// detection sweeps, truncation, salvage.
#include <gtest/gtest.h>

#include "ckpt/format.hpp"
#include "ckpt/state_codec.hpp"
#include "util/rng.hpp"

namespace qnn::ckpt {
namespace {

Bytes random_bytes(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  Bytes out(n);
  for (auto& b : out) {
    b = static_cast<std::uint8_t>(rng());
  }
  return out;
}

CheckpointFile sample_file(codec::CodecId codec, std::size_t sim_bytes = 0) {
  CheckpointFile f;
  f.checkpoint_id = 7;
  f.parent_id = 0;
  f.step = 120;
  f.time_us = 1234567;
  f.sections.push_back(Section{.kind = SectionKind::kParams,
                               .codec = codec,
                               .flags = 0,
                               .payload = random_bytes(800, 1)});
  f.sections.push_back(Section{.kind = SectionKind::kOptimizer,
                               .codec = codec,
                               .flags = 0,
                               .payload = random_bytes(1600, 2)});
  f.sections.push_back(Section{.kind = SectionKind::kRng,
                               .codec = codec,
                               .flags = 0,
                               .payload = random_bytes(42, 3)});
  if (sim_bytes > 0) {
    f.sections.push_back(Section{.kind = SectionKind::kSimulator,
                                 .codec = codec,
                                 .flags = 0,
                                 .payload = random_bytes(sim_bytes, 4)});
  }
  return f;
}

void expect_equal_files(const CheckpointFile& a, const CheckpointFile& b) {
  EXPECT_EQ(a.checkpoint_id, b.checkpoint_id);
  EXPECT_EQ(a.parent_id, b.parent_id);
  EXPECT_EQ(a.step, b.step);
  EXPECT_EQ(a.time_us, b.time_us);
  ASSERT_EQ(a.sections.size(), b.sections.size());
  for (std::size_t i = 0; i < a.sections.size(); ++i) {
    EXPECT_EQ(a.sections[i].kind, b.sections[i].kind);
    EXPECT_EQ(a.sections[i].flags, b.sections[i].flags);
    EXPECT_EQ(a.sections[i].payload, b.sections[i].payload);
  }
}

// ---------- round trips across codecs ----------

class FormatRoundTrip : public ::testing::TestWithParam<codec::CodecId> {};

TEST_P(FormatRoundTrip, EncodeDecodePreservesEverything) {
  const CheckpointFile f = sample_file(GetParam(), 4096);
  const Bytes blob = encode_checkpoint(f);
  const CheckpointFile back = decode_checkpoint(blob);
  expect_equal_files(f, back);
}

TEST_P(FormatRoundTrip, EncodingIsDeterministic) {
  const CheckpointFile f = sample_file(GetParam());
  EXPECT_EQ(encode_checkpoint(f), encode_checkpoint(f));
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecs, FormatRoundTrip,
    ::testing::ValuesIn(std::vector<codec::CodecId>(
        std::begin(codec::kAllCodecs), std::end(codec::kAllCodecs))),
    [](const auto& info) {
      std::string n = codec::codec_name(info.param);
      for (char& c : n) {
        if (c == '+') {
          c = '_';
        }
      }
      return n;
    });

TEST(Format, EmptySectionsAndZeroLengthPayloads) {
  CheckpointFile f;
  f.checkpoint_id = 1;
  const Bytes blob = encode_checkpoint(f);
  expect_equal_files(f, decode_checkpoint(blob));

  CheckpointFile g;
  g.checkpoint_id = 2;
  g.sections.push_back(Section{.kind = SectionKind::kParams,
                               .codec = codec::CodecId::kLz,
                               .flags = 0,
                               .payload = {}});
  expect_equal_files(g, decode_checkpoint(encode_checkpoint(g)));
}

TEST(Format, FindLocatesSections) {
  const CheckpointFile f = sample_file(codec::CodecId::kRaw);
  ASSERT_NE(f.find(SectionKind::kParams), nullptr);
  EXPECT_EQ(f.find(SectionKind::kParams)->payload.size(), 800u);
  EXPECT_EQ(f.find(SectionKind::kSimulator), nullptr);
}

TEST(Format, DeltaFlagSurvivesRoundTrip) {
  CheckpointFile f = sample_file(codec::CodecId::kRle);
  f.parent_id = 6;
  f.sections[0].flags |= kSectionFlagDelta;
  const CheckpointFile back = decode_checkpoint(encode_checkpoint(f));
  EXPECT_TRUE(back.is_incremental());
  EXPECT_TRUE(back.sections[0].is_delta());
  EXPECT_FALSE(back.sections[1].is_delta());
}

// ---------- corruption detection ----------

TEST(FormatCorruption, BadMagicRejected) {
  Bytes blob = encode_checkpoint(sample_file(codec::CodecId::kRaw));
  blob[0] = 'X';
  EXPECT_THROW(decode_checkpoint(blob), CorruptCheckpoint);
}

TEST(FormatCorruption, UnsupportedVersionRejected) {
  Bytes blob = encode_checkpoint(sample_file(codec::CodecId::kRaw));
  blob[4] = 0x7F;  // version low byte
  EXPECT_THROW(decode_checkpoint(blob), CorruptCheckpoint);
}

/// Flip a single bit at a parameterised relative position: every flip
/// anywhere in the file must be detected by strict decoding.
class BitFlipSweep : public ::testing::TestWithParam<int> {};

TEST_P(BitFlipSweep, AnySingleBitFlipDetected) {
  Bytes blob = encode_checkpoint(sample_file(codec::CodecId::kLz, 2048));
  const std::size_t total_bits = blob.size() * 8;
  // 0..99 relative positions spread across the file.
  const std::size_t bit =
      static_cast<std::size_t>(GetParam()) * (total_bits - 1) / 99;
  blob[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  EXPECT_THROW(decode_checkpoint(blob), CorruptCheckpoint) << "bit " << bit;
}

INSTANTIATE_TEST_SUITE_P(HundredPositions, BitFlipSweep,
                         ::testing::Range(0, 100));

/// Truncate the file at a parameterised fraction: all truncations must be
/// detected.
class TruncationSweep : public ::testing::TestWithParam<int> {};

TEST_P(TruncationSweep, AnyTruncationDetected) {
  Bytes blob = encode_checkpoint(sample_file(codec::CodecId::kRle, 1024));
  const std::size_t keep = blob.size() * static_cast<std::size_t>(GetParam()) / 40;
  if (keep >= blob.size() || keep < 4) {
    GTEST_SKIP() << "degenerate cut";
  }
  blob.resize(keep);
  EXPECT_THROW(decode_checkpoint(blob), CorruptCheckpoint);
}

INSTANTIATE_TEST_SUITE_P(FortyCuts, TruncationSweep, ::testing::Range(1, 40));

TEST(FormatCorruption, AppendedGarbageDetected) {
  Bytes blob = encode_checkpoint(sample_file(codec::CodecId::kRaw));
  blob.push_back(0x00);
  EXPECT_THROW(decode_checkpoint(blob), CorruptCheckpoint);
}

// ---------- salvage ----------

TEST(Salvage, IntactFileFullyRecovered) {
  const CheckpointFile f = sample_file(codec::CodecId::kLz);
  const auto result = salvage_checkpoint(encode_checkpoint(f));
  ASSERT_TRUE(result.file.has_value());
  EXPECT_TRUE(result.fully_intact);
  EXPECT_TRUE(result.notes.empty());
  EXPECT_EQ(result.file->sections.size(), f.sections.size());
}

TEST(Salvage, CorruptSectionSkippedOthersSurvive) {
  const CheckpointFile f = sample_file(codec::CodecId::kRaw);
  Bytes blob = encode_checkpoint(f);
  // Corrupt the optimizer section payload: find its bytes. The params
  // section payload (800 raw bytes) starts after the header; flip a byte
  // deep in the second section region.
  blob[100 + 800 + 200] ^= 0xFF;
  const auto result = salvage_checkpoint(blob);
  ASSERT_TRUE(result.file.has_value());
  EXPECT_FALSE(result.fully_intact);
  EXPECT_FALSE(result.notes.empty());
  // params section should have survived; optimizer dropped.
  EXPECT_NE(result.file->find(SectionKind::kParams), nullptr);
  EXPECT_EQ(result.file->find(SectionKind::kOptimizer), nullptr);
}

TEST(Salvage, TailTruncationKeepsLeadingSections) {
  const CheckpointFile f = sample_file(codec::CodecId::kRaw, 4096);
  Bytes blob = encode_checkpoint(f);
  blob.resize(blob.size() - 2048);  // lose the simulator tail + footer
  const auto result = salvage_checkpoint(blob);
  ASSERT_TRUE(result.file.has_value());
  EXPECT_FALSE(result.fully_intact);
  EXPECT_NE(result.file->find(SectionKind::kParams), nullptr);
  EXPECT_EQ(result.file->find(SectionKind::kSimulator), nullptr);
}

TEST(Salvage, HopelessGarbageReturnsNullopt) {
  const Bytes junk = random_bytes(256, 99);
  const auto result = salvage_checkpoint(junk);
  EXPECT_FALSE(result.file.has_value());
  EXPECT_FALSE(result.fully_intact);
}

// ---------- section kind names ----------

TEST(Format, SectionKindNamesStable) {
  EXPECT_EQ(section_kind_name(SectionKind::kParams), "params");
  EXPECT_EQ(section_kind_name(SectionKind::kSimulator), "simulator");
  EXPECT_EQ(section_kind_name(static_cast<SectionKind>(999)),
            "unknown(999)");
}

}  // namespace
}  // namespace qnn::ckpt

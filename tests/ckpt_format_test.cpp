// Tests for the checkpoint container format: round-trips, corruption
// detection sweeps, truncation, salvage.
#include <gtest/gtest.h>

#include "ckpt/format.hpp"
#include "ckpt/state_codec.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace qnn::ckpt {
namespace {

Bytes random_bytes(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  Bytes out(n);
  for (auto& b : out) {
    b = static_cast<std::uint8_t>(rng());
  }
  return out;
}

CheckpointFile sample_file(codec::CodecId codec, std::size_t sim_bytes = 0) {
  CheckpointFile f;
  f.checkpoint_id = 7;
  f.parent_id = 0;
  f.step = 120;
  f.time_us = 1234567;
  f.sections.push_back(Section{.kind = SectionKind::kParams,
                               .codec = codec,
                               .flags = 0,
                               .payload = random_bytes(800, 1)});
  f.sections.push_back(Section{.kind = SectionKind::kOptimizer,
                               .codec = codec,
                               .flags = 0,
                               .payload = random_bytes(1600, 2)});
  f.sections.push_back(Section{.kind = SectionKind::kRng,
                               .codec = codec,
                               .flags = 0,
                               .payload = random_bytes(42, 3)});
  if (sim_bytes > 0) {
    f.sections.push_back(Section{.kind = SectionKind::kSimulator,
                                 .codec = codec,
                                 .flags = 0,
                                 .payload = random_bytes(sim_bytes, 4)});
  }
  return f;
}

void expect_equal_files(const CheckpointFile& a, const CheckpointFile& b) {
  EXPECT_EQ(a.checkpoint_id, b.checkpoint_id);
  EXPECT_EQ(a.parent_id, b.parent_id);
  EXPECT_EQ(a.step, b.step);
  EXPECT_EQ(a.time_us, b.time_us);
  ASSERT_EQ(a.sections.size(), b.sections.size());
  for (std::size_t i = 0; i < a.sections.size(); ++i) {
    EXPECT_EQ(a.sections[i].kind, b.sections[i].kind);
    EXPECT_EQ(a.sections[i].flags, b.sections[i].flags);
    EXPECT_EQ(a.sections[i].payload, b.sections[i].payload);
  }
}

// ---------- round trips across codecs ----------

class FormatRoundTrip : public ::testing::TestWithParam<codec::CodecId> {};

TEST_P(FormatRoundTrip, EncodeDecodePreservesEverything) {
  const CheckpointFile f = sample_file(GetParam(), 4096);
  const Bytes blob = encode_checkpoint(f);
  const CheckpointFile back = decode_checkpoint(blob);
  expect_equal_files(f, back);
}

TEST_P(FormatRoundTrip, EncodingIsDeterministic) {
  const CheckpointFile f = sample_file(GetParam());
  EXPECT_EQ(encode_checkpoint(f), encode_checkpoint(f));
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecs, FormatRoundTrip,
    ::testing::ValuesIn(std::vector<codec::CodecId>(
        std::begin(codec::kAllCodecs), std::end(codec::kAllCodecs))),
    [](const auto& info) {
      std::string n = codec::codec_name(info.param);
      for (char& c : n) {
        if (c == '+') {
          c = '_';
        }
      }
      return n;
    });

TEST(Format, EmptySectionsAndZeroLengthPayloads) {
  CheckpointFile f;
  f.checkpoint_id = 1;
  const Bytes blob = encode_checkpoint(f);
  expect_equal_files(f, decode_checkpoint(blob));

  CheckpointFile g;
  g.checkpoint_id = 2;
  g.sections.push_back(Section{.kind = SectionKind::kParams,
                               .codec = codec::CodecId::kLz,
                               .flags = 0,
                               .payload = {}});
  expect_equal_files(g, decode_checkpoint(encode_checkpoint(g)));
}

TEST(Format, FindLocatesSections) {
  const CheckpointFile f = sample_file(codec::CodecId::kRaw);
  ASSERT_NE(f.find(SectionKind::kParams), nullptr);
  EXPECT_EQ(f.find(SectionKind::kParams)->payload.size(), 800u);
  EXPECT_EQ(f.find(SectionKind::kSimulator), nullptr);
}

TEST(Format, DeltaFlagSurvivesRoundTrip) {
  CheckpointFile f = sample_file(codec::CodecId::kRle);
  f.parent_id = 6;
  f.sections[0].flags |= kSectionFlagDelta;
  const CheckpointFile back = decode_checkpoint(encode_checkpoint(f));
  EXPECT_TRUE(back.is_incremental());
  EXPECT_TRUE(back.sections[0].is_delta());
  EXPECT_FALSE(back.sections[1].is_delta());
}

// ---------- chunked sections (format v2) ----------

class ChunkedRoundTrip : public ::testing::TestWithParam<codec::CodecId> {};

TEST_P(ChunkedRoundTrip, LargeSectionsChunkAndRoundTrip) {
  const CheckpointFile f = sample_file(GetParam(), 8192);
  EncodeOptions options;
  options.chunk_bytes = 512;  // force several chunks per large section
  const Bytes blob = encode_checkpoint(f, options);
  const CheckpointFile back = decode_checkpoint(blob);
  // Payloads round-trip and the chunked flag never leaks into memory.
  expect_equal_files(f, back);
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecs, ChunkedRoundTrip,
    ::testing::ValuesIn(std::vector<codec::CodecId>(
        std::begin(codec::kAllCodecs), std::end(codec::kAllCodecs))),
    [](const auto& info) {
      std::string n = codec::codec_name(info.param);
      for (char& c : n) {
        if (c == '+') {
          c = '_';
        }
      }
      return n;
    });

TEST(Chunked, ParallelEncodeIsByteIdenticalToSerial) {
  const CheckpointFile f = sample_file(codec::CodecId::kLz, 16384);
  EncodeOptions serial;
  serial.chunk_bytes = 256;
  EncodeOptions parallel = serial;
  util::ThreadPool pool(4);
  parallel.pool = &pool;
  EXPECT_EQ(encode_checkpoint(f, serial), encode_checkpoint(f, parallel));
}

TEST(Chunked, SmallSectionsStayUnchunked) {
  // Below the chunk threshold sections must be stored as plain codec
  // streams. Decoded Sections always have the chunked flag stripped, so
  // walk the raw blob's section headers instead.
  const CheckpointFile f = sample_file(codec::CodecId::kRaw);
  const Bytes blob = encode_checkpoint(f);
  std::size_t off = 4 + 2 + 2 + 8 * 4;  // magic, version, flags, ids/times
  const auto n_sections = util::get_le<std::uint32_t>(blob, off);
  ASSERT_EQ(n_sections, f.sections.size());
  for (std::uint32_t i = 0; i < n_sections; ++i) {
    (void)util::get_le<std::uint16_t>(blob, off);  // kind
    (void)util::get_le<std::uint8_t>(blob, off);   // codec
    const auto flags = util::get_le<std::uint8_t>(blob, off);
    EXPECT_EQ(flags & kSectionFlagChunked, 0) << "section " << i;
    (void)util::get_le<std::uint64_t>(blob, off);  // raw_len
    const auto enc_len = util::get_le<std::uint64_t>(blob, off);
    (void)util::get_le<std::uint32_t>(blob, off);  // crc
    off += enc_len;
  }
}

TEST(Chunked, LargeSectionHeaderCarriesChunkedFlag) {
  // The inverse of the test above: an oversized section's on-disk header
  // must set the chunked flag (one section only, so it is the first).
  CheckpointFile f;
  f.checkpoint_id = 1;
  f.sections.push_back(Section{.kind = SectionKind::kSimulator,
                               .codec = codec::CodecId::kRaw,
                               .flags = 0,
                               .payload = random_bytes(4096, 9)});
  EncodeOptions options;
  options.chunk_bytes = 512;
  const Bytes blob = encode_checkpoint(f, options);
  std::size_t off = 4 + 2 + 2 + 8 * 4 + 4 + 2 + 1;  // ...kind, codec
  const auto flags = util::get_le<std::uint8_t>(blob, off);
  EXPECT_NE(flags & kSectionFlagChunked, 0);
  expect_equal_files(f, decode_checkpoint(blob));
}

TEST(Chunked, ChunkCorruptionDetectedStrictAndSalvaged) {
  const CheckpointFile f = sample_file(codec::CodecId::kRaw, 8192);
  EncodeOptions options;
  options.chunk_bytes = 1024;
  Bytes blob = encode_checkpoint(f, options);
  // Flip a byte deep inside the simulator section's chunk frame.
  blob[blob.size() - 1500] ^= 0xFF;
  EXPECT_THROW(decode_checkpoint(blob), CorruptCheckpoint);
  const auto salvaged = salvage_checkpoint(blob);
  ASSERT_TRUE(salvaged.file.has_value());
  EXPECT_FALSE(salvaged.fully_intact);
  // The untouched leading sections survive; the corrupted one is dropped.
  EXPECT_NE(salvaged.file->find(SectionKind::kParams), nullptr);
  EXPECT_EQ(salvaged.file->find(SectionKind::kSimulator), nullptr);
}

TEST(Chunked, TinyChunkSizeIsClampedNotFatal) {
  const CheckpointFile f = sample_file(codec::CodecId::kRle, 4096);
  EncodeOptions options;
  options.chunk_bytes = 1;  // clamped to the format's minimum
  expect_equal_files(f, decode_checkpoint(encode_checkpoint(f, options)));
}

// ---------- old-format (v1) compatibility ----------

TEST(FormatCompat, Version1FilesStillDecode) {
  const CheckpointFile f = sample_file(codec::CodecId::kLz, 4096);
  EncodeOptions options;
  options.version = kMinFormatVersion;  // downgrade-compatible encode
  const Bytes blob = encode_checkpoint(f, options);
  std::size_t off = 4;
  EXPECT_EQ(util::get_le<std::uint16_t>(blob, off), kMinFormatVersion);
  expect_equal_files(f, decode_checkpoint(blob));
}

TEST(FormatCompat, Version1NeverChunksEvenHugeSections) {
  const CheckpointFile f = sample_file(codec::CodecId::kRaw, 65536);
  EncodeOptions options;
  options.version = kMinFormatVersion;
  options.chunk_bytes = 256;
  const Bytes blob = encode_checkpoint(f, options);
  expect_equal_files(f, decode_checkpoint(blob));
}

TEST(FormatCompat, FutureVersionRejected) {
  EncodeOptions options;
  options.version = kFormatVersion + 1;
  EXPECT_THROW(encode_checkpoint(sample_file(codec::CodecId::kRaw), options),
               std::invalid_argument);
}

// ---------- corruption detection ----------

TEST(FormatCorruption, BadMagicRejected) {
  Bytes blob = encode_checkpoint(sample_file(codec::CodecId::kRaw));
  blob[0] = 'X';
  EXPECT_THROW(decode_checkpoint(blob), CorruptCheckpoint);
}

TEST(FormatCorruption, UnsupportedVersionRejected) {
  Bytes blob = encode_checkpoint(sample_file(codec::CodecId::kRaw));
  blob[4] = 0x7F;  // version low byte
  EXPECT_THROW(decode_checkpoint(blob), CorruptCheckpoint);
}

/// Flip a single bit at a parameterised relative position: every flip
/// anywhere in the file must be detected by strict decoding.
class BitFlipSweep : public ::testing::TestWithParam<int> {};

TEST_P(BitFlipSweep, AnySingleBitFlipDetected) {
  Bytes blob = encode_checkpoint(sample_file(codec::CodecId::kLz, 2048));
  const std::size_t total_bits = blob.size() * 8;
  // 0..99 relative positions spread across the file.
  const std::size_t bit =
      static_cast<std::size_t>(GetParam()) * (total_bits - 1) / 99;
  blob[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  EXPECT_THROW(decode_checkpoint(blob), CorruptCheckpoint) << "bit " << bit;
}

INSTANTIATE_TEST_SUITE_P(HundredPositions, BitFlipSweep,
                         ::testing::Range(0, 100));

/// Truncate the file at a parameterised fraction: all truncations must be
/// detected.
class TruncationSweep : public ::testing::TestWithParam<int> {};

TEST_P(TruncationSweep, AnyTruncationDetected) {
  Bytes blob = encode_checkpoint(sample_file(codec::CodecId::kRle, 1024));
  const std::size_t keep = blob.size() * static_cast<std::size_t>(GetParam()) / 40;
  if (keep >= blob.size() || keep < 4) {
    GTEST_SKIP() << "degenerate cut";
  }
  blob.resize(keep);
  EXPECT_THROW(decode_checkpoint(blob), CorruptCheckpoint);
}

INSTANTIATE_TEST_SUITE_P(FortyCuts, TruncationSweep, ::testing::Range(1, 40));

TEST(FormatCorruption, AppendedGarbageDetected) {
  Bytes blob = encode_checkpoint(sample_file(codec::CodecId::kRaw));
  blob.push_back(0x00);
  EXPECT_THROW(decode_checkpoint(blob), CorruptCheckpoint);
}

// ---------- salvage ----------

TEST(Salvage, IntactFileFullyRecovered) {
  const CheckpointFile f = sample_file(codec::CodecId::kLz);
  const auto result = salvage_checkpoint(encode_checkpoint(f));
  ASSERT_TRUE(result.file.has_value());
  EXPECT_TRUE(result.fully_intact);
  EXPECT_TRUE(result.notes.empty());
  EXPECT_EQ(result.file->sections.size(), f.sections.size());
}

TEST(Salvage, CorruptSectionSkippedOthersSurvive) {
  const CheckpointFile f = sample_file(codec::CodecId::kRaw);
  Bytes blob = encode_checkpoint(f);
  // Corrupt the optimizer section payload: find its bytes. The params
  // section payload (800 raw bytes) starts after the header; flip a byte
  // deep in the second section region.
  blob[100 + 800 + 200] ^= 0xFF;
  const auto result = salvage_checkpoint(blob);
  ASSERT_TRUE(result.file.has_value());
  EXPECT_FALSE(result.fully_intact);
  EXPECT_FALSE(result.notes.empty());
  // params section should have survived; optimizer dropped.
  EXPECT_NE(result.file->find(SectionKind::kParams), nullptr);
  EXPECT_EQ(result.file->find(SectionKind::kOptimizer), nullptr);
}

TEST(Salvage, TailTruncationKeepsLeadingSections) {
  const CheckpointFile f = sample_file(codec::CodecId::kRaw, 4096);
  Bytes blob = encode_checkpoint(f);
  blob.resize(blob.size() - 2048);  // lose the simulator tail + footer
  const auto result = salvage_checkpoint(blob);
  ASSERT_TRUE(result.file.has_value());
  EXPECT_FALSE(result.fully_intact);
  EXPECT_NE(result.file->find(SectionKind::kParams), nullptr);
  EXPECT_EQ(result.file->find(SectionKind::kSimulator), nullptr);
}

TEST(Salvage, HopelessGarbageReturnsNullopt) {
  const Bytes junk = random_bytes(256, 99);
  const auto result = salvage_checkpoint(junk);
  EXPECT_FALSE(result.file.has_value());
  EXPECT_FALSE(result.fully_intact);
}

// ---------- section kind names ----------

TEST(Format, SectionKindNamesStable) {
  EXPECT_EQ(section_kind_name(SectionKind::kParams), "params");
  EXPECT_EQ(section_kind_name(SectionKind::kSimulator), "simulator");
  EXPECT_EQ(section_kind_name(static_cast<SectionKind>(999)),
            "unknown(999)");
}

}  // namespace
}  // namespace qnn::ckpt

// Tests for the density-matrix simulator and its agreement with both the
// pure-state simulator (noiseless) and the trajectory noise sampler
// (noisy, in expectation).
#include <gtest/gtest.h>

#include <cmath>

#include "qnn/ansatz.hpp"
#include "sim/density_matrix.hpp"
#include "sim/gates.hpp"
#include "sim/noise.hpp"
#include "sim/pauli.hpp"

namespace qnn::sim {
namespace {

constexpr double kTol = 1e-12;

TEST(DensityMatrix, InitialStateIsPureZero) {
  DensityMatrix rho(2);
  EXPECT_NEAR(rho.trace(), 1.0, kTol);
  EXPECT_NEAR(rho.purity(), 1.0, kTol);
  EXPECT_NEAR(std::abs(rho.element(0, 0) - cplx{1.0, 0.0}), 0.0, kTol);
}

TEST(DensityMatrix, TooManyQubitsRejected) {
  EXPECT_THROW(DensityMatrix(13), std::invalid_argument);
}

TEST(DensityMatrix, FromStateMatchesOuterProduct) {
  StateVector psi(1);
  psi.apply_1q(gates::H(), 0);
  const DensityMatrix rho = DensityMatrix::from_state(psi);
  EXPECT_NEAR(std::abs(rho.element(0, 1) - cplx{0.5, 0.0}), 0.0, kTol);
  EXPECT_NEAR(rho.purity(), 1.0, kTol);
  EXPECT_NEAR(rho.fidelity(psi), 1.0, kTol);
}

TEST(DensityMatrix, UnitaryEvolutionMatchesStateVector) {
  const Circuit c = qnn::random_circuit(4, 30, 321);
  const StateVector psi = c.run({});
  DensityMatrix rho(4);
  rho.apply(c, {});
  EXPECT_NEAR(rho.fidelity(psi), 1.0, 1e-10);
  EXPECT_NEAR(rho.purity(), 1.0, 1e-10);
  EXPECT_NEAR(rho.max_abs_diff(DensityMatrix::from_state(psi)), 0.0, 1e-10);
}

TEST(DensityMatrix, ExpectationMatchesStateVectorPath) {
  const Circuit c = qnn::random_circuit(3, 25, 55);
  const StateVector psi = c.run({});
  DensityMatrix rho(3);
  rho.apply(c, {});
  const Observable h = transverse_field_ising(3, 1.0, 0.7);
  EXPECT_NEAR(rho.expectation(h), h.expectation(psi), 1e-10);
  const Observable parity = parity_observable(3);
  EXPECT_NEAR(rho.expectation(parity), parity.expectation(psi), 1e-10);
}

TEST(DensityMatrix, ProbabilityOneMatchesStateVector) {
  const Circuit c = qnn::random_circuit(3, 20, 77);
  const StateVector psi = c.run({});
  DensityMatrix rho(3);
  rho.apply(c, {});
  for (std::size_t q = 0; q < 3; ++q) {
    EXPECT_NEAR(rho.probability_one(q), psi.probability_one(q), 1e-10);
  }
}

TEST(DensityMatrix, ValidationErrors) {
  DensityMatrix rho(2);
  EXPECT_THROW(rho.apply_1q(gates::X(), 2), std::out_of_range);
  EXPECT_THROW(rho.apply_2q(gates::CX(), 0, 0), std::invalid_argument);
  EXPECT_THROW(rho.expectation(Observable(3)), std::invalid_argument);
  EXPECT_THROW(rho.fidelity(StateVector(3)), std::invalid_argument);
  EXPECT_THROW(rho.mix_with(DensityMatrix(1), 0.5), std::invalid_argument);
  EXPECT_THROW(rho.mix_with(DensityMatrix(2), 1.5), std::invalid_argument);
  // Non-trace-preserving Kraus set rejected (0.5*I alone sums to I/4).
  const Mat2 half_identity{0.5, 0.0, 0.0, 0.5};
  EXPECT_THROW(rho.apply_channel_1q({half_identity}, 0),
               std::invalid_argument);
  // But a partial set summing wrong also rejected.
  EXPECT_THROW(rho.apply_channel_1q(channels::bit_flip(1.5), 0),
               std::invalid_argument);
}

// ---------- channels ----------

TEST(Channels, FullDepolarizingGivesMaximallyMixedQubit) {
  DensityMatrix rho(1);
  rho.apply_channel_1q(channels::depolarizing(0.75), 0);
  // p=3/4 uniform-Pauli channel is the fully depolarising channel:
  // rho -> I/2 for any input.
  EXPECT_NEAR(std::abs(rho.element(0, 0) - cplx{0.5, 0.0}), 0.0, kTol);
  EXPECT_NEAR(std::abs(rho.element(1, 1) - cplx{0.5, 0.0}), 0.0, kTol);
  EXPECT_NEAR(rho.purity(), 0.5, kTol);
}

TEST(Channels, AmplitudeDampingFixesGroundState) {
  DensityMatrix rho(1);  // already |0><0|
  rho.apply_channel_1q(channels::amplitude_damping(0.3), 0);
  EXPECT_NEAR(std::abs(rho.element(0, 0) - cplx{1.0, 0.0}), 0.0, kTol);
}

TEST(Channels, AmplitudeDampingDecaysExcitedState) {
  DensityMatrix rho(1);
  rho.apply_1q(gates::X(), 0);  // |1><1|
  rho.apply_channel_1q(channels::amplitude_damping(0.3), 0);
  EXPECT_NEAR(rho.probability_one(0), 0.7, kTol);
  EXPECT_NEAR(rho.trace(), 1.0, kTol);
}

TEST(Channels, PhaseFlipKillsCoherence) {
  DensityMatrix rho(1);
  rho.apply_1q(gates::H(), 0);
  rho.apply_channel_1q(channels::phase_flip(0.5), 0);
  // p=1/2 phase flip fully dephases: off-diagonals vanish.
  EXPECT_NEAR(std::abs(rho.element(0, 1)), 0.0, kTol);
  EXPECT_NEAR(rho.probability_one(0), 0.5, kTol);
}

TEST(Channels, TracePreservedUnderAllChannels) {
  const Circuit prep = qnn::random_circuit(2, 10, 11);
  for (double p : {0.0, 0.1, 0.5, 1.0}) {
    DensityMatrix rho(2);
    rho.apply(prep, {});
    rho.apply_channel_1q(channels::depolarizing(std::min(p, 0.75)), 0);
    rho.apply_channel_1q(channels::amplitude_damping(p), 1);
    rho.apply_channel_1q(channels::bit_flip(p), 0);
    rho.apply_channel_1q(channels::phase_flip(p), 1);
    EXPECT_NEAR(rho.trace(), 1.0, 1e-10) << "p=" << p;
  }
}

TEST(DensityMatrix, MixWithBlendsStates) {
  DensityMatrix zero(1);
  DensityMatrix one(1);
  one.apply_1q(gates::X(), 0);
  zero.mix_with(one, 0.25);
  EXPECT_NEAR(zero.probability_one(0), 0.25, kTol);
  EXPECT_NEAR(zero.trace(), 1.0, kTol);
  EXPECT_LT(zero.purity(), 1.0);
}

// ---------- the validation property: trajectories -> density matrix ----

class TrajectoryConvergence : public ::testing::TestWithParam<int> {};

TEST_P(TrajectoryConvergence, TrajectoryAverageMatchesExactChannel) {
  const int seed = GetParam();
  const Circuit c = qnn::random_circuit(3, 12, 1000 + seed);
  NoiseModel model;
  model.depolarizing_1q = 0.05;
  model.depolarizing_2q = 0.08;
  model.bit_flip = 0.02;
  model.phase_flip = 0.02;

  // Exact: one density-matrix evolution.
  const DensityMatrix exact = run_density_with_noise(c, {}, model);

  // Sampled: average projectors over many pure trajectories.
  util::Rng rng(static_cast<std::uint64_t>(seed) * 101 + 7);
  const Observable obs = transverse_field_ising(3, 1.0, 0.5);
  const int trials = 3000;
  double mean_e = 0.0;
  for (int t = 0; t < trials; ++t) {
    const StateVector traj = run_with_noise(c, {}, model, rng);
    mean_e += obs.expectation(traj);
  }
  mean_e /= trials;

  EXPECT_NEAR(mean_e, exact.expectation(obs), 0.08)
      << "trajectory mean diverged from exact channel";
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrajectoryConvergence, ::testing::Range(0, 4));

TEST(TrajectoryConvergence, AmplitudeDampingAgreesInExpectation) {
  // Pure amplitude damping on a rotated state.
  Circuit c(1);
  c.ry(0, 1.1);
  for (int i = 0; i < 5; ++i) {
    c.rz(0, 0.0);  // noise carriers
  }
  NoiseModel model;
  model.amplitude_damping = 0.1;
  const DensityMatrix exact = run_density_with_noise(c, {}, model);

  util::Rng rng(5);
  double mean_p1 = 0.0;
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    mean_p1 += run_with_noise(c, {}, model, rng).probability_one(0);
  }
  mean_p1 /= trials;
  EXPECT_NEAR(mean_p1, exact.probability_one(0), 0.02);
}

}  // namespace
}  // namespace qnn::sim

// Tests for the qnnqasm circuit text dialect.
#include <gtest/gtest.h>

#include "qnn/ansatz.hpp"
#include "sim/circuit_io.hpp"

namespace qnn::sim {
namespace {

TEST(CircuitIo, EmptyCircuitRoundTrip) {
  const Circuit c(3);
  const Circuit back = circuit_from_text(circuit_to_text(c));
  EXPECT_EQ(back.num_qubits(), 3u);
  EXPECT_EQ(back.gate_count(), 0u);
  EXPECT_EQ(back.fingerprint(), c.fingerprint());
}

class AnsatzRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(AnsatzRoundTrip, TextPreservesFingerprintAndSemantics) {
  Circuit c = [&]() -> Circuit {
    switch (GetParam()) {
      case 0: return qnn::hardware_efficient(3, 2);
      case 1: return qnn::strongly_entangling(4, 2);
      case 2: return qnn::qaoa_ansatz(4, 3);
      default: return qnn::random_circuit(4, 25, 99);
    }
  }();
  const std::string text = circuit_to_text(c);
  const Circuit back = circuit_from_text(text);

  EXPECT_EQ(back.fingerprint(), c.fingerprint());
  EXPECT_EQ(back.num_params(), c.num_params());
  EXPECT_EQ(back.gate_count(), c.gate_count());

  // Semantics: identical output state under a random parameter binding.
  util::Rng rng(11);
  std::vector<double> params(c.num_params());
  for (double& p : params) {
    p = rng.uniform(-3.0, 3.0);
  }
  EXPECT_EQ(c.run(params), back.run(params));
}

INSTANTIATE_TEST_SUITE_P(AllAnsaetze, AnsatzRoundTrip, ::testing::Range(0, 4));

TEST(CircuitIo, ExactDoubleRoundTrip) {
  Circuit c(1);
  c.rx(0, 0.1 + 0.2);  // a value with no short decimal representation
  c.rz(0, 1e-300);
  const Circuit back = circuit_from_text(circuit_to_text(c));
  EXPECT_EQ(back.fingerprint(), c.fingerprint());
}

TEST(CircuitIo, CommentsAndBlankLinesIgnored) {
  const std::string text =
      "qnnqasm 1\n"
      "qubits 2\n"
      "params 1\n"
      "\n"
      "# entangle\n"
      "h q0\n"
      "  cx q0 q1  \n"
      "ry q1 p0 * 2\n";
  const Circuit c = circuit_from_text(text);
  EXPECT_EQ(c.gate_count(), 3u);
  EXPECT_EQ(c.num_params(), 1u);
  EXPECT_EQ(c.ops()[2].coeff, 2.0);
}

TEST(CircuitIo, ParseErrorsAreLineNumbered) {
  auto expect_error = [](const std::string& text, const std::string& what) {
    try {
      circuit_from_text(text);
      FAIL() << "expected parse failure for: " << what;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("line"), std::string::npos)
          << e.what();
    }
  };
  expect_error("nope\n", "bad header");
  expect_error("qnnqasm 1\nqubits x\n", "bad qubit count");
  expect_error("qnnqasm 1\nqubits 2\nparams 0\nfoo q0\n", "unknown gate");
  expect_error("qnnqasm 1\nqubits 2\nparams 0\nh q9\n", "qubit range");
  expect_error("qnnqasm 1\nqubits 2\nparams 0\ncx q0 q0\n", "same qubits");
  expect_error("qnnqasm 1\nqubits 2\nparams 1\nrx q0 p7 * 1\n", "bad slot");
  expect_error("qnnqasm 1\nqubits 2\nparams 0\nrx q0\n", "missing angle");
  expect_error("qnnqasm 1\nqubits 2\nparams 0\nrx q0 theta abc\n",
               "bad number");
  expect_error("qnnqasm 1\nqubits 2\nparams 0\nh q0 q1\n",
               "trailing tokens");
}

TEST(CircuitIo, TextIsHumanOrdered) {
  Circuit c(2);
  c.h(0);
  auto p = c.new_param();
  c.crz(0, 1, p);
  const std::string text = circuit_to_text(c);
  EXPECT_NE(text.find("h q0"), std::string::npos);
  EXPECT_NE(text.find("crz q0 q1 p0 * 1"), std::string::npos);
}

}  // namespace
}  // namespace qnn::sim

// Fuzz-style randomized recovery: a seeded matrix of checkpoint
// directories (random strategy, codec, retention, chain shape) is hit
// with random corruption — bit flips, truncations, file and manifest
// deletions — and recovery must then either
//
//   * return a state byte-identical to one the scenario actually
//     checkpointed (checked against a per-step digest of every state
//     written), or
//   * fail loudly (std::nullopt / a thrown CorruptCheckpoint),
//
// but NEVER hand back parameters that no checkpoint contained. Each seed
// is fully deterministic; a failure message names the seed to replay.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "ckpt/checkpointer.hpp"
#include "ckpt/recovery.hpp"
#include "io/mem_env.hpp"
#include "qnn/loss.hpp"
#include "util/crc.hpp"
#include "util/rng.hpp"

namespace qnn::ckpt {
namespace {

qnn::TrainingState make_state(std::uint64_t step, std::uint64_t seed,
                              std::size_t sim_qubits) {
  qnn::TrainingState s;
  s.step = step;
  util::Rng rng(seed * 977 + step);
  s.params.resize(20);
  for (double& p : s.params) {
    p = rng.uniform(-3.0, 3.0);
  }
  s.optimizer_name = "adam";
  s.optimizer_state.resize(128);
  for (auto& b : s.optimizer_state) {
    b = static_cast<std::uint8_t>(rng());
  }
  s.rng_state = rng.serialize();
  s.loss_history.assign(step, 0.5);
  s.epoch = step / 5;
  s.cursor = step % 5;
  s.permutation = {0, 1, 2, 3};
  s.workload_tag = "vqe";
  if (sim_qubits > 0) {
    s.simulator_state = qnn::random_state(sim_qubits, seed).serialize();
  }
  return s;
}

/// Digest of the bytes recovery must reproduce exactly.
std::uint64_t state_digest(const qnn::TrainingState& s) {
  util::Bytes buf;
  util::put_le<std::uint64_t>(buf, s.step);
  util::put_vector(buf, s.params);
  util::put_bytes(buf, s.optimizer_state);
  util::put_bytes(buf, s.rng_state);
  util::put_vector(buf, s.loss_history);
  util::put_le<std::uint64_t>(buf, s.epoch);
  util::put_le<std::uint64_t>(buf, s.cursor);
  util::put_vector(buf, s.permutation);
  util::put_bytes(buf, s.simulator_state);
  return util::crc64(buf);
}

struct TrialResult {
  bool recovered = false;
  bool corrupt_return = false;  ///< recovery returned a state we never wrote
};

TrialResult run_trial(std::uint64_t seed) {
  util::Rng rng(seed);
  io::MemEnv env;

  CheckpointPolicy policy;
  policy.every_steps = 1;
  policy.strategy = rng.uniform() < 0.5 ? Strategy::kIncremental
                                        : Strategy::kFullState;
  policy.full_every = 2 + rng.uniform_u64(4);
  policy.retention.keep_last = rng.uniform_u64(3) == 0 ? 0 : 3;
  policy.codec = static_cast<codec::CodecId>(rng.uniform_u64(3));
  const std::size_t sim_qubits = rng.uniform_u64(3);  // 0..2

  // Build the directory and record the per-step digests.
  std::map<std::uint64_t, std::uint64_t> digests;  // step -> digest
  const std::uint64_t steps = 4 + rng.uniform_u64(6);
  {
    Checkpointer ck(env, "cp", policy);
    for (std::uint64_t step = 1; step <= steps; ++step) {
      const auto state = make_state(step, seed, sim_qubits);
      digests[step] = state_digest(state);
      ck.maybe_checkpoint(state);
    }
  }

  // Random corruption volley.
  const auto files = env.list_dir("cp");
  const int hits = 1 + static_cast<int>(rng.uniform_u64(4));
  for (int hit = 0; hit < hits; ++hit) {
    const std::string victim =
        "cp/" + files[rng.uniform_u64(files.size())];
    switch (rng.uniform_u64(4)) {
      case 0:
        env.flip_bit(victim, rng());
        break;
      case 1: {
        const auto size = env.file_size(victim);
        if (size && *size > 0) {
          env.truncate(victim, rng.uniform_u64(*size));
        }
        break;
      }
      case 2:
        env.remove_file(victim);
        break;
      default:
        env.remove_file("cp/MANIFEST");
        break;
    }
  }

  TrialResult result;
  const auto outcome = recover_latest(env, "cp");
  if (!outcome) {
    return result;  // loud failure: acceptable
  }
  result.recovered = true;
  const auto want = digests.find(outcome->step);
  if (want == digests.end() ||
      want->second != state_digest(outcome->state)) {
    result.corrupt_return = true;
  }
  return result;
}

TEST(FuzzRecovery, NeverReturnsAStateThatWasNeverCheckpointed) {
  int recovered = 0;
  int lost = 0;
  constexpr std::uint64_t kTrials = 150;
  for (std::uint64_t seed = 1; seed <= kTrials; ++seed) {
    const TrialResult r = run_trial(seed);
    EXPECT_FALSE(r.corrupt_return)
        << "seed " << seed << ": recovery returned a silently-corrupt state";
    recovered += r.recovered ? 1 : 0;
    lost += r.recovered ? 0 : 1;
  }
  // Sanity: the matrix must exercise both outcomes, or the assertions
  // above are vacuous.
  EXPECT_GT(recovered, 0) << "no trial recovered anything";
  EXPECT_GT(lost, 0) << "no trial ever destroyed every checkpoint — "
                        "corruption volley too weak";
  std::printf("fuzz recovery: %d/%d trials recovered, %d lost everything\n",
              recovered, static_cast<int>(kTrials), lost);
}

}  // namespace
}  // namespace qnn::ckpt

// Unit + property tests for the QNN training framework.
#include <gtest/gtest.h>

#include <cmath>

#include "qnn/ansatz.hpp"
#include "qnn/executor.hpp"
#include "qnn/gradient.hpp"
#include "qnn/loss.hpp"
#include "qnn/optimizer.hpp"
#include "qnn/trainer.hpp"
#include "sim/pauli.hpp"

namespace qnn::qnn {
namespace {

// ---------- ansatz builders ----------

TEST(Ansatz, HardwareEfficientShape) {
  const sim::Circuit c = hardware_efficient(4, 3);
  EXPECT_EQ(c.num_qubits(), 4u);
  EXPECT_EQ(c.num_params(), 2u * 4 * (3 + 1));
  EXPECT_EQ(c.two_qubit_gate_count(), 3u * 3);
}

TEST(Ansatz, StronglyEntanglingShape) {
  const sim::Circuit c = strongly_entangling(3, 2);
  EXPECT_EQ(c.num_params(), 3u * 3 * 2);
  EXPECT_EQ(c.two_qubit_gate_count(), 3u * 2);
}

TEST(Ansatz, QaoaSharesParametersAcrossLayerGates) {
  const sim::Circuit c = qaoa_ansatz(5, 3);
  EXPECT_EQ(c.num_params(), 2u * 3);  // gamma+beta per layer only
  EXPECT_GT(c.gate_count(), 6u);
}

TEST(Ansatz, SingleQubitEdgeCases) {
  EXPECT_EQ(hardware_efficient(1, 1).two_qubit_gate_count(), 0u);
  EXPECT_EQ(strongly_entangling(1, 2).two_qubit_gate_count(), 0u);
  const sim::Circuit q = qaoa_ansatz(1, 1);
  EXPECT_EQ(q.num_params(), 2u);
}

TEST(Ansatz, RandomCircuitDeterministicPerSeed) {
  const sim::Circuit a = random_circuit(4, 10, 5);
  const sim::Circuit b = random_circuit(4, 10, 5);
  EXPECT_EQ(a.run({}), b.run({}));
  const sim::Circuit c = random_circuit(4, 10, 6);
  EXPECT_LT(a.run({}).fidelity(c.run({})), 0.999);
}

// ---------- optimisers ----------

TEST(Optimizer, SgdStepDirection) {
  SgdOptimizer opt(0.1);
  std::vector<double> params{1.0, -1.0};
  const std::vector<double> grad{2.0, -4.0};
  opt.step(params, grad);
  EXPECT_DOUBLE_EQ(params[0], 0.8);
  EXPECT_DOUBLE_EQ(params[1], -0.6);
}

TEST(Optimizer, SizeMismatchThrows) {
  AdamOptimizer opt(0.1);
  std::vector<double> params{1.0};
  const std::vector<double> grad{1.0, 2.0};
  EXPECT_THROW(opt.step(params, grad), std::invalid_argument);
}

/// Minimise f(x) = (x-3)^2 with each optimiser; all must converge.
class OptimizerConvergence : public ::testing::TestWithParam<std::string> {};

TEST_P(OptimizerConvergence, QuadraticBowl) {
  auto opt = make_optimizer(GetParam());
  std::vector<double> x{10.0};
  for (int i = 0; i < 2000; ++i) {
    const std::vector<double> grad{2.0 * (x[0] - 3.0)};
    opt->step(x, grad);
  }
  EXPECT_NEAR(x[0], 3.0, 0.05) << GetParam();
}

TEST_P(OptimizerConvergence, SerializeRoundTripContinuesIdentically) {
  auto opt1 = make_optimizer(GetParam());
  std::vector<double> x1{5.0, -2.0};
  for (int i = 0; i < 50; ++i) {
    const std::vector<double> grad{x1[0], x1[1] * 2.0};
    opt1->step(x1, grad);
  }
  // Clone via serialisation mid-run, then both must continue identically.
  auto opt2 = make_optimizer(GetParam());
  opt2->deserialize(opt1->serialize());
  std::vector<double> x2 = x1;
  for (int i = 0; i < 50; ++i) {
    const std::vector<double> g1{x1[0], x1[1] * 2.0};
    const std::vector<double> g2{x2[0], x2[1] * 2.0};
    opt1->step(x1, g1);
    opt2->step(x2, g2);
  }
  EXPECT_EQ(x1, x2);
}

INSTANTIATE_TEST_SUITE_P(AllOptimizers, OptimizerConvergence,
                         ::testing::Values("sgd", "momentum", "adam"),
                         [](const auto& info) { return info.param; });

TEST(Optimizer, AdamStateBytesGrowWithParams) {
  AdamOptimizer opt(0.01);
  std::vector<double> p(100, 1.0);
  const std::vector<double> g(100, 0.1);
  const std::size_t before = opt.state_bytes();
  opt.step(p, g);
  EXPECT_GT(opt.state_bytes(), before);
  EXPECT_EQ(opt.steps_taken(), 1u);
  EXPECT_EQ(opt.first_moment().size(), 100u);
}

TEST(Optimizer, DeserializeRejectsGarbage) {
  AdamOptimizer opt(0.01);
  util::Bytes junk{0xFF, 0x00};
  EXPECT_THROW(opt.deserialize(junk), std::runtime_error);
  EXPECT_THROW(make_optimizer("quantum-sgd"), std::invalid_argument);
}

// ---------- gradients ----------

TEST(Gradient, ParamShiftMatchesFiniteDiffOnVqe) {
  sim::Circuit ansatz = hardware_efficient(3, 1);
  const sim::Observable ham = sim::transverse_field_ising(3, 1.0, 0.5);
  ExpectationLoss loss(std::move(ansatz), ham);

  util::Rng rng(1);
  std::vector<double> params(loss.num_params());
  for (double& p : params) {
    p = rng.uniform(-1.5, 1.5);
  }
  const std::vector<std::uint32_t> all{0};
  const LossFn fn = [&](std::span<const double> p) {
    util::Rng scratch(0);
    return loss.evaluate(p, all, scratch);
  };

  GradientOptions ps;
  ps.method = GradientMethod::kParamShift;
  GradientOptions fd;
  fd.method = GradientMethod::kFiniteDiff;
  fd.fd_eps = 1e-5;
  util::Rng grng(2);
  const auto g1 = estimate_gradient(fn, params, ps, grng);
  const auto g2 = estimate_gradient(fn, params, fd, grng);
  ASSERT_EQ(g1.size(), g2.size());
  for (std::size_t i = 0; i < g1.size(); ++i) {
    EXPECT_NEAR(g1[i], g2[i], 1e-5) << "param " << i;
  }
}

TEST(Gradient, SpsaPointsDownhillOnAverage) {
  sim::Circuit ansatz = hardware_efficient(2, 1);
  const sim::Observable ham = sim::transverse_field_ising(2, 1.0, 0.3);
  ExpectationLoss loss(std::move(ansatz), ham);
  util::Rng rng(3);
  std::vector<double> params(loss.num_params(), 0.4);
  const std::vector<std::uint32_t> all{0};
  const LossFn fn = [&](std::span<const double> p) {
    util::Rng scratch(0);
    return loss.evaluate(p, all, scratch);
  };
  GradientOptions fd;
  fd.method = GradientMethod::kFiniteDiff;
  const auto exact = estimate_gradient(fn, params, fd, rng);

  GradientOptions spsa;
  spsa.method = GradientMethod::kSpsa;
  spsa.spsa_c = 0.05;
  std::vector<double> mean(params.size(), 0.0);
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    const auto g = estimate_gradient(fn, params, spsa, rng);
    for (std::size_t i = 0; i < g.size(); ++i) {
      mean[i] += g[i] / trials;
    }
  }
  double dot = 0.0, n1 = 0.0, n2 = 0.0;
  for (std::size_t i = 0; i < mean.size(); ++i) {
    dot += mean[i] * exact[i];
    n1 += mean[i] * mean[i];
    n2 += exact[i] * exact[i];
  }
  EXPECT_GT(dot / std::sqrt(n1 * n2 + 1e-30), 0.7);
}

TEST(Gradient, EvaluationCounts) {
  EXPECT_EQ(gradient_evaluations(GradientMethod::kParamShift, 10), 20u);
  EXPECT_EQ(gradient_evaluations(GradientMethod::kFiniteDiff, 10), 20u);
  EXPECT_EQ(gradient_evaluations(GradientMethod::kSpsa, 10), 2u);
}

TEST(Gradient, EmptyParamsYieldEmptyGradient) {
  util::Rng rng(4);
  const LossFn fn = [](std::span<const double>) { return 1.0; };
  EXPECT_TRUE(estimate_gradient(fn, {}, GradientOptions{}, rng).empty());
}

// ---------- losses ----------

TEST(Loss, ExpectationLossMatchesObservable) {
  sim::Circuit c(2);
  auto p = c.new_param();
  c.rx(0, p);
  const sim::Observable obs = sim::parity_observable(2);
  ExpectationLoss loss(std::move(c), obs);
  util::Rng rng(5);
  // RX(pi) -> |1>, parity Z0 Z1 = -1.
  const std::vector<double> params{M_PI};
  EXPECT_NEAR(loss.evaluate_all(params, rng), -1.0, 1e-12);
}

TEST(Loss, ExpectationLossValidation) {
  EXPECT_THROW(ExpectationLoss(sim::Circuit(2), sim::parity_observable(3)),
               std::invalid_argument);
  ExpectationLoss::Options opt;
  opt.trajectories = 0;
  EXPECT_THROW(
      ExpectationLoss(sim::Circuit(2), sim::parity_observable(2), opt),
      std::invalid_argument);
}

TEST(Loss, FidelityLossZeroWhenCircuitMatchesHiddenUnitary) {
  // Hidden unitary = identity; untrained ansatz with zero angles is also
  // identity -> loss 0.
  auto data = make_unitary_learning_data(2, 4, 0, 42);  // depth 0 = identity
  sim::Circuit ansatz(2);
  ansatz.rx(0, ansatz.new_param());
  FidelityLoss loss(std::move(ansatz), std::move(data));
  util::Rng rng(6);
  EXPECT_NEAR(loss.evaluate_all(std::vector<double>{0.0}, rng), 0.0, 1e-12);
}

TEST(Loss, FidelityLossBounds) {
  auto data = make_unitary_learning_data(3, 5, 8, 43);
  sim::Circuit ansatz = hardware_efficient(3, 1);
  FidelityLoss loss(std::move(ansatz), std::move(data));
  util::Rng rng(7);
  std::vector<double> params(loss.num_params());
  for (double& p : params) {
    p = rng.uniform(-3.0, 3.0);
  }
  const double l = loss.evaluate_all(params, rng);
  EXPECT_GE(l, 0.0);
  EXPECT_LE(l, 1.0);
}

TEST(Loss, FidelityLossBatchSelection) {
  auto data = make_unitary_learning_data(2, 6, 4, 44);
  sim::Circuit ansatz = hardware_efficient(2, 1);
  FidelityLoss loss(std::move(ansatz), std::move(data));
  EXPECT_EQ(loss.num_samples(), 6u);
  util::Rng rng(8);
  std::vector<double> params(loss.num_params(), 0.1);
  const std::vector<std::uint32_t> batch{0, 3};
  const double l = loss.evaluate(params, batch, rng);
  EXPECT_GE(l, 0.0);
  EXPECT_THROW(loss.evaluate(params, {}, rng), std::invalid_argument);
}

TEST(Loss, ParityLossPerfectClassifierScoresZero) {
  // With zero ansatz angles the readout is the input parity itself.
  auto data = make_parity_data(3, 16, 45);
  sim::Circuit ansatz(3);
  auto p = ansatz.new_param();
  ansatz.rz(0, p);  // rz does not change parity
  ParityLoss loss(std::move(ansatz), std::move(data));
  util::Rng rng(9);
  EXPECT_NEAR(loss.evaluate_all(std::vector<double>{0.0}, rng), 0.0, 1e-12);
  EXPECT_NEAR(loss.accuracy(std::vector<double>{0.0}), 1.0, 1e-12);
}

TEST(Loss, ParityDataLabelsAreParities) {
  for (const auto& sample : make_parity_data(4, 64, 46)) {
    const int expect = std::popcount(sample.bits) % 2 == 0 ? 1 : -1;
    ASSERT_EQ(sample.label, expect);
  }
}

TEST(Loss, ShotNoiseIsDeterministicGivenRngState) {
  auto data = make_parity_data(2, 4, 47);
  sim::Circuit a1 = hardware_efficient(2, 1);
  ParityLoss loss(std::move(a1), data, /*shots=*/64);
  std::vector<double> params(loss.num_params(), 0.3);
  util::Rng r1(50), r2(50);
  const double first = loss.evaluate_all(params, r1);
  EXPECT_EQ(first, loss.evaluate_all(params, r2));
  // A generator at a different stream position gives a different estimate.
  util::Rng other(51);
  EXPECT_NE(first, loss.evaluate_all(params, other));
}

// ---------- trainer ----------

TrainerConfig quick_config(const std::string& opt = "adam") {
  TrainerConfig cfg;
  cfg.optimizer = opt;
  cfg.learning_rate = 0.1;
  cfg.seed = 77;
  return cfg;
}

TEST(Trainer, VqeLossDecreases) {
  sim::Circuit ansatz = hardware_efficient(3, 2);
  ExpectationLoss loss(std::move(ansatz),
                       sim::transverse_field_ising(3, 1.0, 1.0));
  Trainer trainer(loss, quick_config());
  const double initial = trainer.evaluate_full_loss();
  trainer.run(30);
  EXPECT_LT(trainer.evaluate_full_loss(), initial);
  EXPECT_EQ(trainer.step(), 30u);
  EXPECT_EQ(trainer.loss_history().size(), 30u);
}

TEST(Trainer, UnitaryLearningImprovesFidelity) {
  auto data = make_unitary_learning_data(2, 6, 3, 48);
  sim::Circuit ansatz = hardware_efficient(2, 2);
  FidelityLoss loss(std::move(ansatz), std::move(data));
  Trainer trainer(loss, quick_config());
  const double initial = trainer.evaluate_full_loss();
  trainer.run(40);
  EXPECT_LT(trainer.evaluate_full_loss(), initial * 0.9);
}

TEST(Trainer, CallbackCanStopEarly) {
  sim::Circuit ansatz = hardware_efficient(2, 1);
  ExpectationLoss loss(std::move(ansatz),
                       sim::transverse_field_ising(2, 1.0, 0.5));
  Trainer trainer(loss, quick_config());
  const std::size_t executed = trainer.run(
      100, [](const StepInfo& info) { return info.step < 5; });
  EXPECT_EQ(executed, 5u);
  EXPECT_EQ(trainer.step(), 5u);
}

TEST(Trainer, SameSeedSameTrajectory) {
  auto make = [] {
    return hardware_efficient(2, 1);
  };
  ExpectationLoss l1(make(), sim::transverse_field_ising(2, 1.0, 0.7));
  ExpectationLoss l2(make(), sim::transverse_field_ising(2, 1.0, 0.7));
  Trainer t1(l1, quick_config());
  Trainer t2(l2, quick_config());
  t1.run(10);
  t2.run(10);
  EXPECT_EQ(std::vector<double>(t1.params().begin(), t1.params().end()),
            std::vector<double>(t2.params().begin(), t2.params().end()));
  EXPECT_EQ(t1.loss_history(), t2.loss_history());
}

/// The core bit-exact resume property, across optimisers and batch modes.
struct ResumeCase {
  std::string optimizer;
  std::size_t batch_size;
  GradientMethod method;
};

class TrainerResumeProperty : public ::testing::TestWithParam<ResumeCase> {};

TEST_P(TrainerResumeProperty, CaptureRestoreIsBitExact) {
  const ResumeCase rc = GetParam();
  auto data = make_unitary_learning_data(2, 8, 4, 49);

  auto make_loss = [&] {
    return FidelityLoss(hardware_efficient(2, 1), data);
  };
  TrainerConfig cfg = quick_config(rc.optimizer);
  cfg.batch_size = rc.batch_size;
  cfg.gradient.method = rc.method;

  // Reference: 12 uninterrupted steps.
  FidelityLoss loss_ref = make_loss();
  Trainer reference(loss_ref, cfg);
  reference.run(12);

  // Interrupted: 7 steps, capture, restore into a *fresh* trainer, 5 more.
  FidelityLoss loss_a = make_loss();
  Trainer first(loss_a, cfg);
  first.run(7);
  const TrainingState snapshot = first.capture();

  FidelityLoss loss_b = make_loss();
  Trainer resumed(loss_b, cfg);
  resumed.restore(snapshot);
  resumed.run(5);

  EXPECT_EQ(std::vector<double>(reference.params().begin(),
                                reference.params().end()),
            std::vector<double>(resumed.params().begin(),
                                resumed.params().end()));
  EXPECT_EQ(reference.loss_history(), resumed.loss_history());
  EXPECT_EQ(reference.capture(), resumed.capture());
}

INSTANTIATE_TEST_SUITE_P(
    OptimizerBatchGrid, TrainerResumeProperty,
    ::testing::Values(
        ResumeCase{"sgd", 0, GradientMethod::kParamShift},
        ResumeCase{"momentum", 0, GradientMethod::kParamShift},
        ResumeCase{"adam", 0, GradientMethod::kParamShift},
        ResumeCase{"adam", 3, GradientMethod::kParamShift},
        ResumeCase{"adam", 2, GradientMethod::kSpsa},
        ResumeCase{"sgd", 4, GradientMethod::kFiniteDiff}),
    [](const auto& info) {
      return info.param.optimizer + "_b" +
             std::to_string(info.param.batch_size) + "_" +
             std::to_string(static_cast<int>(info.param.method));
    });

TEST(Trainer, RestoreRejectsWrongWorkload) {
  sim::Circuit a1 = hardware_efficient(2, 1);
  ExpectationLoss vqe(std::move(a1), sim::transverse_field_ising(2, 1.0, 1.0));
  Trainer t1(vqe, quick_config());
  t1.run(2);
  const TrainingState s = t1.capture();

  auto data = make_unitary_learning_data(2, 4, 2, 50);
  sim::Circuit a2 = hardware_efficient(2, 1);
  FidelityLoss fid(std::move(a2), std::move(data));
  Trainer t2(fid, quick_config());
  EXPECT_THROW(t2.restore(s), std::runtime_error);
}

TEST(Trainer, RestoreRejectsWrongParamCount) {
  sim::Circuit a1 = hardware_efficient(2, 1);
  ExpectationLoss l1(std::move(a1), sim::transverse_field_ising(2, 1.0, 1.0));
  Trainer t1(l1, quick_config());
  TrainingState s = t1.capture();
  s.params.pop_back();
  sim::Circuit a2 = hardware_efficient(2, 1);
  ExpectationLoss l2(std::move(a2), sim::transverse_field_ising(2, 1.0, 1.0));
  Trainer t2(l2, quick_config());
  EXPECT_THROW(t2.restore(s), std::runtime_error);
}

TEST(Trainer, RestoreSwitchesOptimizerKind) {
  sim::Circuit a1 = hardware_efficient(2, 1);
  ExpectationLoss l1(std::move(a1), sim::transverse_field_ising(2, 1.0, 1.0));
  Trainer t1(l1, quick_config("momentum"));
  t1.run(3);
  const TrainingState s = t1.capture();

  sim::Circuit a2 = hardware_efficient(2, 1);
  ExpectationLoss l2(std::move(a2), sim::transverse_field_ising(2, 1.0, 1.0));
  Trainer t2(l2, quick_config("adam"));  // differently configured
  t2.restore(s);
  EXPECT_EQ(t2.optimizer().name(), "momentum");
}

TEST(TrainingState, ComponentSizesAddUp) {
  sim::Circuit a = hardware_efficient(3, 2);
  ExpectationLoss l(std::move(a), sim::transverse_field_ising(3, 1.0, 1.0));
  Trainer t(l, quick_config());
  t.run(4);
  const TrainingState s = t.capture();
  const auto sizes = s.component_sizes();
  EXPECT_EQ(sizes.params, s.params.size() * sizeof(double));
  EXPECT_GT(sizes.optimizer, 0u);
  EXPECT_GT(sizes.rng, 0u);
  EXPECT_EQ(sizes.loss_history, 4 * sizeof(double));
  EXPECT_EQ(sizes.total(), sizes.params + sizes.optimizer + sizes.rng +
                               sizes.loss_history + sizes.data_cursor +
                               sizes.simulator);
}

// ---------- resumable executor ----------

TEST(Executor, PartialThenFinishMatchesDirectRun) {
  const sim::Circuit c = random_circuit(4, 30, 51);
  ResumableExecutor exec(c, {});
  EXPECT_EQ(exec.advance(10), 10u);
  EXPECT_FALSE(exec.done());
  exec.finish();
  EXPECT_TRUE(exec.done());
  EXPECT_EQ(exec.state(), c.run({}));
}

TEST(Executor, SnapshotRestoreResumesBitExact) {
  const sim::Circuit c = random_circuit(5, 40, 52);
  ResumableExecutor exec(c, {});
  exec.advance(17);
  const util::Bytes snap = exec.serialize();

  ResumableExecutor restored = ResumableExecutor::restore(c, snap);
  EXPECT_EQ(restored.next_op(), 17u);
  restored.finish();
  exec.finish();
  EXPECT_EQ(restored.state(), exec.state());
  EXPECT_EQ(restored.state(), c.run({}));
}

TEST(Executor, RestoreRejectsWrongCircuit) {
  const sim::Circuit c1 = random_circuit(3, 20, 53);
  const sim::Circuit c2 = random_circuit(3, 21, 53);
  ResumableExecutor exec(c1, {});
  exec.advance(5);
  const util::Bytes snap = exec.serialize();
  EXPECT_THROW(ResumableExecutor::restore(c2, snap), std::runtime_error);
}

TEST(Executor, ParameterisedCircuitSnapshots) {
  sim::Circuit c = hardware_efficient(3, 2);
  std::vector<double> params(c.num_params());
  util::Rng rng(54);
  for (double& p : params) {
    p = rng.uniform(-2.0, 2.0);
  }
  ResumableExecutor exec(c, params);
  exec.advance(exec.total_ops() / 2);
  ResumableExecutor restored = ResumableExecutor::restore(c, exec.serialize());
  restored.finish();
  EXPECT_EQ(restored.state(), c.run(params));
}

TEST(Executor, ValidatesConstruction) {
  const sim::Circuit c = random_circuit(2, 5, 55);
  std::vector<double> wrong{1.0};
  EXPECT_THROW(ResumableExecutor(c, wrong), std::invalid_argument);
  EXPECT_THROW(ResumableExecutor(c, {}, sim::StateVector(3)),
               std::invalid_argument);
}

}  // namespace
}  // namespace qnn::qnn

// Unit tests for qnn::util — RNG, CRC, varint, byte codecs, strings, stats.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "util/bytes.hpp"
#include "util/crc.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/varint.hpp"

namespace qnn::util {
namespace {

// ---------- Rng ----------

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += a() == b() ? 1 : 0;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, SerializeRoundTripContinuesStream) {
  Rng a(7);
  for (int i = 0; i < 17; ++i) {
    a();
  }
  a.normal();  // populate the cached-normal branch
  const Bytes state = a.serialize();

  Rng b(999);
  b.deserialize(state);
  EXPECT_EQ(a, b);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(a(), b());
  }
  EXPECT_DOUBLE_EQ(a.normal(), b.normal());
}

TEST(Rng, DeserializeRejectsShortBuffer) {
  Rng a(1);
  Bytes state = a.serialize();
  state.resize(state.size() - 1);
  Rng b(2);
  EXPECT_THROW(b.deserialize(state), std::out_of_range);
}

TEST(Rng, DeserializeRejectsBadVersion) {
  Rng a(1);
  Bytes state = a.serialize();
  state[0] = 0xFF;
  EXPECT_THROW(a.deserialize(state), std::runtime_error);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.5, 7.5);
    ASSERT_GE(u, -2.5);
    ASSERT_LT(u, 7.5);
  }
}

TEST(Rng, UniformU64Bounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_LT(rng.uniform_u64(13), 13u);
  }
  EXPECT_EQ(rng.uniform_u64(1), 0u);
  EXPECT_THROW(rng.uniform_u64(0), std::invalid_argument);
}

TEST(Rng, UniformU64CoversAllResidues) {
  Rng rng(6);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.uniform_u64(7));
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng rng(8);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) {
    stats.add(rng.normal());
  }
  EXPECT_NEAR(stats.mean(), 0.0, 0.03);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.03);
}

TEST(Rng, NormalWithMeanAndStddev) {
  Rng rng(9);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) {
    stats.add(rng.normal(5.0, 2.0));
  }
  EXPECT_NEAR(stats.mean(), 5.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(10);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleIsDeterministicGivenState) {
  Rng a(11), b(11);
  std::vector<int> va{1, 2, 3, 4, 5}, vb{1, 2, 3, 4, 5};
  a.shuffle(va);
  b.shuffle(vb);
  EXPECT_EQ(va, vb);
}

TEST(Rng, ReseedResetsNormalCache) {
  Rng rng(12);
  rng.normal();
  rng.reseed(12);
  Rng fresh(12);
  EXPECT_EQ(rng, fresh);
}

TEST(Splitmix64, KnownSequenceIsStable) {
  std::uint64_t s = 0;
  const std::uint64_t first = splitmix64(s);
  const std::uint64_t second = splitmix64(s);
  EXPECT_NE(first, second);
  std::uint64_t s2 = 0;
  EXPECT_EQ(splitmix64(s2), first);
}

// ---------- CRC ----------

TEST(Crc32c, KnownVector) {
  // "123456789" -> 0xE3069283 (CRC-32C check value).
  const std::string s = "123456789";
  const auto crc = crc32c(
      {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
  EXPECT_EQ(crc, 0xE3069283u);
}

TEST(Crc32c, EmptyIsZero) { EXPECT_EQ(crc32c({}), 0u); }

TEST(Crc32c, Composable) {
  Bytes all;
  for (int i = 0; i < 1000; ++i) {
    all.push_back(static_cast<std::uint8_t>(i * 37));
  }
  for (std::size_t cut : {0ul, 1ul, 7ul, 8ul, 9ul, 500ul, 999ul, 1000ul}) {
    const auto part1 = crc32c(ByteSpan(all).first(cut));
    const auto combined = crc32c(ByteSpan(all).subspan(cut), part1);
    ASSERT_EQ(combined, crc32c(all)) << "cut=" << cut;
  }
}

TEST(Crc32c, DetectsSingleBitFlips) {
  Bytes data(64, 0xAB);
  const auto base = crc32c(data);
  for (std::size_t bit = 0; bit < data.size() * 8; ++bit) {
    data[bit / 8] ^= static_cast<std::uint8_t>(1 << (bit % 8));
    ASSERT_NE(crc32c(data), base) << "bit " << bit;
    data[bit / 8] ^= static_cast<std::uint8_t>(1 << (bit % 8));
  }
}

TEST(Crc32c, IncrementalAccumulatorMatchesOneShot) {
  Bytes data;
  for (int i = 0; i < 333; ++i) {
    data.push_back(static_cast<std::uint8_t>(i));
  }
  Crc32c acc;
  acc.update(ByteSpan(data).first(100));
  acc.update(ByteSpan(data).subspan(100));
  EXPECT_EQ(acc.value(), crc32c(data));
}

TEST(Crc64, DetectsCorruptionAndTruncation) {
  Bytes data(128, 0x5C);
  const auto base = crc64(data);
  data[64] ^= 1;
  EXPECT_NE(crc64(data), base);
  data[64] ^= 1;
  EXPECT_NE(crc64(ByteSpan(data).first(127)), base);
  EXPECT_EQ(crc64(data), base);
}

// ---------- varint ----------

TEST(Varint, RoundTripSweep) {
  std::vector<std::uint64_t> values = {0, 1, 127, 128, 255, 300, 16383, 16384,
                                       (1ull << 32) - 1, 1ull << 32,
                                       ~0ull, ~0ull - 1};
  for (int shift = 0; shift < 64; ++shift) {
    values.push_back(1ull << shift);
  }
  Bytes buf;
  for (std::uint64_t v : values) {
    put_varint(buf, v);
  }
  std::size_t off = 0;
  for (std::uint64_t v : values) {
    ASSERT_EQ(get_varint(buf, off), v);
  }
  EXPECT_EQ(off, buf.size());
}

TEST(Varint, SmallValuesOneByte) {
  Bytes buf;
  put_varint(buf, 127);
  EXPECT_EQ(buf.size(), 1u);
}

TEST(Varint, TruncationThrows) {
  Bytes buf;
  put_varint(buf, 1ull << 40);
  buf.resize(buf.size() - 1);
  std::size_t off = 0;
  EXPECT_THROW(get_varint(buf, off), std::out_of_range);
}

TEST(Varint, OverlongEncodingThrows) {
  Bytes buf(11, 0x80);  // 11 continuation bytes, never terminates
  std::size_t off = 0;
  EXPECT_THROW(get_varint(buf, off), std::runtime_error);
}

TEST(Varint, ZigzagRoundTrip) {
  const std::vector<std::int64_t> cases{
      0, 1, -1, 2, -2, 1000000, -1000000,
      std::numeric_limits<std::int64_t>::max(),
      std::numeric_limits<std::int64_t>::min()};
  for (std::int64_t v : cases) {
    ASSERT_EQ(zigzag_decode(zigzag_encode(v)), v);
  }
}

TEST(Varint, ZigzagSmallMagnitudesEncodeSmall) {
  Bytes buf;
  put_svarint(buf, -3);
  EXPECT_EQ(buf.size(), 1u);
  std::size_t off = 0;
  EXPECT_EQ(get_svarint(buf, off), -3);
}

// ---------- bytes ----------

TEST(Bytes, PutGetLeRoundTrip) {
  Bytes buf;
  put_le<std::uint8_t>(buf, 0xAB);
  put_le<std::uint16_t>(buf, 0xCDEF);
  put_le<std::uint32_t>(buf, 0x12345678u);
  put_le<std::uint64_t>(buf, 0x1122334455667788ull);
  put_le<double>(buf, 3.14159);
  std::size_t off = 0;
  EXPECT_EQ(get_le<std::uint8_t>(buf, off), 0xAB);
  EXPECT_EQ(get_le<std::uint16_t>(buf, off), 0xCDEF);
  EXPECT_EQ(get_le<std::uint32_t>(buf, off), 0x12345678u);
  EXPECT_EQ(get_le<std::uint64_t>(buf, off), 0x1122334455667788ull);
  EXPECT_DOUBLE_EQ(get_le<double>(buf, off), 3.14159);
  EXPECT_EQ(off, buf.size());
}

TEST(Bytes, GetLeUnderrunThrows) {
  Bytes buf{1, 2, 3};
  std::size_t off = 0;
  EXPECT_THROW(get_le<std::uint32_t>(buf, off), std::out_of_range);
}

TEST(Bytes, LittleEndianLayout) {
  Bytes buf;
  put_le<std::uint32_t>(buf, 0x01020304u);
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf[0], 0x04);
  EXPECT_EQ(buf[3], 0x01);
}

TEST(Bytes, StringAndVectorRoundTrip) {
  Bytes buf;
  put_string(buf, "hello world");
  put_vector<double>(buf, {1.0, -2.5, 1e300});
  put_bytes(buf, Bytes{9, 8, 7});
  std::size_t off = 0;
  EXPECT_EQ(get_string(buf, off), "hello world");
  EXPECT_EQ(get_vector<double>(buf, off),
            (std::vector<double>{1.0, -2.5, 1e300}));
  EXPECT_EQ(get_bytes(buf, off), (Bytes{9, 8, 7}));
}

TEST(Bytes, EmptyStringAndVector) {
  Bytes buf;
  put_string(buf, "");
  put_vector<std::uint32_t>(buf, {});
  std::size_t off = 0;
  EXPECT_EQ(get_string(buf, off), "");
  EXPECT_TRUE(get_vector<std::uint32_t>(buf, off).empty());
}

TEST(Bytes, VectorUnderrunThrows) {
  Bytes buf;
  put_le<std::uint64_t>(buf, 100);  // claims 100 elements, provides none
  std::size_t off = 0;
  EXPECT_THROW(get_vector<double>(buf, off), std::out_of_range);
}

// ---------- strings ----------

TEST(Strings, SplitKeepsEmptyFields) {
  EXPECT_EQ(split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("x", ','), (std::vector<std::string>{"x"}));
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("nospace"), "nospace");
}

TEST(Strings, HexRoundTrip) {
  const Bytes data{0x00, 0xde, 0xad, 0xbe, 0xef, 0xff};
  EXPECT_EQ(to_hex(data), "00deadbeefff");
  EXPECT_EQ(from_hex("00deadbeefff"), std::vector<std::uint8_t>(data));
  EXPECT_EQ(from_hex("DEADBEEF"), from_hex("deadbeef"));
}

TEST(Strings, FromHexRejectsBadInput) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);   // odd length
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);    // non-hex
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("checkpoint-12", "checkpoint-"));
  EXPECT_FALSE(starts_with("ck", "checkpoint-"));
}

TEST(Strings, HumanBytes) {
  EXPECT_EQ(human_bytes(0), "0 B");
  EXPECT_EQ(human_bytes(1023), "1023 B");
  EXPECT_EQ(human_bytes(1024), "1.0 KiB");
  EXPECT_EQ(human_bytes(1536), "1.5 KiB");
  EXPECT_EQ(human_bytes(3ull << 20), "3.0 MiB");
}

// ---------- stats ----------

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(x);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Percentiles, ExactQuartiles) {
  Percentiles p;
  for (int i = 1; i <= 101; ++i) {
    p.add(i);
  }
  EXPECT_DOUBLE_EQ(p.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(p.percentile(50), 51.0);
  EXPECT_DOUBLE_EQ(p.percentile(100), 101.0);
}

TEST(Percentiles, OutOfRangeThrows) {
  Percentiles p;
  p.add(1.0);
  EXPECT_THROW(p.percentile(-1), std::invalid_argument);
  EXPECT_THROW(p.percentile(101), std::invalid_argument);
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(-100.0);  // clamps to first bucket
  h.add(100.0);   // clamps to last bucket
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(9), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_FALSE(h.render().empty());
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace qnn::util

// Cross-module property sweeps: randomized codec round-trips, QAOA
// training with shared parameter slots, scheduling-model monotonicity.
#include <gtest/gtest.h>

#include <cmath>

#include "codec/codec.hpp"
#include "fault/preemption.hpp"
#include "qnn/ansatz.hpp"
#include "qnn/loss.hpp"
#include "qnn/trainer.hpp"
#include "sched/queue_sim.hpp"
#include "sched/young_daly.hpp"
#include "sim/pauli.hpp"
#include "util/rng.hpp"

namespace qnn {
namespace {

// ---------- randomized codec fuzzing ----------

/// Structured-random payloads: random mix of runs, copies of earlier
/// chunks, and noise — adversarial for both RLE and LZ token paths.
util::Bytes fuzz_payload(std::uint64_t seed) {
  util::Rng rng(seed);
  util::Bytes out;
  const std::size_t target = 1 + rng.uniform_u64(60000);
  while (out.size() < target) {
    switch (rng.uniform_u64(3)) {
      case 0: {  // run
        const auto len = 1 + rng.uniform_u64(300);
        out.insert(out.end(), len, static_cast<std::uint8_t>(rng()));
        break;
      }
      case 1: {  // back-reference copy
        if (out.empty()) {
          break;
        }
        const auto start = rng.uniform_u64(out.size());
        const auto len = std::min<std::uint64_t>(1 + rng.uniform_u64(500),
                                                 out.size() - start);
        for (std::uint64_t i = 0; i < len; ++i) {
          out.push_back(out[start + i]);
        }
        break;
      }
      default: {  // noise
        const auto len = 1 + rng.uniform_u64(100);
        for (std::uint64_t i = 0; i < len; ++i) {
          out.push_back(static_cast<std::uint8_t>(rng()));
        }
        break;
      }
    }
  }
  out.resize(target);
  return out;
}

class CodecFuzz : public ::testing::TestWithParam<int> {};

TEST_P(CodecFuzz, EveryCodecRoundTripsStructuredRandomData) {
  const util::Bytes data = fuzz_payload(static_cast<std::uint64_t>(GetParam()));
  for (codec::CodecId id : codec::kAllCodecs) {
    const util::Bytes enc = codec::encode(id, data);
    ASSERT_EQ(codec::decode(id, enc, data.size()), data)
        << codec::codec_name(id) << " seed=" << GetParam()
        << " size=" << data.size();
  }
}

INSTANTIATE_TEST_SUITE_P(TwentySeeds, CodecFuzz, ::testing::Range(0, 20));

// ---------- QAOA: shared-slot parameters end to end ----------

TEST(QaoaTraining, SharedSlotsTrainWithFiniteDiff) {
  // Parameter-shift is invalid for shared/scaled slots; the trainer must
  // still optimise a QAOA ansatz via finite differences.
  qnn::ExpectationLoss loss(qnn::qaoa_ansatz(4, 2),
                            sim::transverse_field_ising(4, 1.0, 0.0));
  qnn::TrainerConfig cfg;
  cfg.optimizer = "adam";
  cfg.learning_rate = 0.05;
  cfg.gradient.method = qnn::GradientMethod::kFiniteDiff;
  cfg.gradient.fd_eps = 1e-4;
  cfg.seed = 12;
  cfg.init_scale = 0.5;
  qnn::Trainer trainer(loss, cfg);
  const double initial = trainer.evaluate_full_loss();
  trainer.run(60);
  const double trained = trainer.evaluate_full_loss();
  EXPECT_LT(trained, initial - 0.3);
  // Classical chain ground energy is -(n-1) = -3; QAOA p=2 should get a
  // respectable fraction of it.
  EXPECT_LT(trained, -1.5);
}

TEST(QaoaTraining, ResumeIsBitExactWithSharedSlots) {
  auto make_loss = [] {
    return qnn::ExpectationLoss(qnn::qaoa_ansatz(3, 2),
                                sim::transverse_field_ising(3, 1.0, 0.0));
  };
  qnn::TrainerConfig cfg;
  cfg.gradient.method = qnn::GradientMethod::kFiniteDiff;
  cfg.seed = 13;

  auto ref_loss = make_loss();
  qnn::Trainer reference(ref_loss, cfg);
  reference.run(10);

  auto l1 = make_loss();
  qnn::Trainer first(l1, cfg);
  first.run(6);
  const auto snap = first.capture();
  auto l2 = make_loss();
  qnn::Trainer resumed(l2, cfg);
  resumed.restore(snap);
  resumed.run(4);
  EXPECT_EQ(std::vector<double>(reference.params().begin(),
                                reference.params().end()),
            std::vector<double>(resumed.params().begin(),
                                resumed.params().end()));
}

// ---------- scheduling-model properties ----------

class YoungDalyMonotonic : public ::testing::TestWithParam<double> {};

TEST_P(YoungDalyMonotonic, IntervalGrowsWithMtbfAndCost) {
  const double mtbf = GetParam();
  EXPECT_LT(sched::young_interval(1.0, mtbf),
            sched::young_interval(1.0, mtbf * 4));
  EXPECT_LT(sched::young_interval(1.0, mtbf),
            sched::young_interval(4.0, mtbf));
  // tau scales exactly as sqrt in both arguments.
  EXPECT_NEAR(sched::young_interval(1.0, mtbf * 4) /
                  sched::young_interval(1.0, mtbf),
              2.0, 1e-12);
}

TEST_P(YoungDalyMonotonic, MakespanMonotoneInFailureRate) {
  const double mtbf = GetParam();
  const double tau = sched::young_interval(2.0, mtbf);
  EXPECT_GE(sched::expected_makespan(3600.0, tau, 2.0, 5.0, mtbf),
            sched::expected_makespan(3600.0, tau, 2.0, 5.0, mtbf * 10));
}

INSTANTIATE_TEST_SUITE_P(MtbfGrid, YoungDalyMonotonic,
                         ::testing::Values(60.0, 600.0, 3600.0, 86400.0));

TEST(QueueSimProperty, MoreCheckpointOverheadNeverHelpsWithoutFailures) {
  util::Rng rng(21);
  fault::NoPreemption never;
  double prev = 0.0;
  for (double cost : {0.0, 0.5, 1.0, 2.0}) {
    sched::JobSpec spec;
    spec.work_seconds = 100.0;
    spec.ckpt_interval = 10.0;
    spec.ckpt_cost = cost;
    const auto r = sched::simulate_preemptible_job(spec, never, rng);
    ASSERT_TRUE(r.completed);
    EXPECT_GE(r.makespan, prev);
    prev = r.makespan;
  }
}

TEST(QueueSimProperty, DeterministicGivenRngSeed) {
  sched::JobSpec spec;
  spec.work_seconds = 500.0;
  spec.ckpt_interval = 20.0;
  spec.ckpt_cost = 1.0;
  spec.recovery_cost = 2.0;
  spec.queue_wait_mean = 5.0;
  for (int i = 0; i < 5; ++i) {
    util::Rng r1(99), r2(99);
    fault::PoissonPreemption f1(120.0), f2(120.0);
    const auto a = sched::simulate_preemptible_job(spec, f1, r1);
    const auto b = sched::simulate_preemptible_job(spec, f2, r2);
    ASSERT_EQ(a.makespan, b.makespan);
    ASSERT_EQ(a.preemptions, b.preemptions);
    ASSERT_EQ(a.wasted_seconds, b.wasted_seconds);
  }
}

}  // namespace
}  // namespace qnn

// Tests for the WAL-style delta journal (ckpt/wal.hpp): file naming,
// frame round trips, torn-tail truncation at every byte, group commit,
// idempotent redo-only replay, Checkpointer integration (logging,
// budget-driven compaction, rotation), and stale-log reaping.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "ckpt/checkpointer.hpp"
#include "ckpt/recovery.hpp"
#include "ckpt/state_codec.hpp"
#include "ckpt/store.hpp"
#include "ckpt/wal.hpp"
#include "io/mem_env.hpp"
#include "qnn/ansatz.hpp"
#include "util/strings.hpp"

namespace qnn::ckpt {
namespace {

// ---------- helpers: a real training state ----------

qnn::TrainingState make_state(std::uint64_t step, std::uint64_t seed = 7) {
  qnn::TrainingState s;
  s.step = step;
  util::Rng rng(seed + step);
  s.params.resize(24);
  for (double& p : s.params) {
    p = rng.uniform(-3.0, 3.0);
  }
  s.optimizer_name = "adam";
  s.optimizer_state.resize(400);
  for (auto& b : s.optimizer_state) {
    b = static_cast<std::uint8_t>(rng());
  }
  s.rng_state = rng.serialize();
  s.loss_history.resize(step, 0.5);
  s.epoch = step / 10;
  s.cursor = step % 10;
  s.permutation = {0, 1, 2, 3};
  s.workload_tag = "vqe";
  return s;
}

/// The base checkpoint's resolved raw payloads, as recovery hands them
/// to replay_wal.
std::map<SectionKind, Bytes> raw_sections(const qnn::TrainingState& state,
                                          bool include_simulator = false) {
  std::map<SectionKind, Bytes> out;
  for (Section& s : state_to_sections(state, include_simulator,
                                      codec::CodecId::kRaw)) {
    out[s.kind] = std::move(s.payload);
  }
  return out;
}

qnn::TrainingState state_of(const std::map<SectionKind, Bytes>& sections) {
  std::vector<Section> resolved;
  for (const auto& [kind, payload] : sections) {
    Section s;
    s.kind = kind;
    s.payload = payload;
    resolved.push_back(std::move(s));
  }
  return sections_to_state(resolved);
}

std::vector<std::string> wal_files(io::Env& env, const std::string& dir) {
  std::vector<std::string> out;
  for (const std::string& name : env.list_dir(dir)) {
    if (parse_wal_file_name(name)) {
      out.push_back(name);
    }
  }
  return out;
}

// ---------- file naming ----------

TEST(WalFile, NameRoundTrip) {
  EXPECT_EQ(wal_file_name(42), "wal-0000000042.qwal");
  EXPECT_EQ(parse_wal_file_name("wal-0000000042.qwal").value(), 42u);
  EXPECT_FALSE(parse_wal_file_name("wal-42.qwal").has_value());
  EXPECT_FALSE(parse_wal_file_name("wal-00000000xx.qwal").has_value());
  EXPECT_FALSE(parse_wal_file_name("ckpt-0000000042.qckp").has_value());
  EXPECT_FALSE(parse_wal_file_name("wal-0000000042.qckp").has_value());
}

// ---------- writer / scan / replay round trip ----------

TEST(Wal, WriteScanReplayRoundTrip) {
  io::MemEnv env;
  const auto base = make_state(10);
  WalWriter w(env, "cp", 1, WalPolicy{.enable = true}, base,
              /*include_simulator=*/false);
  for (std::uint64_t step = 11; step <= 13; ++step) {
    w.log_step(make_state(step));
  }
  w.close();

  const auto scan = scan_wal(env, "cp", 1);
  ASSERT_TRUE(scan.has_value());
  EXPECT_EQ(scan->epoch, 1u);
  EXPECT_EQ(scan->base_step, 10u);
  EXPECT_EQ(scan->records, 3u);
  EXPECT_EQ(scan->last_step, 13u);
  EXPECT_EQ(scan->torn_bytes, 0u);

  auto sections = raw_sections(base);
  const auto replay = replay_wal(env, "cp", 1, sections);
  ASSERT_TRUE(replay.has_value());
  EXPECT_EQ(replay->records_applied, 3u);
  EXPECT_EQ(replay->step, 13u);
  EXPECT_EQ(replay->torn_bytes, 0u);
  EXPECT_EQ(state_of(sections), make_state(13));
}

TEST(Wal, ScanRejectsMissingTornOrMislabeledHeaders) {
  io::MemEnv env;
  EXPECT_FALSE(scan_wal(env, "cp", 1).has_value());  // missing

  const auto base = make_state(5);
  WalWriter w(env, "cp", 1, WalPolicy{}, base, false);
  w.log_step(make_state(6));
  w.close();

  // A log whose header claims a different epoch than its file name must
  // never masquerade as that epoch's journal.
  const auto data = env.read_file("cp/" + wal_file_name(1));
  ASSERT_TRUE(data.has_value());
  env.write_file_atomic("cp/" + wal_file_name(2), util::ByteSpan{*data});
  EXPECT_FALSE(scan_wal(env, "cp", 2).has_value());

  // A header torn mid-way is unusable.
  ASSERT_TRUE(env.truncate("cp/" + wal_file_name(1), 10));
  EXPECT_FALSE(scan_wal(env, "cp", 1).has_value());
}

// ---------- torn tails ----------

TEST(Wal, TruncationAtEveryByteReplaysLongestValidPrefix) {
  io::MemEnv env;
  const auto base = make_state(20);
  // Frame boundaries, captured as the writer grows the log.
  std::vector<std::uint64_t> marks;
  WalWriter w(env, "cp", 3, WalPolicy{}, base, false);
  marks.push_back(w.bytes_logged());  // header
  for (std::uint64_t step = 21; step <= 23; ++step) {
    w.log_step(make_state(step));
    marks.push_back(w.bytes_logged());
  }
  w.close();

  const auto full = env.read_file("cp/" + wal_file_name(3));
  ASSERT_TRUE(full.has_value());
  ASSERT_EQ(full->size(), marks.back());

  for (std::uint64_t len = 0; len <= full->size(); ++len) {
    env.write_file_atomic("cp/" + wal_file_name(3),
                          util::ByteSpan{full->data(), len});
    std::uint64_t expect_records = 0;
    for (std::size_t i = 1; i < marks.size(); ++i) {
      expect_records += marks[i] <= len ? 1 : 0;
    }
    const auto scan = scan_wal(env, "cp", 3);
    if (len < marks.front()) {
      EXPECT_FALSE(scan.has_value()) << "torn header at len " << len;
      continue;
    }
    ASSERT_TRUE(scan.has_value()) << "len " << len;
    EXPECT_EQ(scan->records, expect_records) << "len " << len;
    EXPECT_EQ(scan->valid_bytes, marks[expect_records]) << "len " << len;
    EXPECT_EQ(scan->torn_bytes, len - marks[expect_records]) << "len " << len;

    auto sections = raw_sections(base);
    const auto replay = replay_wal(env, "cp", 3, sections);
    if (expect_records == 0) {
      EXPECT_FALSE(replay.has_value()) << "len " << len;
      EXPECT_EQ(state_of(sections), base) << "len " << len;
    } else {
      ASSERT_TRUE(replay.has_value()) << "len " << len;
      EXPECT_EQ(replay->records_applied, expect_records);
      EXPECT_EQ(state_of(sections), make_state(20 + expect_records))
          << "len " << len;
    }
  }
}

TEST(Wal, CorruptFrameStopsReplayAtLastGoodRecord) {
  io::MemEnv env;
  const auto base = make_state(1);
  std::vector<std::uint64_t> marks;
  WalWriter w(env, "cp", 1, WalPolicy{}, base, false);
  marks.push_back(w.bytes_logged());
  for (std::uint64_t step = 2; step <= 4; ++step) {
    w.log_step(make_state(step));
    marks.push_back(w.bytes_logged());
  }
  w.close();

  // Flip a bit inside the second record's payload: replay keeps record
  // one, ignores everything from the damage on.
  ASSERT_TRUE(env.flip_bit("cp/" + wal_file_name(1), (marks[1] + 20) * 8));
  auto sections = raw_sections(base);
  const auto replay = replay_wal(env, "cp", 1, sections);
  ASSERT_TRUE(replay.has_value());
  EXPECT_EQ(replay->records_applied, 1u);
  EXPECT_EQ(replay->step, 2u);
  EXPECT_EQ(state_of(sections), make_state(2));

  // Damage in the first record leaves nothing to replay; the caller's
  // sections must come back untouched.
  ASSERT_TRUE(env.flip_bit("cp/" + wal_file_name(1), (marks[0] + 20) * 8));
  auto untouched = raw_sections(base);
  EXPECT_FALSE(replay_wal(env, "cp", 1, untouched).has_value());
  EXPECT_EQ(untouched, raw_sections(base));
}

TEST(Wal, InapplicableRecordStopsReplayWithoutPartialApply) {
  io::MemEnv env;
  const auto base = make_state(30);
  WalWriter w(env, "cp", 9, WalPolicy{}, base, false);
  w.log_step(make_state(31));
  w.close();

  // Replay against a base whose params payload has a different size:
  // the record's delta sections no longer apply, and the atomicity rule
  // says no section of it may land.
  auto mismatched = raw_sections(base);
  ASSERT_FALSE(mismatched[SectionKind::kParams].empty());
  mismatched[SectionKind::kParams].resize(
      mismatched[SectionKind::kParams].size() - 8);
  const auto before = mismatched;
  EXPECT_FALSE(replay_wal(env, "cp", 9, mismatched).has_value());
  EXPECT_EQ(mismatched, before);
}

// ---------- replay is idempotent ----------

TEST(Wal, ReplayIsIdempotentAcrossRepeatedRecoveries) {
  io::MemEnv env;
  const auto base = make_state(40);
  WalWriter w(env, "cp", 2, WalPolicy{}, base, false);
  for (std::uint64_t step = 41; step <= 44; ++step) {
    w.log_step(make_state(step));
  }
  w.close();

  // Two independent replays from fresh base copies — as two recovery
  // attempts after a crash mid-recovery would run — land on identical
  // state: replay is a pure function of (base, valid frame prefix).
  auto first = raw_sections(base);
  auto second = raw_sections(base);
  ASSERT_TRUE(replay_wal(env, "cp", 2, first).has_value());
  ASSERT_TRUE(replay_wal(env, "cp", 2, second).has_value());
  EXPECT_EQ(first, second);
  EXPECT_EQ(state_of(first), make_state(44));
}

// ---------- group commit and budget ----------

TEST(Wal, GroupCommitSyncsEveryGRecords) {
  io::MemEnv env;
  const auto base = make_state(1);
  WalPolicy policy;
  policy.group_commit_steps = 3;
  WalWriter w(env, "cp", 1, policy, base, false);
  EXPECT_EQ(w.syncs(), 1u);  // the header is always made durable
  for (std::uint64_t step = 2; step <= 8; ++step) {
    w.log_step(make_state(step));
  }
  EXPECT_EQ(w.syncs(), 3u);  // after records 3 and 6
  w.close();                 // final sync covers the 7th record
  EXPECT_EQ(w.syncs(), 4u);
  EXPECT_EQ(w.records(), 7u);
}

TEST(Wal, GroupCommitZeroSyncsEveryRecord) {
  io::MemEnv env;
  const auto base = make_state(1);
  WalPolicy policy;
  policy.group_commit_steps = 0;
  WalWriter w(env, "cp", 1, policy, base, false);
  w.log_step(make_state(2));
  w.log_step(make_state(3));
  EXPECT_EQ(w.syncs(), 3u);  // header + one per record
}

TEST(Wal, OverBudgetTripsOnSizeAndZeroDisables) {
  io::MemEnv env;
  const auto base = make_state(1);
  WalPolicy tight;
  tight.max_log_bytes = 64;  // smaller than any one record
  WalWriter w(env, "cp", 1, tight, base, false);
  EXPECT_FALSE(w.over_budget());  // header alone fits
  w.log_step(make_state(2));
  EXPECT_TRUE(w.over_budget());

  WalPolicy unbounded;
  unbounded.max_log_bytes = 0;
  WalWriter u(env, "cp", 2, unbounded, base, false);
  u.log_step(make_state(2));
  EXPECT_FALSE(u.over_budget());
}

// ---------- Checkpointer integration ----------

TEST(CheckpointerWal, LogsBetweenInstallsAndRecoveryReplays) {
  io::MemEnv env;
  CheckpointPolicy policy;
  policy.every_steps = 5;
  policy.retention.keep_last = 0;
  policy.wal.enable = true;
  policy.wal.group_commit_steps = 1;
  Checkpointer ck(env, "cp", policy);
  for (std::uint64_t step = 1; step <= 8; ++step) {
    ck.maybe_checkpoint(make_state(step));
  }
  // One install (step 5) and one journal record per step after it.
  EXPECT_EQ(ck.stats().checkpoints, 1u);
  EXPECT_EQ(ck.stats().wal_records, 3u);
  EXPECT_GT(ck.stats().wal_bytes, 0u);

  const auto outcome = recover_latest(env, "cp");
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->step, 8u);
  EXPECT_EQ(outcome->state, make_state(8));
  bool noted = false;
  for (const std::string& note : outcome->notes) {
    noted = noted || note.find("replayed") != std::string::npos;
  }
  EXPECT_TRUE(noted) << "replay must be surfaced in recovery notes";

  // Recovery is repeatable: a crash mid-recovery changes nothing.
  const auto again = recover_latest(env, "cp");
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->state, outcome->state);

  // Exactly one journal on disk, and it belongs to the manifest tip.
  const auto files = wal_files(env, "cp");
  ASSERT_EQ(files.size(), 1u);
  EXPECT_EQ(parse_wal_file_name(files[0]),
            Manifest::load(env, "cp").latest()->id);
}

TEST(CheckpointerWal, RecoveryWithoutJournalRecordsUsesBaseCheckpoint) {
  io::MemEnv env;
  CheckpointPolicy policy;
  policy.every_steps = 4;
  policy.retention.keep_last = 0;
  policy.wal.enable = true;
  Checkpointer ck(env, "cp", policy);
  for (std::uint64_t step = 1; step <= 4; ++step) {
    ck.maybe_checkpoint(make_state(step));
  }
  // Install at step 4, journal rotated but empty.
  EXPECT_EQ(ck.stats().wal_records, 0u);
  const auto outcome = recover_latest(env, "cp");
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->step, 4u);
  EXPECT_EQ(outcome->state, make_state(4));
}

TEST(CheckpointerWal, OverBudgetJournalCompactsIntoInstall) {
  io::MemEnv env;
  CheckpointPolicy policy;
  policy.every_steps = 3;
  policy.retention.keep_last = 0;
  policy.wal.enable = true;
  policy.wal.max_log_bytes = 1;  // every record overflows: compact always
  Checkpointer ck(env, "cp", policy);
  for (std::uint64_t step = 1; step <= 6; ++step) {
    ck.maybe_checkpoint(make_state(step));
  }
  // Install at step 3 (policy), then compaction installs at 4, 5, 6.
  EXPECT_EQ(ck.stats().checkpoints, 4u);
  EXPECT_EQ(ck.stats().wal_compactions, 3u);
  EXPECT_EQ(ck.stats().wal_records, 0u);

  const auto outcome = recover_latest(env, "cp");
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->step, 6u);
  EXPECT_EQ(outcome->state, make_state(6));

  // Rotation reaped every superseded log along the way.
  const auto files = wal_files(env, "cp");
  ASSERT_EQ(files.size(), 1u);
  EXPECT_EQ(parse_wal_file_name(files[0]),
            Manifest::load(env, "cp").latest()->id);
}

TEST(CheckpointerWal, TornJournalTailRecoversLastFramedRecord) {
  io::MemEnv env;
  CheckpointPolicy policy;
  policy.every_steps = 5;
  policy.retention.keep_last = 0;
  policy.wal.enable = true;
  policy.wal.group_commit_steps = 1;
  Checkpointer ck(env, "cp", policy);
  for (std::uint64_t step = 1; step <= 8; ++step) {
    ck.maybe_checkpoint(make_state(step));
  }
  const std::uint64_t tip = Manifest::load(env, "cp").latest()->id;
  const std::string log = "cp/" + wal_file_name(tip);
  const auto size = env.file_size(log);
  ASSERT_TRUE(size.has_value());
  ASSERT_TRUE(env.truncate(log, *size - 1));  // tear the step-8 frame

  const auto outcome = recover_latest(env, "cp");
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->step, 7u);
  EXPECT_EQ(outcome->state, make_state(7));
}

// ---------- stale-log reaping ----------

TEST(CheckpointStoreWal, SweepReapsStaleJournalsAndPinsActive) {
  io::MemEnv env;
  CheckpointPolicy policy;
  policy.every_steps = 1;
  policy.retention.keep_last = 0;
  policy.wal.enable = true;
  {
    Checkpointer ck(env, "cp", policy);
    ck.maybe_checkpoint(make_state(1));
    ck.maybe_checkpoint(make_state(2));
  }
  // Plant a journal for an epoch the manifest never advertised, as a
  // crash between fence and deletion would leave behind.
  const std::string stale = "cp/" + wal_file_name(77);
  env.write_file_atomic(stale, util::ByteSpan{});

  CheckpointStore store(env, "cp", policy.retention);
  const Manifest manifest = Manifest::load(env, "cp");
  EXPECT_EQ(store.plan_stale_wals(manifest),
            std::vector<std::string>{wal_file_name(77)});
  store.sweep_orphans(manifest);
  EXPECT_FALSE(env.exists(stale));
  EXPECT_TRUE(env.exists("cp/" + wal_file_name(manifest.latest()->id)));
  EXPECT_EQ(store.stats().wals_reaped, 1u);
}

TEST(CheckpointStoreWal, DamagedManifestSuppressesWalReaping) {
  io::MemEnv env;
  CheckpointPolicy policy;
  policy.every_steps = 1;
  policy.retention.keep_last = 0;
  policy.wal.enable = true;
  {
    Checkpointer ck(env, "cp", policy);
    ck.maybe_checkpoint(make_state(1));
  }
  env.write_file_atomic("cp/" + wal_file_name(77), util::ByteSpan{});

  // Tear the manifest: a loader warning means no journal may be called
  // stale — the manifest may have lost the very line that pins it.
  const auto data = env.read_file("cp/MANIFEST");
  ASSERT_TRUE(data.has_value());
  env.write_file_atomic("cp/MANIFEST",
                        util::ByteSpan{data->data(), data->size() - 1});
  const Manifest damaged = Manifest::load(env, "cp");
  ASSERT_GT(damaged.parse_warnings(), 0u);

  CheckpointStore store(env, "cp", policy.retention);
  EXPECT_TRUE(store.plan_stale_wals(damaged).empty());
  store.sweep_orphans(damaged);
  EXPECT_TRUE(env.exists("cp/" + wal_file_name(77)));
}

}  // namespace
}  // namespace qnn::ckpt

// Tests for the Young–Daly adaptive checkpoint-interval mode, driven by a
// deterministic fake clock.
#include <gtest/gtest.h>

#include <cmath>

#include "ckpt/checkpointer.hpp"
#include "ckpt/recovery.hpp"
#include "io/mem_env.hpp"
#include "sched/young_daly.hpp"
#include "util/rng.hpp"

namespace qnn::ckpt {
namespace {

qnn::TrainingState make_state(std::uint64_t step) {
  qnn::TrainingState s;
  s.step = step;
  s.params = {1.0, 2.0};
  s.optimizer_name = "sgd";
  s.optimizer_state = {1};
  s.rng_state = util::Rng(1).serialize();
  s.loss_history = {0.1};
  s.permutation = {0};
  s.workload_tag = "vqe";
  return s;
}

/// A controllable clock: the test advances time explicitly.
struct FakeClock {
  double now = 0.0;
  /// Returns a callable bound to this clock.
  std::function<double()> fn() {
    return [this] { return now; };
  }
};

/// Drives a training cadence: each simulated step costs `step_seconds`;
/// each checkpoint write is simulated by advancing the clock when a
/// write stream opens (whole-buffer writes open one stream each, so the
/// historical one-charge-per-write cadence is preserved).
class ClockedEnv final : public io::ForwardingEnv {
 public:
  ClockedEnv(io::Env& base, FakeClock& clock, double write_seconds)
      : ForwardingEnv(base), clock_(clock), write_seconds_(write_seconds) {}

  std::unique_ptr<io::WritableFile> new_writable(const std::string& p,
                                                 io::WriteMode mode) override {
    clock_.now += write_seconds_;
    return base_.new_writable(p, mode);
  }
  void write_file_atomic(const std::string& p, io::ByteSpan d) override {
    clock_.now += write_seconds_;
    base_.write_file_atomic(p, d);
  }
  void write_file(const std::string& p, io::ByteSpan d) override {
    clock_.now += write_seconds_;
    base_.write_file(p, d);
  }

 private:
  FakeClock& clock_;
  double write_seconds_;
};

struct AdaptiveRun {
  std::uint64_t final_interval = 0;
  std::uint64_t checkpoints = 0;
};

AdaptiveRun run_adaptive(double step_seconds, double write_seconds,
                         double mtbf, std::uint64_t total_steps) {
  io::MemEnv mem;
  FakeClock clock;
  ClockedEnv env(mem, clock, write_seconds);

  CheckpointPolicy policy;
  policy.every_steps = 5;  // initial guess, should be re-derived
  policy.retention.keep_last = 0;
  policy.target_mtbf_seconds = mtbf;
  policy.clock = clock.fn();
  Checkpointer ck(env, "cp", policy);

  for (std::uint64_t step = 1; step <= total_steps; ++step) {
    clock.now += step_seconds;  // the "training work"
    ck.maybe_checkpoint(make_state(step));
  }
  return AdaptiveRun{ck.current_interval(), ck.stats().checkpoints};
}

TEST(Adaptive, ConvergesToYoungIntervalInSteps) {
  const double step_s = 1.0;
  const double write_s = 2.0;
  const double mtbf = 10000.0;
  const auto result = run_adaptive(step_s, write_s, mtbf, 2000);
  // One checkpoint = the data file write + the manifest rewrite, i.e. two
  // ClockedEnv writes -> C = 2*write_s; tau = sqrt(2*C*M) in steps.
  const double expect = sched::young_interval(2.0 * write_s, mtbf) / step_s;
  EXPECT_GT(result.final_interval, expect * 0.8);
  EXPECT_LT(result.final_interval, expect * 1.2);
}

TEST(Adaptive, ShorterMtbfMeansShorterInterval) {
  const auto frequent = run_adaptive(1.0, 2.0, 400.0, 2000);
  const auto rare = run_adaptive(1.0, 2.0, 40000.0, 2000);
  EXPECT_LT(frequent.final_interval, rare.final_interval);
  EXPECT_GT(frequent.checkpoints, rare.checkpoints);
}

TEST(Adaptive, ExpensiveCheckpointsWidenInterval) {
  const auto cheap = run_adaptive(1.0, 0.5, 10000.0, 2000);
  const auto costly = run_adaptive(1.0, 8.0, 10000.0, 2000);
  EXPECT_GT(costly.final_interval, cheap.final_interval);
}

TEST(Adaptive, IntervalClampedToMax) {
  io::MemEnv mem;
  FakeClock clock;
  ClockedEnv env(mem, clock, 1.0);
  CheckpointPolicy policy;
  policy.every_steps = 1;
  policy.target_mtbf_seconds = 1e12;  // absurd: wants a huge interval
  policy.adaptive_max_steps = 50;
  policy.clock = clock.fn();
  Checkpointer ck(env, "cp", policy);
  for (std::uint64_t step = 1; step <= 200; ++step) {
    clock.now += 1.0;
    ck.maybe_checkpoint(make_state(step));
  }
  EXPECT_EQ(ck.current_interval(), 50u);
}

TEST(Adaptive, DisabledModeKeepsConfiguredInterval) {
  io::MemEnv mem;
  CheckpointPolicy policy;
  policy.every_steps = 7;
  Checkpointer ck(mem, "cp", policy);
  for (std::uint64_t step = 1; step <= 21; ++step) {
    ck.maybe_checkpoint(make_state(step));
  }
  EXPECT_EQ(ck.current_interval(), 7u);
  EXPECT_EQ(ck.stats().checkpoints, 3u);
}

TEST(Adaptive, CheckpointsRemainRecoverable) {
  io::MemEnv mem;
  FakeClock clock;
  ClockedEnv env(mem, clock, 0.5);
  CheckpointPolicy policy;
  policy.every_steps = 3;
  policy.target_mtbf_seconds = 100.0;
  policy.clock = clock.fn();
  std::uint64_t last_step = 0;
  {
    Checkpointer ck(env, "cp", policy);
    for (std::uint64_t step = 1; step <= 100; ++step) {
      clock.now += 0.2;
      if (ck.maybe_checkpoint(make_state(step))) {
        last_step = step;
      }
    }
  }
  ASSERT_GT(last_step, 0u);
  const auto outcome = recover_latest(env, "cp");
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->step, last_step);
}

}  // namespace
}  // namespace qnn::ckpt

// parity_classifier — mini-batched, shot-noisy quantum classifier with
// checkpointed training.
//
// Demonstrates the parts of the training state that only matter for
// stochastic pipelines: the batch-shuffle permutation, the epoch cursor
// and the RNG stream position all ride along in every checkpoint, so a
// resumed run sees exactly the same batches and the same shot noise.
//
//   ./examples/parity_classifier
#include <cstdio>

#include "ckpt/checkpointer.hpp"
#include "ckpt/trainer_hook.hpp"
#include "fault/crash_point.hpp"
#include "io/mem_env.hpp"
#include "qnn/ansatz.hpp"
#include "qnn/loss.hpp"
#include "qnn/trainer.hpp"

namespace qq = qnn::qnn;

namespace {

qq::ParityLoss make_loss() {
  // 48 labelled bitstrings, read out with 256 shots per evaluation.
  return qq::ParityLoss(qq::strongly_entangling(4, 2),
                        qq::make_parity_data(4, 48, /*seed=*/2121),
                        /*shots=*/256);
}

qq::TrainerConfig config() {
  qq::TrainerConfig cfg;
  cfg.optimizer = "adam";
  cfg.learning_rate = 0.05;
  cfg.batch_size = 8;  // mini-batched: exercises the shuffle cursor
  cfg.gradient.method = qq::GradientMethod::kSpsa;  // cheap under noise
  cfg.seed = 777;
  return cfg;
}

}  // namespace

int main() {
  constexpr std::uint64_t kSteps = 120;
  constexpr std::uint64_t kCrash = 70;

  qnn::io::MemEnv env;  // in-memory store: the demo is about semantics
  qnn::ckpt::CheckpointPolicy policy;
  policy.every_steps = 10;
  policy.strategy = qnn::ckpt::Strategy::kIncremental;

  std::printf("phase 1: train with mini-batches + shot noise, crash at "
              "step %llu\n",
              static_cast<unsigned long long>(kCrash));
  {
    auto loss = make_loss();
    qq::Trainer trainer(loss, config());
    qnn::ckpt::Checkpointer ck(env, "cp", policy);
    try {
      trainer.run(kSteps,
                  qnn::fault::crash_at(
                      kCrash, qnn::ckpt::checkpointing_callback(trainer, ck)));
    } catch (const qnn::fault::SimulatedCrash&) {
      std::printf("  ...crashed (accuracy so far: %.1f%%)\n",
                  100.0 * loss.accuracy(trainer.params()));
    }
  }

  std::printf("phase 2: recover and finish\n");
  auto loss = make_loss();
  qq::Trainer trainer(loss, config());
  const auto outcome = qnn::ckpt::resume_or_start(env, "cp", trainer);
  std::printf("  resumed at step %llu (epoch cursor and RNG restored)\n",
              static_cast<unsigned long long>(outcome->step));
  qnn::ckpt::Checkpointer ck(env, "cp", policy);
  trainer.run(kSteps - trainer.step(), [&](const qq::StepInfo& info) {
    ck.maybe_checkpoint(trainer.capture());
    if (info.step % 30 == 0) {
      std::printf("  step %4llu  batch loss %.4f  accuracy %.1f%%\n",
                  static_cast<unsigned long long>(info.step), info.loss,
                  100.0 * loss.accuracy(trainer.params()));
    }
    return true;
  });

  // Reference: uninterrupted run lands on identical parameters, proving
  // that batching + shot noise resumed deterministically.
  auto ref_loss = make_loss();
  qq::Trainer reference(ref_loss, config());
  reference.run(kSteps);
  const bool identical =
      std::equal(trainer.params().begin(), trainer.params().end(),
                 reference.params().begin(), reference.params().end());

  const double accuracy = loss.accuracy(trainer.params());
  std::printf("\nfinal accuracy: %.1f%%  |  resume bit-exact vs "
              "uninterrupted: %s\n",
              100.0 * accuracy, identical ? "YES" : "NO (bug!)");
  return identical && accuracy > 0.55 ? 0 : 1;
}

// traced_training — the observability layer end to end on a real job.
//
// Runs a short VQE-style training loop with the full instrumentation
// stack mounted: an ObservedEnv between the checkpointer and the disk
// (per-op I/O counts/bytes/latency), live per-stage latency histograms
// and exported cumulative counters in a MetricsRegistry, and a Tracer
// recording one span tree per checkpoint plus WAL/GC/tier events.
//
//   ./examples/traced_training [--dir DIR] [--steps N] [--interval K]
//       [--async] [--trace OUT.json]
//
// The trace path defaults to the QNNCKPT_TRACE environment variable
// (no trace written when neither is set); load the file in
// chrome://tracing or https://ui.perfetto.dev. The metrics snapshot is
// printed as a text dump plus one machine-readable RESULT line.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "ckpt/checkpointer.hpp"
#include "ckpt/trainer_hook.hpp"
#include "io/env.hpp"
#include "obs/metrics.hpp"
#include "obs/observed_env.hpp"
#include "obs/trace.hpp"
#include "qnn/ansatz.hpp"
#include "qnn/loss.hpp"
#include "qnn/trainer.hpp"

namespace qq = qnn::qnn;

namespace {

struct Args {
  std::string dir = "/tmp/qnnckpt-traced";
  std::size_t steps = 60;
  std::uint64_t interval = 5;
  bool async = false;
  std::string trace;
};

Args parse(int argc, char** argv) {
  Args args;
  if (const char* env = std::getenv("QNNCKPT_TRACE")) {
    args.trace = env;
  }
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--dir") {
      args.dir = next();
    } else if (a == "--steps") {
      args.steps = std::strtoull(next(), nullptr, 10);
    } else if (a == "--interval") {
      args.interval = std::strtoull(next(), nullptr, 10);
    } else if (a == "--async") {
      args.async = true;
    } else if (a == "--trace") {
      args.trace = next();
    } else {
      std::fprintf(stderr, "unknown argument %s\n", a.c_str());
      std::exit(2);
    }
  }
  return args;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);

  qq::FidelityLoss loss(
      qq::hardware_efficient(3, 2),
      qq::make_unitary_learning_data(3, 8, 6, /*seed=*/12345));
  qq::TrainerConfig config;
  config.optimizer = "adam";
  config.learning_rate = 0.08;
  config.seed = 98765;
  qq::Trainer trainer(loss, config);

  // The observability stack: one registry + one tracer shared by every
  // layer. The ObservedEnv sits between the checkpointer and the disk,
  // so every append/sync/install/pread the storage stack issues is
  // counted; the policy pointers light up the span tree and the live
  // per-stage histograms.
  qnn::obs::MetricsRegistry registry;
  qnn::obs::Tracer tracer;
  qnn::io::PosixEnv posix;
  qnn::obs::ObservedEnv env(posix, registry);

  const auto recovered = qnn::ckpt::resume_or_start(env, args.dir, trainer);
  if (recovered) {
    std::printf("[resume] checkpoint id=%llu at step %llu\n",
                static_cast<unsigned long long>(recovered->checkpoint_id),
                static_cast<unsigned long long>(recovered->step));
  }

  qnn::ckpt::CheckpointPolicy policy;
  policy.strategy = qnn::ckpt::Strategy::kIncremental;
  policy.every_steps = args.interval;
  policy.retention.keep_last = 3;
  policy.full_every = 4;
  policy.async = args.async;
  policy.metrics = &registry;
  policy.tracer = &tracer;
  qnn::ckpt::Checkpointer checkpointer(env, args.dir, policy);

  if (trainer.step() < args.steps) {
    trainer.run(args.steps - trainer.step(), [&](const qq::StepInfo& info) {
      checkpointer.maybe_checkpoint(trainer.capture());
      if (info.step % 20 == 0) {
        std::printf("  step %5llu  loss %.6f\n",
                    static_cast<unsigned long long>(info.step), info.loss);
      }
      return true;
    });
    checkpointer.checkpoint_now(trainer.capture());
  }
  checkpointer.flush();

  // Snapshot: fold the checkpointer's cumulative counters into the
  // registry next to the ObservedEnv's live I/O instruments, then render
  // both views — the sorted text dump for humans, one RESULT line for
  // the regression tooling.
  checkpointer.export_metrics(registry);
  std::printf("\nmetrics registry:\n%s", registry.text().c_str());
  std::printf("RESULT %s\n", registry.json("traced_training").c_str());

  if (!args.trace.empty()) {
    tracer.write(args.trace);
    std::printf("\ntrace: %zu event(s) written to %s\n",
                tracer.event_count(), args.trace.c_str());
  }
  return 0;
}

// preemptible_training — a production-style resumable training job.
//
// Run it, kill it (Ctrl-C / SIGKILL / power cut), run it again: it picks
// up from the newest checkpoint and continues until the step budget is
// done. State lives in --dir; everything else is derived.
//
//   ./examples/preemptible_training [--dir DIR] [--steps N] [--qubits N]
//       [--interval K] [--strategy params|full|incremental] [--async]
//
// Demo mode (no kill needed):
//   ./examples/preemptible_training --self-destruct 25
// crashes itself at step 25; rerun to watch it resume.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "ckpt/checkpointer.hpp"
#include "ckpt/trainer_hook.hpp"
#include "fault/crash_point.hpp"
#include "io/env.hpp"
#include "qnn/ansatz.hpp"
#include "qnn/loss.hpp"
#include "qnn/trainer.hpp"

namespace qq = qnn::qnn;

namespace {

struct Args {
  std::string dir = "/tmp/qnnckpt-preemptible";
  std::size_t steps = 200;
  std::size_t qubits = 3;
  std::uint64_t interval = 10;
  std::string strategy = "incremental";
  bool async = false;
  std::uint64_t self_destruct = 0;  // 0 = off
};

Args parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--dir") {
      args.dir = next();
    } else if (a == "--steps") {
      args.steps = std::strtoull(next(), nullptr, 10);
    } else if (a == "--qubits") {
      args.qubits = std::strtoull(next(), nullptr, 10);
    } else if (a == "--interval") {
      args.interval = std::strtoull(next(), nullptr, 10);
    } else if (a == "--strategy") {
      args.strategy = next();
    } else if (a == "--async") {
      args.async = true;
    } else if (a == "--self-destruct") {
      args.self_destruct = std::strtoull(next(), nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown argument %s\n", a.c_str());
      std::exit(2);
    }
  }
  return args;
}

qnn::ckpt::Strategy parse_strategy(const std::string& s) {
  if (s == "params") return qnn::ckpt::Strategy::kParamsOnly;
  if (s == "full") return qnn::ckpt::Strategy::kFullState;
  if (s == "incremental") return qnn::ckpt::Strategy::kIncremental;
  std::fprintf(stderr, "unknown strategy '%s'\n", s.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);

  // Workload: learn a hidden unitary from supervised state pairs. The
  // dataset is regenerated deterministically from its seed, so only the
  // training state needs persisting.
  qq::FidelityLoss loss(
      qq::hardware_efficient(args.qubits, 2),
      qq::make_unitary_learning_data(args.qubits, 8, 6, /*seed=*/12345));

  qq::TrainerConfig config;
  config.optimizer = "adam";
  config.learning_rate = 0.08;
  config.seed = 98765;
  qq::Trainer trainer(loss, config);

  qnn::io::PosixEnv env;
  const auto recovered = qnn::ckpt::resume_or_start(env, args.dir, trainer);
  if (recovered) {
    std::printf("[resume] recovered checkpoint id=%llu at step %llu",
                static_cast<unsigned long long>(recovered->checkpoint_id),
                static_cast<unsigned long long>(recovered->step));
    if (!recovered->notes.empty()) {
      std::printf(" (%zu older/corrupt candidates skipped)",
                  recovered->notes.size());
    }
    std::printf("\n");
  } else {
    std::printf("[start] no checkpoint in %s; cold start\n",
                args.dir.c_str());
  }

  if (trainer.step() >= args.steps) {
    std::printf("job already complete at step %llu; final loss %.6f\n",
                static_cast<unsigned long long>(trainer.step()),
                trainer.evaluate_full_loss());
    return 0;
  }

  qnn::ckpt::CheckpointPolicy policy;
  policy.strategy = parse_strategy(args.strategy);
  policy.every_steps = args.interval;
  policy.retention.keep_last = 3;
  policy.full_every = 5;
  policy.async = args.async;
  qnn::ckpt::Checkpointer checkpointer(env, args.dir, policy);

  qq::StepCallback callback = [&](const qq::StepInfo& info) {
    checkpointer.maybe_checkpoint(trainer.capture());
    if (info.step % 20 == 0) {
      std::printf("  step %5llu  loss %.6f\n",
                  static_cast<unsigned long long>(info.step), info.loss);
    }
    return true;
  };
  if (args.self_destruct > 0) {
    callback = qnn::fault::crash_at(args.self_destruct, callback);
  }

  try {
    trainer.run(args.steps - trainer.step(), callback);
  } catch (const qnn::fault::SimulatedCrash& crash) {
    std::printf("[crash] self-destructed at step %llu — run me again to "
                "resume\n",
                static_cast<unsigned long long>(crash.step));
    return 0;
  }
  // Final checkpoint so a rerun reports completion instead of retraining.
  checkpointer.checkpoint_now(trainer.capture());
  checkpointer.flush();

  const auto stats = checkpointer.stats();
  std::printf(
      "[done] step %llu  loss %.6f  | %llu checkpoints, %llu bytes "
      "(%.1fx compressed), encode %.3fs\n",
      static_cast<unsigned long long>(trainer.step()),
      trainer.evaluate_full_loss(),
      static_cast<unsigned long long>(stats.checkpoints),
      static_cast<unsigned long long>(stats.bytes_encoded),
      stats.bytes_encoded
          ? static_cast<double>(stats.bytes_raw) /
                static_cast<double>(stats.bytes_encoded)
          : 1.0,
      stats.encode_seconds + stats.pipeline_encode_seconds);
  if (stats.dropped_writes > 0 || stats.writer_dropped > 0) {
    std::printf("[warn] %llu checkpoint(s) dropped in the async pipeline "
                "(writer refused %llu, write failures %llu); lifetime "
                "dropped %llu — see the inspector's manifest stats\n",
                static_cast<unsigned long long>(stats.dropped_writes),
                static_cast<unsigned long long>(stats.writer_dropped),
                static_cast<unsigned long long>(stats.writer_failures),
                static_cast<unsigned long long>(stats.lifetime_dropped_writes));
  }
  return 0;
}

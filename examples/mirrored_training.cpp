// mirrored_training — checkpoint replication across two storage targets.
//
// Writes every checkpoint to two directories (think: local scratch disk +
// network mount) through MirrorEnv, then demonstrates that training state
// survives (a) losing one replica entirely and (b) corruption of every
// checkpoint on the *surviving preferred* replica — cross-replica
// recovery picks whichever copy still verifies.
//
//   ./examples/mirrored_training
#include <cstdio>
#include <filesystem>

#include "ckpt/checkpointer.hpp"
#include "ckpt/recovery.hpp"
#include "ckpt/trainer_hook.hpp"
#include "io/env.hpp"
#include "io/mirror_env.hpp"
#include "io/prefix_env.hpp"
#include "qnn/ansatz.hpp"
#include "qnn/loss.hpp"
#include "qnn/trainer.hpp"
#include "sim/pauli.hpp"

namespace qq = qnn::qnn;
namespace fs = std::filesystem;

namespace {

qq::ExpectationLoss make_loss() {
  return qq::ExpectationLoss(qq::hardware_efficient(4, 2),
                             qnn::sim::transverse_field_ising(4, 1.0, 1.0));
}

qq::TrainerConfig config() {
  qq::TrainerConfig cfg;
  cfg.optimizer = "adam";
  cfg.learning_rate = 0.1;
  cfg.seed = 4242;
  return cfg;
}

}  // namespace

int main() {
  const std::string dir = "job";  // same relative path inside each replica
  const std::string root_a = "/tmp/qnnckpt-mirror-a";
  const std::string root_b = "/tmp/qnnckpt-mirror-b";
  fs::remove_all(root_a);
  fs::remove_all(root_b);

  // Two independent stores; MirrorEnv fans writes out to both. Each
  // replica mounts the same logical checkpoint path under its own root
  // through a PrefixEnv (io/prefix_env.hpp).
  qnn::io::PosixEnv disk_a;
  qnn::io::PosixEnv disk_b;
  qnn::io::PrefixEnv replica_a(disk_a, root_a);
  qnn::io::PrefixEnv replica_b(disk_b, root_b);
  qnn::io::MirrorEnv mirror({&replica_a, &replica_b});

  // Train with replicated checkpoints.
  auto loss = make_loss();
  qq::Trainer trainer(loss, config());
  qnn::ckpt::CheckpointPolicy policy;
  policy.every_steps = 10;
  policy.retention.keep_last = 2;
  {
    qnn::ckpt::Checkpointer ck(mirror, dir, policy);
    trainer.run(50, qnn::ckpt::checkpointing_callback(trainer, ck));
  }
  std::printf("trained 50 steps; checkpoints mirrored to both replicas\n");

  // Disaster 1: replica A's volume disappears entirely.
  fs::remove_all(root_a);
  auto outcome = qnn::ckpt::recover_latest_any({&replica_a, &replica_b}, dir);
  if (!outcome || outcome->step != 50) {
    std::printf("FAILED to recover after losing replica A\n");
    return 1;
  }
  std::printf("replica A destroyed -> recovered step %llu from replica B\n",
              static_cast<unsigned long long>(outcome->step));

  // Disaster 2: replica B's newest checkpoint is silently corrupted while
  // A is already gone — recovery must fall back to B's older checkpoint.
  {
    const std::string newest =
        root_b + "/" + dir + "/" + qnn::ckpt::checkpoint_file_name(5);
    auto data = disk_b.read_file(newest);
    if (data && !data->empty()) {
      (*data)[data->size() / 2] ^= 0xFF;
      disk_b.write_file(newest, *data);
    }
  }
  outcome = qnn::ckpt::recover_latest_any({&replica_a, &replica_b}, dir);
  if (!outcome) {
    std::printf("FAILED: no recovery after corruption\n");
    return 1;
  }
  std::printf("replica B newest corrupted -> fell back to step %llu "
              "(checkpoint id %llu)\n",
              static_cast<unsigned long long>(outcome->step),
              static_cast<unsigned long long>(outcome->checkpoint_id));

  // Resume from whatever survived and finish the job.
  auto loss2 = make_loss();
  qq::Trainer resumed(loss2, config());
  resumed.restore(outcome->state);
  resumed.run(50 - resumed.step());
  std::printf("resumed and finished at step %llu, energy %.6f\n",
              static_cast<unsigned long long>(resumed.step()),
              resumed.evaluate_full_loss());

  fs::remove_all(root_a);
  fs::remove_all(root_b);
  return 0;
}

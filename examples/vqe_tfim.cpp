// vqe_tfim — variational ground-state search for the transverse-field
// Ising chain, with checkpointed training and an exact reference energy.
//
// The reference ground energy is computed with power iteration on
// (sigma*I - H) using Observable::apply — no external linear-algebra
// library. The VQE energy should approach it from above.
//
//   ./examples/vqe_tfim [qubits=6] [layers=3] [steps=150]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "ckpt/checkpointer.hpp"
#include "ckpt/trainer_hook.hpp"
#include "io/env.hpp"
#include "qnn/ansatz.hpp"
#include "qnn/loss.hpp"
#include "qnn/trainer.hpp"
#include "sim/pauli.hpp"
#include "util/rng.hpp"

namespace qq = qnn::qnn;
using qnn::sim::Observable;
using qnn::sim::StateVector;

namespace {

/// Ground-state energy by power iteration on (sigma*I - H), where sigma
/// upper-bounds the spectrum (sum of |coefficients|), so the ground state
/// of H is the dominant eigenvector of the shifted operator.
double exact_ground_energy(const Observable& h, std::size_t num_qubits) {
  double sigma = 0.0;
  for (const auto& term : h.terms()) {
    sigma += std::abs(term.coeff);
  }
  qnn::util::Rng rng(7);
  StateVector v(num_qubits);
  // Random dense start vector so no eigencomponent is exactly zero.
  for (auto& amp : v.mutable_amplitudes()) {
    amp = {rng.normal(), rng.normal()};
  }
  v.normalize();
  double energy = h.expectation(v);
  for (int it = 0; it < 2000; ++it) {
    StateVector hv = h.apply(v);
    // w = sigma*v - H v
    auto w = v;
    auto wa = w.mutable_amplitudes();
    const auto hva = hv.amplitudes();
    for (std::size_t i = 0; i < wa.size(); ++i) {
      wa[i] = sigma * wa[i] - hva[i];
    }
    w.normalize();
    v = std::move(w);
    const double next = h.expectation(v);
    if (std::abs(next - energy) < 1e-12) {
      energy = next;
      break;
    }
    energy = next;
  }
  return energy;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t qubits =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 6;
  const std::size_t layers =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 3;
  const std::size_t steps =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 150;

  const Observable hamiltonian =
      qnn::sim::transverse_field_ising(qubits, 1.0, 1.0);
  std::printf("TFIM chain: n=%zu, J=1, h=1 (critical point)\n", qubits);

  const double e0 = exact_ground_energy(hamiltonian, qubits);
  std::printf("exact ground energy (power iteration): %.8f\n\n", e0);

  qq::ExpectationLoss loss(qq::hardware_efficient(qubits, layers),
                           hamiltonian);
  qq::TrainerConfig config;
  config.optimizer = "adam";
  config.learning_rate = 0.05;
  config.seed = 1;
  qq::Trainer trainer(loss, config);

  qnn::io::PosixEnv env;
  qnn::ckpt::CheckpointPolicy policy;
  policy.every_steps = 25;
  qnn::ckpt::Checkpointer checkpointer(env, "/tmp/qnnckpt-vqe", policy);

  trainer.run(steps, [&](const qq::StepInfo& info) {
    checkpointer.maybe_checkpoint(trainer.capture());
    if (info.step % 25 == 0 || info.step == 1) {
      std::printf("  step %4llu  E = %.8f  (gap to exact: %.2e)\n",
                  static_cast<unsigned long long>(info.step), info.loss,
                  info.loss - e0);
    }
    return true;
  });

  const double final_energy = trainer.evaluate_full_loss();
  std::printf("\nfinal VQE energy:  %.8f\nexact ground:      %.8f\n"
              "relative error:    %.3e\n",
              final_energy, e0, std::abs((final_energy - e0) / e0));
  // Variational principle sanity: VQE energy must sit above the exact
  // ground energy (up to float fuzz).
  return final_energy >= e0 - 1e-9 ? 0 : 1;
}

// checkpoint_inspector — forensic CLI for qnnckpt checkpoint directories.
//
//   ./examples/checkpoint_inspector DIR            # summary of the dir
//   ./examples/checkpoint_inspector DIR ID         # deep-dive one file
//   ./examples/checkpoint_inspector DIR --verify   # full scrub report
//   ./examples/checkpoint_inspector DIR --plan N   # retention plan (keep N)
//   ./examples/checkpoint_inspector DIR --layout   # ranged section map
//                                                  # (header preads only)
//   ./examples/checkpoint_inspector DIR --wal      # delta-journal view
//                                                  # (frames, replay reach)
//   ./examples/checkpoint_inspector DIR --metrics  # run recovery through
//                                                  # an ObservedEnv, dump
//                                                  # the metrics registry
//   ./examples/checkpoint_inspector DIR --trace T.json
//                                                  # replay recovery into
//                                                  # a Chrome trace file
//                                                  # + flight recorder
//
// Any form additionally takes `--cold COLD_DIR`: the capacity-tier
// twin of DIR (the directory demoted objects were copied into),
// composed with DIR's hot tree through a TieredEnv so cold-resident
// checkpoints inspect and verify exactly like hot ones, with their
// residency annotated.
//
// Prints the manifest (including lifetime counters like dropped
// writes), per-checkpoint section layout (kind, codec, raw vs encoded
// size, delta flag), verification status (CRC-level salvage), tier
// residency, the retention state (what a GC run would keep/delete,
// plus orphan files a crash stranded), and for a resolvable checkpoint
// the decoded training metadata.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "ckpt/cas.hpp"
#include "ckpt/format.hpp"
#include "ckpt/manifest.hpp"
#include "ckpt/recovery.hpp"
#include "ckpt/state_codec.hpp"
#include "ckpt/store.hpp"
#include "ckpt/verify.hpp"
#include "ckpt/wal.hpp"
#include "io/env.hpp"
#include "obs/metrics.hpp"
#include "obs/observed_env.hpp"
#include "obs/trace.hpp"
#include "tier/tiered_env.hpp"
#include "util/strings.hpp"

using namespace qnn::ckpt;

namespace {

/// Rebases exactly the `from` directory prefix onto `to`: the cold
/// tier's view of the inspected directory, so the writer's logical
/// paths ("DIR/ckpt-...") resolve against the cold twin ("COLD_DIR/
/// ckpt-..."). Read-only use here, but the full contract is forwarded.
class RebaseEnv final : public qnn::io::ForwardingEnv {
 public:
  RebaseEnv(qnn::io::Env& base, std::string from, std::string to)
      : ForwardingEnv(base), from_(std::move(from)), to_(std::move(to)) {}

  std::unique_ptr<qnn::io::WritableFile> new_writable(
      const std::string& path, qnn::io::WriteMode mode) override {
    return base_.new_writable(rebased(path), mode);
  }
  std::unique_ptr<qnn::io::RandomAccessFile> open_ranged(
      const std::string& path) override {
    return base_.open_ranged(rebased(path));
  }
  void write_file_atomic(const std::string& path,
                         qnn::io::ByteSpan data) override {
    base_.write_file_atomic(rebased(path), data);
  }
  void write_file(const std::string& path, qnn::io::ByteSpan data) override {
    base_.write_file(rebased(path), data);
  }
  std::optional<qnn::io::Bytes> read_file(const std::string& path) override {
    return base_.read_file(rebased(path));
  }
  bool exists(const std::string& path) override {
    return base_.exists(rebased(path));
  }
  void remove_file(const std::string& path) override {
    base_.remove_file(rebased(path));
  }
  std::vector<std::string> list_dir(const std::string& dir) override {
    return base_.list_dir(rebased(dir));
  }
  std::optional<std::uint64_t> file_size(const std::string& path) override {
    return base_.file_size(rebased(path));
  }

 private:
  [[nodiscard]] std::string rebased(const std::string& path) const {
    if (path == from_) {
      return to_;
    }
    if (path.size() > from_.size() &&
        path.compare(0, from_.size(), from_) == 0 &&
        path[from_.size()] == '/') {
      return to_ + path.substr(from_.size());
    }
    return path;  // outside the inspected dir: untouched
  }

  const std::string from_;
  const std::string to_;
};

/// "[hot]" / "[cold]" / "[hot+cold]" when inspecting through a tiered
/// env; empty on a flat one.
std::string tier_label(qnn::tier::TieredEnv* tiered, const std::string& path) {
  if (tiered == nullptr) {
    return "";
  }
  const bool hot = tiered->hot().exists(path);
  const bool cold = tiered->cold().exists(path);
  if (!hot && !cold) {
    return "";
  }
  return std::string("  [") +
         (hot && cold ? "hot+cold" : (cold ? "cold" : "hot")) + "]";
}

/// Ranged layout view (--layout): the container's section map from a
/// header-only pread walk — no payload bytes move, so this works on
/// multi-GB containers (or a capacity tier) at metadata cost. No CRC64
/// verification either: use --verify / the default deep view for that.
void print_layout(qnn::io::Env& env, const std::string& dir,
                  const std::string& name) {
  try {
    const CheckpointIndex index = read_checkpoint_index(env, dir + "/" + name);
    std::printf("%s  (%s, v%u, header walk only)\n", name.c_str(),
                qnn::util::human_bytes(index.file_bytes).c_str(),
                index.version);
    std::printf("  id=%llu parent=%llu step=%llu\n",
                static_cast<unsigned long long>(index.checkpoint_id),
                static_cast<unsigned long long>(index.parent_id),
                static_cast<unsigned long long>(index.step));
    std::printf("  %-14s %-10s %12s %12s %10s %s\n", "section", "codec",
                "raw_bytes", "disk_bytes", "offset", "storage");
    for (const SectionIndexEntry& s : index.sections) {
      const char* storage = (s.flags & kSectionFlagExtern) != 0
                                ? "extern"
                                : ((s.flags & kSectionFlagChunked) != 0
                                       ? "chunked"
                                       : "inline");
      std::printf("  %-14s %-10s %12llu %12llu %10llu %s%s\n",
                  section_kind_name(s.kind).c_str(),
                  qnn::codec::codec_name(s.codec).c_str(),
                  static_cast<unsigned long long>(s.raw_len),
                  static_cast<unsigned long long>(s.enc_len),
                  static_cast<unsigned long long>(s.payload_offset), storage,
                  (s.flags & kSectionFlagDelta) != 0 ? " +delta" : "");
    }
  } catch (const std::exception& e) {
    std::printf("%s: %s\n", name.c_str(), e.what());
  }
}

void inspect_file(qnn::io::Env& env, const std::string& dir,
                  const std::string& name, ChunkStore& cas,
                  qnn::tier::TieredEnv* tiered) {
  const auto data = env.read_file(dir + "/" + name);
  if (!data) {
    std::printf("%s: unreadable\n", name.c_str());
    return;
  }
  const auto salvage =
      salvage_checkpoint(*data, DecodeOptions{.source = &cas});
  std::printf("%s  (%s)%s\n", name.c_str(),
              qnn::util::human_bytes(data->size()).c_str(),
              tier_label(tiered, dir + "/" + name).c_str());
  if (!salvage.file) {
    std::printf("  UNPARSEABLE: %s\n",
                salvage.notes.empty() ? "?" : salvage.notes[0].c_str());
    return;
  }
  const CheckpointFile& f = *salvage.file;
  std::printf("  id=%llu parent=%llu step=%llu  verify=%s\n",
              static_cast<unsigned long long>(f.checkpoint_id),
              static_cast<unsigned long long>(f.parent_id),
              static_cast<unsigned long long>(f.step),
              salvage.fully_intact ? "OK" : "DAMAGED");
  for (const auto& note : salvage.notes) {
    std::printf("  ! %s\n", note.c_str());
  }
  std::printf("  %-14s %-10s %12s %6s\n", "section", "codec", "raw_bytes",
              "delta");
  for (const Section& s : f.sections) {
    std::printf("  %-14s %-10s %12zu %6s\n",
                section_kind_name(s.kind).c_str(),
                qnn::codec::codec_name(s.codec).c_str(), s.payload.size(),
                s.is_delta() ? "yes" : "no");
  }
  // Content-addressed sections: how much of this file lives in the
  // shared chunk store rather than in the file itself.
  try {
    const auto refs = list_chunk_refs(*data);
    if (!refs.empty()) {
      std::uint64_t raw = 0;
      std::size_t resident = 0;
      for (const ChunkKey& key : refs) {
        raw += key.len;
        resident += cas.contains(key) ? 1 : 0;
      }
      std::printf("  extern chunks: %zu refs, %s raw, %zu resident\n",
                  refs.size(), qnn::util::human_bytes(raw).c_str(),
                  resident);
    }
  } catch (const std::exception&) {
    // refs unreadable: the salvage notes above already cover the damage
  }
}

/// The chunk store's population: packfiles, live vs total records.
void print_chunk_store(qnn::io::Env& env, const std::string& dir,
                       ChunkStore& cas, qnn::tier::TieredEnv* tiered) {
  const auto packs = cas.pack_names();
  if (packs.empty()) {
    return;
  }
  const auto stats = cas.stats();
  std::printf("\nchunk store (%s/chunks): %llu packfile(s), %llu chunk(s), "
              "%s stored\n",
              dir.c_str(), static_cast<unsigned long long>(stats.packfiles),
              static_cast<unsigned long long>(stats.chunks),
              qnn::util::human_bytes(stats.stored_bytes).c_str());
  if (stats.damaged_packs > 0) {
    std::printf("  ! %llu damaged packfile(s) skipped\n",
                static_cast<unsigned long long>(stats.damaged_packs));
  }
  for (const std::string& name : packs) {
    std::printf("  %s  (%s)%s\n", name.c_str(),
                qnn::util::human_bytes(
                    env.file_size(dir + "/chunks/" + name).value_or(0))
                    .c_str(),
                tier_label(tiered, dir + "/chunks/" + name).c_str());
  }
}

/// Tier residency overview: migratable bytes per tier + the TIERMAP's
/// advertised cold set.
void print_tier_state(const std::string& dir, qnn::tier::TieredEnv& tiered,
                      CheckpointStore& store) {
  qnn::tier::MigrationEngine* engine = store.tiering();
  if (engine == nullptr) {
    return;
  }
  std::printf("\ntier state (hot = %s, cold mounted):\n", dir.c_str());
  std::printf("  hot resident:  %s\n",
              qnn::util::human_bytes(engine->hot_resident_bytes()).c_str());
  std::printf("  cold resident: %s\n",
              qnn::util::human_bytes(engine->cold_resident_bytes()).c_str());
  const auto cold = engine->cold_files();
  for (const std::string& name : cold) {
    const bool still_cold = tiered.cold().exists(dir + "/" + name);
    std::printf("  TIERMAP cold: %s%s\n", name.c_str(),
                still_cold ? "" : "  (stale mark; dropped at next fence)");
  }
  if (cold.empty()) {
    std::printf("  TIERMAP: nothing demoted\n");
  }
}

/// Orphan checkpoint files — what a crash between a GC fence and its
/// deletions leaves behind. Exactly the set the store's startup sweep
/// will reap (same planner, so this can never disagree with the sweep).
std::vector<std::string> orphan_files(qnn::io::Env& env,
                                      const std::string& dir,
                                      const Manifest& manifest) {
  return CheckpointStore(env, dir, RetentionPolicy{}).plan_orphans(manifest);
}

void print_retention_state(qnn::io::Env& env, const std::string& dir,
                           const Manifest& manifest,
                           const RetentionPolicy& policy) {
  CheckpointStore store(env, dir, policy);
  const auto retained = store.plan_retained(manifest);
  std::printf("\nretention (keep-last %zu, spacing %llu, budget %llu):\n",
              policy.keep_last,
              static_cast<unsigned long long>(policy.effective_step_spacing()),
              static_cast<unsigned long long>(policy.byte_budget));
  for (const ManifestEntry& e : manifest.entries()) {
    const bool keep =
        std::binary_search(retained.begin(), retained.end(), e.id);
    std::printf("  id=%-4llu step=%-8llu %-8s %s\n",
                static_cast<unsigned long long>(e.id),
                static_cast<unsigned long long>(e.step),
                keep ? "KEEP" : "victim", e.file.c_str());
  }
  for (const std::string& name : orphan_files(env, dir, manifest)) {
    std::printf("  orphan (unreferenced, swept at next startup): %s\n",
                name.c_str());
  }
}

/// Delta-journal view (--wal): every wal-<epoch>.qwal on disk — frame
/// population, the step replay would reach, torn tail size, and whether
/// the log is the pinned active one or GC fodder.
int print_wal_state(qnn::io::Env& env, const std::string& dir,
                    const Manifest& manifest) {
  bool found = false;
  for (const std::string& name : env.list_dir(dir)) {
    const auto epoch = parse_wal_file_name(name);
    if (!epoch) {
      continue;
    }
    found = true;
    const bool advertised = manifest.find(*epoch) != nullptr;
    std::printf("%s  (%s)  %s\n", name.c_str(),
                qnn::util::human_bytes(
                    env.file_size(dir + "/" + name).value_or(0))
                    .c_str(),
                advertised ? "[active: epoch advertised, pinned]"
                           : "[stale: reaped at next GC/sweep]");
    const auto scan = scan_wal(env, dir, *epoch);
    if (!scan) {
      std::printf("  unreadable header: replay ignores this journal\n");
      continue;
    }
    std::printf("  epoch=%llu base_step=%llu\n",
                static_cast<unsigned long long>(scan->epoch),
                static_cast<unsigned long long>(scan->base_step));
    std::printf("  %llu fully-framed record(s); replay reaches step %llu\n",
                static_cast<unsigned long long>(scan->records),
                static_cast<unsigned long long>(scan->last_step));
    if (scan->torn_bytes > 0) {
      std::printf("  torn tail: %llu byte(s) past the last valid frame "
                  "(truncated at replay)\n",
                  static_cast<unsigned long long>(scan->torn_bytes));
    }
  }
  if (!found) {
    std::printf("no delta journal in %s\n", dir.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Positional args with `--cold ROOT` (and the --verify/--plan flags)
  // extracted wherever they appear.
  std::vector<std::string> args;
  std::optional<std::string> cold_root;
  bool verify = false;
  bool plan = false;
  bool layout = false;
  bool wal = false;
  bool metrics = false;
  std::optional<std::string> trace_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--cold" && i + 1 < argc) {
      cold_root = argv[++i];
    } else if (arg == "--verify") {
      verify = true;
    } else if (arg == "--plan") {
      plan = true;
    } else if (arg == "--layout") {
      layout = true;
    } else if (arg == "--wal") {
      wal = true;
    } else if (arg == "--metrics") {
      metrics = true;
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else {
      args.push_back(arg);
    }
  }
  if (args.empty()) {
    std::fprintf(stderr,
                 "usage: %s CHECKPOINT_DIR [CHECKPOINT_ID | --verify | "
                 "--plan KEEP_LAST | --layout | --wal | --metrics | "
                 "--trace OUT.json] [--cold COLD_DIR]\n",
                 argv[0]);
    return 2;
  }
  const std::string dir = args[0];
  qnn::io::PosixEnv posix;
  // With a cold twin, inspect through the same hot/cold composition
  // the writer used; reads stay promotion-free (forensics must not
  // move data).
  std::optional<RebaseEnv> cold_mount;
  std::optional<qnn::tier::TieredEnv> tiered;
  qnn::io::Env* env_ptr = &posix;
  if (cold_root) {
    cold_mount.emplace(posix, dir, *cold_root);
    tiered.emplace(posix, *cold_mount, /*promote_on_read=*/false);
    env_ptr = &*tiered;
  }
  qnn::io::Env& env = *env_ptr;

  if (verify) {
    const auto report = verify_directory(env, dir);
    std::fputs(report.summary().c_str(), stdout);
    return report.healthy() ? 0 : 1;
  }

  if (metrics || trace_path) {
    // Observability replay: run the full recovery path through an
    // instrumented Env (and, with --trace, a tracer), then dump what it
    // recorded — per-op I/O metrics, the ordered flight-recorder events,
    // and a Chrome trace file. Recovery is read-only, so this is safe on
    // a live directory.
    qnn::obs::MetricsRegistry registry;
    qnn::obs::ObservedEnv observed(env, registry);
    qnn::obs::Tracer tracer;
    RecoveryOptions options;
    options.tracer = trace_path ? &tracer : nullptr;
    const auto outcome = recover_latest(observed, dir, options);
    if (outcome) {
      std::printf("recovered id=%llu step=%llu\n",
                  static_cast<unsigned long long>(outcome->checkpoint_id),
                  static_cast<unsigned long long>(outcome->step));
      std::printf("\nflight recorder (%zu event(s), in order):\n",
                  outcome->events.size());
      for (const FlightEvent& e : outcome->events) {
        std::printf("  %s", e.name.c_str());
        for (const auto& [k, v] : e.kv) {
          std::printf("  %s=%s", k.c_str(), v.c_str());
        }
        std::printf("\n");
      }
    } else {
      std::printf("no recoverable checkpoint in %s\n", dir.c_str());
    }
    if (metrics) {
      std::printf("\nmetrics registry:\n%s", registry.text().c_str());
      std::printf("RESULT %s\n", registry.json("inspector").c_str());
    }
    if (trace_path) {
      tracer.write(*trace_path);
      std::printf("\ntrace: %zu event(s) written to %s\n",
                  tracer.event_count(), trace_path->c_str());
    }
    return outcome ? 0 : 1;
  }

  if (layout) {
    // Header-walk every container: the ranged view for directories too
    // large (or too cold) to read in full.
    for (const std::string& name : env.list_dir(dir)) {
      if (parse_checkpoint_file_name(name)) {
        print_layout(env, dir, name);
      }
    }
    return 0;
  }

  if (wal) {
    return print_wal_state(env, dir, Manifest::load(env, dir));
  }

  if (plan) {
    RetentionPolicy policy;
    if (args.size() >= 2) {
      policy.keep_last = static_cast<std::size_t>(
          std::strtoull(args[1].c_str(), nullptr, 10));
    }
    const Manifest manifest = Manifest::load(env, dir);
    print_retention_state(env, dir, manifest, policy);
    return 0;
  }

  if (args.size() >= 2) {
    // Deep dive: resolve one checkpoint (including its delta chain) and
    // show the decoded training metadata.
    const std::uint64_t id = std::strtoull(args[1].c_str(), nullptr, 10);
    ChunkStore cas(env, dir);
    inspect_file(env, dir, checkpoint_file_name(id), cas,
                 tiered ? &*tiered : nullptr);
    try {
      const auto state = load_checkpoint(env, dir, id);
      std::printf("\nresolved training state:\n");
      std::printf("  workload   %s\n  optimizer  %s\n  step       %llu\n"
                  "  epoch      %llu (cursor %llu, permutation %zu)\n"
                  "  params     %zu doubles\n  loss hist  %zu entries%s\n"
                  "  simulator  %s\n",
                  state.workload_tag.c_str(), state.optimizer_name.c_str(),
                  static_cast<unsigned long long>(state.step),
                  static_cast<unsigned long long>(state.epoch),
                  static_cast<unsigned long long>(state.cursor),
                  state.permutation.size(), state.params.size(),
                  state.loss_history.size(),
                  state.loss_history.empty() ? "" : ", latest below",
                  state.simulator_state.empty()
                      ? "none"
                      : qnn::util::human_bytes(state.simulator_state.size())
                            .c_str());
      if (!state.loss_history.empty()) {
        std::printf("  last loss  %.8f\n", state.loss_history.back());
      }
    } catch (const std::exception& e) {
      std::printf("\nfailed to resolve checkpoint %llu: %s\n",
                  static_cast<unsigned long long>(id), e.what());
      return 1;
    }
    return 0;
  }

  // Directory summary.
  const Manifest manifest = Manifest::load(env, dir);
  std::printf("manifest: %zu entries\n", manifest.entries().size());
  if (manifest.parse_warnings() > 0) {
    std::printf("  ! %zu unparseable manifest line(s) skipped\n",
                manifest.parse_warnings());
  }
  // Lifetime counters the manifest carries across restarts. A non-zero
  // dropped_writes means checkpoints silently vanished in the async
  // pipeline (encode failure or shutdown refusals) — exactly the kind
  // of loss that leaves no file behind to inspect.
  for (const auto& [key, value] : manifest.stats()) {
    std::printf("  lifetime %s: %llu%s\n", key.c_str(),
                static_cast<unsigned long long>(value),
                key == "dropped_writes" && value > 0
                    ? "  (!) checkpoints lost in the async pipeline"
                    : "");
  }
  for (const ManifestEntry& e : manifest.entries()) {
    std::printf("  id=%-4llu parent=%-4llu step=%-8llu %-24s %s\n",
                static_cast<unsigned long long>(e.id),
                static_cast<unsigned long long>(e.parent_id),
                static_cast<unsigned long long>(e.step), e.file.c_str(),
                qnn::util::human_bytes(e.bytes).c_str());
  }
  for (const std::string& name : orphan_files(env, dir, manifest)) {
    std::printf("  orphan (unreferenced, swept at next startup): %s\n",
                name.c_str());
  }
  std::printf("\nfiles on disk:\n");
  ChunkStore cas(env, dir);  // one packfile scan for the whole listing
  for (const std::string& name : env.list_dir(dir)) {
    if (parse_checkpoint_file_name(name)) {
      inspect_file(env, dir, name, cas, tiered ? &*tiered : nullptr);
    }
  }
  print_chunk_store(env, dir, cas, tiered ? &*tiered : nullptr);
  if (tiered) {
    CheckpointStore store(env, dir, RetentionPolicy{});
    print_tier_state(dir, *tiered, store);
  }
  const auto newest = recover_latest(env, dir);
  if (newest) {
    std::printf("\nnewest recoverable checkpoint: id=%llu (step %llu)\n",
                static_cast<unsigned long long>(newest->checkpoint_id),
                static_cast<unsigned long long>(newest->step));
  } else {
    std::printf("\nno recoverable checkpoint in this directory\n");
  }
  return 0;
}

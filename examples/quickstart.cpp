// quickstart — the 60-second tour of qnnckpt.
//
// Trains a small VQE job, checkpoints every 10 steps, simulates a crash,
// recovers from disk, and finishes the run — verifying the resumed result
// is bit-identical to an uninterrupted run.
//
//   ./examples/quickstart
#include <cstdio>
#include <filesystem>

#include "ckpt/checkpointer.hpp"
#include "ckpt/trainer_hook.hpp"
#include "fault/crash_point.hpp"
#include "io/env.hpp"
#include "qnn/ansatz.hpp"
#include "qnn/loss.hpp"
#include "qnn/trainer.hpp"
#include "sim/pauli.hpp"

namespace qq = qnn::qnn;

int main() {
  // 1. A hybrid quantum-classical workload: minimise the energy of a
  //    4-qubit transverse-field Ising Hamiltonian with a 2-layer
  //    hardware-efficient ansatz.
  auto make_loss = [] {
    return qq::ExpectationLoss(qq::hardware_efficient(4, 2),
                               qnn::sim::transverse_field_ising(4, 1.0, 1.0));
  };
  qq::TrainerConfig config;
  config.optimizer = "adam";
  config.learning_rate = 0.1;
  config.seed = 42;

  // 2. A checkpoint policy: persist the full classical training state
  //    (params + Adam moments + RNG position + batch cursor) every 10
  //    steps, keep the newest 3 checkpoints, compress with LZ.
  qnn::io::PosixEnv env;
  const std::string dir = "/tmp/qnnckpt-quickstart";
  std::filesystem::remove_all(dir);  // demo always starts cold
  qnn::ckpt::CheckpointPolicy policy;
  policy.every_steps = 10;
  policy.retention.keep_last = 3;

  // 3. Train... and crash at step 37 (the cloud preempted us).
  {
    auto loss = make_loss();
    qq::Trainer trainer(loss, config);
    qnn::ckpt::Checkpointer checkpointer(env, dir, policy);
    try {
      trainer.run(100, qnn::fault::crash_at(
                           37, qnn::ckpt::checkpointing_callback(
                                   trainer, checkpointer)));
    } catch (const qnn::fault::SimulatedCrash&) {
      std::printf("step 37: preempted! losing in-memory state...\n");
    }
  }

  // 4. New process: recover the newest checkpoint and finish the job.
  double resumed_energy = 0.0;
  {
    auto loss = make_loss();
    qq::Trainer trainer(loss, config);
    const auto recovered = qnn::ckpt::resume_or_start(env, dir, trainer);
    std::printf("recovered checkpoint at step %llu; resuming...\n",
                static_cast<unsigned long long>(recovered->step));

    qnn::ckpt::Checkpointer checkpointer(env, dir, policy);
    trainer.run(100 - trainer.step(),
                qnn::ckpt::checkpointing_callback(trainer, checkpointer));
    resumed_energy = trainer.evaluate_full_loss();
    std::printf("finished at step %llu, energy = %.6f\n",
                static_cast<unsigned long long>(trainer.step()),
                resumed_energy);
  }

  // 5. Prove the resume changed nothing: an uninterrupted run lands on
  //    exactly the same energy.
  auto loss = make_loss();
  qq::Trainer reference(loss, config);
  reference.run(100);
  const double reference_energy = reference.evaluate_full_loss();
  std::printf("uninterrupted reference energy = %.6f\n", reference_energy);
  std::printf(resumed_energy == reference_energy
                  ? "bit-exact resume: OK\n"
                  : "MISMATCH — this is a bug\n");
  return resumed_energy == reference_energy ? 0 : 1;
}

#include "io/env.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <system_error>

namespace qnn::io {

namespace fs = std::filesystem;

namespace {

[[noreturn]] void throw_errno(const std::string& what,
                              const std::string& path) {
  throw std::runtime_error(what + " '" + path + "': " + std::strerror(errno));
}

void ensure_parent_dir(const std::string& path) {
  const fs::path parent = fs::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    fs::create_directories(parent, ec);
    if (ec) {
      throw std::runtime_error("create_directories '" + parent.string() +
                               "': " + ec.message());
    }
  }
}

/// Writes all of `data` to `fd`, handling short writes.
void write_all(int fd, ByteSpan data, const std::string& path) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw_errno("write", path);
    }
    off += static_cast<std::size_t>(n);
  }
}

void fsync_path(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return;  // best effort (e.g. directories on some filesystems)
  }
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

// ---------------------------------------------------------------------------
// Whole-buffer wrappers (the historical contract, now one-shot streams)
// ---------------------------------------------------------------------------

void Env::write_file_atomic(const std::string& path, ByteSpan data) {
  auto file = new_writable(path, WriteMode::kAtomic);
  file->append(data);
  file->close();
}

void Env::write_file(const std::string& path, ByteSpan data) {
  auto file = new_writable(path, WriteMode::kPlain);
  file->append(data);
  file->close();
}

std::optional<Bytes> Env::read_file(const std::string& path) {
  auto file = open_ranged(path);
  if (!file) {
    return std::nullopt;
  }
  return file->pread(0, file->size());
}

std::optional<std::uint64_t> stream_copy(Env& src, Env& dst,
                                         const std::string& path) {
  /// Big enough to amortize per-op latency on a shaped device, small
  /// enough that copy memory stays O(1) regardless of object size.
  constexpr std::uint64_t kSliceBytes = std::uint64_t{1} << 20;
  auto in = src.open_ranged(path);
  if (!in) {
    return std::nullopt;
  }
  auto out = dst.new_writable(path, WriteMode::kAtomic);
  const std::uint64_t total = in->size();
  std::uint64_t off = 0;
  while (off < total) {
    const Bytes piece = in->pread(off, kSliceBytes);
    if (piece.empty()) {
      break;  // shrank underneath us; install what we have
    }
    out->append(piece);
    off += piece.size();
  }
  out->close();
  return off;
}

// ---------------------------------------------------------------------------
// PosixEnv
// ---------------------------------------------------------------------------

/// Streaming POSIX writer. kAtomic stages into `<path>.tmp` and renames
/// on close; kPlain opens the target with O_TRUNC and lands every append
/// in place.
class PosixWritableFile final : public WritableFile {
 public:
  PosixWritableFile(PosixEnv& env, std::string path, WriteMode mode)
      : env_(env), path_(std::move(path)), mode_(mode) {
    ensure_parent_dir(path_);
    const std::string& target =
        mode_ == WriteMode::kAtomic ? (tmp_ = path_ + ".tmp") : path_;
    fd_ = ::open(target.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd_ < 0) {
      throw_errno("open", target);
    }
  }

  ~PosixWritableFile() override {
    if (fd_ >= 0) {
      ::close(fd_);
      if (mode_ == WriteMode::kAtomic) {
        ::unlink(tmp_.c_str());  // aborted install: nothing ever appears
      }
    }
  }

  void append(ByteSpan data) override {
    write_all(fd_, data, path_);
    written_ += data.size();
    if (mode_ == WriteMode::kPlain) {
      env_.bytes_written_ += data.size();
    }
  }

  void sync() override {
    if (env_.durable_ && fd_ >= 0 && ::fsync(fd_) != 0) {
      throw_errno("fsync", path_);
    }
  }

  void close() override {
    if (mode_ == WriteMode::kAtomic) {
      sync();  // the naive (kPlain) writer deliberately never fsyncs
    }
    const int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) {
      if (mode_ == WriteMode::kAtomic) {
        ::unlink(tmp_.c_str());
      }
      throw_errno("close", path_);
    }
    if (mode_ == WriteMode::kAtomic) {
      if (::rename(tmp_.c_str(), path_.c_str()) != 0) {
        ::unlink(tmp_.c_str());
        throw_errno("rename", path_);
      }
      if (env_.durable_) {
        const fs::path parent = fs::path(path_).parent_path();
        if (!parent.empty()) {
          fsync_path(parent.string());
        }
      }
      env_.bytes_written_ += written_;
    }
  }

 private:
  PosixEnv& env_;
  const std::string path_;
  std::string tmp_;
  const WriteMode mode_;
  int fd_ = -1;
  std::uint64_t written_ = 0;
};

/// pread-backed ranged reader; size fixed by fstat at open (POSIX
/// open-file semantics shield it from later renames/unlinks).
class PosixRandomAccessFile final : public RandomAccessFile {
 public:
  PosixRandomAccessFile(PosixEnv& env, const std::string& path, int fd,
                        std::uint64_t size)
      : env_(env), path_(path), fd_(fd), size_(size) {}

  ~PosixRandomAccessFile() override { ::close(fd_); }

  [[nodiscard]] std::uint64_t size() const override { return size_; }

  Bytes pread(std::uint64_t offset, std::uint64_t n) override {
    if (offset >= size_) {
      return {};
    }
    n = std::min<std::uint64_t>(n, size_ - offset);
    Bytes out(static_cast<std::size_t>(n));
    std::size_t got = 0;
    while (got < out.size()) {
      const ssize_t r = ::pread(fd_, out.data() + got, out.size() - got,
                                static_cast<off_t>(offset + got));
      if (r < 0) {
        if (errno == EINTR) {
          continue;
        }
        throw_errno("pread", path_);
      }
      if (r == 0) {
        break;  // shrank underneath us: short read
      }
      got += static_cast<std::size_t>(r);
    }
    out.resize(got);
    env_.bytes_read_ += out.size();
    return out;
  }

 private:
  PosixEnv& env_;
  const std::string path_;
  const int fd_;
  const std::uint64_t size_;
};

std::unique_ptr<WritableFile> PosixEnv::new_writable(const std::string& path,
                                                     WriteMode mode) {
  return std::make_unique<PosixWritableFile>(*this, path, mode);
}

std::unique_ptr<RandomAccessFile> PosixEnv::open_ranged(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return nullptr;
    }
    throw_errno("open", path);
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw_errno("fstat", path);
  }
  return std::make_unique<PosixRandomAccessFile>(
      *this, path, fd, static_cast<std::uint64_t>(st.st_size));
}

bool PosixEnv::exists(const std::string& path) {
  std::error_code ec;
  return fs::exists(path, ec);
}

void PosixEnv::remove_file(const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);
}

std::vector<std::string> PosixEnv::list_dir(const std::string& dir) {
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.is_regular_file()) {
      out.push_back(entry.path().filename().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::optional<std::uint64_t> PosixEnv::file_size(const std::string& path) {
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  if (ec) {
    return std::nullopt;
  }
  return size;
}

}  // namespace qnn::io

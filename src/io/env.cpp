#include "io/env.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <system_error>

namespace qnn::io {

namespace fs = std::filesystem;

namespace {

[[noreturn]] void throw_errno(const std::string& what,
                              const std::string& path) {
  throw std::runtime_error(what + " '" + path + "': " + std::strerror(errno));
}

void ensure_parent_dir(const std::string& path) {
  const fs::path parent = fs::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    fs::create_directories(parent, ec);
    if (ec) {
      throw std::runtime_error("create_directories '" + parent.string() +
                               "': " + ec.message());
    }
  }
}

/// Writes all of `data` to `fd`, handling short writes.
void write_all(int fd, ByteSpan data, const std::string& path) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw_errno("write", path);
    }
    off += static_cast<std::size_t>(n);
  }
}

void fsync_path(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return;  // best effort (e.g. directories on some filesystems)
  }
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

void PosixEnv::write_file_atomic(const std::string& path, ByteSpan data) {
  ensure_parent_dir(path);
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw_errno("open", tmp);
  }
  try {
    write_all(fd, data, tmp);
    if (durable_ && ::fsync(fd) != 0) {
      throw_errno("fsync", tmp);
    }
  } catch (...) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw;
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    throw_errno("close", tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    throw_errno("rename", path);
  }
  if (durable_) {
    const fs::path parent = fs::path(path).parent_path();
    if (!parent.empty()) {
      fsync_path(parent.string());
    }
  }
  bytes_written_ += data.size();
}

void PosixEnv::write_file(const std::string& path, ByteSpan data) {
  ensure_parent_dir(path);
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw_errno("open", path);
  }
  try {
    write_all(fd, data, path);
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
  bytes_written_ += data.size();
}

std::optional<Bytes> PosixEnv::read_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return std::nullopt;
    }
    throw_errno("open", path);
  }
  Bytes out;
  std::uint8_t buf[1 << 16];
  while (true) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      ::close(fd);
      throw_errno("read", path);
    }
    if (n == 0) {
      break;
    }
    out.insert(out.end(), buf, buf + n);
  }
  ::close(fd);
  bytes_read_ += out.size();
  return out;
}

bool PosixEnv::exists(const std::string& path) {
  std::error_code ec;
  return fs::exists(path, ec);
}

void PosixEnv::remove_file(const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);
}

std::vector<std::string> PosixEnv::list_dir(const std::string& dir) {
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.is_regular_file()) {
      out.push_back(entry.path().filename().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::optional<std::uint64_t> PosixEnv::file_size(const std::string& path) {
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  if (ec) {
    return std::nullopt;
  }
  return size;
}

}  // namespace qnn::io

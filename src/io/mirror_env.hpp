// Replicated storage Env.
//
// Writes go to every replica (local disk + network mount, two disks, ...);
// reads are served by the first replica that has the file. Combined with
// checkpoint-level CRC verification in recovery, this survives the loss
// or corruption of all but one replica: recovery reads a candidate, and
// if it fails verification, read_fallback() lets the caller try the same
// path on later replicas.
//
// Write errors on a minority of replicas are tolerated (counted, not
// thrown) as long as at least one replica accepts the write — a degraded
// mirror is better than a dead training job. All replicas failing throws.
// Streamed writes carry the same contract: a replica that fails any
// append or close drops out of the stream, and the close throws only
// when no replica survived it.
#pragma once

#include <vector>

#include "io/env.hpp"

namespace qnn::io {

class MirrorEnv final : public Env {
 public:
  /// `replicas` are borrowed and must outlive the MirrorEnv.
  explicit MirrorEnv(std::vector<Env*> replicas);

  std::unique_ptr<WritableFile> new_writable(const std::string& path,
                                             WriteMode mode) override;
  std::unique_ptr<RandomAccessFile> open_ranged(
      const std::string& path) override;
  bool exists(const std::string& path) override;
  void remove_file(const std::string& path) override;
  std::vector<std::string> list_dir(const std::string& dir) override;
  std::optional<std::uint64_t> file_size(const std::string& path) override;
  [[nodiscard]] std::uint64_t bytes_written() const override;
  [[nodiscard]] std::uint64_t bytes_read() const override;

  /// Reads `path` from replica `index` only (recovery's cross-replica
  /// fallback). std::nullopt when absent there.
  std::optional<Bytes> read_replica(std::size_t index,
                                    const std::string& path);

  [[nodiscard]] std::size_t replica_count() const { return replicas_.size(); }

  /// Direct access to one replica as a full Env (cross-replica recovery).
  [[nodiscard]] Env& replica(std::size_t index) {
    return *replicas_.at(index);
  }

  /// Writes that failed on some (but not all) replicas since creation.
  [[nodiscard]] std::uint64_t degraded_writes() const {
    return degraded_writes_;
  }

 private:
  friend class MirrorWritableFile;
  friend class MirrorRandomAccessFile;

  std::vector<Env*> replicas_;
  /// Atomic: multi-worker AsyncWriter drives write paths concurrently.
  std::atomic<std::uint64_t> degraded_writes_{0};
  /// Logical read bytes served by this mirror (whichever replica won).
  std::atomic<std::uint64_t> bytes_read_{0};
};

}  // namespace qnn::io

// In-memory Env for fast, hermetic tests.
#pragma once

#include <map>
#include <mutex>

#include "io/env.hpp"

namespace qnn::io {

/// A tiny in-memory filesystem. Thread-safe (the async checkpoint writer
/// and the training thread may touch it concurrently in tests). Files are
/// stored as shared immutable buffers, so a ranged read handle snapshots
/// the file at open — an atomic overwrite after open never tears a
/// reader, matching POSIX open-file semantics.
class MemEnv final : public Env {
 public:
  std::unique_ptr<WritableFile> new_writable(const std::string& path,
                                             WriteMode mode) override;
  std::unique_ptr<RandomAccessFile> open_ranged(
      const std::string& path) override;
  bool exists(const std::string& path) override;
  void remove_file(const std::string& path) override;
  std::vector<std::string> list_dir(const std::string& dir) override;
  std::optional<std::uint64_t> file_size(const std::string& path) override;
  [[nodiscard]] std::uint64_t bytes_written() const override;
  [[nodiscard]] std::uint64_t bytes_read() const override;

  /// Number of files currently stored (test helper).
  [[nodiscard]] std::size_t file_count() const;

  /// Directly corrupts a stored file (test helper): flips the bit at
  /// `bit_index` (modulo file size in bits). Returns false when absent or
  /// empty.
  bool flip_bit(const std::string& path, std::uint64_t bit_index);

  /// Truncates a stored file to `len` bytes (test helper). Returns false
  /// when absent.
  bool truncate(const std::string& path, std::uint64_t len);

 private:
  friend class MemWritableFile;
  friend class MemRandomAccessFile;
  using FileRef = std::shared_ptr<const Bytes>;

  /// Installs `data` at `path` and counts the write (locked internally).
  void install(const std::string& path, Bytes data);
  /// Appends to the stored file in place (kPlain streaming).
  void append_plain(const std::string& path, ByteSpan data);

  mutable std::mutex mu_;
  std::map<std::string, FileRef> files_;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t bytes_read_ = 0;
};

}  // namespace qnn::io

// In-memory Env for fast, hermetic tests.
#pragma once

#include <map>
#include <mutex>

#include "io/env.hpp"

namespace qnn::io {

/// A tiny in-memory filesystem. Thread-safe (the async checkpoint writer
/// and the training thread may touch it concurrently in tests).
class MemEnv final : public Env {
 public:
  void write_file_atomic(const std::string& path, ByteSpan data) override;
  void write_file(const std::string& path, ByteSpan data) override;
  std::optional<Bytes> read_file(const std::string& path) override;
  bool exists(const std::string& path) override;
  void remove_file(const std::string& path) override;
  std::vector<std::string> list_dir(const std::string& dir) override;
  std::optional<std::uint64_t> file_size(const std::string& path) override;
  [[nodiscard]] std::uint64_t bytes_written() const override;
  [[nodiscard]] std::uint64_t bytes_read() const override;

  /// Number of files currently stored (test helper).
  [[nodiscard]] std::size_t file_count() const;

  /// Directly corrupts a stored file (test helper): flips the bit at
  /// `bit_index` (modulo file size in bits). Returns false when absent or
  /// empty.
  bool flip_bit(const std::string& path, std::uint64_t bit_index);

  /// Truncates a stored file to `len` bytes (test helper). Returns false
  /// when absent.
  bool truncate(const std::string& path, std::uint64_t len);

 private:
  mutable std::mutex mu_;
  std::map<std::string, Bytes> files_;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t bytes_read_ = 0;
};

}  // namespace qnn::io

#include "io/mem_env.hpp"

#include <algorithm>

namespace qnn::io {

namespace {
/// True when `path` names a file directly inside `dir`.
bool in_dir(const std::string& path, const std::string& dir) {
  if (path.size() <= dir.size() + 1 || path.compare(0, dir.size(), dir) != 0 ||
      path[dir.size()] != '/') {
    return false;
  }
  return path.find('/', dir.size() + 1) == std::string::npos;
}
}  // namespace

void MemEnv::write_file_atomic(const std::string& path, ByteSpan data) {
  std::lock_guard lock(mu_);
  files_[path] = Bytes(data.begin(), data.end());
  bytes_written_ += data.size();
}

void MemEnv::write_file(const std::string& path, ByteSpan data) {
  // In memory both writes are atomic; FaultEnv models the difference.
  write_file_atomic(path, data);
}

std::optional<Bytes> MemEnv::read_file(const std::string& path) {
  std::lock_guard lock(mu_);
  const auto it = files_.find(path);
  if (it == files_.end()) {
    return std::nullopt;
  }
  bytes_read_ += it->second.size();
  return it->second;
}

bool MemEnv::exists(const std::string& path) {
  std::lock_guard lock(mu_);
  return files_.contains(path);
}

void MemEnv::remove_file(const std::string& path) {
  std::lock_guard lock(mu_);
  files_.erase(path);
}

std::vector<std::string> MemEnv::list_dir(const std::string& dir) {
  std::lock_guard lock(mu_);
  std::vector<std::string> out;
  for (const auto& [path, _] : files_) {
    if (in_dir(path, dir)) {
      out.push_back(path.substr(dir.size() + 1));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::optional<std::uint64_t> MemEnv::file_size(const std::string& path) {
  std::lock_guard lock(mu_);
  const auto it = files_.find(path);
  if (it == files_.end()) {
    return std::nullopt;
  }
  return it->second.size();
}

std::uint64_t MemEnv::bytes_written() const {
  std::lock_guard lock(mu_);
  return bytes_written_;
}

std::uint64_t MemEnv::bytes_read() const {
  std::lock_guard lock(mu_);
  return bytes_read_;
}

std::size_t MemEnv::file_count() const {
  std::lock_guard lock(mu_);
  return files_.size();
}

bool MemEnv::flip_bit(const std::string& path, std::uint64_t bit_index) {
  std::lock_guard lock(mu_);
  const auto it = files_.find(path);
  if (it == files_.end() || it->second.empty()) {
    return false;
  }
  const std::uint64_t bit = bit_index % (it->second.size() * 8);
  it->second[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  return true;
}

bool MemEnv::truncate(const std::string& path, std::uint64_t len) {
  std::lock_guard lock(mu_);
  const auto it = files_.find(path);
  if (it == files_.end()) {
    return false;
  }
  if (len < it->second.size()) {
    it->second.resize(len);
  }
  return true;
}

}  // namespace qnn::io

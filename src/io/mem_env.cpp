#include "io/mem_env.hpp"

#include <algorithm>

namespace qnn::io {

namespace {
/// True when `path` names a file directly inside `dir`.
bool in_dir(const std::string& path, const std::string& dir) {
  if (path.size() <= dir.size() + 1 || path.compare(0, dir.size(), dir) != 0 ||
      path[dir.size()] != '/') {
    return false;
  }
  return path.find('/', dir.size() + 1) == std::string::npos;
}
}  // namespace

/// Streaming writer. kAtomic buffers the stream privately and installs
/// it all-or-nothing at close (the in-memory twin of tmp + rename);
/// kPlain truncates the target at open and publishes every append
/// immediately — exactly the torn-append window the crash engine tears.
class MemWritableFile final : public WritableFile {
 public:
  MemWritableFile(MemEnv& env, std::string path, WriteMode mode)
      : env_(env), path_(std::move(path)), mode_(mode) {
    if (mode_ == WriteMode::kPlain) {
      env_.install(path_, Bytes{});  // truncate; counts zero bytes
    }
  }

  void append(ByteSpan data) override {
    if (mode_ == WriteMode::kAtomic) {
      staged_.insert(staged_.end(), data.begin(), data.end());
    } else {
      env_.append_plain(path_, data);
    }
  }

  void sync() override {}  // memory is as durable as it gets

  void close() override {
    if (mode_ == WriteMode::kAtomic && !closed_) {
      env_.install(path_, std::move(staged_));
    }
    closed_ = true;
  }

 private:
  MemEnv& env_;
  const std::string path_;
  const WriteMode mode_;
  Bytes staged_;
  bool closed_ = false;
};

/// Snapshot reader over the shared immutable buffer taken at open.
class MemRandomAccessFile final : public RandomAccessFile {
 public:
  MemRandomAccessFile(MemEnv& env, MemEnv::FileRef data)
      : env_(env), data_(std::move(data)) {}

  [[nodiscard]] std::uint64_t size() const override { return data_->size(); }

  Bytes pread(std::uint64_t offset, std::uint64_t n) override {
    if (offset >= data_->size()) {
      return {};
    }
    n = std::min<std::uint64_t>(n, data_->size() - offset);
    Bytes out(data_->begin() + static_cast<std::ptrdiff_t>(offset),
              data_->begin() + static_cast<std::ptrdiff_t>(offset + n));
    std::lock_guard lock(env_.mu_);
    env_.bytes_read_ += out.size();
    return out;
  }

 private:
  MemEnv& env_;
  const MemEnv::FileRef data_;
};

void MemEnv::install(const std::string& path, Bytes data) {
  std::lock_guard lock(mu_);
  bytes_written_ += data.size();
  files_[path] = std::make_shared<const Bytes>(std::move(data));
}

void MemEnv::append_plain(const std::string& path, ByteSpan data) {
  std::lock_guard lock(mu_);
  const auto it = files_.find(path);
  Bytes grown =
      it != files_.end() ? *it->second : Bytes{};  // copy-on-write extend
  grown.insert(grown.end(), data.begin(), data.end());
  files_[path] = std::make_shared<const Bytes>(std::move(grown));
  bytes_written_ += data.size();
}

std::unique_ptr<WritableFile> MemEnv::new_writable(const std::string& path,
                                                   WriteMode mode) {
  return std::make_unique<MemWritableFile>(*this, path, mode);
}

std::unique_ptr<RandomAccessFile> MemEnv::open_ranged(
    const std::string& path) {
  std::lock_guard lock(mu_);
  const auto it = files_.find(path);
  if (it == files_.end()) {
    return nullptr;
  }
  return std::make_unique<MemRandomAccessFile>(*this, it->second);
}

bool MemEnv::exists(const std::string& path) {
  std::lock_guard lock(mu_);
  return files_.contains(path);
}

void MemEnv::remove_file(const std::string& path) {
  std::lock_guard lock(mu_);
  files_.erase(path);
}

std::vector<std::string> MemEnv::list_dir(const std::string& dir) {
  std::lock_guard lock(mu_);
  std::vector<std::string> out;
  for (const auto& [path, _] : files_) {
    if (in_dir(path, dir)) {
      out.push_back(path.substr(dir.size() + 1));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::optional<std::uint64_t> MemEnv::file_size(const std::string& path) {
  std::lock_guard lock(mu_);
  const auto it = files_.find(path);
  if (it == files_.end()) {
    return std::nullopt;
  }
  return it->second->size();
}

std::uint64_t MemEnv::bytes_written() const {
  std::lock_guard lock(mu_);
  return bytes_written_;
}

std::uint64_t MemEnv::bytes_read() const {
  std::lock_guard lock(mu_);
  return bytes_read_;
}

std::size_t MemEnv::file_count() const {
  std::lock_guard lock(mu_);
  return files_.size();
}

bool MemEnv::flip_bit(const std::string& path, std::uint64_t bit_index) {
  std::lock_guard lock(mu_);
  const auto it = files_.find(path);
  if (it == files_.end() || it->second->empty()) {
    return false;
  }
  Bytes copy = *it->second;  // clone-on-write: open handles keep old bytes
  const std::uint64_t bit = bit_index % (copy.size() * 8);
  copy[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  it->second = std::make_shared<const Bytes>(std::move(copy));
  return true;
}

bool MemEnv::truncate(const std::string& path, std::uint64_t len) {
  std::lock_guard lock(mu_);
  const auto it = files_.find(path);
  if (it == files_.end()) {
    return false;
  }
  if (len < it->second->size()) {
    Bytes copy = *it->second;
    copy.resize(len);
    it->second = std::make_shared<const Bytes>(std::move(copy));
  }
  return true;
}

}  // namespace qnn::io

#include "io/mirror_env.hpp"

#include <set>
#include <stdexcept>

namespace qnn::io {

MirrorEnv::MirrorEnv(std::vector<Env*> replicas)
    : replicas_(std::move(replicas)) {
  if (replicas_.empty()) {
    throw std::invalid_argument("MirrorEnv: need at least one replica");
  }
  for (Env* replica : replicas_) {
    if (replica == nullptr) {
      throw std::invalid_argument("MirrorEnv: null replica");
    }
  }
}

template <typename WriteFn>
void MirrorEnv::write_all(const std::string& path, const WriteFn& write) {
  std::size_t failures = 0;
  std::string first_error;
  for (Env* replica : replicas_) {
    try {
      write(*replica);
    } catch (const std::exception& e) {
      ++failures;
      if (first_error.empty()) {
        first_error = e.what();
      }
    }
  }
  if (failures == replicas_.size()) {
    throw std::runtime_error("MirrorEnv: write failed on every replica ('" +
                             path + "'): " + first_error);
  }
  if (failures > 0) {
    ++degraded_writes_;
  }
}

void MirrorEnv::write_file_atomic(const std::string& path, ByteSpan data) {
  write_all(path, [&](Env& e) { e.write_file_atomic(path, data); });
}

void MirrorEnv::write_file(const std::string& path, ByteSpan data) {
  write_all(path, [&](Env& e) { e.write_file(path, data); });
}

std::optional<Bytes> MirrorEnv::read_file(const std::string& path) {
  for (Env* replica : replicas_) {
    if (auto data = replica->read_file(path)) {
      bytes_read_ += data->size();
      return data;
    }
  }
  return std::nullopt;
}

std::optional<Bytes> MirrorEnv::read_replica(std::size_t index,
                                             const std::string& path) {
  if (index >= replicas_.size()) {
    throw std::out_of_range("MirrorEnv::read_replica: bad index");
  }
  auto data = replicas_[index]->read_file(path);
  if (data) {
    bytes_read_ += data->size();
  }
  return data;
}

bool MirrorEnv::exists(const std::string& path) {
  for (Env* replica : replicas_) {
    if (replica->exists(path)) {
      return true;
    }
  }
  return false;
}

void MirrorEnv::remove_file(const std::string& path) {
  for (Env* replica : replicas_) {
    replica->remove_file(path);
  }
}

std::vector<std::string> MirrorEnv::list_dir(const std::string& dir) {
  // Union across replicas (a degraded replica may miss files).
  std::set<std::string> names;
  for (Env* replica : replicas_) {
    for (std::string& name : replica->list_dir(dir)) {
      names.insert(std::move(name));
    }
  }
  return {names.begin(), names.end()};
}

std::optional<std::uint64_t> MirrorEnv::file_size(const std::string& path) {
  for (Env* replica : replicas_) {
    if (auto size = replica->file_size(path)) {
      return size;
    }
  }
  return std::nullopt;
}

std::uint64_t MirrorEnv::bytes_written() const {
  // Logical bytes (first replica's accounting), not physical amplified.
  return replicas_.front()->bytes_written();
}

std::uint64_t MirrorEnv::bytes_read() const {
  // Logical bytes this mirror served, whichever replica satisfied the
  // read (the first replica alone would under-count fallback reads).
  return bytes_read_;
}

}  // namespace qnn::io

#include "io/mirror_env.hpp"

#include <set>
#include <stdexcept>

namespace qnn::io {

MirrorEnv::MirrorEnv(std::vector<Env*> replicas)
    : replicas_(std::move(replicas)) {
  if (replicas_.empty()) {
    throw std::invalid_argument("MirrorEnv: need at least one replica");
  }
  for (Env* replica : replicas_) {
    if (replica == nullptr) {
      throw std::invalid_argument("MirrorEnv: null replica");
    }
  }
}

/// Fans every append out to one handle per replica. A replica whose
/// handle throws is marked dead for the rest of the stream; the close
/// succeeds as long as any replica completed it, counting the stream as
/// degraded when some (but not all) dropped out.
class MirrorWritableFile final : public WritableFile {
 public:
  MirrorWritableFile(MirrorEnv& env, const std::string& path, WriteMode mode)
      : env_(env), path_(path) {
    for (Env* replica : env_.replicas_) {
      try {
        handles_.push_back(replica->new_writable(path, mode));
      } catch (const std::exception& e) {
        handles_.push_back(nullptr);
        note_failure(e.what());
      }
    }
    require_survivor("open");
  }

  void append(ByteSpan data) override {
    for_each_alive("append", [&](WritableFile& f) { f.append(data); });
  }
  void sync() override {
    for_each_alive("sync", [&](WritableFile& f) { f.sync(); });
  }
  void close() override {
    for_each_alive("close", [&](WritableFile& f) { f.close(); });
    if (failures_ > 0) {
      ++env_.degraded_writes_;
    }
  }

 private:
  template <typename Fn>
  void for_each_alive(const char* what, const Fn& fn) {
    for (auto& handle : handles_) {
      if (!handle) {
        continue;
      }
      try {
        fn(*handle);
      } catch (const std::exception& e) {
        handle.reset();  // this replica leaves the stream
        note_failure(e.what());
      }
    }
    require_survivor(what);
  }

  void note_failure(const std::string& error) {
    ++failures_;
    if (first_error_.empty()) {
      first_error_ = error;
    }
  }

  void require_survivor(const char* what) const {
    for (const auto& handle : handles_) {
      if (handle) {
        return;
      }
    }
    throw std::runtime_error(std::string("MirrorEnv: ") + what +
                             " failed on every replica ('" + path_ +
                             "'): " + first_error_);
  }

  MirrorEnv& env_;
  const std::string path_;
  std::vector<std::unique_ptr<WritableFile>> handles_;
  std::size_t failures_ = 0;
  std::string first_error_;
};

/// Serves ranged reads from whichever replica won at open, counting the
/// returned bytes as mirror-served.
class MirrorRandomAccessFile final : public RandomAccessFile {
 public:
  MirrorRandomAccessFile(MirrorEnv& env, std::unique_ptr<RandomAccessFile> base)
      : env_(env), base_(std::move(base)) {}

  [[nodiscard]] std::uint64_t size() const override { return base_->size(); }
  Bytes pread(std::uint64_t offset, std::uint64_t n) override {
    Bytes out = base_->pread(offset, n);
    env_.bytes_read_ += out.size();
    return out;
  }

 private:
  MirrorEnv& env_;
  std::unique_ptr<RandomAccessFile> base_;
};

std::unique_ptr<WritableFile> MirrorEnv::new_writable(const std::string& path,
                                                      WriteMode mode) {
  return std::make_unique<MirrorWritableFile>(*this, path, mode);
}

std::unique_ptr<RandomAccessFile> MirrorEnv::open_ranged(
    const std::string& path) {
  for (Env* replica : replicas_) {
    if (auto file = replica->open_ranged(path)) {
      return std::make_unique<MirrorRandomAccessFile>(*this, std::move(file));
    }
  }
  return nullptr;
}

std::optional<Bytes> MirrorEnv::read_replica(std::size_t index,
                                             const std::string& path) {
  if (index >= replicas_.size()) {
    throw std::out_of_range("MirrorEnv::read_replica: bad index");
  }
  auto data = replicas_[index]->read_file(path);
  if (data) {
    bytes_read_ += data->size();
  }
  return data;
}

bool MirrorEnv::exists(const std::string& path) {
  for (Env* replica : replicas_) {
    if (replica->exists(path)) {
      return true;
    }
  }
  return false;
}

void MirrorEnv::remove_file(const std::string& path) {
  for (Env* replica : replicas_) {
    replica->remove_file(path);
  }
}

std::vector<std::string> MirrorEnv::list_dir(const std::string& dir) {
  // Union across replicas (a degraded replica may miss files).
  std::set<std::string> names;
  for (Env* replica : replicas_) {
    for (std::string& name : replica->list_dir(dir)) {
      names.insert(std::move(name));
    }
  }
  return {names.begin(), names.end()};
}

std::optional<std::uint64_t> MirrorEnv::file_size(const std::string& path) {
  for (Env* replica : replicas_) {
    if (auto size = replica->file_size(path)) {
      return size;
    }
  }
  return std::nullopt;
}

std::uint64_t MirrorEnv::bytes_written() const {
  // Logical bytes (first replica's accounting), not physical amplified.
  return replicas_.front()->bytes_written();
}

std::uint64_t MirrorEnv::bytes_read() const {
  // Logical bytes this mirror served, whichever replica satisfied the
  // read (the first replica alone would under-count fallback reads).
  return bytes_read_;
}

}  // namespace qnn::io

// Fault-injecting Env decorators.
//
// Two complementary models live here:
//
// 1. FaultEnv — probabilistic faults drawn from a deterministic RNG
//    (torn writes, bit flips, mid-write process kills), for the sampled
//    fault matrix (T4).
//
// 2. CrashScheduleEnv — *deterministic* crash scheduling: the env counts
//    every mutating operation and crashes at exactly the K-th one,
//    optionally at byte offset B within that operation's payload. The
//    mutating operations are plain-stream appends (each append of an
//    open WriteMode::kPlain handle is one op, torn at byte offset B),
//    atomic-stream closes (the install point: all-or-nothing), and
//    removes — so a streamed write can be torn at ANY append/byte
//    boundary, not just whole-file boundaries. With
//    enumerate_crash_schedules() a scenario can be replayed once per
//    (K, B) pair, turning "survives a crash anywhere" from a sampled
//    claim into an exhaustively checked one (crash_matrix_test, T5).
#pragma once

#include <functional>
#include <memory>
#include <mutex>

#include "io/env.hpp"
#include "util/rng.hpp"

namespace qnn::io {

/// Per-write fault probabilities; all default to "no faults".
struct FaultSpec {
  double torn_write_prob = 0.0;   ///< write only a random prefix
  double bit_flip_prob = 0.0;     ///< flip one random bit of the payload
  double crash_prob = 0.0;        ///< throw WriteCrash after a torn write
  /// When true, faults also hit atomic installs (modelling a filesystem
  /// without atomic rename or a writer that skips the tmp+rename dance).
  bool fault_atomic_writes = false;
};

/// Thrown by FaultEnv to emulate the writing process dying mid-write.
struct WriteCrash : std::runtime_error {
  WriteCrash() : std::runtime_error("injected write crash") {}
};

/// Decorator around a base Env that injects FaultSpec faults on writes.
/// Streamed writes buffer their appends and draw the fault for the whole
/// stream at close (one fault decision per file, exactly like the
/// historical whole-buffer path). Reads pass through untouched.
class FaultEnv final : public ForwardingEnv {
 public:
  FaultEnv(Env& base, FaultSpec spec, std::uint64_t seed = 42)
      : ForwardingEnv(base), spec_(spec), rng_(seed) {}

  std::unique_ptr<WritableFile> new_writable(const std::string& path,
                                             WriteMode mode) override;
  void write_file_atomic(const std::string& path, ByteSpan data) override;
  void write_file(const std::string& path, ByteSpan data) override;

  /// Counters for test assertions.
  [[nodiscard]] std::uint64_t faults_injected() const {
    std::lock_guard lock(mu_);
    return faults_injected_;
  }

 private:
  friend class FaultWritableFile;

  /// Applies armed faults to a copy of `data` and writes it (non-atomic).
  /// May throw WriteCrash.
  void faulty_write(const std::string& path, ByteSpan data);

  FaultSpec spec_;
  /// Guards rng_ and faults_injected_: concurrent writer threads must not
  /// corrupt the deterministic fault stream. Fault *order* across threads
  /// is scheduling-dependent, but the stream itself stays intact.
  mutable std::mutex mu_;
  util::Rng rng_;
  std::uint64_t faults_injected_ = 0;
};

// ---------------------------------------------------------------------------
// Deterministic crash schedules
// ---------------------------------------------------------------------------

/// When and how a scheduled crash fires. Mutating operations are
/// plain-stream appends (write_file = one append), atomic-stream closes
/// (write_file_atomic = one close) and remove_file; reads, syncs and
/// atomic staging appends never mutate durable state and are not
/// counted.
struct CrashPlan {
  /// 1-based index of the mutating op to crash at; 0 = never crash.
  std::uint64_t crash_at_op = 0;

  /// How much of the crashing operation's effect becomes durable — the
  /// "byte offset B within the op" axis of the crash matrix:
  ///   * plain append: the first min(durable_bytes, size) bytes of THAT
  ///     append reach the file after everything already appended (a torn
  ///     streamed write; 0 tears exactly at the previous append
  ///     boundary, and for a one-append stream leaves an empty file —
  ///     what a crash right after open+truncate leaves behind);
  ///   * atomic close: all-or-nothing by contract — the install happens
  ///     only when durable_bytes covers the whole staged stream (the
  ///     rename published before the crash), otherwise nothing survives
  ///     (the torn tmp file is invisible to the directory);
  ///   * remove_file: takes effect only when durable_bytes > 0.
  /// Use kOpDurable for "the op completed, the crash hit just after".
  std::uint64_t durable_bytes = 0;
};

/// CrashPlan::durable_bytes value meaning "the whole op became durable".
constexpr std::uint64_t kOpDurable = ~std::uint64_t{0};

/// Thrown by CrashScheduleEnv when the scheduled operation is reached
/// (and by every operation after it: the process is dead).
struct ScheduledCrash : std::runtime_error {
  explicit ScheduledCrash(std::uint64_t op)
      : std::runtime_error("scheduled crash at env op " + std::to_string(op)),
        op(op) {}
  std::uint64_t op;
};

/// Decorator that executes `plan`: deterministic, reproducible, and
/// exhaustive when driven by enumerate_crash_schedules(). After the crash
/// fires, *every* operation (reads and open handles included) throws
/// ScheduledCrash — a dead process performs no further I/O; the test
/// harness inspects the base env for the durable state.
class CrashScheduleEnv final : public Env {
 public:
  CrashScheduleEnv(Env& base, CrashPlan plan) : base_(base), plan_(plan) {}

  std::unique_ptr<WritableFile> new_writable(const std::string& path,
                                             WriteMode mode) override;
  std::unique_ptr<RandomAccessFile> open_ranged(
      const std::string& path) override;
  void remove_file(const std::string& path) override;

  bool exists(const std::string& path) override {
    ensure_alive();
    return base_.exists(path);
  }
  std::vector<std::string> list_dir(const std::string& dir) override {
    ensure_alive();
    return base_.list_dir(dir);
  }
  std::optional<std::uint64_t> file_size(const std::string& path) override {
    ensure_alive();
    return base_.file_size(path);
  }
  [[nodiscard]] std::uint64_t bytes_written() const override {
    return base_.bytes_written();
  }
  [[nodiscard]] std::uint64_t bytes_read() const override {
    return base_.bytes_read();
  }

  /// Mutating ops seen so far (== total ops of a scenario after an
  /// uncrashed run — the enumeration bound).
  [[nodiscard]] std::uint64_t mutating_ops() const {
    std::lock_guard lock(mu_);
    return ops_;
  }
  [[nodiscard]] bool crashed() const {
    std::lock_guard lock(mu_);
    return crashed_;
  }

 private:
  friend class CrashPlainWritableFile;
  friend class CrashAtomicWritableFile;
  friend class CrashRandomAccessFile;

  void ensure_alive() const;
  /// Counts one mutating op; returns true when it is the one to crash at
  /// (crashed_ is then already set).
  bool tick();

  Env& base_;
  const CrashPlan plan_;
  mutable std::mutex mu_;
  std::uint64_t ops_ = 0;
  bool crashed_ = false;
};

/// Aggregate result of an exhaustive crash-schedule enumeration.
struct CrashEnumeration {
  std::uint64_t total_ops = 0;   ///< mutating ops of the uncrashed scenario
  std::uint64_t points_run = 0;  ///< (K, B) crash points actually replayed
};

/// Replays `scenario` once per crash point: first an uncrashed probe run
/// counts the scenario's mutating ops N, then for every K in [1, N]
/// (striding by `stride` >= 1) and every durable_bytes value in
/// `durable_offsets`, the scenario runs against a fresh base env from
/// `make_base` under a CrashScheduleEnv; the ScheduledCrash is caught and
/// `verify` is invoked with the base env holding exactly the durable
/// state. `verify` is also called after the probe run (plan.crash_at_op
/// == 0) so the no-crash path is checked by the same predicate.
CrashEnumeration enumerate_crash_schedules(
    const std::function<std::unique_ptr<Env>()>& make_base,
    const std::function<void(CrashScheduleEnv&)>& scenario,
    const std::function<void(Env&, const CrashPlan&)>& verify,
    std::uint64_t stride = 1,
    const std::vector<std::uint64_t>& durable_offsets = {0});

}  // namespace qnn::io

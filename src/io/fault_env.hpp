// Fault-injecting Env decorator.
//
// Models the write-path failures a checkpoint system must survive:
//   * torn write  — only a prefix of the payload reaches the file (a crash
//     during a non-atomic write, or an atomic writer whose rename raced a
//     power cut without fsync),
//   * bit flip    — silent media/transfer corruption,
//   * write crash — the write throws after possibly leaving a partial file,
//     emulating a process kill mid-checkpoint.
//
// Faults are armed with probabilities and drawn from a deterministic RNG so
// the fault matrix (T4) is reproducible.
#pragma once

#include <mutex>

#include "io/env.hpp"
#include "util/rng.hpp"

namespace qnn::io {

/// Per-write fault probabilities; all default to "no faults".
struct FaultSpec {
  double torn_write_prob = 0.0;   ///< write only a random prefix
  double bit_flip_prob = 0.0;     ///< flip one random bit of the payload
  double crash_prob = 0.0;        ///< throw WriteCrash after a torn write
  /// When true, faults also hit write_file_atomic (modelling a filesystem
  /// without atomic rename or a writer that skips the tmp+rename dance).
  bool fault_atomic_writes = false;
};

/// Thrown by FaultEnv to emulate the writing process dying mid-write.
struct WriteCrash : std::runtime_error {
  WriteCrash() : std::runtime_error("injected write crash") {}
};

/// Decorator around a base Env that injects FaultSpec faults on writes.
/// Reads pass through untouched.
class FaultEnv final : public Env {
 public:
  FaultEnv(Env& base, FaultSpec spec, std::uint64_t seed = 42)
      : base_(base), spec_(spec), rng_(seed) {}

  void write_file_atomic(const std::string& path, ByteSpan data) override;
  void write_file(const std::string& path, ByteSpan data) override;
  std::optional<Bytes> read_file(const std::string& path) override {
    return base_.read_file(path);
  }
  bool exists(const std::string& path) override { return base_.exists(path); }
  void remove_file(const std::string& path) override {
    base_.remove_file(path);
  }
  std::vector<std::string> list_dir(const std::string& dir) override {
    return base_.list_dir(dir);
  }
  std::optional<std::uint64_t> file_size(const std::string& path) override {
    return base_.file_size(path);
  }
  [[nodiscard]] std::uint64_t bytes_written() const override {
    return base_.bytes_written();
  }

  /// Counters for test assertions.
  [[nodiscard]] std::uint64_t faults_injected() const {
    std::lock_guard lock(mu_);
    return faults_injected_;
  }

 private:
  /// Applies armed faults to a copy of `data` and writes it (non-atomic).
  /// May throw WriteCrash.
  void faulty_write(const std::string& path, ByteSpan data);

  Env& base_;
  FaultSpec spec_;
  /// Guards rng_ and faults_injected_: concurrent writer threads must not
  /// corrupt the deterministic fault stream. Fault *order* across threads
  /// is scheduling-dependent, but the stream itself stays intact.
  mutable std::mutex mu_;
  util::Rng rng_;
  std::uint64_t faults_injected_ = 0;
};

}  // namespace qnn::io

#include "io/fault_env.hpp"

#include <algorithm>

namespace qnn::io {

void FaultEnv::faulty_write(const std::string& path, ByteSpan data) {
  Bytes copy(data.begin(), data.end());
  bool crash = false;

  {
    std::lock_guard lock(mu_);
    if (!copy.empty() && rng_.uniform() < spec_.torn_write_prob) {
      // Keep a uniformly random strict prefix (possibly empty).
      copy.resize(rng_.uniform_u64(copy.size()));
      ++faults_injected_;
      crash = rng_.uniform() < spec_.crash_prob;
    }
    if (!copy.empty() && rng_.uniform() < spec_.bit_flip_prob) {
      const std::uint64_t bit = rng_.uniform_u64(copy.size() * 8);
      copy[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      ++faults_injected_;
    }
  }

  base_.write_file(path, copy);
  if (crash) {
    throw WriteCrash{};
  }
}

void FaultEnv::write_file_atomic(const std::string& path, ByteSpan data) {
  if (spec_.fault_atomic_writes) {
    faulty_write(path, data);
    return;
  }
  base_.write_file_atomic(path, data);
}

void FaultEnv::write_file(const std::string& path, ByteSpan data) {
  faulty_write(path, data);
}

// ---------------------------------------------------------------------------
// CrashScheduleEnv
// ---------------------------------------------------------------------------

void CrashScheduleEnv::ensure_alive() const {
  std::lock_guard lock(mu_);
  if (crashed_) {
    throw ScheduledCrash(plan_.crash_at_op);
  }
}

bool CrashScheduleEnv::tick() {
  std::lock_guard lock(mu_);
  if (crashed_) {
    throw ScheduledCrash(plan_.crash_at_op);
  }
  ++ops_;
  if (plan_.crash_at_op != 0 && ops_ == plan_.crash_at_op) {
    crashed_ = true;
    return true;
  }
  return false;
}

void CrashScheduleEnv::write_file_atomic(const std::string& path,
                                         ByteSpan data) {
  if (tick()) {
    // Atomic installs are all-or-nothing across a crash: either the
    // rename already published the file, or the torn tmp is invisible.
    if (plan_.durable_bytes >= data.size()) {
      base_.write_file_atomic(path, data);
    }
    throw ScheduledCrash(plan_.crash_at_op);
  }
  base_.write_file_atomic(path, data);
}

void CrashScheduleEnv::write_file(const std::string& path, ByteSpan data) {
  if (tick()) {
    const std::size_t n =
        static_cast<std::size_t>(std::min<std::uint64_t>(plan_.durable_bytes,
                                                         data.size()));
    base_.write_file(path, data.first(n));
    throw ScheduledCrash(plan_.crash_at_op);
  }
  base_.write_file(path, data);
}

void CrashScheduleEnv::remove_file(const std::string& path) {
  if (tick()) {
    if (plan_.durable_bytes > 0) {
      base_.remove_file(path);
    }
    throw ScheduledCrash(plan_.crash_at_op);
  }
  base_.remove_file(path);
}

CrashEnumeration enumerate_crash_schedules(
    const std::function<std::unique_ptr<Env>()>& make_base,
    const std::function<void(CrashScheduleEnv&)>& scenario,
    const std::function<void(Env&, const CrashPlan&)>& verify,
    std::uint64_t stride, const std::vector<std::uint64_t>& durable_offsets) {
  CrashEnumeration result;
  {
    // Probe: the uncrashed run bounds the enumeration and must itself
    // leave a state the verifier accepts.
    auto base = make_base();
    CrashScheduleEnv env(*base, CrashPlan{});
    scenario(env);
    result.total_ops = env.mutating_ops();
    verify(*base, CrashPlan{});
  }
  if (stride == 0) {
    stride = 1;
  }
  for (std::uint64_t k = 1; k <= result.total_ops; k += stride) {
    for (const std::uint64_t off : durable_offsets) {
      const CrashPlan plan{.crash_at_op = k, .durable_bytes = off};
      auto base = make_base();
      CrashScheduleEnv env(*base, plan);
      try {
        scenario(env);
      } catch (const ScheduledCrash&) {
        // The process died mid-scenario; the durable state is in *base.
      }
      verify(*base, plan);
      ++result.points_run;
    }
  }
  return result;
}

}  // namespace qnn::io

#include "io/fault_env.hpp"

#include <algorithm>

namespace qnn::io {

void FaultEnv::faulty_write(const std::string& path, ByteSpan data) {
  Bytes copy(data.begin(), data.end());
  bool crash = false;

  {
    std::lock_guard lock(mu_);
    if (!copy.empty() && rng_.uniform() < spec_.torn_write_prob) {
      // Keep a uniformly random strict prefix (possibly empty).
      copy.resize(rng_.uniform_u64(copy.size()));
      ++faults_injected_;
      crash = rng_.uniform() < spec_.crash_prob;
    }
    if (!copy.empty() && rng_.uniform() < spec_.bit_flip_prob) {
      const std::uint64_t bit = rng_.uniform_u64(copy.size() * 8);
      copy[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      ++faults_injected_;
    }
  }

  base_.write_file(path, copy);
  if (crash) {
    throw WriteCrash{};
  }
}

/// Buffers the stream and applies the fault roll to the concatenated
/// payload at close — one deterministic fault decision per file, exactly
/// like the historical whole-buffer write path.
class FaultWritableFile final : public WritableFile {
 public:
  FaultWritableFile(FaultEnv& env, std::string path) noexcept
      : env_(env), path_(std::move(path)) {}

  void append(ByteSpan data) override {
    staged_.insert(staged_.end(), data.begin(), data.end());
  }
  void sync() override {}
  void close() override { env_.faulty_write(path_, staged_); }

 private:
  FaultEnv& env_;
  const std::string path_;
  Bytes staged_;
};

std::unique_ptr<WritableFile> FaultEnv::new_writable(const std::string& path,
                                                     WriteMode mode) {
  if (mode == WriteMode::kAtomic && !spec_.fault_atomic_writes) {
    return base_.new_writable(path, mode);
  }
  return std::make_unique<FaultWritableFile>(*this, path);
}

void FaultEnv::write_file_atomic(const std::string& path, ByteSpan data) {
  if (spec_.fault_atomic_writes) {
    faulty_write(path, data);
    return;
  }
  base_.write_file_atomic(path, data);
}

void FaultEnv::write_file(const std::string& path, ByteSpan data) {
  faulty_write(path, data);
}

// ---------------------------------------------------------------------------
// CrashScheduleEnv
// ---------------------------------------------------------------------------

void CrashScheduleEnv::ensure_alive() const {
  std::lock_guard lock(mu_);
  if (crashed_) {
    throw ScheduledCrash(plan_.crash_at_op);
  }
}

bool CrashScheduleEnv::tick() {
  std::lock_guard lock(mu_);
  if (crashed_) {
    throw ScheduledCrash(plan_.crash_at_op);
  }
  ++ops_;
  if (plan_.crash_at_op != 0 && ops_ == plan_.crash_at_op) {
    crashed_ = true;
    return true;
  }
  return false;
}

/// The K-th mutating op of a plain stream is each append: a crash there
/// makes the first durable_bytes bytes of THAT append durable on top of
/// everything appended before it — a tear at an arbitrary append/byte
/// boundary within the open handle.
class CrashPlainWritableFile final : public WritableFile {
 public:
  CrashPlainWritableFile(CrashScheduleEnv& env,
                         std::unique_ptr<WritableFile> base)
      : env_(env), base_(std::move(base)) {}

  void append(ByteSpan data) override {
    if (env_.tick()) {
      const std::size_t n = static_cast<std::size_t>(
          std::min<std::uint64_t>(env_.plan_.durable_bytes, data.size()));
      base_->append(data.first(n));
      throw ScheduledCrash(env_.plan_.crash_at_op);
    }
    base_->append(data);
  }
  void sync() override {
    env_.ensure_alive();
    base_->sync();
  }
  void close() override {
    env_.ensure_alive();
    base_->close();
  }

 private:
  CrashScheduleEnv& env_;
  std::unique_ptr<WritableFile> base_;
};

/// Atomic streams stage invisibly; the mutating op is the close (the
/// install). All-or-nothing: the whole stream survives only when
/// durable_bytes covers it, otherwise the staged tmp is abandoned.
class CrashAtomicWritableFile final : public WritableFile {
 public:
  CrashAtomicWritableFile(CrashScheduleEnv& env,
                          std::unique_ptr<WritableFile> base)
      : env_(env), base_(std::move(base)) {}

  void append(ByteSpan data) override {
    env_.ensure_alive();
    base_->append(data);
    staged_ += data.size();
  }
  void sync() override {
    env_.ensure_alive();
    base_->sync();
  }
  void close() override {
    if (env_.tick()) {
      if (env_.plan_.durable_bytes >= staged_) {
        base_->close();
      } else {
        base_.reset();  // abort: the torn tmp is invisible
      }
      throw ScheduledCrash(env_.plan_.crash_at_op);
    }
    base_->close();
  }

 private:
  CrashScheduleEnv& env_;
  std::unique_ptr<WritableFile> base_;
  std::uint64_t staged_ = 0;
};

/// A dead process performs no further I/O — reads through an already-open
/// handle throw after the crash too.
class CrashRandomAccessFile final : public RandomAccessFile {
 public:
  CrashRandomAccessFile(CrashScheduleEnv& env,
                        std::unique_ptr<RandomAccessFile> base)
      : env_(env), base_(std::move(base)) {}

  [[nodiscard]] std::uint64_t size() const override {
    env_.ensure_alive();
    return base_->size();
  }
  Bytes pread(std::uint64_t offset, std::uint64_t n) override {
    env_.ensure_alive();
    return base_->pread(offset, n);
  }

 private:
  CrashScheduleEnv& env_;
  std::unique_ptr<RandomAccessFile> base_;
};

std::unique_ptr<WritableFile> CrashScheduleEnv::new_writable(
    const std::string& path, WriteMode mode) {
  ensure_alive();
  auto base = base_.new_writable(path, mode);
  if (mode == WriteMode::kPlain) {
    return std::make_unique<CrashPlainWritableFile>(*this, std::move(base));
  }
  return std::make_unique<CrashAtomicWritableFile>(*this, std::move(base));
}

std::unique_ptr<RandomAccessFile> CrashScheduleEnv::open_ranged(
    const std::string& path) {
  ensure_alive();
  auto base = base_.open_ranged(path);
  if (!base) {
    return nullptr;
  }
  return std::make_unique<CrashRandomAccessFile>(*this, std::move(base));
}

void CrashScheduleEnv::remove_file(const std::string& path) {
  if (tick()) {
    if (plan_.durable_bytes > 0) {
      base_.remove_file(path);
    }
    throw ScheduledCrash(plan_.crash_at_op);
  }
  base_.remove_file(path);
}

CrashEnumeration enumerate_crash_schedules(
    const std::function<std::unique_ptr<Env>()>& make_base,
    const std::function<void(CrashScheduleEnv&)>& scenario,
    const std::function<void(Env&, const CrashPlan&)>& verify,
    std::uint64_t stride, const std::vector<std::uint64_t>& durable_offsets) {
  CrashEnumeration result;
  {
    // Probe: the uncrashed run bounds the enumeration and must itself
    // leave a state the verifier accepts.
    auto base = make_base();
    CrashScheduleEnv env(*base, CrashPlan{});
    scenario(env);
    result.total_ops = env.mutating_ops();
    verify(*base, CrashPlan{});
  }
  if (stride == 0) {
    stride = 1;
  }
  for (std::uint64_t k = 1; k <= result.total_ops; k += stride) {
    for (const std::uint64_t off : durable_offsets) {
      const CrashPlan plan{.crash_at_op = k, .durable_bytes = off};
      auto base = make_base();
      CrashScheduleEnv env(*base, plan);
      try {
        scenario(env);
      } catch (const ScheduledCrash&) {
        // The process died mid-scenario; the durable state is in *base.
      }
      verify(*base, plan);
      ++result.points_run;
    }
  }
  return result;
}

}  // namespace qnn::io

#include "io/fault_env.hpp"

namespace qnn::io {

void FaultEnv::faulty_write(const std::string& path, ByteSpan data) {
  Bytes copy(data.begin(), data.end());
  bool crash = false;

  {
    std::lock_guard lock(mu_);
    if (!copy.empty() && rng_.uniform() < spec_.torn_write_prob) {
      // Keep a uniformly random strict prefix (possibly empty).
      copy.resize(rng_.uniform_u64(copy.size()));
      ++faults_injected_;
      crash = rng_.uniform() < spec_.crash_prob;
    }
    if (!copy.empty() && rng_.uniform() < spec_.bit_flip_prob) {
      const std::uint64_t bit = rng_.uniform_u64(copy.size() * 8);
      copy[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      ++faults_injected_;
    }
  }

  base_.write_file(path, copy);
  if (crash) {
    throw WriteCrash{};
  }
}

void FaultEnv::write_file_atomic(const std::string& path, ByteSpan data) {
  if (spec_.fault_atomic_writes) {
    faulty_write(path, data);
    return;
  }
  base_.write_file_atomic(path, data);
}

void FaultEnv::write_file(const std::string& path, ByteSpan data) {
  faulty_write(path, data);
}

}  // namespace qnn::io

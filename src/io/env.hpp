// Storage environment abstraction.
//
// Everything qnnckpt persists goes through an Env, so tests can run against
// an in-memory filesystem (MemEnv) and the fault matrix (T4) can inject torn
// writes and bit flips (FaultEnv) without touching the checkpoint logic.
//
// The contract is HANDLE-based, mirroring what a streaming, crash-safe
// checkpoint writer needs from a real filesystem:
//   * new_writable(path, mode) -> WritableFile: append / sync / close.
//     kAtomic stages the stream (tmp file + rename on close) so the
//     install is all-or-nothing even across a crash; kPlain lands each
//     append in place, so a crash may leave any byte prefix (the torn-
//     append model the crash matrix enumerates);
//   * open_ranged(path) -> RandomAccessFile: pread of arbitrary ranges,
//     so resolving one chunk of a packfile reads that chunk — not the
//     file. bytes_read() counts exactly the ranges actually returned,
//     which is what makes read amplification a measurable quantity;
//   * exists / remove_file / list_dir / file_size metadata ops.
//
// The historical whole-buffer calls (write_file_atomic, write_file,
// read_file) survive only as thin wrappers over the handles: one open,
// one append/pread, one close. Decorators may still override them where
// whole-buffer semantics genuinely differ (e.g. TieredEnv's read-through
// promotion); everything else inherits the wrappers.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "util/bytes.hpp"

namespace qnn::io {

using util::Bytes;
using util::ByteSpan;

/// How a WritableFile's bytes become visible to readers.
enum class WriteMode : std::uint8_t {
  /// Staged install: nothing is visible at `path` until close(), which
  /// publishes the whole stream all-or-nothing (tmp + fsync + rename on
  /// a real filesystem). Destroying the handle without close() aborts —
  /// no bytes ever appear.
  kAtomic,
  /// In-place overwrite: the target is truncated at open and each
  /// append lands immediately. A crash mid-stream leaves a prefix at an
  /// arbitrary append/byte boundary (what FaultEnv/CrashScheduleEnv
  /// model as torn writes). Exists so experiments can compare against
  /// naive checkpoint writers.
  kPlain,
};

/// A streaming write handle. Not thread-safe; hand-off between threads
/// (encode stage -> writer thread) must be externally sequenced.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  /// Appends `data` to the stream. Throws std::runtime_error on I/O
  /// failure.
  virtual void append(ByteSpan data) = 0;

  /// Pushes appended bytes toward durability (fsync on PosixEnv when
  /// durable; no-op on in-memory envs).
  virtual void sync() = 0;

  /// Completes the stream. kAtomic: atomically installs the full
  /// contents at the target path. Call exactly once; a handle destroyed
  /// without close() aborts the write (kAtomic: nothing installed).
  virtual void close() = 0;
};

/// A ranged (pread-style) read handle. Reads see the file as it was at
/// open time on envs with snapshot semantics (MemEnv), or POSIX
/// open-file semantics on real filesystems — either way an atomic
/// overwrite after open never tears a reader.
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;

  /// File size in bytes (fixed at open).
  [[nodiscard]] virtual std::uint64_t size() const = 0;

  /// Reads up to `n` bytes at `offset` (short at EOF, empty past it).
  /// Every returned byte is charged to the env's bytes_read().
  virtual Bytes pread(std::uint64_t offset, std::uint64_t n) = 0;
};

/// Abstract storage backend. Paths use '/' separators; directories are
/// created on demand by writers.
class Env {
 public:
  virtual ~Env() = default;

  /// Opens a streaming write handle (see WriteMode for visibility and
  /// crash semantics). Throws std::runtime_error on I/O failure.
  virtual std::unique_ptr<WritableFile> new_writable(const std::string& path,
                                                     WriteMode mode) = 0;

  /// Opens a ranged read handle, or nullptr when the file is absent.
  virtual std::unique_ptr<RandomAccessFile> open_ranged(
      const std::string& path) = 0;

  /// Atomically installs `data` at `path` (all-or-nothing even across a
  /// crash). Thin wrapper: new_writable(kAtomic) + append + close.
  virtual void write_file_atomic(const std::string& path, ByteSpan data);

  /// Plain, non-atomic overwrite. A crash mid-call may leave a torn
  /// file. Thin wrapper: new_writable(kPlain) + append + close.
  virtual void write_file(const std::string& path, ByteSpan data);

  /// Reads the whole file, or std::nullopt when it does not exist.
  /// Thin wrapper: open_ranged + one full-size pread.
  virtual std::optional<Bytes> read_file(const std::string& path);

  virtual bool exists(const std::string& path) = 0;

  /// Removes a file; no-op when absent.
  virtual void remove_file(const std::string& path) = 0;

  /// Non-recursive listing of file names (not full paths) in `dir`,
  /// sorted ascending. Empty when the directory does not exist.
  virtual std::vector<std::string> list_dir(const std::string& dir) = 0;

  /// File size in bytes, or std::nullopt when absent.
  virtual std::optional<std::uint64_t> file_size(const std::string& path) = 0;

  /// Total bytes appended through write handles (atomic streams count at
  /// close, so an aborted install counts nothing). Drives the
  /// bytes-written accounting in F6/T3.
  [[nodiscard]] virtual std::uint64_t bytes_written() const = 0;

  /// Total bytes returned by pread / read_file since creation. The
  /// read-side twin of bytes_written(): recovery cost, tier-promotion
  /// cost and the read amplification of chunk-store resolution are all
  /// measured through this counter — ranged ops charge only the ranges
  /// they return.
  [[nodiscard]] virtual std::uint64_t bytes_read() const = 0;
};

/// Decorator base: forwards the handle and metadata contract to `base`.
/// Test and tool decorators (fail-injection, clocks, path rebasing)
/// derive from this and override only the operations they care about.
/// The whole-buffer wrappers are deliberately NOT pinned to `base` —
/// they stay the Env defaults, dispatching virtually through
/// new_writable/open_ranged, so a subclass that intercepts the handle
/// methods automatically intercepts every whole-buffer call too (a
/// base-pinned forward would silently bypass such overrides). A
/// decorator wrapping an env whose whole-buffer methods carry extra
/// semantics (TieredEnv's read-through promotion) must forward those
/// explicitly, as RebaseEnv does.
class ForwardingEnv : public Env {
 public:
  explicit ForwardingEnv(Env& base) : base_(base) {}

  std::unique_ptr<WritableFile> new_writable(const std::string& path,
                                             WriteMode mode) override {
    return base_.new_writable(path, mode);
  }
  std::unique_ptr<RandomAccessFile> open_ranged(
      const std::string& path) override {
    return base_.open_ranged(path);
  }
  bool exists(const std::string& path) override { return base_.exists(path); }
  void remove_file(const std::string& path) override {
    base_.remove_file(path);
  }
  std::vector<std::string> list_dir(const std::string& dir) override {
    return base_.list_dir(dir);
  }
  std::optional<std::uint64_t> file_size(const std::string& path) override {
    return base_.file_size(path);
  }
  [[nodiscard]] std::uint64_t bytes_written() const override {
    return base_.bytes_written();
  }
  [[nodiscard]] std::uint64_t bytes_read() const override {
    return base_.bytes_read();
  }

 protected:
  Env& base_;
};

/// Streaming cross-env copy: preads `path` from `src` in bounded slices
/// and appends them to an atomic stream on `dst`, so copying an object
/// of any size costs O(slice) memory. Returns the bytes copied, or
/// std::nullopt when the source is absent. The tier migration engine
/// (demote/promote) and read-through pack promotion all copy through
/// here — one loop, one shrink-handling policy.
std::optional<std::uint64_t> stream_copy(Env& src, Env& dst,
                                         const std::string& path);

/// Real-filesystem Env backed by POSIX calls, with fsync on file and parent
/// directory during atomic installs.
class PosixEnv final : public Env {
 public:
  /// When `durable` is false, fsync calls are skipped (faster tests; still
  /// atomic with respect to process crashes, not power loss).
  explicit PosixEnv(bool durable = true) : durable_(durable) {}

  std::unique_ptr<WritableFile> new_writable(const std::string& path,
                                             WriteMode mode) override;
  std::unique_ptr<RandomAccessFile> open_ranged(
      const std::string& path) override;
  bool exists(const std::string& path) override;
  void remove_file(const std::string& path) override;
  std::vector<std::string> list_dir(const std::string& dir) override;
  std::optional<std::uint64_t> file_size(const std::string& path) override;
  [[nodiscard]] std::uint64_t bytes_written() const override {
    return bytes_written_;
  }
  [[nodiscard]] std::uint64_t bytes_read() const override {
    return bytes_read_;
  }

 private:
  friend class PosixWritableFile;
  friend class PosixRandomAccessFile;

  bool durable_;
  /// Atomic: the multi-worker AsyncWriter calls the write paths from
  /// several threads concurrently.
  std::atomic<std::uint64_t> bytes_written_{0};
  std::atomic<std::uint64_t> bytes_read_{0};
};

}  // namespace qnn::io

// Storage environment abstraction.
//
// Everything qnnckpt persists goes through an Env, so tests can run against
// an in-memory filesystem (MemEnv) and the fault matrix (T4) can inject torn
// writes and bit flips (FaultEnv) without touching the checkpoint logic.
//
// The contract mirrors what a crash-safe checkpoint writer needs from a real
// filesystem:
//   * write_file_atomic: all-or-nothing install (tmp + fsync + rename),
//   * write_file: a deliberately non-atomic write, used to model naive
//     writers in experiments,
//   * read_file / exists / remove_file / list_dir / file_size.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/bytes.hpp"

namespace qnn::io {

using util::Bytes;
using util::ByteSpan;

/// Abstract storage backend. Paths use '/' separators; directories are
/// created on demand by writers.
class Env {
 public:
  virtual ~Env() = default;

  /// Atomically installs `data` at `path` (all-or-nothing even across a
  /// crash). Throws std::runtime_error on I/O failure.
  virtual void write_file_atomic(const std::string& path, ByteSpan data) = 0;

  /// Plain, non-atomic overwrite. A crash mid-call may leave a torn file.
  /// Exists so experiments can compare against naive checkpoint writers.
  virtual void write_file(const std::string& path, ByteSpan data) = 0;

  /// Reads the whole file, or std::nullopt when it does not exist.
  virtual std::optional<Bytes> read_file(const std::string& path) = 0;

  virtual bool exists(const std::string& path) = 0;

  /// Removes a file; no-op when absent.
  virtual void remove_file(const std::string& path) = 0;

  /// Non-recursive listing of file names (not full paths) in `dir`,
  /// sorted ascending. Empty when the directory does not exist.
  virtual std::vector<std::string> list_dir(const std::string& dir) = 0;

  /// File size in bytes, or std::nullopt when absent.
  virtual std::optional<std::uint64_t> file_size(const std::string& path) = 0;

  /// Total bytes handed to write_file / write_file_atomic since creation.
  /// Drives the bytes-written accounting in F6/T3.
  [[nodiscard]] virtual std::uint64_t bytes_written() const = 0;

  /// Total bytes returned by read_file since creation. The read-side
  /// twin of bytes_written(): recovery cost, tier-promotion cost and the
  /// read amplification of chunk-store resolution are all measured
  /// through this counter.
  [[nodiscard]] virtual std::uint64_t bytes_read() const = 0;
};

/// Real-filesystem Env backed by POSIX calls, with fsync on file and parent
/// directory during atomic installs.
class PosixEnv final : public Env {
 public:
  /// When `durable` is false, fsync calls are skipped (faster tests; still
  /// atomic with respect to process crashes, not power loss).
  explicit PosixEnv(bool durable = true) : durable_(durable) {}

  void write_file_atomic(const std::string& path, ByteSpan data) override;
  void write_file(const std::string& path, ByteSpan data) override;
  std::optional<Bytes> read_file(const std::string& path) override;
  bool exists(const std::string& path) override;
  void remove_file(const std::string& path) override;
  std::vector<std::string> list_dir(const std::string& dir) override;
  std::optional<std::uint64_t> file_size(const std::string& path) override;
  [[nodiscard]] std::uint64_t bytes_written() const override {
    return bytes_written_;
  }
  [[nodiscard]] std::uint64_t bytes_read() const override {
    return bytes_read_;
  }

 private:
  bool durable_;
  /// Atomic: the multi-worker AsyncWriter calls the write paths from
  /// several threads concurrently.
  std::atomic<std::uint64_t> bytes_written_{0};
  std::atomic<std::uint64_t> bytes_read_{0};
};

}  // namespace qnn::io

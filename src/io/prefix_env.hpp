// Subtree-mounting Env decorator.
//
// PrefixEnv exposes one subtree of a base Env as a standalone Env: every
// path is rewritten to `<prefix>/<path>` before it reaches the base.
// The tiering layer composes two PrefixEnvs over ONE physical env (e.g.
// "hot/..." and "cold/..." of a single MemEnv) so the crash-schedule
// harness can count and crash every physical operation of BOTH tiers
// through a single CrashScheduleEnv; on real deployments it mounts the
// capacity tier's directory tree (e.g. "cold/") next to the hot one.
#pragma once

#include <atomic>
#include <utility>

#include "io/env.hpp"

namespace qnn::io {

class PrefixEnv final : public Env {
 public:
  /// `prefix` has no trailing '/' (e.g. "cold"); `base` must outlive
  /// this decorator.
  PrefixEnv(Env& base, std::string prefix)
      : base_(base), prefix_(std::move(prefix)) {}

  void write_file_atomic(const std::string& path, ByteSpan data) override {
    base_.write_file_atomic(full(path), data);
    bytes_written_ += data.size();
  }
  void write_file(const std::string& path, ByteSpan data) override {
    base_.write_file(full(path), data);
    bytes_written_ += data.size();
  }
  std::optional<Bytes> read_file(const std::string& path) override {
    auto data = base_.read_file(full(path));
    if (data) {
      bytes_read_ += data->size();
    }
    return data;
  }
  bool exists(const std::string& path) override {
    return base_.exists(full(path));
  }
  void remove_file(const std::string& path) override {
    base_.remove_file(full(path));
  }
  std::vector<std::string> list_dir(const std::string& dir) override {
    return base_.list_dir(full(dir));
  }
  std::optional<std::uint64_t> file_size(const std::string& path) override {
    return base_.file_size(full(path));
  }
  /// Bytes through THIS mount (the base env counts all mounts together).
  [[nodiscard]] std::uint64_t bytes_written() const override {
    return bytes_written_;
  }
  [[nodiscard]] std::uint64_t bytes_read() const override {
    return bytes_read_;
  }

 private:
  [[nodiscard]] std::string full(const std::string& path) const {
    return prefix_ + "/" + path;
  }

  Env& base_;
  const std::string prefix_;
  std::atomic<std::uint64_t> bytes_written_{0};
  std::atomic<std::uint64_t> bytes_read_{0};
};

}  // namespace qnn::io

// Subtree-mounting Env decorator.
//
// PrefixEnv exposes one subtree of a base Env as a standalone Env: every
// path is rewritten to `<prefix>/<path>` before it reaches the base.
// The tiering layer composes two PrefixEnvs over ONE physical env (e.g.
// "hot/..." and "cold/..." of a single MemEnv) so the crash-schedule
// harness can count and crash every physical operation of BOTH tiers
// through a single CrashScheduleEnv; on real deployments it mounts the
// capacity tier's directory tree (e.g. "cold/") next to the hot one.
#pragma once

#include <atomic>
#include <utility>

#include "io/env.hpp"

namespace qnn::io {

class PrefixEnv final : public Env {
 public:
  /// `prefix` has no trailing '/' (e.g. "cold"); `base` must outlive
  /// this decorator.
  PrefixEnv(Env& base, std::string prefix)
      : base_(base), prefix_(std::move(prefix)) {}

  std::unique_ptr<WritableFile> new_writable(const std::string& path,
                                             WriteMode mode) override {
    return std::make_unique<CountingWritable>(
        *this, base_.new_writable(full(path), mode));
  }
  std::unique_ptr<RandomAccessFile> open_ranged(
      const std::string& path) override {
    auto file = base_.open_ranged(full(path));
    if (!file) {
      return nullptr;
    }
    return std::make_unique<CountingRanged>(*this, std::move(file));
  }
  bool exists(const std::string& path) override {
    return base_.exists(full(path));
  }
  void remove_file(const std::string& path) override {
    base_.remove_file(full(path));
  }
  std::vector<std::string> list_dir(const std::string& dir) override {
    return base_.list_dir(full(dir));
  }
  std::optional<std::uint64_t> file_size(const std::string& path) override {
    return base_.file_size(full(path));
  }
  /// Bytes through THIS mount (the base env counts all mounts together).
  [[nodiscard]] std::uint64_t bytes_written() const override {
    return bytes_written_;
  }
  [[nodiscard]] std::uint64_t bytes_read() const override {
    return bytes_read_;
  }

 private:
  /// Forwards the stream, charging appended bytes to this mount.
  class CountingWritable final : public WritableFile {
   public:
    CountingWritable(PrefixEnv& env, std::unique_ptr<WritableFile> base)
        : env_(env), base_(std::move(base)) {}
    void append(ByteSpan data) override {
      base_->append(data);
      env_.bytes_written_ += data.size();
    }
    void sync() override { base_->sync(); }
    void close() override { base_->close(); }

   private:
    PrefixEnv& env_;
    std::unique_ptr<WritableFile> base_;
  };

  /// Forwards preads, charging returned bytes to this mount.
  class CountingRanged final : public RandomAccessFile {
   public:
    CountingRanged(PrefixEnv& env, std::unique_ptr<RandomAccessFile> base)
        : env_(env), base_(std::move(base)) {}
    [[nodiscard]] std::uint64_t size() const override { return base_->size(); }
    Bytes pread(std::uint64_t offset, std::uint64_t n) override {
      Bytes out = base_->pread(offset, n);
      env_.bytes_read_ += out.size();
      return out;
    }

   private:
    PrefixEnv& env_;
    std::unique_ptr<RandomAccessFile> base_;
  };

  [[nodiscard]] std::string full(const std::string& path) const {
    return prefix_ + "/" + path;
  }

  Env& base_;
  const std::string prefix_;
  std::atomic<std::uint64_t> bytes_written_{0};
  std::atomic<std::uint64_t> bytes_read_{0};
};

}  // namespace qnn::io

#include "obs/observed_env.hpp"

#include "util/timer.hpp"

namespace qnn::obs {

// The handle wrappers live at namespace scope (not in an anonymous
// namespace) so ObservedEnv's friend declarations reach them.

/// Write-handle wrapper: charges append/sync per call and, for kAtomic
/// streams, one `install` op (with the stream's total bytes) at close.
/// Destruction without close() forwards the abort untouched — an aborted
/// install is not an install, so nothing is charged.
class ObservedWritableFile final : public io::WritableFile {
 public:
  ObservedWritableFile(std::unique_ptr<io::WritableFile> base,
                       const ObservedEnv& env, io::WriteMode mode)
      : base_(std::move(base)), env_(env), mode_(mode) {}

  void append(io::ByteSpan data) override {
    util::Timer t;
    base_->append(data);
    ObservedEnv::charge(env_.append_, data.size(), t.seconds());
    streamed_ += data.size();
  }

  void sync() override {
    util::Timer t;
    base_->sync();
    ObservedEnv::charge(env_.sync_, 0, t.seconds());
  }

  void close() override {
    util::Timer t;
    base_->close();
    if (mode_ == io::WriteMode::kAtomic) {
      ObservedEnv::charge(env_.install_, streamed_, t.seconds());
    }
  }

 private:
  std::unique_ptr<io::WritableFile> base_;
  const ObservedEnv& env_;
  const io::WriteMode mode_;
  std::uint64_t streamed_ = 0;
};

class ObservedRandomAccessFile final : public io::RandomAccessFile {
 public:
  ObservedRandomAccessFile(std::unique_ptr<io::RandomAccessFile> base,
                           const ObservedEnv& env)
      : base_(std::move(base)), env_(env) {}

  [[nodiscard]] std::uint64_t size() const override { return base_->size(); }

  io::Bytes pread(std::uint64_t offset, std::uint64_t n) override {
    util::Timer t;
    io::Bytes out = base_->pread(offset, n);
    ObservedEnv::charge(env_.pread_, out.size(), t.seconds());
    return out;
  }

 private:
  std::unique_ptr<io::RandomAccessFile> base_;
  const ObservedEnv& env_;
};

ObservedEnv::ObservedEnv(io::Env& base, MetricsRegistry& metrics,
                         std::string prefix)
    : ForwardingEnv(base), prefix_(std::move(prefix)) {
  append_ = make_class(metrics, "append");
  sync_ = make_class(metrics, "sync");
  install_ = make_class(metrics, "install");
  pread_ = make_class(metrics, "pread");
  remove_ = make_class(metrics, "remove");
  meta_ = make_class(metrics, "meta");
}

ObservedEnv::OpClass ObservedEnv::make_class(MetricsRegistry& metrics,
                                             const std::string& name) const {
  OpClass c;
  c.ops = &metrics.counter(prefix_ + "." + name + ".ops");
  c.bytes = &metrics.counter(prefix_ + "." + name + ".bytes");
  c.latency = &metrics.histogram(prefix_ + "." + name + ".latency_us");
  return c;
}

void ObservedEnv::charge(const OpClass& c, std::uint64_t bytes,
                         double seconds) {
  c.ops->add(1);
  if (bytes > 0) {
    c.bytes->add(bytes);
  }
  c.latency->record_seconds(seconds);
}

std::unique_ptr<io::WritableFile> ObservedEnv::new_writable(
    const std::string& path, io::WriteMode mode) {
  return std::make_unique<ObservedWritableFile>(
      base_.new_writable(path, mode), *this, mode);
}

std::unique_ptr<io::RandomAccessFile> ObservedEnv::open_ranged(
    const std::string& path) {
  auto base = base_.open_ranged(path);
  if (base == nullptr) {
    return nullptr;
  }
  return std::make_unique<ObservedRandomAccessFile>(std::move(base), *this);
}

void ObservedEnv::write_file_atomic(const std::string& path,
                                    io::ByteSpan data) {
  // Forwarded explicitly (not through our own handles): a base whose
  // whole-buffer write carries extra semantics must keep them. Charged
  // as one install op either way.
  util::Timer t;
  base_.write_file_atomic(path, data);
  charge(install_, data.size(), t.seconds());
}

void ObservedEnv::write_file(const std::string& path, io::ByteSpan data) {
  util::Timer t;
  base_.write_file(path, data);
  charge(append_, data.size(), t.seconds());
}

std::optional<io::Bytes> ObservedEnv::read_file(const std::string& path) {
  util::Timer t;
  auto out = base_.read_file(path);
  charge(pread_, out ? out->size() : 0, t.seconds());
  return out;
}

bool ObservedEnv::exists(const std::string& path) {
  util::Timer t;
  const bool out = base_.exists(path);
  charge(meta_, 0, t.seconds());
  return out;
}

void ObservedEnv::remove_file(const std::string& path) {
  util::Timer t;
  base_.remove_file(path);
  charge(remove_, 0, t.seconds());
}

std::vector<std::string> ObservedEnv::list_dir(const std::string& dir) {
  util::Timer t;
  auto out = base_.list_dir(dir);
  charge(meta_, 0, t.seconds());
  return out;
}

std::optional<std::uint64_t> ObservedEnv::file_size(const std::string& path) {
  util::Timer t;
  auto out = base_.file_size(path);
  charge(meta_, 0, t.seconds());
  return out;
}

}  // namespace qnn::obs

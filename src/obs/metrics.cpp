#include "obs/metrics.hpp"

#include <bit>
#include <cmath>
#include <limits>
#include <sstream>

namespace qnn::obs {

namespace {

/// JSON string escaping for instrument names (quote and backslash only:
/// names are programmer-chosen identifiers, not user data).
std::string escaped(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace

void LatencyHistogram::record_us(double us) {
  if (!(us > 0.0)) {
    us = 0.0;  // negative or NaN clock glitches clamp to the fast bucket
  }
  const auto us_int = static_cast<std::uint64_t>(us);
  // Bucket 0: < 1 us. Bucket i >= 1: [2^(i-1), 2^i) us — i.e. the bit
  // width of the integral microsecond count, clamped into the overflow
  // bucket.
  const std::size_t idx =
      std::min<std::size_t>(std::bit_width(us_int), kBuckets - 1);
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_ns_.fetch_add(static_cast<std::uint64_t>(us * 1e3),
                    std::memory_order_relaxed);
}

std::uint64_t LatencyHistogram::bucket_edge_us(std::size_t i) {
  if (i >= kBuckets - 1) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  return std::uint64_t{1} << i;
}

std::uint64_t LatencyHistogram::percentile_us(double p) const {
  const std::uint64_t total = count();
  if (total == 0) {
    return 0;
  }
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(total)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += bucket(i);
    if (seen >= rank) {
      return bucket_edge_us(i);
    }
  }
  return bucket_edge_us(kBuckets - 1);
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = counters_[name];
  if (!slot) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) {
    slot = std::make_unique<Gauge>();
  }
  return *slot;
}

LatencyHistogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<LatencyHistogram>();
  }
  return *slot;
}

std::string MetricsRegistry::text() const {
  std::lock_guard lock(mu_);
  std::ostringstream os;
  for (const auto& [name, c] : counters_) {
    os << "counter " << name << " " << c->value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    os << "gauge " << name << " " << g->value() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    os << "histogram " << name << " count=" << h->count()
       << " sum_us=" << h->sum_us() << " p50_us=" << h->percentile_us(50)
       << " p99_us=" << h->percentile_us(99) << "\n";
  }
  return os.str();
}

std::string MetricsRegistry::json(const std::string& bench) const {
  std::lock_guard lock(mu_);
  std::ostringstream os;
  os << "{\"schema\":\"metrics-v1\"";
  if (!bench.empty()) {
    os << ",\"bench\":\"" << escaped(bench) << '"';
  }
  os << ",\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "" : ",") << '"' << escaped(name) << "\":" << c->value();
    first = false;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    os << (first ? "" : ",") << '"' << escaped(name) << "\":" << g->value();
    first = false;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "" : ",") << '"' << escaped(name)
       << "\":{\"count\":" << h->count() << ",\"sum_us\":" << h->sum_us()
       << ",\"p50_us\":" << h->percentile_us(50)
       << ",\"p99_us\":" << h->percentile_us(99) << "}";
    first = false;
  }
  os << "}}";
  return os.str();
}

}  // namespace qnn::obs

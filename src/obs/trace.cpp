#include "obs/trace.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace qnn::obs {

namespace {

double wall_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Tracer::Tracer(Clock clock) : clock_(std::move(clock)) {
  if (!clock_) {
    clock_ = wall_seconds;
  }
  t0_ = clock_();
}

std::uint64_t Tracer::now_us_locked() {
  const double s = clock_() - t0_;
  std::uint64_t ts = 0;
  if (s > 0.0) {
    ts = static_cast<std::uint64_t>(std::llround(s * 1e6));
  }
  // Chrome sorts per-tid events by timestamp; a clock that steps
  // backwards (or stands still across threads) must not reorder B/E.
  last_ts_us_ = std::max(last_ts_us_, ts);
  return last_ts_us_;
}

std::uint32_t Tracer::tid_locked() {
  const auto me = std::this_thread::get_id();
  const auto it = tids_.find(me);
  if (it != tids_.end()) {
    return it->second;
  }
  const auto tid = static_cast<std::uint32_t>(tids_.size() + 1);
  tids_.emplace(me, tid);
  return tid;
}

std::uint64_t Tracer::begin(const std::string& name, const std::string& cat,
                            std::uint64_t parent) {
  std::lock_guard lock(mu_);
  const std::uint64_t id = next_span_++;
  Event e{'B', name, cat, now_us_locked(), tid_locked(), {}};
  e.args.push_back({"span", std::to_string(id)});
  if (parent != 0) {
    e.args.push_back({"parent", std::to_string(parent)});
  }
  events_.push_back(std::move(e));
  return id;
}

void Tracer::end(const std::string& name, const std::string& cat,
                 std::vector<Arg> args) {
  std::lock_guard lock(mu_);
  events_.push_back(
      {'E', name, cat, now_us_locked(), tid_locked(), std::move(args)});
}

void Tracer::instant(const std::string& name, const std::string& cat,
                     std::vector<Arg> args) {
  std::lock_guard lock(mu_);
  events_.push_back(
      {'i', name, cat, now_us_locked(), tid_locked(), std::move(args)});
}

std::size_t Tracer::event_count() const {
  std::lock_guard lock(mu_);
  return events_.size();
}

std::string Tracer::json_string(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string Tracer::chrome_json() const {
  std::lock_guard lock(mu_);
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const Event& e : events_) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "{\"name\":" << json_string(e.name)
       << ",\"cat\":" << json_string(e.cat) << ",\"ph\":\"" << e.ph
       << "\",\"ts\":" << e.ts_us << ",\"pid\":1,\"tid\":" << e.tid;
    if (e.ph == 'i') {
      os << ",\"s\":\"t\"";  // instant scope: thread
    }
    if (!e.args.empty()) {
      os << ",\"args\":{";
      for (std::size_t i = 0; i < e.args.size(); ++i) {
        os << (i == 0 ? "" : ",") << json_string(e.args[i].key) << ':'
           << e.args[i].value;
      }
      os << '}';
    }
    os << '}';
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
  return os.str();
}

void Tracer::write(const std::string& path) const {
  const std::string json = chrome_json();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    throw std::runtime_error("Tracer::write: cannot open " + path);
  }
  const std::size_t n = std::fwrite(json.data(), 1, json.size(), f);
  const int close_err = std::fclose(f);
  if (n != json.size() || close_err != 0) {
    throw std::runtime_error("Tracer::write: short write to " + path);
  }
}

}  // namespace qnn::obs

// Instrumented Env decorator: per-op counts, bytes and latency.
//
// ObservedEnv forwards the full handle contract to any base Env and
// records every operation into a MetricsRegistry under one of six
// operation classes, each with `<prefix>.<class>.ops`, `.bytes` (where
// bytes move) and `.latency_us` instruments:
//
//   append   one streamed append (bytes = payload)
//   sync     one durability push on a write handle
//   install  one kAtomic close — the all-or-nothing publish
//            (bytes = the whole installed stream)
//   pread    one ranged read (bytes = bytes actually returned, the same
//            quantity Env::bytes_read() charges)
//   remove   one file removal
//   meta     one metadata round trip (exists / file_size / list_dir)
//
// It is a pure decorator — mount it over any of the Envs (Posix, Mem,
// Fault, CrashSchedule, Mirror, Prefix, Tiered, Shaped), or one per tier
// UNDER a TieredEnv to split hot-device from cold-device telemetry. The
// whole-buffer convenience calls are forwarded to the base explicitly
// (charged as install/pread), so bases whose whole-buffer methods carry
// extra semantics (TieredEnv's read-through promotion) keep them.
//
// Latencies are wall time (util::Timer): this decorator measures real
// device behaviour; deterministic modeled costs stay ShapedEnv's job.
#pragma once

#include <memory>
#include <string>

#include "io/env.hpp"
#include "obs/metrics.hpp"

namespace qnn::obs {

class ObservedEnv final : public io::ForwardingEnv {
 public:
  /// `metrics` is borrowed and must outlive the env (and any handle it
  /// opened). `prefix` namespaces the instruments — mount one env per
  /// tier with "io.hot" / "io.cold" prefixes to split device telemetry.
  ObservedEnv(io::Env& base, MetricsRegistry& metrics,
              std::string prefix = "io");

  std::unique_ptr<io::WritableFile> new_writable(const std::string& path,
                                                 io::WriteMode mode) override;
  std::unique_ptr<io::RandomAccessFile> open_ranged(
      const std::string& path) override;
  void write_file_atomic(const std::string& path, io::ByteSpan data) override;
  void write_file(const std::string& path, io::ByteSpan data) override;
  std::optional<io::Bytes> read_file(const std::string& path) override;
  bool exists(const std::string& path) override;
  void remove_file(const std::string& path) override;
  std::vector<std::string> list_dir(const std::string& dir) override;
  std::optional<std::uint64_t> file_size(const std::string& path) override;

 private:
  friend class ObservedWritableFile;
  friend class ObservedRandomAccessFile;

  /// One operation class's instruments, resolved once at construction so
  /// the per-op path is pure relaxed-atomic recording.
  struct OpClass {
    Counter* ops = nullptr;
    Counter* bytes = nullptr;
    LatencyHistogram* latency = nullptr;
  };

  [[nodiscard]] OpClass make_class(MetricsRegistry& metrics,
                                   const std::string& name) const;
  /// Records one completed op: count, payload bytes, elapsed seconds.
  static void charge(const OpClass& c, std::uint64_t bytes, double seconds);

  const std::string prefix_;
  OpClass append_;
  OpClass sync_;
  OpClass install_;
  OpClass pread_;
  OpClass remove_;
  OpClass meta_;
};

}  // namespace qnn::obs

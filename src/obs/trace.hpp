// Span tracing with Chrome trace-event JSON output.
//
// A Tracer records a flat, append-only list of duration (B/E) and
// instant (i) events; an RAII Span brackets one stage (snapshot, encode,
// install, demote, WAL replay, ...) with a begin event at construction
// and an end event — carrying the span's key=value annotations — at
// destruction. chrome_json() renders the whole recording in the Chrome
// trace-event format, so `chrome://tracing` / Perfetto load it directly;
// write() puts that JSON at a path (benches honour the QNNCKPT_TRACE
// environment variable).
//
// Parent links: every span gets a process-unique id, stamped on its
// begin event; a child started on another thread (the async encode
// pipeline, writer threads) names its parent explicitly, so the trace
// keeps the checkpoint's causal chain even though the stages run on
// different tids. Same-thread nesting needs no links — B/E pairs nest by
// position per tid.
//
// Clock: pluggable seconds-valued function. The default is wall time
// (steady_clock); tests install a deterministic clock — e.g. one reading
// a ShapedEnv's modeled seconds — under which a seeded workload produces
// a byte-stable trace (asserted by the golden fixture test). Thread ids
// are likewise renumbered in first-use order, not OS handles, so a
// deterministic run yields identical bytes.
//
// "Disabled" is spelled `nullptr`: Span(nullptr, ...) and every Tracer*
// parameter accept null and make the whole layer one pointer test.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

namespace qnn::obs {

class Tracer {
 public:
  /// A pre-rendered JSON key/value annotation ("value" holds the literal
  /// JSON token — quoted string or bare number).
  struct Arg {
    std::string key;
    std::string value;
  };

  using Clock = std::function<double()>;  ///< seconds, monotonic

  /// Default clock = wall time; pass a deterministic function for
  /// byte-stable traces.
  explicit Tracer(Clock clock = {});

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Records a begin event and returns the new span's id (for explicit
  /// cross-thread parenting). `parent` 0 = no parent link.
  std::uint64_t begin(const std::string& name, const std::string& cat,
                      std::uint64_t parent = 0);
  /// Records the matching end event with the span's annotations.
  void end(const std::string& name, const std::string& cat,
           std::vector<Arg> args);
  /// Records a zero-duration instant event.
  void instant(const std::string& name, const std::string& cat,
               std::vector<Arg> args = {});

  [[nodiscard]] std::size_t event_count() const;

  /// The full recording as Chrome trace-event JSON.
  [[nodiscard]] std::string chrome_json() const;
  /// Writes chrome_json() to a filesystem path (throws on I/O failure).
  void write(const std::string& path) const;

  /// Renders a quoted, escaped JSON string token (for Arg values).
  static std::string json_string(const std::string& s);

 private:
  struct Event {
    char ph;  ///< 'B', 'E' or 'i'
    std::string name;
    std::string cat;
    std::uint64_t ts_us;
    std::uint32_t tid;
    std::vector<Arg> args;
  };

  std::uint64_t now_us_locked();
  std::uint32_t tid_locked();

  mutable std::mutex mu_;
  Clock clock_;
  double t0_ = 0.0;
  std::uint64_t last_ts_us_ = 0;  ///< clamps clock glitches monotone
  std::uint64_t next_span_ = 1;
  std::vector<Event> events_;
  /// Stable small thread numbers in first-use order (OS thread ids are
  /// not deterministic across runs).
  std::unordered_map<std::thread::id, std::uint32_t> tids_;
};

/// RAII span: begin at construction, end (with annotations) at
/// destruction. Inert when the tracer is null — safe to construct
/// unconditionally on hot paths.
class Span {
 public:
  Span() = default;
  Span(Tracer* tracer, std::string name, std::string cat,
       std::uint64_t parent = 0)
      : tracer_(tracer), name_(std::move(name)), cat_(std::move(cat)) {
    if (tracer_ != nullptr) {
      id_ = tracer_->begin(name_, cat_, parent);
    }
  }
  ~Span() { finish(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&& other) noexcept { *this = std::move(other); }
  Span& operator=(Span&& other) noexcept {
    if (this != &other) {
      finish();
      tracer_ = other.tracer_;
      id_ = other.id_;
      name_ = std::move(other.name_);
      cat_ = std::move(other.cat_);
      args_ = std::move(other.args_);
      other.tracer_ = nullptr;
    }
    return *this;
  }

  /// Annotations land on the end event as JSON args.
  void note(const std::string& key, const std::string& value) {
    if (tracer_ != nullptr) {
      args_.push_back({key, Tracer::json_string(value)});
    }
  }
  void note(const std::string& key, std::uint64_t value) {
    if (tracer_ != nullptr) {
      args_.push_back({key, std::to_string(value)});
    }
  }

  /// This span's id, for parenting children on other threads (0 when
  /// tracing is disabled).
  [[nodiscard]] std::uint64_t id() const { return id_; }

  /// Ends the span early (idempotent; the destructor becomes a no-op).
  void finish() {
    if (tracer_ != nullptr) {
      tracer_->end(name_, cat_, std::move(args_));
      tracer_ = nullptr;
    }
  }

 private:
  Tracer* tracer_ = nullptr;
  std::uint64_t id_ = 0;
  std::string name_;
  std::string cat_;
  std::vector<Tracer::Arg> args_;
};

}  // namespace qnn::obs

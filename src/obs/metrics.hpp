// Metrics registry: named counters, gauges and latency histograms.
//
// The registry is the system's one shared vocabulary for "how much and
// how fast": every instrumented layer (ObservedEnv per-op classes, the
// Checkpointer's pipeline stages, WAL/GC/tier engines) records into
// instruments it obtained from a MetricsRegistry once, by name, and a
// snapshot renders the whole population as either a stable text dump or
// a JsonLine-compatible JSON blob (RESULT lines, the inspector's
// --metrics view).
//
// Cost model, in order of heat:
//   * recording on an instrument is a relaxed atomic add — no locks, no
//     allocation, safe from any thread, and cheap enough for per-op I/O
//     accounting;
//   * obtaining an instrument (counter()/gauge()/histogram()) takes the
//     registry mutex and may allocate — do it once at construction and
//     keep the reference, which stays valid for the registry's lifetime;
//   * snapshots (text()/json()) take the mutex and walk every
//     instrument.
//
// "Disabled" is spelled `nullptr`: every instrumented component takes an
// optional MetricsRegistry* and skips instrumentation entirely when it
// is null, so the disabled path costs one pointer test.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace qnn::obs {

/// Monotonic event count (relaxed atomic; exact totals, no ordering).
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  /// Overwrites the value — for re-exporting externally-accumulated
  /// totals (Checkpointer::Stats) into the registry.
  void set(std::uint64_t n) { v_.store(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// A signed instantaneous level (queue depth, buffered bytes).
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket latency histogram over power-of-two microsecond edges:
/// bucket 0 holds sub-microsecond samples, bucket i >= 1 holds
/// [2^(i-1), 2^i) us, and the last bucket absorbs everything slower.
/// Recording is one relaxed add per sample; quantiles are answered from
/// the bucket population (upper-edge estimate, never an under-report).
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 32;

  void record_seconds(double s) { record_us(s * 1e6); }
  void record_us(double us);

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum_us() const {
    return sum_ns_.load(std::memory_order_relaxed) / 1000;
  }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const {
    return counts_.at(i).load(std::memory_order_relaxed);
  }
  /// Upper bucket edge in microseconds (UINT64_MAX for the overflow
  /// bucket).
  [[nodiscard]] static std::uint64_t bucket_edge_us(std::size_t i);
  /// Bucket-resolution quantile estimate (p in [0,100]): the upper edge
  /// of the bucket holding the p-th sample. 0 when empty.
  [[nodiscard]] std::uint64_t percentile_us(double p) const;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> counts_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_ns_{0};
};

/// Named instrument directory. Instruments are created on first use and
/// live as long as the registry; the returned references are stable, so
/// hot paths resolve names once and record lock-free thereafter.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  LatencyHistogram& histogram(const std::string& name);

  /// Stable human-readable dump: one sorted `kind name value` line per
  /// instrument (histograms additionally show count/sum/p50/p99).
  [[nodiscard]] std::string text() const;

  /// JSON snapshot compatible with the bench RESULT-line tooling:
  ///   {"schema":"metrics-v1","bench":"<bench>","counters":{...},
  ///    "gauges":{...},"histograms":{"x":{"count":..,"sum_us":..,
  ///    "p50_us":..,"p99_us":..}}}
  /// check_regression.py flattens counters/gauges/histogram stats into
  /// plain metrics, so registry snapshots can be gated like any other
  /// RESULT line. `bench` is omitted when empty.
  [[nodiscard]] std::string json(const std::string& bench = "") const;

 private:
  mutable std::mutex mu_;
  // std::map: stable addresses via unique_ptr AND sorted iteration, so
  // text()/json() dumps are deterministic for a deterministic workload.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
};

}  // namespace qnn::obs

#include "codec/codec.hpp"

#include <stdexcept>

#include "codec/xor_delta.hpp"

namespace qnn::codec {

std::string codec_name(CodecId id) {
  switch (id) {
    case CodecId::kRaw:
      return "raw";
    case CodecId::kRle:
      return "rle";
    case CodecId::kLz:
      return "lz";
    case CodecId::kDeltaLz:
      return "delta+lz";
    case CodecId::kDeltaRle:
      return "delta+rle";
  }
  return "unknown";
}

CodecId codec_from_name(const std::string& name) {
  for (CodecId id : kAllCodecs) {
    if (codec_name(id) == name) {
      return id;
    }
  }
  throw std::invalid_argument("codec_from_name: unknown codec '" + name + "'");
}

Bytes encode(CodecId id, ByteSpan raw) {
  switch (id) {
    case CodecId::kRaw:
      return Bytes(raw.begin(), raw.end());
    case CodecId::kRle:
      return rle_encode(raw);
    case CodecId::kLz:
      return lz_encode(raw);
    case CodecId::kDeltaLz: {
      const Bytes delta = xor_delta64(raw);
      return lz_encode(delta);
    }
    case CodecId::kDeltaRle: {
      const Bytes delta = xor_delta64(raw);
      return rle_encode(delta);
    }
  }
  throw std::invalid_argument("encode: unknown codec id");
}

Bytes decode(CodecId id, ByteSpan encoded, std::size_t raw_len) {
  switch (id) {
    case CodecId::kRaw: {
      if (encoded.size() != raw_len) {
        throw std::runtime_error("decode(raw): length mismatch");
      }
      return Bytes(encoded.begin(), encoded.end());
    }
    case CodecId::kRle:
      return rle_decode(encoded, raw_len);
    case CodecId::kLz:
      return lz_decode(encoded, raw_len);
    case CodecId::kDeltaLz:
      return xor_undelta64(lz_decode(encoded, raw_len));
    case CodecId::kDeltaRle:
      return xor_undelta64(rle_decode(encoded, raw_len));
  }
  throw std::invalid_argument("decode: unknown codec id");
}

}  // namespace qnn::codec

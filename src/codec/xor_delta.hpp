// XOR-delta transforms.
//
// inter-buffer: xor_with_parent() XORs a payload against the same section of
// the parent checkpoint; for slowly-moving optimiser state the result is
// mostly zero bytes, which Rle/Lz collapse. Applied by the Incremental
// checkpoint strategy before compression.
//
// intra-buffer: xor_delta64 XORs each 64-bit word with its predecessor
// inside a single payload; exposes repeated structure in arrays of similar
// doubles. Used by the kDeltaLz / kDeltaRle codecs.
//
// Both transforms are involutions-with-inverse and exactly size-preserving.
//
// The default entry points run SSE2 kernels on x86-64 (16 bytes per
// step; the prefix-XOR in xor_undelta64 carries the running word across
// lanes) and wide-word loops elsewhere. The `_scalar` variants are the
// original byte/word loops, kept as the oracle the parity tests compare
// against — outputs are byte-identical by contract.
#pragma once

#include "util/bytes.hpp"

namespace qnn::codec {

using util::Bytes;
using util::ByteSpan;

/// data[i] ^ parent[i]; bytes past parent's length pass through unchanged
/// (payload grew between checkpoints). Result size == data size.
Bytes xor_with_parent(ByteSpan data, ByteSpan parent);

/// Forward intra-buffer delta: word[i] ^= word[i-1] (64-bit words; the tail
/// that does not fill a word is left untouched).
Bytes xor_delta64(ByteSpan data);

/// Inverse of xor_delta64.
Bytes xor_undelta64(ByteSpan data);

/// Scalar reference implementations (the pre-vectorization loops).
/// Byte-identical to the defaults; used by parity tests and the
/// throughput bench.
Bytes xor_with_parent_scalar(ByteSpan data, ByteSpan parent);
Bytes xor_delta64_scalar(ByteSpan data);
Bytes xor_undelta64_scalar(ByteSpan data);

}  // namespace qnn::codec

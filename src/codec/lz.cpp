// LZ77 with a greedy hash-chain matcher (LZ4-flavoured token layout).
//
// Token stream, repeated until end of input:
//   varint literal_count
//   literal_count raw bytes
//   varint match_code:
//     0            -> end of stream (no match follows)
//     m >= 1       -> match of length m + kMinMatch - 1
//   varint distance (only when match_code != 0), 1-based back-reference
//
// Matches are found via a 4-byte-hash head table with single-step chains
// (head[hash] stores the most recent position), window-limited to kWindow.
// Worst case (incompressible input): the whole input is one literal run,
// expansion bound of n + O(varint overhead).
#include <cstring>
#include <stdexcept>
#include <vector>

#include "codec/codec.hpp"
#include "util/varint.hpp"

namespace qnn::codec {

namespace {
constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxMatch = 1 << 16;
constexpr std::size_t kWindow = 1 << 16;
constexpr std::size_t kHashBits = 16;

inline std::uint32_t hash4(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

/// Longest common prefix of [a, limit) and [b, limit-relative), capped.
std::size_t match_length(const std::uint8_t* a, const std::uint8_t* b,
                         const std::uint8_t* limit) {
  std::size_t n = 0;
  while (a + n < limit && a[n] == b[n] && n < kMaxMatch) {
    ++n;
  }
  return n;
}
}  // namespace

Bytes lz_encode(ByteSpan raw) {
  Bytes out;
  out.reserve(raw.size() / 2 + 16);
  if (raw.empty()) {
    return out;
  }

  std::vector<std::int64_t> head(std::size_t{1} << kHashBits, -1);
  const std::uint8_t* base = raw.data();
  const std::uint8_t* limit = base + raw.size();

  std::size_t lit_start = 0;
  std::size_t i = 0;
  while (i + kMinMatch <= raw.size()) {
    const std::uint32_t h = hash4(base + i);
    const std::int64_t cand = head[h];
    head[h] = static_cast<std::int64_t>(i);

    std::size_t len = 0;
    if (cand >= 0 && i - static_cast<std::size_t>(cand) <= kWindow) {
      len = match_length(base + i, base + cand, limit);
    }
    if (len >= kMinMatch) {
      // Emit pending literals, then the match token.
      util::put_varint(out, i - lit_start);
      out.insert(out.end(),
                 raw.begin() + static_cast<std::ptrdiff_t>(lit_start),
                 raw.begin() + static_cast<std::ptrdiff_t>(i));
      util::put_varint(out, len - kMinMatch + 1);
      util::put_varint(out, i - static_cast<std::size_t>(cand));

      // Insert hash entries inside the match so later matches can land
      // there too (sparse stride keeps encoding fast).
      const std::size_t end = i + len;
      for (std::size_t j = i + 1; j + kMinMatch <= raw.size() && j < end;
           j += 2) {
        head[hash4(base + j)] = static_cast<std::int64_t>(j);
      }
      i = end;
      lit_start = i;
    } else {
      ++i;
    }
  }

  // Trailing literals + end marker.
  util::put_varint(out, raw.size() - lit_start);
  out.insert(out.end(), raw.begin() + static_cast<std::ptrdiff_t>(lit_start),
             raw.end());
  util::put_varint(out, 0);
  return out;
}

Bytes lz_decode(ByteSpan encoded, std::size_t raw_len) {
  Bytes out;
  out.reserve(raw_len);
  if (encoded.empty()) {
    if (raw_len != 0) {
      throw std::runtime_error("lz_decode: empty stream for non-empty output");
    }
    return out;
  }

  std::size_t pos = 0;
  while (true) {
    const std::uint64_t lits = util::get_varint(encoded, pos);
    if (pos + lits > encoded.size()) {
      throw std::runtime_error("lz_decode: truncated literals");
    }
    out.insert(out.end(), encoded.begin() + static_cast<std::ptrdiff_t>(pos),
               encoded.begin() + static_cast<std::ptrdiff_t>(pos + lits));
    pos += lits;

    const std::uint64_t match_code = util::get_varint(encoded, pos);
    if (match_code == 0) {
      break;
    }
    const std::uint64_t len = match_code + kMinMatch - 1;
    const std::uint64_t dist = util::get_varint(encoded, pos);
    if (dist == 0 || dist > out.size()) {
      throw std::runtime_error("lz_decode: bad match distance");
    }
    // Byte-by-byte copy: overlapping matches (dist < len) are legal and
    // reproduce the run-extension semantics of the encoder.
    std::size_t src = out.size() - dist;
    for (std::uint64_t k = 0; k < len; ++k) {
      out.push_back(out[src + k]);
    }
    if (out.size() > raw_len) {
      throw std::runtime_error("lz_decode: output exceeds declared length");
    }
  }
  if (out.size() != raw_len) {
    throw std::runtime_error("lz_decode: output length mismatch");
  }
  return out;
}

}  // namespace qnn::codec

// Byte-level run-length encoding.
//
// Token stream:
//   control byte c in [0x00, 0x7F]: literal run, the next c+1 bytes are
//     copied verbatim (max 128 literals per token);
//   control byte c in [0x80, 0xFF]: repeat run, the next byte repeats
//     (c - 0x80) + kMinRun times (runs of 4..131).
//
// Worst case (no runs): one control byte per 128 literals, i.e. expansion
// bound of n + ceil(n/128).
#include <stdexcept>

#include "codec/codec.hpp"

namespace qnn::codec {

namespace {
constexpr std::size_t kMinRun = 4;
constexpr std::size_t kMaxRun = 0x7F + kMinRun;  // 131
constexpr std::size_t kMaxLiteral = 0x80;        // 128

/// Length of the run of identical bytes starting at `i`.
std::size_t run_length(ByteSpan raw, std::size_t i) {
  const std::uint8_t b = raw[i];
  std::size_t n = 1;
  while (i + n < raw.size() && raw[i + n] == b && n < kMaxRun) {
    ++n;
  }
  return n;
}

void flush_literals(Bytes& out, ByteSpan raw, std::size_t start,
                    std::size_t end) {
  while (start < end) {
    const std::size_t n = std::min(end - start, kMaxLiteral);
    out.push_back(static_cast<std::uint8_t>(n - 1));
    out.insert(out.end(), raw.begin() + static_cast<std::ptrdiff_t>(start),
               raw.begin() + static_cast<std::ptrdiff_t>(start + n));
    start += n;
  }
}
}  // namespace

Bytes rle_encode(ByteSpan raw) {
  Bytes out;
  out.reserve(raw.size() / 2 + 8);
  std::size_t lit_start = 0;
  std::size_t i = 0;
  while (i < raw.size()) {
    const std::size_t run = run_length(raw, i);
    if (run >= kMinRun) {
      flush_literals(out, raw, lit_start, i);
      out.push_back(static_cast<std::uint8_t>(0x80 + (run - kMinRun)));
      out.push_back(raw[i]);
      i += run;
      lit_start = i;
    } else {
      i += run;
    }
  }
  flush_literals(out, raw, lit_start, raw.size());
  return out;
}

Bytes rle_decode(ByteSpan encoded, std::size_t raw_len) {
  Bytes out;
  out.reserve(raw_len);
  std::size_t i = 0;
  while (i < encoded.size()) {
    const std::uint8_t c = encoded[i++];
    if (c < 0x80) {
      const std::size_t n = static_cast<std::size_t>(c) + 1;
      if (i + n > encoded.size()) {
        throw std::runtime_error("rle_decode: truncated literal run");
      }
      out.insert(out.end(), encoded.begin() + static_cast<std::ptrdiff_t>(i),
                 encoded.begin() + static_cast<std::ptrdiff_t>(i + n));
      i += n;
    } else {
      if (i >= encoded.size()) {
        throw std::runtime_error("rle_decode: truncated repeat run");
      }
      const std::size_t n = static_cast<std::size_t>(c - 0x80) + kMinRun;
      out.insert(out.end(), n, encoded[i++]);
    }
    if (out.size() > raw_len) {
      throw std::runtime_error("rle_decode: output exceeds declared length");
    }
  }
  if (out.size() != raw_len) {
    throw std::runtime_error("rle_decode: output length mismatch");
  }
  return out;
}

}  // namespace qnn::codec

// Byte-level run-length encoding.
//
// Token stream:
//   control byte c in [0x00, 0x7F]: literal run, the next c+1 bytes are
//     copied verbatim (max 128 literals per token);
//   control byte c in [0x80, 0xFF]: repeat run, the next byte repeats
//     (c - 0x80) + kMinRun times (runs of 4..131).
//
// Worst case (no runs): one control byte per 128 literals, i.e. expansion
// bound of n + ceil(n/128).
//
// The encoder's hot loop is the SCAN for the next run start — on
// incompressible input (statevector amplitudes) the scalar encoder
// inspects every byte. rle_encode vectorizes that scan with SSE2 (14
// positions tested per 16-byte compare) while emitting the exact same
// token stream as the scalar encoder: the greedy scalar scan advances
// past a literal stretch by sub-minimum run lengths and therefore can
// never jump over the first position where >= kMinRun equal bytes
// start, so "first run start" is the same position under both. The
// scalar encoder is kept as rle_encode_scalar — the parity oracle.
#include <stdexcept>

#include "codec/codec.hpp"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace qnn::codec {

namespace {
constexpr std::size_t kMinRun = 4;
constexpr std::size_t kMaxRun = 0x7F + kMinRun;  // 131
constexpr std::size_t kMaxLiteral = 0x80;        // 128

/// Length of the run of identical bytes starting at `i`.
std::size_t run_length(ByteSpan raw, std::size_t i) {
  const std::uint8_t b = raw[i];
  std::size_t n = 1;
  while (i + n < raw.size() && raw[i + n] == b && n < kMaxRun) {
    ++n;
  }
  return n;
}

void flush_literals(Bytes& out, ByteSpan raw, std::size_t start,
                    std::size_t end) {
  while (start < end) {
    const std::size_t n = std::min(end - start, kMaxLiteral);
    out.push_back(static_cast<std::uint8_t>(n - 1));
    out.insert(out.end(), raw.begin() + static_cast<std::ptrdiff_t>(start),
               raw.begin() + static_cast<std::ptrdiff_t>(start + n));
    start += n;
  }
}

/// First index j >= i where kMinRun identical bytes start, or raw.size().
std::size_t next_run_start(ByteSpan raw, std::size_t i) {
  const std::uint8_t* p = raw.data();
  const std::size_t size = raw.size();
#if defined(__SSE2__)
  // Compare the block against itself shifted by one byte: bit b of the
  // mask means p[i+b] == p[i+b+1]. Three consecutive set bits mean four
  // equal bytes. Bits 14-15 would need p[i+17..] so only 14 positions
  // are decided per block.
  while (i + 17 <= size) {
    const __m128i v0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i));
    const __m128i v1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i + 1));
    const auto m =
        static_cast<unsigned>(_mm_movemask_epi8(_mm_cmpeq_epi8(v0, v1)));
    const unsigned candidates = m & (m >> 1) & (m >> 2) & 0x3FFFu;
    if (candidates != 0) {
      return i + static_cast<std::size_t>(__builtin_ctz(candidates));
    }
    i += 14;
  }
#endif
  while (i + kMinRun <= size) {
    if (p[i] == p[i + 1] && p[i + 1] == p[i + 2] && p[i + 2] == p[i + 3]) {
      return i;
    }
    ++i;
  }
  return size;
}

/// run_length() with a 16-bytes-per-compare inner loop. Identical
/// result (including the kMaxRun cap).
std::size_t run_length_fast(ByteSpan raw, std::size_t i) {
  const std::uint8_t b = raw[i];
  std::size_t n = 1;
#if defined(__SSE2__)
  const __m128i vb = _mm_set1_epi8(static_cast<char>(b));
  while (n < kMaxRun && i + n + 16 <= raw.size()) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(raw.data() + i + n));
    const auto m =
        static_cast<unsigned>(_mm_movemask_epi8(_mm_cmpeq_epi8(v, vb)));
    if (m != 0xFFFFu) {
      return std::min<std::size_t>(n + static_cast<std::size_t>(
                                           __builtin_ctz(~m)),
                                   kMaxRun);
    }
    n += 16;
  }
#endif
  while (i + n < raw.size() && raw[i + n] == b && n < kMaxRun) {
    ++n;
  }
  return std::min(n, kMaxRun);
}
}  // namespace

Bytes rle_encode_scalar(ByteSpan raw) {
  Bytes out;
  out.reserve(raw.size() / 2 + 8);
  std::size_t lit_start = 0;
  std::size_t i = 0;
  while (i < raw.size()) {
    const std::size_t run = run_length(raw, i);
    if (run >= kMinRun) {
      flush_literals(out, raw, lit_start, i);
      out.push_back(static_cast<std::uint8_t>(0x80 + (run - kMinRun)));
      out.push_back(raw[i]);
      i += run;
      lit_start = i;
    } else {
      i += run;
    }
  }
  flush_literals(out, raw, lit_start, raw.size());
  return out;
}

Bytes rle_encode(ByteSpan raw) {
  Bytes out;
  out.reserve(raw.size() / 2 + 8);
  std::size_t lit_start = 0;
  std::size_t i = 0;
  while (i < raw.size()) {
    const std::size_t j = next_run_start(raw, i);
    if (j == raw.size()) {
      break;  // no more runs: everything left is literal
    }
    const std::size_t run = run_length_fast(raw, j);
    flush_literals(out, raw, lit_start, j);
    out.push_back(static_cast<std::uint8_t>(0x80 + (run - kMinRun)));
    out.push_back(raw[j]);
    i = j + run;
    lit_start = i;
  }
  flush_literals(out, raw, lit_start, raw.size());
  return out;
}

Bytes rle_decode(ByteSpan encoded, std::size_t raw_len) {
  Bytes out;
  out.reserve(raw_len);
  std::size_t i = 0;
  while (i < encoded.size()) {
    const std::uint8_t c = encoded[i++];
    if (c < 0x80) {
      const std::size_t n = static_cast<std::size_t>(c) + 1;
      if (i + n > encoded.size()) {
        throw std::runtime_error("rle_decode: truncated literal run");
      }
      out.insert(out.end(), encoded.begin() + static_cast<std::ptrdiff_t>(i),
                 encoded.begin() + static_cast<std::ptrdiff_t>(i + n));
      i += n;
    } else {
      if (i >= encoded.size()) {
        throw std::runtime_error("rle_decode: truncated repeat run");
      }
      const std::size_t n = static_cast<std::size_t>(c - 0x80) + kMinRun;
      out.insert(out.end(), n, encoded[i++]);
    }
    if (out.size() > raw_len) {
      throw std::runtime_error("rle_decode: output exceeds declared length");
    }
  }
  if (out.size() != raw_len) {
    throw std::runtime_error("rle_decode: output length mismatch");
  }
  return out;
}

}  // namespace qnn::codec

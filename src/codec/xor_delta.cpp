#include "codec/xor_delta.hpp"

#include <cstring>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace qnn::codec {

// --- scalar reference implementations (the oracle) -------------------------

Bytes xor_with_parent_scalar(ByteSpan data, ByteSpan parent) {
  Bytes out(data.begin(), data.end());
  const std::size_t n = std::min(out.size(), parent.size());
  for (std::size_t i = 0; i < n; ++i) {
    out[i] ^= parent[i];
  }
  return out;
}

Bytes xor_delta64_scalar(ByteSpan data) {
  Bytes out(data.begin(), data.end());
  const std::size_t words = out.size() / 8;
  // Walk backwards so each word is XORed with the *original* predecessor.
  for (std::size_t i = words; i-- > 1;) {
    std::uint64_t cur, prev;
    std::memcpy(&cur, out.data() + i * 8, 8);
    std::memcpy(&prev, out.data() + (i - 1) * 8, 8);
    cur ^= prev;
    std::memcpy(out.data() + i * 8, &cur, 8);
  }
  return out;
}

Bytes xor_undelta64_scalar(ByteSpan data) {
  Bytes out(data.begin(), data.end());
  const std::size_t words = out.size() / 8;
  // Forward prefix-XOR reconstructs the original stream.
  for (std::size_t i = 1; i < words; ++i) {
    std::uint64_t cur, prev;
    std::memcpy(&cur, out.data() + i * 8, 8);
    std::memcpy(&prev, out.data() + (i - 1) * 8, 8);
    cur ^= prev;
    std::memcpy(out.data() + i * 8, &cur, 8);
  }
  return out;
}

// --- vectorized defaults ---------------------------------------------------

Bytes xor_with_parent(ByteSpan data, ByteSpan parent) {
  Bytes out(data.begin(), data.end());
  const std::size_t n = std::min(out.size(), parent.size());
  std::size_t i = 0;
#if defined(__SSE2__)
  for (; i + 16 <= n; i += 16) {
    const __m128i a =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(out.data() + i));
    const __m128i b =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(parent.data() + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out.data() + i),
                     _mm_xor_si128(a, b));
  }
#endif
  for (; i + 8 <= n; i += 8) {
    std::uint64_t a, b;
    std::memcpy(&a, out.data() + i, 8);
    std::memcpy(&b, parent.data() + i, 8);
    a ^= b;
    std::memcpy(out.data() + i, &a, 8);
  }
  for (; i < n; ++i) {
    out[i] ^= parent[i];
  }
  return out;
}

Bytes xor_delta64(ByteSpan data) {
  Bytes out(data.begin(), data.end());
  const std::size_t words = out.size() / 8;
  if (words < 2) {
    return out;
  }
  // In-place backward walk like the scalar oracle (one buffer of
  // traffic), two words per step: the pair write at j-1..j only needs
  // words j-2..j, none of which has been rewritten yet when walking
  // down from the top.
  std::uint8_t* p = out.data();
  std::size_t j = words - 1;
#if defined(__SSE2__)
  for (; j >= 2; j -= 2) {
    const __m128i cur =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + (j - 1) * 8));
    const __m128i prev =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + (j - 2) * 8));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p + (j - 1) * 8),
                     _mm_xor_si128(cur, prev));
  }
#endif
  for (; j >= 1; --j) {
    std::uint64_t cur, prev;
    std::memcpy(&cur, p + j * 8, 8);
    std::memcpy(&prev, p + (j - 1) * 8, 8);
    cur ^= prev;
    std::memcpy(p + j * 8, &cur, 8);
  }
  return out;
}

Bytes xor_undelta64(ByteSpan data) {
  Bytes out(data.begin(), data.end());
  const std::size_t words = out.size() / 8;
  if (words < 2) {
    return out;
  }
  std::size_t i = 0;
#if defined(__SSE2__)
  // Prefix-XOR two words per step: for v = [w0, w1] and the running
  // carry c (= last decoded word), the decoded pair is
  // [w0^c, w1^w0^c] — one in-register shift plus two XORs.
  __m128i carry = _mm_setzero_si128();
  for (; i + 2 <= words; i += 2) {
    __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(out.data() + i * 8));
    v = _mm_xor_si128(v, _mm_slli_si128(v, 8));
    v = _mm_xor_si128(v, carry);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out.data() + i * 8), v);
    carry = _mm_unpackhi_epi64(v, v);
  }
#endif
  if (i == 0) {
    i = 1;  // word 0 passes through unchanged
  }
  for (; i < words; ++i) {
    std::uint64_t cur, prev;
    std::memcpy(&cur, out.data() + i * 8, 8);
    std::memcpy(&prev, out.data() + (i - 1) * 8, 8);
    cur ^= prev;
    std::memcpy(out.data() + i * 8, &cur, 8);
  }
  return out;
}

}  // namespace qnn::codec

#include "codec/xor_delta.hpp"

#include <cstring>

namespace qnn::codec {

Bytes xor_with_parent(ByteSpan data, ByteSpan parent) {
  Bytes out(data.begin(), data.end());
  const std::size_t n = std::min(out.size(), parent.size());
  for (std::size_t i = 0; i < n; ++i) {
    out[i] ^= parent[i];
  }
  return out;
}

Bytes xor_delta64(ByteSpan data) {
  Bytes out(data.begin(), data.end());
  const std::size_t words = out.size() / 8;
  // Walk backwards so each word is XORed with the *original* predecessor.
  for (std::size_t i = words; i-- > 1;) {
    std::uint64_t cur, prev;
    std::memcpy(&cur, out.data() + i * 8, 8);
    std::memcpy(&prev, out.data() + (i - 1) * 8, 8);
    cur ^= prev;
    std::memcpy(out.data() + i * 8, &cur, 8);
  }
  return out;
}

Bytes xor_undelta64(ByteSpan data) {
  Bytes out(data.begin(), data.end());
  const std::size_t words = out.size() / 8;
  // Forward prefix-XOR reconstructs the original stream.
  for (std::size_t i = 1; i < words; ++i) {
    std::uint64_t cur, prev;
    std::memcpy(&cur, out.data() + i * 8, 8);
    std::memcpy(&prev, out.data() + (i - 1) * 8, 8);
    cur ^= prev;
    std::memcpy(out.data() + i * 8, &cur, 8);
  }
  return out;
}

}  // namespace qnn::codec

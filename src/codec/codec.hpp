// Compression codecs for checkpoint sections.
//
// Checkpoint payloads fall into two regimes:
//   * optimiser-dominated data (parameters, Adam moments, loss history):
//     doubles that move slowly between checkpoints — XOR-delta against the
//     parent checkpoint turns them into sparse, highly compressible byte
//     streams (long zero runs), which Rle/Lz then collapse;
//   * statevector amplitudes: near-incompressible high-entropy doubles —
//     codecs must degrade gracefully (bounded expansion, high throughput).
//
// All codecs are self-contained (no external libraries) and deterministic.
// A section records its CodecId so readers are self-describing.
#pragma once

#include <cstdint>
#include <string>

#include "util/bytes.hpp"

namespace qnn::codec {

using util::Bytes;
using util::ByteSpan;

/// On-disk codec identifiers. Values are part of the checkpoint format —
/// never renumber.
enum class CodecId : std::uint8_t {
  kRaw = 0,      ///< identity
  kRle = 1,      ///< byte run-length encoding
  kLz = 2,       ///< LZ77, greedy hash-chain matcher
  kDeltaLz = 3,  ///< intra-buffer 64-bit XOR delta, then LZ
  kDeltaRle = 4, ///< intra-buffer 64-bit XOR delta, then RLE
};

/// Human-readable codec name ("raw", "rle", ...).
std::string codec_name(CodecId id);

/// Parses a codec name; throws std::invalid_argument on unknown names.
CodecId codec_from_name(const std::string& name);

/// Encodes `raw` with the given codec. Every codec has bounded worst-case
/// expansion (<= raw.size() + raw.size()/128 + 16 bytes).
Bytes encode(CodecId id, ByteSpan raw);

/// Decodes an encode() output. `raw_len` is the expected decoded size
/// (stored in the section header); mismatch raises std::runtime_error, as
/// does any malformed stream.
Bytes decode(CodecId id, ByteSpan encoded, std::size_t raw_len);

/// All codecs, for sweep-style tests and the T2 codec shootout.
inline constexpr CodecId kAllCodecs[] = {CodecId::kRaw, CodecId::kRle,
                                         CodecId::kLz, CodecId::kDeltaLz,
                                         CodecId::kDeltaRle};

// --- individual codec entry points (exposed for unit tests) ---

Bytes rle_encode(ByteSpan raw);
Bytes rle_decode(ByteSpan encoded, std::size_t raw_len);

/// Scalar-scan reference encoder: byte-identical token stream to
/// rle_encode (which vectorizes the run scan). Parity oracle for tests
/// and the forced-scalar rows of the throughput bench.
Bytes rle_encode_scalar(ByteSpan raw);

Bytes lz_encode(ByteSpan raw);
Bytes lz_decode(ByteSpan encoded, std::size_t raw_len);

}  // namespace qnn::codec

#include "ckpt/cas.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "ckpt/manifest.hpp"
#include "tier/tiered_env.hpp"
#include "util/crc.hpp"
#include "util/strings.hpp"

namespace qnn::ckpt {

namespace {
constexpr char kPackMagic[4] = {'Q', 'P', 'A', 'K'};
constexpr char kPackFooterMagic[4] = {'K', 'A', 'P', 'Q'};
constexpr std::uint16_t kPackVersion = 1;
constexpr std::size_t kPackHeaderBytes = 4 + 2 + 2 + 8 + 4;
constexpr std::size_t kPackFooterBytes = 8 + 4;
// digest, raw_crc, raw_len, codec, enc_len, enc_crc
constexpr std::size_t kRecordHeaderBytes = 1 + 4 + 8 + 1 + 8 + 4;
constexpr const char* kRefsName = "REFS";
constexpr const char* kRefsHeader = "qnnckpt-refs v1";

bool check_magic(util::ByteSpan in, std::size_t offset,
                 const char (&magic)[4]) {
  return offset + 4 <= in.size() &&
         std::memcmp(in.data() + offset, magic, 4) == 0;
}

/// One record to serialise (bytes borrowed from the caller).
struct PackRecordView {
  ChunkKey key;
  codec::CodecId codec;
  std::uint32_t enc_crc;
  util::ByteSpan encoded;
};

/// One record as parsed back out of a packfile buffer.
struct ParsedRecord {
  ChunkKey key;
  codec::CodecId codec = codec::CodecId::kRaw;
  std::uint32_t enc_crc = 0;
  std::uint64_t offset = 0;  ///< of the encoded bytes within the pack
  std::uint64_t enc_len = 0;
};

/// THE packfile reader: validates framing + footer CRC64 and walks the
/// records. nullopt on any damage. scan_pack_locked and list_pack_keys
/// both parse through here, so the read side of the format also exists
/// in exactly one place.
std::optional<std::vector<ParsedRecord>> parse_pack(util::ByteSpan span) {
  bool ok = check_magic(span, 0, kPackMagic) &&
            span.size() >= kPackHeaderBytes + kPackFooterBytes &&
            check_magic(span, span.size() - 4, kPackFooterMagic);
  if (ok) {
    std::size_t off = span.size() - kPackFooterBytes;
    const auto stored = util::get_le<std::uint64_t>(span, off);
    ok = stored == util::crc64(span.first(span.size() - kPackFooterBytes));
  }
  if (!ok) {
    return std::nullopt;
  }
  std::vector<ParsedRecord> records;
  try {
    std::size_t off = 4;
    const auto version = util::get_le<std::uint16_t>(span, off);
    if (version != kPackVersion) {
      return std::nullopt;
    }
    (void)util::get_le<std::uint16_t>(span, off);  // reserved
    (void)util::get_le<std::uint64_t>(span, off);  // epoch
    const auto n_records = util::get_le<std::uint32_t>(span, off);
    for (std::uint32_t i = 0; i < n_records; ++i) {
      ParsedRecord r;
      const auto digest = util::get_le<std::uint8_t>(span, off);
      r.key.crc = util::get_le<std::uint32_t>(span, off);
      r.key.len = util::get_le<std::uint64_t>(span, off);
      r.codec =
          static_cast<codec::CodecId>(util::get_le<std::uint8_t>(span, off));
      r.enc_len = util::get_le<std::uint64_t>(span, off);
      r.enc_crc = util::get_le<std::uint32_t>(span, off);
      r.offset = off;
      if (digest != kChunkDigestCrc32c ||
          r.enc_len > span.size() - kPackFooterBytes - off) {
        return std::nullopt;
      }
      off += r.enc_len;
      records.push_back(r);
    }
    if (off != span.size() - kPackFooterBytes) {
      return std::nullopt;
    }
  } catch (const std::out_of_range&) {
    return std::nullopt;
  }
  return records;
}

/// THE packfile writer: batch commits and sweep compaction both emit
/// through here, so the on-disk framing exists in exactly one place.
util::Bytes serialize_pack(std::uint64_t epoch,
                           const std::vector<PackRecordView>& records) {
  util::Bytes out;
  out.insert(out.end(), kPackMagic, kPackMagic + 4);
  util::put_le<std::uint16_t>(out, kPackVersion);
  util::put_le<std::uint16_t>(out, 0);  // reserved
  util::put_le<std::uint64_t>(out, epoch);
  util::put_le<std::uint32_t>(out, static_cast<std::uint32_t>(records.size()));
  for (const PackRecordView& r : records) {
    util::put_le<std::uint8_t>(out, kChunkDigestCrc32c);
    util::put_le<std::uint32_t>(out, r.key.crc);
    util::put_le<std::uint64_t>(out, r.key.len);
    util::put_le<std::uint8_t>(out, static_cast<std::uint8_t>(r.codec));
    util::put_le<std::uint64_t>(out, r.encoded.size());
    util::put_le<std::uint32_t>(out, r.enc_crc);
    out.insert(out.end(), r.encoded.begin(), r.encoded.end());
  }
  util::put_le<std::uint64_t>(out, util::crc64(out));
  out.insert(out.end(), kPackFooterMagic, kPackFooterMagic + 4);
  return out;
}
}  // namespace

std::string pack_file_name(std::uint64_t epoch) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "pack-%010llu.qpak",
                static_cast<unsigned long long>(epoch));
  return buf;
}

std::optional<std::uint64_t> parse_pack_file_name(const std::string& name) {
  constexpr const char* kPrefix = "pack-";
  constexpr const char* kSuffix = ".qpak";
  if (!util::starts_with(name, kPrefix) || name.size() != 20 ||
      name.compare(15, 5, kSuffix) != 0) {
    return std::nullopt;
  }
  std::uint64_t id = 0;
  for (std::size_t i = 5; i < 15; ++i) {
    if (name[i] < '0' || name[i] > '9') {
      return std::nullopt;
    }
    id = id * 10 + static_cast<std::uint64_t>(name[i] - '0');
  }
  return id;
}

// ---------------------------------------------------------------------------
// Batch (ChunkSink)
// ---------------------------------------------------------------------------

ChunkStore::Batch::~Batch() { store_.unpin(refs_); }

bool ChunkStore::Batch::contains(const ChunkKey& key) {
  refs_.push_back(key);
  std::lock_guard lock(store_.mu_);
  store_.ensure_open_locked();
  // Pin immediately: from this moment the in-flight file counts on the
  // chunk, and no sweep may reap it until the batch dies.
  store_.pin_locked(key);
  const bool resident =
      store_.index_.contains(key) || staged_index_.contains(key);
  if (resident) {
    ++dedup_hits_;
    dedup_bytes_ += key.len;
    ++store_.stats_.dedup_hits;
    store_.stats_.dedup_bytes += key.len;
  }
  return resident;
}

void ChunkStore::Batch::put(const ChunkKey& key, codec::CodecId codec,
                            ByteSpan encoded) {
  if (staged_index_.contains(key)) {
    return;  // duplicate chunk within one file: store one record
  }
  StagedRecord record{.key = key,
                      .codec = codec,
                      .enc_crc = util::crc32c(encoded),
                      .encoded = Bytes(encoded.begin(), encoded.end())};
  staged_index_.emplace(key, records_.size());
  staged_raw_bytes_ += key.len;
  records_.push_back(std::move(record));
}

std::string ChunkStore::Batch::pack_name() const {
  return pack_file_name(epoch_);
}

Bytes ChunkStore::Batch::serialize() const {
  std::vector<PackRecordView> views;
  views.reserve(records_.size());
  for (const StagedRecord& r : records_) {
    views.push_back(PackRecordView{.key = r.key,
                                   .codec = r.codec,
                                   .enc_crc = r.enc_crc,
                                   .encoded = ByteSpan(r.encoded)});
  }
  return serialize_pack(epoch_, views);
}

// ---------------------------------------------------------------------------
// ChunkStore
// ---------------------------------------------------------------------------

ChunkStore::ChunkStore(io::Env& env, std::string dir)
    : env_(env),
      tiered_(dynamic_cast<tier::TieredEnv*>(&env)),
      dir_(std::move(dir)),
      chunk_dir_(dir_ + "/chunks") {}

std::string ChunkStore::pack_path(const std::string& name) const {
  return chunk_dir_ + "/" + name;
}

std::unique_ptr<ChunkStore::Batch> ChunkStore::begin_batch(
    std::uint64_t epoch) {
  return std::unique_ptr<Batch>(new Batch(*this, epoch));
}

void ChunkStore::publish(const Batch& batch) {
  if (batch.records_.empty()) {
    return;
  }
  std::lock_guard lock(mu_);
  ensure_open_locked();
  const std::string name = batch.pack_name();
  // The tiered write scrubbed any stale cold copy of this epoch, so a
  // matching deferred entry is dead — drop it before it can shadow the
  // fresh records with a lazy scan of vanished bytes.
  std::erase(deferred_packs_, name);
  // Id reallocation after a crash can reuse an epoch: the new packfile
  // atomically replaced the stranded one on disk, so drop every stale
  // index entry before publishing the replacement records.
  if (const auto old = packs_.find(name); old != packs_.end()) {
    for (const Record& r : old->second.records) {
      const auto it = index_.find(r.key);
      if (it != index_.end() && it->second.first == name) {
        index_.erase(it);
        --stats_.chunks;
      }
    }
    stats_.stored_bytes -=
        std::min(stats_.stored_bytes, old->second.file_bytes);
    --stats_.packfiles;
    packs_.erase(old);
  }
  Pack pack;
  std::uint64_t offset = kPackHeaderBytes;
  for (const Batch::StagedRecord& r : batch.records_) {
    offset += kRecordHeaderBytes;
    pack.records.push_back(Record{.key = r.key,
                                  .codec = r.codec,
                                  .enc_crc = r.enc_crc,
                                  .offset = offset,
                                  .enc_len = r.encoded.size()});
    offset += r.encoded.size();
    ++stats_.chunks_written;
  }
  pack.file_bytes = offset + kPackFooterBytes;
  stats_.stored_bytes += pack.file_bytes;
  ++stats_.packfiles;
  for (std::size_t i = 0; i < pack.records.size(); ++i) {
    if (index_.emplace(pack.records[i].key, std::make_pair(name, i)).second) {
      ++stats_.chunks;
    }
  }
  if (cached_pack_name_ == name) {
    cached_pack_name_.clear();  // a re-published epoch invalidates the cache
    cached_pack_bytes_.clear();
  }
  packs_[name] = std::move(pack);
}

bool ChunkStore::contains(const ChunkKey& key) {
  std::lock_guard lock(mu_);
  ensure_open_locked();
  return index_.contains(key);
}

Bytes ChunkStore::get(const ChunkKey& key) {
  std::lock_guard lock(mu_);
  ensure_open_locked();
  auto it = index_.find(key);
  if (it == index_.end() && !deferred_packs_.empty()) {
    // The chunk may live in a cold pack the staged open deferred:
    // index cold packs (peek reads, no promotion) until it shows up.
    scan_deferred_until_locked(key);
    it = index_.find(key);
  }
  if (it == index_.end()) {
    throw std::runtime_error("chunk " + chunk_key_name(key) +
                             ": not in store");
  }
  const auto& [pack_name, record_idx] = it->second;
  const Record& record = packs_.at(pack_name).records[record_idx];
  if (cached_pack_name_ != pack_name) {
    const auto data = env_.read_file(pack_path(pack_name));
    if (!data) {
      throw std::runtime_error("chunk " + chunk_key_name(key) +
                               ": packfile missing: " + pack_name);
    }
    cached_pack_bytes_ = std::move(*data);
    cached_pack_name_ = pack_name;
  }
  if (record.offset + record.enc_len > cached_pack_bytes_.size()) {
    throw std::runtime_error("chunk " + chunk_key_name(key) +
                             ": packfile truncated: " + pack_name);
  }
  const ByteSpan enc =
      ByteSpan(cached_pack_bytes_).subspan(record.offset, record.enc_len);
  if (util::crc32c(enc) != record.enc_crc) {
    throw std::runtime_error("chunk " + chunk_key_name(key) +
                             ": encoded CRC mismatch in " + pack_name);
  }
  Bytes raw = codec::decode(record.codec, enc, key.len);
  if (raw.size() != key.len || util::crc32c(raw) != key.crc) {
    throw std::runtime_error("chunk " + chunk_key_name(key) +
                             ": content digest mismatch in " + pack_name);
  }
  return raw;
}

void ChunkStore::retain(const std::vector<ChunkKey>& keys) {
  if (keys.empty()) {
    return;
  }
  std::lock_guard lock(mu_);
  ensure_refs_locked();
  for (const ChunkKey& key : keys) {
    ++refs_[key];
  }
  refs_dirty_ = true;
}

void ChunkStore::release(const std::vector<ChunkKey>& keys) {
  if (keys.empty()) {
    return;
  }
  std::lock_guard lock(mu_);
  ensure_refs_locked();
  for (const ChunkKey& key : keys) {
    const auto it = refs_.find(key);
    if (it == refs_.end()) {
      continue;  // refcounts were rebuilt without this reference
    }
    if (--it->second == 0) {
      refs_.erase(it);
    }
  }
  refs_dirty_ = true;
}

std::uint64_t ChunkStore::ref_count(const ChunkKey& key) {
  std::lock_guard lock(mu_);
  ensure_refs_locked();
  const auto it = refs_.find(key);
  return it == refs_.end() ? 0 : it->second;
}

bool ChunkStore::live_locked(const ChunkKey& key) const {
  return refs_.contains(key) || pins_.contains(key);
}

std::uint64_t ChunkStore::sweep(bool compact) {
  std::lock_guard lock(mu_);
  ensure_open_locked();
  if (compact) {
    // The no-dead-chunk-survives guarantee spans both tiers, so the
    // startup (compacting) sweep must see every pack. Plain sweeps run
    // per install and stay hot-only: a cold pack's records can only go
    // dead when their referents are deleted, and the next startup
    // sweep reaps them.
    drain_deferred_locked();
  }
  if (packs_.empty()) {
    return 0;  // nothing content-addressed: stay zero-cost
  }
  ensure_refs_locked();
  if (!refs_complete_) {
    return 0;  // liveness unknowable: nothing may die
  }
  std::uint64_t reclaimed = 0;
  std::vector<std::string> names;
  names.reserve(packs_.size());
  for (const auto& [name, _] : packs_) {
    names.push_back(name);
  }
  for (const std::string& name : names) {
    Pack& pack = packs_.at(name);
    std::vector<Record> live;
    std::uint64_t dead_bytes = 0;
    std::size_t dead_records = 0;
    for (const Record& r : pack.records) {
      if (live_locked(r.key)) {
        live.push_back(r);
      } else {
        dead_bytes += r.enc_len;
        ++dead_records;
      }
    }
    if (dead_records == 0) {
      continue;
    }
    if (live.empty()) {
      // Every record is dead: the whole packfile goes.
      for (const Record& r : pack.records) {
        const auto it = index_.find(r.key);
        if (it != index_.end() && it->second.first == name) {
          index_.erase(it);
          --stats_.chunks;
        }
      }
      env_.remove_file(pack_path(name));
      stats_.stored_bytes -= std::min(stats_.stored_bytes, pack.file_bytes);
      reclaimed += pack.file_bytes;
      ++stats_.packs_deleted;
      stats_.chunks_swept += dead_records;
      stats_.bytes_swept += dead_bytes;
      --stats_.packfiles;
      if (cached_pack_name_ == name) {
        cached_pack_name_.clear();
        cached_pack_bytes_.clear();
      }
      packs_.erase(name);
      continue;
    }
    if (!compact) {
      continue;  // mixed pack: deferred to the next compacting sweep
    }
    // Mixed pack: rewrite it atomically with only the live records,
    // through the one packfile writer.
    const auto data = env_.read_file(pack_path(name));
    if (!data) {
      continue;  // vanished underneath us; the next open re-scans
    }
    std::vector<PackRecordView> views;
    views.reserve(live.size());
    bool ok = true;
    for (const Record& r : live) {
      if (r.offset + r.enc_len > data->size()) {
        ok = false;
        break;
      }
      views.push_back(PackRecordView{
          .key = r.key,
          .codec = r.codec,
          .enc_crc = r.enc_crc,
          .encoded = ByteSpan(*data).subspan(r.offset, r.enc_len)});
    }
    if (!ok) {
      continue;
    }
    const Bytes out =
        serialize_pack(parse_pack_file_name(name).value_or(0), views);
    // Record offsets within the rewritten file (same arithmetic as
    // publish()).
    std::vector<Record> rewritten;
    rewritten.reserve(live.size());
    std::uint64_t offset = kPackHeaderBytes;
    for (const Record& r : live) {
      offset += kRecordHeaderBytes;
      Record moved = r;
      moved.offset = offset;
      offset += r.enc_len;
      rewritten.push_back(moved);
    }
    env_.write_file_atomic(pack_path(name), out);
    for (const Record& r : pack.records) {
      if (!live_locked(r.key)) {
        const auto it = index_.find(r.key);
        if (it != index_.end() && it->second.first == name) {
          index_.erase(it);
          --stats_.chunks;
        }
      }
    }
    stats_.stored_bytes -= std::min<std::uint64_t>(
        stats_.stored_bytes, pack.file_bytes - out.size());
    reclaimed += pack.file_bytes - out.size();
    ++stats_.packs_compacted;
    stats_.chunks_swept += dead_records;
    stats_.bytes_swept += dead_bytes;
    pack.file_bytes = out.size();
    pack.records = std::move(rewritten);
    // Re-point index entries at the rewritten record positions.
    for (std::size_t i = 0; i < pack.records.size(); ++i) {
      const auto it = index_.find(pack.records[i].key);
      if (it != index_.end() && it->second.first == name) {
        it->second.second = i;
      }
    }
    if (cached_pack_name_ == name) {
      cached_pack_name_.clear();
      cached_pack_bytes_.clear();
    }
  }
  return reclaimed;
}

void ChunkStore::save_refs() {
  std::lock_guard lock(mu_);
  ensure_open_locked();
  if (!refs_dirty_) {
    return;
  }
  if (packs_.empty() && refs_.empty() &&
      !env_.exists(chunk_dir_ + "/" + kRefsName)) {
    refs_dirty_ = false;  // nothing content-addressed here: stay silent
    return;
  }
  std::ostringstream os;
  os << kRefsHeader << "\n";
  os << "covers";
  const auto ids = checkpoint_ids_on_disk();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    os << (i == 0 ? " " : ",") << ids[i];
  }
  os << "\n";
  for (const auto& [key, count] : refs_) {
    os << "ref " << chunk_key_name(key) << " " << count << "\n";
  }
  const std::string text = os.str();
  env_.write_file_atomic(
      chunk_dir_ + "/" + kRefsName,
      util::ByteSpan{reinterpret_cast<const std::uint8_t*>(text.data()),
                     text.size()});
  refs_dirty_ = false;
}

CasStats ChunkStore::stats() {
  std::lock_guard lock(mu_);
  ensure_open_locked();
  drain_deferred_locked();  // complete counts (inspection path)
  return stats_;
}

std::vector<ChunkKey> ChunkStore::pack_keys(const std::string& name) {
  std::lock_guard lock(mu_);
  ensure_open_locked();
  auto it = packs_.find(name);
  if (it == packs_.end() && !deferred_packs_.empty()) {
    drain_deferred_locked();
    it = packs_.find(name);
  }
  if (it == packs_.end()) {
    return {};
  }
  std::vector<ChunkKey> keys;
  keys.reserve(it->second.records.size());
  for (const Record& r : it->second.records) {
    keys.push_back(r.key);
  }
  return keys;
}

std::vector<std::string> ChunkStore::pack_names() {
  std::lock_guard lock(mu_);
  ensure_open_locked();
  drain_deferred_locked();  // complete listing (inspection path)
  std::vector<std::string> names;
  names.reserve(packs_.size());
  for (const auto& [name, _] : packs_) {
    names.push_back(name);
  }
  return names;
}

void ChunkStore::open() {
  std::lock_guard lock(mu_);
  ensure_refs_locked();  // both stages: index and refcounts
}

bool ChunkStore::has_packfiles() {
  std::lock_guard lock(mu_);
  ensure_open_locked();
  return !packs_.empty() || !deferred_packs_.empty();
}

void ChunkStore::pin_locked(const ChunkKey& key) { ++pins_[key]; }

void ChunkStore::unpin(const std::vector<ChunkKey>& keys) {
  std::lock_guard lock(mu_);
  for (const ChunkKey& key : keys) {
    const auto it = pins_.find(key);
    if (it != pins_.end() && --it->second == 0) {
      pins_.erase(it);
    }
  }
}

std::vector<std::uint64_t> ChunkStore::checkpoint_ids_on_disk() {
  std::vector<std::uint64_t> ids;
  for (const std::string& name : env_.list_dir(dir_)) {
    if (const auto id = parse_checkpoint_file_name(name)) {
      ids.push_back(*id);
    }
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

void ChunkStore::ensure_open_locked() {
  if (opened_) {
    return;
  }
  opened_ = true;
  if (tiered_ != nullptr) {
    // Staged scan: index the hot packs now (cheap, and sufficient for
    // every hot-resident checkpoint); record cold packs for the lazy
    // scan so opening the store never touches the capacity tier.
    for (const std::string& name : tiered_->hot().list_dir(chunk_dir_)) {
      if (parse_pack_file_name(name)) {
        scan_pack_locked(name, tiered_->hot());
      }
    }
    for (const std::string& name : tiered_->cold().list_dir(chunk_dir_)) {
      if (parse_pack_file_name(name) && !packs_.contains(name)) {
        deferred_packs_.push_back(name);
      }
    }
    std::sort(deferred_packs_.begin(), deferred_packs_.end());
    return;
  }
  for (const std::string& name : env_.list_dir(chunk_dir_)) {
    if (parse_pack_file_name(name)) {
      scan_pack_locked(name, env_);
    }
  }
}

void ChunkStore::ensure_refs_locked() {
  ensure_open_locked();
  if (refs_loaded_) {
    return;
  }
  refs_loaded_ = true;
  load_or_rebuild_refs_locked();
}

ChunkStore::ScanOutcome ChunkStore::scan_pack_locked(const std::string& name,
                                                     io::Env& through) {
  auto data = through.read_file(pack_path(name));
  if (!data) {
    return ScanOutcome::kAbsent;
  }
  const auto parsed = parse_pack(ByteSpan{*data});
  if (!parsed) {
    // Leave damaged packfiles on disk: their chunks are unusable, but
    // deleting bytes we cannot enumerate could destroy forensic value.
    ++stats_.damaged_packs;
    return ScanOutcome::kDamaged;
  }
  Pack pack;
  pack.records.reserve(parsed->size());
  for (const ParsedRecord& r : *parsed) {
    pack.records.push_back(Record{.key = r.key,
                                  .codec = r.codec,
                                  .enc_crc = r.enc_crc,
                                  .offset = r.offset,
                                  .enc_len = r.enc_len});
  }
  pack.file_bytes = data->size();
  stats_.stored_bytes += pack.file_bytes;
  ++stats_.packfiles;
  for (std::size_t i = 0; i < pack.records.size(); ++i) {
    if (index_.emplace(pack.records[i].key, std::make_pair(name, i)).second) {
      ++stats_.chunks;
    }
  }
  packs_[name] = std::move(pack);
  // The whole file was just transferred to parse it — keep it as the
  // read cache so a get() that triggered this scan (lazy cold-pack
  // indexing) serves its chunks without a second transfer.
  cached_pack_name_ = name;
  cached_pack_bytes_ = std::move(*data);
  return ScanOutcome::kScanned;
}

void ChunkStore::scan_deferred_until_locked(const ChunkKey& key) {
  while (!deferred_packs_.empty() && !index_.contains(key)) {
    // Newest first: a missing chunk most likely lives in the pack of a
    // recently demoted checkpoint. Peek reads go through the cold tier
    // so indexing never promotes a pack the caller may not even need.
    const std::string name = deferred_packs_.back();
    deferred_packs_.pop_back();
    if (packs_.contains(name)) {
      continue;  // re-published under the same epoch meanwhile
    }
    io::Env& through = tiered_ ? tiered_->cold() : env_;
    if (scan_pack_locked(name, through) == ScanOutcome::kAbsent) {
      // Promoted since the open listing: retry through the union view.
      // Only genuine absence falls back — a damaged pack must not be
      // re-read (or promoted hot) and double-counted.
      scan_pack_locked(name, env_);
    }
    if (index_.contains(key)) {
      // This pack is the one the caller needs, and scan_pack_locked
      // just cached its bytes — so the cold tier was read exactly once.
      // Complete the read-through promotion here (from the cached
      // bytes, not another cold transfer) when the env wants it.
      if (tiered_ != nullptr && tiered_->promote_on_read() &&
          cached_pack_name_ == name) {
        try {
          tiered_->hot().write_file_atomic(pack_path(name),
                                           cached_pack_bytes_);
          tiered_->cold().remove_file(pack_path(name));
        } catch (const std::exception&) {
          // Best effort, like TieredEnv's own promotion: the pack
          // simply stays cold.
        }
      }
    }
  }
}

void ChunkStore::drain_deferred_locked() {
  while (!deferred_packs_.empty()) {
    const std::string name = deferred_packs_.back();
    deferred_packs_.pop_back();
    if (packs_.contains(name)) {
      continue;
    }
    io::Env& through = tiered_ ? tiered_->cold() : env_;
    if (scan_pack_locked(name, through) == ScanOutcome::kAbsent) {
      scan_pack_locked(name, env_);
    }
  }
}

std::vector<ChunkKey> list_pack_keys(ByteSpan pack) {
  const auto parsed = parse_pack(pack);
  if (!parsed) {
    throw std::runtime_error("damaged packfile");
  }
  std::vector<ChunkKey> keys;
  keys.reserve(parsed->size());
  for (const ParsedRecord& r : *parsed) {
    keys.push_back(r.key);
  }
  return keys;
}

void ChunkStore::load_or_rebuild_refs_locked() {
  refs_.clear();
  refs_complete_ = true;
  const auto ids = checkpoint_ids_on_disk();
  if (ids.empty()) {
    return;  // no checkpoint files: trivially zero references
  }
  // Try the journal: valid only when it covers exactly the checkpoint
  // files present right now (a crash between a file mutation and the
  // journal rewrite leaves a mismatch, which sends us to the rebuild).
  if (const auto data = env_.read_file(chunk_dir_ + "/" + kRefsName)) {
    const std::string text(data->begin(), data->end());
    std::vector<std::uint64_t> covers;
    std::map<ChunkKey, std::uint64_t> counts;
    bool ok = false;
    bool damaged = false;
    for (const std::string& line : util::split(text, '\n')) {
      const std::string trimmed = util::trim(line);
      if (trimmed.empty() || trimmed == kRefsHeader) {
        continue;
      }
      const auto fields = util::split(trimmed, ' ');
      if (fields[0] == "covers") {
        ok = true;
        if (fields.size() > 1) {
          for (const std::string& id_str : util::split(fields[1], ',')) {
            try {
              covers.push_back(std::stoull(id_str));
            } catch (const std::exception&) {
              damaged = true;
            }
          }
        }
      } else if (fields[0] == "ref" && fields.size() == 3) {
        const auto key = parse_chunk_key_name(fields[1]);
        if (!key) {
          damaged = true;
          continue;
        }
        try {
          counts[*key] += std::stoull(fields[2]);
        } catch (const std::exception&) {
          damaged = true;
        }
      } else {
        damaged = true;
      }
    }
    std::sort(covers.begin(), covers.end());
    if (ok && !damaged && covers == ids) {
      refs_ = std::move(counts);
      return;
    }
  }
  // Rebuild from the ground truth: every checkpoint file's key table.
  ++stats_.refs_rebuilds;
  refs_dirty_ = true;
  for (const std::uint64_t id : ids) {
    const auto data = env_.read_file(dir_ + "/" + checkpoint_file_name(id));
    if (!data) {
      refs_complete_ = false;
      continue;
    }
    try {
      for (const ChunkKey& key : list_chunk_refs(*data)) {
        ++refs_[key];
      }
    } catch (const std::exception&) {
      // A file whose references cannot be read makes liveness
      // unknowable: keep counting the others (for observability) but
      // forbid sweeps until the directory is healthy again.
      refs_complete_ = false;
    }
  }
}

}  // namespace qnn::ckpt

#include "ckpt/cas.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "ckpt/manifest.hpp"
#include "tier/tiered_env.hpp"
#include "util/crc.hpp"
#include "util/strings.hpp"

namespace qnn::ckpt {

namespace {
constexpr char kPackMagic[4] = {'Q', 'P', 'A', 'K'};
constexpr char kPackFooterMagic[4] = {'K', 'A', 'P', 'Q'};
constexpr std::uint16_t kPackVersion = 2;
constexpr std::uint16_t kPackVersionV1 = 1;
constexpr std::size_t kPackHeaderBytes = 4 + 2 + 2 + 8 + 4;    // v1 layout
constexpr std::size_t kPackHeaderV2Bytes = 4 + 2 + 2 + 8;      // no count
constexpr std::size_t kPackFooterBytes = 8 + 4;                // v1 layout
// n_records, table_offset, crc32c(table), crc64, magic
constexpr std::size_t kPackFooterV2Bytes = 4 + 8 + 4 + 8 + 4;
// digest, raw_crc, raw_len, codec, enc_len, enc_crc
constexpr std::size_t kRecordHeaderBytes = 1 + 4 + 8 + 1 + 8 + 4;
// one key-table row: record header fields + u64 offset
constexpr std::size_t kKeyRowBytes = kRecordHeaderBytes + 8;
constexpr const char* kRefsName = "REFS";
constexpr const char* kRefsHeader = "qnnckpt-refs v1";

bool check_magic(util::ByteSpan in, std::size_t offset,
                 const char (&magic)[4]) {
  return offset + 4 <= in.size() &&
         std::memcmp(in.data() + offset, magic, 4) == 0;
}

/// One record as parsed back out of a packfile (either version).
struct ParsedRecord {
  ChunkKey key;
  codec::CodecId codec = codec::CodecId::kRaw;
  std::uint32_t enc_crc = 0;
  std::uint64_t offset = 0;  ///< of the encoded bytes within the pack
  std::uint64_t enc_len = 0;
};

/// Parses the fields shared by a record header and a key-table row.
ParsedRecord parse_record_fields(util::ByteSpan span, std::size_t& off,
                                 bool& digest_ok) {
  ParsedRecord r;
  const auto digest = util::get_le<std::uint8_t>(span, off);
  r.key.crc = util::get_le<std::uint32_t>(span, off);
  r.key.len = util::get_le<std::uint64_t>(span, off);
  r.codec = static_cast<codec::CodecId>(util::get_le<std::uint8_t>(span, off));
  r.enc_len = util::get_le<std::uint64_t>(span, off);
  r.enc_crc = util::get_le<std::uint32_t>(span, off);
  digest_ok = digest == kChunkDigestCrc32c;
  return r;
}

/// Parses a v2 key table (rows only; framing already validated).
std::optional<std::vector<ParsedRecord>> parse_key_table(
    util::ByteSpan table, std::uint64_t n_records, std::uint64_t body_end) {
  std::vector<ParsedRecord> records;
  records.reserve(n_records);
  std::size_t off = 0;
  for (std::uint64_t i = 0; i < n_records; ++i) {
    bool digest_ok = false;
    ParsedRecord r = parse_record_fields(table, off, digest_ok);
    r.offset = util::get_le<std::uint64_t>(table, off);
    if (!digest_ok || r.offset < kPackHeaderV2Bytes ||
        r.offset > body_end || r.enc_len > body_end - r.offset) {
      return std::nullopt;
    }
    records.push_back(r);
  }
  return records;
}

/// THE full packfile reader: validates framing + footer CRC64 and walks
/// the records, for both pack versions. nullopt on any damage.
std::optional<std::vector<ParsedRecord>> parse_pack(util::ByteSpan span) {
  if (!check_magic(span, 0, kPackMagic) ||
      !check_magic(span, span.size() - 4, kPackFooterMagic)) {
    return std::nullopt;
  }
  std::size_t off = 4;
  std::uint16_t version = 0;
  try {
    version = util::get_le<std::uint16_t>(span, off);
    (void)util::get_le<std::uint16_t>(span, off);  // reserved
    (void)util::get_le<std::uint64_t>(span, off);  // epoch
  } catch (const std::out_of_range&) {
    return std::nullopt;
  }

  if (version == kPackVersionV1) {
    // Legacy layout: u32 n_records after the header, records walked
    // serially, 12-byte footer with whole-file CRC64.
    if (span.size() < kPackHeaderBytes + kPackFooterBytes) {
      return std::nullopt;
    }
    {
      std::size_t foff = span.size() - kPackFooterBytes;
      const auto stored = util::get_le<std::uint64_t>(span, foff);
      if (stored != util::crc64(span.first(span.size() - kPackFooterBytes))) {
        return std::nullopt;
      }
    }
    std::vector<ParsedRecord> records;
    try {
      const auto n_records = util::get_le<std::uint32_t>(span, off);
      for (std::uint32_t i = 0; i < n_records; ++i) {
        bool digest_ok = false;
        ParsedRecord r = parse_record_fields(span, off, digest_ok);
        r.offset = off;
        if (!digest_ok ||
            r.enc_len > span.size() - kPackFooterBytes - off) {
          return std::nullopt;
        }
        off += r.enc_len;
        records.push_back(r);
      }
      if (off != span.size() - kPackFooterBytes) {
        return std::nullopt;
      }
    } catch (const std::out_of_range&) {
      return std::nullopt;
    }
    return records;
  }

  if (version != kPackVersion ||
      span.size() < kPackHeaderV2Bytes + kPackFooterV2Bytes) {
    return std::nullopt;
  }
  try {
    std::size_t foff = span.size() - kPackFooterV2Bytes;
    const auto n_records = util::get_le<std::uint32_t>(span, foff);
    const auto table_offset = util::get_le<std::uint64_t>(span, foff);
    const auto table_crc = util::get_le<std::uint32_t>(span, foff);
    const auto stored_crc64 = util::get_le<std::uint64_t>(span, foff);
    const std::uint64_t table_size =
        static_cast<std::uint64_t>(n_records) * kKeyRowBytes;
    if (table_offset < kPackHeaderV2Bytes ||
        table_offset + table_size != span.size() - kPackFooterV2Bytes) {
      return std::nullopt;
    }
    // CRC64 covers everything up to (and excluding) the crc64 field.
    if (stored_crc64 != util::crc64(span.first(span.size() - 12))) {
      return std::nullopt;
    }
    const util::ByteSpan table = span.subspan(table_offset, table_size);
    if (util::crc32c(table) != table_crc) {
      return std::nullopt;
    }
    return parse_key_table(table, n_records, table_offset);
  } catch (const std::out_of_range&) {
    return std::nullopt;
  }
}

/// Ranged v2 index read: footer + key table preads only. Returns the
/// records and sets `file_bytes`. nullopt on damage; `legacy_v1` is set
/// when the pack is a v1 file that needs the whole-file fallback.
std::optional<std::vector<ParsedRecord>> read_pack_index_ranged(
    io::RandomAccessFile& file, std::uint64_t& file_bytes, bool& legacy_v1) {
  legacy_v1 = false;
  file_bytes = file.size();
  if (file_bytes < kPackHeaderV2Bytes + kPackFooterV2Bytes) {
    return std::nullopt;
  }
  const Bytes head = file.pread(0, kPackHeaderV2Bytes);
  if (head.size() != kPackHeaderV2Bytes || !check_magic(head, 0, kPackMagic)) {
    return std::nullopt;
  }
  {
    std::size_t off = 4;
    const auto version = util::get_le<std::uint16_t>(head, off);
    if (version == kPackVersionV1) {
      legacy_v1 = true;
      return std::nullopt;
    }
    if (version != kPackVersion) {
      return std::nullopt;
    }
  }
  const Bytes footer =
      file.pread(file_bytes - kPackFooterV2Bytes, kPackFooterV2Bytes);
  if (footer.size() != kPackFooterV2Bytes ||
      !check_magic(footer, footer.size() - 4, kPackFooterMagic)) {
    return std::nullopt;
  }
  try {
    std::size_t off = 0;
    const auto n_records = util::get_le<std::uint32_t>(footer, off);
    const auto table_offset = util::get_le<std::uint64_t>(footer, off);
    const auto table_crc = util::get_le<std::uint32_t>(footer, off);
    const std::uint64_t table_size =
        static_cast<std::uint64_t>(n_records) * kKeyRowBytes;
    if (table_offset < kPackHeaderV2Bytes ||
        table_offset + table_size != file_bytes - kPackFooterV2Bytes) {
      return std::nullopt;
    }
    const Bytes table = file.pread(table_offset, table_size);
    if (table.size() != table_size || util::crc32c(table) != table_crc) {
      return std::nullopt;
    }
    return parse_key_table(table, n_records, table_offset);
  } catch (const std::out_of_range&) {
    return std::nullopt;
  }
}

}  // namespace

namespace detail {

/// THE packfile writer: batch commits and sweep compaction both stream
/// through here, so the on-disk framing exists in exactly one place.
/// Records append as produced (atomic handle: invisible until finish);
/// the key table and footer land at finish(). Destroying an unfinished
/// stream aborts it — nothing ever appears on disk.
class PackStream {
 public:
  PackStream(io::Env& env, const std::string& path, std::uint64_t epoch)
      : file_(env.new_writable(path, io::WriteMode::kAtomic)) {
    Bytes head;
    head.insert(head.end(), kPackMagic, kPackMagic + 4);
    util::put_le<std::uint16_t>(head, kPackVersion);
    util::put_le<std::uint16_t>(head, 0);  // reserved
    util::put_le<std::uint64_t>(head, epoch);
    put(head);
  }

  /// Appends one record (header + encoded bytes); returns the absolute
  /// offset of the encoded bytes within the pack.
  std::uint64_t append_record(const ChunkKey& key, codec::CodecId codec,
                              std::uint32_t enc_crc, ByteSpan encoded) {
    Bytes header;
    put_record_fields(header, key, codec, encoded.size(), enc_crc);
    put(header);
    const std::uint64_t offset = off_;
    put(encoded);
    // Mirror the row into the (small) tail table as we go.
    put_record_fields(table_, key, codec, encoded.size(), enc_crc);
    util::put_le<std::uint64_t>(table_, offset);
    ++n_records_;
    return offset;
  }

  /// Key table + footer + atomic install. Returns total file bytes.
  std::uint64_t finish() {
    const std::uint64_t table_offset = off_;
    put(table_);
    Bytes tail;
    util::put_le<std::uint32_t>(tail, n_records_);
    util::put_le<std::uint64_t>(tail, table_offset);
    util::put_le<std::uint32_t>(tail, util::crc32c(table_));
    put(tail);
    // The CRC64 field itself (and the closing magic) are not covered.
    Bytes closing;
    util::put_le<std::uint64_t>(closing, crc_.value());
    closing.insert(closing.end(), kPackFooterMagic, kPackFooterMagic + 4);
    file_->append(closing);
    off_ += closing.size();
    file_->close();
    return off_;
  }

 private:
  static void put_record_fields(Bytes& out, const ChunkKey& key,
                                codec::CodecId codec, std::uint64_t enc_len,
                                std::uint32_t enc_crc) {
    util::put_le<std::uint8_t>(out, kChunkDigestCrc32c);
    util::put_le<std::uint32_t>(out, key.crc);
    util::put_le<std::uint64_t>(out, key.len);
    util::put_le<std::uint8_t>(out, static_cast<std::uint8_t>(codec));
    util::put_le<std::uint64_t>(out, enc_len);
    util::put_le<std::uint32_t>(out, enc_crc);
  }

  void put(ByteSpan data) {
    crc_.update(data);
    file_->append(data);
    off_ += data.size();
  }

  std::unique_ptr<io::WritableFile> file_;
  util::Crc64 crc_;
  Bytes table_;
  std::uint32_t n_records_ = 0;
  std::uint64_t off_ = 0;
};

}  // namespace detail

std::string pack_file_name(std::uint64_t epoch) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "pack-%010llu.qpak",
                static_cast<unsigned long long>(epoch));
  return buf;
}

std::optional<std::uint64_t> parse_pack_file_name(const std::string& name) {
  constexpr const char* kPrefix = "pack-";
  constexpr const char* kSuffix = ".qpak";
  if (!util::starts_with(name, kPrefix) || name.size() != 20 ||
      name.compare(15, 5, kSuffix) != 0) {
    return std::nullopt;
  }
  std::uint64_t id = 0;
  for (std::size_t i = 5; i < 15; ++i) {
    if (name[i] < '0' || name[i] > '9') {
      return std::nullopt;
    }
    id = id * 10 + static_cast<std::uint64_t>(name[i] - '0');
  }
  return id;
}

// ---------------------------------------------------------------------------
// Batch (ChunkSink)
// ---------------------------------------------------------------------------

ChunkStore::Batch::Batch(ChunkStore& store, std::uint64_t epoch)
    : store_(store), epoch_(epoch) {}

ChunkStore::Batch::~Batch() { store_.unpin(refs_); }

bool ChunkStore::Batch::contains(const ChunkKey& key) {
  refs_.push_back(key);
  // The digest in `key` was computed by the encode pipeline before this
  // call — the probe itself is the only synchronised step, and it takes
  // exactly one shard lock (never mu_ once the store is open).
  store_.ensure_open();
  // Pin immediately, atomically with the probe: from this moment the
  // in-flight file counts on the chunk, and no sweep may reap it until
  // the batch dies.
  const bool resident =
      store_.index_.pin_and_probe(key) || staged_index_.contains(key);
  if (resident) {
    ++dedup_hits_;
    dedup_bytes_ += key.len;
    store_.dedup_hits_.fetch_add(1, std::memory_order_relaxed);
    store_.dedup_bytes_.fetch_add(key.len, std::memory_order_relaxed);
  }
  return resident;
}

void ChunkStore::Batch::put(const ChunkKey& key, codec::CodecId codec,
                            ByteSpan encoded) {
  if (staged_index_.contains(key)) {
    return;  // duplicate chunk within one file: store one record
  }
  if (!stream_) {
    // First fresh chunk: open the packfile stream. The handle is
    // atomic, so nothing is visible until commit() — and an abandoned
    // batch leaves no trace.
    stream_ = std::make_unique<detail::PackStream>(
        store_.env_, store_.chunk_dir_ + "/" + pack_name(), epoch_);
  }
  const std::uint32_t enc_crc = util::crc32c(encoded);
  const std::uint64_t offset =
      stream_->append_record(key, codec, enc_crc, encoded);
  staged_index_.emplace(key, records_.size());
  staged_raw_bytes_ += key.len;
  records_.push_back(StagedRecord{.key = key,
                                  .codec = codec,
                                  .enc_crc = enc_crc,
                                  .offset = offset,
                                  .enc_len = encoded.size()});
}

std::string ChunkStore::Batch::pack_name() const {
  return pack_file_name(epoch_);
}

void ChunkStore::Batch::commit() {
  if (!stream_ || committed_) {
    return;
  }
  pack_bytes_ = stream_->finish();
  stream_.reset();
  committed_ = true;
}

// ---------------------------------------------------------------------------
// ChunkStore
// ---------------------------------------------------------------------------

ChunkStore::ChunkStore(io::Env& env, std::string dir)
    : env_(env),
      tiered_(dynamic_cast<tier::TieredEnv*>(&env)),
      dir_(std::move(dir)),
      chunk_dir_(dir_ + "/chunks") {}

std::string ChunkStore::pack_path(const std::string& name) const {
  return chunk_dir_ + "/" + name;
}

std::unique_ptr<ChunkStore::Batch> ChunkStore::begin_batch(
    std::uint64_t epoch) {
  return std::unique_ptr<Batch>(new Batch(*this, epoch));
}

void ChunkStore::publish(const Batch& batch) {
  if (batch.records_.empty()) {
    return;
  }
  std::lock_guard lock(mu_);
  ensure_open_locked();
  const std::string name = batch.pack_name();
  const std::int32_t pack_id = intern_pack_locked(name);
  // The tiered write scrubbed any stale cold copy of this epoch, so a
  // matching deferred entry is dead — drop it before it can shadow the
  // fresh records with a lazy scan of vanished bytes.
  std::erase(deferred_packs_, name);
  // Id reallocation after a crash can reuse an epoch: the new packfile
  // atomically replaced the stranded one on disk, so drop every stale
  // index entry before publishing the replacement records.
  if (const auto old = packs_.find(name); old != packs_.end()) {
    for (const Record& r : old->second.records) {
      if (index_.erase_location_if(r.key, pack_id)) {
        --stats_.chunks;
      }
    }
    stats_.stored_bytes -=
        std::min(stats_.stored_bytes, old->second.file_bytes);
    --stats_.packfiles;
    packs_.erase(old);
  }
  Pack pack;
  pack.records.reserve(batch.records_.size());
  for (const Batch::StagedRecord& r : batch.records_) {
    pack.records.push_back(Record{.key = r.key,
                                  .codec = r.codec,
                                  .enc_crc = r.enc_crc,
                                  .offset = r.offset,
                                  .enc_len = r.enc_len});
    ++stats_.chunks_written;
  }
  pack.file_bytes = batch.pack_bytes_;
  stats_.stored_bytes += pack.file_bytes;
  ++stats_.packfiles;
  for (std::size_t i = 0; i < pack.records.size(); ++i) {
    if (index_.set_location_if_absent(pack.records[i].key, pack_id,
                                      static_cast<std::uint32_t>(i))) {
      ++stats_.chunks;
    }
  }
  invalidate_pack_handle_locked(name);  // re-published epoch
  packs_[name] = std::move(pack);
}

bool ChunkStore::contains(const ChunkKey& key) {
  ensure_open();
  return index_.resident(key);
}

io::RandomAccessFile* ChunkStore::ranged_pack_locked(const std::string& name) {
  ++handle_tick_;
  for (CachedPackHandle& slot : pack_handles_) {
    if (slot.file != nullptr && slot.name == name) {
      slot.last_used = handle_tick_;
      return slot.file.get();
    }
  }
  auto file = env_.open_ranged(pack_path(name));
  if (!file) {
    return nullptr;
  }
  return cache_pack_handle_locked(name, std::move(file));
}

io::RandomAccessFile* ChunkStore::cache_pack_handle_locked(
    const std::string& name, std::unique_ptr<io::RandomAccessFile> file) {
  ++handle_tick_;
  // Reuse the slot already holding this pack (re-scan), else the first
  // empty slot, else evict the least recently used handle.
  CachedPackHandle* victim = nullptr;
  for (CachedPackHandle& slot : pack_handles_) {
    if (slot.file != nullptr && slot.name == name) {
      victim = &slot;
      break;
    }
    if (slot.file == nullptr) {
      if (victim == nullptr || victim->file != nullptr) {
        victim = &slot;
      }
    } else if (victim == nullptr || (victim->file != nullptr &&
                                     slot.last_used < victim->last_used)) {
      victim = &slot;
    }
  }
  if (victim->file != nullptr && victim->name != name) {
    ++stats_.pack_handle_evictions;
  }
  victim->name = name;
  victim->file = std::move(file);
  victim->last_used = handle_tick_;
  return victim->file.get();
}

void ChunkStore::invalidate_pack_handle_locked(const std::string& name) {
  for (CachedPackHandle& slot : pack_handles_) {
    if (slot.file != nullptr && slot.name == name) {
      slot.file.reset();
      slot.name.clear();
      slot.last_used = 0;
    }
  }
}

Bytes ChunkStore::get(const ChunkKey& key) {
  std::lock_guard lock(mu_);
  ensure_open_locked();
  auto loc = index_.location(key);
  if (!loc && !deferred_packs_.empty()) {
    // The chunk may live in a cold pack the staged open deferred:
    // index cold packs (ranged peek of footer + key table, no bulk
    // transfer) until it shows up.
    scan_deferred_until_locked(key);
    loc = index_.location(key);
  }
  if (!loc) {
    throw std::runtime_error("chunk " + chunk_key_name(key) +
                             ": not in store");
  }
  // Locations are stable while mu_ is held (publish/sweep/compaction
  // all run under it), so the id -> name -> record resolution cannot
  // race the lookup above.
  const std::string& pack_name =
      pack_ids_.at(static_cast<std::size_t>(loc->pack));
  const Record& record = packs_.at(pack_name).records[loc->record];
  io::RandomAccessFile* pack = ranged_pack_locked(pack_name);
  if (pack == nullptr) {
    throw std::runtime_error("chunk " + chunk_key_name(key) +
                             ": packfile missing: " + pack_name);
  }
  // Ranged resolution: exactly this record's encoded bytes move, not
  // the packfile. Integrity comes from the record CRC32C + the content
  // key, so skipping the whole-file CRC64 gives up nothing.
  const Bytes enc = pack->pread(record.offset, record.enc_len);
  if (enc.size() != record.enc_len) {
    throw std::runtime_error("chunk " + chunk_key_name(key) +
                             ": packfile truncated: " + pack_name);
  }
  if (util::crc32c(enc) != record.enc_crc) {
    throw std::runtime_error("chunk " + chunk_key_name(key) +
                             ": encoded CRC mismatch in " + pack_name);
  }
  Bytes raw = codec::decode(record.codec, enc, key.len);
  if (raw.size() != key.len || util::crc32c(raw) != key.crc) {
    throw std::runtime_error("chunk " + chunk_key_name(key) +
                             ": content digest mismatch in " + pack_name);
  }
  return raw;
}

void ChunkStore::retain(const std::vector<ChunkKey>& keys) {
  if (keys.empty()) {
    return;
  }
  std::lock_guard lock(mu_);
  ensure_refs_locked();
  for (const ChunkKey& key : keys) {
    index_.add_ref(key);
  }
  refs_dirty_ = true;
}

void ChunkStore::release(const std::vector<ChunkKey>& keys) {
  if (keys.empty()) {
    return;
  }
  std::lock_guard lock(mu_);
  ensure_refs_locked();
  for (const ChunkKey& key : keys) {
    index_.release_ref(key);
  }
  refs_dirty_ = true;
}

std::uint64_t ChunkStore::ref_count(const ChunkKey& key) {
  std::lock_guard lock(mu_);
  ensure_refs_locked();
  return index_.ref_count(key);
}

std::uint64_t ChunkStore::sweep(bool compact) {
  std::lock_guard lock(mu_);
  ensure_open_locked();
  if (compact) {
    // The no-dead-chunk-survives guarantee spans both tiers, so the
    // startup (compacting) sweep must see every pack. Plain sweeps run
    // per install and stay hot-only: a cold pack's records can only go
    // dead when their referents are deleted, and the next startup
    // sweep reaps them.
    drain_deferred_locked();
  }
  if (packs_.empty()) {
    return 0;  // nothing content-addressed: stay zero-cost
  }
  ensure_refs_locked();
  if (!refs_complete_) {
    return 0;  // liveness unknowable: nothing may die
  }
  std::uint64_t reclaimed = 0;
  std::vector<std::string> names;
  names.reserve(packs_.size());
  for (const auto& [name, _] : packs_) {
    names.push_back(name);
  }
  for (const std::string& name : names) {
    Pack& pack = packs_.at(name);
    const std::int32_t pack_id = intern_pack_locked(name);
    // Classify every record under the whole-index lock: liveness check
    // and (for a fully-dead pack) location erase happen under ONE hold,
    // so a concurrent pin_and_probe either lands before (record live,
    // pack survives) or after (location gone, probe misses and the
    // chunk is re-stored) — never between check and erase, where it
    // would claim residency in a file about to be unlinked.
    std::vector<Record> live;
    std::vector<bool> was_live(pack.records.size(), false);
    std::uint64_t dead_bytes = 0;
    std::size_t dead_records = 0;
    bool whole_pack_dead = false;
    {
      ShardedChunkIndex::AllShards all(index_);
      for (std::size_t i = 0; i < pack.records.size(); ++i) {
        const Record& r = pack.records[i];
        if (all.is_live(r.key)) {
          was_live[i] = true;
          live.push_back(r);
        } else {
          dead_bytes += r.enc_len;
          ++dead_records;
        }
      }
      if (dead_records == 0) {
        continue;
      }
      if (live.empty()) {
        // Every record is dead: erase the locations BEFORE the file
        // vanishes (still under the all-shards hold).
        for (const Record& r : pack.records) {
          if (all.erase_location_if(r.key, pack_id)) {
            --stats_.chunks;
          }
        }
        whole_pack_dead = true;
      }
    }
    if (whole_pack_dead) {
      env_.remove_file(pack_path(name));
      stats_.stored_bytes -= std::min(stats_.stored_bytes, pack.file_bytes);
      reclaimed += pack.file_bytes;
      ++stats_.packs_deleted;
      stats_.chunks_swept += dead_records;
      stats_.bytes_swept += dead_bytes;
      --stats_.packfiles;
      invalidate_pack_handle_locked(name);
      packs_.erase(name);
      continue;
    }
    if (!compact) {
      continue;  // mixed pack: deferred to the next compacting sweep
    }
    // Mixed pack: rewrite it atomically with only the live records —
    // streamed record by record through the one packfile writer, each
    // record pread from the old pack (never the whole file at once).
    // Shard locks are NOT held during the streaming, so probes keep
    // running; the install below re-validates against them.
    io::RandomAccessFile* old_pack = ranged_pack_locked(name);
    if (old_pack == nullptr) {
      continue;  // vanished underneath us; the next open re-scans
    }
    std::vector<Record> rewritten;
    rewritten.reserve(live.size());
    bool ok = true;
    std::uint64_t new_bytes = 0;
    try {
      detail::PackStream out(env_, pack_path(name),
                             parse_pack_file_name(name).value_or(0));
      for (const Record& r : live) {
        const Bytes enc = old_pack->pread(r.offset, r.enc_len);
        if (enc.size() != r.enc_len || util::crc32c(enc) != r.enc_crc) {
          ok = false;  // damaged record: abandon the rewrite
          break;
        }
        Record moved = r;
        moved.offset = out.append_record(r.key, r.codec, r.enc_crc, enc);
        rewritten.push_back(moved);
      }
      if (ok) {
        // Install fence: while the rewrite streamed, a dedup probe may
        // have pinned a record we judged dead — installing a pack
        // without it would strand that probe's reference. Re-check the
        // dead set under the all-shards lock and hold it across
        // finish() + index updates; if anything came back to life,
        // abandon the rewrite (the unfinished stream installs nothing).
        ShardedChunkIndex::AllShards all(index_);
        for (std::size_t i = 0; i < pack.records.size() && ok; ++i) {
          if (!was_live[i] && all.is_live(pack.records[i].key)) {
            ok = false;  // resurrected mid-rewrite: try again next sweep
          }
        }
        if (ok) {
          new_bytes = out.finish();  // atomic replace
          for (std::size_t i = 0; i < pack.records.size(); ++i) {
            if (!was_live[i] &&
                all.erase_location_if(pack.records[i].key, pack_id)) {
              --stats_.chunks;
            }
          }
          stats_.stored_bytes -= std::min<std::uint64_t>(
              stats_.stored_bytes, pack.file_bytes - new_bytes);
          reclaimed += pack.file_bytes - new_bytes;
          ++stats_.packs_compacted;
          stats_.chunks_swept += dead_records;
          stats_.bytes_swept += dead_bytes;
          pack.file_bytes = new_bytes;
          pack.records = std::move(rewritten);
          // Re-point index entries at the rewritten record positions.
          for (std::size_t i = 0; i < pack.records.size(); ++i) {
            all.repoint_record(pack.records[i].key, pack_id,
                               static_cast<std::uint32_t>(i));
          }
        }
      }
    } catch (const std::exception&) {
      ok = false;
    }
    if (ok) {
      invalidate_pack_handle_locked(name);
    }
  }
  return reclaimed;
}

void ChunkStore::save_refs() {
  std::lock_guard lock(mu_);
  ensure_open_locked();
  if (!refs_dirty_) {
    return;
  }
  if (packs_.empty() && index_.snapshot_refs().empty() &&
      !env_.exists(chunk_dir_ + "/" + kRefsName)) {
    refs_dirty_ = false;  // nothing content-addressed here: stay silent
    return;
  }
  std::ostringstream os;
  os << kRefsHeader << "\n";
  os << "covers";
  const auto ids = checkpoint_ids_on_disk();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    os << (i == 0 ? " " : ",") << ids[i];
  }
  os << "\n";
  for (const auto& [key, count] : index_.snapshot_refs()) {
    os << "ref " << chunk_key_name(key) << " " << count << "\n";
  }
  const std::string text = os.str();
  env_.write_file_atomic(
      chunk_dir_ + "/" + kRefsName,
      util::ByteSpan{reinterpret_cast<const std::uint8_t*>(text.data()),
                     text.size()});
  refs_dirty_ = false;
}

CasStats ChunkStore::stats() {
  std::lock_guard lock(mu_);
  ensure_open_locked();
  drain_deferred_locked();  // complete counts (inspection path)
  CasStats out = stats_;
  out.dedup_hits = dedup_hits_.load(std::memory_order_relaxed);
  out.dedup_bytes = dedup_bytes_.load(std::memory_order_relaxed);
  return out;
}

std::vector<ChunkKey> ChunkStore::pack_keys(const std::string& name) {
  std::lock_guard lock(mu_);
  ensure_open_locked();
  auto it = packs_.find(name);
  if (it == packs_.end() && !deferred_packs_.empty()) {
    drain_deferred_locked();
    it = packs_.find(name);
  }
  if (it == packs_.end()) {
    return {};
  }
  std::vector<ChunkKey> keys;
  keys.reserve(it->second.records.size());
  for (const Record& r : it->second.records) {
    keys.push_back(r.key);
  }
  return keys;
}

std::vector<std::string> ChunkStore::pack_names() {
  std::lock_guard lock(mu_);
  ensure_open_locked();
  drain_deferred_locked();  // complete listing (inspection path)
  std::vector<std::string> names;
  names.reserve(packs_.size());
  for (const auto& [name, _] : packs_) {
    names.push_back(name);
  }
  return names;
}

void ChunkStore::open() {
  std::lock_guard lock(mu_);
  ensure_refs_locked();  // both stages: index and refcounts
}

bool ChunkStore::has_packfiles() {
  std::lock_guard lock(mu_);
  ensure_open_locked();
  return !packs_.empty() || !deferred_packs_.empty();
}

void ChunkStore::unpin(const std::vector<ChunkKey>& keys) {
  // Shard locks only — a dying batch never contends with mu_ holders.
  for (const ChunkKey& key : keys) {
    index_.unpin(key);
  }
}

std::vector<std::uint64_t> ChunkStore::checkpoint_ids_on_disk() {
  std::vector<std::uint64_t> ids;
  for (const std::string& name : env_.list_dir(dir_)) {
    if (const auto id = parse_checkpoint_file_name(name)) {
      ids.push_back(*id);
    }
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

void ChunkStore::ensure_open() {
  if (opened_fast_.load(std::memory_order_acquire)) {
    return;
  }
  std::lock_guard lock(mu_);
  ensure_open_locked();
}

std::int32_t ChunkStore::intern_pack_locked(const std::string& name) {
  for (std::size_t i = 0; i < pack_ids_.size(); ++i) {
    if (pack_ids_[i] == name) {
      return static_cast<std::int32_t>(i);
    }
  }
  pack_ids_.push_back(name);
  return static_cast<std::int32_t>(pack_ids_.size() - 1);
}

void ChunkStore::ensure_open_locked() {
  if (opened_) {
    return;
  }
  opened_ = true;
  if (tiered_ != nullptr) {
    // Staged scan: index the hot packs now (a ranged footer + key-table
    // read each, sufficient for every hot-resident checkpoint); record
    // cold packs for the lazy scan so opening the store never touches
    // the capacity tier.
    for (const std::string& name : tiered_->hot().list_dir(chunk_dir_)) {
      if (parse_pack_file_name(name)) {
        scan_pack_locked(name, tiered_->hot());
      }
    }
    for (const std::string& name : tiered_->cold().list_dir(chunk_dir_)) {
      if (parse_pack_file_name(name) && !packs_.contains(name)) {
        deferred_packs_.push_back(name);
      }
    }
    std::sort(deferred_packs_.begin(), deferred_packs_.end());
  } else {
    for (const std::string& name : env_.list_dir(chunk_dir_)) {
      if (parse_pack_file_name(name)) {
        scan_pack_locked(name, env_);
      }
    }
  }
  // Published AFTER the index is populated: probes that see the flag
  // see the scanned locations too (release/acquire pair).
  opened_fast_.store(true, std::memory_order_release);
}

void ChunkStore::ensure_refs_locked() {
  ensure_open_locked();
  if (refs_loaded_) {
    return;
  }
  refs_loaded_ = true;
  load_or_rebuild_refs_locked();
}

ChunkStore::ScanOutcome ChunkStore::scan_pack_locked(const std::string& name,
                                                     io::Env& through) {
  auto file = through.open_ranged(pack_path(name));
  if (!file) {
    return ScanOutcome::kAbsent;
  }
  std::uint64_t file_bytes = 0;
  bool legacy_v1 = false;
  auto parsed = read_pack_index_ranged(*file, file_bytes, legacy_v1);
  if (!parsed && legacy_v1) {
    // v1 pack: no tail table — whole-file parse, like the old reader.
    const Bytes data = file->pread(0, file_bytes);
    if (data.size() == file_bytes) {
      parsed = parse_pack(data);
    }
  }
  if (!parsed) {
    // Leave damaged packfiles on disk: their chunks are unusable, but
    // deleting bytes we cannot enumerate could destroy forensic value.
    ++stats_.damaged_packs;
    return ScanOutcome::kDamaged;
  }
  Pack pack;
  pack.records.reserve(parsed->size());
  for (const ParsedRecord& r : *parsed) {
    pack.records.push_back(Record{.key = r.key,
                                  .codec = r.codec,
                                  .enc_crc = r.enc_crc,
                                  .offset = r.offset,
                                  .enc_len = r.enc_len});
  }
  pack.file_bytes = file_bytes;
  stats_.stored_bytes += pack.file_bytes;
  ++stats_.packfiles;
  const std::int32_t pack_id = intern_pack_locked(name);
  for (std::size_t i = 0; i < pack.records.size(); ++i) {
    if (index_.set_location_if_absent(pack.records[i].key, pack_id,
                                      static_cast<std::uint32_t>(i))) {
      ++stats_.chunks;
    }
  }
  packs_[name] = std::move(pack);
  // Keep the handle as the read cache: a get() that triggered this scan
  // (lazy cold-pack indexing) serves its chunk with one more pread.
  cache_pack_handle_locked(name, std::move(file));
  return ScanOutcome::kScanned;
}

void ChunkStore::scan_deferred_until_locked(const ChunkKey& key) {
  while (!deferred_packs_.empty() && !index_.resident(key)) {
    // Newest first: a missing chunk most likely lives in the pack of a
    // recently demoted checkpoint. Peek reads (footer + key table) go
    // through the cold tier so indexing never promotes a pack the
    // caller may not even need.
    const std::string name = deferred_packs_.back();
    deferred_packs_.pop_back();
    if (packs_.contains(name)) {
      continue;  // re-published under the same epoch meanwhile
    }
    io::Env& through = tiered_ ? tiered_->cold() : env_;
    if (scan_pack_locked(name, through) == ScanOutcome::kAbsent) {
      // Promoted since the open listing: retry through the union view.
      // Only genuine absence falls back — a damaged pack must not be
      // re-read (or promoted hot) and double-counted.
      scan_pack_locked(name, env_);
    }
    if (index_.resident(key)) {
      // This pack is the one the caller needs. With read-through
      // promotion on, pull it hot via a streaming copy (bounded
      // memory) so the NEXT access is a hot hit; the current get()
      // still resolves its chunk with a ranged cold pread either way.
      // The scan's cached handle points at the cold copy — drop it so
      // the next read opens the promoted file.
      if (tiered_ != nullptr && tiered_->promote_on_read()) {
        invalidate_pack_handle_locked(name);
        tiered_->promote_file(pack_path(name));  // best effort
      }
    }
  }
}

void ChunkStore::drain_deferred_locked() {
  while (!deferred_packs_.empty()) {
    const std::string name = deferred_packs_.back();
    deferred_packs_.pop_back();
    if (packs_.contains(name)) {
      continue;
    }
    io::Env& through = tiered_ ? tiered_->cold() : env_;
    if (scan_pack_locked(name, through) == ScanOutcome::kAbsent) {
      scan_pack_locked(name, env_);
    }
  }
}

std::vector<ChunkKey> list_pack_keys(ByteSpan pack) {
  const auto parsed = parse_pack(pack);
  if (!parsed) {
    throw std::runtime_error("damaged packfile");
  }
  std::vector<ChunkKey> keys;
  keys.reserve(parsed->size());
  for (const ParsedRecord& r : *parsed) {
    keys.push_back(r.key);
  }
  return keys;
}

std::vector<ChunkKey> list_pack_keys(io::Env& env, const std::string& path) {
  auto file = env.open_ranged(path);
  if (!file) {
    throw std::runtime_error("packfile missing: " + path);
  }
  std::uint64_t file_bytes = 0;
  bool legacy_v1 = false;
  auto parsed = read_pack_index_ranged(*file, file_bytes, legacy_v1);
  if (!parsed && legacy_v1) {
    const Bytes data = file->pread(0, file_bytes);
    if (data.size() == file_bytes) {
      parsed = parse_pack(data);
    }
  }
  if (!parsed) {
    throw std::runtime_error("damaged packfile");
  }
  std::vector<ChunkKey> keys;
  keys.reserve(parsed->size());
  for (const ParsedRecord& r : *parsed) {
    keys.push_back(r.key);
  }
  return keys;
}

void ChunkStore::load_or_rebuild_refs_locked() {
  refs_complete_ = true;
  const auto ids = checkpoint_ids_on_disk();
  if (ids.empty()) {
    index_.reset_refs({});  // no checkpoint files: zero references
    return;
  }
  // Try the journal: valid only when it covers exactly the checkpoint
  // files present right now (a crash between a file mutation and the
  // journal rewrite leaves a mismatch, which sends us to the rebuild).
  if (const auto data = env_.read_file(chunk_dir_ + "/" + kRefsName)) {
    const std::string text(data->begin(), data->end());
    std::vector<std::uint64_t> covers;
    std::map<ChunkKey, std::uint64_t> counts;
    bool ok = false;
    bool damaged = false;
    for (const std::string& line : util::split(text, '\n')) {
      const std::string trimmed = util::trim(line);
      if (trimmed.empty() || trimmed == kRefsHeader) {
        continue;
      }
      const auto fields = util::split(trimmed, ' ');
      if (fields[0] == "covers") {
        ok = true;
        if (fields.size() > 1) {
          for (const std::string& id_str : util::split(fields[1], ',')) {
            try {
              covers.push_back(std::stoull(id_str));
            } catch (const std::exception&) {
              damaged = true;
            }
          }
        }
      } else if (fields[0] == "ref" && fields.size() == 3) {
        const auto key = parse_chunk_key_name(fields[1]);
        if (!key) {
          damaged = true;
          continue;
        }
        try {
          counts[*key] += std::stoull(fields[2]);
        } catch (const std::exception&) {
          damaged = true;
        }
      } else {
        damaged = true;
      }
    }
    std::sort(covers.begin(), covers.end());
    if (ok && !damaged && covers == ids) {
      index_.reset_refs(counts);
      return;
    }
  }
  // Rebuild from the ground truth: every checkpoint file's key table.
  // This path keeps the fully-verified whole-buffer read (footer CRC64
  // and all): the rebuild is the rare cold path, and a refcount
  // BASELINE must never be derived from bytes that cannot be trusted
  // end to end — unlike the leak-biased ranged reads the GC and the
  // migration planner use per-file.
  ++stats_.refs_rebuilds;
  refs_dirty_ = true;
  std::map<ChunkKey, std::uint64_t> rebuilt;
  for (const std::uint64_t id : ids) {
    const auto data = env_.read_file(dir_ + "/" + checkpoint_file_name(id));
    if (!data) {
      refs_complete_ = false;
      continue;
    }
    try {
      for (const ChunkKey& key : list_chunk_refs(*data)) {
        ++rebuilt[key];
      }
    } catch (const std::exception&) {
      // A file whose references cannot be read makes liveness
      // unknowable: keep counting the others (for observability) but
      // forbid sweeps until the directory is healthy again.
      refs_complete_ = false;
    }
  }
  index_.reset_refs(rebuilt);
}

}  // namespace qnn::ckpt

// The checkpoint-directory manifest.
//
// A small, human-readable text file (`MANIFEST`) naming every installed
// checkpoint, its parent (for incremental chains), step and size. It is
// rewritten atomically after every install/retention event, so a crash
// leaves either the old or the new manifest — never a torn one. Recovery
// treats it as a hint: if it is missing or stale, the directory is
// rescanned and files speak for themselves.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "io/env.hpp"

namespace qnn::ckpt {

struct ManifestEntry {
  std::uint64_t id = 0;
  std::uint64_t parent_id = 0;  ///< 0 = full checkpoint
  std::uint64_t step = 0;
  std::string file;             ///< file name within the checkpoint dir
  std::uint64_t bytes = 0;

  [[nodiscard]] bool is_incremental() const { return parent_id != 0; }
};

class Manifest {
 public:
  /// Loads `dir`/MANIFEST; returns an empty manifest when absent.
  /// Unparseable lines are skipped (forward compatibility + torn-line
  /// tolerance) but counted in parse_warnings() so recovery can surface
  /// that the manifest was damaged rather than silently thinning it.
  static Manifest load(io::Env& env, const std::string& dir);

  /// Non-empty, non-header lines the last load() could not parse (torn
  /// trailing line, media damage, unknown future record types).
  [[nodiscard]] std::size_t parse_warnings() const { return parse_warnings_; }

  /// Atomically rewrites `dir`/MANIFEST.
  void save(io::Env& env, const std::string& dir) const;

  /// Small named counters persisted with the manifest ("stat k=v"
  /// lines), surviving process restarts. Used for lifetime counters
  /// that would otherwise die with the process — e.g. the async
  /// writer's dropped-job count, which the inspector must be able to
  /// show post mortem precisely because the drop means no other trace
  /// of the checkpoint exists. Absent keys read as 0.
  [[nodiscard]] std::uint64_t stat(const std::string& key) const;
  void set_stat(const std::string& key, std::uint64_t value);
  [[nodiscard]] const std::map<std::string, std::uint64_t>& stats() const {
    return stats_;
  }

  /// Adds or replaces the entry with the same id, keeping entries sorted
  /// by id.
  void upsert(const ManifestEntry& entry);

  void remove(std::uint64_t id);

  [[nodiscard]] const std::vector<ManifestEntry>& entries() const {
    return entries_;
  }
  [[nodiscard]] const ManifestEntry* find(std::uint64_t id) const;
  [[nodiscard]] const ManifestEntry* latest() const;

  /// Highest id present, or 0 when empty.
  [[nodiscard]] std::uint64_t max_id() const;

 private:
  std::vector<ManifestEntry> entries_;  // sorted by id
  std::map<std::string, std::uint64_t> stats_;
  std::size_t parse_warnings_ = 0;
};

/// Canonical checkpoint file name for an id: "ckpt-0000000042.qckp".
std::string checkpoint_file_name(std::uint64_t id);

/// Parses an id back out of a checkpoint file name; nullopt when the name
/// does not match the canonical pattern.
std::optional<std::uint64_t> parse_checkpoint_file_name(
    const std::string& name);

}  // namespace qnn::ckpt

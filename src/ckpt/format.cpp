#include "ckpt/format.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "util/crc.hpp"
#include "util/thread_pool.hpp"

namespace qnn::ckpt {

namespace {
constexpr char kMagic[4] = {'Q', 'C', 'K', 'P'};
constexpr char kFooterMagic[4] = {'P', 'K', 'C', 'Q'};
constexpr std::size_t kFooterSize = 8 + 4;  // crc64 + magic
constexpr std::size_t kChunkHeaderBytes = 8 + 8 + 4;  // raw_len, enc_len, crc
/// Fixed file header after the magic (version..n_sections).
constexpr std::size_t kFileHeaderBytes = 2 + 2 + 8 + 8 + 8 + 8 + 4;
/// One serialized section header.
constexpr std::size_t kSectionHeaderBytes = 2 + 1 + 1 + 8 + 8 + 4;

void put_magic(Bytes& out, const char (&magic)[4]) {
  out.insert(out.end(), magic, magic + 4);
}

/// The streaming emitter: forwards every frame to the sink while
/// accumulating the footer CRC64 and the byte count — the container
/// never exists as one buffer unless the sink is a BufferSink.
class Emitter {
 public:
  explicit Emitter(ByteSink& out) : out_(out) {}

  void put(ByteSpan data) {
    crc_.update(data);
    out_.append(data);
    written_ += data.size();
  }

  [[nodiscard]] std::uint64_t crc64() const { return crc_.value(); }
  [[nodiscard]] std::uint64_t written() const { return written_; }

  /// Emits the footer (CRC64-so-far + closing magic) WITHOUT folding it
  /// into the CRC, mirroring the historical layout.
  void finish() {
    Bytes footer;
    util::put_le<std::uint64_t>(footer, crc_.value());
    put_magic(footer, kFooterMagic);
    out_.append(footer);
    written_ += footer.size();
  }

 private:
  ByteSink& out_;
  util::Crc64 crc_;
  std::uint64_t written_ = 0;
};

bool check_magic(ByteSpan in, std::size_t offset, const char (&magic)[4]) {
  return offset + 4 <= in.size() &&
         std::memcmp(in.data() + offset, magic, 4) == 0;
}

// The fixed file header after the magic, and one section's header. Both
// walkers are shared by every reader in this file (parse,
// list_chunk_refs) so the offset arithmetic cannot drift between them;
// encode_checkpoint is their mirror image. Throw std::out_of_range on
// truncation (via get_le).

struct FileHeader {
  std::uint16_t version = 0;
  std::uint16_t flags = 0;
  std::uint64_t checkpoint_id = 0;
  std::uint64_t parent_id = 0;
  std::uint64_t step = 0;
  std::uint64_t time_us = 0;
  std::uint32_t n_sections = 0;
};

FileHeader read_file_header(ByteSpan data, std::size_t& off) {
  FileHeader h;
  h.version = util::get_le<std::uint16_t>(data, off);
  h.flags = util::get_le<std::uint16_t>(data, off);
  h.checkpoint_id = util::get_le<std::uint64_t>(data, off);
  h.parent_id = util::get_le<std::uint64_t>(data, off);
  h.step = util::get_le<std::uint64_t>(data, off);
  h.time_us = util::get_le<std::uint64_t>(data, off);
  h.n_sections = util::get_le<std::uint32_t>(data, off);
  return h;
}

struct SectionHeader {
  SectionKind kind = SectionKind::kMeta;
  codec::CodecId codec = codec::CodecId::kRaw;
  std::uint8_t flags = 0;
  std::uint64_t raw_len = 0;
  std::uint64_t enc_len = 0;
  std::uint32_t crc = 0;
};

SectionHeader read_section_header(ByteSpan data, std::size_t& off) {
  SectionHeader h;
  h.kind = static_cast<SectionKind>(util::get_le<std::uint16_t>(data, off));
  h.codec = static_cast<codec::CodecId>(util::get_le<std::uint8_t>(data, off));
  h.flags = util::get_le<std::uint8_t>(data, off);
  h.raw_len = util::get_le<std::uint64_t>(data, off);
  h.enc_len = util::get_le<std::uint64_t>(data, off);
  h.crc = util::get_le<std::uint32_t>(data, off);
  return h;
}

/// Chunks of one section, compressed + CRC'd concurrently on `pool` (or
/// inline when null), before frame assembly.
struct EncodedChunks {
  std::vector<Bytes> chunks;
  std::vector<std::uint32_t> crcs;
  std::size_t frame_size = 0;  ///< total chunk-frame size on disk
};

EncodedChunks encode_chunks(codec::CodecId codec, ByteSpan payload,
                            std::size_t chunk_bytes,
                            util::ThreadPool* pool) {
  EncodedChunks out;
  const std::size_t n_chunks = (payload.size() + chunk_bytes - 1) / chunk_bytes;
  out.chunks.resize(n_chunks);
  out.crcs.resize(n_chunks);
  util::parallel_for(
      pool, 0, n_chunks, 1, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t c = lo; c < hi; ++c) {
          const std::size_t begin = c * chunk_bytes;
          const std::size_t len =
              std::min(chunk_bytes, payload.size() - begin);
          out.chunks[c] = codec::encode(codec, payload.subspan(begin, len));
          out.crcs[c] = util::crc32c(out.chunks[c]);
        }
      });
  out.frame_size = 4 + 8;
  for (const Bytes& e : out.chunks) {
    out.frame_size += kChunkHeaderBytes + e.size();
  }
  return out;
}

/// Serialises the chunk-frame headers (frame preamble + one header per
/// chunk) through `emit`, in on-disk order. Used twice per section: once
/// feeding the incremental frame CRC, once appending to the output — so
/// the multi-GB frame never exists as a second in-memory copy.
template <typename Emit>
void walk_chunk_frame_headers(const EncodedChunks& ec, ByteSpan payload,
                              std::size_t chunk_bytes, const Emit& emit) {
  Bytes scratch;
  util::put_le<std::uint32_t>(scratch,
                              static_cast<std::uint32_t>(ec.chunks.size()));
  util::put_le<std::uint64_t>(scratch, chunk_bytes);
  emit(scratch, /*chunk_after=*/static_cast<std::size_t>(-1));
  for (std::size_t c = 0; c < ec.chunks.size(); ++c) {
    scratch.clear();
    const std::size_t begin = c * chunk_bytes;
    const std::size_t raw_len = std::min(chunk_bytes, payload.size() - begin);
    util::put_le<std::uint64_t>(scratch, raw_len);
    util::put_le<std::uint64_t>(scratch, ec.chunks[c].size());
    util::put_le<std::uint32_t>(scratch, ec.crcs[c]);
    emit(scratch, c);
  }
}

/// Serialised size of one extern key table (preamble + one row per chunk).
std::size_t extern_table_size(std::size_t n_chunks) {
  return 1 + 4 + 8 + n_chunks * (8 + 4);  // digest, count, nominal, rows
}

/// Splits `payload` into chunks, dedups each against `sink` (compressing
/// and storing only the non-resident ones) and returns the serialised key
/// table that replaces the payload on disk.
///
/// Chunks are processed in WAVES of `window` so at most one wave of
/// encoded chunk buffers is ever alive — the O(chunk x workers) memory
/// bound of the streaming encode path. The sink sees puts in chunk
/// order (waves run in order), so packfile record order and the emitted
/// key table are identical for any window size.
Bytes encode_extern_section(codec::CodecId codec, ByteSpan payload,
                            std::size_t chunk_bytes, std::size_t window,
                            util::ThreadPool* pool, ChunkSink& sink,
                            util::MemGauge* gauge) {
  const std::size_t n_chunks = (payload.size() + chunk_bytes - 1) / chunk_bytes;
  std::vector<ChunkKey> keys;
  keys.reserve(n_chunks);
  std::vector<std::size_t> missing;
  std::vector<Bytes> encoded;
  for (std::size_t base = 0; base < n_chunks; base += window) {
    const std::size_t wave = std::min(window, n_chunks - base);
    std::vector<ChunkKey> wave_keys(wave);
    util::parallel_for(pool, 0, wave, 1, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        const std::size_t begin = (base + i) * chunk_bytes;
        const std::size_t len = std::min(chunk_bytes, payload.size() - begin);
        wave_keys[i] = chunk_key(payload.subspan(begin, len));
      }
    });
    // The dedup stage proper: contains() is called exactly once per
    // chunk, in chunk order (the sink records the reference and pins
    // the chunk against GC); only the misses pay for compression.
    missing.clear();
    for (std::size_t i = 0; i < wave; ++i) {
      keys.push_back(wave_keys[i]);
      if (!sink.contains(wave_keys[i])) {
        missing.push_back(base + i);
      }
    }
    encoded.assign(missing.size(), Bytes{});
    util::parallel_for(pool, 0, missing.size(), 1,
                       [&](std::size_t lo, std::size_t hi) {
                         for (std::size_t i = lo; i < hi; ++i) {
                           const std::size_t begin = missing[i] * chunk_bytes;
                           const std::size_t len =
                               std::min(chunk_bytes, payload.size() - begin);
                           encoded[i] = codec::encode(
                               codec, payload.subspan(begin, len));
                         }
                       });
    std::uint64_t wave_bytes = 0;
    for (const Bytes& e : encoded) {
      wave_bytes += e.size();
    }
    // Held only while this wave's records stream into the sink.
    util::GaugedBytes held(gauge, wave_bytes);
    for (std::size_t i = 0; i < missing.size(); ++i) {
      sink.put(keys[missing[i]], codec, encoded[i]);
    }
    encoded.clear();
  }

  Bytes table;
  table.reserve(extern_table_size(n_chunks));
  util::put_le<std::uint8_t>(table, kChunkDigestCrc32c);
  util::put_le<std::uint32_t>(table, static_cast<std::uint32_t>(n_chunks));
  util::put_le<std::uint64_t>(table, chunk_bytes);
  for (const ChunkKey& key : keys) {
    util::put_le<std::uint64_t>(table, key.len);
    util::put_le<std::uint32_t>(table, key.crc);
  }
  return table;
}

/// Parses an extern key table. Throws std::runtime_error on structural
/// damage (the table is CRC-covered, so this indicates a format bug or an
/// unsupported digest rather than bit rot).
std::vector<ChunkKey> parse_extern_table(ByteSpan table,
                                         std::uint64_t total_raw_len) {
  std::size_t off = 0;
  const auto digest = util::get_le<std::uint8_t>(table, off);
  if (digest != kChunkDigestCrc32c) {
    throw std::runtime_error("unsupported chunk digest type " +
                             std::to_string(digest));
  }
  const auto n_chunks = util::get_le<std::uint32_t>(table, off);
  (void)util::get_le<std::uint64_t>(table, off);  // nominal chunk size
  if (table.size() != extern_table_size(n_chunks)) {
    throw std::runtime_error("extern key table length mismatch");
  }
  std::vector<ChunkKey> keys;
  keys.reserve(n_chunks);
  std::uint64_t total = 0;
  for (std::uint32_t c = 0; c < n_chunks; ++c) {
    ChunkKey key;
    key.len = util::get_le<std::uint64_t>(table, off);
    key.crc = util::get_le<std::uint32_t>(table, off);
    if (key.len > total_raw_len - total) {
      throw std::runtime_error("extern chunk lengths exceed section size");
    }
    total += key.len;
    keys.push_back(key);
  }
  if (total != total_raw_len) {
    throw std::runtime_error("extern chunk lengths do not sum to section size");
  }
  return keys;
}

/// Reassembles an extern section by fetching every chunk from `source`.
/// get() verifies digest + length; the length is re-checked here anyway.
Bytes resolve_extern_payload(ChunkSource& source, ByteSpan table,
                             std::uint64_t total_raw_len) {
  const auto keys = parse_extern_table(table, total_raw_len);
  Bytes out(total_raw_len);
  std::size_t out_off = 0;
  for (std::size_t c = 0; c < keys.size(); ++c) {
    const Bytes raw = source.get(keys[c]);
    // Re-verify against the key here, independent of the source's own
    // checks: a checkpoint must never reassemble from bytes that do not
    // hash to what its table promised.
    if (raw.size() != keys[c].len || util::crc32c(raw) != keys[c].crc) {
      throw std::runtime_error("chunk " + chunk_key_name(keys[c]) +
                               ": content digest mismatch");
    }
    if (!raw.empty()) {
      std::memcpy(out.data() + out_off, raw.data(), raw.size());
    }
    out_off += raw.size();
  }
  return out;
}

/// Reassembles a chunk frame into the raw payload, verifying every chunk
/// CRC and the total length. Throws std::runtime_error on any mismatch.
Bytes decode_chunked_payload(codec::CodecId codec, ByteSpan frame,
                             std::uint64_t total_raw_len) {
  std::size_t off = 0;
  const auto n_chunks = util::get_le<std::uint32_t>(frame, off);
  (void)util::get_le<std::uint64_t>(frame, off);  // nominal chunk size
  // Pre-size the output and place chunks at their offsets: no per-chunk
  // growth bookkeeping on the recovery critical path.
  Bytes out(total_raw_len);
  std::size_t out_off = 0;
  for (std::uint32_t c = 0; c < n_chunks; ++c) {
    const auto raw_len = util::get_le<std::uint64_t>(frame, off);
    const auto enc_len = util::get_le<std::uint64_t>(frame, off);
    const auto crc = util::get_le<std::uint32_t>(frame, off);
    // Overflow-safe: off <= frame.size() after get_le, so subtract.
    if (enc_len > frame.size() - off) {
      throw std::runtime_error("chunk " + std::to_string(c) +
                               ": truncated stream");
    }
    if (raw_len > total_raw_len - out_off) {
      throw std::runtime_error("chunk " + std::to_string(c) +
                               ": raw length exceeds section size");
    }
    const ByteSpan enc = frame.subspan(off, enc_len);
    off += enc_len;
    if (util::crc32c(enc) != crc) {
      throw std::runtime_error("chunk " + std::to_string(c) +
                               ": CRC32C mismatch");
    }
    const Bytes raw = codec::decode(codec, enc, raw_len);
    if (!raw.empty()) {
      std::memcpy(out.data() + out_off, raw.data(), raw.size());
    }
    out_off += raw.size();
  }
  if (off != frame.size()) {
    throw std::runtime_error("chunk frame has trailing bytes");
  }
  if (out_off != total_raw_len) {
    throw std::runtime_error("chunk frame raw length mismatch");
  }
  return out;
}
}  // namespace

ChunkKey chunk_key(ByteSpan raw) {
  return ChunkKey{.crc = util::crc32c(raw), .len = raw.size()};
}

std::string chunk_key_name(const ChunkKey& key) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%08x-%llu", key.crc,
                static_cast<unsigned long long>(key.len));
  return buf;
}

std::optional<ChunkKey> parse_chunk_key_name(const std::string& name) {
  const auto dash = name.find('-');
  if (dash != 8 || name.size() < 10) {
    return std::nullopt;
  }
  ChunkKey key;
  std::uint64_t crc = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    const char c = name[i];
    std::uint64_t digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return std::nullopt;
    }
    crc = crc * 16 + digit;
  }
  key.crc = static_cast<std::uint32_t>(crc);
  std::uint64_t len = 0;
  for (std::size_t i = 9; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') {
      return std::nullopt;
    }
    len = len * 10 + static_cast<std::uint64_t>(name[i] - '0');
  }
  key.len = len;
  return key;
}

std::string section_kind_name(SectionKind kind) {
  switch (kind) {
    case SectionKind::kMeta: return "meta";
    case SectionKind::kParams: return "params";
    case SectionKind::kOptimizer: return "optimizer";
    case SectionKind::kRng: return "rng";
    case SectionKind::kDataCursor: return "data-cursor";
    case SectionKind::kLossHistory: return "loss-history";
    case SectionKind::kSimulator: return "simulator";
  }
  return "unknown(" + std::to_string(static_cast<int>(kind)) + ")";
}

const Section* CheckpointFile::find(SectionKind kind) const {
  for (const Section& s : sections) {
    if (s.kind == kind) {
      return &s;
    }
  }
  return nullptr;
}

Bytes encode_checkpoint(const CheckpointFile& file) {
  return encode_checkpoint(file, EncodeOptions{});
}

Bytes encode_checkpoint(const CheckpointFile& file,
                        const EncodeOptions& options) {
  Bytes out;
  BufferSink sink(out);
  encode_checkpoint(file, options, sink);
  return out;
}

std::uint64_t encode_checkpoint(const CheckpointFile& file,
                                const EncodeOptions& options, ByteSink& out) {
  // Version 0 = automatic: content-addressed (3) when a sink is wired
  // up, else the newest self-contained format.
  const std::uint16_t version =
      options.version != 0
          ? options.version
          : (options.sink != nullptr ? kFormatVersion : kInlineFormatVersion);
  if (version < kMinFormatVersion || version > kFormatVersion) {
    throw std::invalid_argument("encode_checkpoint: unsupported version " +
                                std::to_string(version));
  }
  if (version >= 3 && options.sink == nullptr) {
    throw std::invalid_argument(
        "encode_checkpoint: version 3 requires a chunk sink");
  }
  const std::size_t chunk_bytes =
      std::max(options.chunk_bytes, kMinChunkBytes);
  // Auto window: two chunks per pool worker keeps every thread fed
  // while one wave streams out, clamped to [4, 16] so the memory bound
  // does not silently scale with core count.
  const std::size_t window =
      options.encode_window != 0
          ? options.encode_window
          : std::clamp<std::size_t>(
                2 * (options.pool != nullptr ? options.pool->size() : 1), 4,
                16);
  const bool may_chunk = version >= 2;
  const bool may_extern = version >= 3 && options.sink != nullptr;

  Emitter em(out);
  Bytes scratch;
  put_magic(scratch, kMagic);
  util::put_le<std::uint16_t>(scratch, version);
  util::put_le<std::uint16_t>(scratch, 0);  // file flags, reserved
  util::put_le<std::uint64_t>(scratch, file.checkpoint_id);
  util::put_le<std::uint64_t>(scratch, file.parent_id);
  util::put_le<std::uint64_t>(scratch, file.step);
  util::put_le<std::uint64_t>(scratch, file.time_us);
  util::put_le<std::uint32_t>(scratch,
                              static_cast<std::uint32_t>(file.sections.size()));
  em.put(scratch);

  for (const Section& s : file.sections) {
    const bool externed = may_extern && s.payload.size() > chunk_bytes;
    const bool chunked =
        !externed && may_chunk && s.payload.size() > chunk_bytes;
    scratch.clear();
    util::put_le<std::uint16_t>(scratch, static_cast<std::uint16_t>(s.kind));
    util::put_le<std::uint8_t>(scratch, static_cast<std::uint8_t>(s.codec));
    std::uint8_t sflags = s.flags;
    if (externed) {
      sflags |= kSectionFlagExtern;
    } else if (chunked) {
      sflags |= kSectionFlagChunked;
    }
    util::put_le<std::uint8_t>(scratch, sflags);
    util::put_le<std::uint64_t>(scratch, s.payload.size());
    if (externed) {
      // Content-addressed: the chunk bytes stream into the sink wave by
      // wave (bounded memory); only the small key table lands in the
      // container as the payload region.
      const Bytes table =
          encode_extern_section(s.codec, s.payload, chunk_bytes, window,
                                options.pool, *options.sink, options.gauge);
      util::put_le<std::uint64_t>(scratch, table.size());
      util::put_le<std::uint32_t>(scratch, util::crc32c(table));
      em.put(scratch);
      em.put(table);
      continue;
    }
    if (!chunked) {
      const Bytes encoded = codec::encode(s.codec, s.payload);
      const util::GaugedBytes held(options.gauge, encoded.size());
      util::put_le<std::uint64_t>(scratch, encoded.size());
      util::put_le<std::uint32_t>(scratch, util::crc32c(encoded));
      em.put(scratch);
      em.put(encoded);
      continue;
    }
    // Chunked (self-contained v2): the frame header carries the total
    // frame length and CRC, so the whole section's encoded chunks must
    // exist before the first frame byte is emitted — this inline
    // fallback buffers O(section), which the gauge records honestly.
    const EncodedChunks ec =
        encode_chunks(s.codec, s.payload, chunk_bytes, options.pool);
    std::uint64_t chunk_buffer_bytes = 0;
    for (const Bytes& e : ec.chunks) {
      chunk_buffer_bytes += e.size();
    }
    const util::GaugedBytes held(options.gauge, chunk_buffer_bytes);
    util::Crc32c frame_crc;
    walk_chunk_frame_headers(
        ec, s.payload, chunk_bytes,
        [&](const Bytes& header, std::size_t chunk_after) {
          frame_crc.update(header);
          if (chunk_after != static_cast<std::size_t>(-1)) {
            frame_crc.update(ec.chunks[chunk_after]);
          }
        });
    util::put_le<std::uint64_t>(scratch, ec.frame_size);
    util::put_le<std::uint32_t>(scratch, frame_crc.value());
    em.put(scratch);
    walk_chunk_frame_headers(
        ec, s.payload, chunk_bytes,
        [&](const Bytes& header, std::size_t chunk_after) {
          em.put(header);
          if (chunk_after != static_cast<std::size_t>(-1)) {
            em.put(ec.chunks[chunk_after]);
          }
        });
  }

  em.finish();
  return em.written();
}

namespace {

/// Shared parse loop. In strict mode any problem throws; in salvage mode
/// problems are recorded and parsing continues where possible.
CheckpointFile parse(ByteSpan data, const DecodeOptions& options, bool strict,
                     bool* fully_intact, std::vector<std::string>* notes) {
  auto fail = [&](const std::string& what) {
    if (strict) {
      throw CorruptCheckpoint(what);
    }
    if (notes) {
      notes->push_back(what);
    }
    if (fully_intact) {
      *fully_intact = false;
    }
  };

  if (!check_magic(data, 0, kMagic)) {
    throw CorruptCheckpoint("bad magic");
  }

  // Footer first: covers truncation of any length.
  bool footer_ok = data.size() >= kFooterSize + 4 &&
                   check_magic(data, data.size() - 4, kFooterMagic);
  if (footer_ok) {
    std::size_t off = data.size() - kFooterSize;
    const auto stored = util::get_le<std::uint64_t>(data, off);
    const auto computed = util::crc64(data.first(data.size() - kFooterSize));
    footer_ok = stored == computed;
  }
  if (!footer_ok) {
    fail("footer missing or file CRC64 mismatch (truncated file?)");
  }

  std::size_t off = 4;
  CheckpointFile file;
  const FileHeader header = read_file_header(data, off);
  if (header.version < kMinFormatVersion ||
      header.version > kFormatVersion) {
    throw CorruptCheckpoint("unsupported version " +
                            std::to_string(header.version));
  }
  const std::uint16_t version = header.version;
  file.checkpoint_id = header.checkpoint_id;
  file.parent_id = header.parent_id;
  file.step = header.step;
  file.time_us = header.time_us;

  const std::size_t body_end =
      footer_ok ? data.size() - kFooterSize : data.size();

  for (std::uint32_t i = 0; i < header.n_sections; ++i) {
    Section s;
    std::uint64_t raw_len = 0;
    std::uint64_t enc_len = 0;
    std::uint32_t crc = 0;
    try {
      const SectionHeader sh = read_section_header(data, off);
      s.kind = sh.kind;
      s.codec = sh.codec;
      s.flags = sh.flags;
      raw_len = sh.raw_len;
      enc_len = sh.enc_len;
      crc = sh.crc;
    } catch (const std::out_of_range&) {
      fail("section " + std::to_string(i) + ": truncated header");
      return file;
    }
    // Overflow-safe truncation check: a crafted enc_len near 2^64 must not
    // wrap past body_end and reach subspan with an out-of-range count.
    if (off > body_end || enc_len > body_end - off) {
      fail("section " + section_kind_name(s.kind) + ": truncated payload");
      return file;
    }
    const ByteSpan encoded = data.subspan(off, enc_len);
    off += enc_len;

    if (util::crc32c(encoded) != crc) {
      fail("section " + section_kind_name(s.kind) + ": CRC32C mismatch");
      continue;  // salvage mode: skip this section, keep going
    }
    try {
      if ((s.flags & kSectionFlagExtern) != 0) {
        if (version < 3) {
          throw std::runtime_error("extern section in a version-" +
                                   std::to_string(version) + " file");
        }
        if (options.source == nullptr) {
          throw std::runtime_error(
              "extern section needs a chunk store (no source)");
        }
        s.payload = resolve_extern_payload(*options.source, encoded, raw_len);
        s.flags &= static_cast<std::uint8_t>(~kSectionFlagExtern);
      } else if ((s.flags & kSectionFlagChunked) != 0) {
        if (version < 2) {
          throw std::runtime_error("chunked section in a version-1 file");
        }
        s.payload = decode_chunked_payload(s.codec, encoded, raw_len);
        s.flags &= static_cast<std::uint8_t>(~kSectionFlagChunked);
      } else {
        s.payload = codec::decode(s.codec, encoded, raw_len);
      }
    } catch (const std::exception& e) {
      fail("section " + section_kind_name(s.kind) +
           ": decode failed: " + e.what());
      continue;
    }
    file.sections.push_back(std::move(s));
  }
  return file;
}

}  // namespace

CheckpointFile decode_checkpoint(ByteSpan data) {
  return parse(data, DecodeOptions{}, /*strict=*/true, nullptr, nullptr);
}

CheckpointFile decode_checkpoint(ByteSpan data, const DecodeOptions& options) {
  return parse(data, options, /*strict=*/true, nullptr, nullptr);
}

SalvageResult salvage_checkpoint(ByteSpan data) {
  return salvage_checkpoint(data, DecodeOptions{});
}

SalvageResult salvage_checkpoint(ByteSpan data, const DecodeOptions& options) {
  SalvageResult result;
  result.fully_intact = true;
  try {
    result.file = parse(data, options, /*strict=*/false,
                        &result.fully_intact, &result.notes);
  } catch (const std::exception& e) {
    result.fully_intact = false;
    result.notes.push_back(e.what());
    result.file = std::nullopt;
  }
  return result;
}

std::vector<ChunkKey> list_chunk_refs(ByteSpan data) {
  if (!check_magic(data, 0, kMagic)) {
    throw CorruptCheckpoint("bad magic");
  }
  // Footer CRC64 first: refcounts must never be rebuilt from a file whose
  // bytes cannot be trusted end to end.
  if (data.size() < kFooterSize + 4 ||
      !check_magic(data, data.size() - 4, kFooterMagic)) {
    throw CorruptCheckpoint("footer missing (truncated file?)");
  }
  {
    std::size_t off = data.size() - kFooterSize;
    const auto stored = util::get_le<std::uint64_t>(data, off);
    if (stored != util::crc64(data.first(data.size() - kFooterSize))) {
      throw CorruptCheckpoint("file CRC64 mismatch");
    }
  }
  std::size_t off = 4;
  std::vector<ChunkKey> refs;
  try {
    const FileHeader header = read_file_header(data, off);
    if (header.version < kMinFormatVersion ||
        header.version > kFormatVersion) {
      throw CorruptCheckpoint("unsupported version " +
                              std::to_string(header.version));
    }
    if (header.version < 3) {
      return refs;  // inline formats reference no external chunks
    }
    const std::size_t body_end = data.size() - kFooterSize;
    for (std::uint32_t i = 0; i < header.n_sections; ++i) {
      const SectionHeader sh = read_section_header(data, off);
      if (off > body_end || sh.enc_len > body_end - off) {
        throw CorruptCheckpoint("section " + std::to_string(i) +
                                ": truncated payload");
      }
      if ((sh.flags & kSectionFlagExtern) != 0) {
        const auto keys =
            parse_extern_table(data.subspan(off, sh.enc_len), sh.raw_len);
        refs.insert(refs.end(), keys.begin(), keys.end());
      }
      off += sh.enc_len;
    }
  } catch (const CorruptCheckpoint&) {
    throw;
  } catch (const std::exception& e) {
    throw CorruptCheckpoint(e.what());
  }
  return refs;
}

namespace {

/// pread cursor over a ranged handle; throws CorruptCheckpoint when a
/// fixed-size piece comes back short (truncation).
struct RangedCursor {
  io::RandomAccessFile& file;
  std::uint64_t off = 0;

  Bytes take(std::size_t n, const char* what) {
    Bytes piece = file.pread(off, n);
    if (piece.size() != n) {
      throw CorruptCheckpoint(std::string("truncated ") + what);
    }
    off += n;
    return piece;
  }
};

/// Shared ranged walk: fixed header + section headers (payloads are
/// skipped by seeking; `on_section` may pread what it needs). The walk
/// validates structural consistency (magics, version, lengths within
/// the file) but deliberately NOT the footer CRC64 — that is what makes
/// it a header-sized read instead of a whole-file one.
template <typename OnSection>
CheckpointIndex walk_ranged(io::RandomAccessFile& file,
                            const OnSection& on_section) {
  CheckpointIndex index;
  index.file_bytes = file.size();
  if (index.file_bytes < 4 + kFileHeaderBytes + kFooterSize) {
    throw CorruptCheckpoint("file too short");
  }
  RangedCursor cursor{file};
  const Bytes head = cursor.take(4 + kFileHeaderBytes, "file header");
  if (!check_magic(head, 0, kMagic)) {
    throw CorruptCheckpoint("bad magic");
  }
  {
    const Bytes tail = file.pread(index.file_bytes - 4, 4);
    if (tail.size() != 4 || !check_magic(tail, 0, kFooterMagic)) {
      throw CorruptCheckpoint("footer missing (truncated file?)");
    }
  }
  std::size_t off = 4;
  const FileHeader header = read_file_header(head, off);
  if (header.version < kMinFormatVersion || header.version > kFormatVersion) {
    throw CorruptCheckpoint("unsupported version " +
                            std::to_string(header.version));
  }
  index.version = header.version;
  index.checkpoint_id = header.checkpoint_id;
  index.parent_id = header.parent_id;
  index.step = header.step;
  index.time_us = header.time_us;

  const std::uint64_t body_end = index.file_bytes - kFooterSize;
  for (std::uint32_t i = 0; i < header.n_sections; ++i) {
    const Bytes raw = cursor.take(kSectionHeaderBytes, "section header");
    std::size_t hoff = 0;
    const SectionHeader sh = read_section_header(raw, hoff);
    SectionIndexEntry entry;
    entry.kind = sh.kind;
    entry.codec = sh.codec;
    entry.flags = sh.flags;
    entry.raw_len = sh.raw_len;
    entry.enc_len = sh.enc_len;
    entry.crc = sh.crc;
    entry.payload_offset = cursor.off;
    if (cursor.off > body_end || sh.enc_len > body_end - cursor.off) {
      throw CorruptCheckpoint("section " + section_kind_name(sh.kind) +
                              ": truncated payload");
    }
    on_section(entry);
    cursor.off += sh.enc_len;  // seek past the payload: never read it
    index.sections.push_back(entry);
  }
  return index;
}

}  // namespace

CheckpointIndex read_checkpoint_index(io::Env& env, const std::string& path) {
  const auto file = env.open_ranged(path);
  if (!file) {
    throw CorruptCheckpoint("file missing: " + path);
  }
  try {
    return walk_ranged(*file, [](const SectionIndexEntry&) {});
  } catch (const CorruptCheckpoint&) {
    throw;
  } catch (const std::exception& e) {
    throw CorruptCheckpoint(e.what());
  }
}

std::vector<ChunkKey> list_chunk_refs(io::Env& env, const std::string& path) {
  const auto file = env.open_ranged(path);
  if (!file) {
    throw CorruptCheckpoint("file missing: " + path);
  }
  std::vector<ChunkKey> refs;
  try {
    const CheckpointIndex index =
        walk_ranged(*file, [](const SectionIndexEntry&) {});
    if (index.version < 3) {
      return refs;  // inline formats reference no external chunks
    }
    for (const SectionIndexEntry& entry : index.sections) {
      if ((entry.flags & kSectionFlagExtern) == 0) {
        continue;
      }
      const Bytes table = file->pread(entry.payload_offset, entry.enc_len);
      if (table.size() != entry.enc_len) {
        throw CorruptCheckpoint("extern key table truncated");
      }
      // The table is small and carries the section CRC32C: verify it
      // before trusting a single key (the whole-file CRC64 is skipped
      // by design — see the header comment on the ranged overload).
      if (util::crc32c(table) != entry.crc) {
        throw CorruptCheckpoint("extern key table CRC32C mismatch");
      }
      const auto keys = parse_extern_table(table, entry.raw_len);
      refs.insert(refs.end(), keys.begin(), keys.end());
    }
  } catch (const CorruptCheckpoint&) {
    throw;
  } catch (const std::exception& e) {
    throw CorruptCheckpoint(e.what());
  }
  return refs;
}

}  // namespace qnn::ckpt

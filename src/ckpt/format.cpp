#include "ckpt/format.hpp"

#include <cstring>

#include "util/crc.hpp"

namespace qnn::ckpt {

namespace {
constexpr char kMagic[4] = {'Q', 'C', 'K', 'P'};
constexpr char kFooterMagic[4] = {'P', 'K', 'C', 'Q'};
constexpr std::size_t kFooterSize = 8 + 4;  // crc64 + magic

void put_magic(Bytes& out, const char (&magic)[4]) {
  out.insert(out.end(), magic, magic + 4);
}

bool check_magic(ByteSpan in, std::size_t offset, const char (&magic)[4]) {
  return offset + 4 <= in.size() &&
         std::memcmp(in.data() + offset, magic, 4) == 0;
}
}  // namespace

std::string section_kind_name(SectionKind kind) {
  switch (kind) {
    case SectionKind::kMeta: return "meta";
    case SectionKind::kParams: return "params";
    case SectionKind::kOptimizer: return "optimizer";
    case SectionKind::kRng: return "rng";
    case SectionKind::kDataCursor: return "data-cursor";
    case SectionKind::kLossHistory: return "loss-history";
    case SectionKind::kSimulator: return "simulator";
  }
  return "unknown(" + std::to_string(static_cast<int>(kind)) + ")";
}

const Section* CheckpointFile::find(SectionKind kind) const {
  for (const Section& s : sections) {
    if (s.kind == kind) {
      return &s;
    }
  }
  return nullptr;
}

Bytes encode_checkpoint(const CheckpointFile& file) {
  Bytes out;
  put_magic(out, kMagic);
  util::put_le<std::uint16_t>(out, kFormatVersion);
  util::put_le<std::uint16_t>(out, 0);  // file flags, reserved
  util::put_le<std::uint64_t>(out, file.checkpoint_id);
  util::put_le<std::uint64_t>(out, file.parent_id);
  util::put_le<std::uint64_t>(out, file.step);
  util::put_le<std::uint64_t>(out, file.time_us);
  util::put_le<std::uint32_t>(out,
                              static_cast<std::uint32_t>(file.sections.size()));

  for (const Section& s : file.sections) {
    const Bytes encoded = codec::encode(s.codec, s.payload);
    util::put_le<std::uint16_t>(out, static_cast<std::uint16_t>(s.kind));
    util::put_le<std::uint8_t>(out, static_cast<std::uint8_t>(s.codec));
    util::put_le<std::uint8_t>(out, s.flags);
    util::put_le<std::uint64_t>(out, s.payload.size());
    util::put_le<std::uint64_t>(out, encoded.size());
    util::put_le<std::uint32_t>(out, util::crc32c(encoded));
    out.insert(out.end(), encoded.begin(), encoded.end());
  }

  util::put_le<std::uint64_t>(out, util::crc64(out));
  put_magic(out, kFooterMagic);
  return out;
}

namespace {

/// Shared parse loop. In strict mode any problem throws; in salvage mode
/// problems are recorded and parsing continues where possible.
CheckpointFile parse(ByteSpan data, bool strict, bool* fully_intact,
                     std::vector<std::string>* notes) {
  auto fail = [&](const std::string& what) {
    if (strict) {
      throw CorruptCheckpoint(what);
    }
    if (notes) {
      notes->push_back(what);
    }
    if (fully_intact) {
      *fully_intact = false;
    }
  };

  if (!check_magic(data, 0, kMagic)) {
    throw CorruptCheckpoint("bad magic");
  }

  // Footer first: covers truncation of any length.
  bool footer_ok = data.size() >= kFooterSize + 4 &&
                   check_magic(data, data.size() - 4, kFooterMagic);
  if (footer_ok) {
    std::size_t off = data.size() - kFooterSize;
    const auto stored = util::get_le<std::uint64_t>(data, off);
    const auto computed = util::crc64(data.first(data.size() - kFooterSize));
    footer_ok = stored == computed;
  }
  if (!footer_ok) {
    fail("footer missing or file CRC64 mismatch (truncated file?)");
  }

  std::size_t off = 4;
  CheckpointFile file;
  const auto version = util::get_le<std::uint16_t>(data, off);
  if (version != kFormatVersion) {
    throw CorruptCheckpoint("unsupported version " + std::to_string(version));
  }
  (void)util::get_le<std::uint16_t>(data, off);  // file flags
  file.checkpoint_id = util::get_le<std::uint64_t>(data, off);
  file.parent_id = util::get_le<std::uint64_t>(data, off);
  file.step = util::get_le<std::uint64_t>(data, off);
  file.time_us = util::get_le<std::uint64_t>(data, off);
  const auto n_sections = util::get_le<std::uint32_t>(data, off);

  const std::size_t body_end =
      footer_ok ? data.size() - kFooterSize : data.size();

  for (std::uint32_t i = 0; i < n_sections; ++i) {
    Section s;
    std::uint64_t raw_len = 0;
    std::uint64_t enc_len = 0;
    std::uint32_t crc = 0;
    try {
      s.kind = static_cast<SectionKind>(util::get_le<std::uint16_t>(data, off));
      s.codec = static_cast<codec::CodecId>(util::get_le<std::uint8_t>(data, off));
      s.flags = util::get_le<std::uint8_t>(data, off);
      raw_len = util::get_le<std::uint64_t>(data, off);
      enc_len = util::get_le<std::uint64_t>(data, off);
      crc = util::get_le<std::uint32_t>(data, off);
    } catch (const std::out_of_range&) {
      fail("section " + std::to_string(i) + ": truncated header");
      return file;
    }
    if (off + enc_len > body_end) {
      fail("section " + section_kind_name(s.kind) + ": truncated payload");
      return file;
    }
    const ByteSpan encoded = data.subspan(off, enc_len);
    off += enc_len;

    if (util::crc32c(encoded) != crc) {
      fail("section " + section_kind_name(s.kind) + ": CRC32C mismatch");
      continue;  // salvage mode: skip this section, keep going
    }
    try {
      s.payload = codec::decode(s.codec, encoded, raw_len);
    } catch (const std::exception& e) {
      fail("section " + section_kind_name(s.kind) +
           ": decode failed: " + e.what());
      continue;
    }
    file.sections.push_back(std::move(s));
  }
  return file;
}

}  // namespace

CheckpointFile decode_checkpoint(ByteSpan data) {
  return parse(data, /*strict=*/true, nullptr, nullptr);
}

SalvageResult salvage_checkpoint(ByteSpan data) {
  SalvageResult result;
  result.fully_intact = true;
  try {
    result.file = parse(data, /*strict=*/false, &result.fully_intact,
                        &result.notes);
  } catch (const std::exception& e) {
    result.fully_intact = false;
    result.notes.push_back(e.what());
    result.file = std::nullopt;
  }
  return result;
}

}  // namespace qnn::ckpt

#include "ckpt/format.hpp"

#include <algorithm>
#include <cstring>

#include "util/crc.hpp"
#include "util/thread_pool.hpp"

namespace qnn::ckpt {

namespace {
constexpr char kMagic[4] = {'Q', 'C', 'K', 'P'};
constexpr char kFooterMagic[4] = {'P', 'K', 'C', 'Q'};
constexpr std::size_t kFooterSize = 8 + 4;  // crc64 + magic
constexpr std::size_t kChunkHeaderBytes = 8 + 8 + 4;  // raw_len, enc_len, crc

void put_magic(Bytes& out, const char (&magic)[4]) {
  out.insert(out.end(), magic, magic + 4);
}

bool check_magic(ByteSpan in, std::size_t offset, const char (&magic)[4]) {
  return offset + 4 <= in.size() &&
         std::memcmp(in.data() + offset, magic, 4) == 0;
}

/// Chunks of one section, compressed + CRC'd concurrently on `pool` (or
/// inline when null), before frame assembly.
struct EncodedChunks {
  std::vector<Bytes> chunks;
  std::vector<std::uint32_t> crcs;
  std::size_t frame_size = 0;  ///< total chunk-frame size on disk
};

EncodedChunks encode_chunks(codec::CodecId codec, ByteSpan payload,
                            std::size_t chunk_bytes,
                            util::ThreadPool* pool) {
  EncodedChunks out;
  const std::size_t n_chunks = (payload.size() + chunk_bytes - 1) / chunk_bytes;
  out.chunks.resize(n_chunks);
  out.crcs.resize(n_chunks);
  util::parallel_for(
      pool, 0, n_chunks, 1, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t c = lo; c < hi; ++c) {
          const std::size_t begin = c * chunk_bytes;
          const std::size_t len =
              std::min(chunk_bytes, payload.size() - begin);
          out.chunks[c] = codec::encode(codec, payload.subspan(begin, len));
          out.crcs[c] = util::crc32c(out.chunks[c]);
        }
      });
  out.frame_size = 4 + 8;
  for (const Bytes& e : out.chunks) {
    out.frame_size += kChunkHeaderBytes + e.size();
  }
  return out;
}

/// Serialises the chunk-frame headers (frame preamble + one header per
/// chunk) through `emit`, in on-disk order. Used twice per section: once
/// feeding the incremental frame CRC, once appending to the output — so
/// the multi-GB frame never exists as a second in-memory copy.
template <typename Emit>
void walk_chunk_frame_headers(const EncodedChunks& ec, ByteSpan payload,
                              std::size_t chunk_bytes, const Emit& emit) {
  Bytes scratch;
  util::put_le<std::uint32_t>(scratch,
                              static_cast<std::uint32_t>(ec.chunks.size()));
  util::put_le<std::uint64_t>(scratch, chunk_bytes);
  emit(scratch, /*chunk_after=*/static_cast<std::size_t>(-1));
  for (std::size_t c = 0; c < ec.chunks.size(); ++c) {
    scratch.clear();
    const std::size_t begin = c * chunk_bytes;
    const std::size_t raw_len = std::min(chunk_bytes, payload.size() - begin);
    util::put_le<std::uint64_t>(scratch, raw_len);
    util::put_le<std::uint64_t>(scratch, ec.chunks[c].size());
    util::put_le<std::uint32_t>(scratch, ec.crcs[c]);
    emit(scratch, c);
  }
}

/// Reassembles a chunk frame into the raw payload, verifying every chunk
/// CRC and the total length. Throws std::runtime_error on any mismatch.
Bytes decode_chunked_payload(codec::CodecId codec, ByteSpan frame,
                             std::uint64_t total_raw_len) {
  std::size_t off = 0;
  const auto n_chunks = util::get_le<std::uint32_t>(frame, off);
  (void)util::get_le<std::uint64_t>(frame, off);  // nominal chunk size
  // Pre-size the output and place chunks at their offsets: no per-chunk
  // growth bookkeeping on the recovery critical path.
  Bytes out(total_raw_len);
  std::size_t out_off = 0;
  for (std::uint32_t c = 0; c < n_chunks; ++c) {
    const auto raw_len = util::get_le<std::uint64_t>(frame, off);
    const auto enc_len = util::get_le<std::uint64_t>(frame, off);
    const auto crc = util::get_le<std::uint32_t>(frame, off);
    // Overflow-safe: off <= frame.size() after get_le, so subtract.
    if (enc_len > frame.size() - off) {
      throw std::runtime_error("chunk " + std::to_string(c) +
                               ": truncated stream");
    }
    if (raw_len > total_raw_len - out_off) {
      throw std::runtime_error("chunk " + std::to_string(c) +
                               ": raw length exceeds section size");
    }
    const ByteSpan enc = frame.subspan(off, enc_len);
    off += enc_len;
    if (util::crc32c(enc) != crc) {
      throw std::runtime_error("chunk " + std::to_string(c) +
                               ": CRC32C mismatch");
    }
    const Bytes raw = codec::decode(codec, enc, raw_len);
    if (!raw.empty()) {
      std::memcpy(out.data() + out_off, raw.data(), raw.size());
    }
    out_off += raw.size();
  }
  if (off != frame.size()) {
    throw std::runtime_error("chunk frame has trailing bytes");
  }
  if (out_off != total_raw_len) {
    throw std::runtime_error("chunk frame raw length mismatch");
  }
  return out;
}
}  // namespace

std::string section_kind_name(SectionKind kind) {
  switch (kind) {
    case SectionKind::kMeta: return "meta";
    case SectionKind::kParams: return "params";
    case SectionKind::kOptimizer: return "optimizer";
    case SectionKind::kRng: return "rng";
    case SectionKind::kDataCursor: return "data-cursor";
    case SectionKind::kLossHistory: return "loss-history";
    case SectionKind::kSimulator: return "simulator";
  }
  return "unknown(" + std::to_string(static_cast<int>(kind)) + ")";
}

const Section* CheckpointFile::find(SectionKind kind) const {
  for (const Section& s : sections) {
    if (s.kind == kind) {
      return &s;
    }
  }
  return nullptr;
}

Bytes encode_checkpoint(const CheckpointFile& file) {
  return encode_checkpoint(file, EncodeOptions{});
}

Bytes encode_checkpoint(const CheckpointFile& file,
                        const EncodeOptions& options) {
  if (options.version < kMinFormatVersion ||
      options.version > kFormatVersion) {
    throw std::invalid_argument("encode_checkpoint: unsupported version " +
                                std::to_string(options.version));
  }
  const std::size_t chunk_bytes =
      std::max(options.chunk_bytes, kMinChunkBytes);
  const bool may_chunk = options.version >= 2;

  Bytes out;
  put_magic(out, kMagic);
  util::put_le<std::uint16_t>(out, options.version);
  util::put_le<std::uint16_t>(out, 0);  // file flags, reserved
  util::put_le<std::uint64_t>(out, file.checkpoint_id);
  util::put_le<std::uint64_t>(out, file.parent_id);
  util::put_le<std::uint64_t>(out, file.step);
  util::put_le<std::uint64_t>(out, file.time_us);
  util::put_le<std::uint32_t>(out,
                              static_cast<std::uint32_t>(file.sections.size()));

  for (const Section& s : file.sections) {
    const bool chunked = may_chunk && s.payload.size() > chunk_bytes;
    util::put_le<std::uint16_t>(out, static_cast<std::uint16_t>(s.kind));
    util::put_le<std::uint8_t>(out, static_cast<std::uint8_t>(s.codec));
    util::put_le<std::uint8_t>(
        out, chunked ? static_cast<std::uint8_t>(s.flags | kSectionFlagChunked)
                     : s.flags);
    util::put_le<std::uint64_t>(out, s.payload.size());
    if (!chunked) {
      const Bytes encoded = codec::encode(s.codec, s.payload);
      util::put_le<std::uint64_t>(out, encoded.size());
      util::put_le<std::uint32_t>(out, util::crc32c(encoded));
      out.insert(out.end(), encoded.begin(), encoded.end());
      continue;
    }
    // Chunked: compute the frame CRC over the pieces, then lay the frame
    // down directly in `out` — no intermediate full-frame buffer.
    const EncodedChunks ec =
        encode_chunks(s.codec, s.payload, chunk_bytes, options.pool);
    util::Crc32c frame_crc;
    walk_chunk_frame_headers(
        ec, s.payload, chunk_bytes,
        [&](const Bytes& header, std::size_t chunk_after) {
          frame_crc.update(header);
          if (chunk_after != static_cast<std::size_t>(-1)) {
            frame_crc.update(ec.chunks[chunk_after]);
          }
        });
    util::put_le<std::uint64_t>(out, ec.frame_size);
    util::put_le<std::uint32_t>(out, frame_crc.value());
    out.reserve(out.size() + ec.frame_size);
    walk_chunk_frame_headers(
        ec, s.payload, chunk_bytes,
        [&](const Bytes& header, std::size_t chunk_after) {
          out.insert(out.end(), header.begin(), header.end());
          if (chunk_after != static_cast<std::size_t>(-1)) {
            out.insert(out.end(), ec.chunks[chunk_after].begin(),
                       ec.chunks[chunk_after].end());
          }
        });
  }

  util::put_le<std::uint64_t>(out, util::crc64(out));
  put_magic(out, kFooterMagic);
  return out;
}

namespace {

/// Shared parse loop. In strict mode any problem throws; in salvage mode
/// problems are recorded and parsing continues where possible.
CheckpointFile parse(ByteSpan data, bool strict, bool* fully_intact,
                     std::vector<std::string>* notes) {
  auto fail = [&](const std::string& what) {
    if (strict) {
      throw CorruptCheckpoint(what);
    }
    if (notes) {
      notes->push_back(what);
    }
    if (fully_intact) {
      *fully_intact = false;
    }
  };

  if (!check_magic(data, 0, kMagic)) {
    throw CorruptCheckpoint("bad magic");
  }

  // Footer first: covers truncation of any length.
  bool footer_ok = data.size() >= kFooterSize + 4 &&
                   check_magic(data, data.size() - 4, kFooterMagic);
  if (footer_ok) {
    std::size_t off = data.size() - kFooterSize;
    const auto stored = util::get_le<std::uint64_t>(data, off);
    const auto computed = util::crc64(data.first(data.size() - kFooterSize));
    footer_ok = stored == computed;
  }
  if (!footer_ok) {
    fail("footer missing or file CRC64 mismatch (truncated file?)");
  }

  std::size_t off = 4;
  CheckpointFile file;
  const auto version = util::get_le<std::uint16_t>(data, off);
  if (version < kMinFormatVersion || version > kFormatVersion) {
    throw CorruptCheckpoint("unsupported version " + std::to_string(version));
  }
  (void)util::get_le<std::uint16_t>(data, off);  // file flags
  file.checkpoint_id = util::get_le<std::uint64_t>(data, off);
  file.parent_id = util::get_le<std::uint64_t>(data, off);
  file.step = util::get_le<std::uint64_t>(data, off);
  file.time_us = util::get_le<std::uint64_t>(data, off);
  const auto n_sections = util::get_le<std::uint32_t>(data, off);

  const std::size_t body_end =
      footer_ok ? data.size() - kFooterSize : data.size();

  for (std::uint32_t i = 0; i < n_sections; ++i) {
    Section s;
    std::uint64_t raw_len = 0;
    std::uint64_t enc_len = 0;
    std::uint32_t crc = 0;
    try {
      s.kind = static_cast<SectionKind>(util::get_le<std::uint16_t>(data, off));
      s.codec = static_cast<codec::CodecId>(util::get_le<std::uint8_t>(data, off));
      s.flags = util::get_le<std::uint8_t>(data, off);
      raw_len = util::get_le<std::uint64_t>(data, off);
      enc_len = util::get_le<std::uint64_t>(data, off);
      crc = util::get_le<std::uint32_t>(data, off);
    } catch (const std::out_of_range&) {
      fail("section " + std::to_string(i) + ": truncated header");
      return file;
    }
    // Overflow-safe truncation check: a crafted enc_len near 2^64 must not
    // wrap past body_end and reach subspan with an out-of-range count.
    if (off > body_end || enc_len > body_end - off) {
      fail("section " + section_kind_name(s.kind) + ": truncated payload");
      return file;
    }
    const ByteSpan encoded = data.subspan(off, enc_len);
    off += enc_len;

    if (util::crc32c(encoded) != crc) {
      fail("section " + section_kind_name(s.kind) + ": CRC32C mismatch");
      continue;  // salvage mode: skip this section, keep going
    }
    try {
      if ((s.flags & kSectionFlagChunked) != 0) {
        if (version < 2) {
          throw std::runtime_error("chunked section in a version-1 file");
        }
        s.payload = decode_chunked_payload(s.codec, encoded, raw_len);
        s.flags &= static_cast<std::uint8_t>(~kSectionFlagChunked);
      } else {
        s.payload = codec::decode(s.codec, encoded, raw_len);
      }
    } catch (const std::exception& e) {
      fail("section " + section_kind_name(s.kind) +
           ": decode failed: " + e.what());
      continue;
    }
    file.sections.push_back(std::move(s));
  }
  return file;
}

}  // namespace

CheckpointFile decode_checkpoint(ByteSpan data) {
  return parse(data, /*strict=*/true, nullptr, nullptr);
}

SalvageResult salvage_checkpoint(ByteSpan data) {
  SalvageResult result;
  result.fully_intact = true;
  try {
    result.file = parse(data, /*strict=*/false, &result.fully_intact,
                        &result.notes);
  } catch (const std::exception& e) {
    result.fully_intact = false;
    result.notes.push_back(e.what());
    result.file = std::nullopt;
  }
  return result;
}

}  // namespace qnn::ckpt

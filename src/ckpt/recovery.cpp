#include "ckpt/recovery.hpp"

#include <algorithm>
#include <map>

#include "ckpt/cas.hpp"
#include "ckpt/state_codec.hpp"
#include "ckpt/wal.hpp"
#include "codec/xor_delta.hpp"
#include "tier/tiered_env.hpp"

namespace qnn::ckpt {

namespace {

/// Reads + strictly decodes one checkpoint file by manifest entry (or raw
/// file name), resolving content-addressed sections through `source`.
/// Throws on any problem.
CheckpointFile read_one(io::Env& env, const std::string& dir,
                        const std::string& file_name, ChunkSource* source) {
  const auto data = env.read_file(dir + "/" + file_name);
  if (!data) {
    throw CorruptCheckpoint("file missing: " + file_name);
  }
  return decode_checkpoint(*data, DecodeOptions{.source = source});
}

/// Candidate list: manifest entries if present, else directory scan.
/// Manifest damage (unparseable lines) is reported through `notes`.
std::vector<ManifestEntry> candidates(io::Env& env, const std::string& dir,
                                      std::vector<std::string>& notes) {
  Manifest manifest = Manifest::load(env, dir);
  if (manifest.parse_warnings() > 0) {
    notes.push_back("manifest: skipped " +
                    std::to_string(manifest.parse_warnings()) +
                    " unparseable line(s)");
  }
  if (!manifest.entries().empty()) {
    return manifest.entries();
  }
  // Manifest missing or empty: let the files speak. Parent links and steps
  // are recovered from the file headers during resolution.
  std::vector<ManifestEntry> found;
  for (const std::string& name : env.list_dir(dir)) {
    if (const auto id = parse_checkpoint_file_name(name)) {
      ManifestEntry e;
      e.id = *id;
      e.file = name;
      found.push_back(e);
    }
  }
  std::sort(found.begin(), found.end(),
            [](const ManifestEntry& a, const ManifestEntry& b) {
              return a.id < b.id;
            });
  return found;
}

/// Fully resolves checkpoint `id`: loads its ancestor chain and applies
/// XOR deltas root-to-leaf. Returns resolved (non-delta) sections.
/// A v3 file's extern sections resolve through `source` (the
/// directory's chunk store — shared across candidates so its packfile
/// scan happens once per recovery, not once per attempt); a missing or
/// corrupt chunk throws like any other damage, so callers fall back to
/// older candidates instead of accepting it.
std::vector<Section> resolve_chain(io::Env& env, const std::string& dir,
                                   std::uint64_t id,
                                   const RecoveryOptions& options,
                                   ChunkSource* source,
                                   std::size_t* depth_out = nullptr) {
  // Collect leaf -> root.
  std::vector<CheckpointFile> chain;
  std::uint64_t cur = id;
  while (cur != 0) {
    if (chain.size() >= options.max_chain) {
      throw CorruptCheckpoint("incremental chain too long or cyclic");
    }
    CheckpointFile file =
        read_one(env, dir, checkpoint_file_name(cur), source);
    if (file.checkpoint_id != cur) {
      throw CorruptCheckpoint("checkpoint id does not match file name");
    }
    const std::uint64_t parent = file.parent_id;
    chain.push_back(std::move(file));
    cur = parent;
  }
  if (depth_out != nullptr) {
    *depth_out = chain.size();
  }

  // Root first; fold deltas forward.
  std::map<SectionKind, Bytes> resolved;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    for (const Section& s : it->sections) {
      if (s.is_delta()) {
        const auto base = resolved.find(s.kind);
        if (base == resolved.end()) {
          throw CorruptCheckpoint("delta section " + section_kind_name(s.kind) +
                                  " has no base in ancestor chain");
        }
        resolved[s.kind] = codec::xor_with_parent(s.payload, base->second);
      } else {
        resolved[s.kind] = s.payload;
      }
    }
  }

  std::vector<Section> sections;
  sections.reserve(resolved.size());
  for (auto& [kind, payload] : resolved) {
    sections.push_back(Section{.kind = kind,
                               .codec = codec::CodecId::kRaw,
                               .flags = 0,
                               .payload = std::move(payload)});
  }
  return sections;
}

}  // namespace

qnn::TrainingState load_checkpoint(io::Env& env, const std::string& dir,
                                   std::uint64_t id,
                                   const RecoveryOptions& options) {
  ChunkStore cas(env, dir);
  return sections_to_state(resolve_chain(env, dir, id, options, &cas));
}

std::optional<RecoveryOutcome> recover_latest(io::Env& env,
                                              const std::string& dir) {
  return recover_latest(env, dir, RecoveryOptions{});
}

std::optional<RecoveryOutcome> recover_latest_any(
    const std::vector<io::Env*>& replicas, const std::string& dir) {
  std::optional<RecoveryOutcome> best;
  std::vector<std::string> notes;
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    auto outcome = recover_latest(*replicas[i], dir);
    if (!outcome) {
      notes.push_back("replica " + std::to_string(i) +
                      ": no usable checkpoint");
      continue;
    }
    outcome->notes.push_back("recovered from replica " + std::to_string(i));
    if (!best || outcome->step > best->step) {
      best = std::move(outcome);
    }
  }
  if (best) {
    best->notes.insert(best->notes.end(), notes.begin(), notes.end());
  }
  return best;
}

std::optional<RecoveryOutcome> recover_latest(io::Env& env,
                                              const std::string& dir,
                                              const RecoveryOptions& options) {
  std::vector<std::string> notes;
  // Flight recorder: every structured event is appended here in order
  // (and mirrored to the tracer when one is mounted), accumulating
  // across failed candidates exactly like the prose notes.
  std::vector<FlightEvent> events;
  const auto record =
      [&](std::string name,
          std::vector<std::pair<std::string, std::string>> kv) {
        if (options.tracer != nullptr) {
          std::vector<obs::Tracer::Arg> args;
          args.reserve(kv.size());
          for (const auto& [k, v] : kv) {
            args.push_back({k, obs::Tracer::json_string(v)});
          }
          options.tracer->instant(name, "recovery", std::move(args));
        }
        events.push_back(FlightEvent{std::move(name), std::move(kv)});
      };
  obs::Span root(options.tracer, "recover_latest", "recovery");

  // On a tiered Env, report how much of the recovery was served by the
  // capacity tier (and promoted back read-through): the hot-hit vs
  // cold-promote asymmetry is the tier policy's recovery-latency cost.
  auto* tiered = dynamic_cast<tier::TieredEnv*>(&env);
  const std::uint64_t cold_reads_before = tiered ? tiered->cold_reads() : 0;
  const std::uint64_t cold_bytes_before =
      tiered ? tiered->cold_read_bytes() : 0;
  const std::uint64_t promoted_before = tiered ? tiered->promoted_files() : 0;
  const std::size_t notes_before_scan = notes.size();
  const auto entries = candidates(env, dir, notes);
  record("manifest.scan",
         {{"candidates", std::to_string(entries.size())},
          {"source", notes.size() == notes_before_scan && !entries.empty()
                         ? "manifest"
                         : "rescan-or-damaged"}});

  // One chunk store for all candidate attempts (lazy: packfiles are
  // only scanned if some candidate actually has extern sections).
  ChunkStore cas(env, dir);
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    obs::Span attempt(options.tracer, "candidate", "recovery", root.id());
    attempt.note("id", it->id);
    try {
      RecoveryOutcome outcome;
      record("candidate.try", {{"id", std::to_string(it->id)}});
      std::size_t chain_depth = 0;
      std::vector<Section> sections =
          resolve_chain(env, dir, it->id, options, &cas, &chain_depth);
      record("chain.resolved",
             {{"id", std::to_string(it->id)},
              {"depth", std::to_string(chain_depth)},
              {"sections", std::to_string(sections.size())}});
      // Redo-only journal replay: fold the candidate's delta journal
      // (wal-<id>.qwal) into its resolved sections, up to the last
      // record whose frame CRC validates; torn tails are truncated.
      // Replay is read-only and deterministic, so running it again after
      // an interrupted recovery reproduces the identical state. A replay
      // that yields an unloadable state falls back to the base sections
      // — the journal must never make recovery worse.
      if (env.exists(dir + "/" + wal_file_name(it->id))) {
        std::map<SectionKind, Bytes> resolved;
        for (const Section& s : sections) {
          resolved[s.kind] = s.payload;
        }
        if (const auto replay = replay_wal(env, dir, it->id, resolved)) {
          std::vector<Section> replayed;
          replayed.reserve(resolved.size());
          for (auto& [kind, payload] : resolved) {
            replayed.push_back(Section{.kind = kind,
                                       .codec = codec::CodecId::kRaw,
                                       .flags = 0,
                                       .payload = std::move(payload)});
          }
          try {
            outcome.state = sections_to_state(replayed);
            sections.clear();
            record("wal.replay",
                   {{"id", std::to_string(it->id)},
                    {"records", std::to_string(replay->records_applied)},
                    {"step", std::to_string(replay->step)},
                    {"torn_bytes", std::to_string(replay->torn_bytes)}});
            notes.push_back(
                wal_file_name(it->id) + ": replayed " +
                std::to_string(replay->records_applied) +
                " record(s) to step " + std::to_string(replay->step) +
                (replay->torn_bytes > 0
                     ? " (" + std::to_string(replay->torn_bytes) +
                           " torn byte(s) truncated)"
                     : ""));
          } catch (const std::exception& e) {
            record("wal.replay_unloadable",
                   {{"id", std::to_string(it->id)}, {"error", e.what()}});
            notes.push_back(wal_file_name(it->id) +
                            ": replayed state unloadable (" + e.what() +
                            "), using the base checkpoint");
          }
        }
      }
      if (!sections.empty()) {
        outcome.state = sections_to_state(sections);
      }
      outcome.checkpoint_id = it->id;
      outcome.step = outcome.state.step;
      outcome.notes = notes;
      if (tiered && tiered->cold_reads() > cold_reads_before) {
        record("tier.promoted",
               {{"cold_reads",
                 std::to_string(tiered->cold_reads() - cold_reads_before)},
                {"cold_bytes", std::to_string(tiered->cold_read_bytes() -
                                              cold_bytes_before)},
                {"promoted",
                 std::to_string(tiered->promoted_files() - promoted_before)}});
        outcome.notes.push_back(
            "tier: " +
            std::to_string(tiered->cold_reads() - cold_reads_before) +
            " cold read(s), " +
            std::to_string(tiered->cold_read_bytes() - cold_bytes_before) +
            " bytes, " +
            std::to_string(tiered->promoted_files() - promoted_before) +
            " object(s) promoted hot");
      }
      record("recovered", {{"id", std::to_string(it->id)},
                           {"step", std::to_string(outcome.step)}});
      outcome.events = std::move(events);
      return outcome;
    } catch (const std::exception& e) {
      record("candidate.reject",
             {{"id", std::to_string(it->id)}, {"error", e.what()}});
      notes.push_back("ckpt " + std::to_string(it->id) + ": " + e.what());
    }
  }
  return std::nullopt;
}

}  // namespace qnn::ckpt

#include "ckpt/wal.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "ckpt/state_codec.hpp"
#include "codec/xor_delta.hpp"
#include "util/bytes.hpp"
#include "util/crc.hpp"

namespace qnn::ckpt {

namespace {

constexpr char kWalMagic[4] = {'Q', 'W', 'A', 'L'};
constexpr std::uint16_t kWalVersion = 1;
/// magic(4) + version(2) + epoch(8) + base_step(8) + crc(4).
constexpr std::size_t kWalHeaderSize = 26;
/// payload_len(8) + crc(4).
constexpr std::size_t kFramePrefixSize = 12;

Bytes encode_header(std::uint64_t epoch, std::uint64_t base_step) {
  Bytes out;
  out.insert(out.end(), kWalMagic, kWalMagic + sizeof(kWalMagic));
  util::put_le<std::uint16_t>(out, kWalVersion);
  util::put_le<std::uint64_t>(out, epoch);
  util::put_le<std::uint64_t>(out, base_step);
  util::put_le<std::uint32_t>(out, util::crc32c(out));
  return out;
}

/// One decoded (but not yet applied) record section.
struct RecordSection {
  SectionKind kind;
  std::uint8_t flags;
  Bytes payload;
};

struct Record {
  std::uint64_t step = 0;
  std::vector<RecordSection> sections;
};

/// Parses a CRC-validated frame payload; throws std::out_of_range /
/// std::runtime_error on malformed contents (treated as a torn tail by
/// the callers — a valid CRC over garbage means the writer never wrote
/// it, so the bytes past the previous frame are not a record).
Record parse_record(ByteSpan payload) {
  Record rec;
  std::size_t off = 0;
  rec.step = util::get_le<std::uint64_t>(payload, off);
  const auto n = util::get_le<std::uint32_t>(payload, off);
  rec.sections.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    RecordSection s;
    s.kind =
        static_cast<SectionKind>(util::get_le<std::uint16_t>(payload, off));
    s.flags = util::get_le<std::uint8_t>(payload, off);
    s.payload = util::get_bytes(payload, off);
    rec.sections.push_back(std::move(s));
  }
  if (off != payload.size()) {
    throw std::runtime_error("wal record: trailing bytes");
  }
  return rec;
}

/// Shared frame walk for scan/replay: validates the header, then calls
/// `on_record` for each fully-framed record until the first torn or
/// invalid frame. Returns nullopt when the header is unusable.
template <typename OnRecord>
std::optional<WalScan> walk_wal(io::Env& env, const std::string& dir,
                                std::uint64_t epoch, OnRecord&& on_record) {
  const auto data = env.read_file(dir + "/" + wal_file_name(epoch));
  if (!data || data->size() < kWalHeaderSize) {
    return std::nullopt;
  }
  const ByteSpan bytes(*data);
  if (!std::equal(kWalMagic, kWalMagic + sizeof(kWalMagic), bytes.begin())) {
    return std::nullopt;
  }
  std::size_t off = sizeof(kWalMagic);
  const auto version = util::get_le<std::uint16_t>(bytes, off);
  const auto file_epoch = util::get_le<std::uint64_t>(bytes, off);
  const auto base_step = util::get_le<std::uint64_t>(bytes, off);
  const auto header_crc = util::get_le<std::uint32_t>(bytes, off);
  if (version != kWalVersion || file_epoch != epoch ||
      header_crc != util::crc32c(bytes.first(kWalHeaderSize - 4))) {
    return std::nullopt;
  }
  WalScan scan;
  scan.epoch = epoch;
  scan.base_step = base_step;
  scan.last_step = base_step;
  scan.valid_bytes = kWalHeaderSize;
  while (off + kFramePrefixSize <= bytes.size()) {
    std::size_t frame_off = off;
    const auto payload_len = util::get_le<std::uint64_t>(bytes, frame_off);
    const auto frame_crc = util::get_le<std::uint32_t>(bytes, frame_off);
    if (payload_len > bytes.size() - frame_off) {
      break;  // torn frame: the length outruns the durable bytes
    }
    const ByteSpan payload = bytes.subspan(frame_off, payload_len);
    if (frame_crc !=
        util::crc32c(payload, util::crc32c(bytes.subspan(off, 8)))) {
      break;  // torn or corrupt frame
    }
    Record rec;
    try {
      rec = parse_record(payload);
    } catch (const std::exception&) {
      break;  // CRC-valid but malformed: not something the writer framed
    }
    if (!on_record(rec)) {
      break;  // inapplicable record (e.g. delta with no base): stop redo
    }
    off = frame_off + payload_len;
    ++scan.records;
    scan.last_step = rec.step;
    scan.valid_bytes = off;
  }
  scan.torn_bytes = bytes.size() - scan.valid_bytes;
  return scan;
}

}  // namespace

std::string wal_file_name(std::uint64_t epoch) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%010llu.qwal",
                static_cast<unsigned long long>(epoch));
  return buf;
}

std::optional<std::uint64_t> parse_wal_file_name(const std::string& name) {
  // "wal-" + 10 digits + ".qwal" = 19 chars.
  if (name.size() != 19 || name.rfind("wal-", 0) != 0 ||
      name.compare(14, 5, ".qwal") != 0) {
    return std::nullopt;
  }
  std::uint64_t epoch = 0;
  for (std::size_t i = 4; i < 14; ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') {
      return std::nullopt;
    }
    epoch = epoch * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return epoch;
}

std::optional<WalScan> scan_wal(io::Env& env, const std::string& dir,
                                std::uint64_t epoch) {
  return walk_wal(env, dir, epoch, [](const Record&) { return true; });
}

std::optional<WalReplay> replay_wal(io::Env& env, const std::string& dir,
                                    std::uint64_t epoch,
                                    std::map<SectionKind, Bytes>& sections) {
  std::map<SectionKind, Bytes> resolved = sections;
  std::uint64_t applied = 0;
  std::uint64_t step = 0;
  const auto scan =
      walk_wal(env, dir, epoch, [&](const Record& rec) {
        // Validate the whole record against the running state before
        // committing any section of it: records apply atomically.
        for (const RecordSection& s : rec.sections) {
          if ((s.flags & kSectionFlagDelta) != 0) {
            const auto base = resolved.find(s.kind);
            if (base == resolved.end() ||
                base->second.size() != s.payload.size()) {
              return false;
            }
          }
        }
        for (const RecordSection& s : rec.sections) {
          if ((s.flags & kSectionFlagDelta) != 0) {
            resolved[s.kind] =
                codec::xor_with_parent(s.payload, resolved[s.kind]);
          } else {
            resolved[s.kind] = s.payload;
          }
        }
        ++applied;
        step = rec.step;
        return true;
      });
  if (!scan || applied == 0) {
    return std::nullopt;
  }
  sections = std::move(resolved);
  return WalReplay{applied, step, scan->torn_bytes};
}

WalWriter::WalWriter(io::Env& env, const std::string& dir, std::uint64_t epoch,
                     WalPolicy policy, const qnn::TrainingState& base,
                     bool include_simulator)
    : env_(env),
      epoch_(epoch),
      policy_(policy),
      include_simulator_(include_simulator) {
  for (Section& s :
       state_to_sections(base, include_simulator_, codec::CodecId::kRaw)) {
    last_raw_[s.kind] = std::move(s.payload);
  }
  // kPlain truncates at open, so a stale log under the same name (id
  // reuse after a crash) can never leak records into this epoch.
  out_ = env_.new_writable(dir + "/" + wal_file_name(epoch_),
                           io::WriteMode::kPlain);
  const Bytes header = encode_header(epoch_, base.step);
  out_->append(header);
  out_->sync();  // the log must exist durably before records ride the cache
  ++syncs_;
  bytes_ = header.size();
}

WalWriter::~WalWriter() {
  try {
    close();
  } catch (...) {
    // Destruction during unwind (e.g. a scheduled crash) must not throw;
    // the torn tail is exactly what recovery is built to truncate.
  }
}

void WalWriter::log_step(const qnn::TrainingState& state) {
  Bytes payload;
  util::put_le<std::uint64_t>(payload, state.step);
  auto sections =
      state_to_sections(state, include_simulator_, codec::CodecId::kRaw);
  util::put_le<std::uint32_t>(payload,
                              static_cast<std::uint32_t>(sections.size()));
  for (Section& s : sections) {
    std::uint8_t flags = 0;
    const auto base = last_raw_.find(s.kind);
    if (base != last_raw_.end() && base->second.size() == s.payload.size()) {
      Bytes delta = codec::xor_with_parent(s.payload, base->second);
      base->second = std::move(s.payload);
      s.payload = std::move(delta);
      flags |= kSectionFlagDelta;
    } else {
      // Size changed (e.g. a growing loss history): log raw.
      last_raw_[s.kind] = s.payload;
    }
    util::put_le<std::uint16_t>(payload, static_cast<std::uint16_t>(s.kind));
    util::put_le<std::uint8_t>(payload, flags);
    util::put_bytes(payload, s.payload);
  }
  Bytes frame;
  util::put_le<std::uint64_t>(frame, payload.size());
  util::put_le<std::uint32_t>(frame,
                              util::crc32c(payload, util::crc32c(frame)));
  frame.insert(frame.end(), payload.begin(), payload.end());
  out_->append(frame);  // one append = one crash-atomic frame boundary
  bytes_ += frame.size();
  ++records_;
  ++unsynced_;
  if (unsynced_ >= std::max<std::uint64_t>(policy_.group_commit_steps, 1)) {
    sync();
  }
}

void WalWriter::sync() {
  if (out_ == nullptr || unsynced_ == 0) {
    return;
  }
  out_->sync();
  ++syncs_;
  unsynced_ = 0;
}

void WalWriter::close() {
  if (out_ == nullptr) {
    return;
  }
  sync();
  out_->close();
  out_.reset();
}

}  // namespace qnn::ckpt

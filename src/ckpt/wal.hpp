// WAL-style delta journal between full checkpoint installs.
//
// Whole-container installs bound the lost work after a crash by the
// checkpoint interval; the journal shrinks that term to *replay time*.
// After every install the Checkpointer opens `wal-<epoch>.qwal` (epoch =
// the installed checkpoint's id) and appends one framed record per
// training step; recovery loads the newest resolvable checkpoint and
// redo-replays its journal up to the last record whose frame CRC
// validates, truncating torn tails.
//
// On-disk layout (all integers little-endian):
//
//   header   "QWAL" u16 version  u64 epoch  u64 base_step  u32 crc32c
//            (crc over the preceding 22 bytes)
//   record*  u64 payload_len  u32 crc32c(le64(payload_len) || payload)
//            payload
//
// A record's payload is `u64 step, u32 n_sections, { u16 kind, u8 flags,
// u64 len, bytes }*` — the step's state as raw section payloads, each
// XOR-delta'd (kSectionFlagDelta) against the previous record's resolved
// payload when the sizes match, raw otherwise. The first record deltas
// against the epoch's installed state.
//
// Crash model: the log is written on the streamed kPlain append path —
// one append per record — so a crash tears the file at an append/byte
// boundary and the torn frame fails its CRC (or underruns). Group
// commit: the writer syncs the handle every `group_commit_steps`
// records; records between sync points ride the device's write cache.
// Replay is read-only and a pure function of (base checkpoint, valid
// frame prefix), so replaying the same journal twice — e.g. a crash
// during recovery followed by a second recovery — yields a
// digest-identical state.
//
// What is and is not guaranteed between full installs:
//   * a fully-framed record is recovered iff its bytes were durable —
//     records since the last sync point may be lost with the write cache;
//   * torn tails are detected (length underrun or CRC mismatch) and
//     ignored, never applied partially;
//   * the journal never outlives its base: stores reap logs whose epoch
//     the manifest no longer advertises, and the active log is pinned.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "ckpt/format.hpp"
#include "io/env.hpp"
#include "qnn/training_state.hpp"

namespace qnn::ckpt {

struct WalPolicy {
  bool enable = false;
  /// Group commit: sync the log handle every this many records
  /// (0 or 1 = sync every record).
  std::uint64_t group_commit_steps = 8;
  /// Compaction budget: once the active log exceeds this many bytes the
  /// Checkpointer folds it into a normal install and rotates. 0 = never
  /// compact on size.
  std::uint64_t max_log_bytes = std::uint64_t{4} << 20;
};

/// Canonical journal file name for an epoch: "wal-0000000042.qwal".
std::string wal_file_name(std::uint64_t epoch);

/// Parses an epoch back out of a journal file name; nullopt when the
/// name does not match the canonical pattern.
std::optional<std::uint64_t> parse_wal_file_name(const std::string& name);

/// Frame-level scan summary of one journal (no state reconstruction).
struct WalScan {
  std::uint64_t epoch = 0;
  std::uint64_t base_step = 0;
  std::uint64_t records = 0;      ///< fully-framed records
  std::uint64_t last_step = 0;    ///< step of the last valid record
  std::uint64_t valid_bytes = 0;  ///< header + valid frames
  std::uint64_t torn_bytes = 0;   ///< ignored tail past the last valid frame
};

/// Frame-validates `dir`/wal-<epoch>.qwal. nullopt when the file is
/// missing or its header is unusable (torn, wrong magic/version, or an
/// epoch that does not match the file name — a stale log must never
/// masquerade as the active one).
std::optional<WalScan> scan_wal(io::Env& env, const std::string& dir,
                                std::uint64_t epoch);

/// Result of folding a journal into a base checkpoint's sections.
struct WalReplay {
  std::uint64_t records_applied = 0;
  std::uint64_t step = 0;  ///< step of the last applied record
  std::uint64_t torn_bytes = 0;
};

/// Redo-only replay: folds every fully-framed record of
/// `dir`/wal-<epoch>.qwal into `sections` (the base checkpoint's
/// resolved raw payloads keyed by kind), stopping at the first torn or
/// CRC-invalid frame. Records are applied atomically: a record that
/// parses but cannot apply (a delta with no equal-sized base) stops the
/// replay without touching `sections`. Returns nullopt — with `sections`
/// untouched — when there is no usable journal or it holds zero valid
/// records.
std::optional<WalReplay> replay_wal(io::Env& env, const std::string& dir,
                                    std::uint64_t epoch,
                                    std::map<SectionKind, Bytes>& sections);

/// Append-side of the journal: opened by the Checkpointer right after an
/// install, closed (and superseded) by the next rotation.
class WalWriter {
 public:
  /// Creates (truncating any stale same-name log) `dir`/wal-<epoch>.qwal
  /// and writes the header. `base` is the freshly-installed state the
  /// first record deltas against.
  WalWriter(io::Env& env, const std::string& dir, std::uint64_t epoch,
            WalPolicy policy, const qnn::TrainingState& base,
            bool include_simulator);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one framed record for `state` (one plain-stream append =
  /// one crash-atomic frame), group-committing per policy.
  void log_step(const qnn::TrainingState& state);

  /// Explicit group-commit point (idempotent when nothing is pending).
  void sync();

  /// Final sync + handle close. Further log_step calls are invalid.
  void close();

  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  [[nodiscard]] std::uint64_t records() const { return records_; }
  [[nodiscard]] std::uint64_t bytes_logged() const { return bytes_; }
  [[nodiscard]] std::uint64_t syncs() const { return syncs_; }
  [[nodiscard]] bool over_budget() const {
    return policy_.max_log_bytes > 0 && bytes_ > policy_.max_log_bytes;
  }

 private:
  io::Env& env_;
  const std::uint64_t epoch_;
  const WalPolicy policy_;
  const bool include_simulator_;
  std::unique_ptr<io::WritableFile> out_;
  /// Previous record's resolved raw payloads (XOR-delta bases).
  std::map<SectionKind, Bytes> last_raw_;
  std::uint64_t records_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t syncs_ = 0;
  std::uint64_t unsynced_ = 0;
};

}  // namespace qnn::ckpt

#include "ckpt/manifest.hpp"

#include <algorithm>
#include <sstream>

#include "util/strings.hpp"

namespace qnn::ckpt {

namespace {
constexpr const char* kManifestName = "MANIFEST";
constexpr const char* kHeader = "qnnckpt-manifest v1";

std::string manifest_path(const std::string& dir) {
  return dir + "/" + kManifestName;
}

std::optional<ManifestEntry> parse_line(const std::string& line) {
  // "ckpt id=1 parent=0 step=10 bytes=123 file=ckpt-0000000001.qckp"
  const auto fields = util::split(util::trim(line), ' ');
  if (fields.empty() || fields[0] != "ckpt") {
    return std::nullopt;
  }
  ManifestEntry e;
  bool have_id = false, have_file = false;
  for (std::size_t i = 1; i < fields.size(); ++i) {
    const auto kv = util::split(fields[i], '=');
    if (kv.size() != 2) {
      return std::nullopt;
    }
    try {
      if (kv[0] == "id") {
        e.id = std::stoull(kv[1]);
        have_id = true;
      } else if (kv[0] == "parent") {
        e.parent_id = std::stoull(kv[1]);
      } else if (kv[0] == "step") {
        e.step = std::stoull(kv[1]);
      } else if (kv[0] == "bytes") {
        e.bytes = std::stoull(kv[1]);
      } else if (kv[0] == "file") {
        e.file = kv[1];
        have_file = true;
      }  // unknown keys ignored (forward compatibility)
    } catch (const std::exception&) {
      return std::nullopt;
    }
  }
  if (!have_id || !have_file) {
    return std::nullopt;
  }
  return e;
}

/// "stat dropped_writes=3" -> {"dropped_writes", 3}.
std::optional<std::pair<std::string, std::uint64_t>> parse_stat_line(
    const std::string& line) {
  const auto fields = util::split(util::trim(line), ' ');
  if (fields.size() != 2 || fields[0] != "stat") {
    return std::nullopt;
  }
  const auto kv = util::split(fields[1], '=');
  if (kv.size() != 2 || kv[0].empty()) {
    return std::nullopt;
  }
  try {
    return std::make_pair(kv[0], std::stoull(kv[1]));
  } catch (const std::exception&) {
    return std::nullopt;
  }
}
}  // namespace

Manifest Manifest::load(io::Env& env, const std::string& dir) {
  Manifest m;
  const auto data = env.read_file(manifest_path(dir));
  if (!data) {
    return m;
  }
  const std::string text(data->begin(), data->end());
  const auto lines = util::split(text, '\n');
  // save() terminates every line, so a file that does not end in '\n'
  // was torn mid-line. A torn tail can still be well-formed — "stat
  // dropped_writes=12" torn to "...=1", or a file= name cut one char
  // short — so parsing it would silently shadow the real value with a
  // truncated one. Never parse it; count it as damage instead.
  const bool torn_tail = !text.empty() && text.back() != '\n';
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (torn_tail && i + 1 == lines.size()) {
      if (!util::trim(line).empty()) {
        ++m.parse_warnings_;
      }
      continue;
    }
    if (auto entry = parse_line(line)) {
      m.upsert(*entry);
      continue;
    }
    if (auto stat = parse_stat_line(line)) {
      m.stats_[stat->first] = stat->second;
      continue;
    }
    const std::string trimmed = util::trim(line);
    if (!trimmed.empty() && trimmed != kHeader) {
      ++m.parse_warnings_;  // torn trailing line, damage, unknown record
    }
  }
  return m;
}

void Manifest::save(io::Env& env, const std::string& dir) const {
  std::ostringstream os;
  os << kHeader << "\n";
  for (const auto& [key, value] : stats_) {
    os << "stat " << key << "=" << value << "\n";
  }
  for (const ManifestEntry& e : entries_) {
    os << "ckpt id=" << e.id << " parent=" << e.parent_id
       << " step=" << e.step << " bytes=" << e.bytes << " file=" << e.file
       << "\n";
  }
  const std::string text = os.str();
  env.write_file_atomic(
      manifest_path(dir),
      util::ByteSpan{reinterpret_cast<const std::uint8_t*>(text.data()),
                     text.size()});
}

std::uint64_t Manifest::stat(const std::string& key) const {
  const auto it = stats_.find(key);
  return it == stats_.end() ? 0 : it->second;
}

void Manifest::set_stat(const std::string& key, std::uint64_t value) {
  stats_[key] = value;
}

void Manifest::upsert(const ManifestEntry& entry) {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), entry.id,
      [](const ManifestEntry& e, std::uint64_t id) { return e.id < id; });
  if (it != entries_.end() && it->id == entry.id) {
    *it = entry;
  } else {
    entries_.insert(it, entry);
  }
}

void Manifest::remove(std::uint64_t id) {
  std::erase_if(entries_, [id](const ManifestEntry& e) { return e.id == id; });
}

const ManifestEntry* Manifest::find(std::uint64_t id) const {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), id,
      [](const ManifestEntry& e, std::uint64_t want) { return e.id < want; });
  return it != entries_.end() && it->id == id ? &*it : nullptr;
}

const ManifestEntry* Manifest::latest() const {
  return entries_.empty() ? nullptr : &entries_.back();
}

std::uint64_t Manifest::max_id() const {
  return entries_.empty() ? 0 : entries_.back().id;
}

std::string checkpoint_file_name(std::uint64_t id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "ckpt-%010llu.qckp",
                static_cast<unsigned long long>(id));
  return buf;
}

std::optional<std::uint64_t> parse_checkpoint_file_name(
    const std::string& name) {
  constexpr const char* kPrefix = "ckpt-";
  constexpr const char* kSuffix = ".qckp";
  if (!util::starts_with(name, kPrefix) || name.size() != 20 ||
      name.compare(15, 5, kSuffix) != 0) {
    return std::nullopt;
  }
  std::uint64_t id = 0;
  for (std::size_t i = 5; i < 15; ++i) {
    if (name[i] < '0' || name[i] > '9') {
      return std::nullopt;
    }
    id = id * 10 + static_cast<std::uint64_t>(name[i] - '0');
  }
  return id;
}

}  // namespace qnn::ckpt

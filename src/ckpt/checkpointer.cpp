#include "ckpt/checkpointer.hpp"

#include <algorithm>
#include <cmath>
#include <chrono>

#include "ckpt/state_codec.hpp"
#include "codec/xor_delta.hpp"
#include "util/timer.hpp"

namespace qnn::ckpt {

namespace {
std::uint64_t now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}
}  // namespace

std::string strategy_name(Strategy s) {
  switch (s) {
    case Strategy::kParamsOnly:
      return "params-only";
    case Strategy::kFullState:
      return "full-state";
    case Strategy::kIncremental:
      return "incremental";
  }
  return "unknown";
}

Checkpointer::Checkpointer(io::Env& env, std::string dir,
                           CheckpointPolicy policy)
    : env_(env), dir_(std::move(dir)), policy_(std::move(policy)) {
  if (!policy_.clock) {
    policy_.clock = [] {
      return std::chrono::duration<double>(
                 std::chrono::steady_clock::now().time_since_epoch())
          .count();
    };
  }
  current_interval_ = policy_.every_steps;
  // Resume id allocation after any existing checkpoints in the directory.
  manifest_ = Manifest::load(env_, dir_);
  next_id_ = manifest_.max_id() + 1;
  if (policy_.async) {
    writer_ = std::make_unique<AsyncWriter>(env_);
  }
}

void Checkpointer::update_adaptive_interval(double ckpt_cost_seconds) {
  constexpr double kAlpha = 0.3;  // EWMA weight for fresh samples
  ewma_ckpt_seconds_ = ewma_ckpt_seconds_ <= 0.0
                           ? ckpt_cost_seconds
                           : (1.0 - kAlpha) * ewma_ckpt_seconds_ +
                                 kAlpha * ckpt_cost_seconds;
  if (ewma_step_seconds_ <= 0.0 || ewma_ckpt_seconds_ <= 0.0) {
    return;  // not enough signal yet
  }
  // Young's first-order optimum, converted from seconds to steps.
  const double tau =
      std::sqrt(2.0 * ewma_ckpt_seconds_ * policy_.target_mtbf_seconds);
  const double steps = tau / ewma_step_seconds_;
  current_interval_ = std::clamp<std::uint64_t>(
      static_cast<std::uint64_t>(steps + 0.5), 1, policy_.adaptive_max_steps);
}

Checkpointer::~Checkpointer() {
  if (writer_) {
    writer_->flush();
  }
}

bool Checkpointer::maybe_checkpoint(const qnn::TrainingState& state) {
  // Adaptive mode: learn the per-step wall time from call cadence.
  if (policy_.target_mtbf_seconds > 0.0) {
    const double now = policy_.clock();
    if (last_seen_time_ >= 0.0 && state.step > last_seen_step_) {
      const double per_step = (now - last_seen_time_) /
                              static_cast<double>(state.step - last_seen_step_);
      constexpr double kAlpha = 0.3;
      ewma_step_seconds_ = ewma_step_seconds_ <= 0.0
                               ? per_step
                               : (1.0 - kAlpha) * ewma_step_seconds_ +
                                     kAlpha * per_step;
    }
    last_seen_time_ = now;
    last_seen_step_ = state.step;
  }

  const std::uint64_t interval =
      policy_.target_mtbf_seconds > 0.0 ? current_interval_
                                        : policy_.every_steps;
  if (interval == 0 || state.step == 0 ||
      state.step < last_checkpoint_step_ + interval) {
    return false;
  }
  checkpoint_now(state);
  return true;
}

CheckpointFile Checkpointer::build_file(const qnn::TrainingState& state,
                                        std::uint64_t id) {
  const bool include_sim = policy_.strategy != Strategy::kParamsOnly;
  CheckpointFile file;
  file.checkpoint_id = id;
  file.step = state.step;
  file.time_us = now_us();
  file.sections = state_to_sections(state, include_sim, policy_.codec);

  const bool want_delta = policy_.strategy == Strategy::kIncremental &&
                          last_id_ != 0 &&
                          checkpoints_since_full_ < policy_.full_every;
  if (want_delta) {
    file.parent_id = last_id_;
    std::map<SectionKind, Bytes> current_raw;
    for (Section& s : file.sections) {
      current_raw[s.kind] = s.payload;
      const auto parent = last_raw_.find(s.kind);
      if (parent != last_raw_.end()) {
        s.payload = codec::xor_with_parent(s.payload, parent->second);
        s.flags |= kSectionFlagDelta;
      }
    }
    last_raw_ = std::move(current_raw);
    ++checkpoints_since_full_;
  } else {
    // Full checkpoint (also the delta base for what follows).
    last_raw_.clear();
    for (const Section& s : file.sections) {
      last_raw_[s.kind] = s.payload;
    }
    checkpoints_since_full_ = 1;
  }
  last_id_ = id;
  return file;
}

void Checkpointer::checkpoint_now(const qnn::TrainingState& state) {
  const double t_begin = policy_.clock ? policy_.clock() : 0.0;
  const std::uint64_t id = next_id_++;
  last_checkpoint_step_ = state.step;

  util::Timer encode_timer;
  const CheckpointFile file = build_file(state, id);
  std::uint64_t raw_bytes = 0;
  for (const Section& s : file.sections) {
    raw_bytes += s.payload.size();
  }
  Bytes encoded = encode_checkpoint(file);
  const double encode_seconds = encode_timer.seconds();

  ManifestEntry entry;
  entry.id = id;
  entry.parent_id = file.parent_id;
  entry.step = state.step;
  entry.file = checkpoint_file_name(id);
  entry.bytes = encoded.size();

  {
    std::lock_guard lock(mu_);
    stats_.encode_seconds += encode_seconds;
    stats_.bytes_raw += raw_bytes;
    stats_.bytes_encoded += encoded.size();
    ++stats_.checkpoints;
    if (file.is_incremental()) {
      ++stats_.incremental_checkpoints;
    } else {
      ++stats_.full_checkpoints;
    }
  }

  const std::string path = dir_ + "/" + entry.file;
  if (writer_) {
    util::Timer submit_timer;
    writer_->submit(AsyncWriter::Job{
        .path = path,
        .data = std::move(encoded),
        .on_installed = [this, entry] { install(entry); }});
    std::lock_guard lock(mu_);
    stats_.submit_blocked_seconds += submit_timer.seconds();
  } else {
    util::Timer write_timer;
    env_.write_file_atomic(path, encoded);
    {
      std::lock_guard lock(mu_);
      stats_.sync_write_seconds += write_timer.seconds();
    }
    install(entry);
  }

  if (policy_.target_mtbf_seconds > 0.0) {
    // The training thread paid from t_begin to now (async mode excludes
    // the background write by construction).
    update_adaptive_interval(policy_.clock() - t_begin);
    // The step-cadence clock must not count checkpoint time as step time.
    last_seen_time_ = policy_.clock();
  }
}

void Checkpointer::install(ManifestEntry entry) {
  std::lock_guard lock(mu_);
  manifest_.upsert(entry);
  apply_retention_locked();
  manifest_.save(env_, dir_);
}

void Checkpointer::apply_retention_locked() {
  if (policy_.keep_last == 0) {
    return;
  }
  const auto retained = manifest_.retained_ids(policy_.keep_last);
  std::vector<std::uint64_t> to_delete;
  for (const ManifestEntry& e : manifest_.entries()) {
    if (std::find(retained.begin(), retained.end(), e.id) == retained.end()) {
      to_delete.push_back(e.id);
    }
  }
  for (std::uint64_t id : to_delete) {
    const ManifestEntry* e = manifest_.find(id);
    if (e != nullptr) {
      env_.remove_file(dir_ + "/" + e->file);
    }
    manifest_.remove(id);
  }
}

void Checkpointer::flush() {
  if (writer_) {
    writer_->flush();
  }
}

Checkpointer::Stats Checkpointer::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

}  // namespace qnn::ckpt

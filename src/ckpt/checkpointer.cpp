#include "ckpt/checkpointer.hpp"

#include <algorithm>
#include <cmath>
#include <chrono>

#include "ckpt/state_codec.hpp"
#include "codec/xor_delta.hpp"
#include "util/timer.hpp"

namespace qnn::ckpt {

namespace {
std::uint64_t now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}
}  // namespace

std::string strategy_name(Strategy s) {
  switch (s) {
    case Strategy::kParamsOnly:
      return "params-only";
    case Strategy::kFullState:
      return "full-state";
    case Strategy::kIncremental:
      return "incremental";
  }
  return "unknown";
}

Checkpointer::Checkpointer(io::Env& env, std::string dir,
                           CheckpointPolicy policy)
    : env_(env),
      dir_(std::move(dir)),
      policy_(std::move(policy)),
      store_(env_, dir_, policy_.retention, policy_.tier) {
  if (!policy_.clock) {
    policy_.clock = [] {
      return std::chrono::duration<double>(
                 std::chrono::steady_clock::now().time_since_epoch())
          .count();
    };
  }
  current_interval_ = policy_.every_steps;
  if (policy_.tracer != nullptr) {
    store_.set_observability(policy_.tracer);
  }
  if (policy_.metrics != nullptr) {
    snapshot_hist_ = &policy_.metrics->histogram("ckpt.snapshot");
    encode_hist_ = &policy_.metrics->histogram("ckpt.encode");
    install_hist_ = &policy_.metrics->histogram("ckpt.install");
  }
  if (policy_.encode_queue == 0) {
    policy_.encode_queue = 1;
  }
  if (policy_.wal.enable) {
    // The journal's epoch (its delta base) must be durably installed
    // before records claiming to delta against it are appended; the
    // async pipeline would reorder that, so wal mode runs sync installs.
    policy_.async = false;
  }
  // Keep the lazy-pool trigger in checkpoint_now aligned with the
  // clamp encode_checkpoint applies internally.
  policy_.chunk_bytes = std::max(policy_.chunk_bytes, kMinChunkBytes);
  // Resume id allocation after any existing checkpoints in the directory.
  manifest_ = Manifest::load(env_, dir_);
  next_id_ = manifest_.max_id() + 1;
  next_submit_id_ = next_id_;
  dropped_writes_base_ = manifest_.stat("dropped_writes");
  // Content-addressed mode: load the chunk refcount baseline NOW, while
  // the directory is quiescent. Deferring it into the pipeline would
  // let the rebuild run concurrently with in-flight installs and count
  // a just-written file whose retain() is still pending (double count).
  if (effective_format_version() >= 3) {
    store_.chunks().open();
  }
  // Startup GC: reap files a previous run's crash stranded between a GC
  // fence and its deletions (safe here — nothing is in flight yet).
  store_.sweep_orphans(manifest_);
  if (policy_.async) {
    // Default to half the cores: the encode pipeline runs concurrently
    // with training, whose sim kernels fan out on the global pool —
    // claiming every hardware thread here would oversubscribe the CPU
    // against the very steps async mode is meant to protect.
    pool_ = std::make_unique<util::ThreadPool>(
        policy_.encode_threads == 0
            ? std::max<std::size_t>(
                  1, util::ThreadPool::default_thread_count() / 2)
            : policy_.encode_threads);
    // Parallel writers finish out of order; an incremental chain needs
    // parent-before-child durability, so it gets exactly one writer.
    const std::size_t writer_threads =
        policy_.strategy == Strategy::kIncremental
            ? 1
            : std::max<std::size_t>(1, policy_.writer_threads);
    writer_ = std::make_unique<AsyncWriter>(
        env_, std::max<std::size_t>(2, writer_threads), writer_threads);
  }
}

void Checkpointer::update_adaptive_interval(double ckpt_cost_seconds) {
  constexpr double kAlpha = 0.3;  // EWMA weight for fresh samples
  ewma_ckpt_seconds_ = ewma_ckpt_seconds_ <= 0.0
                           ? ckpt_cost_seconds
                           : (1.0 - kAlpha) * ewma_ckpt_seconds_ +
                                 kAlpha * ckpt_cost_seconds;
  if (ewma_step_seconds_ <= 0.0 || ewma_ckpt_seconds_ <= 0.0) {
    return;  // not enough signal yet
  }
  // Young's first-order optimum, converted from seconds to steps.
  const double tau =
      std::sqrt(2.0 * ewma_ckpt_seconds_ * policy_.target_mtbf_seconds);
  const double steps = tau / ewma_step_seconds_;
  current_interval_ = std::clamp<std::uint64_t>(
      static_cast<std::uint64_t>(steps + 0.5), 1, policy_.adaptive_max_steps);
}

Checkpointer::~Checkpointer() {
  try {
    flush();
  } catch (...) {
    // The final journal sync runs against the live env and can fail
    // (e.g. a scheduled crash mid-teardown); destruction must not
    // throw — recovery truncates whatever tail the failure left.
  }
  // writer_ then pool_ are destroyed after this body; flush() guarantees
  // no encode task is still running when they go.
}

bool Checkpointer::maybe_checkpoint(const qnn::TrainingState& state) {
  // Adaptive mode: learn the per-step wall time from call cadence.
  if (policy_.target_mtbf_seconds > 0.0) {
    const double now = policy_.clock();
    if (last_seen_time_ >= 0.0 && state.step > last_seen_step_) {
      const double per_step = (now - last_seen_time_) /
                              static_cast<double>(state.step - last_seen_step_);
      constexpr double kAlpha = 0.3;
      ewma_step_seconds_ = ewma_step_seconds_ <= 0.0
                               ? per_step
                               : (1.0 - kAlpha) * ewma_step_seconds_ +
                                     kAlpha * per_step;
    }
    last_seen_time_ = now;
    last_seen_step_ = state.step;
  }

  if (!due(state.step)) {
    if (wal_ != nullptr && state.step > last_checkpoint_step_) {
      if (wal_->over_budget()) {
        // Compaction: fold the journal into a normal install, which
        // rotates the log onto the new epoch.
        {
          std::lock_guard lock(mu_);
          ++stats_.wal_compactions;
        }
        if (policy_.tracer != nullptr) {
          policy_.tracer->instant(
              "wal.compact", "wal",
              {{"epoch", std::to_string(wal_->epoch())},
               {"bytes", std::to_string(wal_->bytes_logged())}});
        }
        checkpoint_now(state);
        return true;
      }
      const std::uint64_t before = wal_->bytes_logged();
      wal_->log_step(state);
      if (policy_.tracer != nullptr) {
        policy_.tracer->instant(
            "wal.append", "wal",
            {{"step", std::to_string(state.step)},
             {"bytes", std::to_string(wal_->bytes_logged() - before)}});
      }
      std::lock_guard lock(mu_);
      ++stats_.wal_records;
      stats_.wal_bytes += wal_->bytes_logged() - before;
    }
    return false;
  }
  checkpoint_now(state);
  return true;
}

CheckpointFile Checkpointer::build_file(const qnn::TrainingState& state,
                                        std::uint64_t id) {
  const bool include_sim = policy_.strategy != Strategy::kParamsOnly;
  CheckpointFile file;
  file.checkpoint_id = id;
  file.step = state.step;
  file.time_us = now_us();
  file.sections = state_to_sections(state, include_sim, policy_.codec);

  // Consume the drop-recovery flag unconditionally: if a scheduled full
  // already breaks the chain this round, the flag must not linger and
  // force a second, redundant full next round.
  const bool force_full = force_full_.exchange(false);
  const bool want_delta = policy_.strategy == Strategy::kIncremental &&
                          last_id_ != 0 &&
                          checkpoints_since_full_ < policy_.full_every &&
                          !force_full;
  if (want_delta) {
    file.parent_id = last_id_;
    std::map<SectionKind, Bytes> current_raw;
    for (Section& s : file.sections) {
      const auto parent = last_raw_.find(s.kind);
      if (parent != last_raw_.end()) {
        // Move the raw payload into the delta base instead of copying:
        // this runs on the trainer thread, where every byte counts.
        Bytes delta = codec::xor_with_parent(s.payload, parent->second);
        current_raw[s.kind] = std::move(s.payload);
        s.payload = std::move(delta);
        s.flags |= kSectionFlagDelta;
      } else {
        current_raw[s.kind] = s.payload;  // stays raw in the file too
      }
    }
    last_raw_ = std::move(current_raw);
    ++checkpoints_since_full_;
  } else {
    // Full checkpoint (also the delta base for what follows). Only the
    // incremental strategy ever reads the base — don't spend trainer
    // time copying payloads nobody will diff against.
    last_raw_.clear();
    if (policy_.strategy == Strategy::kIncremental) {
      for (const Section& s : file.sections) {
        last_raw_[s.kind] = s.payload;
      }
    }
    checkpoints_since_full_ = 1;
  }
  last_id_ = id;
  return file;
}

void Checkpointer::checkpoint_now(const qnn::TrainingState& state) {
  const double t_begin = policy_.clock ? policy_.clock() : 0.0;
  const std::uint64_t id = next_id_++;
  last_checkpoint_step_ = state.step;

  // The root span covers the trainer-visible slice; the async encode and
  // install stages run on other threads and link back via its id.
  obs::Span ckpt_span(policy_.tracer, "checkpoint", "ckpt");
  ckpt_span.note("id", id);
  ckpt_span.note("step", state.step);
  const std::uint64_t parent_span = ckpt_span.id();

  if (writer_) {
    // Reserve the reorder-buffer slot (and apply encode backpressure)
    // before any delta bookkeeping: ids must stay contiguous in
    // ready_jobs_ or the ordered drain stalls. If the reservation
    // throws, the id is returned and nothing downstream observed it.
    util::Timer submit_timer;
    std::unique_lock lock(encode_mu_);
    encode_cv_.wait(lock, [this] {
      return pending_encodes_ < policy_.encode_queue;
    });
    try {
      ready_jobs_.emplace(id, PendingEncode{});
    } catch (...) {
      --next_id_;
      throw;
    }
    ++pending_encodes_;
    const double blocked = submit_timer.seconds();
    std::lock_guard stats_lock(mu_);
    stats_.submit_blocked_seconds += blocked;
  }

  // Everything between the slot reservation above and the dispatch below
  // must release the slot on failure, or the ordered drain waits on id
  // forever (see catch at the end of this block).
  try {
  // Trainer-thread stage: snapshot the state into section payloads (plus
  // delta bookkeeping). In async mode this is all the trainer pays for.
  util::Timer snapshot_timer;
  obs::Span snap_span(policy_.tracer, "snapshot", "ckpt", parent_span);
  CheckpointFile file = build_file(state, id);
  std::uint64_t raw_bytes = 0;
  for (const Section& s : file.sections) {
    raw_bytes += s.payload.size();
  }
  snap_span.note("bytes_raw", raw_bytes);
  snap_span.finish();
  const double snapshot_seconds = snapshot_timer.seconds();
  if (snapshot_hist_ != nullptr) {
    snapshot_hist_->record_seconds(snapshot_seconds);
  }

  ManifestEntry entry;
  entry.id = id;
  entry.parent_id = file.parent_id;
  entry.step = state.step;
  entry.file = checkpoint_file_name(id);

  {
    std::lock_guard lock(mu_);
    stats_.snapshot_seconds += snapshot_seconds;
    stats_.bytes_raw += raw_bytes;
    ++stats_.checkpoints;
    if (file.is_incremental()) {
      ++stats_.incremental_checkpoints;
    } else {
      ++stats_.full_checkpoints;
    }
  }

  const std::string path = dir_ + "/" + entry.file;
  // Sync mode has no private pipeline pool, but the trainer is stalled
  // for the whole encode anyway — fan chunk compression out on the
  // global pool so the stall at least shrinks with core count. Resolve
  // it lazily: only touch (and thereby instantiate) the global pool when
  // some section is actually large enough to chunk.
  util::ThreadPool* encode_pool = pool_.get();
  if (encode_pool == nullptr) {
    for (const Section& s : file.sections) {
      if (s.payload.size() > policy_.chunk_bytes) {
        encode_pool = &util::global_pool();
        break;
      }
    }
  }
  // Content-addressed mode (v3): the encode stage dedups every oversized
  // section's chunks against the directory's chunk store through this
  // batch, which also pins the referenced chunks against concurrent GC
  // until the checkpoint installs (or drops — the batch dies either way).
  const std::uint16_t format_version = effective_format_version();
  std::shared_ptr<ChunkStore::Batch> batch;
  if (format_version >= 3) {
    batch = store_.chunks().begin_batch(id);
  }
  const EncodeOptions encode_options{.chunk_bytes = policy_.chunk_bytes,
                                     .pool = encode_pool,
                                     .version = format_version,
                                     .sink = batch.get(),
                                     .encode_window = 0,
                                     .gauge = &encode_gauge_};

  if (writer_) {
    // Hand the whole encode stage to the pipeline (the slot and
    // backpressure were handled up front). Chunk bytes stream into the
    // batch's packfile during the encode (bounded waves); only the
    // container — key tables under v3 — rides the job as a buffer.
    try {
      pool_->submit([this, file = std::move(file), entry, path,
                     encode_options, batch, parent_span]() mutable {
        std::optional<AsyncWriter::Job> job;
        try {
          util::Timer encode_timer;
          obs::Span encode_span(policy_.tracer, "encode", "ckpt",
                                parent_span);
          encode_span.note("id", entry.id);
          Bytes encoded = encode_checkpoint(file, encode_options);
          entry.bytes = encoded.size();
          encode_span.note("bytes", entry.bytes);
          encode_span.finish();
          const double encode_seconds = encode_timer.seconds();
          if (encode_hist_ != nullptr) {
            encode_hist_->record_seconds(encode_seconds);
          }
          job.emplace();
          job->path = path;
          // Gauge the container while it sits in the writer queue; the
          // shared holder lives exactly as long as the job's closures,
          // so dropped jobs release it too.
          auto held = std::make_shared<util::GaugedBytes>(&encode_gauge_,
                                                          encoded.size());
          job->data = std::move(encoded);
          if (batch && !batch->empty()) {
            // The packfile commit precedes the checkpoint file: chunks
            // must be durable before anything references them. The
            // records were already streamed into the staged (invisible)
            // pack during encode; commit() finishes and installs it.
            job->pre_install = [batch] { batch->commit(); };
          }
          job->on_installed = [this, entry, batch, held, parent_span] {
            util::Timer install_timer;
            obs::Span install_span(policy_.tracer, "install", "ckpt",
                                   parent_span);
            install_span.note("id", entry.id);
            if (batch) {
              if (batch->committed()) {
                std::lock_guard lock(mu_);
                stats_.pack_bytes_written += batch->pack_bytes();
              }
              // Durable now: the records become dedup targets for
              // later checkpoints.
              store_.chunks().publish(*batch);
            }
            install(entry,
                    batch ? batch->refs() : std::vector<ChunkKey>{});
            install_span.finish();
            if (install_hist_ != nullptr) {
              install_hist_->record_seconds(install_timer.seconds());
            }
          };
          job->on_failed = [this, entry, held] {
            // The file never became durable: break any delta chain
            // that would pass through it, and quarantine in-flight
            // children (see install()). An already-committed packfile
            // merely strands unreferenced chunks for the next sweep.
            mark_chain_broken(entry.id, /*count_drop=*/true);
          };
          {
            std::lock_guard lock(mu_);
            stats_.pipeline_encode_seconds += encode_seconds;
            stats_.bytes_encoded += entry.bytes;
            if (batch) {
              stats_.chunk_refs += batch->refs().size();
              stats_.chunks_deduped += batch->dedup_hits();
              stats_.dedup_bytes += batch->dedup_bytes();
            }
          }
        } catch (...) {
          // Encode failures must not wedge the pipeline; surface as a
          // drop (job stays empty) so later ids can still install. An
          // un-committed pack stream aborts with the batch.
          job.reset();
        }
        enqueue_ready(entry.id, std::move(job));
      });
    } catch (const std::exception&) {
      // The pool refused the task (shutdown/allocation): account the
      // slot and advance the submission cursor or flush() hangs forever.
      enqueue_ready(id, std::nullopt);
    }
  } else {
    // Sync mode streams the container straight into its atomic handle:
    // neither the container nor the packfile ever exists as a second
    // in-memory copy. The install order is unchanged — the pack commit
    // (its atomic close) lands strictly before the container's close.
    util::Timer encode_timer;
    obs::Span encode_span(policy_.tracer, "encode", "ckpt", parent_span);
    encode_span.note("id", id);
    auto out = env_.new_writable(path, io::WriteMode::kAtomic);
    WritableSink out_sink(*out);
    entry.bytes = encode_checkpoint(file, encode_options, out_sink);
    encode_span.note("bytes", entry.bytes);
    encode_span.finish();
    const double encode_seconds = encode_timer.seconds();
    if (encode_hist_ != nullptr) {
      encode_hist_->record_seconds(encode_seconds);
    }

    util::Timer write_timer;
    std::uint64_t pack_bytes = 0;
    if (batch && !batch->empty()) {
      batch->commit();
      pack_bytes = batch->pack_bytes();
      store_.chunks().publish(*batch);
    }
    out->close();
    {
      std::lock_guard lock(mu_);
      stats_.encode_seconds += encode_seconds;
      stats_.bytes_encoded += entry.bytes;
      stats_.sync_write_seconds += write_timer.seconds();
      stats_.pack_bytes_written += pack_bytes;
      if (batch) {
        stats_.chunk_refs += batch->refs().size();
        stats_.chunks_deduped += batch->dedup_hits();
        stats_.dedup_bytes += batch->dedup_bytes();
      }
    }
    {
      util::Timer install_timer;
      obs::Span install_span(policy_.tracer, "install", "ckpt", parent_span);
      install_span.note("id", id);
      install(entry, batch ? batch->refs() : std::vector<ChunkKey>{});
      install_span.finish();
      if (install_hist_ != nullptr) {
        install_hist_->record_seconds(install_timer.seconds());
      }
    }
  }
  } catch (...) {
    // Snapshot/dispatch failed before the encode task took ownership of
    // the slot. Break any delta chain through the lost id — build_file
    // already advanced last_id_/last_raw_ to it, so a caller that
    // swallows this exception and keeps training must not produce
    // orphaned deltas (sync mode included). In async mode additionally
    // release the slot (allocation-free) so the pipeline cannot wedge.
    // The dispatch block's own catches do not rethrow, so this cannot
    // double-release.
    // Don't count the drop here: in async mode the ordered drain counts
    // it exactly once when it reaches the empty slot released below (the
    // caller additionally sees the exception); in sync mode nothing was
    // queued and the exception alone reports the loss.
    mark_chain_broken(id, /*count_drop=*/false);
    if (writer_) {
      enqueue_ready(id, std::nullopt);
    }
    throw;
  }

  if (policy_.wal.enable && writer_ == nullptr) {
    // The install is durable and advertised: start this epoch's journal
    // and retire the superseded one behind that fence.
    rotate_wal(id, state);
  }

  if (policy_.target_mtbf_seconds > 0.0) {
    // The training thread paid from t_begin to now (async mode excludes
    // the background encode + write by construction).
    update_adaptive_interval(policy_.clock() - t_begin);
    // The step-cadence clock must not count checkpoint time as step time.
    last_seen_time_ = policy_.clock();
  }
}

void Checkpointer::rotate_wal(std::uint64_t id,
                              const qnn::TrainingState& state) {
  const std::uint64_t old_epoch = wal_ ? wal_->epoch() : 0;
  wal_.reset();  // close is best-effort: a torn tail is recovery's job
  const bool include_sim = policy_.strategy != Strategy::kParamsOnly;
  wal_ = std::make_unique<WalWriter>(env_, dir_, id, policy_.wal, state,
                                     include_sim);
  {
    std::lock_guard lock(mu_);
    stats_.wal_bytes += wal_->bytes_logged();  // the new log's header
  }
  if (old_epoch != 0 && old_epoch != id) {
    // The new install supersedes the old epoch's records wholesale; its
    // log dies behind the manifest fence install() already wrote. The
    // store's GC and startup sweep reap it if this remove never runs.
    env_.remove_file(dir_ + "/" + wal_file_name(old_epoch));
  }
}

void Checkpointer::mark_chain_broken(std::uint64_t id, bool count_drop) {
  force_full_.store(true);
  {
    std::lock_guard lock(manifest_mu_);
    // Monotonic: failure notifications can arrive out of id order (a
    // writer failing an OLD id after a newer encode drop), and install()
    // compares each child's parent against the tip — regressing it would
    // let a child of the newer missing id slip into the manifest.
    broken_chain_tip_ = std::max(broken_chain_tip_, id);
  }
  if (count_drop) {
    std::lock_guard lock(mu_);
    ++stats_.dropped_writes;
  }
}

void Checkpointer::enqueue_ready(std::uint64_t id,
                                 std::optional<AsyncWriter::Job> job) {
  {
    std::lock_guard lock(encode_mu_);
    const auto it = ready_jobs_.find(id);
    if (it == ready_jobs_.end()) {
      return;  // defensive: slot already released
    }
    it->second.done = true;  // slot was reserved by checkpoint_now
    it->second.job = std::move(job);
    // Release every completed in-order job. writer_->submit may block on
    // writer backpressure while encode_mu_ is held; that is the intended
    // cascade (writer workers drain independently and never take
    // encode_mu_, so progress is guaranteed).
    while (!ready_jobs_.empty() &&
           ready_jobs_.begin()->first == next_submit_id_ &&
           ready_jobs_.begin()->second.done) {
      auto node = ready_jobs_.extract(ready_jobs_.begin());
      bool queued = false;
      if (node.mapped().job.has_value()) {
        try {
          queued = writer_->submit(std::move(*node.mapped().job));
        } catch (...) {
          // Allocation failure in the writer queue: treat exactly like a
          // refused job so the cursor still advances.
        }
      }
      if (!queued) {
        // Record the broken chain BEFORE the loop can hand a later
        // (delta child) job to the writer, and allocation-free, so the
        // failure path can neither race install() nor itself fail.
        // Nesting follows the established encode_mu_ -> manifest_mu_ ->
        // mu_ hierarchy.
        mark_chain_broken(node.key(), /*count_drop=*/true);
      }
      ++next_submit_id_;
      --pending_encodes_;
    }
  }
  encode_cv_.notify_all();
}

void Checkpointer::install(ManifestEntry entry,
                           const std::vector<ChunkKey>& refs) {
  std::lock_guard lock(manifest_mu_);
  if (entry.parent_id != 0 && entry.parent_id == broken_chain_tip_) {
    // The parent never became durable: this delta resolves to nothing.
    // Refuse to advertise it — every manifest entry must load — and
    // propagate the quarantine to its own descendants. Its chunk refs
    // are never retained; any chunks it stored become sweep fodder.
    broken_chain_tip_ = entry.id;
    {
      std::lock_guard stats_lock(mu_);
      ++stats_.dropped_writes;
    }
    env_.remove_file(dir_ + "/" + entry.file);
    return;
  }
  if (!entry.is_incremental()) {
    // A full checkpoint ends every chain; older failures are moot.
    broken_chain_tip_ = 0;
  }
  manifest_.upsert(entry);
  {
    // Persist the lifetime drop count with the same manifest write the
    // install pays for anyway: a dropped checkpoint leaves no file, so
    // this stat line is the only post-mortem trace the inspector has.
    std::lock_guard stats_lock(mu_);
    manifest_.set_stat("dropped_writes",
                       dropped_writes_base_ + stats_.dropped_writes);
  }
  // The new file is durable, so its chunk references are live from this
  // moment: retain them BEFORE the GC pass below decides what dies.
  store_.chunks().retain(refs);
  // One atomic manifest write advertises the new checkpoint AND fences
  // the first GC batch (victims leave the manifest before any file
  // dies). A crash before the write loses only this not-yet-complete
  // install; after it, every advertised entry still resolves. (The
  // pre-store ordering deleted files first and saved the manifest last —
  // a crash in between left the manifest naming dead files.)
  store_.collect(manifest_, /*save_manifest=*/true);
  // Placement rides the install tail too: with a tiered Env and a hot
  // byte budget, retained-but-old objects demote to the capacity tier
  // (copy + fsync cold, TIERMAP fence, then the hot copy dies).
  // Best-effort by design: the checkpoint IS durable and advertised at
  // this point, so a cold-tier failure (ENOSPC, transient object-store
  // error) must not escape — on the async path it would run on_failed
  // and mark this perfectly valid checkpoint's chain broken. A failed
  // demotion just leaves objects hot; the next install retries.
  try {
    store_.migrate(manifest_);
  } catch (const std::exception&) {
  }
}

void Checkpointer::flush() {
  if (wal_) {
    wal_->sync();  // flush is a durability point for the journal too
  }
  if (!writer_) {
    return;
  }
  {
    std::unique_lock lock(encode_mu_);
    encode_cv_.wait(lock, [this] { return pending_encodes_ == 0; });
  }
  writer_->flush();
}

void Checkpointer::export_metrics(obs::MetricsRegistry& registry) {
  const Stats s = stats();
  const auto set = [&registry](const char* name, std::uint64_t v) {
    registry.counter(name).set(v);
  };
  const auto set_us = [&registry](const char* name, double seconds) {
    registry.counter(name).set(
        static_cast<std::uint64_t>(seconds * 1e6));
  };
  set("ckpt.checkpoints", s.checkpoints);
  set("ckpt.full_checkpoints", s.full_checkpoints);
  set("ckpt.incremental_checkpoints", s.incremental_checkpoints);
  set("ckpt.bytes_raw", s.bytes_raw);
  set("ckpt.bytes_encoded", s.bytes_encoded);
  set("ckpt.dropped_writes", s.dropped_writes);
  set("ckpt.lifetime_dropped_writes", s.lifetime_dropped_writes);
  set_us("ckpt.snapshot_us", s.snapshot_seconds);
  set_us("ckpt.encode_us", s.encode_seconds);
  set_us("ckpt.sync_write_us", s.sync_write_seconds);
  set_us("ckpt.submit_blocked_us", s.submit_blocked_seconds);
  set_us("ckpt.pipeline_encode_us", s.pipeline_encode_seconds);
  set_us("ckpt.trainer_stall_us", s.trainer_stall_seconds());
  registry.gauge("ckpt.peak_encode_buffer_bytes")
      .set(static_cast<std::int64_t>(s.peak_encode_buffer_bytes));

  set("wal.records", s.wal_records);
  set("wal.bytes", s.wal_bytes);
  set("wal.compactions", s.wal_compactions);

  const GcStats gc = gc_stats();
  set("gc.runs", gc.runs);
  set("gc.files_deleted", gc.files_deleted);
  set("gc.bytes_reclaimed", gc.bytes_reclaimed);
  set("gc.manifest_rewrites", gc.manifest_rewrites);
  set("gc.orphans_deleted", gc.orphans_deleted);
  set("gc.wals_reaped", gc.wals_reaped);

  const tier::TierStats ts = tier_stats();
  set("tier.files_demoted", ts.files_demoted);
  set("tier.bytes_demoted", ts.bytes_demoted);
  set("tier.files_promoted", ts.files_promoted);
  set("tier.bytes_promoted", ts.bytes_promoted);
  set("tier.fences", ts.fences);
  registry.gauge("tier.hot_bytes").set(static_cast<std::int64_t>(ts.hot_bytes));
  registry.gauge("tier.cold_bytes")
      .set(static_cast<std::int64_t>(ts.cold_bytes));

  const CasStats cs = cas_stats();
  set("cas.packfiles", cs.packfiles);
  set("cas.chunks", cs.chunks);
  set("cas.stored_bytes", cs.stored_bytes);
  set("cas.dedup_hits", cs.dedup_hits);
  set("cas.dedup_bytes", cs.dedup_bytes);
  set("cas.chunks_written", cs.chunks_written);
}

Checkpointer::Stats Checkpointer::stats() const {
  Stats s;
  {
    std::lock_guard lock(mu_);
    s = stats_;
  }
  if (writer_) {
    const auto ws = writer_->stats();
    s.writer_dropped = ws.dropped;
    s.writer_failures = ws.failures;
  }
  s.lifetime_dropped_writes = dropped_writes_base_ + s.dropped_writes;
  s.peak_encode_buffer_bytes = encode_gauge_.peak();
  return s;
}

}  // namespace qnn::ckpt

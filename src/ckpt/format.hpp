// The qnnckpt on-disk checkpoint container format.
//
//   +--------------------------------------------------------------+
//   | magic "QCKP" | u16 version | u16 flags                        |
//   | u64 checkpoint_id | u64 parent_id | u64 step | u64 time_us    |
//   | u32 n_sections                                                |
//   +--------------------------------------------------------------+
//   | per section:                                                  |
//   |   u16 kind | u8 codec | u8 sflags | u64 raw_len | u64 enc_len |
//   |   u32 crc32c(encoded payload) | payload bytes                 |
//   +--------------------------------------------------------------+
//   | footer: u64 crc64(everything above) | magic "PKCQ"            |
//   +--------------------------------------------------------------+
//
// Version 2 adds *chunk-framed* sections (sflags bit1). A chunked
// section's payload region is not one codec stream but a frame of
// independently-compressed, independently-CRC'd chunks, so encode can
// compress and checksum them concurrently on a thread pool and a reader
// can verify/decode chunks in isolation:
//
//   +--------------------------------------------------------------+
//   | u32 n_chunks | u64 nominal_chunk_bytes                        |
//   | per chunk:                                                    |
//   |   u64 raw_len | u64 enc_len | u32 crc32c(chunk stream)        |
//   |   chunk codec stream bytes                                    |
//   +--------------------------------------------------------------+
//
// The section header's raw_len is the total un-chunked payload size; its
// enc_len and CRC32C cover the whole frame. Chunks are concatenated in
// order to reconstruct the payload. Version-1 files (no chunked flag
// anywhere) decode unchanged; encoders can also emit version 1 for
// downgrade compatibility (chunking disabled).
//
// Version 3 adds *extern* (content-addressed) sections (sflags bit2).
// An extern section's payload region holds no chunk bytes at all — only
// a table of content keys naming chunks that live in a shared chunk
// store (ckpt/cas.hpp), so identical chunks are stored once across all
// checkpoints in a directory:
//
//   +--------------------------------------------------------------+
//   | u8 digest_type | u32 n_chunks | u64 nominal_chunk_bytes       |
//   | per chunk:  u64 raw_len | u32 crc32c(raw chunk bytes)         |
//   +--------------------------------------------------------------+
//
// The content key of a chunk is (digest, raw length); digest_type 0 is
// CRC32C over the raw (uncompressed) bytes. The field is per-section so
// a stronger digest can be introduced later without renumbering flags.
// The section header's raw_len is the total reassembled payload size;
// enc_len and CRC32C cover the key table. Encoding an extern section
// requires a ChunkSink (the dedup stage: resident chunks skip
// compression and storage entirely); decoding one requires a
// ChunkSource. Version-2 and version-1 files decode unchanged, and
// encoders can still emit both (EncodeOptions::version).
//
// Chunk payload bytes are deliberately covered twice (chunk CRC32C and
// the serial section CRC32C): the footer CRC64 already forces one serial
// whole-file pass, so dropping the section CRC would not remove the
// serial bottleneck, and keeping it preserves v1's section-granular
// corruption pinpointing for salvage. CRC throughput (~GB/s) is a small
// fraction of codec cost.
//
// Properties the experiments rely on:
//   * every section carries its own CRC32C -> a reader can pinpoint (and
//     salvage around) localised corruption;
//   * the footer CRC64 + closing magic detect truncation of any length;
//   * sections record their codec -> files are self-describing;
//   * sflags bit0 marks a section stored as an XOR delta against the
//     parent checkpoint's same-kind section (incremental strategy);
//   * sflags bit1 marks a chunk-framed section (parallel encode/decode);
//   * sflags bit2 marks an extern section (content-addressed chunks).
//
// Numbers are little-endian. Kinds, codecs and flags are append-only.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "codec/codec.hpp"
#include "io/env.hpp"
#include "util/bytes.hpp"
#include "util/gauge.hpp"

namespace qnn::util {
class ThreadPool;
}

namespace qnn::ckpt {

using util::Bytes;
using util::ByteSpan;

constexpr std::uint16_t kFormatVersion = 3;
/// Newest version whose files are self-contained (no chunk store needed
/// to decode). The encoder's v2-emit fallback targets this.
constexpr std::uint16_t kInlineFormatVersion = 2;
constexpr std::uint16_t kMinFormatVersion = 1;

/// Smallest honored chunk size; EncodeOptions::chunk_bytes below this is
/// clamped up (framing overhead would otherwise dominate the payload).
constexpr std::size_t kMinChunkBytes = 64;

/// Section identity. On-disk values — never renumber.
enum class SectionKind : std::uint16_t {
  kMeta = 0,         ///< workload tag, optimizer name, counters
  kParams = 1,       ///< trainable parameters (raw f64)
  kOptimizer = 2,    ///< optimiser internal state
  kRng = 3,          ///< RNG stream position
  kDataCursor = 4,   ///< epoch, cursor, permutation
  kLossHistory = 5,  ///< per-step losses (raw f64)
  kSimulator = 6,    ///< mid-evaluation simulator snapshot
};

std::string section_kind_name(SectionKind kind);

/// Section flags (sflags byte).
constexpr std::uint8_t kSectionFlagDelta = 0x01;
/// Section payload is a chunk frame (see file header comment). Set only by
/// the encoder; decoded Sections always hold the reassembled raw payload.
constexpr std::uint8_t kSectionFlagChunked = 0x02;
/// Section payload is a content-key table; the chunk bytes live in the
/// directory's chunk store (v3). Set only by the encoder; decoded
/// Sections always hold the reassembled raw payload.
constexpr std::uint8_t kSectionFlagExtern = 0x04;

/// Chunk digest types (extern sections). On-disk values — append-only.
constexpr std::uint8_t kChunkDigestCrc32c = 0;

/// Content key of one chunk: digest over the RAW (uncompressed) chunk
/// bytes plus the raw length. Today the digest is CRC32C
/// (kChunkDigestCrc32c); the per-section digest_type field is the
/// upgrade path to a stronger hash.
///
/// Collision honesty: CRC32C is 32 bits, so two *distinct* same-length
/// chunks collide with birthday probability ~50% after ~77k unique
/// chunks of one length — a dedup hit on a colliding key would
/// silently substitute the resident bytes. At the default 1 MiB chunk
/// size that is ~80 GB of unique content per directory; directories
/// approaching that scale (or smaller chunk sizes at high unique-chunk
/// counts) should wait for a wide-digest type before enabling v3, or
/// use CheckpointPolicy::format_version = 2. This bound is why
/// digest_type exists on disk from day one.
struct ChunkKey {
  std::uint32_t crc = 0;
  std::uint64_t len = 0;

  auto operator<=>(const ChunkKey&) const = default;
};

/// Computes the content key of a raw chunk.
ChunkKey chunk_key(ByteSpan raw);

/// "a1b2c3d4-4096" — the canonical textual form (REFS journal, tooling).
std::string chunk_key_name(const ChunkKey& key);
std::optional<ChunkKey> parse_chunk_key_name(const std::string& name);

/// Where the encoder puts (and dedups against) extern chunks. For every
/// chunk of every extern section the encoder calls contains() exactly
/// once; when it returns false the chunk is compressed and handed to
/// put(). An implementation returning true promises to keep the chunk
/// resolvable at least until the batch it belongs to is released (the
/// chunk store pins it against concurrent GC).
class ChunkSink {
 public:
  virtual ~ChunkSink() = default;
  virtual bool contains(const ChunkKey& key) = 0;
  virtual void put(const ChunkKey& key, codec::CodecId codec,
                   ByteSpan encoded) = 0;
};

/// Where the decoder resolves extern chunks from. get() returns the raw
/// chunk bytes, fully verified against the key (digest + length), and
/// throws std::runtime_error when the chunk is absent or corrupt.
class ChunkSource {
 public:
  virtual ~ChunkSource() = default;
  virtual Bytes get(const ChunkKey& key) = 0;
};

/// One decoded (in-memory) section: raw payload + how it was stored.
struct Section {
  SectionKind kind;
  codec::CodecId codec = codec::CodecId::kRaw;
  std::uint8_t flags = 0;
  Bytes payload;  ///< raw (decoded) bytes; for delta sections, the delta

  [[nodiscard]] bool is_delta() const {
    return (flags & kSectionFlagDelta) != 0;
  }
};

/// A checkpoint as a structured object (before encode / after decode).
struct CheckpointFile {
  std::uint64_t checkpoint_id = 0;
  std::uint64_t parent_id = 0;  ///< 0 = self-contained (full) checkpoint
  std::uint64_t step = 0;
  std::uint64_t time_us = 0;
  std::vector<Section> sections;

  [[nodiscard]] bool is_incremental() const { return parent_id != 0; }

  /// Pointer to the section of the given kind, or nullptr.
  [[nodiscard]] const Section* find(SectionKind kind) const;
};

/// Raised by decode_checkpoint on any structural or checksum failure.
struct CorruptCheckpoint : std::runtime_error {
  explicit CorruptCheckpoint(const std::string& what)
      : std::runtime_error("corrupt checkpoint: " + what) {}
};

/// Where the streaming encoder emits container bytes: a growing buffer
/// (BufferSink), an open Env write handle (WritableSink), or anything
/// else that can take frames in order.
class ByteSink {
 public:
  virtual ~ByteSink() = default;
  virtual void append(ByteSpan data) = 0;
};

/// ByteSink over a Bytes buffer (the whole-buffer encode compat path).
class BufferSink final : public ByteSink {
 public:
  explicit BufferSink(Bytes& out) : out_(out) {}
  void append(ByteSpan data) override {
    out_.insert(out_.end(), data.begin(), data.end());
  }

 private:
  Bytes& out_;
};

/// ByteSink over an open streaming write handle: the container goes
/// straight to the device, never existing as a second in-memory copy.
class WritableSink final : public ByteSink {
 public:
  explicit WritableSink(io::WritableFile& file) : file_(file) {}
  void append(ByteSpan data) override { file_.append(data); }

 private:
  io::WritableFile& file_;
};

/// Encoder tuning. Defaults reproduce a self-contained, single-threaded
/// encode; the checkpoint pipeline passes a pool so chunk compression and
/// checksumming fan out.
struct EncodeOptions {
  /// Sections larger than this are chunk-framed (v2) or externalised into
  /// the chunk store (v3) in pieces of this size. Clamped to >= 64;
  /// payloads <= chunk_bytes stay un-chunked inline.
  std::size_t chunk_bytes = std::size_t{1} << 20;
  /// Pool for concurrent chunk encode; null = encode on the calling
  /// thread. The output bytes are identical either way.
  util::ThreadPool* pool = nullptr;
  /// On-disk version to emit. 0 = automatic: version 3 when a sink is
  /// set, else the newest self-contained version (2). Writing
  /// kMinFormatVersion additionally disables chunking and produces
  /// byte-streams old readers accept. Explicit version 3 requires a
  /// sink (invalid_argument otherwise).
  std::uint16_t version = 0;
  /// Chunk store for extern sections (v3). When set, oversized sections
  /// become key tables and only non-resident chunks are compressed and
  /// stored — the cross-checkpoint dedup stage.
  ChunkSink* sink = nullptr;
  /// Max chunks buffered in flight while encoding an extern section
  /// (one compression wave). 0 = auto: 2x the pool's worker count (min
  /// 4). This is the "workers" in the encode path's O(chunk x workers)
  /// memory bound; the emitted bytes are identical for any window.
  std::size_t encode_window = 0;
  /// When set, every transient encode buffer (an encoded chunk wave, a
  /// staged section stream) registers its bytes here — the measured
  /// peak behind Checkpointer::Stats::peak_encode_buffer_bytes.
  util::MemGauge* gauge = nullptr;
};

/// Serialises a checkpoint, compressing each section's payload with the
/// codec recorded in that section.
Bytes encode_checkpoint(const CheckpointFile& file);

/// encode_checkpoint with explicit chunking/parallelism/version options.
Bytes encode_checkpoint(const CheckpointFile& file,
                        const EncodeOptions& options);

/// Streaming encode: emits the container into `out` frame by frame and
/// returns the total bytes emitted. Memory stays bounded by the largest
/// single section's transient state — and, for extern (v3) sections, by
/// one compression wave (options.encode_window chunks), independent of
/// checkpoint size: chunk bytes flow straight into the ChunkSink and
/// only the small key table lands in the container. The emitted bytes
/// are identical to the whole-buffer overloads, byte for byte.
std::uint64_t encode_checkpoint(const CheckpointFile& file,
                                const EncodeOptions& options, ByteSink& out);

/// Decoder context. A null source decodes v1/v2 files (and v3 files
/// without extern sections) exactly as before; extern sections then fail
/// with "no chunk source".
struct DecodeOptions {
  ChunkSource* source = nullptr;
};

/// Parses and fully verifies (per-section CRC32C + footer CRC64 + magics;
/// extern chunks are fetched from `options.source` and verified against
/// their keys). Throws CorruptCheckpoint on any failure.
CheckpointFile decode_checkpoint(ByteSpan data);
CheckpointFile decode_checkpoint(ByteSpan data, const DecodeOptions& options);

/// Best-effort parse for forensics / fallback: returns whatever sections
/// verify individually, plus human-readable notes on what was wrong.
struct SalvageResult {
  std::optional<CheckpointFile> file;  ///< nullopt if even the header is bad
  bool fully_intact = false;
  std::vector<std::string> notes;
};
SalvageResult salvage_checkpoint(ByteSpan data);
SalvageResult salvage_checkpoint(ByteSpan data, const DecodeOptions& options);

/// Every chunk key referenced by the file's extern sections, in section
/// then chunk order (duplicates preserved — the reference multiset for
/// refcounting). Returns empty for v1/v2 files. Verifies the footer
/// CRC64 and each extern key table's CRC32C; throws CorruptCheckpoint on
/// damage, so refcounts are never rebuilt from bytes that cannot be
/// trusted. Does not touch the chunk store.
std::vector<ChunkKey> list_chunk_refs(ByteSpan data);

/// Ranged variant: reads only the fixed header, the section headers and
/// the extern key tables via pread — never the (potentially huge) inline
/// payload regions. Each key table is verified against its section
/// CRC32C; structural inconsistencies throw CorruptCheckpoint. Unlike
/// the whole-buffer overload this does NOT verify the footer CRC64
/// (doing so would force a full-file read), so a damaged-but-
/// table-consistent header can only omit references, never invent them
/// — callers must be leak-biased-safe (GC victim release, migration
/// planning); the refcount REBUILD keeps using the fully-verified
/// whole-buffer path. Throws when the file is absent.
std::vector<ChunkKey> list_chunk_refs(io::Env& env, const std::string& path);

/// One section's placement within a container file, from a ranged
/// header walk (no payload bytes read, no CRC64 verification — the
/// inspector's layout view, not a recovery-grade parse).
struct SectionIndexEntry {
  SectionKind kind = SectionKind::kMeta;
  codec::CodecId codec = codec::CodecId::kRaw;
  std::uint8_t flags = 0;
  std::uint64_t raw_len = 0;
  std::uint64_t enc_len = 0;
  std::uint32_t crc = 0;
  std::uint64_t payload_offset = 0;  ///< absolute offset of the payload
};

/// Container metadata + section table, read via pread of the headers
/// only (a few dozen bytes per section regardless of payload size).
struct CheckpointIndex {
  std::uint16_t version = 0;
  std::uint64_t checkpoint_id = 0;
  std::uint64_t parent_id = 0;
  std::uint64_t step = 0;
  std::uint64_t time_us = 0;
  std::uint64_t file_bytes = 0;
  std::vector<SectionIndexEntry> sections;
};

/// Ranged header walk of a container file. Throws CorruptCheckpoint on
/// structural damage and when the file is absent.
CheckpointIndex read_checkpoint_index(io::Env& env, const std::string& path);

}  // namespace qnn::ckpt

// The qnnckpt on-disk checkpoint container format.
//
//   +--------------------------------------------------------------+
//   | magic "QCKP" | u16 version | u16 flags                        |
//   | u64 checkpoint_id | u64 parent_id | u64 step | u64 time_us    |
//   | u32 n_sections                                                |
//   +--------------------------------------------------------------+
//   | per section:                                                  |
//   |   u16 kind | u8 codec | u8 sflags | u64 raw_len | u64 enc_len |
//   |   u32 crc32c(encoded payload) | payload bytes                 |
//   +--------------------------------------------------------------+
//   | footer: u64 crc64(everything above) | magic "PKCQ"            |
//   +--------------------------------------------------------------+
//
// Version 2 adds *chunk-framed* sections (sflags bit1). A chunked
// section's payload region is not one codec stream but a frame of
// independently-compressed, independently-CRC'd chunks, so encode can
// compress and checksum them concurrently on a thread pool and a reader
// can verify/decode chunks in isolation:
//
//   +--------------------------------------------------------------+
//   | u32 n_chunks | u64 nominal_chunk_bytes                        |
//   | per chunk:                                                    |
//   |   u64 raw_len | u64 enc_len | u32 crc32c(chunk stream)        |
//   |   chunk codec stream bytes                                    |
//   +--------------------------------------------------------------+
//
// The section header's raw_len is the total un-chunked payload size; its
// enc_len and CRC32C cover the whole frame. Chunks are concatenated in
// order to reconstruct the payload. Version-1 files (no chunked flag
// anywhere) decode unchanged; encoders can also emit version 1 for
// downgrade compatibility (chunking disabled).
//
// Chunk payload bytes are deliberately covered twice (chunk CRC32C and
// the serial section CRC32C): the footer CRC64 already forces one serial
// whole-file pass, so dropping the section CRC would not remove the
// serial bottleneck, and keeping it preserves v1's section-granular
// corruption pinpointing for salvage. CRC throughput (~GB/s) is a small
// fraction of codec cost.
//
// Properties the experiments rely on:
//   * every section carries its own CRC32C -> a reader can pinpoint (and
//     salvage around) localised corruption;
//   * the footer CRC64 + closing magic detect truncation of any length;
//   * sections record their codec -> files are self-describing;
//   * sflags bit0 marks a section stored as an XOR delta against the
//     parent checkpoint's same-kind section (incremental strategy);
//   * sflags bit1 marks a chunk-framed section (parallel encode/decode).
//
// Numbers are little-endian. Kinds, codecs and flags are append-only.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "codec/codec.hpp"
#include "util/bytes.hpp"

namespace qnn::util {
class ThreadPool;
}

namespace qnn::ckpt {

using util::Bytes;
using util::ByteSpan;

constexpr std::uint16_t kFormatVersion = 2;
constexpr std::uint16_t kMinFormatVersion = 1;

/// Smallest honored chunk size; EncodeOptions::chunk_bytes below this is
/// clamped up (framing overhead would otherwise dominate the payload).
constexpr std::size_t kMinChunkBytes = 64;

/// Section identity. On-disk values — never renumber.
enum class SectionKind : std::uint16_t {
  kMeta = 0,         ///< workload tag, optimizer name, counters
  kParams = 1,       ///< trainable parameters (raw f64)
  kOptimizer = 2,    ///< optimiser internal state
  kRng = 3,          ///< RNG stream position
  kDataCursor = 4,   ///< epoch, cursor, permutation
  kLossHistory = 5,  ///< per-step losses (raw f64)
  kSimulator = 6,    ///< mid-evaluation simulator snapshot
};

std::string section_kind_name(SectionKind kind);

/// Section flags (sflags byte).
constexpr std::uint8_t kSectionFlagDelta = 0x01;
/// Section payload is a chunk frame (see file header comment). Set only by
/// the encoder; decoded Sections always hold the reassembled raw payload.
constexpr std::uint8_t kSectionFlagChunked = 0x02;

/// One decoded (in-memory) section: raw payload + how it was stored.
struct Section {
  SectionKind kind;
  codec::CodecId codec = codec::CodecId::kRaw;
  std::uint8_t flags = 0;
  Bytes payload;  ///< raw (decoded) bytes; for delta sections, the delta

  [[nodiscard]] bool is_delta() const {
    return (flags & kSectionFlagDelta) != 0;
  }
};

/// A checkpoint as a structured object (before encode / after decode).
struct CheckpointFile {
  std::uint64_t checkpoint_id = 0;
  std::uint64_t parent_id = 0;  ///< 0 = self-contained (full) checkpoint
  std::uint64_t step = 0;
  std::uint64_t time_us = 0;
  std::vector<Section> sections;

  [[nodiscard]] bool is_incremental() const { return parent_id != 0; }

  /// Pointer to the section of the given kind, or nullptr.
  [[nodiscard]] const Section* find(SectionKind kind) const;
};

/// Raised by decode_checkpoint on any structural or checksum failure.
struct CorruptCheckpoint : std::runtime_error {
  explicit CorruptCheckpoint(const std::string& what)
      : std::runtime_error("corrupt checkpoint: " + what) {}
};

/// Encoder tuning. Defaults reproduce a self-contained, single-threaded
/// encode; the checkpoint pipeline passes a pool so chunk compression and
/// checksumming fan out.
struct EncodeOptions {
  /// Sections larger than this are chunk-framed into pieces of this size.
  /// Clamped to >= 64; payloads <= chunk_bytes stay un-chunked.
  std::size_t chunk_bytes = std::size_t{1} << 20;
  /// Pool for concurrent chunk encode; null = encode on the calling
  /// thread. The output bytes are identical either way.
  util::ThreadPool* pool = nullptr;
  /// On-disk version to emit. Writing kMinFormatVersion disables chunking
  /// and produces byte-streams old readers accept.
  std::uint16_t version = kFormatVersion;
};

/// Serialises a checkpoint, compressing each section's payload with the
/// codec recorded in that section.
Bytes encode_checkpoint(const CheckpointFile& file);

/// encode_checkpoint with explicit chunking/parallelism/version options.
Bytes encode_checkpoint(const CheckpointFile& file,
                        const EncodeOptions& options);

/// Parses and fully verifies (per-section CRC32C + footer CRC64 + magics).
/// Throws CorruptCheckpoint on any failure.
CheckpointFile decode_checkpoint(ByteSpan data);

/// Best-effort parse for forensics / fallback: returns whatever sections
/// verify individually, plus human-readable notes on what was wrong.
struct SalvageResult {
  std::optional<CheckpointFile> file;  ///< nullopt if even the header is bad
  bool fully_intact = false;
  std::vector<std::string> notes;
};
SalvageResult salvage_checkpoint(ByteSpan data);

}  // namespace qnn::ckpt

// ShardedChunkIndex: the concurrent chunk-metadata map behind ChunkStore.
//
// One logical map  ChunkKey -> {refs, pins, location}  split over
// kShardCount shards, each guarded by its own mutex, with keys placed
// by a mixed hash of the content digest. Dedup probes from the encode
// pipeline (pin_and_probe) touch exactly one shard lock and no
// store-level state, so concurrent encoders scale past a single core —
// the point of the sharding. Refcounts, pins and residency live in ONE
// entry per key so the operations that must be atomic per key (pin
// then probe; liveness check then location erase) are atomic under a
// single shard lock.
//
// Lock order (the store-wide rule, documented on ChunkStore):
//     ChunkStore::mu_  ->  shard mutex (one, or all ascending)
// Nothing here ever takes mu_, so taking a shard lock while holding
// mu_ is always safe and the reverse never happens. AllShards acquires
// every shard in ascending index order; per-key methods would
// self-deadlock while it is held, so it exposes its own accessors.
//
// An entry is kept only while it carries information (refs, pins, or a
// pack location); every mutating method erases entries that drop to
// all-zero, so the index never outgrows the live key population.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ckpt/format.hpp"

namespace qnn::ckpt {

class ShardedChunkIndex {
 public:
  static constexpr std::size_t kShardCount = 16;
  static constexpr std::int32_t kNoPack = -1;

  /// Where a resident chunk's record lives: interned pack id (the
  /// store's table maps it to a pack name) + record index in the pack.
  struct Location {
    std::int32_t pack = kNoPack;
    std::uint32_t record = 0;
  };

  // --- hot path: one shard lock each -----------------------------------

  /// Adds a pin AND reports residency under one shard lock — the
  /// atomicity the dedup protocol needs: a sweep serialised after this
  /// call sees the pin (chunk survives); one serialised before it has
  /// already erased the location (probe misses, chunk is re-stored).
  bool pin_and_probe(const ChunkKey& key) {
    Shard& s = shard_for(key);
    std::lock_guard lock(s.mu);
    Entry& e = s.map[key];
    ++e.pins;
    return e.pack != kNoPack;
  }

  void unpin(const ChunkKey& key) {
    Shard& s = shard_for(key);
    std::lock_guard lock(s.mu);
    const auto it = s.map.find(key);
    if (it == s.map.end() || it->second.pins == 0) {
      return;
    }
    --it->second.pins;
    erase_if_empty(s, it);
  }

  [[nodiscard]] bool resident(const ChunkKey& key) const {
    const Shard& s = shard_for(key);
    std::lock_guard lock(s.mu);
    const auto it = s.map.find(key);
    return it != s.map.end() && it->second.pack != kNoPack;
  }

  [[nodiscard]] std::optional<Location> location(const ChunkKey& key) const {
    const Shard& s = shard_for(key);
    std::lock_guard lock(s.mu);
    const auto it = s.map.find(key);
    if (it == s.map.end() || it->second.pack == kNoPack) {
      return std::nullopt;
    }
    return Location{it->second.pack, it->second.record};
  }

  [[nodiscard]] std::uint64_t ref_count(const ChunkKey& key) const {
    const Shard& s = shard_for(key);
    std::lock_guard lock(s.mu);
    const auto it = s.map.find(key);
    return it == s.map.end() ? 0 : it->second.refs;
  }

  void add_ref(const ChunkKey& key) {
    Shard& s = shard_for(key);
    std::lock_guard lock(s.mu);
    ++s.map[key].refs;
  }

  /// Drops one reference if any is held (references rebuilt without
  /// this key are silently ignored, like the old map semantics).
  void release_ref(const ChunkKey& key) {
    Shard& s = shard_for(key);
    std::lock_guard lock(s.mu);
    const auto it = s.map.find(key);
    if (it == s.map.end() || it->second.refs == 0) {
      return;
    }
    --it->second.refs;
    erase_if_empty(s, it);
  }

  /// Installs a location unless the key is already resident elsewhere
  /// (first pack wins, like the old index). True when the key became
  /// resident — the caller's distinct-chunk counter.
  bool set_location_if_absent(const ChunkKey& key, std::int32_t pack,
                              std::uint32_t record) {
    Shard& s = shard_for(key);
    std::lock_guard lock(s.mu);
    Entry& e = s.map[key];
    if (e.pack != kNoPack) {
      return false;
    }
    e.pack = pack;
    e.record = record;
    return true;
  }

  /// Clears the location if (and only if) it points into `pack`. True
  /// when a location was erased.
  bool erase_location_if(const ChunkKey& key, std::int32_t pack) {
    Shard& s = shard_for(key);
    std::lock_guard lock(s.mu);
    return erase_location_if_impl(s, key, pack);
  }

  // --- whole-index operations ------------------------------------------

  /// RAII lock over every shard, ascending order. While held, the
  /// per-key methods above would self-deadlock — use the accessors on
  /// this object. The sweep holds one across liveness-check + location
  /// erase (+ compacted-pack install) so no probe can pin a chunk
  /// between "judged dead" and "gone from the index".
  class AllShards {
   public:
    explicit AllShards(ShardedChunkIndex& index) : index_(index) {
      for (Shard& s : index_.shards_) {
        s.mu.lock();
      }
    }
    ~AllShards() {
      for (Shard& s : index_.shards_) {
        s.mu.unlock();
      }
    }
    AllShards(const AllShards&) = delete;
    AllShards& operator=(const AllShards&) = delete;

    [[nodiscard]] bool is_live(const ChunkKey& key) const {
      const Shard& s = index_.shard_for(key);
      const auto it = s.map.find(key);
      return it != s.map.end() &&
             (it->second.refs != 0 || it->second.pins != 0);
    }

    bool erase_location_if(const ChunkKey& key, std::int32_t pack) {
      Shard& s = index_.shard_for(key);
      return index_.erase_location_if_impl(s, key, pack);
    }

    /// Re-points a key already resident in `pack` at a new record index
    /// (compaction rewrote the pack).
    void repoint_record(const ChunkKey& key, std::int32_t pack,
                        std::uint32_t record) {
      Shard& s = index_.shard_for(key);
      const auto it = s.map.find(key);
      if (it != s.map.end() && it->second.pack == pack) {
        it->second.record = record;
      }
    }

   private:
    ShardedChunkIndex& index_;
  };

  /// Replaces ALL reference counts with `counts` (journal load or
  /// rebuild), preserving pins and residency. Counts may name keys that
  /// are not resident (references into still-deferred cold packs).
  void reset_refs(const std::map<ChunkKey, std::uint64_t>& counts) {
    AllShards all(*this);
    for (Shard& s : shards_) {
      for (auto it = s.map.begin(); it != s.map.end();) {
        it->second.refs = 0;
        if (entry_empty(it->second)) {
          it = s.map.erase(it);
        } else {
          ++it;
        }
      }
    }
    for (const auto& [key, count] : counts) {
      if (count != 0) {
        shard_for(key).map[key].refs = count;
      }
    }
  }

  /// All (key, refcount) pairs with refcount > 0, sorted by key — the
  /// deterministic iteration the REFS journal writer needs.
  [[nodiscard]] std::vector<std::pair<ChunkKey, std::uint64_t>>
  snapshot_refs() const {
    std::vector<std::pair<ChunkKey, std::uint64_t>> out;
    for (const Shard& s : shards_) {
      std::lock_guard lock(s.mu);
      for (const auto& [key, e] : s.map) {
        if (e.refs != 0) {
          out.emplace_back(key, e.refs);
        }
      }
    }
    std::sort(out.begin(), out.end());
    return out;
  }

 private:
  struct Entry {
    std::uint64_t refs = 0;
    std::uint64_t pins = 0;
    std::int32_t pack = kNoPack;
    std::uint32_t record = 0;
  };

  struct KeyHash {
    std::size_t operator()(const ChunkKey& k) const {
      std::uint64_t h = (static_cast<std::uint64_t>(k.crc) << 32) ^
                        (k.len * 0x9E3779B97F4A7C15ull);
      h ^= h >> 29;
      h *= 0xBF58476D1CE4E5B9ull;
      h ^= h >> 32;
      return static_cast<std::size_t>(h);
    }
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<ChunkKey, Entry, KeyHash> map;
  };

  static bool entry_empty(const Entry& e) {
    return e.refs == 0 && e.pins == 0 && e.pack == kNoPack;
  }

  void erase_if_empty(Shard& s,
                      std::unordered_map<ChunkKey, Entry, KeyHash>::iterator
                          it) {
    if (entry_empty(it->second)) {
      s.map.erase(it);
    }
  }

  bool erase_location_if_impl(Shard& s, const ChunkKey& key,
                              std::int32_t pack) {
    const auto it = s.map.find(key);
    if (it == s.map.end() || it->second.pack != pack) {
      return false;
    }
    it->second.pack = kNoPack;
    it->second.record = 0;
    erase_if_empty(s, it);
    return true;
  }

  Shard& shard_for(const ChunkKey& key) {
    return shards_[KeyHash{}(key) & (kShardCount - 1)];
  }
  const Shard& shard_for(const ChunkKey& key) const {
    return shards_[KeyHash{}(key) & (kShardCount - 1)];
  }

  Shard shards_[kShardCount];
};

}  // namespace qnn::ckpt

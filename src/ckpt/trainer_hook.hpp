// Convenience glue between Trainer and Checkpointer.
//
// checkpointing_callback() adapts a Checkpointer into a Trainer step
// callback; resume_or_start() implements the standard job prologue:
// recover the newest checkpoint if one exists, otherwise start fresh.
#pragma once

#include "ckpt/checkpointer.hpp"
#include "ckpt/recovery.hpp"
#include "qnn/trainer.hpp"

namespace qnn::ckpt {

/// Step callback that checkpoints on the policy's step boundaries.
/// `trainer` and `checkpointer` must outlive the returned callback.
/// Off-boundary steps skip the TrainingState capture entirely (it copies
/// parameters, optimiser state and loss history) — except in adaptive
/// mode, where maybe_checkpoint must see every step to learn the cadence.
inline qnn::StepCallback checkpointing_callback(qnn::Trainer& trainer,
                                                Checkpointer& checkpointer) {
  return [&trainer, &checkpointer](const qnn::StepInfo& info) {
    if (checkpointer.policy().target_mtbf_seconds > 0.0 ||
        checkpointer.due(info.step)) {
      checkpointer.maybe_checkpoint(trainer.capture());
    }
    return true;
  };
}

/// Restores `trainer` from the newest usable checkpoint in `dir`, if any.
/// Returns the recovery outcome (std::nullopt = cold start).
inline std::optional<RecoveryOutcome> resume_or_start(io::Env& env,
                                                      const std::string& dir,
                                                      qnn::Trainer& trainer) {
  auto outcome = recover_latest(env, dir);
  if (outcome) {
    trainer.restore(outcome->state);
  }
  return outcome;
}

}  // namespace qnn::ckpt

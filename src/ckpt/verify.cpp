#include "ckpt/verify.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "ckpt/cas.hpp"
#include "ckpt/format.hpp"
#include "ckpt/manifest.hpp"
#include "ckpt/recovery.hpp"
#include "ckpt/wal.hpp"
#include "tier/tiered_env.hpp"

namespace qnn::ckpt {

std::string health_name(CheckpointHealth health) {
  switch (health) {
    case CheckpointHealth::kIntact: return "intact";
    case CheckpointHealth::kDamaged: return "damaged";
    case CheckpointHealth::kChainBroken: return "chain-broken";
    case CheckpointHealth::kMissing: return "missing";
  }
  return "unknown";
}

bool DirectoryReport::healthy() const {
  if (checkpoints.empty()) {
    return false;
  }
  for (const CheckpointReport& r : checkpoints) {
    if (r.health != CheckpointHealth::kIntact) {
      return false;
    }
  }
  return newest_recoverable.has_value() &&
         *newest_recoverable == checkpoints.back().id;
}

std::string DirectoryReport::summary() const {
  std::ostringstream os;
  os << "manifest: " << (manifest_present ? "present" : "MISSING") << ", "
     << checkpoints.size() << " checkpoint(s)\n";
  for (const CheckpointReport& r : checkpoints) {
    os << "  id=" << r.id << " step=" << r.step << " " << r.file << " -> "
       << health_name(r.health);
    if (!r.tier.empty()) {
      os << " [" << r.tier << "]";
    }
    os << "\n";
    for (const std::string& note : r.notes) {
      os << "      " << note << "\n";
    }
  }
  for (const std::string& orphan : orphan_files) {
    os << "  orphan file: " << orphan << "\n";
  }
  for (const WalReport& w : journals) {
    os << "  journal " << w.file << ": ";
    if (!w.readable) {
      os << "unreadable header (replay ignores it)";
    } else {
      os << w.records << " record(s) to step " << w.last_step;
      if (w.torn_bytes > 0) {
        os << ", " << w.torn_bytes << " torn byte(s)";
      }
    }
    os << (w.epoch_advertised ? " [active]" : " [stale]") << "\n";
  }
  if (newest_recoverable) {
    os << "newest recoverable: id=" << *newest_recoverable << "\n";
  } else {
    os << "NO RECOVERABLE CHECKPOINT\n";
  }
  os << "verdict: " << (healthy() ? "HEALTHY" : "NEEDS ATTENTION") << "\n";
  return os.str();
}

DirectoryReport verify_directory(io::Env& env, const std::string& dir) {
  DirectoryReport report;
  const Manifest manifest = Manifest::load(env, dir);
  report.manifest_present = env.exists(dir + "/MANIFEST");
  // Content-addressed sections verify through the directory's chunk
  // store (every fetched chunk is digest-checked); a missing or corrupt
  // chunk marks the checkpoint damaged exactly like inline corruption.
  ChunkStore cas(env, dir);

  // Union of manifest entries and canonical files on disk.
  std::set<std::uint64_t> ids;
  std::set<std::uint64_t> manifest_ids;
  for (const ManifestEntry& e : manifest.entries()) {
    ids.insert(e.id);
    manifest_ids.insert(e.id);
  }
  for (const std::string& name : env.list_dir(dir)) {
    if (const auto id = parse_checkpoint_file_name(name)) {
      if (!manifest_ids.contains(*id)) {
        report.orphan_files.push_back(name);
      }
      ids.insert(*id);
    } else if (const auto epoch = parse_wal_file_name(name)) {
      WalReport w;
      w.file = name;
      w.epoch = *epoch;
      w.epoch_advertised = manifest_ids.contains(*epoch);
      if (const auto scan = scan_wal(env, dir, *epoch)) {
        w.readable = true;
        w.records = scan->records;
        w.last_step = scan->last_step;
        w.torn_bytes = scan->torn_bytes;
      }
      report.journals.push_back(std::move(w));
    }
  }

  auto* tiered = dynamic_cast<tier::TieredEnv*>(&env);
  for (std::uint64_t id : ids) {
    CheckpointReport r;
    r.id = id;
    r.file = checkpoint_file_name(id);
    if (const ManifestEntry* e = manifest.find(id)) {
      r.step = e->step;
    }
    if (tiered) {
      const bool hot = tiered->hot().exists(dir + "/" + r.file);
      const bool cold = tiered->cold().exists(dir + "/" + r.file);
      if (hot || cold) {
        r.tier = hot && cold ? "hot+cold" : (cold ? "cold" : "hot");
      }
    }

    const auto data = env.read_file(dir + "/" + r.file);
    if (!data) {
      r.health = CheckpointHealth::kMissing;
      r.notes.push_back("file referenced by manifest but absent on disk");
      report.checkpoints.push_back(std::move(r));
      continue;
    }

    // File-local verification.
    const SalvageResult salvage =
        salvage_checkpoint(*data, DecodeOptions{.source = &cas});
    if (!salvage.file || !salvage.fully_intact) {
      r.health = CheckpointHealth::kDamaged;
      r.notes = salvage.notes;
      report.checkpoints.push_back(std::move(r));
      continue;
    }
    r.step = salvage.file->step;

    // Chain resolution (covers ancestors).
    try {
      (void)load_checkpoint(env, dir, id);
      r.health = CheckpointHealth::kIntact;
    } catch (const std::exception& e) {
      r.health = CheckpointHealth::kChainBroken;
      r.notes.push_back(e.what());
    }
    report.checkpoints.push_back(std::move(r));
  }

  for (auto it = report.checkpoints.rbegin(); it != report.checkpoints.rend();
       ++it) {
    if (it->health == CheckpointHealth::kIntact) {
      report.newest_recoverable = it->id;
      break;
    }
  }
  return report;
}

}  // namespace qnn::ckpt

#include "ckpt/state_codec.hpp"

namespace qnn::ckpt {

namespace {
// v2 added the circuit fingerprint; v1 files decode with fingerprint 0.
constexpr std::uint32_t kMetaVersion = 2;

Bytes encode_meta(const qnn::TrainingState& s) {
  Bytes out;
  util::put_le<std::uint32_t>(out, kMetaVersion);
  util::put_string(out, s.workload_tag);
  util::put_string(out, s.optimizer_name);
  util::put_le<std::uint64_t>(out, s.step);
  util::put_le<std::uint64_t>(out, s.epoch);
  util::put_le<std::uint64_t>(out, s.cursor);
  util::put_le<std::uint64_t>(out, s.circuit_fingerprint);
  return out;
}

void decode_meta(ByteSpan payload, qnn::TrainingState& s) {
  std::size_t off = 0;
  const auto version = util::get_le<std::uint32_t>(payload, off);
  if (version != 1 && version != kMetaVersion) {
    throw CorruptCheckpoint("meta section: bad version");
  }
  s.workload_tag = util::get_string(payload, off);
  s.optimizer_name = util::get_string(payload, off);
  s.step = util::get_le<std::uint64_t>(payload, off);
  s.epoch = util::get_le<std::uint64_t>(payload, off);
  s.cursor = util::get_le<std::uint64_t>(payload, off);
  s.circuit_fingerprint =
      version >= 2 ? util::get_le<std::uint64_t>(payload, off) : 0;
}

Bytes encode_cursor(const qnn::TrainingState& s) {
  Bytes out;
  util::put_vector(out, s.permutation);
  return out;
}
}  // namespace

Bytes encode_section_payload(SectionKind kind,
                             const qnn::TrainingState& state) {
  Bytes out;
  switch (kind) {
    case SectionKind::kMeta:
      return encode_meta(state);
    case SectionKind::kParams:
      util::put_vector(out, state.params);
      return out;
    case SectionKind::kOptimizer:
      return state.optimizer_state;
    case SectionKind::kRng:
      return state.rng_state;
    case SectionKind::kDataCursor:
      return encode_cursor(state);
    case SectionKind::kLossHistory:
      util::put_vector(out, state.loss_history);
      return out;
    case SectionKind::kSimulator:
      return state.simulator_state;
  }
  throw std::invalid_argument("encode_section_payload: unknown kind");
}

std::vector<Section> state_to_sections(const qnn::TrainingState& state,
                                       bool include_simulator,
                                       codec::CodecId codec) {
  static constexpr SectionKind kAlways[] = {
      SectionKind::kMeta,        SectionKind::kParams,
      SectionKind::kOptimizer,   SectionKind::kRng,
      SectionKind::kDataCursor,  SectionKind::kLossHistory,
  };
  std::vector<Section> sections;
  for (SectionKind kind : kAlways) {
    sections.push_back(Section{.kind = kind,
                               .codec = codec,
                               .flags = 0,
                               .payload = encode_section_payload(kind, state)});
  }
  if (include_simulator && !state.simulator_state.empty()) {
    sections.push_back(
        Section{.kind = SectionKind::kSimulator,
                .codec = codec,
                .flags = 0,
                .payload = encode_section_payload(SectionKind::kSimulator,
                                                  state)});
  }
  return sections;
}

qnn::TrainingState sections_to_state(const std::vector<Section>& sections) {
  qnn::TrainingState state;
  bool have_meta = false, have_params = false, have_opt = false,
       have_rng = false, have_cursor = false, have_hist = false;

  for (const Section& s : sections) {
    if (s.is_delta()) {
      throw CorruptCheckpoint(
          "sections_to_state: unresolved delta section " +
          section_kind_name(s.kind));
    }
    std::size_t off = 0;
    switch (s.kind) {
      case SectionKind::kMeta:
        decode_meta(s.payload, state);
        have_meta = true;
        break;
      case SectionKind::kParams:
        state.params = util::get_vector<double>(s.payload, off);
        have_params = true;
        break;
      case SectionKind::kOptimizer:
        state.optimizer_state = s.payload;
        have_opt = true;
        break;
      case SectionKind::kRng:
        state.rng_state = s.payload;
        have_rng = true;
        break;
      case SectionKind::kDataCursor:
        state.permutation = util::get_vector<std::uint32_t>(s.payload, off);
        have_cursor = true;
        break;
      case SectionKind::kLossHistory:
        state.loss_history = util::get_vector<double>(s.payload, off);
        have_hist = true;
        break;
      case SectionKind::kSimulator:
        state.simulator_state = s.payload;
        break;
    }
  }

  if (!have_meta || !have_params || !have_opt || !have_rng || !have_cursor ||
      !have_hist) {
    throw CorruptCheckpoint("sections_to_state: required section missing");
  }
  return state;
}

}  // namespace qnn::ckpt

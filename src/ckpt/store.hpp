// CheckpointStore: retention policies + crash-consistent garbage
// collection for a checkpoint directory.
//
// The store owns the question "which checkpoints may die, and in what
// order do their files disappear so that a crash at ANY point leaves the
// directory recoverable". Invariants collect() maintains across every
// crash point (exhaustively checked by crash_matrix_test):
//
//   * manifest-fence-before-delete: each deletion batch is preceded by an
//     atomic manifest rewrite that no longer advertises the batch, so the
//     manifest never names a missing file — every advertised entry
//     resolves;
//   * child-before-parent: victim files are deleted in descending id
//     order (a delta's parent is always an older id), so at no instant
//     does a delta file exist whose parent file is already gone — even a
//     manifest-less directory rescan never meets a stranded child;
//   * the newest installed checkpoint and its ancestor chain are never
//     victims, so a crash mid-GC loses nothing.
//
// A crash between fence and deletion merely strands unreferenced files;
// sweep_orphans() reaps them on the next startup.
//
// With format v3 the store also owns the directory's ChunkStore
// (ckpt/cas.hpp): deletion is no longer purely file-level but reference
// counted over chunk keys. Deleting a checkpoint file releases its key
// references; packfiles whose chunks are all unreferenced die in the
// same GC pass, mixed packfiles are compacted by the startup sweep, and
// the refcount journal is rewritten at the same fence points as the
// manifest. The file-level invariants above carry over unchanged; the
// chunk-level ones they induce are documented in cas.hpp.
//
// On a tier::TieredEnv the store additionally owns a MigrationEngine
// (tier/migration.hpp): after each GC pass, retained-but-old objects
// are demoted to the capacity tier under the TierPolicy's hot byte
// budget, with the same copy-durable-before-the-fence-before-the-
// source-dies discipline — a crash mid-migration leaves every
// advertised object resolvable from at least one tier.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "ckpt/cas.hpp"
#include "ckpt/manifest.hpp"
#include "io/env.hpp"
#include "tier/migration.hpp"

namespace qnn::ckpt {

/// What to keep. The retained set is always closed under parent chains
/// (keeping a delta keeps its ancestors) and always contains the newest
/// entry. Policies compose: the keep_last window is kept outright, older
/// entries survive only at step_spacing density, and byte_budget then
/// evicts oldest-first until the directory fits.
struct RetentionPolicy {
  /// Newest entries kept unconditionally. 0 = keep everything (the
  /// spacing and budget knobs below still apply).
  std::size_t keep_last = 3;

  /// Thin entries older than the keep_last window to at least this many
  /// steps apart (long-horizon history at bounded density). 0 = drop
  /// everything older than the window (the pre-store behaviour) unless
  /// the Young–Daly inputs below derive a spacing.
  std::uint64_t step_spacing = 0;

  /// Young–Daly-aware spacing: when step_spacing == 0 and all three are
  /// positive, spacing = sched::young_spacing_steps(ckpt_cost_seconds,
  /// mtbf_seconds, step_seconds) — history is thinned no denser than the
  /// optimal checkpoint cadence.
  double ckpt_cost_seconds = 0.0;
  double mtbf_seconds = 0.0;
  double step_seconds = 0.0;

  /// Total bytes of retained checkpoint files. 0 = unlimited. The newest
  /// entry and its chain are never evicted, even over budget (counted in
  /// GcStats::budget_violations instead).
  std::uint64_t byte_budget = 0;

  /// Victim files deleted per manifest fence. Smaller batches bound the
  /// orphaned bytes a crash can strand; larger batches amortise manifest
  /// rewrites.
  std::size_t gc_batch = 8;

  /// The spacing actually in force (step_spacing, or the Young–Daly
  /// derivation, or 0).
  [[nodiscard]] std::uint64_t effective_step_spacing() const;
};

/// Counters for GC observability (bench_t5_gc, inspector, tests).
struct GcStats {
  std::uint64_t runs = 0;               ///< collect() calls that found victims
  std::uint64_t files_deleted = 0;      ///< victim files removed
  std::uint64_t bytes_reclaimed = 0;    ///< sizes of removed victim files
  std::uint64_t manifest_rewrites = 0;  ///< fence rewrites performed
  std::uint64_t orphans_deleted = 0;    ///< unreferenced files swept
  std::uint64_t budget_violations = 0;  ///< byte_budget unmet after max evict
  std::uint64_t wals_reaped = 0;        ///< superseded delta journals removed
};

class CheckpointStore {
 public:
  /// When `env` is a tier::TieredEnv the store also owns a
  /// MigrationEngine driving `tier_policy` (hot/cold placement); on a
  /// flat Env the tier policy is inert.
  CheckpointStore(io::Env& env, std::string dir, RetentionPolicy policy,
                  tier::TierPolicy tier_policy = {});

  /// The ids that survive a GC run against `manifest` (planning only; no
  /// I/O). Sorted ascending; closed under parent chains.
  [[nodiscard]] std::vector<std::uint64_t> plan_retained(
      const Manifest& manifest) const;

  /// Crash-consistent GC: removes everything plan_retained() excludes,
  /// updating `manifest` (and its on-disk copy) batch by batch with the
  /// fence-then-delete ordering documented above. Returns the number of
  /// files deleted. With `save_manifest` the manifest is written even
  /// when there is nothing to delete — the installer passes true so its
  /// freshly-upserted entry is advertised by the first fence rewrite
  /// (one atomic manifest write per install, not two). The caller
  /// serialises collect() against concurrent installs (the Checkpointer
  /// holds its manifest lock).
  std::size_t collect(Manifest& manifest, bool save_manifest = false);

  /// The files sweep_orphans() would delete right now (planning only; no
  /// I/O beyond a directory listing): canonical checkpoint files absent
  /// from `manifest` and older than its newest entry — the leftovers of
  /// a crash between fence and deletion. Preserved even when
  /// unreferenced:
  ///   * files newer than the manifest tip (an install whose manifest
  ///     update a crash swallowed; id reallocation overwrites them),
  ///   * files named by any advertised entry's parent_id (an intact
  ///     manifest never needs this — the fence keeps chains closed — but
  ///     it shields chains when the manifest itself lost lines),
  ///   * everything, when the manifest has parse warnings: a damaged
  ///     manifest cannot be trusted to decide what is garbage.
  /// Sorted descending (child-before-parent deletion order).
  [[nodiscard]] std::vector<std::string> plan_orphans(
      const Manifest& manifest) const;

  /// Deletes plan_orphans() (releasing their chunk references), then
  /// sweeps the chunk store: fully-dead packfiles are deleted and mixed
  /// ones compacted, so no unreferenced chunk survives the sweep. Call
  /// only when no install is in flight (e.g. at startup). Stale delta
  /// journals (plan_stale_wals) are reaped in the same pass.
  std::size_t sweep_orphans(const Manifest& manifest);

  /// Delta-journal files (wal-<epoch>.qwal, see ckpt/wal.hpp) whose
  /// epoch `manifest` no longer advertises — logs a rotation or GC
  /// superseded but a crash kept on disk. The active log (its epoch IS
  /// an advertised entry) is pinned by definition. Empty — same
  /// conservatism as plan_orphans — when the manifest is empty, has
  /// parse warnings, or has dangling parent links: a manifest that lost
  /// lines cannot be trusted to call the active journal stale.
  [[nodiscard]] std::vector<std::string> plan_stale_wals(
      const Manifest& manifest) const;

  /// The directory's content-addressed chunk store (format v3 chunks).
  [[nodiscard]] ChunkStore& chunks() { return chunks_; }

  /// Hot/cold migration per the tier policy: demotes old checkpoint
  /// containers and fully-cold packfiles until the hot tier fits its
  /// byte budget (copy to cold + fsync, TIERMAP fence, then the hot
  /// copy dies). No-op on a flat Env or a disabled policy. Runs after
  /// collect() on the install path, under the same serialisation.
  std::size_t migrate(const Manifest& manifest);

  /// The migration engine, or nullptr on a flat (non-tiered) Env.
  [[nodiscard]] tier::MigrationEngine* tiering() { return tiering_.get(); }
  /// Migration counters (zeros on a flat Env).
  [[nodiscard]] tier::TierStats tier_stats() {
    return tiering_ ? tiering_->stats() : tier::TierStats{};
  }

  [[nodiscard]] GcStats stats() const;
  [[nodiscard]] const RetentionPolicy& policy() const { return policy_; }

  /// Mounts a span/event sink (borrowed; null detaches) on the store and
  /// its migration engine: GC passes that delete files become spans,
  /// demotions/promotions and TIERMAP fences are traced by the engine.
  void set_observability(obs::Tracer* tracer) {
    tracer_ = tracer;
    if (tiering_) {
      tiering_->set_observability(tracer);
    }
  }

 private:
  /// Size of entry `id`'s file: the manifest's recorded bytes, or the
  /// on-disk size when the manifest predates byte accounting.
  [[nodiscard]] std::uint64_t stored_bytes(const Manifest& manifest,
                                           std::uint64_t id) const;

  /// Chunk keys referenced by the checkpoint file `name`, read from disk
  /// BEFORE the file dies so the references can be released afterwards.
  /// Empty (and harmlessly leak-biased) when the file cannot be read.
  [[nodiscard]] std::vector<ChunkKey> read_chunk_refs(
      const std::string& name) const;

  io::Env& env_;
  std::string dir_;
  RetentionPolicy policy_;
  ChunkStore chunks_;
  /// Non-null iff env_ is a TieredEnv: hot/cold placement + migration.
  std::unique_ptr<tier::MigrationEngine> tiering_;

  /// Guards stats_ only; collect() itself is externally serialised.
  mutable std::mutex mu_;
  GcStats stats_;
  obs::Tracer* tracer_ = nullptr;  ///< borrowed; null = tracing off
};

}  // namespace qnn::ckpt

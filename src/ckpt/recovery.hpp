// Crash recovery: find, verify and reassemble the newest usable checkpoint.
//
// Procedure:
//   1. load the manifest; if it is missing/empty, rescan the directory for
//      canonical checkpoint file names;
//   2. walk candidates newest-first; for each, read + strictly verify the
//      file, resolve its incremental chain (every ancestor must verify),
//      XOR-undelta each section against its parent's resolved payload;
//   3. redo-only journal replay: when the candidate has a delta journal
//      (wal-<id>.qwal, see ckpt/wal.hpp), fold its records into the
//      resolved sections up to the last frame whose CRC validates,
//      truncating torn tails — replay is read-only and deterministic, so
//      an interrupted recovery rerun reaches the identical state;
//   4. on any failure record a note and fall back to the next older
//      candidate — a corrupt or torn checkpoint must never be *silently*
//      accepted, and an older intact one must still win.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ckpt/format.hpp"
#include "ckpt/manifest.hpp"
#include "io/env.hpp"
#include "qnn/training_state.hpp"

namespace qnn::ckpt {

struct RecoveryOutcome {
  qnn::TrainingState state;
  std::uint64_t checkpoint_id = 0;
  std::uint64_t step = 0;
  /// Candidates rejected on the way plus manifest damage reports
  /// ("manifest: skipped N unparseable line(s)"). Empty = newest was
  /// intact and the manifest parsed cleanly.
  std::vector<std::string> notes;
};

struct RecoveryOptions {
  /// Upper bound on incremental chain length (cycle/insanity guard).
  std::size_t max_chain = 1024;
};

/// Returns the newest recoverable training state, or std::nullopt when the
/// directory holds no usable checkpoint.
std::optional<RecoveryOutcome> recover_latest(io::Env& env,
                                              const std::string& dir);
std::optional<RecoveryOutcome> recover_latest(io::Env& env,
                                              const std::string& dir,
                                              const RecoveryOptions& options);

/// Loads and fully resolves one specific checkpoint id (including its
/// ancestor chain). Throws CorruptCheckpoint / std::runtime_error on
/// failure. Exposed for the inspector tool and tests.
qnn::TrainingState load_checkpoint(io::Env& env, const std::string& dir,
                                   std::uint64_t id,
                                   const RecoveryOptions& options = {});

/// Cross-replica recovery: runs recover_latest against each replica and
/// returns the outcome with the highest step (replicas may be behind or
/// independently damaged; any one intact copy of the newest checkpoint
/// wins). std::nullopt when no replica has a usable checkpoint.
std::optional<RecoveryOutcome> recover_latest_any(
    const std::vector<io::Env*>& replicas, const std::string& dir);

}  // namespace qnn::ckpt

// Crash recovery: find, verify and reassemble the newest usable checkpoint.
//
// Procedure:
//   1. load the manifest; if it is missing/empty, rescan the directory for
//      canonical checkpoint file names;
//   2. walk candidates newest-first; for each, read + strictly verify the
//      file, resolve its incremental chain (every ancestor must verify),
//      XOR-undelta each section against its parent's resolved payload;
//   3. redo-only journal replay: when the candidate has a delta journal
//      (wal-<id>.qwal, see ckpt/wal.hpp), fold its records into the
//      resolved sections up to the last frame whose CRC validates,
//      truncating torn tails — replay is read-only and deterministic, so
//      an interrupted recovery rerun reaches the identical state;
//   4. on any failure record a note and fall back to the next older
//      candidate — a corrupt or torn checkpoint must never be *silently*
//      accepted, and an older intact one must still win.
//
// Every run additionally keeps a FLIGHT RECORDER: an ordered list of
// structured events (manifest scan, candidate attempts, chain
// resolution depth, WAL replay extent, tier promotions) answering "what
// did recovery actually do, in order" — the machine-readable twin of
// the free-form notes. With RecoveryOptions::tracer set, the same
// events land as spans/instants in a Chrome trace.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "ckpt/format.hpp"
#include "ckpt/manifest.hpp"
#include "io/env.hpp"
#include "obs/trace.hpp"
#include "qnn/training_state.hpp"

namespace qnn::ckpt {

/// One flight-recorder entry: a stable event name plus key=value detail.
struct FlightEvent {
  std::string name;
  std::vector<std::pair<std::string, std::string>> kv;

  /// The value recorded under `key`, or "" when absent (test helper).
  [[nodiscard]] std::string value(const std::string& key) const {
    for (const auto& [k, v] : kv) {
      if (k == key) {
        return v;
      }
    }
    return {};
  }
};

struct RecoveryOutcome {
  qnn::TrainingState state;
  std::uint64_t checkpoint_id = 0;
  std::uint64_t step = 0;
  /// Candidates rejected on the way plus manifest damage reports
  /// ("manifest: skipped N unparseable line(s)"). Empty = newest was
  /// intact and the manifest parsed cleanly.
  std::vector<std::string> notes;
  /// Ordered flight-recorder events (see file comment). Names:
  /// manifest.scan, candidate.try, chain.resolved, wal.replay,
  /// wal.replay_unloadable, candidate.reject, tier.promoted, recovered.
  std::vector<FlightEvent> events;
};

struct RecoveryOptions {
  /// Upper bound on incremental chain length (cycle/insanity guard).
  std::size_t max_chain = 1024;
  /// Optional span/event sink (borrowed; null = no tracing). The flight
  /// recorder in RecoveryOutcome::events is populated either way.
  obs::Tracer* tracer = nullptr;
};

/// Returns the newest recoverable training state, or std::nullopt when the
/// directory holds no usable checkpoint.
std::optional<RecoveryOutcome> recover_latest(io::Env& env,
                                              const std::string& dir);
std::optional<RecoveryOutcome> recover_latest(io::Env& env,
                                              const std::string& dir,
                                              const RecoveryOptions& options);

/// Loads and fully resolves one specific checkpoint id (including its
/// ancestor chain). Throws CorruptCheckpoint / std::runtime_error on
/// failure. Exposed for the inspector tool and tests.
qnn::TrainingState load_checkpoint(io::Env& env, const std::string& dir,
                                   std::uint64_t id,
                                   const RecoveryOptions& options = {});

/// Cross-replica recovery: runs recover_latest against each replica and
/// returns the outcome with the highest step (replicas may be behind or
/// independently damaged; any one intact copy of the newest checkpoint
/// wins). std::nullopt when no replica has a usable checkpoint.
std::optional<RecoveryOutcome> recover_latest_any(
    const std::vector<io::Env*>& replicas, const std::string& dir);

}  // namespace qnn::ckpt

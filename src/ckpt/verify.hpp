// Offline checkpoint-directory verification (scrubbing).
//
// Periodic scrubs catch silent corruption *before* a crash makes the
// checkpoint load-bearing. verify_directory() cross-checks the manifest
// against the files on disk, CRC-verifies every checkpoint, resolves
// every incremental chain, and reports exactly what a recovery attempted
// right now could and could not use.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "io/env.hpp"

namespace qnn::ckpt {

enum class CheckpointHealth {
  kIntact,       ///< parses, all CRCs good, chain resolves
  kDamaged,      ///< file exists but fails verification
  kChainBroken,  ///< file itself is fine but an ancestor is not
  kMissing,      ///< manifest references it; no file on disk
};

std::string health_name(CheckpointHealth health);

struct CheckpointReport {
  std::uint64_t id = 0;
  std::string file;
  std::uint64_t step = 0;
  CheckpointHealth health = CheckpointHealth::kMissing;
  /// Which tier holds the file when scrubbing a tier::TieredEnv:
  /// "hot", "cold", or "hot+cold" (a crash-stranded duplicate the next
  /// startup reconcile collapses). Empty on a flat Env.
  std::string tier;
  std::vector<std::string> notes;
};

/// One delta journal (wal-<epoch>.qwal, see ckpt/wal.hpp) found on disk.
struct WalReport {
  std::string file;
  std::uint64_t epoch = 0;
  /// Header parsed (magic/version/epoch/crc). False = the log is torn
  /// before its first record; replay treats it as absent.
  bool readable = false;
  /// The epoch is an advertised manifest entry (the log is the active
  /// one and pinned); false = stale, reaped by the next GC/sweep.
  bool epoch_advertised = false;
  std::uint64_t records = 0;    ///< fully-framed records
  std::uint64_t last_step = 0;  ///< step replay would reach
  std::uint64_t torn_bytes = 0; ///< ignored tail past the last valid frame
};

struct DirectoryReport {
  bool manifest_present = false;
  std::vector<CheckpointReport> checkpoints;  ///< sorted by id
  /// Checkpoint-named files on disk that the manifest does not list
  /// (e.g. survivors of a crash between install and manifest update).
  std::vector<std::string> orphan_files;
  /// Delta journals on disk, sorted by epoch. Advisory: a torn tail is
  /// the expected post-crash shape, so journals never affect healthy().
  std::vector<WalReport> journals;
  /// The id recovery would return right now, if any.
  std::optional<std::uint64_t> newest_recoverable;

  /// True when the newest manifest entry is intact and nothing is
  /// missing or damaged.
  [[nodiscard]] bool healthy() const;

  /// Multi-line human-readable rendering (inspector output).
  [[nodiscard]] std::string summary() const;
};

/// Scrubs `dir` (read-only; never modifies anything).
DirectoryReport verify_directory(io::Env& env, const std::string& dir);

}  // namespace qnn::ckpt

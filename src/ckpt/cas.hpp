// ChunkStore: the content-addressed store behind format-v3 checkpoints.
//
// Every oversized section of a v3 checkpoint is split into chunks that
// are stored ONCE per directory, keyed by content (ckpt::ChunkKey =
// digest + raw length), in a packfile-per-epoch layout:
//
//   <dir>/chunks/pack-0000000007.qpak   chunks first stored by ckpt 7
//   <dir>/chunks/REFS                   refcount journal (advisory cache)
//
// A packfile is STREAMED through one atomic write handle (records append
// as the encoder produces them; the close installs all-or-nothing, so a
// crash can never tear one) and carries a self-indexing layout (pack
// format v2) whose key table lives at the tail:
//
//   +--------------------------------------------------------------+
//   | magic "QPAK" | u16 version=2 | u16 reserved | u64 epoch       |
//   | per record:                                                   |
//   |   u8 digest_type | u32 raw_crc | u64 raw_len                  |
//   |   u8 codec | u64 enc_len | u32 crc32c(encoded) | enc bytes    |
//   | key table: one row per record (record header + u64 offset)    |
//   | footer: u32 n_records | u64 table_offset                      |
//   |         u32 crc32c(key table) | u64 crc64(all above) | "KAPQ" |
//   +--------------------------------------------------------------+
//
// The tail-resident key table is what makes packfile reads RANGED:
// opening a pack preads the footer + key table (a few dozen bytes per
// chunk, independent of chunk size), and resolving one chunk preads
// exactly that record's encoded bytes — verified against the record's
// CRC32C and then the content key, so skipping the whole-file CRC64
// costs no integrity on the read path. Version-1 packs (record-walk
// layout, no table) are still read whole-file for compatibility.
//
// Crash-consistency contract (proven over the crash matrix):
//   * chunks become durable BEFORE any checkpoint file referencing them
//     (the writer commits the packfile first), so a crash anywhere
//     never strands a referenced chunk;
//   * reference counts are DERIVED state: the truth is the union of key
//     tables of the .qckp files on disk, and the REFS journal is only a
//     fenced cache of it — validated against the directory at open and
//     rebuilt when stale, so a torn or missing journal can never lose
//     data or free a live chunk;
//   * sweeps delete a packfile only when none of its records is
//     referenced or pinned, and compaction rewrites mixed packfiles
//     atomically — an unreferenced chunk survives at most until the
//     next sweep, a referenced one survives every sweep.
//
// Pinning: an encode batch pins every key it references (dedup hits and
// fresh puts) until the batch object dies, so a concurrent GC between a
// checkpoint's encode and its install cannot reap chunks the in-flight
// file is about to reference.
//
// Tiered directories (tier::TieredEnv): the open-time scan indexes only
// HOT-resident packfiles; cold packs are recorded and scanned lazily,
// the first time a requested chunk is not resolvable from the hot index
// — so recovering a hot checkpoint never reads (let alone promotes) a
// single cold byte, and resolving a demoted checkpoint preads exactly
// the footers, key tables and chunks its chain needs. Dedup probes
// answer from whatever is indexed at the time: at a fresh open that is
// the hot packs only, so a chunk resident only in a still-unscanned
// cold pack is re-stored hot rather than deduped (a new checkpoint's
// reference should not chain its recovery latency to the capacity
// tier). Once a cold pack HAS been indexed — a get() miss, an
// inspection drain, or a pack demoted after it was scanned — probes may
// dedup against cold-resident chunks; that stays correct (reads fall
// through tiers, and with promote_on_read the first access pulls the
// pack hot again via a streaming copy), it just means placement is
// best-effort rather than a guarantee.
// Concurrency (the raw-speed pass): chunk metadata — refcounts, pins,
// residency — lives in a ShardedChunkIndex (chunk_index.hpp), so dedup
// probes from concurrent encode batches touch one shard lock each and
// scale past a single core; chunk digests are computed by the encode
// pipeline BEFORE the probe, outside every lock. Pack-level state
// (packs_, deferred cold scans, the REFS journal, handle cache) keeps
// the narrow store mutex mu_. LOCK ORDER: mu_ first, shard mutex
// second (one shard, or all shards ascending via AllShards) — never
// acquire mu_ while holding a shard lock.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "ckpt/chunk_index.hpp"
#include "ckpt/format.hpp"
#include "io/env.hpp"

namespace qnn::tier {
class TieredEnv;
}

namespace qnn::ckpt {

namespace detail {
class PackStream;
}

/// Chunk-store counters (bench_t6_dedup, inspector, tests).
struct CasStats {
  std::uint64_t packfiles = 0;        ///< packfiles currently indexed
  std::uint64_t chunks = 0;           ///< distinct keys currently indexed
  std::uint64_t stored_bytes = 0;     ///< bytes of indexed packfiles
  std::uint64_t dedup_hits = 0;       ///< chunk refs satisfied by residency
  std::uint64_t dedup_bytes = 0;      ///< raw bytes those hits skipped
  std::uint64_t chunks_written = 0;   ///< records committed to packfiles
  std::uint64_t packs_deleted = 0;    ///< fully-dead packfiles removed
  std::uint64_t packs_compacted = 0;  ///< mixed packfiles rewritten
  std::uint64_t chunks_swept = 0;     ///< dead records reclaimed
  std::uint64_t bytes_swept = 0;      ///< encoded bytes reclaimed
  std::uint64_t damaged_packs = 0;    ///< packfiles failing verification
  std::uint64_t refs_rebuilds = 0;    ///< journal misses at open
  std::uint64_t pack_handle_evictions = 0;  ///< LRU evicted an open handle
};

class ChunkStore : public ChunkSource {
 public:
  ChunkStore(io::Env& env, std::string dir);

  /// One checkpoint's staging area, handed to the encoder as its
  /// ChunkSink. contains() records a reference (and pins the key);
  /// put() STREAMS the record into the batch's packfile through an
  /// atomic write handle opened at the first put — encode memory never
  /// holds more than the chunk in flight. Destroying the batch releases
  /// its pins — on every path, including drops — and aborts an
  /// uncommitted packfile stream (nothing ever appears on disk).
  class Batch final : public ChunkSink {
   public:
    ~Batch() override;
    Batch(const Batch&) = delete;
    Batch& operator=(const Batch&) = delete;

    bool contains(const ChunkKey& key) override;
    void put(const ChunkKey& key, codec::CodecId codec,
             ByteSpan encoded) override;

    /// True when no new chunk was staged (a pure-dedup checkpoint: no
    /// packfile needs to be written).
    [[nodiscard]] bool empty() const { return records_.empty(); }
    /// Packfile name for this batch ("pack-<epoch>.qpak").
    [[nodiscard]] std::string pack_name() const;
    /// Finishes the streamed packfile — key table + footer — and
    /// atomically installs it. Call (on the writer thread in async
    /// mode) BEFORE any file referencing the batch's chunks is written:
    /// the commit order IS the crash-consistency argument. No-op when
    /// the batch staged nothing. Throws on I/O failure, in which case
    /// nothing was installed.
    void commit();
    /// True after a successful commit().
    [[nodiscard]] bool committed() const { return committed_; }
    /// Total packfile bytes written by commit() (0 when empty).
    [[nodiscard]] std::uint64_t pack_bytes() const { return pack_bytes_; }
    /// Every key the encoded file references, in reference order
    /// (duplicates preserved) — what install() must retain.
    [[nodiscard]] const std::vector<ChunkKey>& refs() const { return refs_; }
    /// Dedup telemetry for this batch.
    [[nodiscard]] std::uint64_t dedup_hits() const { return dedup_hits_; }
    [[nodiscard]] std::uint64_t dedup_bytes() const { return dedup_bytes_; }
    /// Raw bytes staged as new records (the miss side of the ledger).
    [[nodiscard]] std::uint64_t staged_raw_bytes() const {
      return staged_raw_bytes_;
    }

   private:
    friend class ChunkStore;
    struct StagedRecord {
      ChunkKey key;
      codec::CodecId codec;
      std::uint32_t enc_crc;
      std::uint64_t offset;  ///< of the encoded bytes within the pack
      std::uint64_t enc_len;
    };
    /// Defined out of line: members include a unique_ptr over the
    /// incomplete detail::PackStream.
    Batch(ChunkStore& store, std::uint64_t epoch);

    ChunkStore& store_;
    std::uint64_t epoch_;
    std::unique_ptr<detail::PackStream> stream_;
    std::vector<StagedRecord> records_;
    std::map<ChunkKey, std::size_t> staged_index_;
    std::vector<ChunkKey> refs_;
    bool committed_ = false;
    std::uint64_t pack_bytes_ = 0;
    std::uint64_t dedup_hits_ = 0;
    std::uint64_t dedup_bytes_ = 0;
    std::uint64_t staged_raw_bytes_ = 0;
  };

  /// Starts staging the chunks of checkpoint `epoch`.
  std::unique_ptr<Batch> begin_batch(std::uint64_t epoch);

  /// Publishes a committed batch: its records enter the index and
  /// become dedup targets for later checkpoints. Call AFTER
  /// Batch::commit() succeeded — on the writer thread in async mode —
  /// and never publish a batch whose commit failed.
  void publish(const Batch& batch);

  /// True when `key` is resolvable from a durable packfile.
  bool contains(const ChunkKey& key);

  /// ChunkSource: raw chunk bytes, verified against the key (encoded CRC
  /// from the packfile record, then digest + length of the key itself).
  /// Resolution is RANGED: one pread of the record's encoded bytes, not
  /// a packfile read. Throws std::runtime_error when absent or corrupt.
  Bytes get(const ChunkKey& key) override;

  /// Reference counting. retain() when a checkpoint file referencing
  /// `keys` became durable (install), release() when one was deleted
  /// (GC victim, orphan sweep). Multiset semantics: one count per
  /// occurrence.
  void retain(const std::vector<ChunkKey>& keys);
  void release(const std::vector<ChunkKey>& keys);

  /// Reclaims dead chunks: deletes packfiles with no referenced or
  /// pinned record; with `compact`, additionally rewrites (atomically,
  /// streaming record by record) packfiles that mix live and dead
  /// records so no dead chunk outlives the sweep. No-op unless the
  /// reference base is complete (every checkpoint file on disk was
  /// readable when refcounts were built) — an unreadable file means
  /// liveness is unknowable and nothing may die. Returns reclaimed
  /// bytes.
  std::uint64_t sweep(bool compact);

  /// Rewrites the REFS journal if reference state changed since the last
  /// save. Called at the same fence points as manifest rewrites.
  void save_refs();

  /// True when the directory has any packfile — i.e. chunk accounting
  /// matters at all. Callers about to delete checkpoint files MUST call
  /// this (or open()) BEFORE the first deletion when they intend to
  /// release the victims' references: the refcount baseline has to be
  /// loaded from a directory state that still contains the victims, or
  /// the release would double-free against a post-deletion rebuild.
  bool has_packfiles();

  /// Current refcount of a key (0 when untracked).
  [[nodiscard]] std::uint64_t ref_count(const ChunkKey& key);

  [[nodiscard]] CasStats stats();

  /// Names of indexed packfiles (sorted), for inspection.
  [[nodiscard]] std::vector<std::string> pack_names();

  /// Keys of every record in packfile `name` (empty when not indexed).
  /// The tier migration engine uses this to decide when a packfile is
  /// fully cold (no hot checkpoint references any of its chunks).
  [[nodiscard]] std::vector<ChunkKey> pack_keys(const std::string& name);

  /// Directory packfiles live in (<checkpoint dir>/chunks).
  [[nodiscard]] const std::string& chunk_dir() const { return chunk_dir_; }

  /// Forces the lazy open (packfile scan + refcount load/rebuild) now.
  void open();

 private:
  struct Record {
    ChunkKey key;
    codec::CodecId codec = codec::CodecId::kRaw;
    std::uint32_t enc_crc = 0;
    std::uint64_t offset = 0;  ///< of the encoded bytes within the pack
    std::uint64_t enc_len = 0;
  };
  struct Pack {
    std::vector<Record> records;
    std::uint64_t file_bytes = 0;
  };

  /// Stage 1 of the lazy open: the packfile index. Enough for reads and
  /// dedup probes — recovery never pays for refcount state. On a tiered
  /// env only hot packs are scanned; cold ones land in deferred_packs_.
  void ensure_open_locked();
  /// Stage 2: reference counts. Loaded only by refcount operations
  /// (retain/release/sweep/ref_count) and the explicit open().
  void ensure_refs_locked();
  /// Indexes one packfile into packs_/index_, reading it through
  /// `through` (the full env, or one tier's view). Pack format v2 reads
  /// only the footer + key table (ranged); v1 packs fall back to a
  /// whole-file parse. kAbsent and kDamaged are distinct so the
  /// deferred-scan fallback retries only files that genuinely moved,
  /// never re-reads (or promotes) a damaged pack.
  enum class ScanOutcome { kScanned, kAbsent, kDamaged };
  ScanOutcome scan_pack_locked(const std::string& name, io::Env& through);
  /// Scans deferred (cold) packs — newest first — until `key` is
  /// indexed or none remain. The ranged peek reads footer + key table
  /// through the cold tier, so indexing a pack never transfers (let
  /// alone promotes) its bulk; only fetching chunk bytes does.
  void scan_deferred_until_locked(const ChunkKey& key);
  /// Scans every remaining deferred pack (full-index operations:
  /// compacting sweeps, inspection).
  void drain_deferred_locked();
  /// Loads the REFS journal when it still covers the directory's
  /// checkpoint files; otherwise rebuilds refcounts by reading every
  /// checkpoint file's key table.
  void load_or_rebuild_refs_locked();
  void unpin(const std::vector<ChunkKey>& keys);
  [[nodiscard]] std::string pack_path(const std::string& name) const;
  /// Fast-path open: one acquire load once the store has opened,
  /// mu_ + ensure_open_locked() the first time. Dedup probes call this
  /// so they never touch mu_ after the open.
  void ensure_open();
  /// Interned id for pack `name` in pack_ids_ (appending when new):
  /// what ShardedChunkIndex locations carry instead of a string.
  [[nodiscard]] std::int32_t intern_pack_locked(const std::string& name);
  /// Open ranged handle on pack `name`, LRU-cached (chunk reads cluster
  /// by pack during chain resolution, and chain walks alternate between
  /// a handful of packs). Null when the pack vanished.
  io::RandomAccessFile* ranged_pack_locked(const std::string& name);
  /// Inserts `file` into the handle LRU (evicting the stalest slot) and
  /// returns the cached pointer.
  io::RandomAccessFile* cache_pack_handle_locked(
      const std::string& name, std::unique_ptr<io::RandomAccessFile> file);
  void invalidate_pack_handle_locked(const std::string& name);
  /// Sorted ids of canonical checkpoint files currently in dir_.
  [[nodiscard]] std::vector<std::uint64_t> checkpoint_ids_on_disk();

  io::Env& env_;
  /// Non-null when env_ is tiered: enables the staged (hot-first) scan.
  tier::TieredEnv* tiered_ = nullptr;
  const std::string dir_;        ///< checkpoint directory
  const std::string chunk_dir_;  ///< dir_ + "/chunks"

  /// Store-level mutex: pack metadata, scans, refcount loading, stats_,
  /// the handle cache. See the lock-order rule in the header comment.
  std::mutex mu_;
  bool opened_ = false;
  /// True once ensure_open_locked() completed — the mu_-free fast path
  /// for dedup probes (set with release AFTER the index is populated).
  std::atomic<bool> opened_fast_{false};
  /// Cold-resident packs not yet scanned (ascending name order).
  std::vector<std::string> deferred_packs_;
  bool refs_loaded_ = false;
  /// False when some checkpoint file's refs could not be read: sweeps
  /// are disabled until a complete rebuild succeeds.
  bool refs_complete_ = true;
  bool refs_dirty_ = false;
  std::map<std::string, Pack> packs_;
  /// Interned pack names; index position == the id stored in chunk
  /// locations. Append-only (a deleted pack's id simply goes unused),
  /// guarded by mu_.
  std::vector<std::string> pack_ids_;
  /// Sharded key -> {refs, pins, location} map. Shard locks nest
  /// INSIDE mu_; the dedup hot path takes only the shard lock.
  ShardedChunkIndex index_;
  CasStats stats_;
  /// Dedup telemetry from the mu_-free probe path.
  std::atomic<std::uint64_t> dedup_hits_{0};
  std::atomic<std::uint64_t> dedup_bytes_{0};
  /// Small LRU of open ranged pack handles (chain resolution alternates
  /// between the parent chain's packs; one slot thrashed).
  static constexpr std::size_t kPackHandleSlots = 4;
  struct CachedPackHandle {
    std::string name;
    std::unique_ptr<io::RandomAccessFile> file;
    std::uint64_t last_used = 0;
  };
  std::array<CachedPackHandle, kPackHandleSlots> pack_handles_;
  std::uint64_t handle_tick_ = 0;
};

/// Canonical packfile name for an epoch: "pack-0000000042.qpak".
std::string pack_file_name(std::uint64_t epoch);
std::optional<std::uint64_t> parse_pack_file_name(const std::string& name);

/// The chunk keys of every record in a serialized packfile, verified
/// against the footer CRC64 (both pack versions). Throws
/// std::runtime_error on damage.
std::vector<ChunkKey> list_pack_keys(ByteSpan pack);

/// Ranged variant: preads only the footer + key table of a v2 pack
/// (whole-file for v1), verifying the table CRC32C. Lets the tier
/// migration engine test packfile coldness without transferring the
/// pack's bulk. Throws std::runtime_error on damage or absence.
std::vector<ChunkKey> list_pack_keys(io::Env& env, const std::string& path);

}  // namespace qnn::ckpt

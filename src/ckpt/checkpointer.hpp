// The Checkpointer: policy-driven persistence of training state.
//
// Strategies (DESIGN.md §1.3):
//   * kParamsOnly   — classical state only (params, optimiser, RNG, data
//                     cursor, loss history). Small; recovery restarts any
//                     in-flight circuit evaluation from scratch.
//   * kFullState    — additionally persists the mid-evaluation simulator
//                     snapshot when one is present in the TrainingState.
//   * kIncremental  — like kFullState, but sections are XOR-deltas against
//                     the previous checkpoint, with a self-contained full
//                     checkpoint forced every `full_every` checkpoints to
//                     bound chain length.
//
// Writes are atomic installs via the Env; the manifest is updated after a
// successful install, and retention/garbage-collection is delegated to
// the CheckpointStore (ckpt/store.hpp), which runs after every install
// with crash-consistent ordering (manifest fence before deletion,
// child-before-parent) and sweeps crash-stranded orphan files at startup.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>

#include "ckpt/async_writer.hpp"
#include "ckpt/format.hpp"
#include "ckpt/manifest.hpp"
#include "ckpt/store.hpp"
#include "ckpt/wal.hpp"
#include "io/env.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "qnn/training_state.hpp"
#include "util/thread_pool.hpp"

namespace qnn::ckpt {

enum class Strategy : std::uint8_t {
  kParamsOnly = 0,
  kFullState = 1,
  kIncremental = 2,
};

std::string strategy_name(Strategy s);

struct CheckpointPolicy {
  Strategy strategy = Strategy::kParamsOnly;
  codec::CodecId codec = codec::CodecId::kLz;
  /// Checkpoint when state.step is a positive multiple of this. With the
  /// adaptive mode below, this is only the *initial* interval.
  std::uint64_t every_steps = 10;
  /// What the CheckpointStore keeps resolvable after each install:
  /// keep-last-N window, step-spaced long-horizon history (optionally
  /// Young–Daly-derived), byte budget. See ckpt/store.hpp.
  RetentionPolicy retention;
  /// WHERE the retained set lives when the Env is a tier::TieredEnv:
  /// hot byte budget, pin-last-N hot, demotion batching. Inert on a
  /// flat Env. See tier/migration.hpp.
  tier::TierPolicy tier;
  /// Incremental chains: force a full checkpoint every N checkpoints.
  std::uint64_t full_every = 10;
  /// Run the encode + write pipeline on background threads instead of
  /// synchronously: the trainer thread only snapshots sections; chunk
  /// compression, CRC and the file write all happen off the critical path.
  bool async = false;

  /// Async pipeline: threads for the encode stage (chunk compression +
  /// serialisation). 0 = half of ThreadPool::default_thread_count(),
  /// leaving headroom for the training computation it overlaps.
  std::size_t encode_threads = 0;
  /// Async pipeline: AsyncWriter I/O workers. Clamped to 1 under
  /// Strategy::kIncremental — parallel writers complete out of order, and
  /// a delta child must never be durable before its parent.
  std::size_t writer_threads = 1;
  /// Checkpoints allowed in the encode stage before the trainer blocks
  /// (bounded memory; the blocked time is accounted as backpressure).
  std::size_t encode_queue = 2;
  /// Sections larger than this are chunk-framed so compression and CRC
  /// parallelise (see ckpt/format.hpp); under format v3 those chunks are
  /// content-addressed and deduplicated across checkpoints.
  std::size_t chunk_bytes = std::size_t{1} << 20;

  /// On-disk container version to emit. 0 = newest (v3: oversized
  /// sections are stored as content-addressed chunks in the directory's
  /// chunk store, deduplicated across checkpoints). 2 = self-contained
  /// v2 emit fallback (no chunk store involvement), 1 = legacy
  /// downgrade format.
  std::uint16_t format_version = 0;

  /// Adaptive (Young–Daly) interval selection: when > 0, the checkpointer
  /// measures the per-step wall time and the per-checkpoint cost (EWMA)
  /// and re-derives every_steps ≈ sqrt(2*C*MTBF) / step_time after every
  /// checkpoint, clamped to [1, adaptive_max_steps].
  double target_mtbf_seconds = 0.0;
  std::uint64_t adaptive_max_steps = 100000;

  /// Injectable monotonic clock (seconds); tests drive a fake one.
  /// Defaults to std::chrono::steady_clock.
  std::function<double()> clock;

  /// Delta journal between full installs (ckpt/wal.hpp): when enabled,
  /// every off-boundary maybe_checkpoint() appends one framed record to
  /// the active wal-<epoch>.qwal, the log rotates on each install, and
  /// an over-budget log compacts into a normal install. Forces sync mode
  /// (async = false): the journal's epoch must be durable before its
  /// records claim to delta against it.
  WalPolicy wal;

  /// Observability sinks, both borrowed and optional (null = that form
  /// of instrumentation is compiled to one pointer test). `metrics`
  /// receives per-stage latency histograms live (snapshot/encode/
  /// install) — cumulative totals are exported on demand via
  /// Checkpointer::export_metrics. `tracer` receives one span tree per
  /// checkpoint (checkpoint -> snapshot/encode/install, linked across
  /// the async pipeline's threads by parent ids) plus WAL
  /// append/compaction instants.
  obs::MetricsRegistry* metrics = nullptr;
  obs::Tracer* tracer = nullptr;
};

class Checkpointer {
 public:
  struct Stats {
    std::uint64_t checkpoints = 0;
    std::uint64_t full_checkpoints = 0;
    std::uint64_t incremental_checkpoints = 0;
    std::uint64_t bytes_encoded = 0;   ///< post-codec file sizes
    std::uint64_t bytes_raw = 0;       ///< pre-codec section payloads
    double snapshot_seconds = 0.0;     ///< trainer-thread section build time
    double encode_seconds = 0.0;       ///< trainer-thread encode time (sync)
    double sync_write_seconds = 0.0;   ///< trainer-thread write time (sync)
    double submit_blocked_seconds = 0.0;  ///< async backpressure stalls
    double pipeline_encode_seconds = 0.0; ///< background encode time (async)
    /// Checkpoints lost in the pipeline: encode failed, or the writer
    /// refused the job during shutdown. After a drop the next checkpoint
    /// is forced full so a missing file cannot orphan later deltas.
    std::uint64_t dropped_writes = 0;
    /// The AsyncWriter's own counters, surfaced so shutdown-drops are
    /// never silent: jobs refused because the writer was stopping, and
    /// jobs whose write threw. 0 in sync mode. dropped_writes above is
    /// the pipeline-level view (it also counts encode failures and
    /// quarantined delta children); these are the raw writer-side ones.
    std::uint64_t writer_dropped = 0;
    std::uint64_t writer_failures = 0;
    /// Lifetime dropped-writes count persisted in the MANIFEST ("stat
    /// dropped_writes=N"), surviving restarts — what the inspector
    /// shows post mortem. Includes this session's drops persisted so
    /// far (a drop becomes durable at the next successful install).
    std::uint64_t lifetime_dropped_writes = 0;

    // Content-addressed dedup (format v3). A "chunk ref" is one chunk
    // of one extern section of one checkpoint; deduped refs skipped
    // compression and storage because the chunk was already resident.
    std::uint64_t chunk_refs = 0;
    std::uint64_t chunks_deduped = 0;
    std::uint64_t dedup_bytes = 0;         ///< raw bytes dedup skipped
    std::uint64_t pack_bytes_written = 0;  ///< packfile bytes written

    /// High-water mark of encoded bytes buffered by the encode path:
    /// compression waves in flight plus async containers queued for the
    /// writer. Under format v3 (chunks stream into the packfile, the
    /// container is key tables) this is O(chunk_bytes x encode window x
    /// pipeline depth) — independent of checkpoint size; the bounded-
    /// memory pipeline test asserts exactly that. The v2-inline
    /// fallback buffers whole sections and reports so here honestly.
    std::uint64_t peak_encode_buffer_bytes = 0;

    /// Delta journal (policy.wal): records appended, journal bytes
    /// appended (headers + frames), and over-budget compactions folded
    /// into normal installs this session.
    std::uint64_t wal_records = 0;
    std::uint64_t wal_bytes = 0;
    std::uint64_t wal_compactions = 0;

    /// Total trainer-thread stall attributable to checkpointing.
    [[nodiscard]] double trainer_stall_seconds() const {
      return snapshot_seconds + encode_seconds + sync_write_seconds +
             submit_blocked_seconds;
    }
  };

  Checkpointer(io::Env& env, std::string dir, CheckpointPolicy policy);
  ~Checkpointer();

  Checkpointer(const Checkpointer&) = delete;
  Checkpointer& operator=(const Checkpointer&) = delete;

  /// Checkpoints when the policy's step boundary is hit. Returns true
  /// when a checkpoint was produced.
  bool maybe_checkpoint(const qnn::TrainingState& state);

  /// True when maybe_checkpoint() would checkpoint at `step`. Lets a
  /// caller skip the TrainingState capture entirely on off-boundary
  /// steps — but only in non-adaptive mode: the adaptive interval learns
  /// the step cadence from *every* maybe_checkpoint call, so adaptive
  /// callers must keep calling it each step.
  [[nodiscard]] bool due(std::uint64_t step) const {
    const std::uint64_t interval = policy_.target_mtbf_seconds > 0.0
                                       ? current_interval_
                                       : policy_.every_steps;
    return interval != 0 && step != 0 &&
           step >= last_checkpoint_step_ + interval;
  }

  /// Unconditionally produces a checkpoint of `state`.
  void checkpoint_now(const qnn::TrainingState& state);

  /// Waits for any in-flight async writes to install.
  void flush();

  [[nodiscard]] Stats stats() const;
  /// Retention/GC counters from the underlying CheckpointStore.
  [[nodiscard]] GcStats gc_stats() const { return store_.stats(); }
  /// Hot/cold migration counters (zeros on a flat, non-tiered Env).
  [[nodiscard]] tier::TierStats tier_stats() { return store_.tier_stats(); }
  [[nodiscard]] const CheckpointStore& store() const { return store_; }
  [[nodiscard]] const CheckpointPolicy& policy() const { return policy_; }
  [[nodiscard]] const std::string& dir() const { return dir_; }

  /// The container version this policy emits (resolves the 0 default).
  [[nodiscard]] std::uint16_t effective_format_version() const {
    return policy_.format_version == 0 ? kFormatVersion
                                       : policy_.format_version;
  }
  /// Chunk-store counters (dedup ratio, packfile population).
  [[nodiscard]] CasStats cas_stats() { return store_.chunks().stats(); }

  /// The interval currently in force (== policy().every_steps unless the
  /// adaptive mode has re-derived it).
  [[nodiscard]] std::uint64_t current_interval() const {
    return current_interval_;
  }

  /// Re-exports the cumulative counters (Stats, GC, tier, chunk-store)
  /// into `registry` under the ckpt./gc./tier./cas./wal. prefixes, via
  /// Counter::set so repeated exports are idempotent. Stats stays the
  /// authoritative accumulator; the registry is the common rendering
  /// surface (RESULT lines, inspector --metrics).
  void export_metrics(obs::MetricsRegistry& registry);

 private:
  /// Builds the (possibly delta-encoded) section list and remembers raw
  /// payloads for the next delta. Returns the file object to encode.
  CheckpointFile build_file(const qnn::TrainingState& state,
                            std::uint64_t id);

  /// Installs an encoded checkpoint: manifest upsert + save, chunk-ref
  /// retain, then the store's fenced GC. `refs` are the chunk keys the
  /// file references (empty for self-contained formats). Runs on the
  /// writer thread in async mode.
  void install(ManifestEntry entry, const std::vector<ChunkKey>& refs);

  io::Env& env_;
  std::string dir_;
  CheckpointPolicy policy_;
  /// Live per-stage latency instruments, resolved once from
  /// policy_.metrics at construction (null when metrics are disabled).
  obs::LatencyHistogram* snapshot_hist_ = nullptr;
  obs::LatencyHistogram* encode_hist_ = nullptr;
  obs::LatencyHistogram* install_hist_ = nullptr;
  /// Owns retention + crash-consistent GC + tier migration; invoked
  /// under manifest_mu_.
  CheckpointStore store_;
  /// Measures peak encoded bytes buffered in flight (see Stats).
  util::MemGauge encode_gauge_;
  /// The MANIFEST's lifetime dropped-writes count as loaded at startup;
  /// installs persist base + this session's drops.
  std::uint64_t dropped_writes_base_ = 0;

  /// Guards stats_ only. Kept separate from manifest_mu_ so a writer
  /// thread fsyncing the manifest in install() can never block the
  /// trainer's (or the encode stage's) brief stats updates.
  /// Lock order where nesting is needed: encode_mu_ -> manifest_mu_ -> mu_.
  mutable std::mutex mu_;
  /// Guards manifest_ and broken_chain_tip_; serialises installs.
  std::mutex manifest_mu_;
  Manifest manifest_;
  Stats stats_;

  /// Re-derives current_interval_ from EWMA costs (adaptive mode).
  void update_adaptive_interval(double ckpt_cost_seconds);

  std::uint64_t next_id_ = 1;
  std::uint64_t last_checkpoint_step_ = 0;
  std::uint64_t current_interval_ = 0;

  // Adaptive-mode measurements.
  double last_seen_time_ = -1.0;   ///< clock at the previous maybe_checkpoint
  std::uint64_t last_seen_step_ = 0;
  double ewma_step_seconds_ = 0.0;
  double ewma_ckpt_seconds_ = 0.0;
  /// Raw section payloads of the previous checkpoint (delta bases).
  std::uint64_t last_id_ = 0;
  std::map<SectionKind, Bytes> last_raw_;
  std::uint64_t checkpoints_since_full_ = 0;

  /// One checkpoint in flight through the encode stage. The map node is
  /// pre-reserved on the trainer thread (checkpoint_now) so completing an
  /// encode never allocates — an allocation failure can therefore only
  /// surface before the slot is counted, never wedge flush() afterwards.
  struct PendingEncode {
    bool done = false;
    std::optional<AsyncWriter::Job> job;  ///< nullopt when done = dropped
  };

  /// Hands a finished (or failed: nullopt) encode to the ordered
  /// submission stage: jobs are released to the writer strictly in
  /// checkpoint id order, so an incremental child is never *written*
  /// before its parent. Together with the broken_chain_tip_ quarantine
  /// in install(), the manifest invariant is: every installed checkpoint
  /// resolves — a failed or dropped parent drops its in-flight delta
  /// children too instead of advertising dead entries. Non-blocking:
  /// out-of-turn jobs are stashed; whoever completes the missing id
  /// drains the run. Allocation-free in the map (slots are
  /// pre-reserved).
  void enqueue_ready(std::uint64_t id,
                     std::optional<AsyncWriter::Job> job);

  /// Closes (and supersedes) the previous epoch's journal and opens
  /// wal-<id>.qwal with `state` — the just-installed checkpoint — as the
  /// delta base. Called at the tail of every successful sync install
  /// when policy.wal is enabled.
  void rotate_wal(std::uint64_t id, const qnn::TrainingState& state);

  /// The one definition of "checkpoint `id` never became durable": sets
  /// force_full_, advances broken_chain_tip_, optionally counts the
  /// drop. Allocation-free; safe under encode_mu_ (nesting follows
  /// encode_mu_ -> manifest_mu_ -> mu_).
  void mark_chain_broken(std::uint64_t id, bool count_drop);

  /// Async pipeline. ~Checkpointer flushes before members die; on top of
  /// that, writer_ is declared before pool_ so pool_ is destroyed FIRST —
  /// any straggler encode task drains during ~ThreadPool while writer_ is
  /// still alive, never after it.
  std::mutex encode_mu_;
  std::condition_variable encode_cv_;
  std::size_t pending_encodes_ = 0;
  std::uint64_t next_submit_id_ = 0;
  std::map<std::uint64_t, PendingEncode> ready_jobs_;
  /// Set when a checkpoint was dropped in the pipeline: the next
  /// checkpoint must be full, because deltas may chain through the
  /// missing file. Deltas built before the drop was detected (bounded by
  /// encode_queue) are quarantined at install time via
  /// broken_chain_tip_.
  std::atomic<bool> force_full_{false};
  /// Newest id (guarded by manifest_mu_) that never became durable —
  /// the tip of a broken delta chain. Chains are linear (each child's
  /// parent is the previous id), so one id suffices: install() refuses
  /// to advertise a
  /// child whose parent is the tip (deleting its file and advancing the
  /// tip to it), and a successful full install resets the tip — chains
  /// cannot reach back past a full. Updated at the moment of the drop,
  /// before any later job reaches the writer, and allocation-free so the
  /// failure path cannot itself fail. 0 = no broken chain.
  std::uint64_t broken_chain_tip_ = 0;
  std::unique_ptr<AsyncWriter> writer_;     ///< null in sync mode
  std::unique_ptr<util::ThreadPool> pool_;  ///< null in sync mode
  /// Active delta journal (policy.wal). Created by the first install of
  /// the session — steps before it are covered by the previous session's
  /// (immutable) log up to the step recovery replayed. Trainer-thread
  /// only: wal mode forces sync installs.
  std::unique_ptr<WalWriter> wal_;
};

}  // namespace qnn::ckpt

// The Checkpointer: policy-driven persistence of training state.
//
// Strategies (DESIGN.md §1.3):
//   * kParamsOnly   — classical state only (params, optimiser, RNG, data
//                     cursor, loss history). Small; recovery restarts any
//                     in-flight circuit evaluation from scratch.
//   * kFullState    — additionally persists the mid-evaluation simulator
//                     snapshot when one is present in the TrainingState.
//   * kIncremental  — like kFullState, but sections are XOR-deltas against
//                     the previous checkpoint, with a self-contained full
//                     checkpoint forced every `full_every` checkpoints to
//                     bound chain length.
//
// Writes are atomic installs via the Env; the manifest is updated after a
// successful install, and retention prunes files no longer needed to
// resolve the newest `keep_last` checkpoints.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>

#include "ckpt/async_writer.hpp"
#include "ckpt/format.hpp"
#include "ckpt/manifest.hpp"
#include "io/env.hpp"
#include "qnn/training_state.hpp"

namespace qnn::ckpt {

enum class Strategy : std::uint8_t {
  kParamsOnly = 0,
  kFullState = 1,
  kIncremental = 2,
};

std::string strategy_name(Strategy s);

struct CheckpointPolicy {
  Strategy strategy = Strategy::kParamsOnly;
  codec::CodecId codec = codec::CodecId::kLz;
  /// Checkpoint when state.step is a positive multiple of this. With the
  /// adaptive mode below, this is only the *initial* interval.
  std::uint64_t every_steps = 10;
  /// Newest checkpoints kept resolvable; older files are pruned. 0 = keep
  /// everything.
  std::size_t keep_last = 3;
  /// Incremental chains: force a full checkpoint every N checkpoints.
  std::uint64_t full_every = 10;
  /// Write through a background thread instead of synchronously.
  bool async = false;

  /// Adaptive (Young–Daly) interval selection: when > 0, the checkpointer
  /// measures the per-step wall time and the per-checkpoint cost (EWMA)
  /// and re-derives every_steps ≈ sqrt(2*C*MTBF) / step_time after every
  /// checkpoint, clamped to [1, adaptive_max_steps].
  double target_mtbf_seconds = 0.0;
  std::uint64_t adaptive_max_steps = 100000;

  /// Injectable monotonic clock (seconds); tests drive a fake one.
  /// Defaults to std::chrono::steady_clock.
  std::function<double()> clock;
};

class Checkpointer {
 public:
  struct Stats {
    std::uint64_t checkpoints = 0;
    std::uint64_t full_checkpoints = 0;
    std::uint64_t incremental_checkpoints = 0;
    std::uint64_t bytes_encoded = 0;   ///< post-codec file sizes
    std::uint64_t bytes_raw = 0;       ///< pre-codec section payloads
    double encode_seconds = 0.0;       ///< trainer-thread encode time
    double sync_write_seconds = 0.0;   ///< trainer-thread write time (sync)
    double submit_blocked_seconds = 0.0;  ///< async backpressure stalls
  };

  Checkpointer(io::Env& env, std::string dir, CheckpointPolicy policy);
  ~Checkpointer();

  Checkpointer(const Checkpointer&) = delete;
  Checkpointer& operator=(const Checkpointer&) = delete;

  /// Checkpoints when the policy's step boundary is hit. Returns true
  /// when a checkpoint was produced.
  bool maybe_checkpoint(const qnn::TrainingState& state);

  /// Unconditionally produces a checkpoint of `state`.
  void checkpoint_now(const qnn::TrainingState& state);

  /// Waits for any in-flight async writes to install.
  void flush();

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] const CheckpointPolicy& policy() const { return policy_; }
  [[nodiscard]] const std::string& dir() const { return dir_; }

  /// The interval currently in force (== policy().every_steps unless the
  /// adaptive mode has re-derived it).
  [[nodiscard]] std::uint64_t current_interval() const {
    return current_interval_;
  }

 private:
  /// Builds the (possibly delta-encoded) section list and remembers raw
  /// payloads for the next delta. Returns the file object to encode.
  CheckpointFile build_file(const qnn::TrainingState& state,
                            std::uint64_t id);

  /// Installs an encoded checkpoint: manifest upsert + retention. Runs on
  /// the writer thread in async mode.
  void install(ManifestEntry entry);

  void apply_retention_locked();

  io::Env& env_;
  std::string dir_;
  CheckpointPolicy policy_;

  mutable std::mutex mu_;  ///< guards manifest_ and stats_
  Manifest manifest_;
  Stats stats_;

  /// Re-derives current_interval_ from EWMA costs (adaptive mode).
  void update_adaptive_interval(double ckpt_cost_seconds);

  std::uint64_t next_id_ = 1;
  std::uint64_t last_checkpoint_step_ = 0;
  std::uint64_t current_interval_ = 0;

  // Adaptive-mode measurements.
  double last_seen_time_ = -1.0;   ///< clock at the previous maybe_checkpoint
  std::uint64_t last_seen_step_ = 0;
  double ewma_step_seconds_ = 0.0;
  double ewma_ckpt_seconds_ = 0.0;
  /// Raw section payloads of the previous checkpoint (delta bases).
  std::uint64_t last_id_ = 0;
  std::map<SectionKind, Bytes> last_raw_;
  std::uint64_t checkpoints_since_full_ = 0;

  std::unique_ptr<AsyncWriter> writer_;  ///< null in sync mode
};

}  // namespace qnn::ckpt

// Background checkpoint writer.
//
// Training should not stall on storage: the trainer hands the encoded
// checkpoint to a single writer thread through a bounded queue (double
// buffering by default) and continues computing. When the queue is full
// the submitter blocks — backpressure rather than unbounded memory — and
// the blocked time is accounted separately so the F3 overhead experiment
// can attribute costs.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "io/env.hpp"

namespace qnn::ckpt {

class AsyncWriter {
 public:
  struct Job {
    std::string path;
    util::Bytes data;
    /// Runs on the writer thread after a successful atomic install
    /// (manifest update + retention).
    std::function<void()> on_installed;
  };

  struct Stats {
    std::uint64_t jobs = 0;
    std::uint64_t bytes = 0;
    double blocked_seconds = 0.0;  ///< submitter stalls on a full queue
    double write_seconds = 0.0;    ///< writer-thread time in the Env
    std::uint64_t failures = 0;    ///< jobs whose write threw
  };

  explicit AsyncWriter(io::Env& env, std::size_t queue_capacity = 2);

  /// Drains the queue, then joins the thread.
  ~AsyncWriter();

  AsyncWriter(const AsyncWriter&) = delete;
  AsyncWriter& operator=(const AsyncWriter&) = delete;

  /// Enqueues a job; blocks while the queue is at capacity.
  void submit(Job job);

  /// Blocks until every submitted job has been installed (or failed).
  void flush();

  [[nodiscard]] Stats stats() const;

 private:
  void worker_loop();

  io::Env& env_;
  const std::size_t capacity_;

  mutable std::mutex mu_;
  std::condition_variable cv_space_;  ///< signalled when queue shrinks
  std::condition_variable cv_work_;   ///< signalled when work arrives/stops
  std::condition_variable cv_idle_;   ///< signalled when fully drained
  std::deque<Job> queue_;
  bool in_flight_ = false;
  bool stop_ = false;
  Stats stats_;

  std::thread worker_;
};

}  // namespace qnn::ckpt

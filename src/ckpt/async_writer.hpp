// Background checkpoint writer.
//
// Training should not stall on storage: the trainer (or the encode
// pipeline) hands the encoded checkpoint to a pool of writer threads
// through a bounded queue (double buffering by default) and continues
// computing. When the queue is full the submitter blocks — backpressure
// rather than unbounded memory — and the blocked time is accounted
// separately so the F3 overhead experiment can attribute costs. Multiple
// workers overlap independent installs (useful on high-queue-depth
// devices and mirrored Envs); per-file atomicity still comes from
// Env::write_file_atomic.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "io/env.hpp"

namespace qnn::ckpt {

class AsyncWriter {
 public:
  struct Job {
    std::string path;
    util::Bytes data;
    /// Runs on a writer thread strictly BEFORE the main write: installs
    /// the job's prerequisites — e.g. committing the checkpoint's
    /// STREAMED chunk packfile (Batch::commit), whose records must be
    /// durable before any file referencing its chunks exists. Throwing
    /// fails the whole job (on_failed; the main file is never written).
    std::function<void()> pre_install;
    /// Runs on a writer thread after a successful atomic install
    /// (manifest update + retention).
    std::function<void()> on_installed;
    /// Runs on a writer thread when the write (or on_installed) threw:
    /// the job is not durable and the submitter may need to compensate
    /// (e.g. force the next incremental checkpoint to be full).
    std::function<void()> on_failed;
  };

  struct Stats {
    std::uint64_t jobs = 0;
    std::uint64_t bytes = 0;
    double blocked_seconds = 0.0;  ///< submitter stalls on a full queue
    double write_seconds = 0.0;    ///< writer-thread time in the Env
    std::uint64_t failures = 0;    ///< jobs whose write threw
    std::uint64_t dropped = 0;     ///< jobs refused because of shutdown
  };

  explicit AsyncWriter(io::Env& env, std::size_t queue_capacity = 2,
                       std::size_t num_workers = 1);

  /// Drains the queue, then joins the workers.
  ~AsyncWriter();

  AsyncWriter(const AsyncWriter&) = delete;
  AsyncWriter& operator=(const AsyncWriter&) = delete;

  [[nodiscard]] std::size_t num_workers() const { return workers_.size(); }

  /// Enqueues a job; blocks while the queue is at capacity. Returns true
  /// when the job was queued, false when it was refused because the writer
  /// is shutting down (counted in Stats::dropped) — callers must treat a
  /// false return as "not persisted".
  [[nodiscard]] bool submit(Job job);

  /// Blocks until every submitted job has been installed (or failed).
  void flush();

  [[nodiscard]] Stats stats() const;

 private:
  void worker_loop();

  io::Env& env_;
  const std::size_t capacity_;

  mutable std::mutex mu_;
  std::condition_variable cv_space_;  ///< signalled when queue shrinks
  std::condition_variable cv_work_;   ///< signalled when work arrives/stops
  std::condition_variable cv_idle_;   ///< signalled when fully drained
  std::deque<Job> queue_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  Stats stats_;

  std::vector<std::thread> workers_;
};

}  // namespace qnn::ckpt

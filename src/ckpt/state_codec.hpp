// Mapping between qnn::TrainingState and checkpoint sections.
//
// Each logical component of the training state becomes exactly one
// section, so strategies can include/exclude and delta-encode components
// independently, and the T1 inventory can report true per-component sizes.
#pragma once

#include "ckpt/format.hpp"
#include "qnn/training_state.hpp"

namespace qnn::ckpt {

/// Encodes one component of `state` into a raw section payload.
Bytes encode_section_payload(SectionKind kind,
                             const qnn::TrainingState& state);

/// Builds the section list for `state`. When `include_simulator` is false
/// the (potentially huge) simulator snapshot is omitted. `codec` is
/// recorded on every section.
std::vector<Section> state_to_sections(const qnn::TrainingState& state,
                                       bool include_simulator,
                                       codec::CodecId codec);

/// Reassembles a TrainingState from fully-resolved (non-delta) sections.
/// Throws CorruptCheckpoint when required sections are missing or
/// malformed. The simulator section is optional.
qnn::TrainingState sections_to_state(const std::vector<Section>& sections);

}  // namespace qnn::ckpt

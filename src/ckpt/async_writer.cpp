#include "ckpt/async_writer.hpp"

#include <algorithm>

#include "util/timer.hpp"

namespace qnn::ckpt {

AsyncWriter::AsyncWriter(io::Env& env, std::size_t queue_capacity,
                         std::size_t num_workers)
    : env_(env), capacity_(queue_capacity == 0 ? 1 : queue_capacity) {
  const std::size_t n = std::max<std::size_t>(1, num_workers);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

AsyncWriter::~AsyncWriter() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  cv_space_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) {
      t.join();
    }
  }
}

bool AsyncWriter::submit(Job job) {
  util::Timer blocked;
  std::unique_lock lock(mu_);
  cv_space_.wait(lock, [this] { return queue_.size() < capacity_ || stop_; });
  stats_.blocked_seconds += blocked.seconds();
  if (stop_) {
    // Shutting down: refuse instead of silently losing the job — the
    // destructor drains what is already queued, not what never arrived.
    ++stats_.dropped;
    return false;
  }
  stats_.bytes += job.data.size();
  queue_.push_back(std::move(job));
  cv_work_.notify_one();
  return true;
}

void AsyncWriter::flush() {
  std::unique_lock lock(mu_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

AsyncWriter::Stats AsyncWriter::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

void AsyncWriter::worker_loop() {
  while (true) {
    Job job;
    {
      std::unique_lock lock(mu_);
      cv_work_.wait(lock, [this] { return !queue_.empty() || stop_; });
      if (queue_.empty()) {
        // stop_ set and nothing left to drain.
        cv_idle_.notify_all();
        return;
      }
      job = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
      cv_space_.notify_one();
    }

    util::Timer write_timer;
    bool ok = true;
    try {
      // Prerequisites first (the streamed packfile commits before the
      // checkpoint that references it): the dependency order IS the
      // crash-consistency argument.
      if (job.pre_install) {
        job.pre_install();
      }
      env_.write_file_atomic(job.path, job.data);
    } catch (const std::exception&) {
      ok = false;
    }
    const double elapsed = write_timer.seconds();

    if (ok && job.on_installed) {
      try {
        job.on_installed();
      } catch (const std::exception&) {
        ok = false;
      }
    }

    if (!ok && job.on_failed) {
      try {
        job.on_failed();
      } catch (const std::exception&) {
        // Compensation must never take down the writer.
      }
    }

    {
      std::lock_guard lock(mu_);
      stats_.write_seconds += elapsed;
      ++stats_.jobs;
      if (!ok) {
        ++stats_.failures;
      }
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) {
        cv_idle_.notify_all();
      }
    }
  }
}

}  // namespace qnn::ckpt

#include "ckpt/async_writer.hpp"

#include "util/timer.hpp"

namespace qnn::ckpt {

AsyncWriter::AsyncWriter(io::Env& env, std::size_t queue_capacity)
    : env_(env), capacity_(queue_capacity == 0 ? 1 : queue_capacity) {
  worker_ = std::thread([this] { worker_loop(); });
}

AsyncWriter::~AsyncWriter() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  if (worker_.joinable()) {
    worker_.join();
  }
}

void AsyncWriter::submit(Job job) {
  util::Timer blocked;
  std::unique_lock lock(mu_);
  cv_space_.wait(lock, [this] { return queue_.size() < capacity_ || stop_; });
  stats_.blocked_seconds += blocked.seconds();
  if (stop_) {
    return;  // shutting down; job dropped (destructor drains what's queued)
  }
  stats_.bytes += job.data.size();
  queue_.push_back(std::move(job));
  cv_work_.notify_one();
}

void AsyncWriter::flush() {
  std::unique_lock lock(mu_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && !in_flight_; });
}

AsyncWriter::Stats AsyncWriter::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

void AsyncWriter::worker_loop() {
  while (true) {
    Job job;
    {
      std::unique_lock lock(mu_);
      cv_work_.wait(lock, [this] { return !queue_.empty() || stop_; });
      if (queue_.empty()) {
        // stop_ set and nothing left to drain.
        cv_idle_.notify_all();
        return;
      }
      job = std::move(queue_.front());
      queue_.pop_front();
      in_flight_ = true;
      cv_space_.notify_one();
    }

    util::Timer write_timer;
    bool ok = true;
    try {
      env_.write_file_atomic(job.path, job.data);
    } catch (const std::exception&) {
      ok = false;
    }
    const double elapsed = write_timer.seconds();

    if (ok && job.on_installed) {
      try {
        job.on_installed();
      } catch (const std::exception&) {
        ok = false;
      }
    }

    {
      std::lock_guard lock(mu_);
      stats_.write_seconds += elapsed;
      ++stats_.jobs;
      if (!ok) {
        ++stats_.failures;
      }
      in_flight_ = false;
      if (queue_.empty()) {
        cv_idle_.notify_all();
      }
    }
  }
}

}  // namespace qnn::ckpt

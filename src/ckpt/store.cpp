#include "ckpt/store.hpp"

#include <algorithm>
#include <set>

#include "ckpt/wal.hpp"
#include "sched/young_daly.hpp"

namespace qnn::ckpt {

std::uint64_t RetentionPolicy::effective_step_spacing() const {
  if (step_spacing > 0) {
    return step_spacing;
  }
  return sched::young_spacing_steps(ckpt_cost_seconds, mtbf_seconds,
                                    step_seconds);
}

CheckpointStore::CheckpointStore(io::Env& env, std::string dir,
                                 RetentionPolicy policy,
                                 tier::TierPolicy tier_policy)
    : env_(env),
      dir_(std::move(dir)),
      policy_(policy),
      chunks_(env_, dir_) {
  // The engine exists whenever the env is tiered (startup reconcile is
  // wanted even with demotion disabled); the policy decides whether
  // migrate() ever moves anything.
  if (auto* tiered = dynamic_cast<tier::TieredEnv*>(&env_)) {
    tiering_ =
        std::make_unique<tier::MigrationEngine>(*tiered, dir_, tier_policy);
  }
}

std::size_t CheckpointStore::migrate(const Manifest& manifest) {
  if (!tiering_) {
    return 0;
  }
  return tiering_->migrate(manifest);
}

std::vector<ChunkKey> CheckpointStore::read_chunk_refs(
    const std::string& name) const {
  try {
    // Ranged read: headers + extern key tables only (each table CRC-
    // verified), so releasing a victim's references costs kilobytes of
    // I/O regardless of the victim's size. The weaker-than-CRC64 trust
    // is safe HERE because any inconsistency throws and releases
    // nothing — the bias is towards leaking (chunks stay until a
    // future sweep can prove liveness), never towards freeing
    // something still referenced.
    return list_chunk_refs(env_, dir_ + "/" + name);
  } catch (const std::exception&) {
    return {};
  }
}

namespace {

/// Inserts `id` and its whole ancestor chain into `keep`.
void keep_with_chain(const Manifest& manifest, std::uint64_t id,
                     std::set<std::uint64_t>& keep) {
  while (id != 0 && !keep.contains(id)) {
    keep.insert(id);
    const ManifestEntry* e = manifest.find(id);
    if (e == nullptr) {
      break;  // dangling parent; recovery will flag it
    }
    id = e->parent_id;
  }
}

/// True when `id`'s ancestor chain (exclusive) passes through `through`.
bool chain_passes_through(const Manifest& manifest, std::uint64_t id,
                          std::uint64_t through) {
  const ManifestEntry* e = manifest.find(id);
  std::size_t hops = 0;
  while (e != nullptr && e->parent_id != 0 &&
         hops++ < manifest.entries().size()) {
    if (e->parent_id == through) {
      return true;
    }
    e = manifest.find(e->parent_id);
  }
  return false;
}

}  // namespace

std::uint64_t CheckpointStore::stored_bytes(const Manifest& manifest,
                                            std::uint64_t id) const {
  const ManifestEntry* e = manifest.find(id);
  if (e != nullptr && e->bytes > 0) {
    return e->bytes;
  }
  const std::string file = e != nullptr ? e->file : checkpoint_file_name(id);
  return env_.file_size(dir_ + "/" + file).value_or(0);
}

std::vector<std::uint64_t> CheckpointStore::plan_retained(
    const Manifest& manifest) const {
  const auto& entries = manifest.entries();
  if (entries.empty()) {
    return {};
  }
  std::set<std::uint64_t> keep;

  // 1. The keep_last window (everything when keep_last == 0), chains
  //    included.
  const std::size_t n = entries.size();
  const std::size_t window_first =
      (policy_.keep_last == 0 || n <= policy_.keep_last)
          ? 0
          : n - policy_.keep_last;
  for (std::size_t i = window_first; i < n; ++i) {
    keep_with_chain(manifest, entries[i].id, keep);
  }

  // 2. Spaced long-horizon history older than the window: oldest first,
  //    keeping an entry only when it advances the step clock by at least
  //    the spacing.
  const std::uint64_t spacing = policy_.effective_step_spacing();
  if (spacing > 0) {
    std::uint64_t last_kept_step = 0;
    bool have_anchor = false;
    for (std::size_t i = 0; i < window_first; ++i) {
      if (!have_anchor || entries[i].step >= last_kept_step + spacing) {
        keep_with_chain(manifest, entries[i].id, keep);
        last_kept_step = entries[i].step;
        have_anchor = true;
      }
    }
  }

  // 3. Byte budget: evict oldest-first until the retained files fit.
  //    Evicting an entry also evicts every kept entry whose chain passes
  //    through it (the set stays chain-closed). Only the newest entry and
  //    its chain are sacrosanct.
  if (policy_.byte_budget > 0) {
    std::set<std::uint64_t> sacrosanct;
    keep_with_chain(manifest, entries.back().id, sacrosanct);

    std::uint64_t total = 0;
    for (const std::uint64_t id : keep) {
      total += stored_bytes(manifest, id);
    }
    while (total > policy_.byte_budget) {
      std::uint64_t victim = 0;
      bool found = false;
      for (const std::uint64_t id : keep) {  // ascending: oldest first
        if (!sacrosanct.contains(id)) {
          victim = id;
          found = true;
          break;
        }
      }
      if (!found) {
        break;  // only the newest chain is left; collect() records this
      }
      std::vector<std::uint64_t> evicted{victim};
      for (const std::uint64_t id : keep) {
        if (id > victim && chain_passes_through(manifest, id, victim)) {
          evicted.push_back(id);
        }
      }
      for (const std::uint64_t id : evicted) {
        total -= std::min(total, stored_bytes(manifest, id));
        keep.erase(id);
      }
    }
  }

  return {keep.begin(), keep.end()};
}

std::size_t CheckpointStore::collect(Manifest& manifest,
                                     bool save_manifest) {
  const auto retained = plan_retained(manifest);

  if (policy_.byte_budget > 0) {
    std::uint64_t total = 0;
    for (const std::uint64_t id : retained) {
      total += stored_bytes(manifest, id);
    }
    if (total > policy_.byte_budget) {
      std::lock_guard lock(mu_);
      ++stats_.budget_violations;
    }
  }

  std::vector<ManifestEntry> victims;
  for (const ManifestEntry& e : manifest.entries()) {
    if (!std::binary_search(retained.begin(), retained.end(), e.id)) {
      victims.push_back(e);
    }
  }
  if (victims.empty()) {
    if (save_manifest) {
      manifest.save(env_, dir_);
    }
    // The journal rides the manifest fence even when nothing dies: an
    // install that only retained new references must still land them.
    chunks_.save_refs();
    return 0;
  }
  {
    std::lock_guard lock(mu_);
    ++stats_.runs;
  }
  obs::Span gc_span(tracer_, "gc.collect", "gc");
  gc_span.note("victims", static_cast<std::uint64_t>(victims.size()));

  // Chunk accounting only exists where packfiles do; and when it does,
  // the refcount baseline MUST be loaded while every victim's file is
  // still on disk — releasing against a post-deletion rebuild would
  // double-free chunks the victims share with survivors.
  const bool cas_active = chunks_.has_packfiles();
  if (cas_active) {
    chunks_.open();
  }

  // Children (higher ids) strictly before parents, across batches too.
  std::sort(victims.begin(), victims.end(),
            [](const ManifestEntry& a, const ManifestEntry& b) {
              return a.id > b.id;
            });

  std::size_t deleted = 0;
  const std::size_t batch = std::max<std::size_t>(1, policy_.gc_batch);
  for (std::size_t begin = 0; begin < victims.size(); begin += batch) {
    const std::size_t end = std::min(begin + batch, victims.size());
    // Fence: stop advertising this batch before any of its files die. A
    // crash right here strands orphan files, never dead manifest entries.
    for (std::size_t i = begin; i < end; ++i) {
      manifest.remove(victims[i].id);
    }
    manifest.save(env_, dir_);
    {
      std::lock_guard lock(mu_);
      ++stats_.manifest_rewrites;
    }
    for (std::size_t i = begin; i < end; ++i) {
      const ManifestEntry& e = victims[i];
      const std::uint64_t bytes =
          e.bytes > 0 ? e.bytes
                      : env_.file_size(dir_ + "/" + e.file).value_or(0);
      // Read the victim's chunk references while the file still exists;
      // only a durably deleted file gives its references back. With no
      // packfiles there is nothing to account, so victims are not even
      // read (v2-emit directories keep their file-level GC cost).
      const auto refs =
          cas_active ? read_chunk_refs(e.file) : std::vector<ChunkKey>{};
      env_.remove_file(dir_ + "/" + e.file);
      chunks_.release(refs);
      if (tiering_) {
        // The tiered remove cleared both tiers; drop the victim's
        // residency mark so the next TIERMAP fence stays tight.
        tiering_->forget({e.file});
      }
      ++deleted;
      std::lock_guard lock(mu_);
      ++stats_.files_deleted;
      stats_.bytes_reclaimed += bytes;
    }
  }
  // Delta journals of the epochs that just died are garbage too: every
  // fence above already stopped advertising their epochs, so the reap
  // runs strictly behind it (the rotation on the install path removes
  // the directly-superseded log; this catches GC'd and crash-stranded
  // ones).
  for (const std::string& name : plan_stale_wals(manifest)) {
    env_.remove_file(dir_ + "/" + name);
    std::lock_guard lock(mu_);
    ++stats_.wals_reaped;
  }
  // Chunk-level GC rides the same pass: packfiles whose every record
  // just became unreferenced die here (compaction of mixed packfiles is
  // deferred to the startup sweep), and the refcount journal is
  // rewritten behind the same fence discipline as the manifest.
  const std::uint64_t chunk_bytes = chunks_.sweep(/*compact=*/false);
  chunks_.save_refs();
  if (chunk_bytes > 0) {
    std::lock_guard lock(mu_);
    stats_.bytes_reclaimed += chunk_bytes;
  }
  gc_span.note("deleted", static_cast<std::uint64_t>(deleted));
  gc_span.note("chunk_bytes_swept", chunk_bytes);
  return deleted;
}

std::vector<std::string> CheckpointStore::plan_orphans(
    const Manifest& manifest) const {
  const std::uint64_t tip = manifest.max_id();
  if (tip == 0) {
    // No manifest entries: the files ARE the only metadata (recovery
    // rescans the directory); nothing is provably garbage.
    return {};
  }
  if (manifest.parse_warnings() > 0) {
    // Lines were lost to damage; an entry whose chain passes through a
    // lost line still needs that parent's FILE even though the manifest
    // no longer names it. Deleting anything here turns recoverable
    // manifest damage into permanent data loss — sweep nothing.
    return {};
  }
  // Same reasoning for damage load() cannot detect (lines lost cleanly
  // by an external edit or copy truncated at a line boundary): the
  // install/GC fences keep a healthy manifest chain-closed, so ANY
  // dangling parent link means the manifest is not trustworthy enough
  // to name garbage — and the missing parent's own ancestors, known
  // only to the file headers, cannot be shielded from here.
  for (const ManifestEntry& e : manifest.entries()) {
    if (e.parent_id != 0 && manifest.find(e.parent_id) == nullptr) {
      return {};
    }
  }
  std::vector<std::pair<std::uint64_t, std::string>> orphans;
  for (const std::string& name : env_.list_dir(dir_)) {
    if (const auto id = parse_checkpoint_file_name(name)) {
      if (*id < tip && manifest.find(*id) == nullptr) {
        orphans.emplace_back(*id, name);
      }
    }
  }
  // Child-before-parent here too: a crash mid-sweep must not leave a
  // delta file whose parent file the sweep already removed.
  std::sort(orphans.begin(), orphans.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<std::string> names;
  names.reserve(orphans.size());
  for (auto& [id, name] : orphans) {
    names.push_back(std::move(name));
  }
  return names;
}

std::vector<std::string> CheckpointStore::plan_stale_wals(
    const Manifest& manifest) const {
  if (manifest.entries().empty() || manifest.parse_warnings() > 0) {
    return {};
  }
  // A dangling parent link means lines were lost cleanly (see
  // plan_orphans): the active journal's epoch line may be among them, so
  // nothing here is provably stale.
  for (const ManifestEntry& e : manifest.entries()) {
    if (e.parent_id != 0 && manifest.find(e.parent_id) == nullptr) {
      return {};
    }
  }
  std::vector<std::string> stale;
  for (const std::string& name : env_.list_dir(dir_)) {
    if (const auto epoch = parse_wal_file_name(name)) {
      if (manifest.find(*epoch) == nullptr) {
        stale.push_back(name);
      }
    }
  }
  return stale;
}

std::size_t CheckpointStore::sweep_orphans(const Manifest& manifest) {
  // Tier reconciliation runs first (nothing is in flight at startup):
  // duplicates a crash stranded mid-migration collapse to the hot copy
  // and the TIERMAP is rebuilt, so every listing the sweep takes below
  // sees exactly one physical copy per object.
  if (tiering_) {
    tiering_->reconcile();
  }
  // Same discipline as collect(): load the refcount baseline BEFORE the
  // first orphan dies, or releasing an orphan's references would punch
  // holes in counts rebuilt from the already-thinned directory.
  const bool cas_active = chunks_.has_packfiles();
  if (cas_active) {
    chunks_.open();
  }
  std::size_t deleted = 0;
  for (const std::string& name : plan_orphans(manifest)) {
    const std::uint64_t bytes =
        env_.file_size(dir_ + "/" + name).value_or(0);
    const auto refs =
        cas_active ? read_chunk_refs(name) : std::vector<ChunkKey>{};
    env_.remove_file(dir_ + "/" + name);
    chunks_.release(refs);
    if (tiering_) {
      tiering_->forget({name});
    }
    ++deleted;
    std::lock_guard lock(mu_);
    ++stats_.orphans_deleted;
    stats_.bytes_reclaimed += bytes;
  }
  // Stale delta journals: logs whose epoch the manifest no longer
  // advertises (their base install was GC'd or the post-install remove
  // was lost to a crash). The active log — an advertised epoch — is
  // pinned and untouched.
  for (const std::string& name : plan_stale_wals(manifest)) {
    env_.remove_file(dir_ + "/" + name);
    ++deleted;
    std::lock_guard lock(mu_);
    ++stats_.wals_reaped;
  }
  // Startup is the full chunk sweep: no install is in flight (no pins),
  // so fully-dead packfiles are deleted AND mixed ones are compacted —
  // after this call no unreferenced chunk remains on disk (unless some
  // checkpoint file was unreadable, in which case the store refuses to
  // sweep at all: liveness would be guesswork).
  const std::uint64_t chunk_bytes = chunks_.sweep(/*compact=*/true);
  chunks_.save_refs();
  if (chunk_bytes > 0) {
    std::lock_guard lock(mu_);
    stats_.bytes_reclaimed += chunk_bytes;
  }
  return deleted;
}

GcStats CheckpointStore::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

}  // namespace qnn::ckpt

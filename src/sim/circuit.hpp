// Parameterised-circuit IR.
//
// A Circuit is an immutable-after-construction sequence of gate ops over a
// fixed qubit count. Rotation angles either carry a fixed value or refer to
// a trainable parameter slot (angle = coeff * params[slot]); the same slot
// may be shared by several gates (QAOA-style layers). Executing a circuit
// never mutates it, so gradient evaluation can bind many parameter vectors
// against one IR.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sim/gates.hpp"
#include "sim/state_vector.hpp"

namespace qnn::sim {

enum class GateKind : std::uint8_t {
  kX, kY, kZ, kH, kS, kSdg, kT, kTdg, kSX,   // fixed 1q
  kRX, kRY, kRZ, kP,                          // parameterised 1q
  kCX, kCZ, kSwap,                            // fixed 2q
  kCRZ, kRXX, kRYY, kRZZ,                     // parameterised 2q
};

/// True for rotation gates that take an angle.
bool gate_is_parameterised(GateKind kind);

/// Number of qubits the gate acts on (1 or 2).
int gate_arity(GateKind kind);

/// Lower-case mnemonic ("rx", "cx", ...).
std::string gate_name(GateKind kind);

/// Reference to a trainable parameter slot with a fixed multiplier.
struct ParamRef {
  std::size_t slot;
  double coeff = 1.0;
};

/// Execution tuning knobs for Circuit::apply / Circuit::run.
struct ExecOptions {
  /// Multiplies runs of single-qubit gates on the same qubit into one 2x2
  /// matrix before touching the state vector (one O(2^n) sweep instead of
  /// one per gate). Mathematically exact; floating-point results may
  /// differ from the unfused path in the last bits, so the gate-by-gate
  /// ResumableExecutor path never fuses.
  bool fuse_single_qubit_gates = false;
};

/// One gate application.
struct Op {
  GateKind kind;
  std::uint32_t q0 = 0;
  std::uint32_t q1 = 0;           ///< used when arity == 2
  std::int32_t param_slot = -1;   ///< -1: fixed angle
  double coeff = 1.0;             ///< angle multiplier for slot params
  double fixed_angle = 0.0;       ///< used when param_slot == -1

  /// Resolves the angle under a parameter binding.
  [[nodiscard]] double angle(std::span<const double> params) const;
};

class Circuit {
 public:
  explicit Circuit(std::size_t num_qubits) : num_qubits_(num_qubits) {}

  [[nodiscard]] std::size_t num_qubits() const { return num_qubits_; }
  [[nodiscard]] std::size_t num_params() const { return num_params_; }
  [[nodiscard]] const std::vector<Op>& ops() const { return ops_; }
  [[nodiscard]] std::size_t gate_count() const { return ops_.size(); }
  [[nodiscard]] std::size_t two_qubit_gate_count() const;

  /// Circuit depth: longest per-qubit chain of gates.
  [[nodiscard]] std::size_t depth() const;

  /// Allocates a fresh trainable parameter slot.
  ParamRef new_param();

  /// Appends a pre-built op (validated: qubit indices in range, distinct
  /// for 2q gates, parameter slot allocated). Lets tools re-emit ops from
  /// another circuit, e.g. with angles resolved to fixed values.
  void append(const Op& op);

  // --- builders (fixed gates) ---
  void x(std::size_t q) { push_1q(GateKind::kX, q); }
  void y(std::size_t q) { push_1q(GateKind::kY, q); }
  void z(std::size_t q) { push_1q(GateKind::kZ, q); }
  void h(std::size_t q) { push_1q(GateKind::kH, q); }
  void s(std::size_t q) { push_1q(GateKind::kS, q); }
  void sdg(std::size_t q) { push_1q(GateKind::kSdg, q); }
  void t(std::size_t q) { push_1q(GateKind::kT, q); }
  void tdg(std::size_t q) { push_1q(GateKind::kTdg, q); }
  void sx(std::size_t q) { push_1q(GateKind::kSX, q); }
  void cx(std::size_t control, std::size_t target) {
    push_2q(GateKind::kCX, control, target);
  }
  void cz(std::size_t q0, std::size_t q1) { push_2q(GateKind::kCZ, q0, q1); }
  void swap(std::size_t q0, std::size_t q1) {
    push_2q(GateKind::kSwap, q0, q1);
  }

  // --- builders (rotations; fixed-angle and trainable overloads) ---
  void rx(std::size_t q, double theta) { push_rot1(GateKind::kRX, q, theta); }
  void rx(std::size_t q, ParamRef p) { push_rot1(GateKind::kRX, q, p); }
  void ry(std::size_t q, double theta) { push_rot1(GateKind::kRY, q, theta); }
  void ry(std::size_t q, ParamRef p) { push_rot1(GateKind::kRY, q, p); }
  void rz(std::size_t q, double theta) { push_rot1(GateKind::kRZ, q, theta); }
  void rz(std::size_t q, ParamRef p) { push_rot1(GateKind::kRZ, q, p); }
  void p(std::size_t q, double lambda) { push_rot1(GateKind::kP, q, lambda); }
  void p(std::size_t q, ParamRef pr) { push_rot1(GateKind::kP, q, pr); }
  void crz(std::size_t c, std::size_t t, double theta) {
    push_rot2(GateKind::kCRZ, c, t, theta);
  }
  void crz(std::size_t c, std::size_t t, ParamRef p) {
    push_rot2(GateKind::kCRZ, c, t, p);
  }
  void rxx(std::size_t q0, std::size_t q1, double theta) {
    push_rot2(GateKind::kRXX, q0, q1, theta);
  }
  void rxx(std::size_t q0, std::size_t q1, ParamRef p) {
    push_rot2(GateKind::kRXX, q0, q1, p);
  }
  void ryy(std::size_t q0, std::size_t q1, double theta) {
    push_rot2(GateKind::kRYY, q0, q1, theta);
  }
  void ryy(std::size_t q0, std::size_t q1, ParamRef p) {
    push_rot2(GateKind::kRYY, q0, q1, p);
  }
  void rzz(std::size_t q0, std::size_t q1, double theta) {
    push_rot2(GateKind::kRZZ, q0, q1, theta);
  }
  void rzz(std::size_t q0, std::size_t q1, ParamRef p) {
    push_rot2(GateKind::kRZZ, q0, q1, p);
  }

  /// Applies a single op to `sv` under the parameter binding.
  void apply_op(const Op& op, StateVector& sv,
                std::span<const double> params) const;

  /// Runs the whole circuit on `sv`. params.size() must equal num_params().
  void apply(StateVector& sv, std::span<const double> params) const;

  /// Runs the whole circuit on `sv` with execution options (e.g. the fused
  /// single-qubit-gate path used by the training hot loop).
  void apply(StateVector& sv, std::span<const double> params,
             const ExecOptions& options) const;

  /// Runs the circuit starting from |0...0>, returning the output state.
  [[nodiscard]] StateVector run(std::span<const double> params) const;

  /// run() with execution options.
  [[nodiscard]] StateVector run(std::span<const double> params,
                                const ExecOptions& options) const;

  /// Multi-line textual rendering (one op per line).
  [[nodiscard]] std::string dump() const;

  /// Stable 64-bit structural hash of the circuit (qubits, parameter
  /// slots, every op with its angles). Recorded in checkpoints so a
  /// snapshot cannot be silently restored against a different ansatz.
  [[nodiscard]] std::uint64_t fingerprint() const;

 private:
  void check_qubit(std::size_t q) const;
  void push_1q(GateKind kind, std::size_t q);
  void push_2q(GateKind kind, std::size_t q0, std::size_t q1);
  void push_rot1(GateKind kind, std::size_t q, double theta);
  void push_rot1(GateKind kind, std::size_t q, ParamRef p);
  void push_rot2(GateKind kind, std::size_t q0, std::size_t q1, double theta);
  void push_rot2(GateKind kind, std::size_t q0, std::size_t q1, ParamRef p);

  std::size_t num_qubits_;
  std::size_t num_params_ = 0;
  std::vector<Op> ops_;
};

}  // namespace qnn::sim

#include "sim/circuit_io.hpp"

#include <cstdio>
#include <map>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace qnn::sim {

namespace {

constexpr const char* kHeader = "qnnqasm 1";

std::string format_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

const std::map<std::string, GateKind>& gate_by_name() {
  static const std::map<std::string, GateKind> kMap = [] {
    std::map<std::string, GateKind> m;
    for (int k = 0; k <= static_cast<int>(GateKind::kRZZ); ++k) {
      const auto kind = static_cast<GateKind>(k);
      m[gate_name(kind)] = kind;
    }
    return m;
  }();
  return kMap;
}

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw std::invalid_argument("qnnqasm line " + std::to_string(line_no) +
                              ": " + what);
}

std::size_t parse_qubit(const std::string& token, std::size_t line_no) {
  if (token.size() < 2 || token[0] != 'q') {
    fail(line_no, "expected qubit 'qN', got '" + token + "'");
  }
  try {
    return std::stoull(token.substr(1));
  } catch (const std::exception&) {
    fail(line_no, "bad qubit index '" + token + "'");
  }
}

double parse_double(const std::string& token, std::size_t line_no) {
  try {
    std::size_t used = 0;
    const double v = std::stod(token, &used);
    if (used != token.size()) {
      fail(line_no, "trailing characters in number '" + token + "'");
    }
    return v;
  } catch (const std::invalid_argument&) {
    fail(line_no, "bad number '" + token + "'");
  } catch (const std::out_of_range&) {
    fail(line_no, "number out of range '" + token + "'");
  }
}

}  // namespace

std::string circuit_to_text(const Circuit& circuit) {
  std::ostringstream os;
  os << kHeader << "\n";
  os << "qubits " << circuit.num_qubits() << "\n";
  os << "params " << circuit.num_params() << "\n";
  for (const Op& op : circuit.ops()) {
    os << gate_name(op.kind) << " q" << op.q0;
    if (gate_arity(op.kind) == 2) {
      os << " q" << op.q1;
    }
    if (gate_is_parameterised(op.kind)) {
      if (op.param_slot >= 0) {
        os << " p" << op.param_slot << " * " << format_double(op.coeff);
      } else {
        os << " theta " << format_double(op.fixed_angle);
      }
    }
    os << "\n";
  }
  return os.str();
}

Circuit circuit_from_text(const std::string& text) {
  const auto lines = util::split(text, '\n');
  std::size_t line_no = 0;
  std::size_t cursor = 0;

  auto next_meaningful = [&]() -> std::optional<std::string> {
    while (cursor < lines.size()) {
      const std::string line = util::trim(lines[cursor]);
      ++cursor;
      ++line_no;
      if (!line.empty() && line[0] != '#') {
        return line;
      }
    }
    return std::nullopt;
  };

  const auto header = next_meaningful();
  if (!header || *header != kHeader) {
    fail(line_no, "missing 'qnnqasm 1' header");
  }

  auto parse_count = [&](const char* keyword) -> std::size_t {
    const auto line = next_meaningful();
    if (!line) {
      fail(line_no, std::string("expected '") + keyword + " N'");
    }
    const auto fields = util::split(*line, ' ');
    if (fields.size() != 2 || fields[0] != keyword) {
      fail(line_no, std::string("expected '") + keyword + " N', got '" +
                        *line + "'");
    }
    try {
      return std::stoull(fields[1]);
    } catch (const std::exception&) {
      fail(line_no, std::string("bad count in '") + *line + "'");
    }
  };

  const std::size_t num_qubits = parse_count("qubits");
  const std::size_t num_params = parse_count("params");

  Circuit circuit(num_qubits);
  for (std::size_t i = 0; i < num_params; ++i) {
    circuit.new_param();
  }

  while (auto line = next_meaningful()) {
    std::vector<std::string> tokens;
    for (const std::string& token : util::split(*line, ' ')) {
      if (!token.empty()) {
        tokens.push_back(token);
      }
    }
    const auto it = gate_by_name().find(tokens[0]);
    if (it == gate_by_name().end()) {
      fail(line_no, "unknown gate '" + tokens[0] + "'");
    }
    const GateKind kind = it->second;
    const int arity = gate_arity(kind);
    const bool parameterised = gate_is_parameterised(kind);

    std::size_t expect = 1 + static_cast<std::size_t>(arity);
    if (parameterised) {
      expect += 2;  // "theta V" minimum; slot form has 4 extra tokens
    }
    if (tokens.size() < expect) {
      fail(line_no, "too few tokens for '" + tokens[0] + "'");
    }

    Op op;
    op.kind = kind;
    std::size_t t = 1;
    op.q0 = static_cast<std::uint32_t>(parse_qubit(tokens[t++], line_no));
    if (arity == 2) {
      op.q1 = static_cast<std::uint32_t>(parse_qubit(tokens[t++], line_no));
    }
    if (parameterised) {
      if (tokens[t] == "theta") {
        if (t + 2 != tokens.size()) {
          fail(line_no, "expected 'theta <value>'");
        }
        op.fixed_angle = parse_double(tokens[t + 1], line_no);
      } else if (tokens[t].size() >= 2 && tokens[t][0] == 'p') {
        if (t + 3 != tokens.size() || tokens[t + 1] != "*") {
          fail(line_no, "expected 'p<slot> * <coeff>'");
        }
        std::size_t slot = 0;
        try {
          slot = std::stoull(tokens[t].substr(1));
        } catch (const std::exception&) {
          fail(line_no, "bad parameter slot '" + tokens[t] + "'");
        }
        if (slot >= num_params) {
          fail(line_no, "parameter slot out of range");
        }
        op.param_slot = static_cast<std::int32_t>(slot);
        op.coeff = parse_double(tokens[t + 2], line_no);
      } else {
        fail(line_no, "expected 'theta <value>' or 'p<slot> * <coeff>'");
      }
    } else if (tokens.size() != expect) {
      fail(line_no, "trailing tokens after '" + tokens[0] + "'");
    }

    try {
      circuit.append(op);
    } catch (const std::exception& e) {
      fail(line_no, e.what());
    }
  }
  return circuit;
}

}  // namespace qnn::sim

#include "sim/pauli.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "sim/gates.hpp"
#include "sim/parallel.hpp"
#include "util/thread_pool.hpp"

namespace qnn::sim {

PauliTerm PauliTerm::from_string(double coeff, const std::string& s) {
  PauliTerm term;
  term.coeff = coeff;
  term.paulis.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case 'I': term.paulis.push_back(PauliOp::kI); break;
      case 'X': term.paulis.push_back(PauliOp::kX); break;
      case 'Y': term.paulis.push_back(PauliOp::kY); break;
      case 'Z': term.paulis.push_back(PauliOp::kZ); break;
      default:
        throw std::invalid_argument("PauliTerm: bad character in string");
    }
  }
  return term;
}

std::string PauliTerm::to_string() const {
  std::ostringstream os;
  os << coeff << " * ";
  for (PauliOp p : paulis) {
    os << "IXYZ"[static_cast<int>(p)];
  }
  return os.str();
}

bool PauliTerm::is_diagonal() const {
  for (PauliOp p : paulis) {
    if (p == PauliOp::kX || p == PauliOp::kY) {
      return false;
    }
  }
  return true;
}

void Observable::add_term(double coeff, const std::string& s) {
  add_term(PauliTerm::from_string(coeff, s));
}

void Observable::add_term(PauliTerm term) {
  if (term.paulis.size() != num_qubits_) {
    throw std::invalid_argument("Observable::add_term: length mismatch");
  }
  terms_.push_back(std::move(term));
}

namespace {

/// Z-mask of a diagonal term: bit q set iff paulis[q] == Z.
std::uint64_t z_mask(const PauliTerm& term) {
  std::uint64_t mask = 0;
  for (std::size_t q = 0; q < term.paulis.size(); ++q) {
    if (term.paulis[q] == PauliOp::kZ) {
      mask |= std::uint64_t{1} << q;
    }
  }
  return mask;
}

double diagonal_expectation(const PauliTerm& term, const StateVector& psi) {
  const std::uint64_t mask = z_mask(term);
  const auto amps = psi.amplitudes();
  const double e = util::parallel_reduce(
      kernel_pool(amps.size()), 0, amps.size(), kKernelGrain, 0.0,
      [amps, mask](std::size_t lo, std::size_t hi) {
        double acc = 0.0;
        for (std::size_t i = lo; i < hi; ++i) {
          const double p = std::norm(amps[i]);
          acc += (std::popcount(i & mask) % 2 == 0) ? p : -p;
        }
        return acc;
      });
  return term.coeff * e;
}

double general_expectation(const PauliTerm& term, const StateVector& psi) {
  StateVector scratch = psi;
  for (std::size_t q = 0; q < term.paulis.size(); ++q) {
    switch (term.paulis[q]) {
      case PauliOp::kI: break;
      case PauliOp::kX: scratch.apply_1q(gates::X(), q); break;
      case PauliOp::kY: scratch.apply_1q(gates::Y(), q); break;
      case PauliOp::kZ: scratch.apply_1q(gates::Z(), q); break;
    }
  }
  return term.coeff * psi.inner_product(scratch).real();
}

}  // namespace

double Observable::expectation(const StateVector& psi) const {
  if (psi.num_qubits() != num_qubits_) {
    throw std::invalid_argument("Observable::expectation: qubit mismatch");
  }
  double e = 0.0;
  for (const PauliTerm& term : terms_) {
    e += term.is_diagonal() ? diagonal_expectation(term, psi)
                            : general_expectation(term, psi);
  }
  return e;
}

StateVector Observable::apply(const StateVector& psi) const {
  if (psi.num_qubits() != num_qubits_) {
    throw std::invalid_argument("Observable::apply: qubit mismatch");
  }
  StateVector out(num_qubits_);
  auto out_amps = out.mutable_amplitudes();
  std::fill(out_amps.begin(), out_amps.end(), cplx{0.0, 0.0});
  for (const PauliTerm& term : terms_) {
    StateVector scratch = psi;
    for (std::size_t q = 0; q < term.paulis.size(); ++q) {
      switch (term.paulis[q]) {
        case PauliOp::kI: break;
        case PauliOp::kX: scratch.apply_1q(gates::X(), q); break;
        case PauliOp::kY: scratch.apply_1q(gates::Y(), q); break;
        case PauliOp::kZ: scratch.apply_1q(gates::Z(), q); break;
      }
    }
    const auto s = scratch.amplitudes();
    for (std::size_t i = 0; i < out_amps.size(); ++i) {
      out_amps[i] += term.coeff * s[i];
    }
  }
  return out;
}

double Observable::sampled_expectation(const StateVector& psi,
                                       std::size_t shots,
                                       util::Rng& rng) const {
  if (shots == 0) {
    throw std::invalid_argument("sampled_expectation: shots must be > 0");
  }
  for (const PauliTerm& term : terms_) {
    if (!term.is_diagonal()) {
      throw std::invalid_argument(
          "sampled_expectation: non-diagonal term; rotate the circuit "
          "into the measurement basis first");
    }
  }
  const auto outcomes = psi.sample(shots, rng);
  double e = 0.0;
  for (const PauliTerm& term : terms_) {
    const std::uint64_t mask = z_mask(term);
    std::int64_t sum = 0;
    for (std::uint64_t o : outcomes) {
      sum += (std::popcount(o & mask) % 2 == 0) ? 1 : -1;
    }
    e += term.coeff * static_cast<double>(sum) / static_cast<double>(shots);
  }
  return e;
}

std::string Observable::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < terms_.size(); ++i) {
    if (i) {
      os << " + ";
    }
    os << terms_[i].to_string();
  }
  return os.str();
}

Observable transverse_field_ising(std::size_t num_qubits, double coupling_j,
                                  double field_h) {
  Observable h(num_qubits);
  for (std::size_t q = 0; q + 1 < num_qubits; ++q) {
    std::string s(num_qubits, 'I');
    s[q] = 'Z';
    s[q + 1] = 'Z';
    h.add_term(-coupling_j, s);
  }
  for (std::size_t q = 0; q < num_qubits; ++q) {
    std::string s(num_qubits, 'I');
    s[q] = 'X';
    h.add_term(-field_h, s);
  }
  return h;
}

Observable parity_observable(std::size_t num_qubits) {
  Observable obs(num_qubits);
  obs.add_term(1.0, std::string(num_qubits, 'Z'));
  return obs;
}

}  // namespace qnn::sim

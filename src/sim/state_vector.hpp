// Dense state-vector quantum simulator (the Aer-style substrate).
//
// Stores all 2^n complex amplitudes of an n-qubit register and applies
// gates as in-place linear maps. This is the component whose serialised
// size dominates hybrid-training checkpoints (16 bytes/amplitude), so the
// storage experiments revolve around it.
//
// Qubit 0 is the least-significant bit of the basis-state index.
#pragma once

#include <complex>
#include <cstdint>
#include <span>
#include <vector>

#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace qnn::sim {

using cplx = std::complex<double>;

/// 2x2 gate matrix, row-major: {m00, m01, m10, m11}.
using Mat2 = std::array<cplx, 4>;
/// 4x4 gate matrix, row-major; index = row*4 + col; basis order |q1 q0>.
using Mat4 = std::array<cplx, 16>;

class StateVector {
 public:
  /// Initialises |0...0>. `num_qubits` may be 0 (a single amplitude = 1).
  explicit StateVector(std::size_t num_qubits);

  [[nodiscard]] std::size_t num_qubits() const { return num_qubits_; }
  [[nodiscard]] std::size_t dim() const { return amps_.size(); }

  [[nodiscard]] std::span<const cplx> amplitudes() const { return amps_; }
  [[nodiscard]] std::span<cplx> mutable_amplitudes() { return amps_; }

  [[nodiscard]] cplx amplitude(std::size_t basis_state) const {
    return amps_.at(basis_state);
  }

  /// Resets to |0...0>.
  void reset();

  /// Sets to the computational basis state `basis_state`.
  void set_basis_state(std::size_t basis_state);

  /// Applies a single-qubit gate to `qubit`.
  void apply_1q(const Mat2& m, std::size_t qubit);

  /// Applies a general two-qubit gate; `q0` is the low bit of the 4-dim
  /// basis index, `q1` the high bit. q0 != q1 required.
  void apply_2q(const Mat4& m, std::size_t q0, std::size_t q1);

  /// Applies `m` to `target` on the subspace where `control` is |1>.
  void apply_controlled_1q(const Mat2& m, std::size_t control,
                           std::size_t target);

  /// Multiplies the amplitude of every basis state with odd parity over
  /// `mask` by `phase` (fast diagonal path used by RZZ etc.).
  void apply_phase_on_parity(std::uint64_t mask, cplx phase);

  /// 2-norm of the state (1.0 for any valid quantum state).
  [[nodiscard]] double norm() const;

  /// Rescales to unit norm. Throws std::runtime_error on the zero vector.
  void normalize();

  /// Probability that measuring `qubit` yields 1.
  [[nodiscard]] double probability_one(std::size_t qubit) const;

  /// Projectively measures `qubit`: collapses the state and returns the
  /// outcome (0/1), consuming one uniform draw from `rng`.
  int measure(std::size_t qubit, util::Rng& rng);

  /// Samples `shots` full-register measurement outcomes without collapsing
  /// the state (independent shots from |amp|^2 via inverse-CDF).
  [[nodiscard]] std::vector<std::uint64_t> sample(std::size_t shots,
                                                  util::Rng& rng) const;

  /// <this|other>. Dimensions must match.
  [[nodiscard]] cplx inner_product(const StateVector& other) const;

  /// |<this|other>|^2 — pure-state fidelity.
  [[nodiscard]] double fidelity(const StateVector& other) const;

  /// Serialises num_qubits + raw amplitudes (16 bytes each).
  [[nodiscard]] util::Bytes serialize() const;

  /// Restores a serialize() payload. Throws on malformed input.
  static StateVector deserialize(util::ByteSpan data);

  bool operator==(const StateVector& other) const = default;

 private:
  void check_qubit(std::size_t qubit) const;

  std::size_t num_qubits_;
  std::vector<cplx> amps_;
};

/// Trace distance proxy for pure states: sqrt(1 - F). Symmetric, in [0,1].
double pure_state_distance(const StateVector& a, const StateVector& b);

}  // namespace qnn::sim

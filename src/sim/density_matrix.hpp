// Dense density-matrix simulator.
//
// Exact mixed-state evolution for small registers (4^n entries, n <= 12):
// the ground truth against which the trajectory noise model in noise.hpp
// is validated (trajectory-averaged pure states must converge to the
// density-matrix channel output). Also usable directly for noisy
// workloads where exactness matters more than scale.
//
// Row-major storage: rho[r * dim + c]; qubit 0 is the least-significant
// index bit, matching StateVector.
#pragma once

#include <vector>

#include "sim/circuit.hpp"
#include "sim/pauli.hpp"
#include "sim/state_vector.hpp"

namespace qnn::sim {

class DensityMatrix {
 public:
  /// Initialises |0...0><0...0|.
  explicit DensityMatrix(std::size_t num_qubits);

  /// rho = |psi><psi|.
  static DensityMatrix from_state(const StateVector& psi);

  [[nodiscard]] std::size_t num_qubits() const { return num_qubits_; }
  [[nodiscard]] std::size_t dim() const { return dim_; }
  [[nodiscard]] cplx element(std::size_t row, std::size_t col) const {
    return rho_.at(row * dim_ + col);
  }

  /// tr(rho) — 1 for any valid state.
  [[nodiscard]] double trace() const;

  /// tr(rho^2) — 1 iff pure.
  [[nodiscard]] double purity() const;

  /// Applies a unitary 1-qubit gate: rho -> U rho U^dagger.
  void apply_1q(const Mat2& u, std::size_t qubit);

  /// Applies a controlled 1-qubit unitary.
  void apply_controlled_1q(const Mat2& u, std::size_t control,
                           std::size_t target);

  /// Applies a general 2-qubit unitary (q0 = low bit of the 4-dim index).
  void apply_2q(const Mat4& u, std::size_t q0, std::size_t q1);

  /// Applies a single-qubit Kraus channel {K_i}: rho -> sum K_i rho K_i^+.
  /// The Kraus set must satisfy sum K_i^+ K_i = I (checked to 1e-9).
  void apply_channel_1q(const std::vector<Mat2>& kraus, std::size_t qubit);

  /// Runs a whole circuit (parameter binding as in Circuit::apply).
  void apply(const Circuit& circuit, std::span<const double> params);

  /// <O> = tr(rho O) for a Pauli-sum observable.
  [[nodiscard]] double expectation(const Observable& observable) const;

  /// Probability of measuring `qubit` as 1.
  [[nodiscard]] double probability_one(std::size_t qubit) const;

  /// Fidelity <psi| rho |psi> against a pure state.
  [[nodiscard]] double fidelity(const StateVector& psi) const;

  /// Max |rho - other| entry-wise (test metric).
  [[nodiscard]] double max_abs_diff(const DensityMatrix& other) const;

  /// Convex mixture: this = (1-w)*this + w*other.
  void mix_with(const DensityMatrix& other, double w);

 private:
  void check_qubit(std::size_t qubit) const;

  std::size_t num_qubits_;
  std::size_t dim_;
  std::vector<cplx> rho_;
};

/// Standard single-qubit channels as Kraus sets.
namespace channels {
std::vector<Mat2> depolarizing(double p);
std::vector<Mat2> amplitude_damping(double gamma);
std::vector<Mat2> bit_flip(double p);
std::vector<Mat2> phase_flip(double p);
}  // namespace channels

struct NoiseModel;  // defined in noise.hpp

/// Exact noisy circuit evolution: applies each gate then the NoiseModel's
/// channels on the touched qubits — the density-matrix mirror of
/// run_with_noise() in noise.hpp. Trajectory averages converge to this.
DensityMatrix run_density_with_noise(const Circuit& circuit,
                                     std::span<const double> params,
                                     const NoiseModel& model);

}  // namespace qnn::sim

// Circuit <-> text serialisation (a minimal QASM-flavoured dialect).
//
// Lets tools persist and display the ansatz a checkpoint was taken
// against, and lets jobs be described in files instead of code:
//
//   qnnqasm 1
//   qubits 3
//   params 2
//   h q0
//   cx q0 q1
//   ry q2 p0 * 1
//   rzz q1 q2 theta 0.5
//
// Parameterised gates reference a slot (`p<slot> * <coeff>`) or carry a
// fixed angle (`theta <value>`). Doubles round-trip exactly (printed with
// max precision), so text -> parse preserves Circuit::fingerprint().
#pragma once

#include <string>

#include "sim/circuit.hpp"

namespace qnn::sim {

/// Renders a circuit in the qnnqasm dialect.
std::string circuit_to_text(const Circuit& circuit);

/// Parses a qnnqasm string. Throws std::invalid_argument with a
/// line-numbered message on any syntax or semantic error.
Circuit circuit_from_text(const std::string& text);

}  // namespace qnn::sim

#include "sim/circuit.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "util/bytes.hpp"
#include "util/crc.hpp"

namespace qnn::sim {

bool gate_is_parameterised(GateKind kind) {
  switch (kind) {
    case GateKind::kRX:
    case GateKind::kRY:
    case GateKind::kRZ:
    case GateKind::kP:
    case GateKind::kCRZ:
    case GateKind::kRXX:
    case GateKind::kRYY:
    case GateKind::kRZZ:
      return true;
    default:
      return false;
  }
}

int gate_arity(GateKind kind) {
  switch (kind) {
    case GateKind::kCX:
    case GateKind::kCZ:
    case GateKind::kSwap:
    case GateKind::kCRZ:
    case GateKind::kRXX:
    case GateKind::kRYY:
    case GateKind::kRZZ:
      return 2;
    default:
      return 1;
  }
}

std::string gate_name(GateKind kind) {
  switch (kind) {
    case GateKind::kX: return "x";
    case GateKind::kY: return "y";
    case GateKind::kZ: return "z";
    case GateKind::kH: return "h";
    case GateKind::kS: return "s";
    case GateKind::kSdg: return "sdg";
    case GateKind::kT: return "t";
    case GateKind::kTdg: return "tdg";
    case GateKind::kSX: return "sx";
    case GateKind::kRX: return "rx";
    case GateKind::kRY: return "ry";
    case GateKind::kRZ: return "rz";
    case GateKind::kP: return "p";
    case GateKind::kCX: return "cx";
    case GateKind::kCZ: return "cz";
    case GateKind::kSwap: return "swap";
    case GateKind::kCRZ: return "crz";
    case GateKind::kRXX: return "rxx";
    case GateKind::kRYY: return "ryy";
    case GateKind::kRZZ: return "rzz";
  }
  return "?";
}

double Op::angle(std::span<const double> params) const {
  if (param_slot < 0) {
    return fixed_angle;
  }
  const auto slot = static_cast<std::size_t>(param_slot);
  if (slot >= params.size()) {
    throw std::out_of_range("Op::angle: parameter slot out of range");
  }
  return coeff * params[slot];
}

std::size_t Circuit::two_qubit_gate_count() const {
  return static_cast<std::size_t>(
      std::count_if(ops_.begin(), ops_.end(),
                    [](const Op& op) { return gate_arity(op.kind) == 2; }));
}

std::size_t Circuit::depth() const {
  std::vector<std::size_t> level(num_qubits_, 0);
  for (const Op& op : ops_) {
    if (gate_arity(op.kind) == 2) {
      const std::size_t next = std::max(level[op.q0], level[op.q1]) + 1;
      level[op.q0] = level[op.q1] = next;
    } else {
      ++level[op.q0];
    }
  }
  return level.empty() ? 0 : *std::max_element(level.begin(), level.end());
}

ParamRef Circuit::new_param() { return ParamRef{num_params_++, 1.0}; }

void Circuit::append(const Op& op) {
  check_qubit(op.q0);
  if (gate_arity(op.kind) == 2) {
    check_qubit(op.q1);
    if (op.q0 == op.q1) {
      throw std::invalid_argument(
          "Circuit::append: 2q gate needs distinct qubits");
    }
  }
  if (op.param_slot >= 0 &&
      static_cast<std::size_t>(op.param_slot) >= num_params_) {
    throw std::out_of_range("Circuit::append: parameter slot not allocated");
  }
  ops_.push_back(op);
}

void Circuit::check_qubit(std::size_t q) const {
  if (q >= num_qubits_) {
    throw std::out_of_range("Circuit: qubit index out of range");
  }
}

void Circuit::push_1q(GateKind kind, std::size_t q) {
  check_qubit(q);
  ops_.push_back(Op{.kind = kind, .q0 = static_cast<std::uint32_t>(q)});
}

void Circuit::push_2q(GateKind kind, std::size_t q0, std::size_t q1) {
  check_qubit(q0);
  check_qubit(q1);
  if (q0 == q1) {
    throw std::invalid_argument("Circuit: 2q gate needs distinct qubits");
  }
  ops_.push_back(Op{.kind = kind,
                    .q0 = static_cast<std::uint32_t>(q0),
                    .q1 = static_cast<std::uint32_t>(q1)});
}

void Circuit::push_rot1(GateKind kind, std::size_t q, double theta) {
  push_1q(kind, q);
  ops_.back().fixed_angle = theta;
}

void Circuit::push_rot1(GateKind kind, std::size_t q, ParamRef p) {
  if (p.slot >= num_params_) {
    throw std::out_of_range("Circuit: ParamRef slot not allocated");
  }
  push_1q(kind, q);
  ops_.back().param_slot = static_cast<std::int32_t>(p.slot);
  ops_.back().coeff = p.coeff;
}

void Circuit::push_rot2(GateKind kind, std::size_t q0, std::size_t q1,
                        double theta) {
  push_2q(kind, q0, q1);
  ops_.back().fixed_angle = theta;
}

void Circuit::push_rot2(GateKind kind, std::size_t q0, std::size_t q1,
                        ParamRef p) {
  if (p.slot >= num_params_) {
    throw std::out_of_range("Circuit: ParamRef slot not allocated");
  }
  push_2q(kind, q0, q1);
  ops_.back().param_slot = static_cast<std::int32_t>(p.slot);
  ops_.back().coeff = p.coeff;
}

namespace {

/// The 2x2 matrix of a single-qubit op under the given parameter binding.
/// Single source of truth for the 1q GateKind dispatch: both the
/// gate-by-gate path (apply_op) and the fused path build on it.
Mat2 op_matrix_1q(const Op& op, std::span<const double> params) {
  using namespace gates;
  switch (op.kind) {
    case GateKind::kX: return X();
    case GateKind::kY: return Y();
    case GateKind::kZ: return Z();
    case GateKind::kH: return H();
    case GateKind::kS: return S();
    case GateKind::kSdg: return Sdg();
    case GateKind::kT: return T();
    case GateKind::kTdg: return Tdg();
    case GateKind::kSX: return SX();
    case GateKind::kRX: return RX(op.angle(params));
    case GateKind::kRY: return RY(op.angle(params));
    case GateKind::kRZ: return RZ(op.angle(params));
    case GateKind::kP: return P(op.angle(params));
    default:
      throw std::logic_error("op_matrix_1q: not a single-qubit gate");
  }
}

}  // namespace

void Circuit::apply_op(const Op& op, StateVector& sv,
                       std::span<const double> params) const {
  using namespace gates;
  if (gate_arity(op.kind) == 1) {
    sv.apply_1q(op_matrix_1q(op, params), op.q0);
    return;
  }
  switch (op.kind) {
    case GateKind::kCX:
      sv.apply_controlled_1q(X(), op.q0, op.q1);
      return;
    case GateKind::kCZ:
      sv.apply_controlled_1q(Z(), op.q0, op.q1);
      return;
    case GateKind::kSwap:
      // |q1 q0> basis: SWAP is its own matrix, q0 = low bit.
      sv.apply_2q(SWAP(), op.q0, op.q1);
      return;
    case GateKind::kCRZ:
      sv.apply_controlled_1q(RZ(op.angle(params)), op.q0, op.q1);
      return;
    case GateKind::kRXX:
      sv.apply_2q(RXX(op.angle(params)), op.q0, op.q1);
      return;
    case GateKind::kRYY:
      sv.apply_2q(RYY(op.angle(params)), op.q0, op.q1);
      return;
    case GateKind::kRZZ:
      sv.apply_2q(RZZ(op.angle(params)), op.q0, op.q1);
      return;
    default:
      throw std::logic_error("apply_op: unknown gate kind");
  }
}

void Circuit::apply(StateVector& sv, std::span<const double> params) const {
  if (sv.num_qubits() != num_qubits_) {
    throw std::invalid_argument("Circuit::apply: qubit count mismatch");
  }
  if (params.size() != num_params_) {
    throw std::invalid_argument("Circuit::apply: parameter count mismatch");
  }
  for (const Op& op : ops_) {
    apply_op(op, sv, params);
  }
}

void Circuit::apply(StateVector& sv, std::span<const double> params,
                    const ExecOptions& options) const {
  if (!options.fuse_single_qubit_gates) {
    apply(sv, params);
    return;
  }
  if (sv.num_qubits() != num_qubits_) {
    throw std::invalid_argument("Circuit::apply: qubit count mismatch");
  }
  if (params.size() != num_params_) {
    throw std::invalid_argument("Circuit::apply: parameter count mismatch");
  }
  // Per-qubit pending fused matrix; a pending product is flushed only when
  // a multi-qubit gate touches that qubit (single-qubit gates on distinct
  // qubits commute exactly) or at the end of the circuit.
  std::vector<bool> has_pending(num_qubits_, false);
  std::vector<Mat2> pending(num_qubits_);
  auto flush = [&](std::size_t q) {
    if (has_pending[q]) {
      sv.apply_1q(pending[q], q);
      has_pending[q] = false;
    }
  };
  for (const Op& op : ops_) {
    if (gate_arity(op.kind) == 1) {
      const Mat2 m = op_matrix_1q(op, params);
      // matmul(m, pending): the earlier (pending) matrix applies first.
      pending[op.q0] =
          has_pending[op.q0] ? gates::matmul(m, pending[op.q0]) : m;
      has_pending[op.q0] = true;
    } else {
      flush(op.q0);
      flush(op.q1);
      apply_op(op, sv, params);
    }
  }
  for (std::size_t q = 0; q < num_qubits_; ++q) {
    flush(q);
  }
}

StateVector Circuit::run(std::span<const double> params) const {
  StateVector sv(num_qubits_);
  apply(sv, params);
  return sv;
}

StateVector Circuit::run(std::span<const double> params,
                         const ExecOptions& options) const {
  StateVector sv(num_qubits_);
  apply(sv, params, options);
  return sv;
}

std::uint64_t Circuit::fingerprint() const {
  util::Bytes buf;
  util::put_le<std::uint64_t>(buf, num_qubits_);
  util::put_le<std::uint64_t>(buf, num_params_);
  for (const Op& op : ops_) {
    util::put_le<std::uint8_t>(buf, static_cast<std::uint8_t>(op.kind));
    util::put_le<std::uint32_t>(buf, op.q0);
    util::put_le<std::uint32_t>(buf, op.q1);
    util::put_le<std::int32_t>(buf, op.param_slot);
    util::put_le<double>(buf, op.coeff);
    util::put_le<double>(buf, op.fixed_angle);
  }
  return util::crc64(buf);
}

std::string Circuit::dump() const {
  std::ostringstream os;
  os << "circuit qubits=" << num_qubits_ << " params=" << num_params_
     << " gates=" << ops_.size() << " depth=" << depth() << "\n";
  for (const Op& op : ops_) {
    os << "  " << gate_name(op.kind) << " q" << op.q0;
    if (gate_arity(op.kind) == 2) {
      os << ",q" << op.q1;
    }
    if (gate_is_parameterised(op.kind)) {
      if (op.param_slot >= 0) {
        os << " theta=" << op.coeff << "*p[" << op.param_slot << "]";
      } else {
        os << " theta=" << op.fixed_angle;
      }
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace qnn::sim

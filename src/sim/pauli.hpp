// Pauli-string observables and expectation values.
//
// Hybrid-training losses are expectation values of weighted Pauli sums
// (VQE Hamiltonians, parity classifiers). Index convention: paulis[q] acts
// on qubit q (qubit 0 = least-significant basis bit).
#pragma once

#include <string>
#include <vector>

#include "sim/state_vector.hpp"

namespace qnn::sim {

enum class PauliOp : std::uint8_t { kI = 0, kX = 1, kY = 2, kZ = 3 };

/// One weighted Pauli string, e.g. 0.5 * Z0 X2.
struct PauliTerm {
  double coeff = 1.0;
  std::vector<PauliOp> paulis;  ///< length == num_qubits

  /// Parses "IXYZ..." where character i acts on qubit i. Any other
  /// character throws std::invalid_argument.
  static PauliTerm from_string(double coeff, const std::string& s);

  /// "0.5 * XZIY" style rendering.
  [[nodiscard]] std::string to_string() const;

  /// True when the term contains only I and Z (diagonal in the
  /// computational basis — fast expectation path).
  [[nodiscard]] bool is_diagonal() const;
};

/// A weighted sum of Pauli strings over a fixed register size.
class Observable {
 public:
  explicit Observable(std::size_t num_qubits) : num_qubits_(num_qubits) {}

  [[nodiscard]] std::size_t num_qubits() const { return num_qubits_; }
  [[nodiscard]] const std::vector<PauliTerm>& terms() const { return terms_; }

  /// Adds coeff * (pauli string parsed from `s`); s.size() must equal
  /// num_qubits().
  void add_term(double coeff, const std::string& s);
  void add_term(PauliTerm term);

  /// <psi|O|psi> for a normalised state. Diagonal terms use an O(2^n)
  /// parity sweep; general terms apply single-qubit Paulis to a scratch
  /// copy.
  [[nodiscard]] double expectation(const StateVector& psi) const;

  /// Applies the (generally non-unitary) operator O to |psi>, returning
  /// O|psi> un-normalised. Used by power-iteration ground-state solvers
  /// and the property tests.
  [[nodiscard]] StateVector apply(const StateVector& psi) const;

  /// Estimates <O> from `shots` computational-basis samples. Only valid
  /// for observables whose every term is diagonal (checked, throws
  /// std::invalid_argument otherwise). Models finite-shot readout.
  [[nodiscard]] double sampled_expectation(const StateVector& psi,
                                           std::size_t shots,
                                           util::Rng& rng) const;

  [[nodiscard]] std::string to_string() const;

 private:
  std::size_t num_qubits_;
  std::vector<PauliTerm> terms_;
};

/// Transverse-field Ising chain H = -J sum_i Z_i Z_{i+1} - h sum_i X_i
/// (open boundary). The canonical VQE workload in the benches.
Observable transverse_field_ising(std::size_t num_qubits, double coupling_j,
                                  double field_h);

/// Parity observable Z_0 Z_1 ... Z_{n-1}, the classifier readout.
Observable parity_observable(std::size_t num_qubits);

}  // namespace qnn::sim

// Quantum-trajectory noise channels.
//
// NISQ-realism for the training workloads: after every gate, per-qubit
// error channels fire stochastically (Monte-Carlo wavefunction / quantum
// trajectory method). Noise consumes RNG draws, which is exactly why the
// RNG stream position must live inside checkpoints — replaying a resumed
// noisy run must branch identically.
#pragma once

#include "sim/circuit.hpp"
#include "sim/state_vector.hpp"
#include "util/rng.hpp"

namespace qnn::sim {

/// Per-gate error probabilities; all zero = noiseless.
struct NoiseModel {
  double depolarizing_1q = 0.0;  ///< after each 1q gate, per qubit
  double depolarizing_2q = 0.0;  ///< after each 2q gate, per qubit
  double amplitude_damping = 0.0;  ///< T1-style decay per touched qubit
  double bit_flip = 0.0;           ///< X error per touched qubit
  double phase_flip = 0.0;         ///< Z error per touched qubit

  [[nodiscard]] bool enabled() const {
    return depolarizing_1q > 0.0 || depolarizing_2q > 0.0 ||
           amplitude_damping > 0.0 || bit_flip > 0.0 || phase_flip > 0.0;
  }
};

/// Applies one trajectory step of the noise model to `qubit`.
/// `two_qubit_context` selects the 2q depolarizing rate.
void apply_noise_to_qubit(StateVector& sv, std::size_t qubit,
                          const NoiseModel& model, bool two_qubit_context,
                          util::Rng& rng);

/// Runs `circuit` from |0...0> with per-gate trajectory noise.
StateVector run_with_noise(const Circuit& circuit,
                           std::span<const double> params,
                           const NoiseModel& model, util::Rng& rng);

/// Applies the circuit to an existing state with trajectory noise.
void apply_with_noise(const Circuit& circuit, StateVector& sv,
                      std::span<const double> params, const NoiseModel& model,
                      util::Rng& rng);

}  // namespace qnn::sim

#include "sim/density_matrix.hpp"

#include <cmath>
#include <stdexcept>

#include "sim/gates.hpp"
#include "sim/noise.hpp"

namespace qnn::sim {

namespace {
constexpr std::size_t kMaxDensityQubits = 12;  // 4^12 entries = 256 MiB

/// Checks sum K_i^dagger K_i == I to tolerance.
void check_trace_preserving(const std::vector<Mat2>& kraus) {
  Mat2 sum{0.0, 0.0, 0.0, 0.0};
  for (const Mat2& k : kraus) {
    const Mat2 kk = gates::matmul(gates::dagger(k), k);
    for (std::size_t i = 0; i < 4; ++i) {
      sum[i] += kk[i];
    }
  }
  if (gates::max_abs_diff(sum, gates::I()) > 1e-9) {
    throw std::invalid_argument(
        "apply_channel_1q: Kraus set is not trace preserving");
  }
}
}  // namespace

DensityMatrix::DensityMatrix(std::size_t num_qubits)
    : num_qubits_(num_qubits), dim_(std::size_t{1} << num_qubits) {
  if (num_qubits > kMaxDensityQubits) {
    throw std::invalid_argument("DensityMatrix: too many qubits");
  }
  rho_.assign(dim_ * dim_, cplx{0.0, 0.0});
  rho_[0] = cplx{1.0, 0.0};
}

DensityMatrix DensityMatrix::from_state(const StateVector& psi) {
  DensityMatrix dm(psi.num_qubits());
  const auto amps = psi.amplitudes();
  for (std::size_t r = 0; r < dm.dim_; ++r) {
    for (std::size_t c = 0; c < dm.dim_; ++c) {
      dm.rho_[r * dm.dim_ + c] = amps[r] * std::conj(amps[c]);
    }
  }
  return dm;
}

void DensityMatrix::check_qubit(std::size_t qubit) const {
  if (qubit >= num_qubits_) {
    throw std::out_of_range("DensityMatrix: qubit index out of range");
  }
}

double DensityMatrix::trace() const {
  double t = 0.0;
  for (std::size_t i = 0; i < dim_; ++i) {
    t += rho_[i * dim_ + i].real();
  }
  return t;
}

double DensityMatrix::purity() const {
  // tr(rho^2) = sum_{r,c} rho[r][c] * rho[c][r]; rho is Hermitian so this
  // equals sum |rho[r][c]|^2.
  double p = 0.0;
  for (const cplx& v : rho_) {
    p += std::norm(v);
  }
  return p;
}

void DensityMatrix::apply_1q(const Mat2& u, std::size_t qubit) {
  check_qubit(qubit);
  const std::size_t bit = std::size_t{1} << qubit;
  // Left multiply: rho <- U rho (columns are independent vectors).
  for (std::size_t c = 0; c < dim_; ++c) {
    for (std::size_t r = 0; r < dim_; ++r) {
      if (r & bit) {
        continue;
      }
      const cplx a0 = rho_[r * dim_ + c];
      const cplx a1 = rho_[(r | bit) * dim_ + c];
      rho_[r * dim_ + c] = u[0] * a0 + u[1] * a1;
      rho_[(r | bit) * dim_ + c] = u[2] * a0 + u[3] * a1;
    }
  }
  // Right multiply: rho <- rho U^dagger (rows are independent co-vectors).
  for (std::size_t r = 0; r < dim_; ++r) {
    for (std::size_t c = 0; c < dim_; ++c) {
      if (c & bit) {
        continue;
      }
      const cplx a0 = rho_[r * dim_ + c];
      const cplx a1 = rho_[r * dim_ + (c | bit)];
      rho_[r * dim_ + c] = a0 * std::conj(u[0]) + a1 * std::conj(u[1]);
      rho_[r * dim_ + (c | bit)] = a0 * std::conj(u[2]) + a1 * std::conj(u[3]);
    }
  }
}

void DensityMatrix::apply_controlled_1q(const Mat2& u, std::size_t control,
                                        std::size_t target) {
  check_qubit(control);
  check_qubit(target);
  if (control == target) {
    throw std::invalid_argument("apply_controlled_1q: qubits must differ");
  }
  // Embed as the 4x4 block unitary diag(I, U) with control = high bit.
  Mat4 m{};
  m[0 * 4 + 0] = 1.0;
  m[1 * 4 + 1] = 1.0;
  m[2 * 4 + 2] = u[0];
  m[2 * 4 + 3] = u[1];
  m[3 * 4 + 2] = u[2];
  m[3 * 4 + 3] = u[3];
  apply_2q(m, target, control);
}

void DensityMatrix::apply_2q(const Mat4& u, std::size_t q0, std::size_t q1) {
  check_qubit(q0);
  check_qubit(q1);
  if (q0 == q1) {
    throw std::invalid_argument("apply_2q: qubits must differ");
  }
  const std::size_t b0 = std::size_t{1} << q0;
  const std::size_t b1 = std::size_t{1} << q1;

  // Left multiply.
  for (std::size_t c = 0; c < dim_; ++c) {
    for (std::size_t r = 0; r < dim_; ++r) {
      if ((r & b0) || (r & b1)) {
        continue;
      }
      const std::size_t idx[4] = {r, r | b0, r | b1, r | b0 | b1};
      cplx a[4];
      for (int i = 0; i < 4; ++i) {
        a[i] = rho_[idx[i] * dim_ + c];
      }
      for (int i = 0; i < 4; ++i) {
        cplx s{0.0, 0.0};
        for (int k = 0; k < 4; ++k) {
          s += u[i * 4 + k] * a[k];
        }
        rho_[idx[i] * dim_ + c] = s;
      }
    }
  }
  // Right multiply by U^dagger.
  for (std::size_t r = 0; r < dim_; ++r) {
    for (std::size_t c = 0; c < dim_; ++c) {
      if ((c & b0) || (c & b1)) {
        continue;
      }
      const std::size_t idx[4] = {c, c | b0, c | b1, c | b0 | b1};
      cplx a[4];
      for (int i = 0; i < 4; ++i) {
        a[i] = rho_[r * dim_ + idx[i]];
      }
      for (int i = 0; i < 4; ++i) {
        cplx s{0.0, 0.0};
        for (int k = 0; k < 4; ++k) {
          s += a[k] * std::conj(u[i * 4 + k]);
        }
        rho_[r * dim_ + idx[i]] = s;
      }
    }
  }
}

void DensityMatrix::apply_channel_1q(const std::vector<Mat2>& kraus,
                                     std::size_t qubit) {
  check_qubit(qubit);
  check_trace_preserving(kraus);
  const std::size_t bit = std::size_t{1} << qubit;
  std::vector<cplx> acc(dim_ * dim_, cplx{0.0, 0.0});

  for (const Mat2& k : kraus) {
    std::vector<cplx> tmp = rho_;
    // tmp <- K tmp
    for (std::size_t c = 0; c < dim_; ++c) {
      for (std::size_t r = 0; r < dim_; ++r) {
        if (r & bit) {
          continue;
        }
        const cplx a0 = tmp[r * dim_ + c];
        const cplx a1 = tmp[(r | bit) * dim_ + c];
        tmp[r * dim_ + c] = k[0] * a0 + k[1] * a1;
        tmp[(r | bit) * dim_ + c] = k[2] * a0 + k[3] * a1;
      }
    }
    // tmp <- tmp K^dagger, accumulate
    for (std::size_t r = 0; r < dim_; ++r) {
      for (std::size_t c = 0; c < dim_; ++c) {
        if (c & bit) {
          continue;
        }
        const cplx a0 = tmp[r * dim_ + c];
        const cplx a1 = tmp[r * dim_ + (c | bit)];
        acc[r * dim_ + c] += a0 * std::conj(k[0]) + a1 * std::conj(k[1]);
        acc[r * dim_ + (c | bit)] +=
            a0 * std::conj(k[2]) + a1 * std::conj(k[3]);
      }
    }
  }
  rho_ = std::move(acc);
}

void DensityMatrix::apply(const Circuit& circuit,
                          std::span<const double> params) {
  if (circuit.num_qubits() != num_qubits_) {
    throw std::invalid_argument("DensityMatrix::apply: qubit mismatch");
  }
  if (params.size() != circuit.num_params()) {
    throw std::invalid_argument("DensityMatrix::apply: parameter mismatch");
  }
  using namespace gates;
  for (const Op& op : circuit.ops()) {
    switch (op.kind) {
      case GateKind::kX: apply_1q(X(), op.q0); break;
      case GateKind::kY: apply_1q(Y(), op.q0); break;
      case GateKind::kZ: apply_1q(Z(), op.q0); break;
      case GateKind::kH: apply_1q(H(), op.q0); break;
      case GateKind::kS: apply_1q(S(), op.q0); break;
      case GateKind::kSdg: apply_1q(Sdg(), op.q0); break;
      case GateKind::kT: apply_1q(T(), op.q0); break;
      case GateKind::kTdg: apply_1q(Tdg(), op.q0); break;
      case GateKind::kSX: apply_1q(SX(), op.q0); break;
      case GateKind::kRX: apply_1q(RX(op.angle(params)), op.q0); break;
      case GateKind::kRY: apply_1q(RY(op.angle(params)), op.q0); break;
      case GateKind::kRZ: apply_1q(RZ(op.angle(params)), op.q0); break;
      case GateKind::kP: apply_1q(P(op.angle(params)), op.q0); break;
      case GateKind::kCX: apply_controlled_1q(X(), op.q0, op.q1); break;
      case GateKind::kCZ: apply_controlled_1q(Z(), op.q0, op.q1); break;
      case GateKind::kSwap: apply_2q(SWAP(), op.q0, op.q1); break;
      case GateKind::kCRZ:
        apply_controlled_1q(RZ(op.angle(params)), op.q0, op.q1);
        break;
      case GateKind::kRXX: apply_2q(RXX(op.angle(params)), op.q0, op.q1); break;
      case GateKind::kRYY: apply_2q(RYY(op.angle(params)), op.q0, op.q1); break;
      case GateKind::kRZZ: apply_2q(RZZ(op.angle(params)), op.q0, op.q1); break;
    }
  }
}

double DensityMatrix::expectation(const Observable& observable) const {
  if (observable.num_qubits() != num_qubits_) {
    throw std::invalid_argument("DensityMatrix::expectation: qubit mismatch");
  }
  // tr(rho P) for each term: left-apply the Pauli string to a copy and
  // take the trace.
  double e = 0.0;
  for (const PauliTerm& term : observable.terms()) {
    DensityMatrix scratch = *this;
    for (std::size_t q = 0; q < term.paulis.size(); ++q) {
      const std::size_t bit = std::size_t{1} << q;
      auto left_apply = [&](const Mat2& m) {
        for (std::size_t c = 0; c < dim_; ++c) {
          for (std::size_t r = 0; r < dim_; ++r) {
            if (r & bit) {
              continue;
            }
            const cplx a0 = scratch.rho_[r * dim_ + c];
            const cplx a1 = scratch.rho_[(r | bit) * dim_ + c];
            scratch.rho_[r * dim_ + c] = m[0] * a0 + m[1] * a1;
            scratch.rho_[(r | bit) * dim_ + c] = m[2] * a0 + m[3] * a1;
          }
        }
      };
      switch (term.paulis[q]) {
        case PauliOp::kI: break;
        case PauliOp::kX: left_apply(gates::X()); break;
        case PauliOp::kY: left_apply(gates::Y()); break;
        case PauliOp::kZ: left_apply(gates::Z()); break;
      }
    }
    double tr = 0.0;
    for (std::size_t i = 0; i < dim_; ++i) {
      tr += scratch.rho_[i * dim_ + i].real();
    }
    e += term.coeff * tr;
  }
  return e;
}

double DensityMatrix::probability_one(std::size_t qubit) const {
  check_qubit(qubit);
  const std::size_t bit = std::size_t{1} << qubit;
  double p = 0.0;
  for (std::size_t i = 0; i < dim_; ++i) {
    if (i & bit) {
      p += rho_[i * dim_ + i].real();
    }
  }
  return p;
}

double DensityMatrix::fidelity(const StateVector& psi) const {
  if (psi.num_qubits() != num_qubits_) {
    throw std::invalid_argument("DensityMatrix::fidelity: qubit mismatch");
  }
  const auto amps = psi.amplitudes();
  cplx f{0.0, 0.0};
  for (std::size_t r = 0; r < dim_; ++r) {
    for (std::size_t c = 0; c < dim_; ++c) {
      f += std::conj(amps[r]) * rho_[r * dim_ + c] * amps[c];
    }
  }
  return f.real();
}

double DensityMatrix::max_abs_diff(const DensityMatrix& other) const {
  if (dim_ != other.dim_) {
    throw std::invalid_argument("DensityMatrix::max_abs_diff: dim mismatch");
  }
  double d = 0.0;
  for (std::size_t i = 0; i < rho_.size(); ++i) {
    d = std::max(d, std::abs(rho_[i] - other.rho_[i]));
  }
  return d;
}

void DensityMatrix::mix_with(const DensityMatrix& other, double w) {
  if (dim_ != other.dim_) {
    throw std::invalid_argument("DensityMatrix::mix_with: dim mismatch");
  }
  if (w < 0.0 || w > 1.0) {
    throw std::invalid_argument("DensityMatrix::mix_with: weight out of range");
  }
  for (std::size_t i = 0; i < rho_.size(); ++i) {
    rho_[i] = (1.0 - w) * rho_[i] + w * other.rho_[i];
  }
}

namespace channels {

std::vector<Mat2> depolarizing(double p) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("depolarizing: p out of [0,1]");
  }
  const double k0 = std::sqrt(1.0 - p);
  const double kp = std::sqrt(p / 3.0);
  auto scale = [](Mat2 m, double s) {
    for (auto& v : m) {
      v *= s;
    }
    return m;
  };
  return {scale(gates::I(), k0), scale(gates::X(), kp), scale(gates::Y(), kp),
          scale(gates::Z(), kp)};
}

std::vector<Mat2> amplitude_damping(double gamma) {
  if (gamma < 0.0 || gamma > 1.0) {
    throw std::invalid_argument("amplitude_damping: gamma out of [0,1]");
  }
  const Mat2 k0{1.0, 0.0, 0.0, std::sqrt(1.0 - gamma)};
  const Mat2 k1{0.0, std::sqrt(gamma), 0.0, 0.0};
  return {k0, k1};
}

std::vector<Mat2> bit_flip(double p) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("bit_flip: p out of [0,1]");
  }
  auto scale = [](Mat2 m, double s) {
    for (auto& v : m) {
      v *= s;
    }
    return m;
  };
  return {scale(gates::I(), std::sqrt(1.0 - p)),
          scale(gates::X(), std::sqrt(p))};
}

std::vector<Mat2> phase_flip(double p) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("phase_flip: p out of [0,1]");
  }
  auto scale = [](Mat2 m, double s) {
    for (auto& v : m) {
      v *= s;
    }
    return m;
  };
  return {scale(gates::I(), std::sqrt(1.0 - p)),
          scale(gates::Z(), std::sqrt(p))};
}

}  // namespace channels

DensityMatrix run_density_with_noise(const Circuit& circuit,
                                     std::span<const double> params,
                                     const NoiseModel& model) {
  DensityMatrix rho(circuit.num_qubits());
  if (params.size() != circuit.num_params()) {
    throw std::invalid_argument("run_density_with_noise: parameter mismatch");
  }
  // Apply op-by-op so each gate's noise lands on the touched qubits, in
  // the same order as the trajectory sampler in noise.cpp.
  for (const Op& op : circuit.ops()) {
    // One-op circuit with the angle resolved to a fixed value so no
    // parameter binding is needed.
    Circuit one(circuit.num_qubits());
    Op fixed = op;
    if (gate_is_parameterised(op.kind)) {
      fixed.fixed_angle = op.angle(params);
      fixed.param_slot = -1;
    }
    one.append(fixed);
    rho.apply(one, {});

    if (!model.enabled()) {
      continue;
    }
    const bool is_2q = gate_arity(op.kind) == 2;
    const double depol =
        is_2q ? model.depolarizing_2q : model.depolarizing_1q;
    auto apply_noise = [&](std::size_t q) {
      if (depol > 0.0) {
        rho.apply_channel_1q(channels::depolarizing(depol), q);
      }
      if (model.bit_flip > 0.0) {
        rho.apply_channel_1q(channels::bit_flip(model.bit_flip), q);
      }
      if (model.phase_flip > 0.0) {
        rho.apply_channel_1q(channels::phase_flip(model.phase_flip), q);
      }
      if (model.amplitude_damping > 0.0) {
        rho.apply_channel_1q(
            channels::amplitude_damping(model.amplitude_damping), q);
      }
    };
    apply_noise(op.q0);
    if (is_2q) {
      apply_noise(op.q1);
    }
  }
  return rho;
}

}  // namespace qnn::sim

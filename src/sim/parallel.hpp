// Shared parallelism tuning for the simulator kernels.
//
// One place for the amplitude-group threshold and grain so every kernel
// (state-vector gates, Pauli expectations) parallelizes consistently.
// Reductions built on these constants combine fixed-grain chunks in index
// order (util::parallel_reduce), so results for a given state size are
// bit-identical regardless of thread count — load-bearing for bit-exact
// training resume.
#pragma once

#include <cstddef>

#include "util/thread_pool.hpp"

namespace qnn::sim {

/// Kernels fan out on the shared pool once the per-call work item count
/// clears this; below it, thread hand-off costs more than the loop.
constexpr std::size_t kParallelThreshold = std::size_t{1} << 14;

/// Work items per chunk handed to one pool lane.
constexpr std::size_t kKernelGrain = std::size_t{1} << 12;

/// The pool to use for a kernel over `work_items`, or nullptr (serial).
inline util::ThreadPool* kernel_pool(std::size_t work_items) {
  return work_items >= kParallelThreshold ? &util::global_pool() : nullptr;
}

}  // namespace qnn::sim

// Standard gate library: fixed and parameterised matrices.
//
// Conventions: matrices act on column vectors |psi>; rotation gates use the
// physics convention R_A(theta) = exp(-i theta A / 2).
#pragma once

#include "sim/state_vector.hpp"

namespace qnn::sim::gates {

// --- fixed single-qubit gates ---
Mat2 I();
Mat2 X();
Mat2 Y();
Mat2 Z();
Mat2 H();
Mat2 S();
Mat2 Sdg();
Mat2 T();
Mat2 Tdg();
Mat2 SX();  ///< sqrt(X)

// --- parameterised single-qubit gates ---
Mat2 RX(double theta);
Mat2 RY(double theta);
Mat2 RZ(double theta);
Mat2 P(double lambda);  ///< phase gate diag(1, e^{i lambda})
/// General single-qubit unitary U3(theta, phi, lambda) (OpenQASM u3).
Mat2 U3(double theta, double phi, double lambda);

// --- two-qubit gates (basis order |q1 q0>) ---
Mat4 CX();    ///< control = q1 (high bit), target = q0
Mat4 CZ();
Mat4 SWAP();
Mat4 ISWAP();
Mat4 CRZ(double theta);  ///< controlled RZ, control = q1
Mat4 RXX(double theta);  ///< exp(-i theta/2 X⊗X)
Mat4 RYY(double theta);
Mat4 RZZ(double theta);

/// Matrix product c = a * b for 2x2 complex matrices.
Mat2 matmul(const Mat2& a, const Mat2& b);

/// Conjugate transpose.
Mat2 dagger(const Mat2& m);

/// Max-norm distance between two 2x2 matrices (test helper).
double max_abs_diff(const Mat2& a, const Mat2& b);

/// True when m is unitary to within `tol`.
bool is_unitary(const Mat2& m, double tol = 1e-12);
bool is_unitary4(const Mat4& m, double tol = 1e-12);

}  // namespace qnn::sim::gates

#include "sim/gates.hpp"

#include <cmath>

namespace qnn::sim::gates {

namespace {
constexpr cplx kI{0.0, 1.0};
const double kInvSqrt2 = 1.0 / std::sqrt(2.0);

/// Embeds a diagonal 4-vector into a Mat4.
Mat4 diag4(cplx d0, cplx d1, cplx d2, cplx d3) {
  Mat4 m{};
  m[0] = d0;
  m[5] = d1;
  m[10] = d2;
  m[15] = d3;
  return m;
}
}  // namespace

Mat2 I() { return {1.0, 0.0, 0.0, 1.0}; }
Mat2 X() { return {0.0, 1.0, 1.0, 0.0}; }
Mat2 Y() { return {0.0, -kI, kI, 0.0}; }
Mat2 Z() { return {1.0, 0.0, 0.0, -1.0}; }
Mat2 H() { return {kInvSqrt2, kInvSqrt2, kInvSqrt2, -kInvSqrt2}; }
Mat2 S() { return {1.0, 0.0, 0.0, kI}; }
Mat2 Sdg() { return {1.0, 0.0, 0.0, -kI}; }
Mat2 T() { return {1.0, 0.0, 0.0, std::polar(1.0, M_PI / 4)}; }
Mat2 Tdg() { return {1.0, 0.0, 0.0, std::polar(1.0, -M_PI / 4)}; }

Mat2 SX() {
  const cplx a{0.5, 0.5};
  const cplx b{0.5, -0.5};
  return {a, b, b, a};
}

Mat2 RX(double theta) {
  const double c = std::cos(theta / 2);
  const double s = std::sin(theta / 2);
  return {cplx{c, 0.0}, -kI * s, -kI * s, cplx{c, 0.0}};
}

Mat2 RY(double theta) {
  const double c = std::cos(theta / 2);
  const double s = std::sin(theta / 2);
  return {cplx{c, 0.0}, cplx{-s, 0.0}, cplx{s, 0.0}, cplx{c, 0.0}};
}

Mat2 RZ(double theta) {
  return {std::polar(1.0, -theta / 2), 0.0, 0.0, std::polar(1.0, theta / 2)};
}

Mat2 P(double lambda) { return {1.0, 0.0, 0.0, std::polar(1.0, lambda)}; }

Mat2 U3(double theta, double phi, double lambda) {
  const double c = std::cos(theta / 2);
  const double s = std::sin(theta / 2);
  return {cplx{c, 0.0}, -std::polar(s, lambda), std::polar(s, phi),
          std::polar(c, phi + lambda)};
}

Mat4 CX() {
  // Control = q1 (high bit of |q1 q0>): swaps |10> <-> |11>.
  Mat4 m{};
  m[0 * 4 + 0] = 1.0;
  m[1 * 4 + 1] = 1.0;
  m[2 * 4 + 3] = 1.0;
  m[3 * 4 + 2] = 1.0;
  return m;
}

Mat4 CZ() { return diag4(1.0, 1.0, 1.0, -1.0); }

Mat4 SWAP() {
  Mat4 m{};
  m[0 * 4 + 0] = 1.0;
  m[1 * 4 + 2] = 1.0;
  m[2 * 4 + 1] = 1.0;
  m[3 * 4 + 3] = 1.0;
  return m;
}

Mat4 ISWAP() {
  Mat4 m{};
  m[0 * 4 + 0] = 1.0;
  m[1 * 4 + 2] = kI;
  m[2 * 4 + 1] = kI;
  m[3 * 4 + 3] = 1.0;
  return m;
}

Mat4 CRZ(double theta) {
  return diag4(1.0, 1.0, std::polar(1.0, -theta / 2),
               std::polar(1.0, theta / 2));
}

Mat4 RXX(double theta) {
  const cplx c{std::cos(theta / 2), 0.0};
  const cplx ms = -kI * std::sin(theta / 2);
  Mat4 m{};
  m[0 * 4 + 0] = c;
  m[0 * 4 + 3] = ms;
  m[1 * 4 + 1] = c;
  m[1 * 4 + 2] = ms;
  m[2 * 4 + 1] = ms;
  m[2 * 4 + 2] = c;
  m[3 * 4 + 0] = ms;
  m[3 * 4 + 3] = c;
  return m;
}

Mat4 RYY(double theta) {
  const cplx c{std::cos(theta / 2), 0.0};
  const cplx is = kI * std::sin(theta / 2);
  Mat4 m{};
  m[0 * 4 + 0] = c;
  m[0 * 4 + 3] = is;
  m[1 * 4 + 1] = c;
  m[1 * 4 + 2] = -is;
  m[2 * 4 + 1] = -is;
  m[2 * 4 + 2] = c;
  m[3 * 4 + 0] = is;
  m[3 * 4 + 3] = c;
  return m;
}

Mat4 RZZ(double theta) {
  const cplx e_minus = std::polar(1.0, -theta / 2);
  const cplx e_plus = std::polar(1.0, theta / 2);
  return diag4(e_minus, e_plus, e_plus, e_minus);
}

Mat2 matmul(const Mat2& a, const Mat2& b) {
  return {a[0] * b[0] + a[1] * b[2], a[0] * b[1] + a[1] * b[3],
          a[2] * b[0] + a[3] * b[2], a[2] * b[1] + a[3] * b[3]};
}

Mat2 dagger(const Mat2& m) {
  return {std::conj(m[0]), std::conj(m[2]), std::conj(m[1]), std::conj(m[3])};
}

double max_abs_diff(const Mat2& a, const Mat2& b) {
  double d = 0.0;
  for (std::size_t i = 0; i < 4; ++i) {
    d = std::max(d, std::abs(a[i] - b[i]));
  }
  return d;
}

bool is_unitary(const Mat2& m, double tol) {
  const Mat2 p = matmul(dagger(m), m);
  const Mat2 id = I();
  return max_abs_diff(p, id) <= tol;
}

bool is_unitary4(const Mat4& m, double tol) {
  // (M^dagger M)[r][c] == delta_rc
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      cplx s{0.0, 0.0};
      for (int k = 0; k < 4; ++k) {
        s += std::conj(m[k * 4 + r]) * m[k * 4 + c];
      }
      const cplx expect = r == c ? cplx{1.0, 0.0} : cplx{0.0, 0.0};
      if (std::abs(s - expect) > tol) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace qnn::sim::gates

#include "sim/noise.hpp"

#include <cmath>

#include "sim/gates.hpp"

namespace qnn::sim {

namespace {

/// Amplitude damping via the quantum-trajectory branch rule:
///   K0 = diag(1, sqrt(1-g)),  K1 = sqrt(g) |0><1|
/// Branch K1 fires with probability g * P(qubit = 1).
void apply_amplitude_damping(StateVector& sv, std::size_t qubit, double gamma,
                             util::Rng& rng) {
  const double p1 = sv.probability_one(qubit);
  const double p_decay = gamma * p1;
  if (rng.uniform() < p_decay) {
    // |1> -> |0| jump.
    const Mat2 k1{0.0, std::sqrt(gamma), 0.0, 0.0};
    sv.apply_1q(k1, qubit);
  } else {
    const Mat2 k0{1.0, 0.0, 0.0, std::sqrt(1.0 - gamma)};
    sv.apply_1q(k0, qubit);
  }
  sv.normalize();
}

}  // namespace

void apply_noise_to_qubit(StateVector& sv, std::size_t qubit,
                          const NoiseModel& model, bool two_qubit_context,
                          util::Rng& rng) {
  const double depol =
      two_qubit_context ? model.depolarizing_2q : model.depolarizing_1q;
  if (depol > 0.0 && rng.uniform() < depol) {
    // Uniformly random Pauli error.
    switch (rng.uniform_u64(3)) {
      case 0: sv.apply_1q(gates::X(), qubit); break;
      case 1: sv.apply_1q(gates::Y(), qubit); break;
      default: sv.apply_1q(gates::Z(), qubit); break;
    }
  }
  if (model.bit_flip > 0.0 && rng.uniform() < model.bit_flip) {
    sv.apply_1q(gates::X(), qubit);
  }
  if (model.phase_flip > 0.0 && rng.uniform() < model.phase_flip) {
    sv.apply_1q(gates::Z(), qubit);
  }
  if (model.amplitude_damping > 0.0) {
    apply_amplitude_damping(sv, qubit, model.amplitude_damping, rng);
  }
}

void apply_with_noise(const Circuit& circuit, StateVector& sv,
                      std::span<const double> params, const NoiseModel& model,
                      util::Rng& rng) {
  for (const Op& op : circuit.ops()) {
    circuit.apply_op(op, sv, params);
    if (!model.enabled()) {
      continue;
    }
    const bool is_2q = gate_arity(op.kind) == 2;
    apply_noise_to_qubit(sv, op.q0, model, is_2q, rng);
    if (is_2q) {
      apply_noise_to_qubit(sv, op.q1, model, is_2q, rng);
    }
  }
}

StateVector run_with_noise(const Circuit& circuit,
                           std::span<const double> params,
                           const NoiseModel& model, util::Rng& rng) {
  StateVector sv(circuit.num_qubits());
  apply_with_noise(circuit, sv, params, model, rng);
  return sv;
}

}  // namespace qnn::sim

#include "sim/state_vector.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "sim/parallel.hpp"
#include "util/thread_pool.hpp"

namespace qnn::sim {

namespace {
constexpr std::uint32_t kStateVectorVersion = 1;
constexpr std::size_t kMaxQubits = 30;  // 16 GiB of amplitudes; sanity bound

// Amplitude-group parallelism tuning lives in sim/parallel.hpp (shared
// with the Pauli expectation kernels).

/// Masks for expanding a compressed index (all amplitude indices with two
/// fixed bit positions removed) back to a full basis index with zeros at
/// those positions: i = (k & low) | ((k & mid) << 1) | ((k & ~(low|mid)) << 2).
struct TwoBitMasks {
  std::size_t low;
  std::size_t mid;
};

TwoBitMasks two_bit_masks(std::size_t qa, std::size_t qb) {
  const std::size_t pl = std::min(qa, qb);
  const std::size_t ph = std::max(qa, qb);
  const std::size_t low = (std::size_t{1} << pl) - 1;
  const std::size_t mid = ((std::size_t{1} << (ph - 1)) - 1) & ~low;
  return {low, mid};
}
}  // namespace

StateVector::StateVector(std::size_t num_qubits) : num_qubits_(num_qubits) {
  if (num_qubits > kMaxQubits) {
    throw std::invalid_argument("StateVector: too many qubits");
  }
  amps_.assign(std::size_t{1} << num_qubits, cplx{0.0, 0.0});
  amps_[0] = cplx{1.0, 0.0};
}

void StateVector::reset() {
  std::fill(amps_.begin(), amps_.end(), cplx{0.0, 0.0});
  amps_[0] = cplx{1.0, 0.0};
}

void StateVector::set_basis_state(std::size_t basis_state) {
  if (basis_state >= dim()) {
    throw std::out_of_range("set_basis_state: index out of range");
  }
  std::fill(amps_.begin(), amps_.end(), cplx{0.0, 0.0});
  amps_[basis_state] = cplx{1.0, 0.0};
}

void StateVector::check_qubit(std::size_t qubit) const {
  if (qubit >= num_qubits_) {
    throw std::out_of_range("qubit index out of range");
  }
}

void StateVector::apply_1q(const Mat2& m, std::size_t qubit) {
  check_qubit(qubit);
  const std::size_t step = std::size_t{1} << qubit;
  const std::size_t low = step - 1;
  const std::size_t pairs = amps_.size() / 2;
  cplx* amps = amps_.data();
  // Pair p expands to the basis index with a zero deposited at `qubit`;
  // every pair touches a disjoint (i, i+step), so any partition is safe.
  util::parallel_for(
      kernel_pool(pairs), 0, pairs, kKernelGrain,
      [amps, m, step, low](std::size_t lo, std::size_t hi) {
        for (std::size_t p = lo; p < hi; ++p) {
          const std::size_t i = ((p & ~low) << 1) | (p & low);
          const cplx a0 = amps[i];
          const cplx a1 = amps[i + step];
          amps[i] = m[0] * a0 + m[1] * a1;
          amps[i + step] = m[2] * a0 + m[3] * a1;
        }
      });
}

void StateVector::apply_2q(const Mat4& m, std::size_t q0, std::size_t q1) {
  check_qubit(q0);
  check_qubit(q1);
  if (q0 == q1) {
    throw std::invalid_argument("apply_2q: qubits must differ");
  }
  const std::size_t b0 = std::size_t{1} << q0;
  const std::size_t b1 = std::size_t{1} << q1;
  const TwoBitMasks mask = two_bit_masks(q0, q1);
  const std::size_t quads = amps_.size() / 4;
  cplx* amps = amps_.data();
  // Enumerate only the 4x-smaller base set (both involved bits clear) by
  // depositing zeros at the two positions, instead of scanning all 2^n
  // indices and skipping 3/4 of them.
  util::parallel_for(
      kernel_pool(quads), 0, quads, kKernelGrain / 2,
      [amps, m, b0, b1, mask](std::size_t lo, std::size_t hi) {
        for (std::size_t k = lo; k < hi; ++k) {
          const std::size_t i00 = (k & mask.low) | ((k & mask.mid) << 1) |
                                  ((k & ~(mask.low | mask.mid)) << 2);
          const std::size_t i01 = i00 | b0;
          const std::size_t i10 = i00 | b1;
          const std::size_t i11 = i00 | b0 | b1;
          const cplx a00 = amps[i00];
          const cplx a01 = amps[i01];
          const cplx a10 = amps[i10];
          const cplx a11 = amps[i11];
          amps[i00] = m[0] * a00 + m[1] * a01 + m[2] * a10 + m[3] * a11;
          amps[i01] = m[4] * a00 + m[5] * a01 + m[6] * a10 + m[7] * a11;
          amps[i10] = m[8] * a00 + m[9] * a01 + m[10] * a10 + m[11] * a11;
          amps[i11] = m[12] * a00 + m[13] * a01 + m[14] * a10 + m[15] * a11;
        }
      });
}

void StateVector::apply_controlled_1q(const Mat2& m, std::size_t control,
                                      std::size_t target) {
  check_qubit(control);
  check_qubit(target);
  if (control == target) {
    throw std::invalid_argument("apply_controlled_1q: qubits must differ");
  }
  const std::size_t cbit = std::size_t{1} << control;
  const std::size_t tbit = std::size_t{1} << target;
  const TwoBitMasks mask = two_bit_masks(control, target);
  const std::size_t quads = amps_.size() / 4;
  cplx* amps = amps_.data();
  // Affected pairs have control set, target clear: deposit zeros at both
  // positions, then force the control bit on.
  util::parallel_for(
      kernel_pool(quads), 0, quads, kKernelGrain / 2,
      [amps, m, cbit, tbit, mask](std::size_t lo, std::size_t hi) {
        for (std::size_t k = lo; k < hi; ++k) {
          const std::size_t base = (k & mask.low) | ((k & mask.mid) << 1) |
                                   ((k & ~(mask.low | mask.mid)) << 2);
          const std::size_t i = base | cbit;
          const cplx a0 = amps[i];
          const cplx a1 = amps[i | tbit];
          amps[i] = m[0] * a0 + m[1] * a1;
          amps[i | tbit] = m[2] * a0 + m[3] * a1;
        }
      });
}

void StateVector::apply_phase_on_parity(std::uint64_t mask, cplx phase) {
  const std::size_t n = amps_.size();
  cplx* amps = amps_.data();
  util::parallel_for(kernel_pool(n), 0, n, kKernelGrain,
                     [amps, mask, phase](std::size_t lo, std::size_t hi) {
                       for (std::size_t i = lo; i < hi; ++i) {
                         if (std::popcount(i & mask) % 2 == 1) {
                           amps[i] *= phase;
                         }
                       }
                     });
}

double StateVector::norm() const {
  const cplx* amps = amps_.data();
  const double s = util::parallel_reduce(
      kernel_pool(amps_.size()), 0, amps_.size(), kKernelGrain, 0.0,
      [amps](std::size_t lo, std::size_t hi) {
        double acc = 0.0;
        for (std::size_t i = lo; i < hi; ++i) {
          acc += std::norm(amps[i]);
        }
        return acc;
      });
  return std::sqrt(s);
}

void StateVector::normalize() {
  const double n = norm();
  if (n == 0.0) {
    throw std::runtime_error("normalize: zero state vector");
  }
  const double inv = 1.0 / n;
  for (cplx& a : amps_) {
    a *= inv;
  }
}

double StateVector::probability_one(std::size_t qubit) const {
  check_qubit(qubit);
  const std::size_t bit = std::size_t{1} << qubit;
  const cplx* amps = amps_.data();
  return util::parallel_reduce(
      kernel_pool(amps_.size()), 0, amps_.size(), kKernelGrain, 0.0,
      [amps, bit](std::size_t lo, std::size_t hi) {
        double acc = 0.0;
        for (std::size_t i = lo; i < hi; ++i) {
          if (i & bit) {
            acc += std::norm(amps[i]);
          }
        }
        return acc;
      });
}

int StateVector::measure(std::size_t qubit, util::Rng& rng) {
  const double p1 = probability_one(qubit);
  const int outcome = rng.uniform() < p1 ? 1 : 0;
  const std::size_t bit = std::size_t{1} << qubit;
  const double keep_prob = outcome == 1 ? p1 : 1.0 - p1;
  const double inv = keep_prob > 0.0 ? 1.0 / std::sqrt(keep_prob) : 0.0;
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    const bool is_one = (i & bit) != 0;
    if (is_one == (outcome == 1)) {
      amps_[i] *= inv;
    } else {
      amps_[i] = cplx{0.0, 0.0};
    }
  }
  return outcome;
}

std::vector<std::uint64_t> StateVector::sample(std::size_t shots,
                                               util::Rng& rng) const {
  // Inverse-CDF sampling: draw all uniforms first, sort, then walk the
  // cumulative distribution once — O(2^n + shots log shots).
  std::vector<double> u(shots);
  for (double& x : u) {
    x = rng.uniform();
  }
  std::vector<std::size_t> order(shots);
  for (std::size_t i = 0; i < shots; ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return u[a] < u[b]; });

  std::vector<std::uint64_t> out(shots);
  double cum = 0.0;
  std::size_t state = 0;
  for (std::size_t rank = 0; rank < shots; ++rank) {
    const double target = u[order[rank]];
    while (state + 1 < amps_.size() && cum + std::norm(amps_[state]) < target) {
      cum += std::norm(amps_[state]);
      ++state;
    }
    out[order[rank]] = state;
  }
  return out;
}

cplx StateVector::inner_product(const StateVector& other) const {
  if (dim() != other.dim()) {
    throw std::invalid_argument("inner_product: dimension mismatch");
  }
  const cplx* a = amps_.data();
  const cplx* b = other.amps_.data();
  return util::parallel_reduce(
      kernel_pool(amps_.size()), 0, amps_.size(), kKernelGrain, cplx{0.0, 0.0},
      [a, b](std::size_t lo, std::size_t hi) {
        cplx acc{0.0, 0.0};
        for (std::size_t i = lo; i < hi; ++i) {
          acc += std::conj(a[i]) * b[i];
        }
        return acc;
      });
}

double StateVector::fidelity(const StateVector& other) const {
  return std::norm(inner_product(other));
}

util::Bytes StateVector::serialize() const {
  util::Bytes out;
  out.reserve(16 + amps_.size() * sizeof(cplx));
  util::put_le<std::uint32_t>(out, kStateVectorVersion);
  util::put_le<std::uint32_t>(out, static_cast<std::uint32_t>(num_qubits_));
  const auto* p = reinterpret_cast<const std::uint8_t*>(amps_.data());
  out.insert(out.end(), p, p + amps_.size() * sizeof(cplx));
  return out;
}

StateVector StateVector::deserialize(util::ByteSpan data) {
  std::size_t off = 0;
  const auto version = util::get_le<std::uint32_t>(data, off);
  if (version != kStateVectorVersion) {
    throw std::runtime_error("StateVector::deserialize: bad version");
  }
  const auto nq = util::get_le<std::uint32_t>(data, off);
  if (nq > kMaxQubits) {
    throw std::runtime_error("StateVector::deserialize: qubit count too large");
  }
  StateVector sv(nq);
  const std::size_t expect = sv.dim() * sizeof(cplx);
  if (data.size() - off != expect) {
    throw std::runtime_error("StateVector::deserialize: payload size mismatch");
  }
  std::memcpy(sv.amps_.data(), data.data() + off, expect);
  return sv;
}

double pure_state_distance(const StateVector& a, const StateVector& b) {
  const double f = std::clamp(a.fidelity(b), 0.0, 1.0);
  return std::sqrt(1.0 - f);
}

}  // namespace qnn::sim

// Two-tier storage Env: a fast hot tier backed by a capacity cold tier.
//
// TieredEnv composes two Envs behind the ordinary storage contract so
// every existing consumer (Checkpointer, ChunkStore, recovery, verify,
// the inspector) becomes tier-aware without code changes:
//
//   * writes (streamed or whole-buffer) land in the hot tier (new data
//     is hot by definition); a stale cold copy of the same path is
//     scrubbed after the stream closes, so an overwrite can never
//     resurrect old bytes through the cold tier;
//   * reads are served hot-first and fall through to the cold tier, so
//     an object is resolvable as long as EITHER tier holds it — the
//     invariant the migration engine's copy-before-delete discipline
//     preserves across crashes. Ranged reads fall through the same way,
//     and bytes served by the cold tier are counted per range — the
//     read-amplification signal of resolving a demoted object;
//   * removals hit both tiers; listings are the union.
//
// With `promote_on_read` a whole-file read satisfied by the cold tier
// also copies the object back to the hot tier (atomic write, then cold
// delete — the same durable-copy-before-source-dies order as demotion).
// Ranged reads never promote implicitly — paying a whole-file transfer
// for a footer pread would be exactly the read amplification this layer
// exists to kill; callers that decide an object is worth promoting call
// promote_file(), which streams the copy without materializing it.
// Promotion is best effort: a failed promotion write degrades to a
// plain cold read instead of failing it.
//
// Placement *policy* (what should be cold, when to demote it, the
// TIERMAP residency fence) lives in tier::MigrationEngine; this class
// is only the mechanism that makes both tiers look like one filesystem.
#pragma once

#include <atomic>
#include <functional>

#include "io/env.hpp"

namespace qnn::tier {

using util::Bytes;
using util::ByteSpan;

class TieredEnv final : public io::Env {
 public:
  /// `hot` and `cold` are borrowed and must outlive the TieredEnv.
  /// `scrub_filter`, when set, limits the post-write cold-copy scrub to
  /// paths it accepts: paths the migration policy can never demote
  /// (directory metadata like MANIFEST/TIERMAP/REFS, rewritten every
  /// install) then skip the cold tier entirely on the write path. Pass
  /// tier::migratable_path (tier/migration.hpp) for checkpoint
  /// directories; the empty default scrubs everything (always safe).
  TieredEnv(io::Env& hot, io::Env& cold, bool promote_on_read = false,
            std::function<bool(const std::string&)> scrub_filter = {});

  std::unique_ptr<io::WritableFile> new_writable(const std::string& path,
                                                 io::WriteMode mode) override;
  std::unique_ptr<io::RandomAccessFile> open_ranged(
      const std::string& path) override;
  std::optional<Bytes> read_file(const std::string& path) override;
  bool exists(const std::string& path) override;
  void remove_file(const std::string& path) override;
  std::vector<std::string> list_dir(const std::string& dir) override;
  std::optional<std::uint64_t> file_size(const std::string& path) override;
  [[nodiscard]] std::uint64_t bytes_written() const override {
    return bytes_written_;
  }
  [[nodiscard]] std::uint64_t bytes_read() const override {
    return bytes_read_;
  }

  /// Streaming promotion: copies a cold-resident file to the hot tier
  /// in bounded pieces (atomic hot install, then the cold copy dies —
  /// the usual crash order), without ever materializing the whole file
  /// in memory. Returns false when the file is not cold-resident or the
  /// hot install failed (the object then just stays cold). Counted in
  /// promoted_files()/promoted_bytes().
  bool promote_file(const std::string& path);

  /// Direct tier access (migration engine, diagnostics). Writing hot
  /// files through hot() bypasses the cold-copy scrub — callers own the
  /// residency bookkeeping.
  [[nodiscard]] io::Env& hot() { return hot_; }
  [[nodiscard]] io::Env& cold() { return cold_; }
  [[nodiscard]] bool promote_on_read() const { return promote_on_read_; }

  /// Reads that fell through to the cold tier (whole-file reads and
  /// ranged opens — the promotion-cost / recovery-latency signal),
  /// bytes they transferred, and read-through promotions performed.
  [[nodiscard]] std::uint64_t cold_reads() const { return cold_reads_; }
  [[nodiscard]] std::uint64_t cold_read_bytes() const {
    return cold_read_bytes_;
  }
  [[nodiscard]] std::uint64_t promoted_files() const {
    return promoted_files_;
  }
  [[nodiscard]] std::uint64_t promoted_bytes() const {
    return promoted_bytes_;
  }

 private:
  friend class TieredWritableFile;
  friend class ColdRandomAccessFile;

  io::Env& hot_;
  io::Env& cold_;
  const bool promote_on_read_;
  const std::function<bool(const std::string&)> scrub_filter_;
  /// Atomics: the async writer workers and the trainer thread drive a
  /// TieredEnv concurrently, exactly like the other Env counters.
  std::atomic<std::uint64_t> bytes_written_{0};
  std::atomic<std::uint64_t> bytes_read_{0};
  std::atomic<std::uint64_t> cold_reads_{0};
  std::atomic<std::uint64_t> cold_read_bytes_{0};
  std::atomic<std::uint64_t> promoted_files_{0};
  std::atomic<std::uint64_t> promoted_bytes_{0};
};

}  // namespace qnn::tier

#include "tier/migration.hpp"

#include <algorithm>
#include <sstream>

#include "ckpt/cas.hpp"
#include "ckpt/format.hpp"
#include "ckpt/manifest.hpp"
#include "util/strings.hpp"

namespace qnn::tier {

namespace {

constexpr const char* kTiermapName = "TIERMAP";
constexpr const char* kTiermapHeader = "qnnckpt-tiermap v1";

/// True for the dir-relative names migration may move: checkpoint
/// containers and chunk packfiles. Everything else (MANIFEST, TIERMAP,
/// chunks/REFS, unknown files) is pinned hot.
bool migratable_name(const std::string& name) {
  if (ckpt::parse_checkpoint_file_name(name)) {
    return true;
  }
  if (util::starts_with(name, "chunks/")) {
    return ckpt::parse_pack_file_name(name.substr(7)).has_value();
  }
  return false;
}

/// The migratable dir-relative names present in `tier_env`'s view.
std::vector<std::string> migratable_files(io::Env& tier_env,
                                          const std::string& dir) {
  std::vector<std::string> out;
  for (const std::string& name : tier_env.list_dir(dir)) {
    if (ckpt::parse_checkpoint_file_name(name)) {
      out.push_back(name);
    }
  }
  for (const std::string& name : tier_env.list_dir(dir + "/chunks")) {
    if (ckpt::parse_pack_file_name(name)) {
      out.push_back("chunks/" + name);
    }
  }
  return out;
}

/// Inserts `id` and its ancestor chain into `set` (same closure rule as
/// the retention planner: pinning a delta pins everything it resolves
/// through).
void pin_with_chain(const ckpt::Manifest& manifest, std::uint64_t id,
                    std::set<std::uint64_t>& set) {
  while (id != 0 && !set.contains(id)) {
    set.insert(id);
    const ckpt::ManifestEntry* e = manifest.find(id);
    if (e == nullptr) {
      break;
    }
    id = e->parent_id;
  }
}

}  // namespace

bool migratable_path(const std::string& path) {
  const auto slash = path.find_last_of('/');
  const std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  return ckpt::parse_checkpoint_file_name(base).has_value() ||
         ckpt::parse_pack_file_name(base).has_value();
}

MigrationEngine::MigrationEngine(TieredEnv& env, std::string dir,
                                 TierPolicy policy)
    : env_(env), dir_(std::move(dir)), policy_(policy) {}

void MigrationEngine::ensure_open_locked() {
  if (opened_) {
    return;
  }
  opened_ = true;
  const auto data = env_.hot().read_file(dir_ + "/" + kTiermapName);
  if (!data) {
    return;
  }
  const std::string text(data->begin(), data->end());
  for (const std::string& line : util::split(text, '\n')) {
    const std::string trimmed = util::trim(line);
    if (trimmed.empty() || trimmed == kTiermapHeader) {
      continue;
    }
    const auto fields = util::split(trimmed, ' ');
    // Unknown record types are ignored (forward compatibility); stale
    // or torn marks are harmless — residency truth is the listings.
    if (fields.size() == 2 && fields[0] == "cold" &&
        migratable_name(fields[1])) {
      cold_set_.insert(fields[1]);
    }
  }
}

void MigrationEngine::save_tiermap_locked() {
  // cold_set_ is maintained by the engine's own moves (demote inserts,
  // promote/forget erase) and rebuilt from a listing at the startup
  // reconcile. Marks invalidated behind its back (a read-through
  // promotion at the Env level) go stale until then — deliberately NOT
  // probed away here: a cold exists() per mark per fence would charge
  // O(cold population) capacity-tier round trips to every install, and
  // the map is advisory either way (residency truth is the listings;
  // the inspector flags stale marks).
  if (cold_set_.empty() &&
      !env_.hot().exists(dir_ + "/" + kTiermapName)) {
    return;  // nothing tiered yet: do not invent metadata
  }
  std::ostringstream os;
  os << kTiermapHeader << "\n";
  for (const std::string& name : cold_set_) {
    os << "cold " << name << "\n";
  }
  const std::string text = os.str();
  env_.hot().write_file_atomic(
      dir_ + "/" + kTiermapName,
      util::ByteSpan{reinterpret_cast<const std::uint8_t*>(text.data()),
                     text.size()});
  ++stats_.fences;
  if (tracer_ != nullptr) {
    tracer_->instant(
        "tiermap.fence", "tier",
        {{"cold_files", std::to_string(cold_set_.size())}});
  }
}

std::uint64_t MigrationEngine::resident_bytes(io::Env& tier_env) {
  std::uint64_t total = 0;
  for (const std::string& name : migratable_files(tier_env, dir_)) {
    total += tier_env.file_size(dir_ + "/" + name).value_or(0);
  }
  return total;
}

std::uint64_t MigrationEngine::hot_resident_bytes() {
  return resident_bytes(env_.hot());
}

std::uint64_t MigrationEngine::cold_resident_bytes() {
  return resident_bytes(env_.cold());
}

std::vector<MigrationEngine::Unit> MigrationEngine::plan_demotions(
    const ckpt::Manifest& manifest) {
  if (!policy_.enabled()) {
    return {};
  }
  std::lock_guard lock(mu_);
  ensure_open_locked();

  const std::uint64_t hot_bytes = resident_bytes(env_.hot());
  stats_.hot_bytes = hot_bytes;
  if (hot_bytes <= policy_.hot_byte_budget) {
    return {};
  }

  const auto& entries = manifest.entries();
  if (entries.empty()) {
    return {};
  }

  // Pinned: the newest pin_hot_last entries (at least the newest one),
  // everything younger than min_age_steps, and all their chains.
  std::set<std::uint64_t> pinned;
  const std::size_t n = entries.size();
  const std::size_t window = std::max<std::size_t>(1, policy_.pin_hot_last);
  for (std::size_t i = n > window ? n - window : 0; i < n; ++i) {
    pin_with_chain(manifest, entries[i].id, pinned);
  }
  if (policy_.min_age_steps > 0) {
    const std::uint64_t tip_step = entries.back().step;
    for (const ckpt::ManifestEntry& e : entries) {
      if (e.step + policy_.min_age_steps > tip_step) {
        pin_with_chain(manifest, e.id, pinned);
      }
    }
  }

  // Candidates: unpinned entries whose file is hot-resident right now.
  std::set<std::uint64_t> candidates;
  for (const ckpt::ManifestEntry& e : entries) {
    if (!pinned.contains(e.id) &&
        env_.hot().exists(dir_ + "/" + e.file)) {
      candidates.insert(e.id);
    }
  }

  // Group candidates into chain units (union-find over parent links):
  // a parent chain never splits across a demotion batch.
  std::map<std::uint64_t, std::uint64_t> uf;
  for (const std::uint64_t id : candidates) {
    uf[id] = id;
  }
  const auto find_root = [&uf](std::uint64_t x) {
    while (uf[x] != x) {
      uf[x] = uf[uf[x]];
      x = uf[x];
    }
    return x;
  };
  for (const std::uint64_t id : candidates) {
    const ckpt::ManifestEntry* e = manifest.find(id);
    if (e != nullptr && e->parent_id != 0 &&
        candidates.contains(e->parent_id)) {
      uf[find_root(id)] = find_root(e->parent_id);
    }
  }
  // Units keyed by the component's smallest id, so demotion order is
  // deterministically oldest-chain-first (candidates iterate ascending,
  // making the first id seen per root the minimum).
  std::map<std::uint64_t, std::uint64_t> unit_key;  // root -> min id
  std::map<std::uint64_t, Unit> units;              // min id -> unit
  for (const std::uint64_t id : candidates) {
    const std::uint64_t root = find_root(id);
    const auto it = unit_key.try_emplace(root, id).first;
    const ckpt::ManifestEntry* e = manifest.find(id);
    const std::string file =
        e != nullptr ? e->file : ckpt::checkpoint_file_name(id);
    Unit& unit = units[it->second];
    unit.files.push_back(file);
    unit.bytes += env_.hot().file_size(dir_ + "/" + file).value_or(0);
  }

  // Reference counts of chunk keys held by HOT checkpoint files: the
  // pack-demotion predicate ("fully cold") and its projection as
  // checkpoint units leave the hot tier. Unreadable references make
  // pack liveness unknowable — packs then stay put this run. All of
  // this reads hot files only (key tables and pack record headers, via
  // list_chunk_refs / list_pack_keys), and the parses are cached by
  // (name, size), so the steady over-budget state re-reads nothing —
  // planning costs a listing plus file_size probes, not the hot tier's
  // bytes, and never a cold op.
  std::map<ckpt::ChunkKey, std::uint64_t> hot_keys;
  std::map<std::string, const std::vector<ckpt::ChunkKey>*> refs_by_file;
  /// rel name -> (record keys, hot bytes) of hot-resident packs.
  std::map<std::string, std::pair<const std::vector<ckpt::ChunkKey>*,
                                  std::uint64_t>>
      hot_packs;
  bool refs_known = true;
  if (policy_.demote_packfiles) {
    const auto hot_files = migratable_files(env_.hot(), dir_);
    const std::set<std::string> hot_set(hot_files.begin(), hot_files.end());
    for (auto it = key_cache_.begin(); it != key_cache_.end();) {
      // Files no longer hot (demoted, GC'd) leave the cache.
      it = hot_set.contains(it->first) ? std::next(it)
                                       : key_cache_.erase(it);
    }
    for (const std::string& name : hot_files) {
      const std::string path = dir_ + "/" + name;
      const std::uint64_t size = env_.hot().file_size(path).value_or(0);
      auto cached = key_cache_.find(name);
      if (cached == key_cache_.end() || cached->second.bytes != size) {
        try {
          // Ranged reads: a container's section headers + extern key
          // tables, or a pack's footer + key table — planning touches
          // kilobytes per file, never the hot tier's bulk. The ranged
          // trust model (no whole-file CRC64) is safe here: a mis-read
          // can only mis-place an object across tiers (reads fall
          // through), never lose one.
          CachedKeys entry;
          entry.bytes = size;
          entry.keys = ckpt::parse_checkpoint_file_name(name)
                           ? ckpt::list_chunk_refs(env_.hot(), path)
                           : ckpt::list_pack_keys(env_.hot(), path);
          cached = key_cache_.insert_or_assign(name, std::move(entry)).first;
        } catch (const std::exception&) {
          key_cache_.erase(name);
          if (!env_.hot().exists(path)) {
            continue;  // raced a concurrent demotion; nothing to count
          }
          refs_known = false;
          continue;
        }
      }
      if (ckpt::parse_checkpoint_file_name(name)) {
        for (const ckpt::ChunkKey& key : cached->second.keys) {
          ++hot_keys[key];
        }
        refs_by_file[name] = &cached->second.keys;
      } else {
        hot_packs[name] = {&cached->second.keys, cached->second.bytes};
      }
    }
  }

  std::vector<Unit> plan;
  std::uint64_t projected = hot_bytes;
  std::set<std::string> planned_packs;
  const auto take_fully_cold_packs = [&] {
    if (!policy_.demote_packfiles || !refs_known) {
      return;
    }
    for (const auto& [rel, pack] : hot_packs) {
      if (planned_packs.contains(rel)) {
        continue;
      }
      bool cold = true;
      for (const ckpt::ChunkKey& key : *pack.first) {
        const auto it = hot_keys.find(key);
        if (it != hot_keys.end() && it->second > 0) {
          cold = false;
          break;
        }
      }
      if (!cold) {
        continue;
      }
      Unit unit;
      unit.files.push_back(rel);
      unit.bytes = pack.second;
      projected -= std::min(projected, unit.bytes);
      planned_packs.insert(rel);
      plan.push_back(std::move(unit));
    }
  };

  // Packfiles already fully cold are free wins; then checkpoint units
  // oldest-first, each possibly freeing more packs, until the budget
  // is met or nothing demotable remains.
  take_fully_cold_packs();
  for (auto& [root, unit] : units) {
    if (projected <= policy_.hot_byte_budget) {
      break;
    }
    projected -= std::min(projected, unit.bytes);
    for (const std::string& file : unit.files) {
      const auto it = refs_by_file.find(file);
      if (it == refs_by_file.end()) {
        continue;
      }
      for (const ckpt::ChunkKey& key : *it->second) {
        const auto ref = hot_keys.find(key);
        if (ref != hot_keys.end() && ref->second > 0) {
          --ref->second;
        }
      }
    }
    plan.push_back(std::move(unit));
    take_fully_cold_packs();
  }

  if (projected > policy_.hot_byte_budget) {
    ++stats_.budget_misses;
  }
  return plan;
}

std::size_t MigrationEngine::demote(const std::vector<Unit>& units) {
  if (units.empty()) {
    return 0;
  }
  std::lock_guard lock(mu_);
  ensure_open_locked();
  ++stats_.demote_runs;
  obs::Span span(tracer_, "demote", "tier");
  span.note("units", static_cast<std::uint64_t>(units.size()));

  // Greedy batches of whole units: up to demote_batch files per fence,
  // always at least one unit (an oversized unit gets its own batch).
  std::size_t demoted = 0;
  std::size_t i = 0;
  while (i < units.size()) {
    std::vector<const Unit*> batch{&units[i++]};
    std::size_t files = batch.back()->files.size();
    while (i < units.size() &&
           files + units[i].files.size() <= policy_.demote_batch) {
      files += units[i].files.size();
      batch.push_back(&units[i++]);
    }

    // 1. Copy: every object durable in the cold tier (streamed atomic
    //    install, fsynced by the cold Env) before anything else happens.
    std::vector<std::pair<std::string, std::uint64_t>> copied;
    for (const Unit* unit : batch) {
      for (const std::string& name : unit->files) {
        const std::string path = dir_ + "/" + name;
        const auto bytes = io::stream_copy(env_.hot(), env_.cold(), path);
        if (!bytes) {
          continue;  // already cold or deleted underneath us
        }
        copied.emplace_back(name, *bytes);
      }
    }
    if (copied.empty()) {
      continue;
    }
    // 2. Fence: the TIERMAP advertises the new residency. A crash
    //    before this point leaves hot-resident objects plus ignorable
    //    cold duplicates; after it, cold-resident objects whose hot
    //    duplicates the reconcile collapses.
    for (const auto& [name, bytes] : copied) {
      cold_set_.insert(name);
    }
    save_tiermap_locked();
    // 3. Only now may the hot copies die.
    for (const auto& [name, bytes] : copied) {
      env_.hot().remove_file(dir_ + "/" + name);
      ++stats_.files_demoted;
      stats_.bytes_demoted += bytes;
      stats_.cold_bytes += bytes;
      ++demoted;
    }
  }
  // Gauges: the hot side is a cheap fast-tier listing; the cold side is
  // maintained incrementally (full listings only at reconcile) so the
  // install tail never pays a capacity-tier enumeration. It can drift
  // slightly when GC deletes cold victims, until the next reconcile.
  stats_.hot_bytes = resident_bytes(env_.hot());
  span.note("files", static_cast<std::uint64_t>(demoted));
  return demoted;
}

std::size_t MigrationEngine::migrate(const ckpt::Manifest& manifest) {
  return demote(plan_demotions(manifest));
}

std::size_t MigrationEngine::promote(const std::vector<std::string>& names) {
  std::lock_guard lock(mu_);
  ensure_open_locked();
  obs::Span span(tracer_, "promote", "tier");
  span.note("requested", static_cast<std::uint64_t>(names.size()));
  // Mirror of demote: hot copy durable -> fence -> cold copy dies.
  std::vector<std::pair<std::string, std::uint64_t>> copied;
  for (const std::string& name : names) {
    const std::string path = dir_ + "/" + name;
    if (env_.hot().exists(path)) {
      continue;  // already hot
    }
    const auto bytes = io::stream_copy(env_.cold(), env_.hot(), path);
    if (!bytes) {
      continue;
    }
    copied.emplace_back(name, *bytes);
  }
  if (copied.empty()) {
    return 0;
  }
  for (const auto& [name, bytes] : copied) {
    cold_set_.erase(name);
  }
  save_tiermap_locked();
  for (const auto& [name, bytes] : copied) {
    env_.cold().remove_file(dir_ + "/" + name);
    ++stats_.files_promoted;
    stats_.bytes_promoted += bytes;
    stats_.cold_bytes -= std::min(stats_.cold_bytes, bytes);
  }
  stats_.hot_bytes = resident_bytes(env_.hot());
  span.note("files", static_cast<std::uint64_t>(copied.size()));
  return copied.size();
}

std::size_t MigrationEngine::reconcile() {
  std::lock_guard lock(mu_);
  opened_ = true;  // the rebuild below supersedes any TIERMAP load
  const auto hot_files = migratable_files(env_.hot(), dir_);
  const std::set<std::string> hot_set(hot_files.begin(), hot_files.end());
  std::size_t collapsed = 0;
  std::set<std::string> cold_now;
  for (const std::string& name : migratable_files(env_.cold(), dir_)) {
    if (hot_set.contains(name)) {
      // A crash mid-migration stranded both copies. The hot copy wins:
      // every write path targets the hot tier, so a diverging cold
      // copy can only be stale — and for an undisturbed migration the
      // two are identical, making either choice safe.
      env_.cold().remove_file(dir_ + "/" + name);
      ++collapsed;
    } else {
      cold_now.insert(name);
    }
  }
  stats_.duplicates_collapsed += collapsed;
  const bool changed = cold_now != cold_set_;
  cold_set_ = std::move(cold_now);
  if (changed) {
    save_tiermap_locked();
  }
  stats_.hot_bytes = resident_bytes(env_.hot());
  stats_.cold_bytes = resident_bytes(env_.cold());
  return collapsed;
}

void MigrationEngine::forget(const std::vector<std::string>& names) {
  std::lock_guard lock(mu_);
  ensure_open_locked();
  for (const std::string& name : names) {
    cold_set_.erase(name);
  }
  // No fence here: the next fence (or startup reconcile) persists the
  // thinner map; a stale mark is advisory either way.
}

std::vector<std::string> MigrationEngine::cold_files() {
  std::lock_guard lock(mu_);
  ensure_open_locked();
  return {cold_set_.begin(), cold_set_.end()};
}

bool MigrationEngine::is_cold(const std::string& name) {
  std::lock_guard lock(mu_);
  ensure_open_locked();
  return cold_set_.contains(name);
}

TierStats MigrationEngine::stats() {
  std::lock_guard lock(mu_);
  return stats_;
}

}  // namespace qnn::tier

#include "tier/tiered_env.hpp"

#include <algorithm>
#include <set>

namespace qnn::tier {

TieredEnv::TieredEnv(io::Env& hot, io::Env& cold, bool promote_on_read,
                     std::function<bool(const std::string&)> scrub_filter)
    : hot_(hot),
      cold_(cold),
      promote_on_read_(promote_on_read),
      scrub_filter_(std::move(scrub_filter)) {}

void TieredEnv::write_file_atomic(const std::string& path, ByteSpan data) {
  hot_.write_file_atomic(path, data);
  // Scrub any stale cold copy AFTER the new version is durable in the
  // hot tier: reads prefer hot, so even a crash between the two leaves
  // the fresh bytes winning. Without the scrub a later hot-side delete
  // (or a duplicate-collapse at startup) could resurrect old content.
  // remove_file is a no-op on absent paths by contract, so this costs
  // one cold op — and none at all for paths the scrub filter knows can
  // never be cold-resident (pinned-hot metadata rewritten every
  // install).
  if (!scrub_filter_ || scrub_filter_(path)) {
    cold_.remove_file(path);
  }
  bytes_written_ += data.size();
}

void TieredEnv::write_file(const std::string& path, ByteSpan data) {
  hot_.write_file(path, data);
  if (!scrub_filter_ || scrub_filter_(path)) {
    cold_.remove_file(path);
  }
  bytes_written_ += data.size();
}

std::optional<util::Bytes> TieredEnv::read_file(const std::string& path) {
  if (auto data = hot_.read_file(path)) {
    bytes_read_ += data->size();
    return data;
  }
  auto data = cold_.read_file(path);
  if (!data) {
    return std::nullopt;
  }
  bytes_read_ += data->size();
  ++cold_reads_;
  cold_read_bytes_ += data->size();
  if (promote_on_read_) {
    // Read-through promotion, same crash discipline as demotion: the
    // hot copy is durable before the cold one dies, so a crash between
    // the two strands a duplicate (collapsed at the next reconcile),
    // never loses the object. Best effort — a promotion failure must
    // not fail a read that already succeeded.
    try {
      hot_.write_file_atomic(path, *data);
      cold_.remove_file(path);
      ++promoted_files_;
      promoted_bytes_ += data->size();
    } catch (const std::exception&) {
      // Served cold; the object stays cold-resident.
    }
  }
  return data;
}

bool TieredEnv::exists(const std::string& path) {
  return hot_.exists(path) || cold_.exists(path);
}

void TieredEnv::remove_file(const std::string& path) {
  hot_.remove_file(path);
  cold_.remove_file(path);
}

std::vector<std::string> TieredEnv::list_dir(const std::string& dir) {
  std::set<std::string> names;
  for (std::string& name : hot_.list_dir(dir)) {
    names.insert(std::move(name));
  }
  for (std::string& name : cold_.list_dir(dir)) {
    names.insert(std::move(name));
  }
  return {names.begin(), names.end()};
}

std::optional<std::uint64_t> TieredEnv::file_size(const std::string& path) {
  if (auto size = hot_.file_size(path)) {
    return size;
  }
  return cold_.file_size(path);
}

}  // namespace qnn::tier

#include "tier/tiered_env.hpp"

#include <algorithm>
#include <set>

namespace qnn::tier {

TieredEnv::TieredEnv(io::Env& hot, io::Env& cold, bool promote_on_read,
                     std::function<bool(const std::string&)> scrub_filter)
    : hot_(hot),
      cold_(cold),
      promote_on_read_(promote_on_read),
      scrub_filter_(std::move(scrub_filter)) {}

/// Streams into the hot tier; when the stream completes (close), any
/// stale cold copy of the path is scrubbed. Scrubbing AFTER the new
/// version is durable in the hot tier keeps the crash order safe: reads
/// prefer hot, so even a crash between the two leaves the fresh bytes
/// winning. Without the scrub a later hot-side delete (or a duplicate-
/// collapse at startup) could resurrect old content. remove_file is a
/// no-op on absent paths by contract, so this costs one cold op — and
/// none at all for paths the scrub filter knows can never be
/// cold-resident (pinned-hot metadata rewritten every install).
class TieredWritableFile final : public io::WritableFile {
 public:
  TieredWritableFile(TieredEnv& env, std::string path, io::WriteMode mode,
                     std::unique_ptr<io::WritableFile> hot)
      : env_(env), path_(std::move(path)), mode_(mode), hot_(std::move(hot)) {}

  void append(ByteSpan data) override {
    hot_->append(data);
    if (mode_ == io::WriteMode::kPlain) {
      env_.bytes_written_ += data.size();
    } else {
      staged_ += data.size();
    }
  }
  void sync() override { hot_->sync(); }
  void close() override {
    hot_->close();
    // Atomic streams count at close, like every other Env: an aborted
    // install must leave the counter untouched.
    env_.bytes_written_ += staged_;
    if (!env_.scrub_filter_ || env_.scrub_filter_(path_)) {
      env_.cold_.remove_file(path_);
    }
  }

 private:
  TieredEnv& env_;
  const std::string path_;
  const io::WriteMode mode_;
  std::unique_ptr<io::WritableFile> hot_;
  std::uint64_t staged_ = 0;
};

/// Ranged reads served by the cold tier: every range is a cold transfer,
/// counted as such. Never promotes — see the header comment.
class ColdRandomAccessFile final : public io::RandomAccessFile {
 public:
  ColdRandomAccessFile(TieredEnv& env,
                       std::unique_ptr<io::RandomAccessFile> base)
      : env_(env), base_(std::move(base)) {}

  [[nodiscard]] std::uint64_t size() const override { return base_->size(); }
  Bytes pread(std::uint64_t offset, std::uint64_t n) override {
    Bytes out = base_->pread(offset, n);
    env_.bytes_read_ += out.size();
    env_.cold_read_bytes_ += out.size();
    return out;
  }

 private:
  TieredEnv& env_;
  std::unique_ptr<io::RandomAccessFile> base_;
};

/// Hot ranged reads just count logical bytes.
class HotRangedCounter final : public io::RandomAccessFile {
 public:
  HotRangedCounter(std::atomic<std::uint64_t>& counter,
                   std::unique_ptr<io::RandomAccessFile> base)
      : counter_(counter), base_(std::move(base)) {}
  [[nodiscard]] std::uint64_t size() const override { return base_->size(); }
  Bytes pread(std::uint64_t offset, std::uint64_t n) override {
    Bytes out = base_->pread(offset, n);
    counter_ += out.size();
    return out;
  }

 private:
  std::atomic<std::uint64_t>& counter_;
  std::unique_ptr<io::RandomAccessFile> base_;
};

std::unique_ptr<io::WritableFile> TieredEnv::new_writable(
    const std::string& path, io::WriteMode mode) {
  return std::make_unique<TieredWritableFile>(*this, path, mode,
                                              hot_.new_writable(path, mode));
}

std::unique_ptr<io::RandomAccessFile> TieredEnv::open_ranged(
    const std::string& path) {
  if (auto file = hot_.open_ranged(path)) {
    return std::make_unique<HotRangedCounter>(bytes_read_, std::move(file));
  }
  auto file = cold_.open_ranged(path);
  if (!file) {
    return nullptr;
  }
  ++cold_reads_;
  return std::make_unique<ColdRandomAccessFile>(*this, std::move(file));
}

std::optional<util::Bytes> TieredEnv::read_file(const std::string& path) {
  if (auto data = hot_.read_file(path)) {
    bytes_read_ += data->size();
    return data;
  }
  auto data = cold_.read_file(path);
  if (!data) {
    return std::nullopt;
  }
  bytes_read_ += data->size();
  ++cold_reads_;
  cold_read_bytes_ += data->size();
  if (promote_on_read_) {
    // Read-through promotion, same crash discipline as demotion: the
    // hot copy is durable before the cold one dies, so a crash between
    // the two strands a duplicate (collapsed at the next reconcile),
    // never loses the object. Best effort — a promotion failure must
    // not fail a read that already succeeded.
    try {
      hot_.write_file_atomic(path, *data);
      cold_.remove_file(path);
      ++promoted_files_;
      promoted_bytes_ += data->size();
    } catch (const std::exception&) {
      // Served cold; the object stays cold-resident.
    }
  }
  return data;
}

bool TieredEnv::promote_file(const std::string& path) {
  if (hot_.exists(path)) {
    return false;  // already hot
  }
  try {
    const auto copied = io::stream_copy(cold_, hot_, path);
    if (!copied) {
      return false;
    }
    // The streamed transfer is itself a cold read: count it like any
    // other cold-served access.
    ++cold_reads_;
    bytes_read_ += *copied;
    cold_read_bytes_ += *copied;
    cold_.remove_file(path);
    ++promoted_files_;
    promoted_bytes_ += *copied;
    return true;
  } catch (const std::exception&) {
    return false;  // best effort: the object stays cold
  }
}

bool TieredEnv::exists(const std::string& path) {
  return hot_.exists(path) || cold_.exists(path);
}

void TieredEnv::remove_file(const std::string& path) {
  hot_.remove_file(path);
  cold_.remove_file(path);
}

std::vector<std::string> TieredEnv::list_dir(const std::string& dir) {
  std::set<std::string> names;
  for (std::string& name : hot_.list_dir(dir)) {
    names.insert(std::move(name));
  }
  for (std::string& name : cold_.list_dir(dir)) {
    names.insert(std::move(name));
  }
  return {names.begin(), names.end()};
}

std::optional<std::uint64_t> TieredEnv::file_size(const std::string& path) {
  if (auto size = hot_.file_size(path)) {
    return size;
  }
  return cold_.file_size(path);
}

}  // namespace qnn::tier

#include "tier/shaped_env.hpp"

#include <chrono>
#include <thread>

namespace qnn::tier {

ShapeSpec local_nvme_shape() {
  ShapeSpec s;
  s.read_latency_s = 80e-6;
  s.write_latency_s = 80e-6;
  s.read_bytes_per_s = 2.0e9;
  s.write_bytes_per_s = 2.0e9;
  return s;
}

ShapeSpec object_store_shape() {
  ShapeSpec s;
  s.read_latency_s = 8e-3;
  s.write_latency_s = 8e-3;
  s.read_bytes_per_s = 120.0e6;
  s.write_bytes_per_s = 120.0e6;
  return s;
}

ShapedEnv::ShapedEnv(io::Env& base, ShapeSpec spec)
    : base_(base), spec_(spec) {}

double ShapedEnv::read_cost(std::uint64_t bytes) const {
  double cost = spec_.read_latency_s;
  if (spec_.read_bytes_per_s > 0.0) {
    cost += static_cast<double>(bytes) / spec_.read_bytes_per_s;
  }
  return cost;
}

double ShapedEnv::write_cost(std::uint64_t bytes) const {
  double cost = spec_.write_latency_s;
  if (spec_.write_bytes_per_s > 0.0) {
    cost += static_cast<double>(bytes) / spec_.write_bytes_per_s;
  }
  return cost;
}

double ShapedEnv::metadata_cost() const {
  return spec_.metadata_latency_s < 0.0 ? spec_.read_latency_s
                                        : spec_.metadata_latency_s;
}

void ShapedEnv::charge(std::atomic<std::uint64_t>& bucket,
                       double seconds) const {
  if (seconds <= 0.0) {
    return;
  }
  bucket += static_cast<std::uint64_t>(seconds * 1e9);
  if (spec_.sleep) {
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  }
}

void ShapedEnv::write_file_atomic(const std::string& path, ByteSpan data) {
  charge(write_ns_, write_cost(data.size()));
  base_.write_file_atomic(path, data);
}

void ShapedEnv::write_file(const std::string& path, ByteSpan data) {
  charge(write_ns_, write_cost(data.size()));
  base_.write_file(path, data);
}

std::optional<util::Bytes> ShapedEnv::read_file(const std::string& path) {
  auto data = base_.read_file(path);
  // Absent files cost one metadata round trip, hits the full transfer.
  charge(read_ns_, data ? read_cost(data->size()) : metadata_cost());
  return data;
}

bool ShapedEnv::exists(const std::string& path) {
  charge(read_ns_, metadata_cost());
  return base_.exists(path);
}

void ShapedEnv::remove_file(const std::string& path) {
  charge(write_ns_, metadata_cost());
  base_.remove_file(path);
}

std::vector<std::string> ShapedEnv::list_dir(const std::string& dir) {
  charge(read_ns_, metadata_cost());
  return base_.list_dir(dir);
}

std::optional<std::uint64_t> ShapedEnv::file_size(const std::string& path) {
  charge(read_ns_, metadata_cost());
  return base_.file_size(path);
}

double ShapedEnv::modeled_read_seconds() const {
  return static_cast<double>(read_ns_.load()) * 1e-9;
}

double ShapedEnv::modeled_write_seconds() const {
  return static_cast<double>(write_ns_.load()) * 1e-9;
}

}  // namespace qnn::tier

#include "tier/shaped_env.hpp"

#include <chrono>
#include <thread>

namespace qnn::tier {

ShapeSpec local_nvme_shape() {
  ShapeSpec s;
  s.read_latency_s = 80e-6;
  s.write_latency_s = 80e-6;
  s.read_bytes_per_s = 2.0e9;
  s.write_bytes_per_s = 2.0e9;
  return s;
}

ShapeSpec object_store_shape() {
  ShapeSpec s;
  s.read_latency_s = 8e-3;
  s.write_latency_s = 8e-3;
  s.read_bytes_per_s = 120.0e6;
  s.write_bytes_per_s = 120.0e6;
  return s;
}

ShapedEnv::ShapedEnv(io::Env& base, ShapeSpec spec)
    : base_(base), spec_(spec) {}

double ShapedEnv::read_cost(std::uint64_t bytes) const {
  return spec_.read_latency_s + read_bandwidth_cost(bytes);
}

double ShapedEnv::write_cost(std::uint64_t bytes) const {
  return spec_.write_latency_s + write_bandwidth_cost(bytes);
}

double ShapedEnv::read_bandwidth_cost(std::uint64_t bytes) const {
  return spec_.read_bytes_per_s > 0.0
             ? static_cast<double>(bytes) / spec_.read_bytes_per_s
             : 0.0;
}

double ShapedEnv::write_bandwidth_cost(std::uint64_t bytes) const {
  return spec_.write_bytes_per_s > 0.0
             ? static_cast<double>(bytes) / spec_.write_bytes_per_s
             : 0.0;
}

double ShapedEnv::metadata_cost() const {
  return spec_.metadata_latency_s < 0.0 ? spec_.read_latency_s
                                        : spec_.metadata_latency_s;
}

void ShapedEnv::charge(std::atomic<std::uint64_t>& bucket,
                       double seconds) const {
  if (seconds <= 0.0) {
    return;
  }
  bucket += static_cast<std::uint64_t>(seconds * 1e9);
  if (spec_.sleep) {
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  }
}

/// The charging model follows the mode's crash semantics. kAtomic is a
/// staged buffer: one write latency at open (the device op), bandwidth
/// per append. kPlain appends land in place immediately, so each append
/// IS an independent device op — latency + bandwidth per call, nothing
/// at open; a WAL-style group-commit bench charges per record, not once
/// per stream. Either way the whole-buffer wrappers (open + one append +
/// close) charge exactly what the historical write_file calls charged.
class ShapedWritableFile final : public io::WritableFile {
 public:
  ShapedWritableFile(ShapedEnv& env, std::unique_ptr<io::WritableFile> base,
                     io::WriteMode mode)
      : env_(env), base_(std::move(base)), mode_(mode) {
    if (mode_ == io::WriteMode::kAtomic) {
      env_.charge(env_.write_ns_, env_.spec_.write_latency_s);
    }
  }
  void append(ByteSpan data) override {
    env_.charge(env_.write_ns_, mode_ == io::WriteMode::kPlain
                                    ? env_.write_cost(data.size())
                                    : env_.write_bandwidth_cost(data.size()));
    base_->append(data);
  }
  void sync() override { base_->sync(); }
  void close() override { base_->close(); }

 private:
  ShapedEnv& env_;
  std::unique_ptr<io::WritableFile> base_;
  const io::WriteMode mode_;
};

/// Every pread is an independent device op: one read latency plus the
/// range's bandwidth. The whole-buffer wrapper (open + one full pread)
/// then charges exactly what the historical read_file charged.
class ShapedRandomAccessFile final : public io::RandomAccessFile {
 public:
  ShapedRandomAccessFile(ShapedEnv& env,
                         std::unique_ptr<io::RandomAccessFile> base)
      : env_(env), base_(std::move(base)) {}

  [[nodiscard]] std::uint64_t size() const override { return base_->size(); }
  Bytes pread(std::uint64_t offset, std::uint64_t n) override {
    Bytes out = base_->pread(offset, n);
    env_.charge(env_.read_ns_, env_.read_cost(out.size()));
    return out;
  }

 private:
  ShapedEnv& env_;
  std::unique_ptr<io::RandomAccessFile> base_;
};

std::unique_ptr<io::WritableFile> ShapedEnv::new_writable(
    const std::string& path, io::WriteMode mode) {
  return std::make_unique<ShapedWritableFile>(
      *this, base_.new_writable(path, mode), mode);
}

std::unique_ptr<io::RandomAccessFile> ShapedEnv::open_ranged(
    const std::string& path) {
  auto file = base_.open_ranged(path);
  if (!file) {
    // Absent files cost one metadata round trip.
    charge(read_ns_, metadata_cost());
    return nullptr;
  }
  return std::make_unique<ShapedRandomAccessFile>(*this, std::move(file));
}

bool ShapedEnv::exists(const std::string& path) {
  charge(read_ns_, metadata_cost());
  return base_.exists(path);
}

void ShapedEnv::remove_file(const std::string& path) {
  charge(write_ns_, metadata_cost());
  base_.remove_file(path);
}

std::vector<std::string> ShapedEnv::list_dir(const std::string& dir) {
  charge(read_ns_, metadata_cost());
  return base_.list_dir(dir);
}

std::optional<std::uint64_t> ShapedEnv::file_size(const std::string& path) {
  charge(read_ns_, metadata_cost());
  return base_.file_size(path);
}

double ShapedEnv::modeled_read_seconds() const {
  return static_cast<double>(read_ns_.load()) * 1e-9;
}

double ShapedEnv::modeled_write_seconds() const {
  return static_cast<double>(write_ns_.load()) * 1e-9;
}

}  // namespace qnn::tier

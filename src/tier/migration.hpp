// Tier placement policy + crash-consistent hot->cold migration.
//
// The MigrationEngine owns WHICH objects of a checkpoint directory live
// in which tier of a TieredEnv, and moves them with the same crash
// discipline the retention GC uses for deletion. The migratable objects
// are exactly the immutable bulk payloads — checkpoint containers
// (ckpt-*.qckp) and chunk packfiles (chunks/pack-*.qpak); directory
// metadata (MANIFEST, TIERMAP, chunks/REFS) is pinned hot forever.
//
// Residency is recorded in `<dir>/TIERMAP`, a small text file in the
// hot tier rewritten atomically as the migration fence:
//
//   * demotion copies each object to the cold tier (atomic write,
//     fsynced by the cold Env) BEFORE the fence advertises it as cold,
//     and the hot copy dies only after the fence — a crash at any
//     point leaves every object resolvable from at least one tier
//     (TieredEnv reads fall through), at worst transiently duplicated;
//   * promotion is the mirror image: hot copy durable, fence drops the
//     cold mark, cold copy dies;
//   * reconcile() (startup) collapses crash-stranded duplicates — the
//     hot copy always wins, because every write path targets the hot
//     tier, so a diverging cold copy can only be stale — and rebuilds
//     the TIERMAP from the actual cold listing. Like the chunk store's
//     REFS journal, the TIERMAP is advisory: residency truth is the
//     union of tier listings, and a torn or stale TIERMAP can never
//     lose an object.
//
// Placement policy (TierPolicy):
//   * hot_byte_budget caps the bytes of migratable objects resident in
//     the hot tier; demotion runs only while over budget;
//   * the newest pin_hot_last checkpoints, their ancestor chains and
//     any entry younger than min_age_steps stay hot regardless;
//   * victims demote oldest-first in chain units — an incremental
//     parent chain is never split across a demotion batch, and a
//     packfile (one file) is inherently unsplittable;
//   * a packfile demotes only when it is fully cold: no hot-resident
//     checkpoint references any of its chunks.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "ckpt/format.hpp"
#include "obs/trace.hpp"
#include "tier/tiered_env.hpp"

namespace qnn::ckpt {
class Manifest;
}  // namespace qnn::ckpt

namespace qnn::tier {

struct TierPolicy {
  /// Byte cap for migratable objects (checkpoint files + packfiles)
  /// resident in the hot tier. 0 = unlimited: demotion never runs.
  std::uint64_t hot_byte_budget = 0;

  /// Newest checkpoints (and their ancestor chains) never demoted, so
  /// the recovery fast path stays a pure hot hit. Clamped to >= 1: the
  /// newest checkpoint is always pinned.
  std::size_t pin_hot_last = 2;

  /// Only checkpoints at least this many steps behind the newest entry
  /// may demote. 0 = age does not pin anything extra.
  std::uint64_t min_age_steps = 0;

  /// Max files per TIERMAP fence. Demotion units (a whole parent
  /// chain; a packfile) are never split across batches — a unit larger
  /// than the batch gets an oversized batch of its own.
  std::size_t demote_batch = 8;

  /// Demote fully-cold packfiles too (chunk data whose every referent
  /// is already cold). Disable to tier only checkpoint containers.
  bool demote_packfiles = true;

  [[nodiscard]] bool enabled() const { return hot_byte_budget > 0; }
};

/// True for paths whose final component names an object migration may
/// ever place in the cold tier (checkpoint containers, packfiles).
/// Useful as a TieredEnv scrub filter: writes to anything else —
/// MANIFEST, TIERMAP, chunks/REFS, foreign files — skip the cold tier
/// entirely.
bool migratable_path(const std::string& path);

/// Migration counters (bench_t7_tiering, inspector, tests).
struct TierStats {
  std::uint64_t demote_runs = 0;       ///< migrate() calls that moved data
  std::uint64_t files_demoted = 0;
  std::uint64_t bytes_demoted = 0;
  std::uint64_t files_promoted = 0;    ///< explicit promote() calls
  std::uint64_t bytes_promoted = 0;
  std::uint64_t fences = 0;            ///< TIERMAP rewrites
  std::uint64_t duplicates_collapsed = 0;  ///< crash-stranded copies fixed
  std::uint64_t budget_misses = 0;     ///< over budget, nothing demotable
  std::uint64_t hot_bytes = 0;         ///< migratable hot bytes, last run
  /// Migratable cold bytes: exact at reconcile, then maintained
  /// incrementally from the engine's own moves (no capacity-tier
  /// enumeration on the install path); may drift when GC deletes cold
  /// victims until the next reconcile.
  std::uint64_t cold_bytes = 0;
};

class MigrationEngine {
 public:
  /// One demotion unit: files that must cross the tier boundary within
  /// a single fenced batch (a chain segment, or one packfile).
  struct Unit {
    std::vector<std::string> files;  ///< dir-relative names
    std::uint64_t bytes = 0;         ///< hot bytes the unit frees
  };

  /// `env` is borrowed and must outlive the engine; `dir` is the
  /// checkpoint directory both tiers share.
  MigrationEngine(TieredEnv& env, std::string dir, TierPolicy policy);

  /// The units a demotion run would move right now (planning only; no
  /// tier mutation): oldest-first until the hot tier fits the budget,
  /// plus every packfile left fully cold by those moves. Reads only
  /// hot-resident files (key tables + pack headers) — planning never
  /// touches the capacity tier. Empty when the policy is disabled or
  /// the hot tier already fits.
  [[nodiscard]] std::vector<Unit> plan_demotions(
      const ckpt::Manifest& manifest);

  /// Executes a demotion plan with the copy -> fence -> delete-source
  /// discipline documented above. Returns files demoted.
  std::size_t demote(const std::vector<Unit>& units);

  /// plan + demote in one call (what CheckpointStore runs per install).
  std::size_t migrate(const ckpt::Manifest& manifest);

  /// Explicitly promotes `names` (dir-relative) back to the hot tier:
  /// hot copy durable -> fence -> cold copy dies. Unknown or already
  /// hot names are skipped. Returns files promoted.
  std::size_t promote(const std::vector<std::string>& names);

  /// Startup reconciliation: collapses duplicates stranded by a crash
  /// mid-migration (hot copy wins) and rebuilds the TIERMAP from the
  /// cold tier's actual contents. Returns duplicates collapsed.
  std::size_t reconcile();

  /// Drops residency marks for files the GC just deleted (the tiered
  /// remove already cleared both tiers; this keeps the map tight).
  void forget(const std::vector<std::string>& names);

  /// Migratable bytes (checkpoint files + packfiles) resident per tier
  /// right now, by listing. Metadata files are not counted — they are
  /// pinned hot and not subject to the budget.
  [[nodiscard]] std::uint64_t hot_resident_bytes();
  [[nodiscard]] std::uint64_t cold_resident_bytes();

  /// Dir-relative names currently marked cold (TIERMAP view).
  [[nodiscard]] std::vector<std::string> cold_files();
  [[nodiscard]] bool is_cold(const std::string& name);

  [[nodiscard]] TierStats stats();
  [[nodiscard]] const TierPolicy& policy() const { return policy_; }
  [[nodiscard]] TieredEnv& env() { return env_; }

  /// Mounts a span/event sink (borrowed; null detaches): demote/promote
  /// batches become spans, every TIERMAP fence an instant event.
  void set_observability(obs::Tracer* tracer) { tracer_ = tracer; }

 private:
  /// Loads the TIERMAP once (advisory; stale marks are dropped at the
  /// next fence or reconcile).
  void ensure_open_locked();
  /// Atomically rewrites the TIERMAP from cold_set_, dropping marks
  /// whose cold file vanished (e.g. promoted read-through).
  void save_tiermap_locked();
  /// Sizes of the migratable files under `tier_env`'s view of dir_.
  std::uint64_t resident_bytes(io::Env& tier_env);

  TieredEnv& env_;
  const std::string dir_;
  const TierPolicy policy_;

  std::mutex mu_;
  bool opened_ = false;
  std::set<std::string> cold_set_;  ///< dir-relative names marked cold
  /// Parsed key tables / pack record keys of hot files, so repeated
  /// over-budget planning runs don't re-read the whole hot tier.
  /// Contents are write-once, so the byte size validates an entry; a
  /// stale hit after a same-size crash-reallocation overwrite can only
  /// mis-place (never lose) an object, since reads span both tiers.
  struct CachedKeys {
    std::uint64_t bytes = 0;
    std::vector<ckpt::ChunkKey> keys;
  };
  std::map<std::string, CachedKeys> key_cache_;
  TierStats stats_;
  obs::Tracer* tracer_ = nullptr;  ///< borrowed; null = tracing off
};

}  // namespace qnn::tier

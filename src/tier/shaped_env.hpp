// Latency/bandwidth-shaping Env decorator.
//
// ShapedEnv charges every operation against a simple device model —
// fixed per-op latency plus payload bytes over a bandwidth — and
// accumulates the charges as *modeled* seconds. The model makes the
// hot/cold asymmetry of a TieredEnv measurable deterministically: a
// seeded workload always moves the same bytes through the same ops, so
// the modeled cost is machine-independent and can be gated against
// bench baselines (bench_t7_tiering), unlike wall-clock time. With
// `spec.sleep` the decorator additionally sleeps the modeled cost, for
// wall-clock realism in interactive runs.
//
// Streaming ops map onto the model the way a real device behaves:
// opening a kAtomic (staged) write stream costs one write latency and
// each append pays bandwidth, while every kPlain append is an
// independent device op (latency + bandwidth — the WAL group-commit
// path depends on per-record charging); each pread is an independent
// I/O (one read latency plus bandwidth for the returned range) — which
// is exactly why ranged reads make read amplification visible: touching
// a 100-byte footer of a 100 MB pack costs a latency, not a
// megabyte-scale transfer.
//
// The defaults for the two canonical shapes come from the all-flash
// Ceph study's observation that capacity/remote tiers differ from local
// NVMe by orders of magnitude in latency and a large factor in
// bandwidth: local_nvme_shape() (~80 us, ~2 GB/s) vs
// object_store_shape() (~8 ms, ~120 MB/s).
#pragma once

#include <atomic>
#include <cstdint>

#include "io/env.hpp"

namespace qnn::tier {

using util::Bytes;
using util::ByteSpan;

/// The device model. 0 latency = free op; 0 bandwidth = infinite.
struct ShapeSpec {
  double read_latency_s = 0.0;
  double write_latency_s = 0.0;
  double read_bytes_per_s = 0.0;
  double write_bytes_per_s = 0.0;
  /// Metadata round trips (exists / file_size / list_dir / remove)
  /// charge this, defaulting to the read latency when negative.
  double metadata_latency_s = -1.0;
  /// Actually sleep the modeled cost of each op (wall-clock realism).
  bool sleep = false;
};

/// A fast local NVMe-ish hot tier.
ShapeSpec local_nvme_shape();
/// A high-latency, capacity-oriented cold tier (object-store-like).
ShapeSpec object_store_shape();

class ShapedEnv final : public io::Env {
 public:
  ShapedEnv(io::Env& base, ShapeSpec spec);

  std::unique_ptr<io::WritableFile> new_writable(const std::string& path,
                                                 io::WriteMode mode) override;
  std::unique_ptr<io::RandomAccessFile> open_ranged(
      const std::string& path) override;
  bool exists(const std::string& path) override;
  void remove_file(const std::string& path) override;
  std::vector<std::string> list_dir(const std::string& dir) override;
  std::optional<std::uint64_t> file_size(const std::string& path) override;
  [[nodiscard]] std::uint64_t bytes_written() const override {
    return base_.bytes_written();
  }
  [[nodiscard]] std::uint64_t bytes_read() const override {
    return base_.bytes_read();
  }

  /// Accumulated modeled charges (deterministic for a seeded workload).
  [[nodiscard]] double modeled_read_seconds() const;
  [[nodiscard]] double modeled_write_seconds() const;
  [[nodiscard]] double modeled_seconds() const {
    return modeled_read_seconds() + modeled_write_seconds();
  }

  [[nodiscard]] const ShapeSpec& spec() const { return spec_; }

 private:
  friend class ShapedWritableFile;
  friend class ShapedRandomAccessFile;

  /// Charges `seconds` to `bucket` (atomically, in nanoseconds) and
  /// sleeps it when the spec says so.
  void charge(std::atomic<std::uint64_t>& bucket, double seconds) const;
  [[nodiscard]] double read_cost(std::uint64_t bytes) const;
  [[nodiscard]] double write_cost(std::uint64_t bytes) const;
  [[nodiscard]] double metadata_cost() const;
  /// Pure bandwidth charge (no per-op latency), for stream appends.
  [[nodiscard]] double write_bandwidth_cost(std::uint64_t bytes) const;
  [[nodiscard]] double read_bandwidth_cost(std::uint64_t bytes) const;

  io::Env& base_;
  const ShapeSpec spec_;
  /// Nanosecond counters: atomics (the AsyncWriter's workers write
  /// through shaped envs concurrently) without losing precision to
  /// float accumulation order.
  mutable std::atomic<std::uint64_t> read_ns_{0};
  mutable std::atomic<std::uint64_t> write_ns_{0};
};

}  // namespace qnn::tier

// In-process crash emulation.
//
// Integration tests and the F7 resume-fidelity bench kill a training run
// "from inside" at a controlled step by throwing SimulatedCrash from the
// step callback — exercising the exact abandon-state-and-recover path a
// SIGKILL would, but deterministically and without forking.
#pragma once

#include <stdexcept>

#include "qnn/trainer.hpp"

namespace qnn::fault {

struct SimulatedCrash : std::runtime_error {
  explicit SimulatedCrash(std::uint64_t step)
      : std::runtime_error("simulated crash at step " + std::to_string(step)),
        step(step) {}
  std::uint64_t step;
};

/// Wraps `inner` (may be empty) so that reaching `crash_at_step` throws
/// SimulatedCrash *after* the inner callback ran (so a checkpoint due at
/// that step is still taken — the worst case for wasted work is covered by
/// crashing between checkpoints instead).
inline qnn::StepCallback crash_at(std::uint64_t crash_at_step,
                                  qnn::StepCallback inner = {}) {
  return [crash_at_step, inner](const qnn::StepInfo& info) {
    bool keep_going = true;
    if (inner) {
      keep_going = inner(info);
    }
    if (info.step >= crash_at_step) {
      throw SimulatedCrash(info.step);
    }
    return keep_going;
  };
}

}  // namespace qnn::fault
